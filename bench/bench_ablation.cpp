// Ablation of the design choices DESIGN.md calls out: what each piece of
// the loop machinery buys, across the ten paper scenarios.
//
//   naive   — cycle rank if EVERY nerve band were realized (the literal
//             "connect every pair of adjacent cells" reading of §III-C);
//   nerve   — rank of the coarse skeleton after the GF(2) band selection
//             (triangles + quads filled);
//   +clean  — final rank after the §III-D clean-up (pockets, witness
//             cycles, thin/braid collapse) and pruning;
//   holes   — ground truth.
#include <cstdio>

#include "core/cleanup.h"
#include "core/coarse.h"
#include "core/identify.h"
#include "core/index.h"
#include "core/pipeline.h"
#include "core/voronoi.h"
#include "deploy/scenario.h"
#include "geometry/shapes.h"

int main() {
  using namespace skelex;
  std::printf("=== Ablation: fake-loop machinery ===\n");
  std::printf("%-12s %6s %6s %6s %6s %7s %9s %6s\n", "scenario", "sites",
              "bands", "tri", "quads", "naive", "nerve", "holes");
  for (const geom::shapes::NamedShape& s : geom::shapes::paper_scenarios()) {
    deploy::ScenarioSpec spec;
    spec.target_nodes = s.paper_nodes;
    spec.target_avg_deg = std::max(s.paper_avg_deg, 6.8);
    spec.seed = 20260704;
    const deploy::Scenario sc = deploy::make_udg_scenario(s.region, spec);
    const net::Graph& g = sc.graph;
    const core::Params p;
    const core::IndexData idx = core::compute_index(g, p);
    const auto crit = core::identify_critical_nodes(g, idx, p);
    const core::VoronoiResult vor = core::build_voronoi(g, crit, p);
    const core::CoarseSkeleton coarse =
        core::build_coarse_skeleton(g, idx, vor, p);

    // Naive rank: realize every band -> multigraph over sites.
    // rank = E - V + C, with C from union-find over the bands.
    const int m = static_cast<int>(vor.sites.size());
    std::vector<int> uf(static_cast<std::size_t>(m));
    for (int i = 0; i < m; ++i) uf[static_cast<std::size_t>(i)] = i;
    const auto find = [&](int x) {
      while (uf[static_cast<std::size_t>(x)] != x) x = uf[static_cast<std::size_t>(x)];
      return x;
    };
    for (const core::Band& b : coarse.bands) {
      uf[static_cast<std::size_t>(find(b.site_a))] = find(b.site_b);
    }
    int comps = 0;
    for (int i = 0; i < m; ++i) {
      if (find(i) == i) ++comps;
    }
    const int naive_rank =
        static_cast<int>(coarse.bands.size()) - m + comps;

    int quads = 0;  // quads are folded into the GF(2) basis; count via
                    // rank difference is overkill here — report triangles
                    // and the realized outcome instead.
    (void)quads;
    const core::SkeletonResult full = core::extract_skeleton(g, p);
    std::printf("%-12s %6d %6zu %6zu %6s %7d %6d->%d %6zu\n", s.name.c_str(),
                m, coarse.bands.size(), coarse.triangles.size(), "-",
                naive_rank, coarse.graph.cycle_rank(),
                full.skeleton_cycle_rank(), s.region.hole_count());
  }
  std::printf("(naive realizes every adjacent-cell connection — dozens of "
              "fake loops;\n the nerve selection brings the coarse rank to "
              "(nearly) the hole count,\n and the clean-up finishes the "
              "job)\n");
  return 0;
}
