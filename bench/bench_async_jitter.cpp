// Robustness beyond the paper: §III-B assumes site floods start "at
// roughly the same time" and travel "at approximately the same speed".
// This bench injects bounded random per-transmission delays (messages
// overtake each other; first-arrival records come along longer paths)
// and measures how the extracted skeleton degrades.
#include <cstdio>

#include "bench_util.h"
#include "core/protocols.h"

int main() {
  using namespace skelex;
  const geom::Region region = geom::shapes::window();
  deploy::ScenarioSpec spec;
  spec.target_nodes = 2592;
  spec.target_avg_deg = 6.5;
  spec.seed = 7;
  const deploy::Scenario sc = deploy::make_udg_scenario(region, spec);
  const net::Graph& g = sc.graph;
  const geom::ReferenceMedialAxis axis(region);

  std::printf("=== Asynchrony robustness (Window): per-message delay "
              "jitter 0..J extra rounds ===\n");
  std::printf("%7s %7s %6s %6s %5s %11s %9s %9s %8s\n", "jitter", "rounds",
              "sites", "skel", "cyc", "cyc==holes", "med(R)", "max(R)",
              "coverage");
  for (int jitter : {0, 1, 2, 3, 4}) {
    const core::DistributedExtraction dist =
        core::extract_skeleton_distributed(g, core::Params{}, jitter, 42);
    const core::SkeletonResult& r = dist.result;
    const metrics::Medialness med = metrics::medialness(g, r.skeleton, axis);
    std::printf("%7d %7d %6zu %6d %5d %11s %9.2f %9.2f %8.2f\n", jitter,
                dist.stats.rounds, r.critical_nodes.size(),
                r.skeleton.node_count(), r.skeleton_cycle_rank(),
                r.skeleton_cycle_rank() == 4 ? "yes" : "NO",
                med.mean / sc.range, med.max / sc.range,
                metrics::axis_coverage(g, r.skeleton, axis, 3.0 * sc.range));
  }
  std::printf("(expect: rounds grow with jitter; topology and medialness "
              "degrade gracefully,\n holding up at moderate jitter — the "
              "paper's synchrony assumption is soft)\n");

  std::printf("\n=== Packet-loss robustness (Window): reception loss "
              "probability p ===\n");
  std::printf("%7s %6s %6s %5s %11s %9s %9s %8s\n", "loss", "sites", "skel",
              "cyc", "cyc==holes", "med(R)", "max(R)", "coverage");
  for (double loss : {0.0, 0.05, 0.1, 0.2, 0.3}) {
    const core::DistributedExtraction dist =
        core::extract_skeleton_distributed(g, core::Params{}, 0, 42, loss);
    const core::SkeletonResult& r = dist.result;
    const metrics::Medialness med = metrics::medialness(g, r.skeleton, axis);
    std::printf("%7.2f %6zu %6d %5d %11s %9.2f %9.2f %8.2f\n", loss,
                r.critical_nodes.size(), r.skeleton.node_count(),
                r.skeleton_cycle_rank(),
                r.skeleton_cycle_rank() == 4 ? "yes" : "NO",
                med.mean / sc.range, med.max / sc.range,
                metrics::axis_coverage(g, r.skeleton, axis, 3.0 * sc.range));
  }
  std::printf("(flooding's path diversity absorbs moderate loss; heavy loss "
              "shrinks the\n perceived neighborhoods and the skeleton "
              "frays — quantifying the algorithm's\n operating envelope)\n");
  return 0;
}
