// Baseline comparison (§I / §VI): our boundary-free extraction vs MAP
// and CASE, which both REQUIRE boundary input.
//   1. With a perfect geometric boundary oracle, all three are medial.
//   2. MAP's pathology: a small boundary bump spawns a long spurious
//      branch; CASE's windowed corner detector suppresses it; ours never
//      sees the boundary at all.
//   3. With realistic (statistical) boundary detection instead of the
//      oracle, the baselines degrade; ours is unaffected (it takes no
//      boundary input).
#include <cstdio>

#include "baseline/case.h"
#include "baseline/map.h"
#include "bench_util.h"
#include "geometry/medial_axis_ref.h"

namespace {

using namespace skelex;

struct BaselineRow {
  const char* algo;
  int skeleton_nodes;
  double medial_mean_R;
  double medial_max_R;
  int bump_zone_nodes;
};

int bump_zone(const net::Graph& g, const core::SkeletonGraph& sk) {
  int count = 0;
  for (int v : sk.nodes()) {
    const geom::Vec2 p = g.position(v);
    if (p.y > 28.0 && p.x > 38.0 && p.x < 62.0) ++count;
  }
  return count;
}

BaselineRow measure(const char* algo, const net::Graph& g,
                    const core::SkeletonGraph& sk,
                    const geom::ReferenceMedialAxis& axis, double range) {
  const metrics::Medialness med = metrics::medialness(g, sk, axis);
  return {algo, sk.node_count(), med.mean / range, med.max / range,
          bump_zone(g, sk)};
}

void print(const BaselineRow& r) {
  std::printf("  %-28s %6d %10.2f %9.2f %12d\n", r.algo, r.skeleton_nodes,
              r.medial_mean_R, r.medial_max_R, r.bump_zone_nodes);
}

}  // namespace

int main() {
  const geom::Region bumpy = geom::shapes::bumpy_rect(8.0, 6.0);
  deploy::ScenarioSpec spec;
  spec.target_nodes = 1600;
  spec.target_avg_deg = 8.0;
  spec.seed = 63;
  const deploy::Scenario sc = deploy::make_udg_scenario(bumpy, spec);
  const net::Graph& g = sc.graph;
  // Reference axis of the CLEAN rectangle: the bump is boundary noise,
  // so structure the bump spawns counts as deviation.
  const geom::Region clean = geom::shapes::rect(100.0, 40.0);
  geom::MedialAxisParams ap;
  ap.min_separation = 15.0;
  const geom::ReferenceMedialAxis axis(clean, ap);

  std::printf("=== Baselines on a rectangle with a boundary bump ===\n");
  std::printf("  %-28s %6s %10s %9s %12s\n", "algorithm (boundary input)",
              "skel", "med(R)", "max(R)", "bump_nodes");

  // Ours: no boundary input at all.
  const core::SkeletonResult ours = core::extract_skeleton(g, core::Params{});
  print(measure("skelex (none)", g, ours.skeleton, axis, sc.range));

  // Baselines with the perfect oracle.
  const baseline::BoundaryInfo oracle =
      baseline::geometric_boundary(g, bumpy, 2.0);
  baseline::MapParams mp;
  mp.min_separation = 15.0;
  const baseline::BaselineSkeleton map_oracle =
      baseline::map_skeleton(g, oracle, mp);
  print(measure("MAP (oracle boundary)", g, map_oracle.graph, axis, sc.range));

  baseline::CaseParams cp;
  cp.corner_window = 44.0;
  const baseline::BaselineSkeleton case_oracle =
      baseline::case_skeleton(g, oracle, bumpy, cp);
  print(measure("CASE (oracle boundary)", g, case_oracle.graph, axis, sc.range));

  // Baselines with realistic statistical boundary detection.
  const baseline::BoundaryInfo detected = baseline::statistical_boundary(g, 3, 0.2);
  const baseline::BaselineSkeleton map_det =
      baseline::map_skeleton(g, detected, mp);
  print(measure("MAP (detected boundary)", g, map_det.graph, axis, sc.range));

  std::printf("(expect: MAP/oracle grows bump_nodes — the long-branch "
              "pathology; CASE suppresses it;\n ours needs no boundary and "
              "stays clean; MAP on detected boundaries degrades further)\n");

  geom::Vec2 lo, hi;
  bumpy.bounding_box(lo, hi);
  std::filesystem::create_directories("bench_out");
  {
    viz::SvgWriter svg(lo, hi);
    svg.add_graph_nodes(g);
    svg.add_region_outline(bumpy);
    svg.add_skeleton(g, ours.skeleton, "#d62728", 2.0);
    svg.add_skeleton(g, map_oracle.graph, "#1f77b4", 1.2);
    svg.add_skeleton(g, case_oracle.graph, "#2ca02c", 1.2);
    svg.save("bench_out/baselines_bumpy.svg");
  }
  std::printf("SVG: bench_out/baselines_bumpy.svg "
              "(red=ours, blue=MAP, green=CASE)\n");
  return 0;
}
