// Reproduces Fig. 1: the full pipeline, stage by stage, on the paper's
// flagship Window-shaped network (2592 nodes, average degree 5.96).
// Prints the per-stage quantities corresponding to panels (a)-(h) and
// writes an SVG per stage into bench_out/.
#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace skelex;
  const geom::Region region = geom::shapes::window();
  deploy::ScenarioSpec spec;
  spec.target_nodes = 2592;
  spec.target_avg_deg = 5.96;
  spec.seed = 7;
  const deploy::Scenario sc = deploy::make_udg_scenario(region, spec);
  const net::Graph& g = sc.graph;

  std::printf("=== Fig. 1: pipeline stages on the Window network ===\n");
  std::printf("(a) original network:      %d nodes, avg degree %.2f "
              "(paper: 2592 nodes, 5.96)\n",
              g.n(), g.avg_degree());

  const core::SkeletonResult r = core::extract_skeleton(g, core::Params{});
  std::printf("(b) critical skeleton nodes: %zu\n", r.critical_nodes.size());
  int segments = 0, voronoi_nodes = 0;
  for (std::size_t v = 0; v < r.voronoi().is_segment.size(); ++v) {
    segments += r.voronoi().is_segment[v];
    voronoi_nodes += r.voronoi().is_voronoi_node[v];
  }
  std::printf("(c) segment nodes:           %d (voronoi nodes: %d) across %d "
              "cells\n",
              segments, voronoi_nodes, r.voronoi().cell_count());
  std::printf("(d) coarse skeleton:         %d nodes, %d edges, cycle rank %d\n",
              r.coarse().node_count(), r.coarse().edge_count(),
              r.coarse().cycle_rank());
  std::printf("(e-g) loop clean-up:         %d fake loops removed, %d thin/"
              "braid collapsed, %d merge rounds\n",
              r.fake_loops_removed, r.thin_loops_collapsed, r.merge_rounds);
  std::printf("(h) final skeleton:          %d nodes, %d edges, %d "
              "component(s), cycle rank %d (holes: 4)\n",
              r.skeleton.node_count(), r.skeleton.edge_count(),
              r.skeleton.component_count(), r.skeleton_cycle_rank());

  const geom::ReferenceMedialAxis axis(region);
  const metrics::Medialness med = metrics::medialness(g, r.skeleton, axis);
  std::printf("quality: medialness mean %.2fR / max %.2fR, axis coverage "
              "%.2f @3R\n",
              med.mean / sc.range, med.max / sc.range,
              metrics::axis_coverage(g, r.skeleton, axis, 3.0 * sc.range));

  // Stage SVGs.
  geom::Vec2 lo, hi;
  region.bounding_box(lo, hi);
  std::filesystem::create_directories("bench_out");
  {
    viz::SvgWriter svg(lo, hi);
    svg.add_graph_edges(g);
    svg.add_graph_nodes(g);
    svg.save("bench_out/fig1a_network.svg");
  }
  {
    viz::SvgWriter svg(lo, hi);
    svg.add_graph_nodes(g);
    svg.add_nodes(g, r.critical_nodes, "#d62728", 3.5);
    svg.save("bench_out/fig1b_critical_nodes.svg");
  }
  {
    viz::SvgWriter svg(lo, hi);
    svg.add_graph_nodes(g);
    std::vector<int> seg;
    for (int v = 0; v < g.n(); ++v) {
      if (r.voronoi().is_segment[static_cast<std::size_t>(v)]) seg.push_back(v);
    }
    svg.add_nodes(g, seg, "#1f77b4", 2.2);
    svg.save("bench_out/fig1c_segment_nodes.svg");
  }
  {
    viz::SvgWriter svg(lo, hi);
    svg.add_graph_nodes(g);
    svg.add_skeleton(g, r.coarse(), "#ff7f0e", 1.6);
    svg.save("bench_out/fig1d_coarse.svg");
  }
  {
    viz::SvgWriter svg(lo, hi);
    svg.add_graph_nodes(g);
    svg.add_skeleton(g, r.skeleton);
    svg.save("bench_out/fig1h_final.svg");
  }
  std::printf("SVGs: bench_out/fig1{a,b,c,d,h}_*.svg\n");
  return 0;
}
