// Reproduces Fig. 3: the two by-products on the Fig. 1 Window network —
// (a) the segmentation into Voronoi cells and (b) the network boundaries.
#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "core/boundary_cycles.h"

int main() {
  using namespace skelex;
  const geom::Region region = geom::shapes::window();
  deploy::ScenarioSpec spec;
  spec.target_nodes = 2592;
  spec.target_avg_deg = 5.96;
  spec.seed = 7;
  const deploy::Scenario sc = deploy::make_udg_scenario(region, spec);
  const net::Graph& g = sc.graph;
  const core::SkeletonResult r = core::extract_skeleton(g, core::Params{});

  std::printf("=== Fig. 3: by-products on the Window network ===\n");

  // (a) Segmentation.
  const core::Segmentation& seg = r.segmentation;
  int min_size = g.n(), max_size = 0;
  for (int s : seg.segment_size) {
    min_size = std::min(min_size, s);
    max_size = std::max(max_size, s);
  }
  std::printf("(a) segmentation: %d segments over %d nodes "
              "(sizes %d..%d, mean %.1f)\n",
              seg.segment_count, g.n(), min_size, max_size,
              static_cast<double>(g.n()) / seg.segment_count);

  // (b) Boundaries: how well do detected boundary nodes match the true
  // geometric boundary?
  const core::BoundaryResult& b = r.boundary;
  int near_rim = 0;
  for (int v : b.boundary_nodes) {
    if (region.distance_to_boundary(g.position(v)) <= 2.0 * sc.range) {
      ++near_rim;
    }
  }
  std::printf("(b) boundaries: %zu boundary nodes detected, %.0f%% within "
              "2R of the true region boundary\n",
              b.boundary_nodes.size(),
              b.boundary_nodes.empty()
                  ? 0.0
                  : 100.0 * near_rim / static_cast<double>(b.boundary_nodes.size()));
  const core::BoundaryCycles bc = core::group_boundary_nodes(g, b);
  std::printf("    boundary features: %zu (ideal: 5 = outer rim + 4 panes); "
              "sizes:",
              bc.groups.size());
  for (const auto& grp : bc.groups) std::printf(" %zu", grp.size());
  std::printf("\n");

  geom::Vec2 lo, hi;
  region.bounding_box(lo, hi);
  std::filesystem::create_directories("bench_out");
  {
    viz::SvgWriter svg(lo, hi);
    svg.add_labeled_nodes(g, seg.segment_of, 2.0);
    svg.add_region_outline(region);
    svg.save("bench_out/fig3a_segmentation.svg");
  }
  {
    viz::SvgWriter svg(lo, hi);
    svg.add_graph_nodes(g);
    svg.add_nodes(g, b.boundary_nodes, "#2ca02c", 2.5);
    svg.add_region_outline(region);
    svg.save("bench_out/fig3b_boundaries.svg");
  }
  std::printf("SVGs: bench_out/fig3{a,b}_*.svg\n");
  return 0;
}
