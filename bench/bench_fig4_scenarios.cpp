// Reproduces Fig. 4: skeleton extraction on the paper's ten scenarios at
// (approximately) the paper's node counts and average degrees. The paper
// reports these visually; we print the quantitative equivalents — the
// skeleton must be one connected piece, carry one cycle per hole, lie
// medially, and span the reference axis.
//
// The ten scenarios are independent cells run in parallel (SweepRunner);
// rows, SVGs, and the JSON report are emitted in scenario order after
// the sweep, so output is identical at any --threads value.
//
// --large-n=N appends an eleventh cell: the window shape scaled to N
// nodes at avg degree 8, deployed with the counter-based sampler (the
// parallel-deterministic path the million-node tier uses). The ten
// paper scenarios are untouched, so recorded baselines only GROW a row.
#include <cstring>

#include "bench_util.h"

namespace {

struct Cell {
  std::string name;
  skelex::bench::RunRow row;
  skelex::net::Graph graph;
};

int parse_large_n(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--large-n=", 10) == 0) return std::atoi(a + 10);
    if (std::strcmp(a, "--large-n") == 0 && i + 1 < argc) {
      return std::atoi(argv[i + 1]);
    }
  }
  return 0;  // 0: paper scenarios only
}

}  // namespace

int main(int argc, char** argv) {
  using namespace skelex;
  bench::SweepRunner sweep(argc, argv);
  const int large_n = parse_large_n(argc, argv);
  std::vector<geom::shapes::NamedShape> shapes =
      geom::shapes::paper_scenarios();
  if (large_n > 0) {
    shapes.push_back({"window_xl", geom::shapes::window(), large_n, 8.0});
  }

  const std::vector<Cell> cells =
      sweep.run<Cell>(static_cast<int>(shapes.size()), [&](int i) {
        const geom::shapes::NamedShape& s =
            shapes[static_cast<std::size_t>(i)];
        deploy::ScenarioSpec spec;
        spec.target_nodes = s.paper_nodes;
        // At the paper's lowest degrees a random deployment sits at the
        // connectivity threshold; the jittered grid keeps the network
        // whole at the same density (see DESIGN.md).
        spec.target_avg_deg = s.paper_avg_deg;
        spec.seed = 20260704;
        spec.counter_sampling = s.name == "window_xl";
        deploy::Scenario sc = deploy::make_udg_scenario(s.region, spec);
        Cell cell;
        cell.name = s.name;
        cell.row = bench::evaluate(s.name, s.region, sc.graph, sc.range);
        cell.graph = std::move(sc.graph);
        return cell;
      });

  bench::print_header("Fig. 4: ten scenarios (paper n / avg degree)");
  bench::JsonWriter json;
  json.begin_object();
  json.key("bench").value("fig4_scenarios");
  json.key("threads").value(sweep.threads());
  json.key("scenarios").begin_array();
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    bench::print_row(c.row);
    bench::dump_svg("fig4_" + c.name, shapes[i].region, c.graph, c.row.result);
    json.begin_object();
    json.key("scenario").value(c.name);
    bench::write_row(json, c.row);
    json.end_object();
  }
  json.end_array();
  bench::write_metrics(json);
  json.end_object();
  bench::save_json("fig4_scenarios.json", json);
  std::printf("SVGs: bench_out/fig4_<shape>.svg, JSON: bench_out/fig4_scenarios.json\n");
  return 0;
}
