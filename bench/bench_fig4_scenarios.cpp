// Reproduces Fig. 4: skeleton extraction on the paper's ten scenarios at
// (approximately) the paper's node counts and average degrees. The paper
// reports these visually; we print the quantitative equivalents — the
// skeleton must be one connected piece, carry one cycle per hole, lie
// medially, and span the reference axis.
#include "bench_util.h"

int main() {
  using namespace skelex;
  bench::print_header("Fig. 4: ten scenarios (paper n / avg degree)");
  for (const geom::shapes::NamedShape& s : geom::shapes::paper_scenarios()) {
    deploy::ScenarioSpec spec;
    spec.target_nodes = s.paper_nodes;
    // At the paper's lowest degrees a random deployment sits at the
    // connectivity threshold; the jittered grid keeps the network whole
    // at the same density (see DESIGN.md).
    spec.target_avg_deg = s.paper_avg_deg;
    spec.seed = 20260704;
    const deploy::Scenario sc = deploy::make_udg_scenario(s.region, spec);
    const bench::RunRow row =
        bench::evaluate(s.name, s.region, sc.graph, sc.range);
    bench::print_row(row);
    bench::dump_svg("fig4_" + s.name, s.region, sc.graph, row.result);
  }
  std::printf("SVGs: bench_out/fig4_<shape>.svg\n");
  return 0;
}
