// Reproduces Fig. 5: the Window network across node densities. The paper
// varies the radio range to reach average degrees 9.95 / 14.24 / 19.23 /
// 22.72 (plus Fig. 1's 5.96 as the reference) and argues the skeleton is
// "very stable". We additionally measure that stability: the symmetric
// Hausdorff / mean nearest-neighbor distance between each density's
// skeleton and the reference skeleton, in units of the shape (field
// units; the shape spans 100x100).
//
// The five densities run as parallel sweep cells; stability is a
// sequential post-pass against the reference cell, and all output is
// emitted in density order (identical at any --threads value).
#include "bench_util.h"
#include "metrics/stability.h"

namespace {

struct Cell {
  skelex::bench::RunRow row;
  skelex::net::Graph graph;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace skelex;
  bench::SweepRunner sweep(argc, argv);
  const geom::Region region = geom::shapes::window();
  const std::vector<double> degrees = {5.96, 9.95, 14.24, 19.23, 22.72};

  const std::vector<Cell> cells =
      sweep.run<Cell>(static_cast<int>(degrees.size()), [&](int i) {
        deploy::ScenarioSpec spec;
        spec.target_nodes = 2592;
        spec.target_avg_deg = degrees[static_cast<std::size_t>(i)];
        spec.seed = 7;
        deploy::Scenario sc = deploy::make_udg_scenario(region, spec);
        char label[32];
        std::snprintf(label, sizeof label, "window deg=%.2f",
                      degrees[static_cast<std::size_t>(i)]);
        Cell cell;
        cell.row = bench::evaluate(label, region, sc.graph, sc.range);
        cell.graph = std::move(sc.graph);
        return cell;
      });

  bench::print_header("Fig. 5: Window under increasing density");
  bench::JsonWriter json;
  json.begin_object();
  json.key("bench").value("fig5_density");
  json.key("threads").value(sweep.threads());
  json.key("densities").begin_array();
  for (std::size_t i = 0; i < cells.size(); ++i) {
    bench::print_row(cells[i].row);
    bench::dump_svg(
        std::string("fig5_deg") + std::to_string(static_cast<int>(degrees[i])),
        region, cells[i].graph, cells[i].row.result);
    json.begin_object();
    json.key("target_avg_deg").value(degrees[i]);
    bench::write_row(json, cells[i].row);
    json.end_object();
  }
  json.end_array();

  std::printf("\nstability vs the deg=5.96 reference skeleton "
              "(field units; shape is 100x100):\n");
  json.key("stability_vs_reference").begin_array();
  for (std::size_t i = 1; i < cells.size(); ++i) {
    const metrics::PositionSetDistance d = metrics::skeleton_distance(
        cells[0].graph, cells[0].row.result.skeleton, cells[i].graph,
        cells[i].row.result.skeleton);
    std::printf("  deg %5.2f vs 5.96: hausdorff %5.2f, mean-nearest %5.2f\n",
                degrees[i], d.hausdorff, d.mean_nearest);
    json.begin_object();
    json.key("target_avg_deg").value(degrees[i]);
    json.key("hausdorff").value(d.hausdorff);
    json.key("mean_nearest").value(d.mean_nearest);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  bench::save_json("fig5_density.json", json);
  std::printf("SVGs: bench_out/fig5_deg*.svg, JSON: bench_out/fig5_density.json\n");
  return 0;
}
