// Reproduces Fig. 5: the Window network across node densities. The paper
// varies the radio range to reach average degrees 9.95 / 14.24 / 19.23 /
// 22.72 (plus Fig. 1's 5.96 as the reference) and argues the skeleton is
// "very stable". We additionally measure that stability: the symmetric
// Hausdorff / mean nearest-neighbor distance between each density's
// skeleton and the reference skeleton, in units of the shape (field
// units; the shape spans 100x100).
#include "bench_util.h"
#include "metrics/stability.h"

int main() {
  using namespace skelex;
  const geom::Region region = geom::shapes::window();
  const double degrees[] = {5.96, 9.95, 14.24, 19.23, 22.72};

  bench::print_header("Fig. 5: Window under increasing density");
  std::vector<bench::RunRow> rows;
  std::vector<net::Graph> graphs;
  for (double deg : degrees) {
    deploy::ScenarioSpec spec;
    spec.target_nodes = 2592;
    spec.target_avg_deg = deg;
    spec.seed = 7;
    const deploy::Scenario sc = deploy::make_udg_scenario(region, spec);
    char label[32];
    std::snprintf(label, sizeof label, "window deg=%.2f", deg);
    rows.push_back(bench::evaluate(label, region, sc.graph, sc.range));
    graphs.push_back(sc.graph);
    bench::print_row(rows.back());
    bench::dump_svg(std::string("fig5_deg") + std::to_string(static_cast<int>(deg)),
                    region, sc.graph, rows.back().result);
  }

  std::printf("\nstability vs the deg=5.96 reference skeleton "
              "(field units; shape is 100x100):\n");
  for (std::size_t i = 1; i < rows.size(); ++i) {
    const metrics::PositionSetDistance d = metrics::skeleton_distance(
        graphs[0], rows[0].result.skeleton, graphs[i], rows[i].result.skeleton);
    std::printf("  deg %5.2f vs 5.96: hausdorff %5.2f, mean-nearest %5.2f\n",
                degrees[i], d.hausdorff, d.mean_nearest);
  }
  std::printf("SVGs: bench_out/fig5_deg*.svg\n");
  return 0;
}
