// Reproduces Fig. 6: robustness under the Quasi-Unit-Disk-Graph radio
// model with alpha = 0.4, p = 0.3, on the Window and Star networks. As
// in the paper, the nominal range is enlarged so the network stays
// connected despite the probabilistic band.
#include "bench_util.h"
#include "radio/radio_model.h"

int main() {
  using namespace skelex;
  bench::print_header("Fig. 6: QUDG (alpha=0.4, p=0.3)");

  struct Case {
    const char* name;
    geom::Region region;
    int nodes;
  } cases[] = {
      {"window_qudg", geom::shapes::window(), 2592},
      {"star_qudg", geom::shapes::star(), 1394},
  };
  for (const Case& c : cases) {
    // Enlarge the nominal range ("we enlarge the radio range so that the
    // network is overall connected"): aim for a higher effective degree.
    deploy::ScenarioSpec spec;
    spec.target_nodes = c.nodes;
    spec.target_avg_deg = 10.0;
    spec.seed = 11;
    const double nominal =
        deploy::range_for_target_degree(c.region, c.nodes, spec.target_avg_deg);
    const radio::QuasiUnitDiskModel model(nominal, 0.4, 0.3);
    const deploy::Scenario sc = deploy::make_scenario(c.region, spec, model);
    const bench::RunRow row =
        bench::evaluate(c.name, c.region, sc.graph, nominal);
    bench::print_row(row);
    bench::dump_svg(std::string("fig6_") + c.name, c.region, sc.graph,
                    row.result);
  }
  std::printf("SVGs: bench_out/fig6_*.svg\n");
  return 0;
}
