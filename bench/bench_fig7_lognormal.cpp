// Reproduces Fig. 7: the Window network under the log-normal shadowing
// radio model (Hekmat & Van Mieghem) for xi = 0, 1, 2, 3. As in the
// paper, the deployment and nominal range are FIXED and only xi varies:
// larger xi admits more long links, so the average degree climbs
// (paper: 5.19 / 6.92 / 11.54 / 20.69) and the skeleton gets smoother.
#include "bench_util.h"
#include "radio/radio_model.h"

int main() {
  using namespace skelex;
  const geom::Region region = geom::shapes::window();
  bench::print_header("Fig. 7: log-normal radio model on Window");

  for (double xi : {0.0, 1.0, 2.0, 3.0}) {
    deploy::ScenarioSpec spec;
    spec.target_nodes = 2592;
    spec.target_avg_deg = 7.0;  // used only to size the nominal range
    spec.seed = 13;
    const double nominal =
        deploy::range_for_target_degree(region, spec.target_nodes, 7.0);
    const radio::LogNormalModel model(nominal, xi);
    const deploy::Scenario sc = deploy::make_scenario(region, spec, model);
    char label[32];
    std::snprintf(label, sizeof label, "window xi=%.0f", xi);
    const bench::RunRow row = bench::evaluate(label, region, sc.graph, nominal);
    bench::print_row(row);
    bench::dump_svg("fig7_xi" + std::to_string(static_cast<int>(xi)), region,
                    sc.graph, row.result);
  }
  std::printf("(expect: avg degree climbs with xi — paper saw 5.19 / 6.92 / "
              "11.54 / 20.69 — topology stays correct)\n");
  std::printf("SVGs: bench_out/fig7_xi*.svg\n");
  return 0;
}
