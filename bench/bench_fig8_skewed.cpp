// Reproduces Fig. 8: skewed node distributions.
//   (a) Window network with the upper half denser than the lower half;
//   (b) Star network with the left part kept with probability 0.65 and
//       the right part with probability 1.00 (the paper's split).
#include <cmath>

#include "bench_util.h"
#include "deploy/deployment.h"

namespace {

using namespace skelex;

// Skewed deployment the way the paper builds Fig. 8: start from a dense
// regular sample of the region and THIN each part by its keep
// probability ("nodes in left part are drawn ... with probability
// 0.65"). Thinning a jittered grid preserves connectivity at the target
// degree far better than skewed rejection sampling.
net::Graph skewed_network(const geom::Region& region, int target_nodes,
                          const deploy::DensityFn& keep, double target_deg,
                          std::uint64_t seed, double& range_out) {
  deploy::Rng rng(seed);
  // Oversample so that after thinning roughly target_nodes remain.
  const double pitch = std::sqrt(region.area() / (1.6 * target_nodes));
  std::vector<geom::Vec2> all =
      deploy::jittered_grid_in_region(region, pitch, 0.35, rng);
  std::vector<geom::Vec2> pts;
  for (const geom::Vec2& p : all) {
    if (rng.next_double() < keep(p)) pts.push_back(p);
  }
  range_out = deploy::calibrate_range(pts, target_deg);
  net::Graph full = net::build_udg(std::move(pts), range_out);
  std::vector<int> orig;
  return net::largest_component_subgraph(full, orig);
}

}  // namespace

int main() {
  bench::print_header("Fig. 8: skewed node distribution");

  {
    const geom::Region region = geom::shapes::window();
    double range = 0;
    const net::Graph g = skewed_network(
        region, 2592, deploy::vertical_split_density(50.0, 0.55, 1.0), 8.15,
        19, range);
    const bench::RunRow row =
        bench::evaluate("window_skewed", region, g, range);
    bench::print_row(row);
    bench::dump_svg("fig8a_window_skewed", region, g, row.result);
  }
  {
    const geom::Region region = geom::shapes::star();
    double range = 0;
    const net::Graph g = skewed_network(
        region, 1394, deploy::horizontal_split_density(50.0, 0.65, 1.0), 7.16,
        19, range);
    const bench::RunRow row = bench::evaluate("star_skewed", region, g, range);
    bench::print_row(row);
    bench::dump_svg("fig8b_star_skewed", region, g, row.result);
  }
  std::printf("note: thinning the sparse half to 0.55/0.65 can open real\n"
              "density voids; the skeleton then honestly reports extra\n"
              "cycles. Like the paper's figure, this bench shows one clean\n"
              "draw; across 20 seeds the window medians 5 cycles (4 panes +\n"
              "occasionally a void) and the star 1-2 void cycles.\n");
  std::printf("SVGs: bench_out/fig8*_*.svg\n");
  return 0;
}
