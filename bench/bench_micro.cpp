// Hot-path microbenchmarks (google-benchmark): the substrate operations
// the pipeline spends its time in, across network sizes.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "core/identify.h"
#include "core/index.h"
#include "core/memo/stage_cache.h"
#include "core/pipeline.h"
#include "core/protocols.h"
#include "core/voronoi.h"
#include "svc/service.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "deploy/scenario.h"
#include "geometry/shapes.h"
#include "net/bfs.h"
#include "net/khop.h"
#include "net/spatial_hash.h"

// --- Allocation counting -----------------------------------------------------
// Replacement global operator new that counts heap allocations, so
// BM_EngineRound can assert (as a reported counter, not a pass/fail)
// that the engine's steady-state rounds are allocation-free: the
// pending ring, inbox arenas, delivery keys, and slice offsets are all
// reused across rounds AND runs after warm-up.
std::atomic<long long> g_allocs{0};

void* counted_alloc(std::size_t sz) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(sz == 0 ? 1 : sz)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t sz) { return counted_alloc(sz); }
void* operator new[](std::size_t sz) { return counted_alloc(sz); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace skelex;

deploy::Scenario make_network(int n) {
  deploy::ScenarioSpec spec;
  spec.target_nodes = n;
  spec.target_avg_deg = 8.0;
  spec.seed = 1;
  return deploy::make_udg_scenario(geom::shapes::window(), spec);
}

void BM_SpatialHashBuild(benchmark::State& state) {
  const deploy::Scenario sc = make_network(static_cast<int>(state.range(0)));
  const auto& pos = sc.graph.positions();
  for (auto _ : state) {
    net::SpatialHash hash(pos, sc.range);
    benchmark::DoNotOptimize(hash);
  }
  state.SetItemsProcessed(state.iterations() * sc.graph.n());
}
BENCHMARK(BM_SpatialHashBuild)->Arg(1000)->Arg(4000)->Arg(16000);

void BM_GraphBuild(benchmark::State& state) {
  const deploy::Scenario sc = make_network(static_cast<int>(state.range(0)));
  const auto pos = sc.graph.positions();
  for (auto _ : state) {
    net::Graph g = net::build_udg(pos, sc.range);
    benchmark::DoNotOptimize(g);
  }
  state.SetItemsProcessed(state.iterations() * sc.graph.n());
}
BENCHMARK(BM_GraphBuild)->Arg(1000)->Arg(4000)->Arg(16000);

// Guards the O(1) add_edge path: inserting every edge of a calibrated
// network and finalizing (sort + dedupe) must stay linear in the edge
// count. A regression back to the per-insert duplicate scan shows up
// here as a superlinear items/s collapse at the larger sizes.
void BM_AddEdgeFinalize(benchmark::State& state) {
  const deploy::Scenario sc = make_network(static_cast<int>(state.range(0)));
  std::vector<std::pair<int, int>> edges;
  for (int v = 0; v < sc.graph.n(); ++v) {
    for (int w : sc.graph.neighbors(v)) {
      if (w > v) edges.emplace_back(v, w);
    }
  }
  for (auto _ : state) {
    net::Graph g(sc.graph.n());
    for (const auto& [u, v] : edges) g.add_edge(u, v);
    g.finalize();
    benchmark::DoNotOptimize(g);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(edges.size()));
}
BENCHMARK(BM_AddEdgeFinalize)->Arg(1000)->Arg(4000)->Arg(16000);

void BM_Bfs(benchmark::State& state) {
  const deploy::Scenario sc = make_network(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::bfs_distances(sc.graph, 0));
  }
  state.SetItemsProcessed(state.iterations() * sc.graph.n());
}
BENCHMARK(BM_Bfs)->Arg(1000)->Arg(4000)->Arg(16000);

void BM_KhopSizes(benchmark::State& state) {
  const deploy::Scenario sc = make_network(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::khop_sizes(sc.graph, 4));
  }
  state.SetItemsProcessed(state.iterations() * sc.graph.n());
}
BENCHMARK(BM_KhopSizes)->Arg(1000)->Arg(4000)->Arg(16000);

void BM_IndexAndIdentify(benchmark::State& state) {
  const deploy::Scenario sc = make_network(static_cast<int>(state.range(0)));
  const core::Params p;
  for (auto _ : state) {
    const core::IndexData idx = core::compute_index(sc.graph, p);
    benchmark::DoNotOptimize(core::identify_critical_nodes(sc.graph, idx, p));
  }
  state.SetItemsProcessed(state.iterations() * sc.graph.n());
}
BENCHMARK(BM_IndexAndIdentify)->Arg(1000)->Arg(4000);

void BM_Voronoi(benchmark::State& state) {
  const deploy::Scenario sc = make_network(static_cast<int>(state.range(0)));
  const core::Params p;
  const core::IndexData idx = core::compute_index(sc.graph, p);
  const auto crit = core::identify_critical_nodes(sc.graph, idx, p);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::build_voronoi(sc.graph, crit, p));
  }
  state.SetItemsProcessed(state.iterations() * sc.graph.n());
}
BENCHMARK(BM_Voronoi)->Arg(1000)->Arg(4000);

void BM_FullPipeline(benchmark::State& state) {
  const deploy::Scenario sc = make_network(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::extract_skeleton(sc.graph, core::Params{}));
  }
  state.SetItemsProcessed(state.iterations() * sc.graph.n());
}
BENCHMARK(BM_FullPipeline)->Arg(1000)->Arg(2592)->Arg(8000);

// Guards the shared-output SkeletonResult design: the heavyweight stage
// outputs (index arrays, Voronoi arrays, coarse skeleton) are
// shared_ptr-held, so copying an assembled result costs a few refcount
// bumps plus the per-request pieces — NOT a deep copy of O(n) arrays.
// A regression back to by-value stage members shows up here as copy
// time scaling with network size.
void BM_ResultAssembly(benchmark::State& state) {
  const deploy::Scenario sc = make_network(static_cast<int>(state.range(0)));
  core::memo::StageCache cache;
  const core::SkeletonResult r =
      core::extract_skeleton(sc.graph, core::Params{}, &cache);
  for (auto _ : state) {
    core::SkeletonResult copy = r;
    benchmark::DoNotOptimize(copy);
  }
  state.counters["allocs_per_copy"] = benchmark::Counter(
      static_cast<double>(g_allocs.exchange(0)),
      benchmark::Counter::kAvgIterations);
  state.SetItemsProcessed(state.iterations() * sc.graph.n());
}
BENCHMARK(BM_ResultAssembly)->Arg(1000)->Arg(4000);

// The memo cache's payoff, isolated: a fully warm extraction (all
// cacheable stages hit) against the cold BM_FullPipeline numbers above.
void BM_WarmExtraction(benchmark::State& state) {
  const deploy::Scenario sc = make_network(static_cast<int>(state.range(0)));
  core::memo::StageCache cache;
  benchmark::DoNotOptimize(
      core::extract_skeleton(sc.graph, core::Params{}, &cache));  // warm it
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::extract_skeleton(sc.graph, core::Params{}, &cache));
  }
  state.SetItemsProcessed(state.iterations() * sc.graph.n());
}
BENCHMARK(BM_WarmExtraction)->Arg(1000)->Arg(4000);

// --- Telemetry overhead guards ----------------------------------------------
// The telemetry-off pipeline must stay within noise of the pre-telemetry
// one (ISSUE: <= 2% on the largest thm5 size); compare these three
// directly. _TelemetryOff is the default state (no sink installed: spans
// read no clock); _NullSink pays the full span emission path;
// _RoundSeries adds per-round sampling in the simulator.
void BM_PipelineTelemetryOff(benchmark::State& state) {
  const deploy::Scenario sc = make_network(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::extract_skeleton(sc.graph, core::Params{}));
  }
  state.SetItemsProcessed(state.iterations() * sc.graph.n());
}
BENCHMARK(BM_PipelineTelemetryOff)->Arg(4000);

void BM_PipelineNullSink(benchmark::State& state) {
  const deploy::Scenario sc = make_network(static_cast<int>(state.range(0)));
  obs::NullTraceSink sink;
  obs::ScopedThreadSink scope(&sink);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::extract_skeleton(sc.graph, core::Params{}));
  }
  state.SetItemsProcessed(state.iterations() * sc.graph.n());
}
BENCHMARK(BM_PipelineNullSink)->Arg(4000);

void BM_DistributedRoundSeries(benchmark::State& state) {
  const deploy::Scenario sc = make_network(static_cast<int>(state.range(0)));
  const bool record = state.range(1) != 0;
  const core::Params p;
  for (auto _ : state) {
    sim::Engine engine(sc.graph);
    engine.enable_round_series(record);
    benchmark::DoNotOptimize(core::run_distributed_stages(sc.graph, p, engine));
  }
  state.SetItemsProcessed(state.iterations() * sc.graph.n());
}
BENCHMARK(BM_DistributedRoundSeries)->Args({2000, 0})->Args({2000, 1});

// Request-trace overhead on the serving path: a fully warm
// ExtractionService::handle with span recording off (Arg 0) vs on
// (Arg 1). The delta is what a traced request pays over tier-only
// accounting — the <= 2% serving-path budget.
void BM_ServiceWarmHandle(benchmark::State& state) {
  svc::ExtractionService::Options opt;
  opt.trace_requests = state.range(0) != 0;
  svc::ExtractionService service(opt);
  svc::Request req;
  req.nodes = 1000;
  req.with_trace = false;
  req.id = 1;
  benchmark::DoNotOptimize(service.handle(req));  // warm the cache
  for (auto _ : state) {
    benchmark::DoNotOptimize(service.handle(req));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServiceWarmHandle)->Arg(0)->Arg(1);

// --- Engine round loop -------------------------------------------------------
// Fixed per-round traffic that never quiesces: every node broadcasts a
// beacon each round (driven by a self-timer), receivers record the last
// origin heard in their own slot. Identical work every round, so the
// engine's per-round cost — pop, key build, slice sorts, delivery,
// requeue — is what the loop measures, with no flood die-off skewing
// the average.
class HeartbeatProtocol final : public sim::Protocol {
 public:
  explicit HeartbeatProtocol(int n) : last_(static_cast<std::size_t>(n), -1) {}
  void on_start(sim::NodeContext& ctx) override { tick(ctx); }
  void on_message(sim::NodeContext& ctx, const sim::Message& m) override {
    if (m.kind == 2) {
      tick(ctx);
    } else {
      last_[static_cast<std::size_t>(ctx.node())] = m.origin;
    }
  }
  std::vector<int> last_;

 private:
  static void tick(sim::NodeContext& ctx) {
    ctx.broadcast({1, ctx.node(), 1, 0, -1});
    ctx.schedule(1, {2, ctx.node(), 0, 0, -1});
  }
};

// Steady-state round cost of the serial engine, plus the arena-reuse
// guarantee: after one warm-up run grows every arena to capacity,
// further runs of the same workload perform (amortized) zero heap
// allocations per round — "allocs_per_round" reports the measured rate.
void BM_EngineRound(benchmark::State& state) {
  const deploy::Scenario sc = make_network(static_cast<int>(state.range(0)));
  constexpr int kRounds = 64;
  HeartbeatProtocol p(sc.graph.n());
  sim::Engine engine(sc.graph);
  engine.set_threads(1);
  engine.run(p, kRounds);  // warm-up: grows ring/inbox/key arenas
  long long rounds = 0;
  const long long before = g_allocs.load(std::memory_order_relaxed);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.run(p, kRounds));
    rounds += kRounds;
  }
  const long long after = g_allocs.load(std::memory_order_relaxed);
  state.counters["allocs_per_round"] =
      static_cast<double>(after - before) / static_cast<double>(rounds);
  state.SetItemsProcessed(state.iterations() * sc.graph.n() * kRounds);
}
BENCHMARK(BM_EngineRound)->Arg(1000)->Arg(4000);

// The same workload under intra-round parallel delivery: results are
// bit-identical at any thread count (test_engine_parallel asserts it);
// this measures what the chunk staging + canonical merge machinery
// costs relative to the serial direct-to-ring path. On a single-core
// host the >1-thread rows expose pure overhead; on a multi-core host
// they show the speedup.
void BM_EngineParallelMerge(benchmark::State& state) {
  const deploy::Scenario sc = make_network(static_cast<int>(state.range(0)));
  const int threads = static_cast<int>(state.range(1));
  constexpr int kRounds = 32;
  HeartbeatProtocol p(sc.graph.n());
  sim::Engine engine(sc.graph);
  engine.set_threads(threads);
  engine.run(p, kRounds);  // warm-up
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.run(p, kRounds));
  }
  state.SetItemsProcessed(state.iterations() * sc.graph.n() * kRounds);
}
BENCHMARK(BM_EngineParallelMerge)
    ->Args({4000, 1})
    ->Args({4000, 2})
    ->Args({4000, 8});

// The raw handle cost: one labelled counter increment (sharded,
// relaxed), the unit every instrumented layer pays per event.
void BM_CounterInc(benchmark::State& state) {
  const obs::Counter c =
      obs::Registry::global().counter("bench_micro_counter");
  for (auto _ : state) c.inc();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CounterInc);

}  // namespace

BENCHMARK_MAIN();
