// Hot-path microbenchmarks (google-benchmark): the substrate operations
// the pipeline spends its time in, across network sizes.
#include <benchmark/benchmark.h>

#include "core/identify.h"
#include "core/index.h"
#include "core/pipeline.h"
#include "core/protocols.h"
#include "core/voronoi.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "deploy/scenario.h"
#include "geometry/shapes.h"
#include "net/bfs.h"
#include "net/khop.h"
#include "net/spatial_hash.h"

namespace {

using namespace skelex;

deploy::Scenario make_network(int n) {
  deploy::ScenarioSpec spec;
  spec.target_nodes = n;
  spec.target_avg_deg = 8.0;
  spec.seed = 1;
  return deploy::make_udg_scenario(geom::shapes::window(), spec);
}

void BM_SpatialHashBuild(benchmark::State& state) {
  const deploy::Scenario sc = make_network(static_cast<int>(state.range(0)));
  const auto& pos = sc.graph.positions();
  for (auto _ : state) {
    net::SpatialHash hash(pos, sc.range);
    benchmark::DoNotOptimize(hash);
  }
  state.SetItemsProcessed(state.iterations() * sc.graph.n());
}
BENCHMARK(BM_SpatialHashBuild)->Arg(1000)->Arg(4000)->Arg(16000);

void BM_GraphBuild(benchmark::State& state) {
  const deploy::Scenario sc = make_network(static_cast<int>(state.range(0)));
  const auto pos = sc.graph.positions();
  for (auto _ : state) {
    net::Graph g = net::build_udg(pos, sc.range);
    benchmark::DoNotOptimize(g);
  }
  state.SetItemsProcessed(state.iterations() * sc.graph.n());
}
BENCHMARK(BM_GraphBuild)->Arg(1000)->Arg(4000)->Arg(16000);

// Guards the O(1) add_edge path: inserting every edge of a calibrated
// network and finalizing (sort + dedupe) must stay linear in the edge
// count. A regression back to the per-insert duplicate scan shows up
// here as a superlinear items/s collapse at the larger sizes.
void BM_AddEdgeFinalize(benchmark::State& state) {
  const deploy::Scenario sc = make_network(static_cast<int>(state.range(0)));
  std::vector<std::pair<int, int>> edges;
  for (int v = 0; v < sc.graph.n(); ++v) {
    for (int w : sc.graph.neighbors(v)) {
      if (w > v) edges.emplace_back(v, w);
    }
  }
  for (auto _ : state) {
    net::Graph g(sc.graph.n());
    for (const auto& [u, v] : edges) g.add_edge(u, v);
    g.finalize();
    benchmark::DoNotOptimize(g);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(edges.size()));
}
BENCHMARK(BM_AddEdgeFinalize)->Arg(1000)->Arg(4000)->Arg(16000);

void BM_Bfs(benchmark::State& state) {
  const deploy::Scenario sc = make_network(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::bfs_distances(sc.graph, 0));
  }
  state.SetItemsProcessed(state.iterations() * sc.graph.n());
}
BENCHMARK(BM_Bfs)->Arg(1000)->Arg(4000)->Arg(16000);

void BM_KhopSizes(benchmark::State& state) {
  const deploy::Scenario sc = make_network(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::khop_sizes(sc.graph, 4));
  }
  state.SetItemsProcessed(state.iterations() * sc.graph.n());
}
BENCHMARK(BM_KhopSizes)->Arg(1000)->Arg(4000)->Arg(16000);

void BM_IndexAndIdentify(benchmark::State& state) {
  const deploy::Scenario sc = make_network(static_cast<int>(state.range(0)));
  const core::Params p;
  for (auto _ : state) {
    const core::IndexData idx = core::compute_index(sc.graph, p);
    benchmark::DoNotOptimize(core::identify_critical_nodes(sc.graph, idx, p));
  }
  state.SetItemsProcessed(state.iterations() * sc.graph.n());
}
BENCHMARK(BM_IndexAndIdentify)->Arg(1000)->Arg(4000);

void BM_Voronoi(benchmark::State& state) {
  const deploy::Scenario sc = make_network(static_cast<int>(state.range(0)));
  const core::Params p;
  const core::IndexData idx = core::compute_index(sc.graph, p);
  const auto crit = core::identify_critical_nodes(sc.graph, idx, p);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::build_voronoi(sc.graph, crit, p));
  }
  state.SetItemsProcessed(state.iterations() * sc.graph.n());
}
BENCHMARK(BM_Voronoi)->Arg(1000)->Arg(4000);

void BM_FullPipeline(benchmark::State& state) {
  const deploy::Scenario sc = make_network(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::extract_skeleton(sc.graph, core::Params{}));
  }
  state.SetItemsProcessed(state.iterations() * sc.graph.n());
}
BENCHMARK(BM_FullPipeline)->Arg(1000)->Arg(2592)->Arg(8000);

// --- Telemetry overhead guards ----------------------------------------------
// The telemetry-off pipeline must stay within noise of the pre-telemetry
// one (ISSUE: <= 2% on the largest thm5 size); compare these three
// directly. _TelemetryOff is the default state (no sink installed: spans
// read no clock); _NullSink pays the full span emission path;
// _RoundSeries adds per-round sampling in the simulator.
void BM_PipelineTelemetryOff(benchmark::State& state) {
  const deploy::Scenario sc = make_network(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::extract_skeleton(sc.graph, core::Params{}));
  }
  state.SetItemsProcessed(state.iterations() * sc.graph.n());
}
BENCHMARK(BM_PipelineTelemetryOff)->Arg(4000);

void BM_PipelineNullSink(benchmark::State& state) {
  const deploy::Scenario sc = make_network(static_cast<int>(state.range(0)));
  obs::NullTraceSink sink;
  obs::ScopedThreadSink scope(&sink);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::extract_skeleton(sc.graph, core::Params{}));
  }
  state.SetItemsProcessed(state.iterations() * sc.graph.n());
}
BENCHMARK(BM_PipelineNullSink)->Arg(4000);

void BM_DistributedRoundSeries(benchmark::State& state) {
  const deploy::Scenario sc = make_network(static_cast<int>(state.range(0)));
  const bool record = state.range(1) != 0;
  const core::Params p;
  for (auto _ : state) {
    sim::Engine engine(sc.graph);
    engine.enable_round_series(record);
    benchmark::DoNotOptimize(core::run_distributed_stages(sc.graph, p, engine));
  }
  state.SetItemsProcessed(state.iterations() * sc.graph.n());
}
BENCHMARK(BM_DistributedRoundSeries)->Args({2000, 0})->Args({2000, 1});

// The raw handle cost: one labelled counter increment (sharded,
// relaxed), the unit every instrumented layer pays per event.
void BM_CounterInc(benchmark::State& state) {
  const obs::Counter c =
      obs::Registry::global().counter("bench_micro_counter");
  for (auto _ : state) c.inc();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CounterInc);

}  // namespace

BENCHMARK_MAIN();
