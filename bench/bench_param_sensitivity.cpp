// Reproduces §V-B: "one does not need to choose k and l very carefully".
// Sweeps k and l on the Window network and reports the skeleton's
// structural and quality metrics — the homotopy (4 cycles) and the
// medial placement should hold across the sweep.
#include "bench_util.h"

int main() {
  using namespace skelex;
  const geom::Region region = geom::shapes::window();
  deploy::ScenarioSpec spec;
  spec.target_nodes = 2592;
  spec.target_avg_deg = 6.5;
  spec.seed = 7;
  const deploy::Scenario sc = deploy::make_udg_scenario(region, spec);

  bench::print_header("Sec. V-B: k / l parameter sweep on Window");
  for (int k : {2, 3, 4, 5, 6}) {
    for (int l : {2, 4, 6}) {
      core::Params p;
      p.k = k;
      p.l = l;
      char label[32];
      std::snprintf(label, sizeof label, "k=%d l=%d", k, l);
      bench::print_row(bench::evaluate(label, region, sc.graph, sc.range, p));
    }
  }
  std::printf("(expect: cyc==holes across the sweep; medialness stable)\n");
  return 0;
}
