// Robustness sweep: reception loss x crash-stop fraction x link churn on
// the Window and Star-hole fields, with every communication stage run
// under the reliable flooding wrapper (core/reliable.h). For each cell
// the extracted skeleton is compared against the fault-free baseline
// with the stability metrics of metrics/stability.h, and the wrapper's
// retransmission accounting quantifies the price of reliability.
// Results land in bench_out/robustness.json and per-shape SVG heatmaps.
//
// All (shape x churn x crash x loss) cells are independent and run in
// parallel (SweepRunner). Each cell's fault/loss RNG seed is splitmix64-
// derived from the cell index alone, and printing / heatmaps / JSON are
// emitted in cell order after the sweep — output is identical at any
// --threads value.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/reliable.h"
#include "deploy/rng.h"
#include "metrics/stability.h"
#include "sim/engine.h"
#include "sim/faults.h"

namespace {

using namespace skelex;

constexpr double kLoss[] = {0.0, 0.1, 0.2, 0.3};
constexpr double kCrashFrac[] = {0.0, 0.05, 0.1};
constexpr double kChurnFrac[] = {0.0, 0.1};
constexpr int kCrashRound = 6;  // mid-flight of the k-hop flood
constexpr std::uint64_t kSweepSeed = 0x5e1ec70b;

struct Cell {
  double loss = 0.0;
  double crash_frac = 0.0;
  double churn_frac = 0.0;
  int crashed = 0;
  int churn_links = 0;
  double hausdorff_R = 0.0;
  double mean_nearest_R = 0.0;
  int skeleton_nodes = 0;
  int components = 0;
  int cycles = 0;
  int warnings = 0;
  int stalled = 0;
  long long tx = 0;
  long long retransmissions = 0;
  long long gave_up = 0;
  bool hit_round_cap = false;
  // Reproducibility: the cell's fault/loss RNG seed and the content
  // digest of the compiled fault schedule (crashes + link-churn
  // windows) — a cell can be replayed from the JSON alone.
  std::uint64_t fault_seed = 0;
  std::uint64_t schedule_digest = 0;
  core::StageTrace trace;
};

std::vector<std::pair<int, int>> edge_list(const net::Graph& g) {
  std::vector<std::pair<int, int>> edges;
  for (int v = 0; v < g.n(); ++v) {
    for (int w : g.neighbors(v)) {
      if (w > v) edges.emplace_back(v, w);
    }
  }
  return edges;
}

Cell run_cell(const net::Graph& g, const core::SkeletonResult& baseline,
              double range, double loss, double crash_frac, double churn_frac,
              std::uint64_t seed) {
  Cell cell;
  cell.loss = loss;
  cell.crash_frac = crash_frac;
  cell.churn_frac = churn_frac;

  sim::Engine engine(g);
  if (loss > 0.0) engine.set_loss(loss, seed);
  sim::FaultPlan plan;
  deploy::Rng rng(seed ^ 0xfa57);
  for (int v = 0; v < g.n(); ++v) {
    if (crash_frac > 0.0 && rng.next_double() < crash_frac) {
      plan.crash_at(v, kCrashRound);
      ++cell.crashed;
    }
  }
  if (churn_frac > 0.0) {
    const auto edges = edge_list(g);
    for (std::size_t i = 0; i < edges.size(); ++i) {
      if (rng.next_double() < churn_frac) {
        plan.link_churn(edges[i].first, edges[i].second, /*down=*/2, /*up=*/3,
                        /*phase=*/static_cast<int>(i % 5));
        ++cell.churn_links;
      }
    }
  }
  cell.fault_seed = seed;
  cell.schedule_digest = plan.digest();
  if (!plan.empty()) engine.set_faults(plan);

  core::ReliableOptions opts;
  opts.max_retries = 10;
  opts.max_backoff = 8;
  opts.watchdog_rounds = 32;
  const core::ReliableExtraction ext =
      core::extract_skeleton_reliable(g, core::Params{}, engine, opts);

  const metrics::PositionSetDistance d =
      metrics::skeleton_distance(g, baseline.skeleton, g, ext.result.skeleton);
  cell.hausdorff_R = d.hausdorff / range;
  cell.mean_nearest_R = d.mean_nearest / range;
  cell.skeleton_nodes = ext.result.skeleton.node_count();
  cell.components = ext.result.skeleton_components();
  cell.cycles = ext.result.skeleton_cycle_rank();
  cell.warnings = static_cast<int>(ext.result.diagnostics.warnings.size());
  cell.stalled = ext.reliability.stalled_nodes;
  cell.tx = ext.stats.transmissions;
  cell.retransmissions = ext.reliability.retransmissions;
  cell.gave_up = ext.reliability.gave_up_links;
  cell.hit_round_cap = ext.stats.hit_round_cap;
  cell.trace = ext.result.trace;
  return cell;
}

// Simple heatmap: one row per (crash, churn) combination, one column per
// loss level, colored by mean nearest-neighbor distance to the baseline
// skeleton (green = identical, red = far).
void write_heatmap(const std::string& path, const std::string& title,
                   const std::vector<Cell>& cells) {
  const int cols = static_cast<int>(std::size(kLoss));
  const int rows = static_cast<int>(std::size(kCrashFrac) * std::size(kChurnFrac));
  const int cw = 110, ch = 56, left = 150, top = 60;
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return;
  std::fprintf(f,
               "<svg xmlns='http://www.w3.org/2000/svg' width='%d' "
               "height='%d' font-family='monospace' font-size='12'>\n",
               left + cols * cw + 20, top + rows * ch + 30);
  std::fprintf(f, "<text x='10' y='20' font-size='15'>%s</text>\n",
               title.c_str());
  std::fprintf(f,
               "<text x='10' y='38' fill='#555'>cell: mean nearest / "
               "Hausdorff distance to fault-free skeleton (in R)</text>\n");
  for (int c = 0; c < cols; ++c) {
    std::fprintf(f, "<text x='%d' y='%d'>p=%.1f</text>\n", left + c * cw + 30,
                 top - 6, kLoss[c]);
  }
  int r = 0;
  for (double churn : kChurnFrac) {
    for (double crash : kCrashFrac) {
      std::fprintf(f, "<text x='8' y='%d'>crash=%.2f ch=%.1f</text>\n",
                   top + r * ch + ch / 2 + 4, crash, churn);
      for (int c = 0; c < cols; ++c) {
        const Cell* cell = nullptr;
        for (const Cell& x : cells) {
          if (x.loss == kLoss[c] && x.crash_frac == crash &&
              x.churn_frac == churn) {
            cell = &x;
          }
        }
        if (cell == nullptr) continue;
        // 0 -> green, >= 2R -> red.
        const double t = std::min(1.0, cell->mean_nearest_R / 2.0);
        const int red = static_cast<int>(80 + 175 * t);
        const int green = static_cast<int>(200 - 140 * t);
        std::fprintf(f,
                     "<rect x='%d' y='%d' width='%d' height='%d' "
                     "fill='rgb(%d,%d,90)' stroke='white'/>\n",
                     left + c * cw, top + r * ch, cw, ch, red, green);
        std::fprintf(f,
                     "<text x='%d' y='%d' fill='white'>%.2f / %.2f</text>\n",
                     left + c * cw + 8, top + r * ch + 24, cell->mean_nearest_R,
                     cell->hausdorff_R);
        std::fprintf(f, "<text x='%d' y='%d' fill='white'>cyc=%d w=%d</text>\n",
                     left + c * cw + 8, top + r * ch + 42, cell->cycles,
                     cell->warnings);
      }
      ++r;
    }
  }
  std::fprintf(f, "</svg>\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

void append_cells(bench::JsonWriter& json, const std::vector<Cell>& cells) {
  json.begin_array();
  for (const Cell& c : cells) {
    json.begin_object();
    json.key("loss").value(c.loss);
    json.key("crash_frac").value(c.crash_frac);
    json.key("churn_frac").value(c.churn_frac);
    json.key("crashed").value(c.crashed);
    json.key("churn_links").value(c.churn_links);
    json.key("hausdorff_R").value(c.hausdorff_R);
    json.key("mean_nearest_R").value(c.mean_nearest_R);
    json.key("skeleton_nodes").value(c.skeleton_nodes);
    json.key("components").value(c.components);
    json.key("cycles").value(c.cycles);
    json.key("warnings").value(c.warnings);
    json.key("stalled").value(c.stalled);
    json.key("tx").value(c.tx);
    json.key("retransmissions").value(c.retransmissions);
    json.key("gave_up").value(c.gave_up);
    json.key("hit_round_cap").value(c.hit_round_cap);
    json.key("fault_seed").value(static_cast<long long>(c.fault_seed));
    json.key("schedule_digest")
        .value(static_cast<long long>(c.schedule_digest));
    bench::write_trace(json, c.trace);
    json.end_object();
  }
  json.end_array();
}

}  // namespace

int main(int argc, char** argv) {
  bench::SweepRunner sweep(argc, argv);

  const struct {
    const char* name;
    geom::Region region;
  } shapes[] = {{"window", geom::shapes::window()},
                {"star_hole", geom::shapes::star_hole()}};

  // Per-shape setup stays sequential: the scenario, the fault-free
  // baseline, and the graph's CSR cache (Graph::csr() is lazily built
  // and NOT thread-safe — extract_skeleton warms it here before the
  // parallel cells share the graph read-only).
  struct ShapeCase {
    std::string name;
    deploy::Scenario sc;
    core::SkeletonResult baseline;
  };
  std::vector<ShapeCase> cases;
  for (std::size_t si = 0; si < std::size(shapes); ++si) {
    deploy::ScenarioSpec spec;
    spec.target_nodes = 950;
    spec.target_avg_deg = 7.5;
    spec.seed = 17 + si;
    ShapeCase sh;
    sh.name = shapes[si].name;
    sh.sc = deploy::make_udg_scenario(shapes[si].region, spec);
    sh.baseline = core::extract_skeleton(sh.sc.graph, core::Params{});
    cases.push_back(std::move(sh));
  }

  // Flatten (shape, churn, crash, loss) into one parallel sweep.
  constexpr int kPerShape = static_cast<int>(
      std::size(kChurnFrac) * std::size(kCrashFrac) * std::size(kLoss));
  const int total_cells = kPerShape * static_cast<int>(cases.size());
  const std::vector<Cell> all =
      sweep.run<Cell>(total_cells, [&](int idx) {
        const int si = idx / kPerShape;
        int rest = idx % kPerShape;
        const double churn =
            kChurnFrac[static_cast<std::size_t>(rest) /
                       (std::size(kCrashFrac) * std::size(kLoss))];
        rest = rest % static_cast<int>(std::size(kCrashFrac) * std::size(kLoss));
        const double crash =
            kCrashFrac[static_cast<std::size_t>(rest) / std::size(kLoss)];
        const double loss = kLoss[static_cast<std::size_t>(rest) % std::size(kLoss)];
        const ShapeCase& sh = cases[static_cast<std::size_t>(si)];
        return run_cell(sh.sc.graph, sh.baseline, sh.sc.range, loss, crash,
                        churn, bench::SweepRunner::cell_seed(kSweepSeed, idx));
      });

  bench::JsonWriter json;
  json.begin_object();
  json.key("bench").value("robustness");
  json.key("threads").value(sweep.threads());
  json.key("sweep_seed").value(static_cast<long long>(kSweepSeed));
  json.key("shapes").begin_object();
  for (std::size_t si = 0; si < cases.size(); ++si) {
    const ShapeCase& sh = cases[si];
    const net::Graph& g = sh.sc.graph;
    const std::vector<Cell> cells(
        all.begin() + static_cast<long>(si) * kPerShape,
        all.begin() + static_cast<long>(si + 1) * kPerShape);

    std::printf(
        "=== %s: %d nodes, avg deg %.2f, baseline skeleton %d nodes / %d "
        "cycles ===\n",
        sh.name.c_str(), g.n(), g.avg_degree(), sh.baseline.skeleton.node_count(),
        sh.baseline.skeleton_cycle_rank());
    std::printf("%5s %6s %6s %8s %7s %7s %4s %4s %5s %9s %8s %7s\n", "loss",
                "crash", "churn", "meanNN/R", "haus/R", "skel", "cyc", "warn",
                "stall", "tx", "retx", "gaveup");
    for (const Cell& c : cells) {
      std::printf(
          "%5.2f %6.2f %6.2f %8.3f %7.3f %4d %4d %5d %5d %9lld %8lld "
          "%7lld%s\n",
          c.loss, c.crash_frac, c.churn_frac, c.mean_nearest_R, c.hausdorff_R,
          c.skeleton_nodes, c.cycles, c.warnings, c.stalled, c.tx,
          c.retransmissions, c.gave_up, c.hit_round_cap ? "  CAP" : "");
    }
    std::filesystem::create_directories("bench_out");
    write_heatmap("bench_out/robustness_" + sh.name + ".svg",
                  "Skeleton stability under faults — " + sh.name, cells);
    json.key(sh.name);
    append_cells(json, cells);
  }
  json.end_object();
  json.end_object();
  bench::save_json("robustness.json", json);
  std::printf("wrote bench_out/robustness.json\n");
  std::printf(
      "(expect: loss alone is fully absorbed — identical skeleton, cost "
      "shifted\n into retransmissions; crashes and churn degrade gracefully "
      "with warnings\n surfaced in diagnostics rather than failures)\n");
  return 0;
}
