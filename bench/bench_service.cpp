// Load generator for the batched extraction service: an in-process
// Server + client threads hammering it over real loopback sockets.
//
// Phases per run:
//   * cold — every distinct workload (shape x seed x params cell) is
//     requested once against an empty cache; mean latency recorded;
//   * warm (sequential) — the same workloads against the full cache;
//   * tail-variant — every workload with a never-seen prune_len, so
//     stages 1-6 replay from cache and only prune + byproducts run;
//   * warm (concurrent) — the workloads re-requested `--rounds` times
//     from `--clients` concurrent connections; per-request latencies
//     give p50/p99, wall time gives sustained req/s, and the service's
//     cache stats give the hit rate.
//
// Writes bench_out/service_load.json (stable schema; wall-clock fields
// are the only run-to-run variance). tools/record_bench.sh folds the
// numbers into BENCH_<N>.json, where the acceptance gate asserts warm
// latency >= 3x below cold.
//
// The report also embeds the process's metric registry (JSON snapshot
// plus the Prometheus exposition text) so a recorded bench carries the
// serving-path counters alongside the latency numbers.
//
//   bench_service [--threads N] [--clients N] [--rounds N] [--nodes N]
//                 [--request-trace 0|1]
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "exec/thread_pool.h"
#include "io/json.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "svc/protocol.h"
#include "svc/server.h"
#include "svc/service.h"

namespace {

using Clock = std::chrono::steady_clock;
using skelex::svc::Request;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

int arg_int(int argc, char** argv, const char* flag, int fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return std::atoi(argv[i + 1]);
  }
  return fallback;
}

// The workload mix: a few shapes and seeds plus a stage-4 param variant
// (which shares stages 1-3 with its sibling via the memo cache).
std::vector<Request> make_workloads(int nodes) {
  const char* shapes[] = {"window", "smile", "annulus"};
  std::vector<Request> w;
  for (const char* shape : shapes) {
    for (int seed = 1; seed <= 2; ++seed) {
      for (int prune = 6; prune <= 8; prune += 2) {
        Request r;
        r.shape = shape;
        r.nodes = nodes;
        r.seed = static_cast<std::uint64_t>(seed);
        r.params.prune_len = prune;
        r.with_trace = false;  // latency of extraction, not serialization
        w.push_back(r);
      }
    }
  }
  return w;
}

double percentile(std::vector<double>& sorted_ms, double p) {
  if (sorted_ms.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted_ms.size() - 1));
  return sorted_ms[idx];
}

}  // namespace

int main(int argc, char** argv) {
  const int threads = arg_int(argc, argv, "--threads", 4);
  const int clients = arg_int(argc, argv, "--clients", 4);
  const int rounds = arg_int(argc, argv, "--rounds", 20);
  const int nodes = arg_int(argc, argv, "--nodes", 1000);
  const bool trace_requests =
      arg_int(argc, argv, "--request-trace", 1) != 0;

  skelex::svc::ExtractionService::Options opt;
  opt.trace_requests = trace_requests;
  skelex::svc::ExtractionService service(opt);
  skelex::exec::ThreadPool pool(threads);
  skelex::svc::Server server(service, pool);
  const std::vector<Request> workloads = make_workloads(nodes);

  // --- cold phase: every workload once, sequentially -------------------------
  double cold_total_ms = 0;
  {
    skelex::svc::Client client(server.port());
    long long id = 0;
    for (Request req : workloads) {
      req.id = ++id;
      const Clock::time_point t0 = Clock::now();
      const std::string resp = client.request(req);
      cold_total_ms += ms_since(t0);
      if (resp.find("\"ok\": true") == std::string::npos) {
        std::fprintf(stderr, "cold request failed: %s\n", resp.c_str());
        return 1;
      }
    }
  }
  const double cold_ms =
      cold_total_ms / static_cast<double>(workloads.size());

  // --- warm latency, like-for-like -------------------------------------------
  // Same sequential single-client loop as the cold phase, now against a
  // fully warm cache: the cold/warm ratio isolates the memo cache's
  // payoff with no concurrency queueing mixed in.
  double warm_seq_total_ms = 0;
  int warm_seq_n = 0;
  {
    skelex::svc::Client client(server.port());
    long long id = 1'000'000;
    for (int round = 0; round < 3; ++round) {
      for (Request req : workloads) {
        req.id = ++id;
        const Clock::time_point t0 = Clock::now();
        const std::string resp = client.request(req);
        warm_seq_total_ms += ms_since(t0);
        ++warm_seq_n;
        if (resp.find("\"ok\": true") == std::string::npos) {
          std::fprintf(stderr, "warm request failed: %s\n", resp.c_str());
          return 1;
        }
      }
    }
  }
  const double warm_seq_ms = warm_seq_total_ms / warm_seq_n;

  // --- tail-variant phase ------------------------------------------------------
  // Every workload re-requested with a never-seen prune_len: the cache
  // replays stages 1-6 (index through cleanup) and recomputes only
  // prune + byproducts. The cold/tail ratio is the payoff of the keyed
  // tail DAG for parameter exploration ("same map, different pruning").
  double tail_total_ms = 0;
  int tail_n = 0;
  {
    skelex::svc::Client client(server.port());
    long long id = 2'000'000;
    for (Request req : workloads) {
      req.id = ++id;
      req.params.prune_len = 11;  // absent from the workload mix
      const Clock::time_point t0 = Clock::now();
      const std::string resp = client.request(req);
      tail_total_ms += ms_since(t0);
      ++tail_n;
      if (resp.find("\"ok\": true") == std::string::npos) {
        std::fprintf(stderr, "tail-variant request failed: %s\n", resp.c_str());
        return 1;
      }
    }
  }
  const double tail_variant_ms = tail_total_ms / tail_n;

  // --- warm phase: concurrent clients, synchronous round trips ---------------
  std::vector<std::vector<double>> lat(static_cast<std::size_t>(clients));
  std::atomic<int> failures{0};
  const Clock::time_point warm0 = Clock::now();
  std::vector<std::thread> threads_v;
  for (int c = 0; c < clients; ++c) {
    threads_v.emplace_back([&, c] {
      skelex::svc::Client client(server.port());
      std::vector<double>& out = lat[static_cast<std::size_t>(c)];
      long long id = 0;
      for (int round = 0; round < rounds; ++round) {
        for (Request req : workloads) {
          req.id = ++id;
          const Clock::time_point t0 = Clock::now();
          const std::string resp = client.request(req);
          out.push_back(ms_since(t0));
          if (resp.find("\"ok\": true") == std::string::npos) ++failures;
        }
      }
    });
  }
  for (std::thread& t : threads_v) t.join();
  const double warm_wall_ms = ms_since(warm0);

  std::vector<double> all;
  for (const auto& v : lat) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  const long long total = static_cast<long long>(all.size());
  double warm_sum = 0;
  for (double ms : all) warm_sum += ms;
  const double warm_ms = total > 0 ? warm_sum / static_cast<double>(total) : 0;
  const double req_per_s =
      warm_wall_ms > 0 ? 1000.0 * static_cast<double>(total) / warm_wall_ms : 0;

  const skelex::core::memo::CacheStats st = service.cache_stats();
  const double lookups = static_cast<double>(st.hits + st.misses);
  const double hit_rate =
      lookups > 0 ? static_cast<double>(st.hits) / lookups : 0;

  server.stop();

  skelex::io::JsonWriter j;
  j.begin_object();
  j.key("schema").value(1);
  j.key("host_threads")
      .value(static_cast<int>(std::thread::hardware_concurrency()));
  j.key("pool_threads").value(threads);
  j.key("clients").value(clients);
  j.key("workloads").value(static_cast<int>(workloads.size()));
  j.key("requests").value(total);
  j.key("failures").value(failures.load());
  j.key("max_in_flight").value(server.max_in_flight());
  j.key("cold_ms").value(cold_ms);
  j.key("warm_ms").value(warm_seq_ms);
  j.key("warm_speedup").value(warm_seq_ms > 0 ? cold_ms / warm_seq_ms : 0.0);
  j.key("tail_variant_ms").value(tail_variant_ms);
  j.key("tail_warm_speedup")
      .value(tail_variant_ms > 0 ? cold_ms / tail_variant_ms : 0.0);
  j.key("warm_concurrent_ms").value(warm_ms);
  j.key("p50_ms").value(percentile(all, 0.50));
  j.key("p99_ms").value(percentile(all, 0.99));
  j.key("req_per_s").value(req_per_s);
  j.key("hit_rate").value(hit_rate);
  j.key("cache").begin_object();
  j.key("hits").value(static_cast<long long>(st.hits));
  j.key("misses").value(static_cast<long long>(st.misses));
  j.key("insertions").value(static_cast<long long>(st.insertions));
  j.key("evictions").value(static_cast<long long>(st.evictions));
  j.key("bytes").value(static_cast<long long>(st.bytes));
  j.key("entries").value(static_cast<long long>(st.entries));
  j.end_object();
  j.key("request_trace").value(trace_requests);
  const skelex::obs::MetricSnapshot snap =
      skelex::obs::Registry::global().snapshot();
  j.key("metrics");
  snap.write_json(j);
  j.key("exposition").value(skelex::obs::render_prometheus(snap));
  j.end_object();
  j.save("bench_out/service_load.json");

  std::printf(
      "service: %lld requests, %d clients, %.0f req/s | cold %.2f ms -> warm "
      "%.3f ms (%.1fx), tail-variant %.2f ms (%.1fx) | p50 %.3f ms p99 %.3f "
      "ms | hit rate %.3f | max in-flight %d | failures %d\n",
      total, clients, req_per_s, cold_ms, warm_seq_ms,
      warm_seq_ms > 0 ? cold_ms / warm_seq_ms : 0.0, tail_variant_ms,
      tail_variant_ms > 0 ? cold_ms / tail_variant_ms : 0.0,
      percentile(all, 0.50), percentile(all, 0.99), hit_rate,
      server.max_in_flight(), failures.load());
  return failures.load() == 0 ? 0 : 1;
}
