// Reproduces Theorem 5 (§V-A): message complexity O((k + l + 1) n) and
// time complexity O(sqrt(n)). The communication stages run as REAL
// messages on the round-synchronous simulator; the engine counts radio
// transmissions (a broadcast is one) and rounds to quiescence.
//
// Expected shape: transmissions / n flat in n (linear total, the
// O((k+l+1) n) claim). Rounds must stay WITHIN the O(sqrt(n)) bound —
// rounds / sqrt(n) must not grow. In fact the measurement comes out even
// flatter than the bound: at fixed density the number of sites grows
// with n, so the Voronoi cells (whose radius caps the flood) keep a
// roughly constant hop radius; the paper's sqrt(n) is the worst case of
// a single site flooding the whole network.
#include <cmath>
#include <cstdio>

#include "core/protocols.h"
#include "deploy/scenario.h"
#include "geometry/shapes.h"

int main() {
  using namespace skelex;
  const geom::Region region = geom::shapes::window();
  const core::Params params;  // k = l = 4

  std::printf("=== Theorem 5: message and time complexity (k=l=4) ===\n");
  std::printf("%7s %7s %12s %8s %10s %7s %12s\n", "n", "avg_deg", "tx_total",
              "tx/n", "tx/((k+l+1)n)", "rounds", "rounds/sqrt(n)");
  for (int n : {500, 1000, 2000, 4000, 8000, 16000}) {
    deploy::ScenarioSpec spec;
    spec.target_nodes = n;
    spec.target_avg_deg = 8.0;
    spec.seed = 3;
    const deploy::Scenario sc = deploy::make_udg_scenario(region, spec);
    const core::DistributedRun run =
        core::run_distributed_stages(sc.graph, params);
    const sim::RunStats total = run.total();
    const double kl1 = params.k + params.l + 1;
    std::printf("%7d %7.2f %12lld %8.1f %10.2f %7d %12.2f\n", sc.graph.n(),
                sc.graph.avg_degree(),
                static_cast<long long>(total.transmissions),
                static_cast<double>(total.transmissions) / sc.graph.n(),
                static_cast<double>(total.transmissions) /
                    (kl1 * sc.graph.n()),
                total.rounds,
                total.rounds / std::sqrt(static_cast<double>(sc.graph.n())));
  }
  std::printf("(expect: tx/n and tx/((k+l+1)n) flat -> linear messages;\n rounds/sqrt(n) non-increasing -> within the O(sqrt(n)) time bound)\n");
  return 0;
}
