// Reproduces Theorem 5 (§V-A): message complexity O((k + l + 1) n) and
// time complexity O(sqrt(n)). The communication stages run as REAL
// messages on the round-synchronous simulator; the engine counts radio
// transmissions (a broadcast is one) and rounds to quiescence.
//
// Expected shape: transmissions / n flat in n (linear total, the
// O((k+l+1) n) claim). Rounds must stay WITHIN the O(sqrt(n)) bound —
// rounds / sqrt(n) must not grow. In fact the measurement comes out even
// flatter than the bound: at fixed density the number of sites grows
// with n, so the Voronoi cells (whose radius caps the flood) keep a
// roughly constant hop radius; the paper's sqrt(n) is the worst case of
// a single site flooding the whole network.
//
// The six network sizes are independent sweep cells (SweepRunner); the
// table and the JSON report are emitted in size order after the sweep.
//
// Flags (besides SweepRunner's --threads / --trace-out):
//   --max-n=N           drop sweep sizes above N (CI runs a reduced sweep).
//                       Raising it ABOVE 16000 opts into the large-n tier:
//                       n = 1e5 at --max-n 100000, n = 1e6 at --max-n
//                       1000000. Large cells deploy with the counter-based
//                       sampler (ScenarioSpec::counter_sampling), whose
//                       point set parallelizes deterministically; the six
//                       default sizes keep the stateful sampler so their
//                       results — including the golden fingerprints — are
//                       unchanged.
//   --min-n=N           drop sweep sizes below N (the CI large-n smoke runs
//                       exactly one cell with --min-n/--max-n 100000)
//   --telemetry         record per-round time series (per-row "series" JSON)
//   --engine-threads=T  intra-round parallelism per cell's engine
//                       (results bit-identical at any T; only wall time
//                       and the report's engine_threads field change)
#include <cmath>
#include <cstring>

#include "bench_util.h"
#include "core/protocols.h"

namespace {

struct Cell {
  int n = 0;
  double avg_deg = 0.0;
  skelex::sim::RunStats total;
  skelex::core::StageTrace trace;
  long long peak_rss_kb = 0;
};

int parse_int_flag(int argc, char** argv, const char* name) {
  const std::size_t len = std::strlen(name);
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, name, len) == 0 && a[len] == '=') {
      return std::atoi(a + len + 1);
    }
    if (std::strcmp(a, name) == 0 && i + 1 < argc) {
      return std::atoi(argv[i + 1]);
    }
  }
  return 0;  // 0: no bound
}

bool parse_telemetry(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--telemetry") == 0) return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace skelex;
  bench::SweepRunner sweep(argc, argv);
  const int max_n = parse_int_flag(argc, argv, "--max-n");
  const int min_n = parse_int_flag(argc, argv, "--min-n");
  const bool telemetry = parse_telemetry(argc, argv);
  const geom::Region region = geom::shapes::window();
  const core::Params params;  // k = l = 4
  std::vector<int> sizes = {500, 1000, 2000, 4000, 8000, 16000};
  // The large-n tier only joins the sweep when --max-n asks for it, so
  // the default run (and every existing baseline) is untouched.
  constexpr int kLargeTierFloor = 16000;
  for (const int big : {100'000, 1'000'000}) {
    if (max_n >= big) sizes.push_back(big);
  }
  if (max_n > 0) {
    std::erase_if(sizes, [&](int n) { return n > max_n; });
    if (sizes.empty()) sizes.push_back(max_n);
  }
  if (min_n > 0) std::erase_if(sizes, [&](int n) { return n < min_n; });
  if (sizes.empty()) {
    std::fprintf(stderr, "no sweep sizes between --min-n and --max-n\n");
    return 1;
  }

  const std::vector<Cell> cells =
      sweep.run<Cell>(static_cast<int>(sizes.size()), [&](int i) {
        deploy::ScenarioSpec spec;
        spec.target_nodes = sizes[static_cast<std::size_t>(i)];
        spec.target_avg_deg = 8.0;
        spec.seed = 3;
        // Large tier: counter-based deployment (parallel, deterministic
        // at any thread count). The default sizes keep the stateful
        // sampler so their recorded results never move.
        spec.counter_sampling = spec.target_nodes > kLargeTierFloor;
        const deploy::Scenario sc = deploy::make_udg_scenario(region, spec);
        sim::Engine engine(sc.graph);
        engine.set_threads(sweep.engine_threads());
        engine.enable_round_series(telemetry);
        const core::DistributedRun run =
            core::run_distributed_stages(sc.graph, params, engine);
        Cell cell;
        cell.n = sc.graph.n();
        cell.avg_deg = sc.graph.avg_degree();
        cell.total = run.total();
        cell.trace = run.trace;
        cell.peak_rss_kb = bench::read_peak_rss_kb();
        return cell;
      });

  std::printf("=== Theorem 5: message and time complexity (k=l=4) ===\n");
  std::printf("%7s %7s %12s %8s %10s %7s %12s\n", "n", "avg_deg", "tx_total",
              "tx/n", "tx/((k+l+1)n)", "rounds", "rounds/sqrt(n)");
  const double kl1 = params.k + params.l + 1;
  bench::JsonWriter json;
  json.begin_object();
  json.key("bench").value("thm5_complexity");
  json.key("threads").value(sweep.threads());
  json.key("engine_threads").value(sweep.engine_threads());
  json.key("rows").begin_array();
  for (const Cell& c : cells) {
    std::printf("%7d %7.2f %12lld %8.1f %10.2f %7d %12.2f\n", c.n, c.avg_deg,
                static_cast<long long>(c.total.transmissions),
                static_cast<double>(c.total.transmissions) / c.n,
                static_cast<double>(c.total.transmissions) / (kl1 * c.n),
                c.total.rounds,
                c.total.rounds / std::sqrt(static_cast<double>(c.n)));
    json.begin_object();
    json.key("n").value(c.n);
    json.key("avg_deg").value(c.avg_deg);
    json.key("transmissions").value(static_cast<long long>(c.total.transmissions));
    json.key("tx_per_node").value(static_cast<double>(c.total.transmissions) /
                                  c.n);
    json.key("rounds").value(c.total.rounds);
    json.key("peak_rss_kb").value(c.peak_rss_kb);
    bench::write_trace(json, c.trace);
    if (telemetry) bench::write_round_series(json, c.total.series);
    json.end_object();
  }
  json.end_array();
  bench::write_metrics(json);
  json.end_object();
  bench::save_json("thm5_complexity.json", json);
  std::printf("(expect: tx/n and tx/((k+l+1)n) flat -> linear messages;\n rounds/sqrt(n) non-increasing -> within the O(sqrt(n)) time bound)\n");
  std::printf("JSON: bench_out/thm5_complexity.json\n");
  return 0;
}
