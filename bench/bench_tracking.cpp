// Skeleton tracking under continuous churn: repair-strategy sweep for
// the self-healing maintainer (core/maintain.h). For each churn rate
// the SAME ChurnScript is replayed under three strategies —
//
//   incremental: repair_interval 1 (repair the round dirt appears)
//   lazy:        repair_interval 4 (batch dirt, bounded staleness)
//   full:        force_full (from-scratch recompute per repair; the
//                baseline incremental repair must beat per-event at low
//                churn)
//
// — and every cell reports tier counts, staleness, per-event repair
// cost, invariant violations (must be zero), and whether the final
// served skeleton matches the canonical from-scratch extraction.
//
// A second sweep runs the distributed stage-1/2 protocols on the
// union graph with the churn timeline compiled to a FaultPlan, honoring
// --engine-threads, and digests the full per-node results. The CI
// churn-determinism gate diffs bench_out/tracking.json between
// --engine-threads 1 and 8 (wall-time keys, all named *millis*, are
// stripped); the digests and every counter must be byte-identical.
//
// Reproducibility: the JSON records the base seed, each cell's churn
// seed, the script digest, and the compiled FaultPlan digest — a run
// can be reconstructed from the output file alone.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/maintain.h"
#include "core/protocols.h"
#include "sim/dynamics.h"
#include "sim/engine.h"

namespace {

using namespace skelex;

constexpr double kChurnRates[] = {0.05, 0.2, 0.5};  // events/round per kind
constexpr const char* kStrategies[] = {"incremental", "lazy", "full"};
constexpr std::uint64_t kSweepSeed = 0x7e11c4ac;
constexpr int kDefaultRounds = 60;

// Maintenance params for the sweep: tight stage-1 radii keep the
// locality ball well under the corridor's hop diameter, so sub-global
// tiers are reachable (the maintenance knob documented in
// docs/robustness.md).
core::MaintainOptions strategy_options(int strategy) {
  core::MaintainOptions opt;
  opt.params.k = 3;
  opt.params.l = 3;
  opt.params.local_max_radius = 1;
  switch (strategy) {
    case 0:
      opt.repair_interval = 1;
      break;
    case 1:
      opt.repair_interval = 4;
      break;
    default:
      opt.force_full = true;
      break;
  }
  return opt;
}

struct Cell {
  double rate = 0.0;
  int strategy = 0;
  std::uint64_t churn_seed = 0;
  std::uint64_t script_digest = 0;
  std::uint64_t plan_digest = 0;
  int rounds = 0;
  long long events = 0;
  long long repairs_local = 0;
  long long repairs_regional = 0;
  long long repairs_full = 0;
  long long escalations = 0;
  long long watchdog_forced = 0;
  long long invariant_violations = 0;
  int max_staleness = 0;
  long long region_nodes_total = 0;
  double repair_millis_total = 0.0;
  double mean_repair_millis_per_event = 0.0;
  int active_nodes_final = 0;
  std::uint64_t final_fingerprint = 0;
  std::uint64_t canonical_fingerprint = 0;
  bool final_matches_canonical = false;
  bool healthy = true;
};

sim::ChurnScript::RandomSpec churn_spec(double range, int rounds, double rate) {
  sim::ChurnScript::RandomSpec spec;
  spec.rounds = rounds;
  spec.join_rate = rate;
  spec.leave_rate = rate;
  spec.link_add_rate = 2 * rate;
  spec.link_remove_rate = 2 * rate;
  spec.range = range;
  return spec;
}

Cell run_cell(const deploy::Scenario& scn, double rate, int strategy,
              int rounds, std::uint64_t churn_seed) {
  Cell cell;
  cell.rate = rate;
  cell.strategy = strategy;
  cell.churn_seed = churn_seed;
  cell.rounds = rounds;

  const sim::ChurnScript script = sim::ChurnScript::random(
      scn.graph, churn_spec(scn.range, rounds, rate), churn_seed);
  cell.script_digest = script.digest();
  cell.plan_digest = script.to_fault_plan().digest();

  sim::DynamicTopology topo(scn.graph);
  core::SkeletonMaintainer maint(topo, strategy_options(strategy));
  maint.initialize();
  for (int round = 0; round < rounds; ++round) {
    (void)maint.advance(script, round);
  }
  // Flush any dirt still batched by the lazy strategy so the final
  // comparison is apples-to-apples.
  (void)maint.repair_now();

  const core::MaintainStats& st = maint.stats();
  cell.events = st.events;
  cell.repairs_local = st.repairs_local;
  cell.repairs_regional = st.repairs_regional;
  cell.repairs_full = st.repairs_full;
  cell.escalations = st.escalations;
  cell.watchdog_forced = st.watchdog_forced;
  cell.invariant_violations = st.invariant_failures;
  cell.max_staleness = st.max_staleness;
  cell.region_nodes_total = st.region_nodes_total;
  cell.repair_millis_total = st.repair_millis_total;
  cell.mean_repair_millis_per_event =
      st.events > 0 ? st.repair_millis_total / static_cast<double>(st.events)
                    : 0.0;
  cell.active_nodes_final = topo.active_count();
  cell.final_fingerprint = maint.served_fingerprint();
  cell.canonical_fingerprint =
      core::skeleton_fingerprint(maint.canonical().skeleton);
  cell.final_matches_canonical =
      cell.final_fingerprint == cell.canonical_fingerprint;
  cell.healthy = maint.healthy();
  return cell;
}

// FNV-1a over the complete distributed stage-1/2 per-node results — the
// value the churn-determinism gate compares across --engine-threads.
std::uint64_t digest_run(const core::DistributedRun& run) {
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t x) {
    for (int i = 0; i < 8; ++i) {
      h ^= (x >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  const auto mix_double = [&](double d) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &d, sizeof(bits));
    mix(bits);
  };
  for (int v : run.index.khop_size) mix(static_cast<std::uint64_t>(v));
  for (double d : run.index.centrality) mix_double(d);
  for (double d : run.index.index) mix_double(d);
  for (int v : run.critical_nodes) mix(static_cast<std::uint64_t>(v));
  const core::VoronoiResult& vr = run.voronoi;
  for (int v : vr.sites) mix(static_cast<std::uint64_t>(v));
  for (std::size_t i = 0; i < vr.site_of.size(); ++i) {
    mix(static_cast<std::uint64_t>(vr.site_of[i]));
    mix(static_cast<std::uint64_t>(vr.dist[i]));
    mix(static_cast<std::uint64_t>(vr.parent[i]));
    mix(static_cast<std::uint64_t>(vr.site2_of[i]));
    mix(static_cast<std::uint64_t>(vr.dist2[i]));
    mix(static_cast<std::uint64_t>(vr.via2[i]));
    for (const auto& r : vr.nearby[i]) {
      mix(static_cast<std::uint64_t>(r.site));
      mix(static_cast<std::uint64_t>(r.dist));
      mix(static_cast<std::uint64_t>(r.via));
    }
  }
  return h;
}

struct EngineCell {
  double rate = 0.0;
  std::uint64_t churn_seed = 0;
  std::uint64_t script_digest = 0;
  std::uint64_t plan_digest = 0;
  int carrier_nodes = 0;
  long long transmissions = 0;
  long long receptions = 0;
  long long fault_drops = 0;
  std::uint64_t result_digest = 0;
  double engine_millis = 0.0;
};

EngineCell run_engine_cell(const deploy::Scenario& scn, double rate,
                           int rounds, std::uint64_t churn_seed,
                           int engine_threads) {
  EngineCell cell;
  cell.rate = rate;
  cell.churn_seed = churn_seed;
  const sim::ChurnScript script = sim::ChurnScript::random(
      scn.graph, churn_spec(scn.range, rounds, rate), churn_seed);
  cell.script_digest = script.digest();
  const sim::FaultPlan plan = script.to_fault_plan();
  cell.plan_digest = plan.digest();
  const net::Graph carrier = script.union_graph(scn.graph);
  cell.carrier_nodes = carrier.n();

  sim::Engine engine(carrier);
  engine.set_faults(plan);
  if (engine_threads > 0) engine.set_threads(engine_threads);
  const auto t0 = std::chrono::steady_clock::now();
  const core::DistributedRun run =
      core::run_distributed_stages(carrier, core::Params{}, engine);
  const auto t1 = std::chrono::steady_clock::now();
  cell.engine_millis =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  cell.transmissions = run.total().transmissions;
  cell.receptions = run.total().receptions;
  cell.fault_drops = run.total().total_fault_drops();
  cell.result_digest = digest_run(run);
  return cell;
}

int parse_rounds(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--rounds=", 9) == 0) return std::atoi(a + 9);
    if (std::strcmp(a, "--rounds") == 0 && i + 1 < argc) {
      return std::atoi(argv[i + 1]);
    }
  }
  return kDefaultRounds;
}

}  // namespace

int main(int argc, char** argv) {
  bench::SweepRunner sweep(argc, argv);
  const int rounds = parse_rounds(argc, argv);

  // A long corridor: hop diameter far beyond the dirty-region locality
  // ball, the regime where incremental repair can pay off.
  deploy::ScenarioSpec spec;
  spec.target_nodes = 1200;
  spec.target_avg_deg = 10.0;
  spec.seed = 29;
  const deploy::Scenario scn =
      deploy::make_udg_scenario(geom::shapes::corridor(), spec);

  constexpr int kRates = static_cast<int>(std::size(kChurnRates));
  constexpr int kStrats = static_cast<int>(std::size(kStrategies));

  // Every strategy at a given rate replays the SAME script: the churn
  // seed depends on the rate index only.
  const std::vector<Cell> cells =
      sweep.run<Cell>(kRates * kStrats, [&](int idx) {
        const int ri = idx / kStrats;
        const int si = idx % kStrats;
        return run_cell(scn, kChurnRates[ri], si, rounds,
                        bench::SweepRunner::cell_seed(kSweepSeed, ri));
      });

  const std::vector<EngineCell> engine_cells =
      sweep.run<EngineCell>(kRates, [&](int ri) {
        return run_engine_cell(scn, kChurnRates[ri], rounds,
                               bench::SweepRunner::cell_seed(kSweepSeed, ri),
                               sweep.engine_threads());
      });

  std::printf("=== skeleton tracking under churn: %d nodes, %d rounds ===\n",
              scn.graph.n(), rounds);
  std::printf("%5s %-12s %7s %6s %6s %6s %5s %5s %6s %9s %12s %6s %5s\n",
              "rate", "strategy", "events", "local", "regio", "full", "esc",
              "wdog", "staleM", "ms_total", "ms_per_event", "canon", "inv");
  long long violations = 0;
  for (const Cell& c : cells) {
    violations += c.invariant_violations;
    std::printf(
        "%5.2f %-12s %7lld %6lld %6lld %6lld %5lld %5lld %6d %9.1f %12.3f "
        "%6s %5lld\n",
        c.rate, kStrategies[c.strategy], c.events, c.repairs_local,
        c.repairs_regional, c.repairs_full, c.escalations, c.watchdog_forced,
        c.max_staleness, c.repair_millis_total, c.mean_repair_millis_per_event,
        c.final_matches_canonical ? "yes" : "NO", c.invariant_violations);
  }
  std::printf("\n%5s %10s %12s %12s %10s  engine digest\n", "rate", "carrier",
              "tx", "drops", "ms");
  for (const EngineCell& e : engine_cells) {
    std::printf("%5.2f %10d %12lld %12lld %10.1f  %016llx\n", e.rate,
                e.carrier_nodes, e.transmissions, e.fault_drops,
                e.engine_millis,
                static_cast<unsigned long long>(e.result_digest));
  }
  for (int ri = 0; ri < kRates; ++ri) {
    const Cell& inc = cells[static_cast<std::size_t>(ri * kStrats)];
    const Cell& full = cells[static_cast<std::size_t>(ri * kStrats + 2)];
    if (inc.events > 0 && full.events > 0 &&
        inc.mean_repair_millis_per_event > 0.0) {
      std::printf(
          "rate %.2f: incremental %.3f ms/event vs full %.3f ms/event "
          "(%.1fx)\n",
          inc.rate, inc.mean_repair_millis_per_event,
          full.mean_repair_millis_per_event,
          full.mean_repair_millis_per_event /
              inc.mean_repair_millis_per_event);
    }
  }
  std::printf("invariant violations across all cells: %lld (must be 0)\n",
              violations);

  bench::JsonWriter json;
  json.begin_object();
  json.key("bench").value("tracking");
  json.key("threads").value(sweep.threads());
  json.key("engine_threads").value(sweep.engine_threads());
  json.key("rounds").value(rounds);
  json.key("nodes").value(scn.graph.n());
  json.key("base_seed").value(static_cast<long long>(kSweepSeed));
  json.key("cells").begin_array();
  for (const Cell& c : cells) {
    json.begin_object();
    json.key("rate").value(c.rate);
    json.key("strategy").value(kStrategies[c.strategy]);
    json.key("churn_seed").value(static_cast<long long>(c.churn_seed));
    json.key("script_digest").value(static_cast<long long>(c.script_digest));
    json.key("plan_digest").value(static_cast<long long>(c.plan_digest));
    json.key("events").value(c.events);
    json.key("repairs_local").value(c.repairs_local);
    json.key("repairs_regional").value(c.repairs_regional);
    json.key("repairs_full").value(c.repairs_full);
    json.key("escalations").value(c.escalations);
    json.key("watchdog_forced").value(c.watchdog_forced);
    json.key("invariant_violations").value(c.invariant_violations);
    json.key("max_staleness").value(c.max_staleness);
    json.key("region_nodes_total").value(c.region_nodes_total);
    json.key("repair_millis_total").value(c.repair_millis_total);
    json.key("mean_repair_millis_per_event")
        .value(c.mean_repair_millis_per_event);
    json.key("active_nodes_final").value(c.active_nodes_final);
    json.key("final_fingerprint")
        .value(static_cast<long long>(c.final_fingerprint));
    json.key("canonical_fingerprint")
        .value(static_cast<long long>(c.canonical_fingerprint));
    json.key("final_matches_canonical").value(c.final_matches_canonical);
    json.key("healthy").value(c.healthy);
    json.end_object();
  }
  json.end_array();
  json.key("engine").begin_array();
  for (const EngineCell& e : engine_cells) {
    json.begin_object();
    json.key("rate").value(e.rate);
    json.key("churn_seed").value(static_cast<long long>(e.churn_seed));
    json.key("script_digest").value(static_cast<long long>(e.script_digest));
    json.key("plan_digest").value(static_cast<long long>(e.plan_digest));
    json.key("carrier_nodes").value(e.carrier_nodes);
    json.key("transmissions").value(e.transmissions);
    json.key("receptions").value(e.receptions);
    json.key("fault_drops").value(e.fault_drops);
    json.key("result_digest").value(static_cast<long long>(e.result_digest));
    json.key("engine_millis").value(e.engine_millis);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  bench::save_json("tracking.json", json);
  std::printf("wrote bench_out/tracking.json\n");
  std::printf(
      "(expect: zero invariant violations everywhere; at low churn the "
      "incremental\n strategy repairs per-event far cheaper than full "
      "recompute; the engine\n result digests are identical at any "
      "--engine-threads value)\n");
  return violations == 0 ? 0 : 1;
}
