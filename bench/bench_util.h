// bench/bench_util.h
//
// Shared plumbing for the figure-reproduction benches: run the pipeline
// on a scenario, collect the quality metrics the paper argues visually,
// print aligned table rows, dump SVG figures and stable JSON reports
// next to the binary, and run sweep cells in parallel (SweepRunner).
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "core/pipeline.h"
#include "core/stage_trace.h"
#include "deploy/scenario.h"
#include "exec/thread_pool.h"
#include "geometry/medial_axis_ref.h"
#include "geometry/shapes.h"
#include "io/json.h"
#include "metrics/homotopy.h"
#include "metrics/quality.h"
#include "net/graph.h"
#include "obs/metrics.h"
#include "obs/series.h"
#include "obs/trace.h"
#include "viz/svg.h"

namespace skelex::bench {

// Peak resident set size of THIS PROCESS so far, in kB (VmHWM from
// /proc/self/status, falling back to getrusage ru_maxrss — also kB on
// Linux — where the kernel omits the VmHWM line), or 0 where neither
// source exists. The high-water mark is process-wide and monotone, so a
// per-cell reading taken when the cell finishes means "peak RSS up to
// and including this cell" — on a size-ordered sweep the last row is
// the sweep's memory budget, and the first jump past a row pinpoints
// which size blew it.
inline long long read_peak_rss_kb() {
  long long kb = 0;
  if (std::FILE* f = std::fopen("/proc/self/status", "r")) {
    char line[256];
    while (std::fgets(line, sizeof line, f) != nullptr) {
      if (std::strncmp(line, "VmHWM:", 6) == 0) {
        kb = std::atoll(line + 6);
        break;
      }
    }
    std::fclose(f);
  }
#if defined(__unix__) || defined(__APPLE__)
  if (kb == 0) {
    struct rusage ru {};
    if (getrusage(RUSAGE_SELF, &ru) == 0) kb = ru.ru_maxrss;
  }
#endif
  return kb;
}

// --- Stable JSON output ------------------------------------------------------
// The byte-stable append-only writer lives in io/json.h now (shared with
// the telemetry layer); benches keep using it under the old name.
using JsonWriter = io::JsonWriter;

// Serializes the global metrics registry under the key "metrics" — the
// snapshot is sorted by (name, labels) and records only thread-count-
// invariant facts, so this block is byte-identical at any --threads.
inline void write_metrics(JsonWriter& j) {
  j.key("metrics");
  obs::Registry::global().snapshot().write_json(j);
}

// Serializes a per-round time series under the key "series" as column
// arrays (compact, plot-ready). Empty series emit an empty object so
// the schema is stable whether or not recording was enabled.
inline void write_round_series(JsonWriter& j, const obs::RoundSeries& s) {
  j.key("series").begin_object();
  if (!s.empty()) {
    const auto column = [&](const char* name, auto field) {
      j.key(name).begin_array();
      for (const obs::RoundSample& r : s.samples()) {
        j.value(static_cast<long long>(r.*field));
      }
      j.end_array();
    };
    j.key("round").begin_array();
    for (const obs::RoundSample& r : s.samples()) j.value(r.round);
    j.end_array();
    column("transmissions", &obs::RoundSample::transmissions);
    column("receptions", &obs::RoundSample::receptions);
    column("queue_depth", &obs::RoundSample::queue_depth);
    column("fault_drops", &obs::RoundSample::fault_drops);
    column("retransmissions", &obs::RoundSample::retransmissions);
  }
  j.end_object();
}

// Serializes a StageTrace under the key "trace" — every bench JSON
// reports where the wall time went, stage by stage.
inline void write_trace(JsonWriter& j, const core::StageTrace& trace) {
  j.key("trace").begin_array();
  for (const core::StageTrace::Stage& s : trace.stages) {
    j.begin_object();
    j.key("stage").value(s.name);
    j.key("millis").value(s.millis);
    j.key("nodes").value(s.nodes);
    j.key("messages").value(s.messages);
    j.key("bytes").value(s.bytes);
    j.end_object();
  }
  j.end_array();
}

// --- Parallel sweeps ---------------------------------------------------------
// Runs the (scenario x trial) cells of a sweep on a thread pool. Each
// cell gets a splitmix64-derived seed (exec::derive_seed) that depends
// only on the cell index, and cells write their results into an
// index-addressed slot — so the sweep's output is identical at 1 and N
// threads, and ordered output is emitted after the parallel phase.
//
// Thread count: --threads=N (or "--threads N") on the bench's command
// line, else SKELEX_THREADS, else hardware concurrency.
//
// Tracing: --trace-out=DIR (or "--trace-out DIR") gives every sweep
// cell its own MemoryTraceSink, installed as the worker's thread-local
// sink for the duration of that cell, and saves DIR/cell<i>.trace.json
// after the parallel phase — per-cell Perfetto traces that never
// interleave even though cells share the pool's workers.
class SweepRunner {
 public:
  SweepRunner(int argc, char** argv)
      : pool_(parse_threads(argc, argv)),
        engine_threads_(parse_engine_threads(argc, argv)),
        trace_dir_(parse_trace_dir(argc, argv)) {}

  int threads() const { return pool_.thread_count(); }
  // Intra-round engine parallelism for cells that run a sim::Engine:
  // --engine-threads=N (or "--engine-threads N"), else 0, which lets
  // Engine::set_threads fall back to SKELEX_ENGINE_THREADS / serial.
  // Orthogonal to --threads (across-cell parallelism); combining both
  // oversubscribes, so sweeps usually set one or the other.
  int engine_threads() const { return engine_threads_; }
  bool tracing() const { return !trace_dir_.empty(); }
  const std::string& trace_dir() const { return trace_dir_; }

  // Per-cell RNG seed, stable across thread counts and run order.
  static std::uint64_t cell_seed(std::uint64_t base, int cell) {
    return exec::derive_seed(base, static_cast<std::uint64_t>(cell));
  }

  // fn(i) -> Cell for each i in [0, cells); returns results in cell
  // order regardless of scheduling.
  template <typename Cell, typename Fn>
  std::vector<Cell> run(int cells, Fn&& fn) {
    std::vector<Cell> out(static_cast<std::size_t>(cells));
    if (trace_dir_.empty()) {
      pool_.parallel_for(
          cells, [&](int i) { out[static_cast<std::size_t>(i)] = fn(i); });
      return out;
    }
    std::vector<obs::MemoryTraceSink> sinks(static_cast<std::size_t>(cells));
    pool_.parallel_for(cells, [&](int i) {
      obs::ScopedThreadSink scope(&sinks[static_cast<std::size_t>(i)]);
      out[static_cast<std::size_t>(i)] = fn(i);
    });
    for (int i = 0; i < cells; ++i) {
      sinks[static_cast<std::size_t>(i)].save(trace_dir_ + "/cell" +
                                              std::to_string(i) +
                                              ".trace.json");
    }
    return out;
  }

 private:
  static int parse_threads(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      const char* a = argv[i];
      if (std::strncmp(a, "--threads=", 10) == 0) return std::atoi(a + 10);
      if (std::strcmp(a, "--threads") == 0 && i + 1 < argc) {
        return std::atoi(argv[i + 1]);
      }
    }
    return 0;  // ThreadPool falls back to SKELEX_THREADS / hardware
  }

  static int parse_engine_threads(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      const char* a = argv[i];
      if (std::strncmp(a, "--engine-threads=", 17) == 0) {
        return std::atoi(a + 17);
      }
      if (std::strcmp(a, "--engine-threads") == 0 && i + 1 < argc) {
        return std::atoi(argv[i + 1]);
      }
    }
    return 0;  // Engine falls back to SKELEX_ENGINE_THREADS / serial
  }

  static std::string parse_trace_dir(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      const char* a = argv[i];
      if (std::strncmp(a, "--trace-out=", 12) == 0) return a + 12;
      if (std::strcmp(a, "--trace-out") == 0 && i + 1 < argc) {
        return argv[i + 1];
      }
    }
    return {};
  }

  exec::ThreadPool pool_;
  int engine_threads_ = 0;
  std::string trace_dir_;
};

struct RunRow {
  std::string label;
  int nodes = 0;
  double avg_deg = 0.0;
  double range = 0.0;
  int sites = 0;
  int skeleton_nodes = 0;
  int components = 0;
  int cycles = 0;
  int holes = 0;
  double medial_mean_R = 0.0;  // mean dist to reference axis, in radio ranges
  double medial_max_R = 0.0;
  double coverage = 0.0;  // axis coverage at 3R
  double millis = 0.0;
  long long peak_rss_kb = 0;  // process VmHWM when the cell finished
  core::SkeletonResult result;
};

inline RunRow evaluate(const std::string& label, const geom::Region& region,
                       const net::Graph& g, double range,
                       const core::Params& params = {}) {
  RunRow row;
  row.label = label;
  row.nodes = g.n();
  row.avg_deg = g.avg_degree();
  row.range = range;
  const auto t0 = std::chrono::steady_clock::now();
  row.result = core::extract_skeleton(g, params);
  const auto t1 = std::chrono::steady_clock::now();
  row.millis = std::chrono::duration<double, std::milli>(t1 - t0).count();
  row.peak_rss_kb = read_peak_rss_kb();
  row.sites = static_cast<int>(row.result.critical_nodes.size());
  row.skeleton_nodes = row.result.skeleton.node_count();
  row.components = row.result.skeleton.component_count();
  row.cycles = row.result.skeleton_cycle_rank();
  row.holes = static_cast<int>(region.hole_count());
  const geom::ReferenceMedialAxis axis(region);
  if (!axis.empty() && row.skeleton_nodes > 0) {
    const metrics::Medialness med = metrics::medialness(g, row.result.skeleton, axis);
    row.medial_mean_R = med.mean / range;
    row.medial_max_R = med.max / range;
    row.coverage = metrics::axis_coverage(g, row.result.skeleton, axis, 3.0 * range);
  }
  return row;
}

inline void print_header(const char* title) {
  std::printf("\n=== %s ===\n", title);
  std::printf("%-22s %6s %7s %6s %6s %6s %5s %11s %9s %8s %8s %7s\n", "scenario",
              "nodes", "avg_deg", "sites", "skel", "comps", "cyc", "cyc==holes",
              "med(R)", "max(R)", "coverage", "ms");
}

inline void print_row(const RunRow& r) {
  std::printf("%-22s %6d %7.2f %6d %6d %6d %5d %11s %9.2f %8.2f %8.2f %7.1f\n",
              r.label.c_str(), r.nodes, r.avg_deg, r.sites, r.skeleton_nodes,
              r.components, r.cycles,
              r.cycles == r.holes ? "yes" : "NO", r.medial_mean_R,
              r.medial_max_R, r.coverage, r.millis);
}

// Serializes a RunRow's metrics (and its pipeline StageTrace) into the
// currently open JSON object.
inline void write_row(JsonWriter& j, const RunRow& r) {
  j.key("nodes").value(r.nodes);
  j.key("avg_deg").value(r.avg_deg);
  j.key("range").value(r.range);
  j.key("sites").value(r.sites);
  j.key("skeleton_nodes").value(r.skeleton_nodes);
  j.key("components").value(r.components);
  j.key("cycles").value(r.cycles);
  j.key("holes").value(r.holes);
  j.key("medial_mean_R").value(r.medial_mean_R);
  j.key("medial_max_R").value(r.medial_max_R);
  j.key("coverage").value(r.coverage);
  j.key("millis").value(r.millis);
  // Run-varying like millis: CI's determinism diffs and compare_bench.py
  // both strip it.
  j.key("peak_rss_kb").value(r.peak_rss_kb);
  write_trace(j, r.result.trace);
}

// Writes a bench's JSON report into bench_out/<name>.
inline void save_json(const std::string& name, const JsonWriter& j) {
  std::filesystem::create_directories("bench_out");
  j.save("bench_out/" + name);
}

// Writes an SVG of the network + skeleton into bench_out/<name>.svg.
inline void dump_svg(const std::string& name, const geom::Region& region,
                     const net::Graph& g, const core::SkeletonResult& r) {
  std::filesystem::create_directories("bench_out");
  geom::Vec2 lo, hi;
  region.bounding_box(lo, hi);
  viz::SvgWriter svg(lo, hi);
  svg.add_graph_edges(g);
  svg.add_graph_nodes(g);
  svg.add_region_outline(region);
  svg.add_nodes(g, r.critical_nodes, "#1f77b4", 3.0);
  svg.add_skeleton(g, r.skeleton);
  svg.save("bench_out/" + name + ".svg");
}

}  // namespace skelex::bench
