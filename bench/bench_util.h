// bench/bench_util.h
//
// Shared plumbing for the figure-reproduction benches: run the pipeline
// on a scenario, collect the quality metrics the paper argues visually,
// print aligned table rows, and dump SVG figures next to the binary.
#pragma once

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>

#include "core/pipeline.h"
#include "deploy/scenario.h"
#include "geometry/medial_axis_ref.h"
#include "geometry/shapes.h"
#include "metrics/homotopy.h"
#include "metrics/quality.h"
#include "net/graph.h"
#include "viz/svg.h"

namespace skelex::bench {

struct RunRow {
  std::string label;
  int nodes = 0;
  double avg_deg = 0.0;
  double range = 0.0;
  int sites = 0;
  int skeleton_nodes = 0;
  int components = 0;
  int cycles = 0;
  int holes = 0;
  double medial_mean_R = 0.0;  // mean dist to reference axis, in radio ranges
  double medial_max_R = 0.0;
  double coverage = 0.0;  // axis coverage at 3R
  double millis = 0.0;
  core::SkeletonResult result;
};

inline RunRow evaluate(const std::string& label, const geom::Region& region,
                       const net::Graph& g, double range,
                       const core::Params& params = {}) {
  RunRow row;
  row.label = label;
  row.nodes = g.n();
  row.avg_deg = g.avg_degree();
  row.range = range;
  const auto t0 = std::chrono::steady_clock::now();
  row.result = core::extract_skeleton(g, params);
  const auto t1 = std::chrono::steady_clock::now();
  row.millis = std::chrono::duration<double, std::milli>(t1 - t0).count();
  row.sites = static_cast<int>(row.result.critical_nodes.size());
  row.skeleton_nodes = row.result.skeleton.node_count();
  row.components = row.result.skeleton.component_count();
  row.cycles = row.result.skeleton_cycle_rank();
  row.holes = static_cast<int>(region.hole_count());
  const geom::ReferenceMedialAxis axis(region);
  if (!axis.empty() && row.skeleton_nodes > 0) {
    const metrics::Medialness med = metrics::medialness(g, row.result.skeleton, axis);
    row.medial_mean_R = med.mean / range;
    row.medial_max_R = med.max / range;
    row.coverage = metrics::axis_coverage(g, row.result.skeleton, axis, 3.0 * range);
  }
  return row;
}

inline void print_header(const char* title) {
  std::printf("\n=== %s ===\n", title);
  std::printf("%-22s %6s %7s %6s %6s %6s %5s %11s %9s %8s %8s %7s\n", "scenario",
              "nodes", "avg_deg", "sites", "skel", "comps", "cyc", "cyc==holes",
              "med(R)", "max(R)", "coverage", "ms");
}

inline void print_row(const RunRow& r) {
  std::printf("%-22s %6d %7.2f %6d %6d %6d %5d %11s %9.2f %8.2f %8.2f %7.1f\n",
              r.label.c_str(), r.nodes, r.avg_deg, r.sites, r.skeleton_nodes,
              r.components, r.cycles,
              r.cycles == r.holes ? "yes" : "NO", r.medial_mean_R,
              r.medial_max_R, r.coverage, r.millis);
}

// Writes an SVG of the network + skeleton into bench_out/<name>.svg.
inline void dump_svg(const std::string& name, const geom::Region& region,
                     const net::Graph& g, const core::SkeletonResult& r) {
  std::filesystem::create_directories("bench_out");
  geom::Vec2 lo, hi;
  region.bounding_box(lo, hi);
  viz::SvgWriter svg(lo, hi);
  svg.add_graph_edges(g);
  svg.add_graph_nodes(g);
  svg.add_region_outline(region);
  svg.add_nodes(g, r.critical_nodes, "#1f77b4", 3.0);
  svg.add_skeleton(g, r.skeleton);
  svg.save("bench_out/" + name + ".svg");
}

}  // namespace skelex::bench
