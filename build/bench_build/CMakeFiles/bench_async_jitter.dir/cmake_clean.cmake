file(REMOVE_RECURSE
  "../bench/bench_async_jitter"
  "../bench/bench_async_jitter.pdb"
  "CMakeFiles/bench_async_jitter.dir/bench_async_jitter.cpp.o"
  "CMakeFiles/bench_async_jitter.dir/bench_async_jitter.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_async_jitter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
