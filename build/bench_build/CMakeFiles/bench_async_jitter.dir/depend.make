# Empty dependencies file for bench_async_jitter.
# This may be replaced when dependencies are built.
