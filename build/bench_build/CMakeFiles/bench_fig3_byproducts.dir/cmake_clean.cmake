file(REMOVE_RECURSE
  "../bench/bench_fig3_byproducts"
  "../bench/bench_fig3_byproducts.pdb"
  "CMakeFiles/bench_fig3_byproducts.dir/bench_fig3_byproducts.cpp.o"
  "CMakeFiles/bench_fig3_byproducts.dir/bench_fig3_byproducts.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_byproducts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
