# Empty compiler generated dependencies file for bench_fig3_byproducts.
# This may be replaced when dependencies are built.
