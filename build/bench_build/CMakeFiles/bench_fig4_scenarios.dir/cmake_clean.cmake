file(REMOVE_RECURSE
  "../bench/bench_fig4_scenarios"
  "../bench/bench_fig4_scenarios.pdb"
  "CMakeFiles/bench_fig4_scenarios.dir/bench_fig4_scenarios.cpp.o"
  "CMakeFiles/bench_fig4_scenarios.dir/bench_fig4_scenarios.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_scenarios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
