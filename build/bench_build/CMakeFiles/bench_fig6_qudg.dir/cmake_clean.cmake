file(REMOVE_RECURSE
  "../bench/bench_fig6_qudg"
  "../bench/bench_fig6_qudg.pdb"
  "CMakeFiles/bench_fig6_qudg.dir/bench_fig6_qudg.cpp.o"
  "CMakeFiles/bench_fig6_qudg.dir/bench_fig6_qudg.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_qudg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
