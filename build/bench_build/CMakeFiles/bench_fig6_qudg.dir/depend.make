# Empty dependencies file for bench_fig6_qudg.
# This may be replaced when dependencies are built.
