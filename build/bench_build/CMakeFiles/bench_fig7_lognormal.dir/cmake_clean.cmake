file(REMOVE_RECURSE
  "../bench/bench_fig7_lognormal"
  "../bench/bench_fig7_lognormal.pdb"
  "CMakeFiles/bench_fig7_lognormal.dir/bench_fig7_lognormal.cpp.o"
  "CMakeFiles/bench_fig7_lognormal.dir/bench_fig7_lognormal.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_lognormal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
