# Empty dependencies file for bench_fig7_lognormal.
# This may be replaced when dependencies are built.
