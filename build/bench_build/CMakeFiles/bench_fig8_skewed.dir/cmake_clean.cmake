file(REMOVE_RECURSE
  "../bench/bench_fig8_skewed"
  "../bench/bench_fig8_skewed.pdb"
  "CMakeFiles/bench_fig8_skewed.dir/bench_fig8_skewed.cpp.o"
  "CMakeFiles/bench_fig8_skewed.dir/bench_fig8_skewed.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_skewed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
