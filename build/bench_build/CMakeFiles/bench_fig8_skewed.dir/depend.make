# Empty dependencies file for bench_fig8_skewed.
# This may be replaced when dependencies are built.
