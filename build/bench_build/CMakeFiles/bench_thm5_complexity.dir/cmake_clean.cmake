file(REMOVE_RECURSE
  "../bench/bench_thm5_complexity"
  "../bench/bench_thm5_complexity.pdb"
  "CMakeFiles/bench_thm5_complexity.dir/bench_thm5_complexity.cpp.o"
  "CMakeFiles/bench_thm5_complexity.dir/bench_thm5_complexity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm5_complexity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
