# Empty compiler generated dependencies file for bench_thm5_complexity.
# This may be replaced when dependencies are built.
