# Empty dependencies file for distributed_demo.
# This may be replaced when dependencies are built.
