file(REMOVE_RECURSE
  "CMakeFiles/segmentation_demo.dir/segmentation_demo.cpp.o"
  "CMakeFiles/segmentation_demo.dir/segmentation_demo.cpp.o.d"
  "segmentation_demo"
  "segmentation_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/segmentation_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
