# Empty dependencies file for segmentation_demo.
# This may be replaced when dependencies are built.
