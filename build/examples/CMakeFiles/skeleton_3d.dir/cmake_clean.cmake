file(REMOVE_RECURSE
  "CMakeFiles/skeleton_3d.dir/skeleton_3d.cpp.o"
  "CMakeFiles/skeleton_3d.dir/skeleton_3d.cpp.o.d"
  "skeleton_3d"
  "skeleton_3d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skeleton_3d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
