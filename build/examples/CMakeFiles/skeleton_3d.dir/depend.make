# Empty dependencies file for skeleton_3d.
# This may be replaced when dependencies are built.
