file(REMOVE_RECURSE
  "CMakeFiles/skeleton_routing.dir/skeleton_routing.cpp.o"
  "CMakeFiles/skeleton_routing.dir/skeleton_routing.cpp.o.d"
  "skeleton_routing"
  "skeleton_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skeleton_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
