# Empty compiler generated dependencies file for skeleton_routing.
# This may be replaced when dependencies are built.
