# Empty dependencies file for skeleton_routing.
# This may be replaced when dependencies are built.
