# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart" "3")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_segmentation "/root/repo/build/examples/segmentation_demo" "lshape" "3")
set_tests_properties(example_segmentation PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;7;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_routing "/root/repo/build/examples/skeleton_routing" "3")
set_tests_properties(example_routing PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;8;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_distributed "/root/repo/build/examples/distributed_demo" "900" "3")
set_tests_properties(example_distributed PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;9;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_3d "/root/repo/build/examples/skeleton_3d" "1800" "3")
set_tests_properties(example_3d PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;10;add_test;/root/repo/examples/CMakeLists.txt;0;")
