
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/boundary.cpp" "src/CMakeFiles/skelex.dir/baseline/boundary.cpp.o" "gcc" "src/CMakeFiles/skelex.dir/baseline/boundary.cpp.o.d"
  "/root/repo/src/baseline/case.cpp" "src/CMakeFiles/skelex.dir/baseline/case.cpp.o" "gcc" "src/CMakeFiles/skelex.dir/baseline/case.cpp.o.d"
  "/root/repo/src/baseline/distance_transform.cpp" "src/CMakeFiles/skelex.dir/baseline/distance_transform.cpp.o" "gcc" "src/CMakeFiles/skelex.dir/baseline/distance_transform.cpp.o.d"
  "/root/repo/src/baseline/map.cpp" "src/CMakeFiles/skelex.dir/baseline/map.cpp.o" "gcc" "src/CMakeFiles/skelex.dir/baseline/map.cpp.o.d"
  "/root/repo/src/core/boundary_cycles.cpp" "src/CMakeFiles/skelex.dir/core/boundary_cycles.cpp.o" "gcc" "src/CMakeFiles/skelex.dir/core/boundary_cycles.cpp.o.d"
  "/root/repo/src/core/byproducts.cpp" "src/CMakeFiles/skelex.dir/core/byproducts.cpp.o" "gcc" "src/CMakeFiles/skelex.dir/core/byproducts.cpp.o.d"
  "/root/repo/src/core/cleanup.cpp" "src/CMakeFiles/skelex.dir/core/cleanup.cpp.o" "gcc" "src/CMakeFiles/skelex.dir/core/cleanup.cpp.o.d"
  "/root/repo/src/core/coarse.cpp" "src/CMakeFiles/skelex.dir/core/coarse.cpp.o" "gcc" "src/CMakeFiles/skelex.dir/core/coarse.cpp.o.d"
  "/root/repo/src/core/config.cpp" "src/CMakeFiles/skelex.dir/core/config.cpp.o" "gcc" "src/CMakeFiles/skelex.dir/core/config.cpp.o.d"
  "/root/repo/src/core/flow_segmentation.cpp" "src/CMakeFiles/skelex.dir/core/flow_segmentation.cpp.o" "gcc" "src/CMakeFiles/skelex.dir/core/flow_segmentation.cpp.o.d"
  "/root/repo/src/core/identify.cpp" "src/CMakeFiles/skelex.dir/core/identify.cpp.o" "gcc" "src/CMakeFiles/skelex.dir/core/identify.cpp.o.d"
  "/root/repo/src/core/index.cpp" "src/CMakeFiles/skelex.dir/core/index.cpp.o" "gcc" "src/CMakeFiles/skelex.dir/core/index.cpp.o.d"
  "/root/repo/src/core/naming.cpp" "src/CMakeFiles/skelex.dir/core/naming.cpp.o" "gcc" "src/CMakeFiles/skelex.dir/core/naming.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "src/CMakeFiles/skelex.dir/core/pipeline.cpp.o" "gcc" "src/CMakeFiles/skelex.dir/core/pipeline.cpp.o.d"
  "/root/repo/src/core/protocols.cpp" "src/CMakeFiles/skelex.dir/core/protocols.cpp.o" "gcc" "src/CMakeFiles/skelex.dir/core/protocols.cpp.o.d"
  "/root/repo/src/core/prune.cpp" "src/CMakeFiles/skelex.dir/core/prune.cpp.o" "gcc" "src/CMakeFiles/skelex.dir/core/prune.cpp.o.d"
  "/root/repo/src/core/skeleton_graph.cpp" "src/CMakeFiles/skelex.dir/core/skeleton_graph.cpp.o" "gcc" "src/CMakeFiles/skelex.dir/core/skeleton_graph.cpp.o.d"
  "/root/repo/src/core/voronoi.cpp" "src/CMakeFiles/skelex.dir/core/voronoi.cpp.o" "gcc" "src/CMakeFiles/skelex.dir/core/voronoi.cpp.o.d"
  "/root/repo/src/deploy/deployment.cpp" "src/CMakeFiles/skelex.dir/deploy/deployment.cpp.o" "gcc" "src/CMakeFiles/skelex.dir/deploy/deployment.cpp.o.d"
  "/root/repo/src/deploy/rng.cpp" "src/CMakeFiles/skelex.dir/deploy/rng.cpp.o" "gcc" "src/CMakeFiles/skelex.dir/deploy/rng.cpp.o.d"
  "/root/repo/src/deploy/scenario.cpp" "src/CMakeFiles/skelex.dir/deploy/scenario.cpp.o" "gcc" "src/CMakeFiles/skelex.dir/deploy/scenario.cpp.o.d"
  "/root/repo/src/geometry/medial_axis_ref.cpp" "src/CMakeFiles/skelex.dir/geometry/medial_axis_ref.cpp.o" "gcc" "src/CMakeFiles/skelex.dir/geometry/medial_axis_ref.cpp.o.d"
  "/root/repo/src/geometry/polygon.cpp" "src/CMakeFiles/skelex.dir/geometry/polygon.cpp.o" "gcc" "src/CMakeFiles/skelex.dir/geometry/polygon.cpp.o.d"
  "/root/repo/src/geometry/shapes.cpp" "src/CMakeFiles/skelex.dir/geometry/shapes.cpp.o" "gcc" "src/CMakeFiles/skelex.dir/geometry/shapes.cpp.o.d"
  "/root/repo/src/geometry/vec2.cpp" "src/CMakeFiles/skelex.dir/geometry/vec2.cpp.o" "gcc" "src/CMakeFiles/skelex.dir/geometry/vec2.cpp.o.d"
  "/root/repo/src/geometry3/deploy3.cpp" "src/CMakeFiles/skelex.dir/geometry3/deploy3.cpp.o" "gcc" "src/CMakeFiles/skelex.dir/geometry3/deploy3.cpp.o.d"
  "/root/repo/src/geometry3/volume.cpp" "src/CMakeFiles/skelex.dir/geometry3/volume.cpp.o" "gcc" "src/CMakeFiles/skelex.dir/geometry3/volume.cpp.o.d"
  "/root/repo/src/io/graph_io.cpp" "src/CMakeFiles/skelex.dir/io/graph_io.cpp.o" "gcc" "src/CMakeFiles/skelex.dir/io/graph_io.cpp.o.d"
  "/root/repo/src/metrics/homotopy.cpp" "src/CMakeFiles/skelex.dir/metrics/homotopy.cpp.o" "gcc" "src/CMakeFiles/skelex.dir/metrics/homotopy.cpp.o.d"
  "/root/repo/src/metrics/quality.cpp" "src/CMakeFiles/skelex.dir/metrics/quality.cpp.o" "gcc" "src/CMakeFiles/skelex.dir/metrics/quality.cpp.o.d"
  "/root/repo/src/metrics/skeleton_stats.cpp" "src/CMakeFiles/skelex.dir/metrics/skeleton_stats.cpp.o" "gcc" "src/CMakeFiles/skelex.dir/metrics/skeleton_stats.cpp.o.d"
  "/root/repo/src/metrics/stability.cpp" "src/CMakeFiles/skelex.dir/metrics/stability.cpp.o" "gcc" "src/CMakeFiles/skelex.dir/metrics/stability.cpp.o.d"
  "/root/repo/src/net/bfs.cpp" "src/CMakeFiles/skelex.dir/net/bfs.cpp.o" "gcc" "src/CMakeFiles/skelex.dir/net/bfs.cpp.o.d"
  "/root/repo/src/net/graph.cpp" "src/CMakeFiles/skelex.dir/net/graph.cpp.o" "gcc" "src/CMakeFiles/skelex.dir/net/graph.cpp.o.d"
  "/root/repo/src/net/khop.cpp" "src/CMakeFiles/skelex.dir/net/khop.cpp.o" "gcc" "src/CMakeFiles/skelex.dir/net/khop.cpp.o.d"
  "/root/repo/src/net/spatial_hash.cpp" "src/CMakeFiles/skelex.dir/net/spatial_hash.cpp.o" "gcc" "src/CMakeFiles/skelex.dir/net/spatial_hash.cpp.o.d"
  "/root/repo/src/radio/radio_model.cpp" "src/CMakeFiles/skelex.dir/radio/radio_model.cpp.o" "gcc" "src/CMakeFiles/skelex.dir/radio/radio_model.cpp.o.d"
  "/root/repo/src/sim/engine.cpp" "src/CMakeFiles/skelex.dir/sim/engine.cpp.o" "gcc" "src/CMakeFiles/skelex.dir/sim/engine.cpp.o.d"
  "/root/repo/src/sim/stats.cpp" "src/CMakeFiles/skelex.dir/sim/stats.cpp.o" "gcc" "src/CMakeFiles/skelex.dir/sim/stats.cpp.o.d"
  "/root/repo/src/viz/ppm.cpp" "src/CMakeFiles/skelex.dir/viz/ppm.cpp.o" "gcc" "src/CMakeFiles/skelex.dir/viz/ppm.cpp.o.d"
  "/root/repo/src/viz/svg.cpp" "src/CMakeFiles/skelex.dir/viz/svg.cpp.o" "gcc" "src/CMakeFiles/skelex.dir/viz/svg.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
