file(REMOVE_RECURSE
  "libskelex.a"
)
