# Empty compiler generated dependencies file for skelex.
# This may be replaced when dependencies are built.
