
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_3d.cpp" "tests/CMakeFiles/skelex_tests.dir/test_3d.cpp.o" "gcc" "tests/CMakeFiles/skelex_tests.dir/test_3d.cpp.o.d"
  "/root/repo/tests/test_async_jitter.cpp" "tests/CMakeFiles/skelex_tests.dir/test_async_jitter.cpp.o" "gcc" "tests/CMakeFiles/skelex_tests.dir/test_async_jitter.cpp.o.d"
  "/root/repo/tests/test_baseline_end_to_end.cpp" "tests/CMakeFiles/skelex_tests.dir/test_baseline_end_to_end.cpp.o" "gcc" "tests/CMakeFiles/skelex_tests.dir/test_baseline_end_to_end.cpp.o.d"
  "/root/repo/tests/test_bfs.cpp" "tests/CMakeFiles/skelex_tests.dir/test_bfs.cpp.o" "gcc" "tests/CMakeFiles/skelex_tests.dir/test_bfs.cpp.o.d"
  "/root/repo/tests/test_boundary_baseline.cpp" "tests/CMakeFiles/skelex_tests.dir/test_boundary_baseline.cpp.o" "gcc" "tests/CMakeFiles/skelex_tests.dir/test_boundary_baseline.cpp.o.d"
  "/root/repo/tests/test_boundary_cycles.cpp" "tests/CMakeFiles/skelex_tests.dir/test_boundary_cycles.cpp.o" "gcc" "tests/CMakeFiles/skelex_tests.dir/test_boundary_cycles.cpp.o.d"
  "/root/repo/tests/test_byproducts.cpp" "tests/CMakeFiles/skelex_tests.dir/test_byproducts.cpp.o" "gcc" "tests/CMakeFiles/skelex_tests.dir/test_byproducts.cpp.o.d"
  "/root/repo/tests/test_case_map.cpp" "tests/CMakeFiles/skelex_tests.dir/test_case_map.cpp.o" "gcc" "tests/CMakeFiles/skelex_tests.dir/test_case_map.cpp.o.d"
  "/root/repo/tests/test_cleanup.cpp" "tests/CMakeFiles/skelex_tests.dir/test_cleanup.cpp.o" "gcc" "tests/CMakeFiles/skelex_tests.dir/test_cleanup.cpp.o.d"
  "/root/repo/tests/test_coarse.cpp" "tests/CMakeFiles/skelex_tests.dir/test_coarse.cpp.o" "gcc" "tests/CMakeFiles/skelex_tests.dir/test_coarse.cpp.o.d"
  "/root/repo/tests/test_deployment.cpp" "tests/CMakeFiles/skelex_tests.dir/test_deployment.cpp.o" "gcc" "tests/CMakeFiles/skelex_tests.dir/test_deployment.cpp.o.d"
  "/root/repo/tests/test_distance_transform.cpp" "tests/CMakeFiles/skelex_tests.dir/test_distance_transform.cpp.o" "gcc" "tests/CMakeFiles/skelex_tests.dir/test_distance_transform.cpp.o.d"
  "/root/repo/tests/test_failure_injection.cpp" "tests/CMakeFiles/skelex_tests.dir/test_failure_injection.cpp.o" "gcc" "tests/CMakeFiles/skelex_tests.dir/test_failure_injection.cpp.o.d"
  "/root/repo/tests/test_flow_segmentation.cpp" "tests/CMakeFiles/skelex_tests.dir/test_flow_segmentation.cpp.o" "gcc" "tests/CMakeFiles/skelex_tests.dir/test_flow_segmentation.cpp.o.d"
  "/root/repo/tests/test_geometry_property.cpp" "tests/CMakeFiles/skelex_tests.dir/test_geometry_property.cpp.o" "gcc" "tests/CMakeFiles/skelex_tests.dir/test_geometry_property.cpp.o.d"
  "/root/repo/tests/test_graph.cpp" "tests/CMakeFiles/skelex_tests.dir/test_graph.cpp.o" "gcc" "tests/CMakeFiles/skelex_tests.dir/test_graph.cpp.o.d"
  "/root/repo/tests/test_graph_io.cpp" "tests/CMakeFiles/skelex_tests.dir/test_graph_io.cpp.o" "gcc" "tests/CMakeFiles/skelex_tests.dir/test_graph_io.cpp.o.d"
  "/root/repo/tests/test_identify.cpp" "tests/CMakeFiles/skelex_tests.dir/test_identify.cpp.o" "gcc" "tests/CMakeFiles/skelex_tests.dir/test_identify.cpp.o.d"
  "/root/repo/tests/test_index.cpp" "tests/CMakeFiles/skelex_tests.dir/test_index.cpp.o" "gcc" "tests/CMakeFiles/skelex_tests.dir/test_index.cpp.o.d"
  "/root/repo/tests/test_invariant_sweep.cpp" "tests/CMakeFiles/skelex_tests.dir/test_invariant_sweep.cpp.o" "gcc" "tests/CMakeFiles/skelex_tests.dir/test_invariant_sweep.cpp.o.d"
  "/root/repo/tests/test_khop.cpp" "tests/CMakeFiles/skelex_tests.dir/test_khop.cpp.o" "gcc" "tests/CMakeFiles/skelex_tests.dir/test_khop.cpp.o.d"
  "/root/repo/tests/test_medial_axis_ref.cpp" "tests/CMakeFiles/skelex_tests.dir/test_medial_axis_ref.cpp.o" "gcc" "tests/CMakeFiles/skelex_tests.dir/test_medial_axis_ref.cpp.o.d"
  "/root/repo/tests/test_metrics.cpp" "tests/CMakeFiles/skelex_tests.dir/test_metrics.cpp.o" "gcc" "tests/CMakeFiles/skelex_tests.dir/test_metrics.cpp.o.d"
  "/root/repo/tests/test_misc_coverage.cpp" "tests/CMakeFiles/skelex_tests.dir/test_misc_coverage.cpp.o" "gcc" "tests/CMakeFiles/skelex_tests.dir/test_misc_coverage.cpp.o.d"
  "/root/repo/tests/test_naming.cpp" "tests/CMakeFiles/skelex_tests.dir/test_naming.cpp.o" "gcc" "tests/CMakeFiles/skelex_tests.dir/test_naming.cpp.o.d"
  "/root/repo/tests/test_nerve.cpp" "tests/CMakeFiles/skelex_tests.dir/test_nerve.cpp.o" "gcc" "tests/CMakeFiles/skelex_tests.dir/test_nerve.cpp.o.d"
  "/root/repo/tests/test_paper_scenarios.cpp" "tests/CMakeFiles/skelex_tests.dir/test_paper_scenarios.cpp.o" "gcc" "tests/CMakeFiles/skelex_tests.dir/test_paper_scenarios.cpp.o.d"
  "/root/repo/tests/test_pipeline.cpp" "tests/CMakeFiles/skelex_tests.dir/test_pipeline.cpp.o" "gcc" "tests/CMakeFiles/skelex_tests.dir/test_pipeline.cpp.o.d"
  "/root/repo/tests/test_polygon.cpp" "tests/CMakeFiles/skelex_tests.dir/test_polygon.cpp.o" "gcc" "tests/CMakeFiles/skelex_tests.dir/test_polygon.cpp.o.d"
  "/root/repo/tests/test_protocols.cpp" "tests/CMakeFiles/skelex_tests.dir/test_protocols.cpp.o" "gcc" "tests/CMakeFiles/skelex_tests.dir/test_protocols.cpp.o.d"
  "/root/repo/tests/test_prune.cpp" "tests/CMakeFiles/skelex_tests.dir/test_prune.cpp.o" "gcc" "tests/CMakeFiles/skelex_tests.dir/test_prune.cpp.o.d"
  "/root/repo/tests/test_radio.cpp" "tests/CMakeFiles/skelex_tests.dir/test_radio.cpp.o" "gcc" "tests/CMakeFiles/skelex_tests.dir/test_radio.cpp.o.d"
  "/root/repo/tests/test_radio_pipeline.cpp" "tests/CMakeFiles/skelex_tests.dir/test_radio_pipeline.cpp.o" "gcc" "tests/CMakeFiles/skelex_tests.dir/test_radio_pipeline.cpp.o.d"
  "/root/repo/tests/test_rng.cpp" "tests/CMakeFiles/skelex_tests.dir/test_rng.cpp.o" "gcc" "tests/CMakeFiles/skelex_tests.dir/test_rng.cpp.o.d"
  "/root/repo/tests/test_shapes.cpp" "tests/CMakeFiles/skelex_tests.dir/test_shapes.cpp.o" "gcc" "tests/CMakeFiles/skelex_tests.dir/test_shapes.cpp.o.d"
  "/root/repo/tests/test_sim_engine.cpp" "tests/CMakeFiles/skelex_tests.dir/test_sim_engine.cpp.o" "gcc" "tests/CMakeFiles/skelex_tests.dir/test_sim_engine.cpp.o.d"
  "/root/repo/tests/test_skeleton_graph.cpp" "tests/CMakeFiles/skelex_tests.dir/test_skeleton_graph.cpp.o" "gcc" "tests/CMakeFiles/skelex_tests.dir/test_skeleton_graph.cpp.o.d"
  "/root/repo/tests/test_skeleton_stats.cpp" "tests/CMakeFiles/skelex_tests.dir/test_skeleton_stats.cpp.o" "gcc" "tests/CMakeFiles/skelex_tests.dir/test_skeleton_stats.cpp.o.d"
  "/root/repo/tests/test_spatial_hash.cpp" "tests/CMakeFiles/skelex_tests.dir/test_spatial_hash.cpp.o" "gcc" "tests/CMakeFiles/skelex_tests.dir/test_spatial_hash.cpp.o.d"
  "/root/repo/tests/test_tight_cycles.cpp" "tests/CMakeFiles/skelex_tests.dir/test_tight_cycles.cpp.o" "gcc" "tests/CMakeFiles/skelex_tests.dir/test_tight_cycles.cpp.o.d"
  "/root/repo/tests/test_vec2.cpp" "tests/CMakeFiles/skelex_tests.dir/test_vec2.cpp.o" "gcc" "tests/CMakeFiles/skelex_tests.dir/test_vec2.cpp.o.d"
  "/root/repo/tests/test_viz.cpp" "tests/CMakeFiles/skelex_tests.dir/test_viz.cpp.o" "gcc" "tests/CMakeFiles/skelex_tests.dir/test_viz.cpp.o.d"
  "/root/repo/tests/test_voronoi.cpp" "tests/CMakeFiles/skelex_tests.dir/test_voronoi.cpp.o" "gcc" "tests/CMakeFiles/skelex_tests.dir/test_voronoi.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/skelex.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
