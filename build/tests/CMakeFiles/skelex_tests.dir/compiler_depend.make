# Empty compiler generated dependencies file for skelex_tests.
# This may be replaced when dependencies are built.
