file(REMOVE_RECURSE
  "CMakeFiles/skelex_cli.dir/skelex_cli.cpp.o"
  "CMakeFiles/skelex_cli.dir/skelex_cli.cpp.o.d"
  "skelex_cli"
  "skelex_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skelex_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
