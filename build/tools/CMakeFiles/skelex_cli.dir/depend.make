# Empty dependencies file for skelex_cli.
# This may be replaced when dependencies are built.
