# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_shape_json "/root/repo/build/tools/skelex_cli" "--shape" "annulus" "--nodes" "600" "--json")
set_tests_properties(cli_shape_json PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;4;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_qudg "/root/repo/build/tools/skelex_cli" "--shape" "rect" "--nodes" "500" "--radio" "qudg" "--degree" "9")
set_tests_properties(cli_qudg PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_bad_shape "/root/repo/build/tools/skelex_cli" "--shape" "nope")
set_tests_properties(cli_bad_shape PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
