// examples/distributed_demo.cpp
//
// The algorithm as MESSAGES: runs the paper's communication stages
// (§III-A, §III-B) on the round-synchronous simulator, prints the radio
// cost per stage, and verifies node-for-node agreement with the
// centralized implementation.
//
//   ./distributed_demo [nodes] [seed]
#include <cstdlib>
#include <iostream>

#include "core/identify.h"
#include "core/index.h"
#include "core/protocols.h"
#include "deploy/scenario.h"
#include "geometry/shapes.h"

int main(int argc, char** argv) {
  using namespace skelex;
  const int nodes = argc > 1 ? std::atoi(argv[1]) : 1500;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 3;

  deploy::ScenarioSpec spec;
  spec.target_nodes = nodes;
  spec.target_avg_deg = 7.5;
  spec.seed = seed;
  const deploy::Scenario sc =
      deploy::make_udg_scenario(geom::shapes::two_holes(), spec);
  const net::Graph& g = sc.graph;
  const core::Params params;

  std::cout << "network: " << g.n() << " nodes, avg degree " << g.avg_degree()
            << "\n\nrunning the distributed stages (k=" << params.k
            << ", l=" << params.l << ")...\n";
  const core::DistributedRun run = core::run_distributed_stages(g, params);

  const auto show = [](const char* name, const sim::RunStats& s) {
    std::cout << "  " << name << ": " << s << '\n';
  };
  show("k-hop size flood    ", run.khop_stats);
  show("l-centrality flood  ", run.centrality_stats);
  show("local-max exchange  ", run.localmax_stats);
  show("voronoi flood       ", run.voronoi_stats);
  const sim::RunStats total = run.total();
  std::cout << "  total               : " << total << "\n"
            << "  transmissions per node: "
            << static_cast<double>(total.transmissions) / g.n()
            << "  (Theorem 5 bound: O((k+l+1) n) total)\n";

  // Cross-check against the centralized implementation.
  const core::IndexData central = core::compute_index(g, params);
  const auto crit = core::identify_critical_nodes(g, central, params);
  const core::VoronoiResult cv = core::build_voronoi(g, crit, params);
  const bool ok = run.index.khop_size == central.khop_size &&
                  run.index.index == central.index &&
                  run.critical_nodes == crit &&
                  run.voronoi.site_of == cv.site_of &&
                  run.voronoi.dist == cv.dist &&
                  run.voronoi.is_segment == cv.is_segment;
  std::cout << "\ncentralized/distributed agreement: "
            << (ok ? "EXACT (every per-node value identical)" : "MISMATCH!")
            << '\n'
            << "critical skeleton nodes: " << run.critical_nodes.size() << '\n';
  return ok ? 0 : 1;
}
