// examples/distributed_demo.cpp
//
// The algorithm as MESSAGES: runs the paper's communication stages
// (§III-A, §III-B) on the round-synchronous simulator, prints the radio
// cost per stage, and verifies node-for-node agreement with the
// centralized implementation.
//
//   ./distributed_demo [nodes] [seed] [--trace-out=FILE]
//
// --trace-out=FILE records a Perfetto span trace of the whole run
// (engine runs, protocol stages, retransmissions) and saves it as
// Chrome trace_event JSON — open it at ui.perfetto.dev.
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "core/identify.h"
#include "core/index.h"
#include "core/protocols.h"
#include "deploy/scenario.h"
#include "geometry/shapes.h"
#include "obs/trace.h"

int main(int argc, char** argv) {
  using namespace skelex;
  std::string trace_out;
  std::vector<const char*> pos;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--trace-out=", 12) == 0) {
      trace_out = a + 12;
    } else if (std::strcmp(a, "--trace-out") == 0 && i + 1 < argc) {
      trace_out = argv[++i];
    } else {
      pos.push_back(a);
    }
  }
  const int nodes = pos.size() > 0 ? std::atoi(pos[0]) : 1500;
  const std::uint64_t seed =
      pos.size() > 1 ? std::strtoull(pos[1], nullptr, 10) : 3;

  obs::MemoryTraceSink trace_sink;
  if (!trace_out.empty()) obs::Tracer::set_global(&trace_sink);

  deploy::ScenarioSpec spec;
  spec.target_nodes = nodes;
  spec.target_avg_deg = 7.5;
  spec.seed = seed;
  const deploy::Scenario sc =
      deploy::make_udg_scenario(geom::shapes::two_holes(), spec);
  const net::Graph& g = sc.graph;
  const core::Params params;

  std::cout << "network: " << g.n() << " nodes, avg degree " << g.avg_degree()
            << "\n\nrunning the distributed stages (k=" << params.k
            << ", l=" << params.l << ")...\n";
  sim::Engine engine(g);
  engine.enable_round_series(true);
  const core::DistributedRun run = core::run_distributed_stages(g, params, engine);

  const auto show = [](const char* name, const sim::RunStats& s) {
    std::cout << "  " << name << ": " << s << '\n';
  };
  show("k-hop size flood    ", run.khop_stats);
  show("l-centrality flood  ", run.centrality_stats);
  show("local-max exchange  ", run.localmax_stats);
  show("voronoi flood       ", run.voronoi_stats);
  const sim::RunStats total = run.total();
  std::cout << "  total               : " << total << "\n"
            << "  transmissions per node: "
            << static_cast<double>(total.transmissions) / g.n()
            << "  (Theorem 5 bound: O((k+l+1) n) total)\n";

  // Per-round telemetry: the totals above as a convergence curve.
  if (!total.series.empty()) {
    const obs::RoundSample* peak = &total.series.samples().front();
    for (const obs::RoundSample& s : total.series.samples()) {
      if (s.transmissions > peak->transmissions) peak = &s;
    }
    std::cout << "  round series        : " << total.series.size()
              << " samples, busiest round " << peak->round << " ("
              << peak->transmissions << " tx), peak in-flight queue "
              << total.series.peak_queue_depth() << '\n';
  }

  // Cross-check against the centralized implementation.
  const core::IndexData central = core::compute_index(g, params);
  const auto crit = core::identify_critical_nodes(g, central, params);
  const core::VoronoiResult cv = core::build_voronoi(g, crit, params);
  const bool ok = run.index.khop_size == central.khop_size &&
                  run.index.index == central.index &&
                  run.critical_nodes == crit &&
                  run.voronoi.site_of == cv.site_of &&
                  run.voronoi.dist == cv.dist &&
                  run.voronoi.is_segment == cv.is_segment;
  std::cout << "\ncentralized/distributed agreement: "
            << (ok ? "EXACT (every per-node value identical)" : "MISMATCH!")
            << '\n'
            << "critical skeleton nodes: " << run.critical_nodes.size() << '\n';

  if (!trace_out.empty()) {
    obs::Tracer::set_global(nullptr);
    trace_sink.save(trace_out);
    std::cout << "trace: " << trace_out << " (" << trace_sink.size()
              << " events; open at ui.perfetto.dev)\n";
  }
  return ok ? 0 : 1;
}
