// examples/quickstart.cpp
//
// Minimal end-to-end use of the skelex public API, on the paper's Fig. 1
// scenario: a Window-shaped network of ~2592 nodes with average degree
// ~6, extracted WITHOUT any boundary information.
//
//   ./quickstart [seed]
//
// Writes quickstart_skeleton.svg beside the binary.
#include <cstdlib>
#include <iostream>

#include "core/pipeline.h"
#include "deploy/scenario.h"
#include "geometry/shapes.h"
#include "metrics/homotopy.h"
#include "metrics/quality.h"
#include "net/graph.h"
#include "viz/svg.h"

int main(int argc, char** argv) {
  using namespace skelex;
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;

  // 1-2. Deploy ~2592 nodes in the Window region (Fig. 1a) and build the
  // UDG connectivity graph (largest component).
  const geom::Region region = geom::shapes::window();
  deploy::ScenarioSpec spec;
  spec.target_nodes = 2592;
  spec.target_avg_deg = 5.96;
  spec.seed = seed;
  const deploy::Scenario sc = deploy::make_udg_scenario(region, spec);
  const net::Graph& g = sc.graph;
  const double range = sc.range;
  std::cout << "network: " << g.n() << " nodes, avg degree " << g.avg_degree()
            << " (radio range " << range << ")\n";

  // 3. Extract the skeleton — connectivity only, no boundary input.
  const core::SkeletonResult r = core::extract_skeleton(g, core::Params{});
  std::cout << "critical skeleton nodes: " << r.critical_nodes.size() << '\n'
            << "voronoi cells:           " << r.voronoi().cell_count() << '\n'
            << "coarse skeleton nodes:   " << r.coarse().node_count() << '\n'
            << "fake loops removed:      " << r.fake_loops_removed << '\n'
            << "pruned nodes:            " << r.pruned_nodes << '\n'
            << "final skeleton:          " << r.skeleton.node_count()
            << " nodes, " << r.skeleton.edge_count() << " edges, "
            << r.skeleton_components() << " component(s), cycle rank "
            << r.skeleton_cycle_rank() << '\n';

  // 4. Judge it against the true medial axis of the region.
  const geom::ReferenceMedialAxis axis(region);
  const metrics::Medialness med = metrics::medialness(g, r.skeleton, axis);
  const metrics::HomotopyCheck hom = metrics::check_homotopy(g, r.skeleton, region);
  std::cout << "medialness (field units): mean " << med.mean << ", max "
            << med.max << "  [radio range = " << range << "]\n"
            << "homotopy: skeleton cycles " << hom.skeleton_cycles
            << " vs region holes " << hom.region_holes
            << (hom.ok ? "  OK" : "  MISMATCH") << '\n';

  // 5. Render.
  geom::Vec2 lo, hi;
  region.bounding_box(lo, hi);
  viz::SvgWriter svg(lo, hi);
  svg.add_graph_edges(g);
  svg.add_graph_nodes(g);
  svg.add_region_outline(region);
  svg.add_nodes(g, r.critical_nodes, "#1f77b4", 3.0);
  svg.add_skeleton(g, r.skeleton);
  svg.save("quickstart_skeleton.svg");
  std::cout << "wrote quickstart_skeleton.svg\n";
  return 0;
}
