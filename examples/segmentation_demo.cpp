// examples/segmentation_demo.cpp
//
// The segmentation by-product (§III-E, Fig. 3a): the Voronoi cells of
// the identified skeleton nodes partition an irregular network into
// nicely shaped sub-regions — the use case the paper cites for shape
// segmentation [18], [12].
//
//   ./segmentation_demo [shape] [seed]
//
// Writes segmentation_<shape>.svg.
#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <string>

#include "core/flow_segmentation.h"
#include "core/pipeline.h"
#include "deploy/scenario.h"
#include "geometry/shapes.h"
#include "net/bfs.h"
#include "viz/svg.h"

int main(int argc, char** argv) {
  using namespace skelex;
  const std::string shape = argc > 1 ? argv[1] : "smile";
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 5;

  const geom::Region region = geom::shapes::by_name(shape);
  deploy::ScenarioSpec spec;
  spec.target_nodes = 2200;
  spec.target_avg_deg = 7.0;
  spec.seed = seed;
  const deploy::Scenario sc = deploy::make_udg_scenario(region, spec);
  const net::Graph& g = sc.graph;

  const core::SkeletonResult r = core::extract_skeleton(g, core::Params{});
  const core::Segmentation& seg = r.segmentation;

  std::cout << "network: " << g.n() << " nodes in '" << shape << "'\n"
            << "segments: " << seg.segment_count << "\n";

  // Per-segment report: size and hop-diameter of each piece (nicely
  // shaped pieces have small diameter relative to size).
  std::cout << "segment sizes: ";
  std::vector<int> sizes = seg.segment_size;
  std::sort(sizes.rbegin(), sizes.rend());
  for (std::size_t i = 0; i < sizes.size() && i < 12; ++i) {
    std::cout << sizes[i] << ' ';
  }
  if (sizes.size() > 12) std::cout << "...";
  std::cout << '\n';

  // Every segment is connected (Theorem 4) and contains its site.
  int connected = 0;
  for (int s = 0; s < seg.segment_count; ++s) {
    std::vector<char> in_cell(static_cast<std::size_t>(g.n()), 0);
    for (int v = 0; v < g.n(); ++v) {
      if (seg.segment_of[static_cast<std::size_t>(v)] == s) {
        in_cell[static_cast<std::size_t>(v)] = 1;
      }
    }
    const auto d = net::bfs_distances_masked(
        g, r.voronoi().sites[static_cast<std::size_t>(s)], in_cell);
    bool ok = true;
    for (int v = 0; v < g.n(); ++v) {
      if (in_cell[static_cast<std::size_t>(v)] &&
          d[static_cast<std::size_t>(v)] == net::kUnreached) {
        ok = false;
      }
    }
    connected += ok;
  }
  std::cout << "connected segments (Theorem 4): " << connected << "/"
            << seg.segment_count << '\n';

  // Second mode: flow segmentation (one segment per skeleton LIMB — the
  // §I description: skeleton sinks + boundary-distance flow).
  const core::FlowSegmentation flow =
      core::flow_segmentation(g, r.skeleton, r.boundary.dist_to_skeleton);
  int big = 0;
  for (int s : flow.segment_size) {
    if (s > g.n() / 25) ++big;
  }
  std::cout << "flow segmentation: " << flow.segment_count
            << " limbs (" << big << " major)\n";

  geom::Vec2 lo, hi;
  region.bounding_box(lo, hi);
  {
    viz::SvgWriter svg(lo, hi);
    svg.add_labeled_nodes(g, seg.segment_of, 2.2);
    svg.add_region_outline(region);
    svg.add_skeleton(g, r.skeleton, "#000000", 1.2);
    const std::string out = "segmentation_" + shape + ".svg";
    svg.save(out);
    std::cout << "wrote " << out << '\n';
  }
  {
    viz::SvgWriter svg(lo, hi);
    svg.add_labeled_nodes(g, flow.segment_of, 2.2);
    svg.add_region_outline(region);
    svg.add_skeleton(g, r.skeleton, "#000000", 1.2);
    const std::string out = "segmentation_flow_" + shape + ".svg";
    svg.save(out);
    std::cout << "wrote " << out << '\n';
  }
  return 0;
}
