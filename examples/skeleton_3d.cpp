// examples/skeleton_3d.cpp
//
// The algorithm never reads positions, so it runs unchanged on 3-D
// networks (the paper's cited future-work direction). This demo deploys
// nodes in a solid torus and in a box pierced by a tunnel, extracts the
// curve skeleton from connectivity alone, and verifies the topology
// (one skeleton cycle per tunnel).
//
//   ./skeleton_3d [nodes] [seed]
#include <cstdlib>
#include <iostream>

#include "core/pipeline.h"
#include "geometry3/deploy3.h"

int main(int argc, char** argv) {
  using namespace skelex;
  const int nodes = argc > 1 ? std::atoi(argv[1]) : 2400;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 4;

  for (const geom3::Volume& vol :
       {geom3::torus(), geom3::box_with_tunnel(), geom3::u_duct()}) {
    const int n = vol.name == "box3_tunnel" ? nodes * 4 / 3 : nodes;
    const geom3::Scenario3 sc = geom3::make_udg_scenario3(vol, n, 11.0, seed);
    const core::SkeletonResult r =
        core::extract_skeleton(sc.graph, core::Params{});
    std::cout << vol.name << ": " << sc.graph.n() << " nodes (avg degree "
              << sc.graph.avg_degree() << ", range " << sc.range << ")\n"
              << "  skeleton: " << r.skeleton.node_count() << " nodes, "
              << r.skeleton.component_count() << " component(s), "
              << r.skeleton_cycle_rank() << " cycle(s) [tunnels: "
              << vol.tunnels << "] "
              << (r.skeleton_cycle_rank() == vol.tunnels &&
                          r.skeleton.component_count() == 1
                      ? "OK"
                      : "MISMATCH")
              << "\n";
  }
  std::cout << "(connectivity-only: the same pipeline, zero changes, "
               "correct 3-D topology)\n";
  return 0;
}
