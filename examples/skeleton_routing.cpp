// examples/skeleton_routing.cpp
//
// The paper's motivating application (§I): skeleton-aided naming and
// load-balanced routing via core::SkeletonNaming. Each node is named by
// its nearest skeleton anchor and hop distance; a message travels
// source -> anchor -> (along the skeleton) -> anchor -> destination.
// Compared against plain shortest-path routing over many random pairs:
//   * stretch — skeleton routes stay near-shortest;
//   * load profile — skeleton routing drains traffic away from the
//     boundary nodes that geographic schemes overload.
//
//   ./skeleton_routing [seed]
#include <cstdlib>
#include <iostream>
#include <utility>
#include <vector>

#include "core/naming.h"
#include "core/pipeline.h"
#include "deploy/scenario.h"
#include "geometry/shapes.h"
#include "net/bfs.h"

int main(int argc, char** argv) {
  using namespace skelex;
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 5;
  const geom::Region region = geom::shapes::one_hole();
  deploy::ScenarioSpec spec;
  spec.target_nodes = 2200;
  spec.target_avg_deg = 8.0;
  spec.seed = seed;
  const deploy::Scenario sc = deploy::make_udg_scenario(region, spec);
  const net::Graph& g = sc.graph;

  const core::SkeletonResult r = core::extract_skeleton(g, core::Params{});
  const core::SkeletonNaming naming(g, r);
  std::cout << "network: " << g.n() << " nodes; skeleton: "
            << r.skeleton.node_count() << " nodes ("
            << naming.anchor_count() << " anchors)\n"
            << "naming: every node holds (nearest skeleton anchor, hop "
               "distance) as virtual coordinates\n";

  // Random pairs, routed both ways.
  deploy::Rng rng(seed ^ 0x9e37);
  std::vector<std::pair<int, int>> pairs;
  for (int i = 0; i < 400; ++i) {
    const int s = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(g.n())));
    const int t = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(g.n())));
    if (s != t) pairs.push_back({s, t});
  }
  const core::RouteLoad skel = core::route_load(naming, pairs);

  std::vector<long long> load_sp(static_cast<std::size_t>(g.n()), 0);
  long long hops_sp = 0;
  for (const auto& [s, t] : pairs) {
    const std::vector<int> route = net::shortest_path(g, s, t);
    if (route.empty()) continue;
    hops_sp += static_cast<long long>(route.size()) - 1;
    for (int v : route) ++load_sp[static_cast<std::size_t>(v)];
  }

  std::cout << "routed pairs: " << skel.routed_pairs << '\n'
            << "avg stretch (skeleton route / shortest path): "
            << static_cast<double>(skel.total_hops) /
                   static_cast<double>(hops_sp)
            << '\n';

  long long b_skel = 0, b_sp = 0, total_skel = 0, total_sp = 0;
  for (int v = 0; v < g.n(); ++v) {
    const long long ls =
        static_cast<std::size_t>(v) < skel.load.size()
            ? skel.load[static_cast<std::size_t>(v)]
            : 0;
    total_skel += ls;
    total_sp += load_sp[static_cast<std::size_t>(v)];
    if (r.boundary.is_boundary[static_cast<std::size_t>(v)]) {
      b_skel += ls;
      b_sp += load_sp[static_cast<std::size_t>(v)];
    }
  }
  std::cout << "boundary-node share of total load: skeleton routing "
            << 100.0 * static_cast<double>(b_skel) / static_cast<double>(total_skel)
            << "%, shortest path "
            << 100.0 * static_cast<double>(b_sp) / static_cast<double>(total_sp)
            << "%\n"
            << "(skeleton routing drains traffic off the rim onto the "
               "medial axis, at a modest stretch)\n";
  return 0;
}
