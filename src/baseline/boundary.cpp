#include "baseline/boundary.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "net/khop.h"

namespace skelex::baseline {

namespace {
// Distance from p to the ring and the arc-length position of the closest
// boundary point.
struct RingHit {
  double dist = std::numeric_limits<double>::infinity();
  double arcpos = 0.0;
};

RingHit ring_hit(const geom::Ring& ring, geom::Vec2 p) {
  RingHit hit;
  double acc = 0.0;
  const auto& pts = ring.points();
  for (std::size_t i = 0; i < pts.size(); ++i) {
    const geom::Vec2 a = pts[i];
    const geom::Vec2 b = pts[(i + 1) % pts.size()];
    const geom::Vec2 c = geom::closest_point_on_segment(p, a, b);
    const double d = geom::dist(p, c);
    if (d < hit.dist) {
      hit.dist = d;
      hit.arcpos = acc + geom::dist(a, c);
    }
    acc += geom::dist(a, b);
  }
  return hit;
}
}  // namespace

BoundaryInfo geometric_boundary(const net::Graph& g,
                                const geom::Region& region, double band) {
  if (!g.has_positions()) {
    throw std::invalid_argument("geometric boundary needs node positions");
  }
  if (band <= 0) throw std::invalid_argument("band must be > 0");

  BoundaryInfo info;
  info.is_boundary.assign(static_cast<std::size_t>(g.n()), 0);
  info.ring_perimeter.push_back(region.outer().perimeter());
  for (const geom::Ring& h : region.holes()) {
    info.ring_perimeter.push_back(h.perimeter());
  }

  for (int v = 0; v < g.n(); ++v) {
    const geom::Vec2 p = g.position(v);
    int best_ring = -1;
    RingHit best;
    const RingHit outer = ring_hit(region.outer(), p);
    if (outer.dist < best.dist) {
      best = outer;
      best_ring = 0;
    }
    for (std::size_t i = 0; i < region.holes().size(); ++i) {
      const RingHit h = ring_hit(region.holes()[i], p);
      if (h.dist < best.dist) {
        best = h;
        best_ring = static_cast<int>(i) + 1;
      }
    }
    if (best.dist <= band) {
      info.nodes.push_back({v, best_ring, best.arcpos});
      info.is_boundary[static_cast<std::size_t>(v)] = 1;
    }
  }
  return info;
}

BoundaryInfo statistical_boundary(const net::Graph& g, int k, double quantile) {
  if (quantile <= 0 || quantile >= 1) {
    throw std::invalid_argument("quantile must be in (0, 1)");
  }
  const std::vector<int> sizes = net::khop_sizes(g, k);
  std::vector<int> sorted = sizes;
  std::sort(sorted.begin(), sorted.end());
  const std::size_t cut_idx = static_cast<std::size_t>(
      quantile * static_cast<double>(sorted.size()));
  const int cut = sorted.empty() ? 0 : sorted[std::min(cut_idx, sorted.size() - 1)];

  BoundaryInfo info;
  info.is_boundary.assign(static_cast<std::size_t>(g.n()), 0);
  for (int v = 0; v < g.n(); ++v) {
    if (sizes[static_cast<std::size_t>(v)] <= cut) {
      info.nodes.push_back({v, -1, std::numeric_limits<double>::quiet_NaN()});
      info.is_boundary[static_cast<std::size_t>(v)] = 1;
    }
  }
  return info;
}

double arc_distance(double a, double b, double perimeter) {
  if (perimeter <= 0) throw std::invalid_argument("perimeter must be > 0");
  double d = std::fmod(std::abs(a - b), perimeter);
  return std::min(d, perimeter - d);
}

}  // namespace skelex::baseline
