// skelex/baseline/boundary.h
//
// Boundary information for the baselines. MAP and CASE both ASSUME the
// boundary nodes are given (§VI); the paper's contribution is exactly
// that it needs none. We provide two sources:
//
//   * a geometric oracle — nodes within `band` of the true region
//     boundary, annotated with which ring they belong to and their arc
//     position along it. This is the most favourable input a baseline
//     can get (the paper's "boundary nodes are firstly identified
//     correctly ... manually");
//   * a Fekete-style statistical detector — nodes whose k-hop
//     neighborhood size falls in the lowest quantile, the
//     connectivity-only heuristic of [8]. Used to show how baselines
//     degrade with realistic boundary input.
#pragma once

#include <vector>

#include "geometry/polygon.h"
#include "net/graph.h"

namespace skelex::baseline {

struct BoundaryNode {
  int node = 0;
  // Ring index: 0 = outer ring, 1 + i = i-th hole. -1 when unknown
  // (statistical detector).
  int ring = -1;
  // Arc-length position of the node's closest boundary point along its
  // ring, in [0, ring perimeter). NaN when unknown.
  double arcpos = 0.0;
};

struct BoundaryInfo {
  std::vector<BoundaryNode> nodes;
  std::vector<char> is_boundary;       // size n
  std::vector<double> ring_perimeter;  // per ring; empty for detector output
};

// Oracle: nodes whose position lies within `band` of the region boundary.
BoundaryInfo geometric_boundary(const net::Graph& g,
                                const geom::Region& region, double band);

// Statistical detector: nodes whose k-hop size is within the lowest
// `quantile` of the network (ring/arcpos unknown).
BoundaryInfo statistical_boundary(const net::Graph& g, int k, double quantile);

// Circular arc distance between two positions on a ring of the given
// perimeter (helper shared by MAP/CASE).
double arc_distance(double a, double b, double perimeter);

}  // namespace skelex::baseline
