#include "baseline/case.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "core/prune.h"

namespace skelex::baseline {

namespace {

struct VertexTurn {
  double arcpos = 0.0;
  double turn_deg = 0.0;  // signed exterior angle at the vertex
};

std::vector<VertexTurn> ring_turns(const geom::Ring& ring) {
  const auto& pts = ring.points();
  const std::size_t n = pts.size();
  std::vector<VertexTurn> turns(n);
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const geom::Vec2 prev = pts[(i + n - 1) % n];
    const geom::Vec2 cur = pts[i];
    const geom::Vec2 next = pts[(i + 1) % n];
    const geom::Vec2 a = cur - prev;
    const geom::Vec2 b = next - cur;
    turns[i].arcpos = acc;
    turns[i].turn_deg =
        std::atan2(a.cross(b), a.dot(b)) * 180.0 / std::numbers::pi;
    acc += geom::dist(cur, next);
  }
  return turns;
}

std::vector<double> ring_corners(const geom::Ring& ring,
                                 const CaseParams& params) {
  const std::vector<VertexTurn> turns = ring_turns(ring);
  const double perimeter = ring.perimeter();
  std::vector<double> corners;
  // Accumulated turning within +-window/2 of each vertex (circular).
  std::vector<double> window_turn(turns.size(), 0.0);
  for (std::size_t i = 0; i < turns.size(); ++i) {
    for (std::size_t j = 0; j < turns.size(); ++j) {
      if (arc_distance(turns[i].arcpos, turns[j].arcpos, perimeter) <=
          params.corner_window / 2.0) {
        window_turn[i] += turns[j].turn_deg;
      }
    }
  }
  // A corner is a cluster of qualifying vertices (one geometric corner
  // is often several polygon vertices). The cluster distance is a
  // fraction of the window — the window itself can span several REAL
  // corners and must not merge them. Each cluster reports its strongest
  // member.
  const double group_dist = std::max(2.0, params.corner_window / 4.0);
  std::vector<std::size_t> qual;
  for (std::size_t i = 0; i < turns.size(); ++i) {
    if (std::abs(window_turn[i]) >= params.corner_threshold_deg) {
      qual.push_back(i);
    }
  }
  if (qual.empty()) return corners;

  std::vector<std::vector<std::size_t>> groups;
  for (std::size_t idx : qual) {
    if (!groups.empty() &&
        arc_distance(turns[groups.back().back()].arcpos, turns[idx].arcpos,
                     perimeter) <= group_dist) {
      groups.back().push_back(idx);
    } else {
      groups.push_back({idx});
    }
  }
  // Wrap-around: the last group may continue into the first.
  if (groups.size() > 1 &&
      arc_distance(turns[groups.back().back()].arcpos,
                   turns[groups.front().front()].arcpos,
                   perimeter) <= group_dist) {
    for (std::size_t idx : groups.back()) groups.front().push_back(idx);
    groups.pop_back();
  }
  for (const auto& group : groups) {
    std::size_t best = group.front();
    for (std::size_t idx : group) {
      if (std::abs(window_turn[idx]) > std::abs(window_turn[best])) best = idx;
    }
    corners.push_back(turns[best].arcpos);
  }
  std::sort(corners.begin(), corners.end());
  return corners;
}

}  // namespace

std::vector<std::vector<double>> detect_corners(const geom::Region& region,
                                                const CaseParams& params) {
  if (params.corner_window <= 0) {
    throw std::invalid_argument("corner_window must be > 0");
  }
  std::vector<std::vector<double>> corners;
  corners.push_back(ring_corners(region.outer(), params));
  for (const geom::Ring& h : region.holes()) {
    corners.push_back(ring_corners(h, params));
  }
  return corners;
}

int branch_of(double arcpos, const std::vector<double>& corners) {
  if (corners.empty()) return 0;
  // Interval index: branch b covers [corners[b], corners[b+1]); positions
  // before the first corner wrap into the last branch.
  const auto it = std::upper_bound(corners.begin(), corners.end(), arcpos);
  if (it == corners.begin()) return static_cast<int>(corners.size()) - 1;
  return static_cast<int>(it - corners.begin()) - 1;
}

BaselineSkeleton case_skeleton(const net::Graph& g,
                               const BoundaryInfo& boundary,
                               const geom::Region& region,
                               const CaseParams& params) {
  const std::vector<std::vector<double>> corners =
      detect_corners(region, params);
  const DistanceTransform dt =
      boundary_distance_transform(g, boundary, params.transform);

  BaselineSkeleton result;
  result.dist_to_boundary = dt.dist;
  for (int v = 0; v < g.n(); ++v) {
    if (boundary.is_boundary[static_cast<std::size_t>(v)]) continue;
    const auto& ws = dt.witnesses[static_cast<std::size_t>(v)];
    bool is_skel = false;
    for (std::size_t i = 0; i < ws.size() && !is_skel; ++i) {
      for (std::size_t j = i + 1; j < ws.size(); ++j) {
        if (ws[i].ring != ws[j].ring) {
          is_skel = true;  // different boundary cycles
          break;
        }
        if (ws[i].ring < 0) continue;  // unknown geometry: cannot segment
        const auto& ring_c = corners[static_cast<std::size_t>(ws[i].ring)];
        if (branch_of(ws[i].arcpos, ring_c) != branch_of(ws[j].arcpos, ring_c)) {
          is_skel = true;
          break;
        }
      }
    }
    if (is_skel) result.identified.push_back(v);
  }

  result.graph = connect_node_set(g, result.identified, dt.dist);
  core::prune_short_branches(result.graph, params.prune_len);
  return result;
}

}  // namespace skelex::baseline
