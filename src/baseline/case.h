// skelex/baseline/case.h
//
// CASE baseline (Jiang et al. — INFOCOM'09 / TPDS'10): connectivity-based
// skeleton extraction *given boundary nodes*. CASE's novelty over MAP is
// boundary segmentation: corner points split each boundary cycle into
// branches, and a node is a skeleton node only when its two nearest
// boundary nodes lie on DIFFERENT branches — which suppresses the
// small-bump pathology, controlled by the user's corner threshold.
//
// Corner detection here accumulates the signed turning angle of the
// region's polygon over a sliding arc window: a short bump's +90/-90
// pairs cancel inside the window, while a real corner's turning
// survives. This mirrors the hop-window curvature estimate CASE runs on
// boundary cycles, evaluated on the oracle geometry.
//
// This module is both the paper's comparison baseline and the machinery
// the paper itself reuses inside fake-loop pockets (§III-D).
#pragma once

#include <vector>

#include "baseline/distance_transform.h"
#include "baseline/map.h"
#include "geometry/polygon.h"
#include "net/graph.h"

namespace skelex::baseline {

struct CaseParams {
  // Arc length of the sliding window for accumulated turning.
  double corner_window = 12.0;
  // Accumulated |turning| (degrees) above which a vertex is a corner.
  double corner_threshold_deg = 60.0;
  // Leaf branches shorter than this are pruned.
  int prune_len = 4;
  TransformParams transform;
};

// Corner arc positions per ring (ring 0 = outer, 1+i = hole i), sorted.
std::vector<std::vector<double>> detect_corners(const geom::Region& region,
                                                const CaseParams& params);

// Branch id of an arc position given the ring's sorted corner positions:
// interval index between consecutive corners (0 when the ring has no
// corners — the whole ring is one branch).
int branch_of(double arcpos, const std::vector<double>& corners);

BaselineSkeleton case_skeleton(const net::Graph& g,
                               const BoundaryInfo& boundary,
                               const geom::Region& region,
                               const CaseParams& params = {});

}  // namespace skelex::baseline
