#include "baseline/distance_transform.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <stdexcept>

namespace skelex::baseline {

namespace {

bool same_feature(const Witness& a, const Witness& b, double merge_eps,
                  const std::vector<double>& ring_perimeter) {
  if (a.node == b.node) return true;
  if (a.ring != b.ring || a.ring < 0) return false;
  if (std::isnan(a.arcpos) || std::isnan(b.arcpos)) return false;
  const double per = ring_perimeter[static_cast<std::size_t>(a.ring)];
  return arc_distance(a.arcpos, b.arcpos, per) < merge_eps;
}

// Minimum "separation" between two witnesses for diversity ranking:
// different rings count as maximally separated.
double separation(const Witness& a, const Witness& b,
                  const std::vector<double>& ring_perimeter) {
  if (a.ring != b.ring || a.ring < 0 || std::isnan(a.arcpos) ||
      std::isnan(b.arcpos)) {
    return 1e18;
  }
  return arc_distance(a.arcpos, b.arcpos,
                      ring_perimeter[static_cast<std::size_t>(a.ring)]);
}

// Merge `incoming` into `mine`, dedupe by feature, cap with a greedy
// max-separation selection.
void merge_witnesses(std::vector<Witness>& mine,
                     const std::vector<Witness>& incoming,
                     const TransformParams& params,
                     const std::vector<double>& ring_perimeter) {
  for (const Witness& w : incoming) {
    bool dup = false;
    for (const Witness& m : mine) {
      if (same_feature(m, w, params.merge_eps, ring_perimeter)) {
        dup = true;
        break;
      }
    }
    if (!dup) mine.push_back(w);
  }
  if (static_cast<int>(mine.size()) <= params.max_witnesses) return;

  // Greedy diversity cap: start from the smallest node id (determinism),
  // then repeatedly add the witness farthest from the kept set.
  std::sort(mine.begin(), mine.end(),
            [](const Witness& a, const Witness& b) { return a.node < b.node; });
  std::vector<Witness> kept{mine.front()};
  std::vector<char> used(mine.size(), 0);
  used[0] = 1;
  while (static_cast<int>(kept.size()) < params.max_witnesses) {
    int best = -1;
    double best_sep = -1.0;
    for (std::size_t i = 0; i < mine.size(); ++i) {
      if (used[i]) continue;
      double sep = 1e18;
      for (const Witness& k : kept) {
        sep = std::min(sep, separation(mine[i], k, ring_perimeter));
      }
      if (sep > best_sep) {
        best_sep = sep;
        best = static_cast<int>(i);
      }
    }
    if (best == -1) break;
    used[static_cast<std::size_t>(best)] = 1;
    kept.push_back(mine[static_cast<std::size_t>(best)]);
  }
  mine = std::move(kept);
}

}  // namespace

DistanceTransform boundary_distance_transform(const net::Graph& g,
                                              const BoundaryInfo& boundary,
                                              const TransformParams& params) {
  if (params.max_witnesses < 1) {
    throw std::invalid_argument("max_witnesses must be >= 1");
  }
  const std::size_t n = static_cast<std::size_t>(g.n());
  DistanceTransform dt;
  dt.dist.assign(n, -1);
  dt.witnesses.assign(n, {});

  // Level-synchronized multi-source BFS so each node merges ALL
  // predecessor witness sets, not just the first one that reached it.
  std::vector<int> frontier;
  for (const BoundaryNode& b : boundary.nodes) {
    dt.dist[static_cast<std::size_t>(b.node)] = 0;
    dt.witnesses[static_cast<std::size_t>(b.node)].push_back(
        {b.node, b.ring, b.arcpos});
    frontier.push_back(b.node);
  }
  int level = 0;
  std::vector<int> next;
  while (!frontier.empty()) {
    next.clear();
    // Discover the next level.
    for (int v : frontier) {
      for (int w : g.neighbors(v)) {
        if (dt.dist[static_cast<std::size_t>(w)] == -1) {
          dt.dist[static_cast<std::size_t>(w)] = level + 1;
          next.push_back(w);
        }
      }
    }
    // Merge witnesses from every predecessor at the previous level.
    for (int w : next) {
      for (int u : g.neighbors(w)) {
        if (dt.dist[static_cast<std::size_t>(u)] == level) {
          merge_witnesses(dt.witnesses[static_cast<std::size_t>(w)],
                          dt.witnesses[static_cast<std::size_t>(u)], params,
                          boundary.ring_perimeter);
        }
      }
    }
    frontier.swap(next);
    ++level;
  }
  return dt;
}

}  // namespace skelex::baseline
