// skelex/baseline/distance_transform.h
//
// Hop-distance transform from the boundary with nearest-boundary-node
// witnesses. MAP and CASE both need, per node, not just the distance to
// the boundary but WHICH boundary nodes realize it (to test whether two
// nearest boundary points are far apart / on different branches).
//
// Exact nearest-witness sets would need one BFS per boundary node;
// instead witnesses are propagated along the multi-source BFS: a node's
// witnesses are the union of its predecessors', deduplicated by boundary
// feature (same ring within `merge_eps` arc length collapses to one) and
// capped at `max_witnesses` (a diversity-preserving cap: the kept set
// maximizes pairwise arc separation greedily).
#pragma once

#include <vector>

#include "baseline/boundary.h"
#include "net/graph.h"

namespace skelex::baseline {

struct Witness {
  int node = 0;      // boundary node id
  int ring = -1;     // ring of the boundary node
  double arcpos = 0; // arc position on that ring
};

struct DistanceTransform {
  std::vector<int> dist;                    // hops to nearest boundary node
  std::vector<std::vector<Witness>> witnesses;
};

struct TransformParams {
  int max_witnesses = 6;
  // Two witnesses on the same ring closer than this arc length are one
  // boundary feature.
  double merge_eps = 8.0;
};

DistanceTransform boundary_distance_transform(const net::Graph& g,
                                              const BoundaryInfo& boundary,
                                              const TransformParams& params = {});

}  // namespace skelex::baseline
