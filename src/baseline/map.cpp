#include "baseline/map.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <stdexcept>

#include "core/prune.h"

namespace skelex::baseline {

namespace {
bool well_separated(const Witness& a, const Witness& b, double min_sep,
                    const std::vector<double>& ring_perimeter) {
  if (a.ring != b.ring) return true;  // different boundary cycles
  if (a.ring < 0) return a.node != b.node;  // detector output: ids only
  return arc_distance(a.arcpos, b.arcpos,
                      ring_perimeter[static_cast<std::size_t>(a.ring)]) >=
         min_sep;
}
}  // namespace

core::SkeletonGraph connect_node_set(const net::Graph& g,
                                     const std::vector<int>& nodes,
                                     const std::vector<int>& dist_to_boundary) {
  core::SkeletonGraph sk(g.n());
  for (int v : nodes) sk.add_node(v);
  // Edges already present among the set.
  for (int v : nodes) {
    for (int w : g.neighbors(v)) {
      if (sk.has_node(w)) sk.add_edge(v, w);
    }
  }
  if (sk.node_count() == 0) return sk;

  int max_d = 0;
  for (int d : dist_to_boundary) max_d = std::max(max_d, d);
  const auto node_cost = [&](int v) {
    return static_cast<long long>(
        1 + (max_d - std::max(0, dist_to_boundary[static_cast<std::size_t>(v)])));
  };

  // Repeatedly connect the component containing the smallest node id to
  // its nearest (cheapest) other component via medial-biased Dijkstra.
  while (true) {
    int comp_count = 0;
    const std::vector<int> label = sk.component_labels(comp_count);
    if (comp_count <= 1) break;
    const int root_label = label[static_cast<std::size_t>(sk.nodes().front())];

    std::vector<long long> cost(static_cast<std::size_t>(g.n()),
                                std::numeric_limits<long long>::max());
    std::vector<int> parent(static_cast<std::size_t>(g.n()), -1);
    using Item = std::pair<long long, int>;
    std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
    for (int v : sk.nodes()) {
      if (label[static_cast<std::size_t>(v)] == root_label) {
        cost[static_cast<std::size_t>(v)] = 0;
        pq.push({0, v});
      }
    }
    int reached = -1;
    while (!pq.empty()) {
      const auto [c, v] = pq.top();
      pq.pop();
      if (c != cost[static_cast<std::size_t>(v)]) continue;
      if (sk.has_node(v) && label[static_cast<std::size_t>(v)] != root_label &&
          label[static_cast<std::size_t>(v)] != -1) {
        reached = v;
        break;
      }
      for (int w : g.neighbors(v)) {
        const long long nc = c + node_cost(w);
        if (nc < cost[static_cast<std::size_t>(w)]) {
          cost[static_cast<std::size_t>(w)] = nc;
          parent[static_cast<std::size_t>(w)] = v;
          pq.push({nc, w});
        }
      }
    }
    if (reached == -1) break;  // different network components: stop
    for (int v = reached; parent[static_cast<std::size_t>(v)] != -1;
         v = parent[static_cast<std::size_t>(v)]) {
      sk.add_edge(v, parent[static_cast<std::size_t>(v)]);
    }
  }
  return sk;
}

BaselineSkeleton map_skeleton(const net::Graph& g,
                              const BoundaryInfo& boundary,
                              const MapParams& params) {
  if (params.min_separation < 0) {
    throw std::invalid_argument("min_separation must be >= 0");
  }
  const DistanceTransform dt =
      boundary_distance_transform(g, boundary, params.transform);

  BaselineSkeleton result;
  result.dist_to_boundary = dt.dist;
  for (int v = 0; v < g.n(); ++v) {
    if (boundary.is_boundary[static_cast<std::size_t>(v)]) continue;
    const auto& ws = dt.witnesses[static_cast<std::size_t>(v)];
    bool medial = false;
    for (std::size_t i = 0; i < ws.size() && !medial; ++i) {
      for (std::size_t j = i + 1; j < ws.size(); ++j) {
        if (well_separated(ws[i], ws[j], params.min_separation,
                           boundary.ring_perimeter)) {
          medial = true;
          break;
        }
      }
    }
    if (medial) result.identified.push_back(v);
  }

  result.graph = connect_node_set(g, result.identified, dt.dist);
  core::prune_short_branches(result.graph, params.prune_len);
  return result;
}

}  // namespace skelex::baseline
