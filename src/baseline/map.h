// skelex/baseline/map.h
//
// MAP baseline (Bruck, Gao, Jiang — MobiCom'05): medial-axis extraction
// *given boundary nodes*. A node is a medial node when it has two nearest
// boundary nodes that are well separated (different boundary cycles, or
// far apart along the same cycle — the separation threshold is MAP's
// control against unstable medial nodes). Identified medial nodes are
// connected into a skeleton graph and short branches are pruned.
//
// MAP's known pathology (the motivation for CASE and for this paper): a
// small bump on the boundary spawns a long skeleton branch, because nodes
// equidistant to the bump and to the opposite boundary are "well
// separated" along the cycle. bench_baselines reproduces this on
// shapes::bumpy_rect.
#pragma once

#include "baseline/distance_transform.h"
#include "core/skeleton_graph.h"
#include "net/graph.h"

namespace skelex::baseline {

struct MapParams {
  // Minimum arc-length separation between two nearest boundary witnesses
  // for a node to be a (stable) medial node.
  double min_separation = 15.0;
  // Leaf branches shorter than this are pruned from the result.
  int prune_len = 4;
  TransformParams transform;
};

struct BaselineSkeleton {
  core::SkeletonGraph graph;       // connected skeleton
  std::vector<int> identified;     // raw identified nodes, pre-connection
  std::vector<int> dist_to_boundary;  // the transform, for inspection
};

BaselineSkeleton map_skeleton(const net::Graph& g,
                              const BoundaryInfo& boundary,
                              const MapParams& params = {});

// Shared helper: connect the components of a node set through the graph,
// biased toward large distance-to-boundary (medial) nodes, producing one
// connected skeleton per network component. Used by MAP, CASE and tests.
core::SkeletonGraph connect_node_set(const net::Graph& g,
                                     const std::vector<int>& nodes,
                                     const std::vector<int>& dist_to_boundary);

}  // namespace skelex::baseline
