#include "core/boundary_cycles.h"

#include <algorithm>
#include <queue>
#include <stdexcept>
#include <utility>

namespace skelex::core {

BoundaryCycles group_boundary_nodes(const net::Graph& g,
                                    const BoundaryResult& boundary,
                                    int merge_hops, int min_group) {
  if (merge_hops < 1) throw std::invalid_argument("merge_hops must be >= 1");
  if (min_group < 1) throw std::invalid_argument("min_group must be >= 1");
  if (boundary.is_boundary.size() != static_cast<std::size_t>(g.n())) {
    throw std::invalid_argument("boundary result does not match graph");
  }

  BoundaryCycles out;
  out.group_of.assign(static_cast<std::size_t>(g.n()), -1);

  // Budgeted BFS: a boundary node reached within merge_hops of a group
  // member joins the group and refreshes the budget.
  std::vector<int> budget(static_cast<std::size_t>(g.n()), -1);
  std::vector<std::vector<int>> groups;
  for (int seed : boundary.boundary_nodes) {
    if (out.group_of[static_cast<std::size_t>(seed)] != -1) continue;
    const int id = static_cast<int>(groups.size());
    groups.push_back({seed});
    out.group_of[static_cast<std::size_t>(seed)] = id;
    std::queue<std::pair<int, int>> q;
    q.push({seed, merge_hops});
    while (!q.empty()) {
      const auto [v, rem] = q.front();
      q.pop();
      if (rem == 0) continue;
      for (int w : g.neighbors(v)) {
        const std::size_t wi = static_cast<std::size_t>(w);
        if (boundary.is_boundary[wi] && out.group_of[wi] == -1) {
          out.group_of[wi] = id;
          groups[static_cast<std::size_t>(id)].push_back(w);
          budget[wi] = merge_hops;
          q.push({w, merge_hops});
        } else if (budget[wi] < rem - 1) {
          budget[wi] = rem - 1;
          q.push({w, rem - 1});
        }
      }
    }
  }

  // Drop noise groups, relabel largest-first.
  std::vector<int> order(groups.size());
  for (std::size_t i = 0; i < groups.size(); ++i) order[i] = static_cast<int>(i);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return groups[static_cast<std::size_t>(a)].size() >
           groups[static_cast<std::size_t>(b)].size();
  });
  std::vector<int> relabel(groups.size(), -1);
  for (int old_id : order) {
    auto& grp = groups[static_cast<std::size_t>(old_id)];
    if (static_cast<int>(grp.size()) < min_group) continue;
    relabel[static_cast<std::size_t>(old_id)] =
        static_cast<int>(out.groups.size());
    std::sort(grp.begin(), grp.end());
    out.groups.push_back(std::move(grp));
  }
  for (int v = 0; v < g.n(); ++v) {
    int& gid = out.group_of[static_cast<std::size_t>(v)];
    if (gid != -1) gid = relabel[static_cast<std::size_t>(gid)];
  }
  return out;
}

}  // namespace skelex::core
