// skelex/core/boundary_cycles.h
//
// Extension of the boundary by-product: organize the detected boundary
// nodes into per-feature groups — one group per hole plus the outer rim —
// the form downstream users (e.g. CASE-style algorithms, hole-avoiding
// routing) actually consume. Grouping is connectivity-only: boundary
// nodes within a small hop radius of each other belong to the same
// boundary feature.
#pragma once

#include <vector>

#include "core/byproducts.h"
#include "net/graph.h"

namespace skelex::core {

struct BoundaryCycles {
  // One entry per boundary feature, largest first (the outer rim is
  // normally groups[0]); each is a list of node ids.
  std::vector<std::vector<int>> groups;
  // Per node: group index, or -1 for non-boundary nodes.
  std::vector<int> group_of;
};

// Groups the boundary nodes of `boundary` into features. Boundary nodes
// within `merge_hops` hops in g are the same feature; tiny groups
// (fewer than min_group nodes) are noise and dropped.
BoundaryCycles group_boundary_nodes(const net::Graph& g,
                                    const BoundaryResult& boundary,
                                    int merge_hops = 3, int min_group = 4);

}  // namespace skelex::core
