#include "core/byproducts.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <stdexcept>

namespace skelex::core {

Segmentation segmentation_from_voronoi(const VoronoiResult& vor) {
  Segmentation s;
  s.segment_of = vor.site_of;
  s.segment_count = vor.cell_count();
  s.segment_size.assign(static_cast<std::size_t>(s.segment_count), 0);
  for (int seg : s.segment_of) {
    if (seg >= 0) ++s.segment_size[static_cast<std::size_t>(seg)];
  }
  return s;
}

BoundaryResult extract_boundaries(const net::Graph& g,
                                  const SkeletonGraph& skeleton, int min_dist,
                                  const std::vector<int>* khop_sizes,
                                  double khop_quantile) {
  if (skeleton.capacity() != g.n()) {
    throw std::invalid_argument("skeleton capacity does not match graph");
  }
  if (khop_sizes != nullptr &&
      khop_sizes->size() != static_cast<std::size_t>(g.n())) {
    throw std::invalid_argument("khop_sizes does not match graph");
  }
  if (khop_quantile <= 0.0 || khop_quantile > 1.0) {
    throw std::invalid_argument("khop_quantile must be in (0, 1]");
  }
  int khop_cut = std::numeric_limits<int>::max();
  if (khop_sizes != nullptr && g.n() > 0) {
    std::vector<int> sorted = *khop_sizes;
    std::sort(sorted.begin(), sorted.end());
    khop_cut = sorted[std::min(
        sorted.size() - 1,
        static_cast<std::size_t>(khop_quantile *
                                 static_cast<double>(sorted.size())))];
  }
  BoundaryResult r;
  const std::size_t n = static_cast<std::size_t>(g.n());
  r.dist_to_skeleton.assign(n, -1);
  r.is_boundary.assign(n, 0);

  // Multi-source BFS from every skeleton node.
  std::queue<int> q;
  for (int v = 0; v < g.n(); ++v) {
    if (skeleton.has_node(v)) {
      r.dist_to_skeleton[static_cast<std::size_t>(v)] = 0;
      q.push(v);
    }
  }
  while (!q.empty()) {
    const int v = q.front();
    q.pop();
    for (int w : g.neighbors(v)) {
      if (r.dist_to_skeleton[static_cast<std::size_t>(w)] == -1) {
        r.dist_to_skeleton[static_cast<std::size_t>(w)] =
            r.dist_to_skeleton[static_cast<std::size_t>(v)] + 1;
        q.push(w);
      }
    }
  }

  // Boundary = local maxima of the distance transform (no neighbor is
  // strictly farther). The skeleton lies medially, so distance from it
  // increases toward and peaks at the network rim.
  for (int v = 0; v < g.n(); ++v) {
    const int dv = r.dist_to_skeleton[static_cast<std::size_t>(v)];
    if (dv < min_dist) continue;
    if (khop_sizes != nullptr &&
        (*khop_sizes)[static_cast<std::size_t>(v)] > khop_cut) {
      continue;  // interior ridge, not a clipped rim disk
    }
    bool is_max = true;
    for (int w : g.neighbors(v)) {
      if (r.dist_to_skeleton[static_cast<std::size_t>(w)] > dv) {
        is_max = false;
        break;
      }
    }
    if (is_max) {
      r.is_boundary[static_cast<std::size_t>(v)] = 1;
      r.boundary_nodes.push_back(v);
    }
  }
  return r;
}

}  // namespace skelex::core
