// skelex/core/byproducts.h
//
// The two by-products the paper gets for free (§III-E, Fig. 3):
//   * segmentation — the Voronoi cells partition the network into
//     nicely-shaped sub-regions, one per site;
//   * network boundaries — nodes farthest from the skeleton in the
//     direction orthogonal to it. In the paper these fall out of the
//     end-node flooding during loop identification; the connectivity
//     signal is identical: boundary nodes are the local maxima of the
//     hop-distance transform away from the skeleton.
#pragma once

#include <vector>

#include "core/skeleton_graph.h"
#include "core/voronoi.h"
#include "net/graph.h"

namespace skelex::core {

struct Segmentation {
  // Per node: segment id (== index into VoronoiResult::sites), -1 when
  // the node was unreachable from every site.
  std::vector<int> segment_of;
  int segment_count = 0;
  std::vector<int> segment_size;
};

Segmentation segmentation_from_voronoi(const VoronoiResult& vor);

struct BoundaryResult {
  std::vector<char> is_boundary;
  std::vector<int> boundary_nodes;
  // Hop distance from each node to the nearest skeleton node.
  std::vector<int> dist_to_skeleton;
};

// Boundary nodes relative to the (final) skeleton: a node is a boundary
// node when no neighbor is strictly farther from the skeleton and it is
// at least `min_dist` hops away from it.
//
// The distance transform also has interior ridges (plateaus equidistant
// between two skeleton branches); true boundary nodes additionally have
// CLIPPED k-hop disks (the paper's own boundary signal, after [8]).
// When `khop_sizes` is given, detected nodes must also fall in the lower
// `khop_quantile` of the k-hop size distribution — this removes the
// interior ridges and sharpens the rim (the pipeline passes its stage-1
// sizes, so the filter costs nothing extra).
BoundaryResult extract_boundaries(const net::Graph& g,
                                  const SkeletonGraph& skeleton,
                                  int min_dist = 1,
                                  const std::vector<int>* khop_sizes = nullptr,
                                  double khop_quantile = 0.5);

}  // namespace skelex::core
