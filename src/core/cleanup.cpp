#include "core/cleanup.h"

#include "net/bfs.h"

#include <algorithm>
#include <limits>
#include <map>
#include <queue>
#include <set>
#include <stdexcept>

namespace skelex::core {

namespace {

// Hop depth (into the pocket) from the pocket boundary, restricted to the
// pocket region. boundary nodes get 0.
std::vector<int> pocket_depth(const net::Graph& g, const Pocket& pocket,
                              const std::vector<char>& in_region) {
  std::vector<int> depth(static_cast<std::size_t>(g.n()), -1);
  std::queue<int> q;
  for (int b : pocket.boundary) {
    depth[static_cast<std::size_t>(b)] = 0;
    q.push(b);
  }
  while (!q.empty()) {
    const int v = q.front();
    q.pop();
    for (int w : g.neighbors(v)) {
      if (in_region[static_cast<std::size_t>(w)] &&
          depth[static_cast<std::size_t>(w)] == -1) {
        depth[static_cast<std::size_t>(w)] =
            depth[static_cast<std::size_t>(v)] + 1;
        q.push(w);
      }
    }
  }
  return depth;
}

// Dijkstra within the pocket region from a set of starting nodes, with
// node cost biased toward the pocket's medial ridge (deep nodes cheap).
// Returns the cheapest path from the start set to `target`.
std::vector<int> medial_biased_path(const net::Graph& g,
                                    const std::vector<char>& in_region,
                                    const std::vector<int>& depth,
                                    const std::vector<int>& starts,
                                    int target) {
  int max_depth = 0;
  for (int v = 0; v < g.n(); ++v) {
    if (in_region[static_cast<std::size_t>(v)]) {
      max_depth = std::max(max_depth, depth[static_cast<std::size_t>(v)]);
    }
  }
  const auto node_cost = [&](int v) {
    // Entering a deep (medial) node is cheap; hugging the loop is dear.
    return 1 + (max_depth - depth[static_cast<std::size_t>(v)]);
  };
  std::vector<long long> cost(static_cast<std::size_t>(g.n()),
                              std::numeric_limits<long long>::max());
  std::vector<int> parent(static_cast<std::size_t>(g.n()), -1);
  using Item = std::pair<long long, int>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  for (int s : starts) {
    cost[static_cast<std::size_t>(s)] = 0;
    pq.push({0, s});
  }
  while (!pq.empty()) {
    const auto [c, v] = pq.top();
    pq.pop();
    if (c != cost[static_cast<std::size_t>(v)]) continue;
    if (v == target) break;
    for (int w : g.neighbors(v)) {
      if (!in_region[static_cast<std::size_t>(w)]) continue;
      const long long nc = c + node_cost(w);
      if (nc < cost[static_cast<std::size_t>(w)]) {
        cost[static_cast<std::size_t>(w)] = nc;
        parent[static_cast<std::size_t>(w)] = v;
        pq.push({nc, w});
      }
    }
  }
  std::vector<int> path;
  if (cost[static_cast<std::size_t>(target)] ==
      std::numeric_limits<long long>::max()) {
    return path;
  }
  for (int v = target; v != -1; v = parent[static_cast<std::size_t>(v)]) {
    path.push_back(v);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace

std::vector<Pocket> find_pockets(const net::Graph& g,
                                 const SkeletonGraph& skeleton) {
  const std::size_t n = static_cast<std::size_t>(g.n());
  if (skeleton.capacity() != g.n()) {
    throw std::invalid_argument("skeleton capacity does not match graph");
  }

  // Components of G restricted to non-skeleton nodes.
  std::vector<int> comp(n, -1);
  int comp_count = 0;
  std::queue<int> q;
  for (int s = 0; s < g.n(); ++s) {
    if (skeleton.has_node(s) || comp[static_cast<std::size_t>(s)] != -1) {
      continue;
    }
    comp[static_cast<std::size_t>(s)] = comp_count;
    q.push(s);
    while (!q.empty()) {
      const int v = q.front();
      q.pop();
      for (int w : g.neighbors(v)) {
        if (!skeleton.has_node(w) && comp[static_cast<std::size_t>(w)] == -1) {
          comp[static_cast<std::size_t>(w)] = comp_count;
          q.push(w);
        }
      }
    }
    ++comp_count;
  }

  std::vector<std::vector<int>> members(static_cast<std::size_t>(comp_count));
  for (int v = 0; v < g.n(); ++v) {
    if (comp[static_cast<std::size_t>(v)] != -1) {
      members[static_cast<std::size_t>(comp[static_cast<std::size_t>(v)])]
          .push_back(v);
    }
  }

  std::vector<Pocket> pockets;
  for (auto& interior : members) {
    // Skeleton nodes adjacent to the component.
    std::set<int> bound_set;
    for (int v : interior) {
      for (int w : g.neighbors(v)) {
        if (skeleton.has_node(w)) bound_set.insert(w);
      }
    }
    if (bound_set.size() < 3) continue;

    // Close gaps in the bounding loop: a skeleton node with two or more
    // skeleton-neighbors already in the set bridges two arcs of the
    // boundary (ring corners, junction apexes) even though it is not
    // directly adjacent to any pocket node. Expand to a fixpoint.
    for (bool grown = true; grown;) {
      grown = false;
      for (int b : std::vector<int>(bound_set.begin(), bound_set.end())) {
        for (int w : skeleton.neighbors(b)) {
          if (bound_set.count(w)) continue;
          int links = 0;
          for (int x : skeleton.neighbors(w)) {
            if (bound_set.count(x)) ++links;
          }
          if (links >= 2) {
            bound_set.insert(w);
            grown = true;
          }
        }
      }
    }
    std::vector<int> boundary(bound_set.begin(), bound_set.end());

    // The boundary must contain an independent cycle of the skeleton and
    // be connected there, otherwise the component merely lies beside a
    // skeleton path and encloses nothing.
    SkeletonGraph induced(g.n());
    for (int b : boundary) induced.add_node(b);
    for (int b : boundary) {
      for (int w : skeleton.neighbors(b)) {
        if (bound_set.count(w)) induced.add_edge(b, w);
      }
    }
    if (induced.component_count() != 1 || induced.cycle_rank() < 1) continue;

    pockets.push_back({std::move(interior), std::move(boundary), false});
  }
  return pockets;
}

bool pocket_is_fake(const Pocket& pocket, const IndexData& idx,
                    const CleanupParams& params) {
  // Too small to wrap a hole that connectivity could see.
  if (static_cast<int>(pocket.interior.size()) <=
      params.fake_pocket_min_size) {
    return true;
  }
  // Hole signal: a pocket wrapping a hole contains hole-boundary nodes
  // whose k-hop disks are clipped (small |N_k| relative to the medially
  // placed bounding skeleton nodes).
  double bound_mean = 0.0;
  for (int b : pocket.boundary) {
    bound_mean += idx.khop_size[static_cast<std::size_t>(b)];
  }
  bound_mean /= static_cast<double>(pocket.boundary.size());
  int interior_min = std::numeric_limits<int>::max();
  for (int v : pocket.interior) {
    interior_min =
        std::min(interior_min, idx.khop_size[static_cast<std::size_t>(v)]);
  }
  return static_cast<double>(interior_min) >=
         params.hole_khop_ratio * bound_mean;
}

CleanupResult cleanup_loops(const net::Graph& g, const IndexData& idx,
                            SkeletonGraph coarse, const CleanupParams& params,
                            const VoronoiResult* vor) {
  CleanupResult result;
  result.graph = std::move(coarse);
  SkeletonGraph& sk = result.graph;

  // --- Merge adjacent fake loops (§III-D "Merge"): skeleton nodes shared
  // by two or more fake pockets give up their identity, joining the
  // pockets; repeat until stable.
  std::vector<Pocket> pockets;
  for (int round = 0; round < g.n(); ++round) {
    pockets = find_pockets(g, sk);
    std::map<int, int> fake_bound_count;
    for (Pocket& p : pockets) {
      p.fake = pocket_is_fake(p, idx, params);
      if (!p.fake) continue;
      for (int b : p.boundary) ++fake_bound_count[b];
    }
    std::set<int> shared;
    for (const auto& [node, count] : fake_bound_count) {
      if (count >= 2) shared.insert(node);
    }
    // Demote the interior wall between the pockets but keep its junction
    // endpoints (nodes that still touch non-shared skeleton): the merged
    // pocket's contour must remain a closed cycle. This is the paper's
    // exemption for nodes with >= 3 neighboring skeleton nodes.
    std::vector<int> demote;
    for (int v : shared) {
      bool touches_outside = false;
      for (int w : sk.neighbors(v)) {
        if (!shared.count(w)) {
          touches_outside = true;
          break;
        }
      }
      if (!touches_outside) demote.push_back(v);
    }
    if (demote.empty()) break;
    for (int v : demote) sk.remove_node(v);
    ++result.merge_rounds;
  }

  // --- Delete fake loops: reconnect each fake pocket's attachments
  // through the pocket, then demote the rest of its loop nodes.
  for (const Pocket& pocket : pockets) {
    if (!pocket.fake) continue;
    ++result.fake_loops_removed;
    ++result.fake_from_pockets;

    std::vector<char> in_region(static_cast<std::size_t>(g.n()), 0);
    for (int v : pocket.interior) in_region[static_cast<std::size_t>(v)] = 1;
    for (int v : pocket.boundary) in_region[static_cast<std::size_t>(v)] = 1;
    const std::vector<int> depth = pocket_depth(g, pocket, in_region);

    // Attachment nodes: loop nodes where the rest of the skeleton hangs
    // on (neighbors in the skeleton outside the loop).
    std::set<int> bound_set(pocket.boundary.begin(), pocket.boundary.end());
    std::vector<int> attachments;
    for (int b : pocket.boundary) {
      for (int w : sk.neighbors(b)) {
        if (!bound_set.count(w)) {
          attachments.push_back(b);
          break;
        }
      }
    }
    if (attachments.size() < 2) {
      // Isolated fake loop: replace it with a single path through the
      // pocket between the two most separated loop nodes.
      int a = pocket.boundary.front();
      for (int b : pocket.boundary) {
        if (idx.index[static_cast<std::size_t>(b)] >
            idx.index[static_cast<std::size_t>(a)]) {
          a = b;
        }
      }
      const std::vector<int> d = pocket_depth(
          g, Pocket{pocket.interior, {a}, true}, in_region);
      int far = a;
      for (int b : pocket.boundary) {
        if (d[static_cast<std::size_t>(b)] > d[static_cast<std::size_t>(far)]) {
          far = b;
        }
      }
      attachments = {a, far};
    }
    std::sort(attachments.begin(), attachments.end());
    attachments.erase(std::unique(attachments.begin(), attachments.end()),
                      attachments.end());

    // Greedy Steiner: connect attachments one by one through the pocket,
    // biased toward the pocket's medial ridge.
    std::set<int> keep(attachments.begin(), attachments.end());
    std::vector<std::vector<int>> new_paths;
    std::vector<int> tree = {attachments.front()};
    std::set<int> connected = {attachments.front()};
    while (connected.size() < attachments.size()) {
      // Nearest unconnected attachment to the current tree.
      std::vector<int> best_path;
      int best_target = -1;
      for (int a : attachments) {
        if (connected.count(a)) continue;
        std::vector<int> path =
            medial_biased_path(g, in_region, depth, tree, a);
        if (path.empty()) continue;
        if (best_target == -1 || path.size() < best_path.size()) {
          best_path = std::move(path);
          best_target = a;
        }
      }
      if (best_target == -1) break;  // pocket disconnected: give up safely
      connected.insert(best_target);
      for (int v : best_path) {
        keep.insert(v);
        tree.push_back(v);
      }
      new_paths.push_back(std::move(best_path));
    }

    // Demote loop nodes that are not kept; then install the new paths.
    for (int b : pocket.boundary) {
      if (!keep.count(b)) sk.remove_node(b);
    }
    for (const std::vector<int>& path : new_paths) {
      for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        sk.add_edge(path[i], path[i + 1]);
      }
    }
  }

  // --- Voronoi-vertex cycles: a leftover skeleton cycle whose sites ALL
  // sit within alpha of one node is fake — the cells meet at a single
  // discrete Voronoi vertex, so the cycle bounds a point-like junction,
  // not a hole (a hole would put the meeting point inside itself, where
  // no node exists). The cycle is replaced by a star: each attachment
  // reconnects to the witness through the interior of the cells. (The
  // coarse stage already routes junction-covered pairs through their
  // witness, so this rarely fires; it mops up what slips through.)
  if (vor != nullptr) {
    for (bool changed = true; changed;) {
      changed = false;
      for (const std::vector<int>& cycle : sk.tight_cycles()) {
        std::set<int> cycle_sites;  // site indices on this cycle
        std::set<int> cyc_set(cycle.begin(), cycle.end());
        for (std::size_t s = 0; s < vor->sites.size(); ++s) {
          if (cyc_set.count(vor->sites[s])) {
            cycle_sites.insert(static_cast<int>(s));
          }
        }
        if (cycle_sites.size() < 3) continue;

        // Witness: a node within alpha of EVERY site on the cycle; best
        // by index, then id.
        int witness = -1;
        for (int v = 0; v < g.n(); ++v) {
          if (!vor->is_voronoi_node[static_cast<std::size_t>(v)]) continue;
          std::size_t hits = 0;
          for (const auto& rec : vor->nearby[static_cast<std::size_t>(v)]) {
            if (cycle_sites.count(rec.site)) ++hits;
          }
          if (hits < cycle_sites.size()) continue;
          if (witness == -1 ||
              idx.index[static_cast<std::size_t>(v)] >
                  idx.index[static_cast<std::size_t>(witness)] ||
              (idx.index[static_cast<std::size_t>(v)] ==
                   idx.index[static_cast<std::size_t>(witness)] &&
               v < witness)) {
            witness = v;
          }
        }
        if (witness == -1) continue;  // no Voronoi vertex: genuine loop

        ++result.fake_loops_removed;
        ++result.fake_from_witness;
        changed = true;

        // Region: the union of the involved cells, plus the cycle.
        std::vector<char> in_region(static_cast<std::size_t>(g.n()), 0);
        for (int v = 0; v < g.n(); ++v) {
          if (vor->site_of[static_cast<std::size_t>(v)] != -1 &&
              cycle_sites.count(vor->site_of[static_cast<std::size_t>(v)])) {
            in_region[static_cast<std::size_t>(v)] = 1;
          }
        }
        for (int v : cycle) in_region[static_cast<std::size_t>(v)] = 1;

        // Depth away from the cycle biases the star paths inward.
        Pocket fake_pocket;
        fake_pocket.boundary = cycle;
        const std::vector<int> depth = pocket_depth(g, fake_pocket, in_region);

        // Attachments: cycle nodes where the rest of the skeleton hangs
        // on, plus the sites themselves (they must stay connected).
        std::set<int> site_nodes(vor->sites.begin(), vor->sites.end());
        std::vector<int> attachments;
        for (int b : cycle) {
          bool keep_it = site_nodes.count(b) > 0;
          for (int w : sk.neighbors(b)) {
            if (!cyc_set.count(w)) keep_it = true;
          }
          if (keep_it) attachments.push_back(b);
        }
        if (attachments.empty()) attachments.push_back(cycle.front());

        std::set<int> keep(attachments.begin(), attachments.end());
        keep.insert(witness);
        std::vector<int> tree = {witness};
        std::vector<std::vector<int>> new_paths;
        for (int a : attachments) {
          std::vector<int> path =
              medial_biased_path(g, in_region, depth, tree, a);
          if (path.empty()) continue;
          for (int v : path) {
            keep.insert(v);
            tree.push_back(v);
          }
          new_paths.push_back(std::move(path));
        }

        for (int b : cycle) {
          if (!keep.count(b)) sk.remove_node(b);
        }
        for (const std::vector<int>& path : new_paths) {
          for (std::size_t i = 0; i + 1 < path.size(); ++i) {
            sk.add_edge(path[i], path[i + 1]);
          }
        }
        break;  // basis is stale after a mutation; recompute
      }
    }
  }

  // --- Collapse thin and braid cycles. Thin: loops that enclose no
  // nodes at all (two path runs pinched together). Braid: a cycle
  // passing through at most ONE site cannot wrap a hole — inside a cell
  // the skeleton follows the BFS parent tree, so a loop needs at least
  // two cells (two sites) to close around anything; single-site cycles
  // are bundle artifacts of several connectors entering one cell. Each
  // is opened by demoting its weakest (lowest-index) degree-2 node
  // without external attachments; the dangling remainder is pruned later.
  std::set<int> site_nodes;
  if (vor != nullptr) site_nodes.insert(vor->sites.begin(), vor->sites.end());
  for (bool changed = true; changed;) {
    changed = false;
    for (const std::vector<int>& cycle : sk.tight_cycles()) {
      int sites_on_cycle = 0;
      for (int v : cycle) {
        if (site_nodes.count(v)) ++sites_on_cycle;
      }
      const bool braid = vor != nullptr && sites_on_cycle <= 1;
      if (!braid && !cycle_is_thin(g, cycle, params)) continue;
      std::set<int> cyc_set(cycle.begin(), cycle.end());
      int victim = -1;
      for (int v : cycle) {
        if (sk.degree(v) != 2) continue;
        bool external = false;
        for (int w : sk.neighbors(v)) {
          if (!cyc_set.count(w)) external = true;
        }
        if (external) continue;
        if (victim == -1 || idx.index[static_cast<std::size_t>(v)] <
                                idx.index[static_cast<std::size_t>(victim)]) {
          victim = v;
        }
      }
      if (victim == -1) continue;  // all cycle nodes are junctions: keep
      sk.remove_node(victim);
      ++result.thin_loops_collapsed;
      changed = true;
      break;  // the basis is stale after a mutation; recompute
    }
  }

  // Final classification snapshot (genuine pockets of the final graph).
  result.pockets = find_pockets(g, sk);
  for (Pocket& p : result.pockets) {
    p.fake = pocket_is_fake(p, idx, params);
  }
  return result;
}

bool cycle_is_thin(const net::Graph& g, const std::vector<int>& cycle,
                   const CleanupParams& params) {
  const std::size_t len = cycle.size();
  if (len < 3) return true;
  const int limit = std::max(
      params.thin_cycle_hops,
      static_cast<int>(params.thin_cycle_ratio * static_cast<double>(len)));
  for (std::size_t i = 0; i < len; ++i) {
    const int a = cycle[i];
    const int b = cycle[(i + len / 2) % len];
    const auto d = net::bfs_distances(g, a, limit);
    if (d[static_cast<std::size_t>(b)] == net::kUnreached) return false;
  }
  return true;
}

bool pocket_is_fake(const Pocket& pocket, const IndexData& idx,
                    const Params& params) {
  params.validate();
  return pocket_is_fake(pocket, idx, params.cleanup_params());
}

bool cycle_is_thin(const net::Graph& g, const std::vector<int>& cycle,
                   const Params& params) {
  params.validate();
  return cycle_is_thin(g, cycle, params.cleanup_params());
}

CleanupResult cleanup_loops(const net::Graph& g, const IndexData& idx,
                            SkeletonGraph coarse, const Params& params,
                            const VoronoiResult* vor) {
  params.validate();
  return cleanup_loops(g, idx, std::move(coarse), params.cleanup_params(),
                       vor);
}

}  // namespace skelex::core
