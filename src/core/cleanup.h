// skelex/core/cleanup.h
//
// Stage 4a: loop identification + fake-loop removal (§III-D).
//
// A loop in the coarse skeleton is either genuine (it wraps a hole in the
// deployment region — the skeleton must keep it to stay homotopic to the
// network) or fake (three or more mutually adjacent Voronoi cells got
// connected pairwise, enclosing a small pocket of ordinary nodes around a
// Voronoi vertex).
//
// Connectivity-only detection: remove the skeleton nodes from the network
// and look at the remaining components. A component P whose adjacent
// skeleton nodes A(P) contain a cycle and are connected is a *pocket*
// enclosed by the skeleton. The paper classifies loops by flooding from
// "end nodes" and measuring the resulting end-node loop; our equivalent
// signals are:
//   * a tiny pocket cannot wrap a hole -> fake;
//   * hole-boundary nodes lose about half of their k-hop disk, so a
//     pocket whose minimum k-hop size is well below that of the bounding
//     skeleton nodes wraps a hole -> genuine; otherwise fake.
//
// Fake loops adjacent to each other are merged first (shared skeleton
// nodes are demoted — the paper's rule) and each resulting fake pocket is
// re-skeletonized: its attachment nodes (where branches or sites meet the
// loop) are re-connected by depth-biased shortest paths THROUGH the
// pocket (the connectivity analogue of running CASE inside the pocket
// with the loop as outer boundary), and all other loop nodes give up
// their skeleton identity.
#pragma once

#include <vector>

#include "core/config.h"
#include "core/index.h"
#include "core/skeleton_graph.h"
#include "core/voronoi.h"
#include "net/graph.h"

namespace skelex::core {

struct Pocket {
  std::vector<int> interior;  // non-skeleton nodes enclosed
  std::vector<int> boundary;  // skeleton nodes adjacent to the pocket
  bool fake = false;
};

struct CleanupResult {
  SkeletonGraph graph;          // skeleton after fake-loop removal
  std::vector<Pocket> pockets;  // final classification (genuine ones kept)
  int fake_loops_removed = 0;   // total across all mechanisms
  int merge_rounds = 0;  // rounds of adjacent-fake-loop merging
  // Cycles with empty enclosure, collapsed by the thinness test.
  int thin_loops_collapsed = 0;
  // Per-mechanism attribution (sums to fake_loops_removed).
  int fake_from_pockets = 0;
  int fake_from_witness = 0;
};

// True when `cycle` (a closed node sequence in the skeleton) encloses
// nothing: every opposite pair of cycle nodes is within
// params.thin_cycle_hops hops in the full graph. Exposed for tests.
bool cycle_is_thin(const net::Graph& g, const std::vector<int>& cycle,
                   const CleanupParams& params);
bool cycle_is_thin(const net::Graph& g, const std::vector<int>& cycle,
                   const Params& params);

// Finds the pockets enclosed by `skeleton` in `g`. A pocket's boundary is
// the adjacent skeleton nodes CLOSED UP over skeleton nodes that bridge
// two of them (ring corners and junction apexes are part of the bounding
// loop even when not directly adjacent to the pocket). Exposed for tests
// and for the boundary by-product.
std::vector<Pocket> find_pockets(const net::Graph& g,
                                 const SkeletonGraph& skeleton);

// Classifies a pocket as fake or genuine. Exposed for tests. The
// CleanupParams overload (resolved slice) is the primary; the Params
// overload validates and forwards.
bool pocket_is_fake(const Pocket& pocket, const IndexData& idx,
                    const CleanupParams& params);
bool pocket_is_fake(const Pocket& pocket, const IndexData& idx,
                    const Params& params);

// Runs the full clean-up on a coarse skeleton. Three mechanisms, in
// order, each faithful to §III-D's end-node-loop idea in connectivity
// terms:
//   1. pocket classification (enclosed node components; works whenever
//      the cycle seals its interior, e.g. lattice-like deployments);
//   2. Voronoi-vertex cycles (needs `vor`): a cycle is fake when some
//      node is within alpha of >= 3 of the cycle's sites — the cells
//      meet at a discrete Voronoi vertex, so the loop bounds a disk, not
//      a hole. UDG enclosure "leaks" between crossing links, so this is
//      the workhorse on random deployments;
//   3. thin cycles (opposite sides close in G) — loops that enclose
//      nothing at all.
// `vor` may be null (mechanism 2 is skipped), e.g. for hand-built
// skeletons in tests. The CleanupParams overload (resolved slice) is the
// primary — it reads ONLY that slice, which is what the cleanup stage
// command keys on; the Params overload validates and forwards. `vor` is
// never mutated: stages after Voronoi construction only read it, which
// is what lets a memo cache share one VoronoiResult across requests.
CleanupResult cleanup_loops(const net::Graph& g, const IndexData& idx,
                            SkeletonGraph coarse, const CleanupParams& params,
                            const VoronoiResult* vor = nullptr);
CleanupResult cleanup_loops(const net::Graph& g, const IndexData& idx,
                            SkeletonGraph coarse, const Params& params,
                            const VoronoiResult* vor = nullptr);

}  // namespace skelex::core
