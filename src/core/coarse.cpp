#include "core/coarse.h"

#include <algorithm>
#include <array>
#include <cstdint>
#include <map>
#include <set>
#include <queue>
#include <stdexcept>
#include <utility>

namespace skelex::core {

namespace {

void add_path(SkeletonGraph& sk, const std::vector<int>& path) {
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    sk.add_edge(path[i], path[i + 1]);
  }
  if (path.size() == 1) sk.add_node(path.front());
}

const VoronoiResult::NearbySite* record_for(const VoronoiResult& vor, int v,
                                            int site) {
  for (const auto& rec : vor.nearby[static_cast<std::size_t>(v)]) {
    if (rec.site == site) return &rec;
  }
  return nullptr;
}

// GF(2) vectors over the band set, as bitsets.
class Gf2Basis {
 public:
  explicit Gf2Basis(std::size_t dim) : words_((dim + 63) / 64) {}

  std::vector<std::uint64_t> vec(const std::vector<int>& bits) const {
    std::vector<std::uint64_t> v(words_, 0);
    for (int b : bits) {
      v[static_cast<std::size_t>(b) / 64] |= std::uint64_t{1} << (b % 64);
    }
    return v;
  }

  // Reduces v against the basis; returns true (and inserts) when v is
  // independent, false when v reduces to zero.
  bool insert(std::vector<std::uint64_t> v) {
    for (const auto& b : basis_) {
      if (leading_bit(v) == leading_bit(b)) xor_into(v, b);
    }
    // One pass is not enough in general; do full Gaussian elimination.
    bool changed = true;
    while (changed) {
      changed = false;
      const int lead = leading_bit(v);
      if (lead < 0) return false;
      for (const auto& b : basis_) {
        if (leading_bit(b) == lead) {
          xor_into(v, b);
          changed = true;
          break;
        }
      }
    }
    basis_.push_back(std::move(v));
    return true;
  }

 private:
  static void xor_into(std::vector<std::uint64_t>& a,
                       const std::vector<std::uint64_t>& b) {
    for (std::size_t i = 0; i < a.size(); ++i) a[i] ^= b[i];
  }
  static int leading_bit(const std::vector<std::uint64_t>& v) {
    for (std::size_t i = v.size(); i-- > 0;) {
      if (v[i] != 0) {
        return static_cast<int>(i) * 64 + 63 - std::countl_zero(v[i]);
      }
    }
    return -1;
  }

  std::size_t words_;
  std::vector<std::vector<std::uint64_t>> basis_;
};

}  // namespace

std::vector<std::vector<int>> cluster_within_hops(const net::Graph& g,
                                                  const std::vector<int>& nodes,
                                                  int merge_hops) {
  if (merge_hops < 1) throw std::invalid_argument("merge_hops must be >= 1");
  std::vector<char> in_set(static_cast<std::size_t>(g.n()), 0);
  for (int v : nodes) in_set[static_cast<std::size_t>(v)] = 1;
  std::vector<char> clustered(static_cast<std::size_t>(g.n()), 0);
  std::vector<int> budget(static_cast<std::size_t>(g.n()), -1);

  std::vector<std::vector<int>> clusters;
  std::vector<int> sorted = nodes;
  std::sort(sorted.begin(), sorted.end());
  for (int seed : sorted) {
    if (clustered[static_cast<std::size_t>(seed)]) continue;
    std::vector<int> cluster;
    std::queue<std::pair<int, int>> q;  // (node, remaining hops)
    clustered[static_cast<std::size_t>(seed)] = 1;
    cluster.push_back(seed);
    q.push({seed, merge_hops});
    while (!q.empty()) {
      const auto [v, rem] = q.front();
      q.pop();
      if (rem == 0) continue;
      for (int w : g.neighbors(v)) {
        const std::size_t wi = static_cast<std::size_t>(w);
        if (in_set[wi] && !clustered[wi]) {
          clustered[wi] = 1;
          cluster.push_back(w);
          budget[wi] = merge_hops;
          q.push({w, merge_hops});
        } else if (budget[wi] < rem - 1) {
          budget[wi] = rem - 1;
          q.push({w, rem - 1});
        }
      }
    }
    std::sort(cluster.begin(), cluster.end());
    clusters.push_back(std::move(cluster));
  }
  return clusters;
}

CoarseSkeleton build_coarse_skeleton(const net::Graph& g, const IndexData& idx,
                                     const VoronoiResult& vor,
                                     const CoarseParams& params) {
  if (idx.index.size() != static_cast<std::size_t>(g.n())) {
    throw std::invalid_argument("IndexData does not match graph");
  }
  CoarseSkeleton coarse;
  coarse.graph = SkeletonGraph(g.n());
  for (int s : vor.sites) coarse.graph.add_node(s);

  // --- Bands: the nerve's edges come from the partition's DUAL — two
  // cells are adjacent wherever a network link crosses between them.
  // (Segment nodes — the paper's alpha-balanced tie nodes — are a subset
  // of these crossing spots and still select the connector, but adjacency
  // itself must not depend on a balanced node existing, or triples of
  // cells meeting at a skewed junction lose their filling triangle.)
  // Each pair's crossing endpoints are clustered into bands; two cells
  // can meet in several places (on both sides of a hole -> two bands).
  const int merge_hops = 2 * params.alpha + 2;
  std::map<std::pair<int, int>, std::vector<int>> crossing_nodes;
  for (int v = 0; v < g.n(); ++v) {
    const int sv = vor.site_of[static_cast<std::size_t>(v)];
    if (sv == -1) continue;
    for (int w : g.neighbors(v)) {
      if (w < v) continue;
      const int sw = vor.site_of[static_cast<std::size_t>(w)];
      if (sw == -1 || sw == sv) continue;
      auto& nodes = crossing_nodes[{std::min(sv, sw), std::max(sv, sw)}];
      nodes.push_back(v);
      nodes.push_back(w);
    }
  }
  std::map<std::pair<int, int>, std::vector<int>> bands_of_pair;
  for (auto& [pair, nodes] : crossing_nodes) {
    std::sort(nodes.begin(), nodes.end());
    nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
    for (std::vector<int>& cluster : cluster_within_hops(g, nodes, merge_hops)) {
      const int band_id = static_cast<int>(coarse.bands.size());
      bands_of_pair[pair].push_back(band_id);
      coarse.bands.push_back({pair.first, pair.second, std::move(cluster)});
    }
  }
  const std::size_t band_count = coarse.bands.size();

  // --- Witnesses: Voronoi nodes seeing >= 3 sites. Each witness maps,
  // per pair of its sites, to that pair's nearest band (the local
  // meeting place).
  struct WitnessInfo {
    int node = 0;
    std::vector<int> sites;
  };
  std::vector<WitnessInfo> witnesses;
  for (int v = 0; v < g.n(); ++v) {
    const auto& nearby = vor.nearby[static_cast<std::size_t>(v)];
    if (nearby.size() < 3) continue;
    WitnessInfo w;
    w.node = v;
    for (const auto& rec : nearby) w.sites.push_back(rec.site);
    witnesses.push_back(std::move(w));
  }

  // Nearest band of `pair` to node v, by truncated BFS; -1 when none is
  // within reach.
  const int probe_depth = merge_hops + params.alpha + 2;
  const auto nearest_band = [&](const std::vector<int>& dist, int a,
                                int b) -> int {
    const auto it = bands_of_pair.find({a, b});
    if (it == bands_of_pair.end()) return -1;
    int best = -1, best_d = probe_depth + 1;
    for (int band_id : it->second) {
      for (int node : coarse.bands[static_cast<std::size_t>(band_id)].nodes) {
        const int d = dist[static_cast<std::size_t>(node)];
        if (d >= 0 && d < best_d) {
          best_d = d;
          best = band_id;
        }
      }
    }
    return best;
  };
  const auto probe_dist = [&](int v) {
    std::vector<int> dist(static_cast<std::size_t>(g.n()), -1);
    std::queue<int> q;
    dist[static_cast<std::size_t>(v)] = 0;
    q.push(v);
    while (!q.empty()) {
      const int u = q.front();
      q.pop();
      if (dist[static_cast<std::size_t>(u)] >= probe_depth) continue;
      for (int w : g.neighbors(u)) {
        if (dist[static_cast<std::size_t>(w)] == -1) {
          dist[static_cast<std::size_t>(w)] = dist[static_cast<std::size_t>(u)] + 1;
          q.push(w);
        }
      }
    }
    return dist;
  };

  // Best witness per band (for star routing), and nerve triangles.
  std::vector<int> band_witness(band_count, -1);
  for (const WitnessInfo& w : witnesses) {
    // Only witnesses living in one of the band's own cells may route it:
    // a witness in a THIRD cell c would physically realize band (a, b)
    // as the two crossing edges (c, a) + (c, b), silently changing the
    // homology the band selection below reasons about.
    const int w_cell = vor.site_of[static_cast<std::size_t>(w.node)];
    const std::vector<int> dist = probe_dist(w.node);
    // Star routing candidates: for every pair of the witness's sites,
    // the nearest band gains this witness.
    for (std::size_t i = 0; i < w.sites.size(); ++i) {
      for (std::size_t j = i + 1; j < w.sites.size(); ++j) {
        if (w_cell != w.sites[i] && w_cell != w.sites[j]) continue;
        const int band = nearest_band(dist, std::min(w.sites[i], w.sites[j]),
                                      std::max(w.sites[i], w.sites[j]));
        if (band < 0) continue;
        int& cur = band_witness[static_cast<std::size_t>(band)];
        if (cur == -1 ||
            idx.index[static_cast<std::size_t>(w.node)] >
                idx.index[static_cast<std::size_t>(cur)] ||
            (idx.index[static_cast<std::size_t>(w.node)] ==
                 idx.index[static_cast<std::size_t>(cur)] &&
             w.node < cur)) {
          cur = w.node;
        }
      }
    }
  }

  // --- Nerve triangles by band convergence. Three cells meet at a point
  // exactly when their three pairwise bands approach each other: around
  // a junction the bands' tips converge within a couple of hops, while
  // around a hole they radiate from spots separated by the hole's
  // circumference. Node witnesses are a sufficient but too-sparse signal
  // (a junction needs no node exactly equidistant to three sites);
  // set-distance between bands is the robust version.
  const int junction_radius = 2 * params.alpha + 2;
  // Convergence by co-marking: every band stamps the nodes within
  // ceil(junction_radius/2) hops of it; two bands converge when they
  // stamp a common node (set distance <= 2 * half). One truncated BFS
  // per band instead of one per band pair.
  const int half_radius = (junction_radius + 1) / 2;
  std::vector<std::vector<int>> node_bands(static_cast<std::size_t>(g.n()));
  for (std::size_t e = 0; e < band_count; ++e) {
    std::vector<int> dist(static_cast<std::size_t>(g.n()), -1);
    std::queue<int> q;
    for (int v : coarse.bands[e].nodes) {
      dist[static_cast<std::size_t>(v)] = 0;
      q.push(v);
      node_bands[static_cast<std::size_t>(v)].push_back(static_cast<int>(e));
    }
    while (!q.empty()) {
      const int v = q.front();
      q.pop();
      if (dist[static_cast<std::size_t>(v)] >= half_radius) continue;
      for (int w : g.neighbors(v)) {
        if (dist[static_cast<std::size_t>(w)] == -1) {
          dist[static_cast<std::size_t>(w)] = dist[static_cast<std::size_t>(v)] + 1;
          node_bands[static_cast<std::size_t>(w)].push_back(static_cast<int>(e));
          q.push(w);
        }
      }
    }
  }
  std::set<std::pair<int, int>> converging;
  for (int v = 0; v < g.n(); ++v) {
    const auto& list = node_bands[static_cast<std::size_t>(v)];
    for (std::size_t i = 0; i < list.size(); ++i) {
      for (std::size_t j = i + 1; j < list.size(); ++j) {
        converging.insert({std::min(list[i], list[j]), std::max(list[i], list[j])});
      }
    }
  }
  const auto bands_converge = [&](int a, int b) {
    return converging.count({std::min(a, b), std::max(a, b)}) > 0;
  };
  std::map<std::pair<int, int>, std::vector<int>> pair_bands;
  for (std::size_t e = 0; e < band_count; ++e) {
    pair_bands[{coarse.bands[e].site_a, coarse.bands[e].site_b}].push_back(
        static_cast<int>(e));
  }

  // Triangles: converging bands sharing a site, closed by a third band
  // of the outer pair that converges with both.
  std::set<std::array<int, 3>> seen_triangles;
  for (const auto& [e1, e2] : converging) {
    const Band& b1 = coarse.bands[static_cast<std::size_t>(e1)];
    const Band& b2 = coarse.bands[static_cast<std::size_t>(e2)];
    int x = -1, y = -1;
    if (b1.site_a == b2.site_a) {
      x = b1.site_b;
      y = b2.site_b;
    } else if (b1.site_a == b2.site_b) {
      x = b1.site_b;
      y = b2.site_a;
    } else if (b1.site_b == b2.site_a) {
      x = b1.site_a;
      y = b2.site_b;
    } else if (b1.site_b == b2.site_b) {
      x = b1.site_a;
      y = b2.site_a;
    } else {
      continue;
    }
    if (x == y) continue;  // parallel bands of the same pair
    const auto closing = pair_bands.find({std::min(x, y), std::max(x, y)});
    if (closing == pair_bands.end()) continue;
    for (int e3 : closing->second) {
      if (!bands_converge(e1, e3) || !bands_converge(e2, e3)) continue;
      std::array<int, 3> tri{e1, e2, e3};
      std::sort(tri.begin(), tri.end());
      if (seen_triangles.insert(tri).second) {
        coarse.triangles.push_back({tri[0], tri[1], tri[2]});
      }
    }
  }

  // Quadrilaterals: four cells meeting at one point have no chord band,
  // so triangles cannot fill the 4-cycle; when two site-DISJOINT bands
  // converge (the junction signature), close them with two side bands
  // converging with both, and fill the quad. Around a hole the opposite
  // bands are separated by the hole, so genuine 4-cell rings stay open.
  std::set<std::array<int, 4>> seen_quads;
  std::vector<std::array<int, 4>> quad_fills;
  for (const auto& [e1, e2] : converging) {
    const Band& b1 = coarse.bands[static_cast<std::size_t>(e1)];
    const Band& b2 = coarse.bands[static_cast<std::size_t>(e2)];
    const int a = b1.site_a, b = b1.site_b, c = b2.site_a, d = b2.site_b;
    if (a == c || a == d || b == c || b == d) continue;  // not disjoint
    // Two ways to close the 4-cycle: (b-c, a-d) or (b-d, a-c).
    const std::pair<int, int> side_opts[2][2] = {
        {{std::min(b, c), std::max(b, c)}, {std::min(a, d), std::max(a, d)}},
        {{std::min(b, d), std::max(b, d)}, {std::min(a, c), std::max(a, c)}}};
    for (const auto& sides : side_opts) {
      const auto s1 = pair_bands.find(sides[0]);
      const auto s2 = pair_bands.find(sides[1]);
      if (s1 == pair_bands.end() || s2 == pair_bands.end()) continue;
      for (int e3 : s1->second) {
        if (!bands_converge(e1, e3) || !bands_converge(e2, e3)) continue;
        for (int e4 : s2->second) {
          if (!bands_converge(e1, e4) || !bands_converge(e2, e4) ||
              !bands_converge(e3, e4)) {
            continue;
          }
          std::array<int, 4> quad{e1, e2, e3, e4};
          std::sort(quad.begin(), quad.end());
          if (seen_quads.insert(quad).second) quad_fills.push_back(quad);
        }
      }
    }
  }

  // --- Homology-guided band selection. Spanning forest bands are always
  // realized; a non-tree band is realized only when its fundamental
  // cycle is NOT spanned by the filled-triangle boundaries (plus
  // already-realized cycles): exactly the genuine (hole) loops survive.
  const int m = static_cast<int>(vor.sites.size());
  std::vector<int> uf(static_cast<std::size_t>(m));
  for (int i = 0; i < m; ++i) uf[static_cast<std::size_t>(i)] = i;
  const auto find = [&](int x) {
    while (uf[static_cast<std::size_t>(x)] != x) {
      uf[static_cast<std::size_t>(x)] =
          uf[static_cast<std::size_t>(uf[static_cast<std::size_t>(x)])];
      x = uf[static_cast<std::size_t>(x)];
    }
    return x;
  };

  std::vector<char> is_tree(band_count, 0);
  // Forest adjacency: site -> (neighbor site, band id).
  std::vector<std::vector<std::pair<int, int>>> forest(
      static_cast<std::size_t>(m));
  for (std::size_t e = 0; e < band_count; ++e) {
    const int ra = find(coarse.bands[e].site_a);
    const int rb = find(coarse.bands[e].site_b);
    if (ra != rb) {
      uf[static_cast<std::size_t>(ra)] = rb;
      is_tree[e] = 1;
      forest[static_cast<std::size_t>(coarse.bands[e].site_a)].push_back(
          {coarse.bands[e].site_b, static_cast<int>(e)});
      forest[static_cast<std::size_t>(coarse.bands[e].site_b)].push_back(
          {coarse.bands[e].site_a, static_cast<int>(e)});
    }
  }

  // Tree path between two sites, as band ids.
  const auto tree_path_bands = [&](int a, int b) {
    std::vector<int> parent_site(static_cast<std::size_t>(m), -1);
    std::vector<int> parent_band(static_cast<std::size_t>(m), -1);
    std::queue<int> q;
    parent_site[static_cast<std::size_t>(a)] = a;
    q.push(a);
    while (!q.empty() && parent_site[static_cast<std::size_t>(b)] == -1) {
      const int v = q.front();
      q.pop();
      for (const auto& [w, band] : forest[static_cast<std::size_t>(v)]) {
        if (parent_site[static_cast<std::size_t>(w)] == -1) {
          parent_site[static_cast<std::size_t>(w)] = v;
          parent_band[static_cast<std::size_t>(w)] = band;
          q.push(w);
        }
      }
    }
    std::vector<int> bands;
    for (int v = b; v != a; v = parent_site[static_cast<std::size_t>(v)]) {
      bands.push_back(parent_band[static_cast<std::size_t>(v)]);
    }
    return bands;
  };

  Gf2Basis basis(band_count);
  for (const NerveTriangle& t : coarse.triangles) {
    basis.insert(basis.vec({t.band_ab, t.band_bc, t.band_ac}));
  }
  for (const auto& quad : quad_fills) {
    basis.insert(basis.vec({quad[0], quad[1], quad[2], quad[3]}));
  }
  for (std::size_t e = 0; e < band_count; ++e) {
    if (is_tree[e]) {
      coarse.realized_bands.push_back(static_cast<int>(e));
      continue;
    }
    std::vector<int> cycle =
        tree_path_bands(coarse.bands[e].site_a, coarse.bands[e].site_b);
    cycle.push_back(static_cast<int>(e));
    if (basis.insert(basis.vec(cycle))) {
      coarse.realized_bands.push_back(static_cast<int>(e));
    }
  }

  // --- Realize the selected bands.
  for (int e : coarse.realized_bands) {
    const Band& band = coarse.bands[static_cast<std::size_t>(e)];
    const int w = band_witness[static_cast<std::size_t>(e)];
    if (w != -1) {
      // Junction star: witness connects to both sites directly.
      const auto* ra = record_for(vor, w, band.site_a);
      const auto* rb = record_for(vor, w, band.site_b);
      if (ra != nullptr && rb != nullptr) {
        coarse.connectors.push_back(w);
        add_path(coarse.graph, vor.path_to_nearby(w, *ra));
        add_path(coarse.graph, vor.path_to_nearby(w, *rb));
        continue;
      }
    }
    // Plain connector, the paper's rule first: the band's largest-index
    // SEGMENT node for this pair sends along its two reverse paths
    // (§III-C). Ties go to the smaller node id.
    int best_seg = -1;
    int best_any = -1;
    for (int v : band.nodes) {
      const std::size_t vi = static_cast<std::size_t>(v);
      const auto better = [&](int cur) {
        return cur == -1 ||
               idx.index[vi] > idx.index[static_cast<std::size_t>(cur)] ||
               (idx.index[vi] == idx.index[static_cast<std::size_t>(cur)] &&
                v < cur);
      };
      if (vor.is_segment[vi]) {
        const int a = std::min(vor.site_of[vi], vor.site2_of[vi]);
        const int b = std::max(vor.site_of[vi], vor.site2_of[vi]);
        if (a == band.site_a && b == band.site_b && better(best_seg)) {
          best_seg = v;
        }
      }
      if (better(best_any)) best_any = v;
    }
    if (best_seg != -1) {
      coarse.connectors.push_back(best_seg);
      add_path(coarse.graph, vor.path_to_site(best_seg));
      add_path(coarse.graph, vor.path_to_second_site(best_seg));
      continue;
    }
    // No balanced segment node in this band (skewed meeting): realize
    // through the band's best crossing edge instead — both endpoints'
    // reverse paths plus the crossing link.
    const int u = best_any;
    const int own = vor.site_of[static_cast<std::size_t>(u)];
    const int other = own == band.site_a ? band.site_b : band.site_a;
    int mate = -1;
    for (int w : g.neighbors(u)) {
      if (vor.site_of[static_cast<std::size_t>(w)] != other) continue;
      if (mate == -1 ||
          idx.index[static_cast<std::size_t>(w)] >
              idx.index[static_cast<std::size_t>(mate)] ||
          (idx.index[static_cast<std::size_t>(w)] ==
               idx.index[static_cast<std::size_t>(mate)] &&
           w < mate)) {
        mate = w;
      }
    }
    if (mate == -1) {
      // u joined the band cluster without a crossing edge of its own
      // (bridged in); find any band member with one.
      for (int v : band.nodes) {
        if (vor.site_of[static_cast<std::size_t>(v)] != own) continue;
        for (int w : g.neighbors(v)) {
          if (vor.site_of[static_cast<std::size_t>(w)] == other) {
            mate = w;
            break;
          }
        }
        if (mate != -1) {
          coarse.connectors.push_back(v);
          add_path(coarse.graph, vor.path_to_site(v));
          add_path(coarse.graph, vor.path_to_site(mate));
          coarse.graph.add_edge(v, mate);
          break;
        }
      }
      if (mate == -1) coarse.connectors.push_back(-1);  // degenerate band
      continue;
    }
    coarse.connectors.push_back(u);
    add_path(coarse.graph, vor.path_to_site(u));
    add_path(coarse.graph, vor.path_to_site(mate));
    coarse.graph.add_edge(u, mate);
  }
  return coarse;
}

CoarseSkeleton build_coarse_skeleton(const net::Graph& g, const IndexData& idx,
                                     const VoronoiResult& vor,
                                     const Params& params) {
  params.validate();
  return build_coarse_skeleton(g, idx, vor, params.coarse_params());
}

}  // namespace skelex::core
