// skelex/core/coarse.h
//
// Stage 3: coarse skeleton establishment (§III-C), hardened against the
// fake loops §III-D worries about by building the Voronoi cells' NERVE:
//
//   * vertices  — the sites;
//   * edges     — "bands": connected clusters of a pair's segment nodes.
//     One pair of cells can meet in several disjoint places (two cells on
//     opposite sides of a hole!), so the nerve is a multigraph;
//   * triangles — site triples some Voronoi node is within alpha of:
//     those three cells meet at a point, so the triangle is filled.
//
// By the nerve theorem the region's holes correspond exactly to nerve
// cycles NOT spanned by filled triangles. The coarse skeleton therefore
// realizes a spanning forest of the nerve plus exactly those non-tree
// bands whose fundamental cycles are independent of the triangle
// boundary space over GF(2) — fake loops never get built, genuine loops
// always do.
//
// Realizing a band follows the paper: the band's largest-index segment
// node sends messages along its two recorded reverse paths (§III-C). A
// band whose pair is junction-covered routes through the junction's best
// witness instead, so bundles of bands meeting at one point merge into a
// star rather than a braid.
#pragma once

#include <vector>

#include "core/config.h"
#include "core/index.h"
#include "core/skeleton_graph.h"
#include "core/voronoi.h"
#include "net/graph.h"

namespace skelex::core {

// One place where two cells meet: a connected cluster of segment nodes.
struct Band {
  int site_a = 0;  // index into VoronoiResult::sites, site_a < site_b
  int site_b = 0;
  std::vector<int> nodes;  // the cluster's segment nodes
};

// A filled nerve triangle: three cells meeting at witness nodes.
struct NerveTriangle {
  int band_ab = 0;  // indices into the band list
  int band_bc = 0;
  int band_ac = 0;
};

struct CoarseSkeleton {
  SkeletonGraph graph;
  std::vector<Band> bands;
  std::vector<NerveTriangle> triangles;
  // Band indices that were realized (tree bands + genuine loop bands).
  std::vector<int> realized_bands;
  // Connector node per realized band (segment node or junction witness).
  std::vector<int> connectors;
};

// Clusters `nodes` into groups connected within `merge_hops` hops of each
// other in g. Exposed for tests.
std::vector<std::vector<int>> cluster_within_hops(const net::Graph& g,
                                                  const std::vector<int>& nodes,
                                                  int merge_hops);

// Primary implementation: reads only the CoarseParams slice — the stage
// command's keyed input.
CoarseSkeleton build_coarse_skeleton(const net::Graph& g, const IndexData& idx,
                                     const VoronoiResult& vor,
                                     const CoarseParams& params);

// Full-Params wrapper (validates, then takes the slice).
CoarseSkeleton build_coarse_skeleton(const net::Graph& g, const IndexData& idx,
                                     const VoronoiResult& vor,
                                     const Params& params);

}  // namespace skelex::core
