#include "core/config.h"

#include <stdexcept>

namespace skelex::core {

void Params::validate() const {
  if (k < 1) throw std::invalid_argument("Params.k must be >= 1");
  if (l < 0) throw std::invalid_argument("Params.l must be >= 0");
  if (local_max_radius < 0) {
    throw std::invalid_argument("Params.local_max_radius must be >= 0");
  }
  if (alpha < 0) throw std::invalid_argument("Params.alpha must be >= 0");
  if (prune_len < 0) throw std::invalid_argument("Params.prune_len must be >= 0");
  if (fake_pocket_min_size < 0) {
    throw std::invalid_argument("Params.fake_pocket_min_size must be >= 0");
  }
  if (hole_khop_ratio < 0.0 || hole_khop_ratio > 1.0) {
    throw std::invalid_argument("Params.hole_khop_ratio must be in [0, 1]");
  }
  if (thin_cycle_hops < 0) {
    throw std::invalid_argument("Params.thin_cycle_hops must be >= 0");
  }
  if (thin_cycle_ratio < 0.0 || thin_cycle_ratio >= 0.5) {
    throw std::invalid_argument("Params.thin_cycle_ratio must be in [0, 0.5)");
  }
}

}  // namespace skelex::core
