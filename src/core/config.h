// skelex/core/config.h
//
// Parameters of the skeleton extraction algorithm. Defaults follow the
// paper: k = l = 4, Voronoi tie threshold alpha = 1. §V-B argues the
// algorithm is insensitive to k and l; bench_param_sensitivity sweeps them.
#pragma once

#include <cstdint>

namespace skelex::core {

// --- Per-stage parameter slices ----------------------------------------------
// Each pipeline stage declares the subset of Params it actually reads.
// The slices are what the stage commands (core/stage_cmd.h) hash into
// their content-addressed keys: two Params differing only in fields a
// stage never looks at produce the SAME slice, so the memo cache shares
// the stage's output between them. Derived defaults (local_max_radius=0
// meaning "use l", fake_pocket_min_size=0 meaning "2k^2") are RESOLVED
// when the slice is taken, so a slice is a pure value — equal slices,
// equal outputs.

// Stage 1a (index computation): |N_k|, l-centrality, index.
struct IndexParams {
  int k = 4;
  int l = 4;
  bool centrality_includes_self = false;
};

// Stage 1b (critical-node identification): the locally-maximal test.
struct IdentifyParams {
  int local_max_radius = 2;  // resolved: never 0
};

// Stage 2 (Voronoi construction): the tie threshold.
struct VoronoiParams {
  int alpha = 1;
};

// Stage 3 (coarse skeleton): nerve construction reads alpha for the
// junction-witness test.
struct CoarseParams {
  int alpha = 1;
};

// Stage 4a (loop clean-up).
struct CleanupParams {
  int fake_pocket_min_size = 32;  // resolved: never 0
  double hole_khop_ratio = 0.72;
  int thin_cycle_hops = 2;
  double thin_cycle_ratio = 0.2;
};

// Stage 4b (pruning).
struct PruneParams {
  int prune_len = 6;
};

struct Params {
  // Radius (hops) of the neighborhood-size flood: |N_k(p)| (§III-A round 1).
  int k = 4;
  // Radius (hops) over which k-hop sizes are averaged into the
  // l-centrality (§III-A round 2).
  int l = 4;
  // Whether the node's own k-hop size participates in its l-centrality
  // average. The paper averages over the l-hop *neighbors* (Def. 3).
  bool centrality_includes_self = false;
  // Radius (hops) of the "locally maximal" test for the index (Def. 5).
  // The paper does not fix the radius; 2 reproduces the site density of
  // its figures (Fig. 1b) — large enough to suppress density noise,
  // small enough that thin limbs (wings, petals) still spawn the sites
  // that pull the skeleton into them. Communication-wise any value up to
  // l is free: after round 2 a node already knows its l-hop ball.
  int local_max_radius = 2;
  // Voronoi tie threshold (§III-B): a node whose hop distances to two
  // sites differ by at most alpha becomes a segment node.
  int alpha = 1;
  // Final-stage pruning: leaf branches shorter than this many hops are
  // trimmed (§III-D "Pruning").
  int prune_len = 6;
  // Fake-loop classification (§III-D): an enclosed pocket with at most
  // this many nodes is always a fake loop (too small to wrap a hole).
  // 0 selects the default 2 * k * k.
  int fake_pocket_min_size = 0;
  // A pocket containing a node whose k-hop size is below
  // hole_khop_ratio * (mean k-hop size of the bounding cycle) is treated
  // as wrapping a hole, i.e. the loop is genuine: hole-boundary nodes
  // lose a sizable clipped share of their k-hop disk (about half in the
  // continuum, about a third right at a flat wall in lattice-like
  // deployments), while the ordinary interior nodes of a fake pocket
  // keep nearly all of it.
  double hole_khop_ratio = 0.72;

  // A skeleton cycle that encloses no hole can be crossed through its
  // inside, so opposite cycle nodes stay close in the full graph; a
  // genuine hole loop can only be crossed by walking around the hole
  // (about half the cycle length). A cycle is "thin" — and collapsed —
  // when every pair of opposite cycle nodes is within
  //   max(thin_cycle_hops, thin_cycle_ratio * cycle_length)
  // hops. The absolute floor catches pinched double-paths; the relative
  // term catches junction loops around open areas.
  int thin_cycle_hops = 2;
  double thin_cycle_ratio = 0.2;

  int effective_local_max_radius() const {
    return local_max_radius > 0 ? local_max_radius : (l > 0 ? l : 1);
  }
  int effective_fake_pocket_min_size() const {
    return fake_pocket_min_size > 0 ? fake_pocket_min_size : 2 * k * k;
  }

  // The per-stage slices, with derived defaults resolved.
  IndexParams index_params() const {
    return {k, l, centrality_includes_self};
  }
  IdentifyParams identify_params() const {
    return {effective_local_max_radius()};
  }
  VoronoiParams voronoi_params() const { return {alpha}; }
  CoarseParams coarse_params() const { return {alpha}; }
  CleanupParams cleanup_params() const {
    return {effective_fake_pocket_min_size(), hole_khop_ratio, thin_cycle_hops,
            thin_cycle_ratio};
  }
  PruneParams prune_params() const { return {prune_len}; }

  // Throws std::invalid_argument when a field is out of range.
  void validate() const;
};

}  // namespace skelex::core
