#include "core/fingerprint.h"

#include "core/pipeline.h"
#include "core/skeleton_graph.h"

namespace skelex::core {

std::uint64_t graph_fingerprint(const net::CsrGraph& g) {
  Fnv f;
  const int n = g.n();
  f.i32(n);
  for (int v = 0; v < n; ++v) {
    f.i32(g.degree(v));
    for (int w : g.neighbors(v)) f.i32(w);
  }
  return f.h;
}

void hash_skeleton_graph(Fnv& f, const SkeletonGraph& sk) {
  f.vec(sk.nodes());
  for (int v : sk.nodes()) {
    for (int w : sk.neighbors(v)) {
      if (w > v) {
        f.i32(v);
        f.i32(w);
      }
    }
  }
}

std::uint64_t result_fingerprint(const SkeletonResult& r) {
  Fnv f;
  // Stage 1.
  f.vec(r.index().khop_size);
  f.vecd(r.index().centrality);
  f.vecd(r.index().index);
  f.vec(r.critical_nodes);
  // Stage 2.
  const VoronoiResult& vor = r.voronoi();
  f.vec(vor.sites);
  f.vec(vor.site_of);
  f.vec(vor.dist);
  f.vec(vor.parent);
  f.vec(vor.site2_of);
  f.vec(vor.dist2);
  f.vec(vor.via2);
  f.vecc(vor.is_segment);
  f.vecc(vor.is_voronoi_node);
  // Stages 3-4: node and edge lists in canonical order.
  hash_skeleton_graph(f, r.coarse());
  hash_skeleton_graph(f, r.skeleton);
  f.i32(r.fake_loops_removed);
  f.i32(r.merge_rounds);
  f.i32(r.thin_loops_collapsed);
  f.i32(r.pruned_nodes);
  // By-products.
  f.vec(r.segmentation.segment_of);
  f.vec(r.segmentation.segment_size);
  f.vec(r.boundary.boundary_nodes);
  f.vec(r.boundary.dist_to_skeleton);
  return f.h;
}

}  // namespace skelex::core
