#include "core/fingerprint.h"

#include "core/pipeline.h"
#include "core/skeleton_graph.h"

namespace skelex::core {

std::uint64_t graph_fingerprint(const net::CsrGraph& g) {
  Fnv f;
  const int n = g.n();
  f.i32(n);
  for (int v = 0; v < n; ++v) {
    f.i32(g.degree(v));
    for (int w : g.neighbors(v)) f.i32(w);
  }
  return f.h;
}

void hash_skeleton_graph(Fnv& f, const SkeletonGraph& sk) {
  f.vec(sk.nodes());
  for (int v : sk.nodes()) {
    for (int w : sk.neighbors(v)) {
      if (w > v) {
        f.i32(v);
        f.i32(w);
      }
    }
  }
}

std::uint64_t result_fingerprint(const SkeletonResult& r) {
  Fnv f;
  // Stage 1.
  f.vec(r.index().khop_size);
  f.vecd(r.index().centrality);
  f.vecd(r.index().index);
  f.vec(r.critical_nodes);
  // Stage 2.
  const VoronoiResult& vor = r.voronoi();
  f.vec(vor.sites);
  f.vec(vor.site_of);
  f.vec(vor.dist);
  f.vec(vor.parent);
  f.vec(vor.site2_of);
  f.vec(vor.dist2);
  f.vec(vor.via2);
  f.vecc(vor.is_segment);
  f.vecc(vor.is_voronoi_node);
  // Stages 3-4: node and edge lists in canonical order.
  hash_skeleton_graph(f, r.coarse());
  hash_skeleton_graph(f, r.skeleton);
  f.i32(r.fake_loops_removed);
  f.i32(r.merge_rounds);
  f.i32(r.thin_loops_collapsed);
  f.i32(r.pruned_nodes);
  // By-products.
  f.vec(r.segmentation.segment_of);
  f.vec(r.segmentation.segment_size);
  f.vec(r.boundary.boundary_nodes);
  f.vec(r.boundary.dist_to_skeleton);
  return f.h;
}

std::uint64_t index_fingerprint(const IndexData& d) {
  Fnv f;
  f.vec(d.khop_size);
  f.vecd(d.centrality);
  f.vecd(d.index);
  return f.h;
}

std::uint64_t voronoi_fingerprint(const VoronoiResult& v) {
  Fnv f;
  f.vec(v.sites);
  f.vec(v.site_of);
  f.vec(v.dist);
  f.vec(v.parent);
  f.vec(v.site2_of);
  f.vec(v.dist2);
  f.vec(v.via2);
  f.vecc(v.is_segment);
  f.vecc(v.is_voronoi_node);
  f.i32(static_cast<int>(v.nearby.size()));
  for (const auto& records : v.nearby) {
    f.i32(static_cast<int>(records.size()));
    for (const auto& r : records) {
      f.i32(r.site);
      f.i32(r.dist);
      f.i32(r.via);
    }
  }
  return f.h;
}

std::uint64_t stage12_fingerprint(const net::CsrGraph& csr,
                                  const IndexData& idx,
                                  const std::vector<int>& critical,
                                  const VoronoiResult& vor) {
  Fnv f;
  f.bytes("stage12", 7);
  f.u64(graph_fingerprint(csr));
  f.u64(index_fingerprint(idx));
  f.vec(critical);
  f.u64(voronoi_fingerprint(vor));
  return f.h;
}

}  // namespace skelex::core
