// skelex/core/fingerprint.h
//
// Content fingerprints used across the stage-command pipeline:
//
//   * Fnv — the FNV-1a byte hasher every fingerprint in the repo is
//     built from (formerly duplicated in tests);
//   * graph_fingerprint — hash of a CsrGraph's LIVE content (n + each
//     row's live neighbor prefix). Delta-maintained CSRs with different
//     slack layouts but equal live rows hash equal, which is exactly
//     the equivalence the pipeline cares about. This is the "graph" part
//     of every stage-command key (core/stage_cmd.h).
//   * result_fingerprint — FNV-1a over every field of a SkeletonResult,
//     in the exact field order the golden test pinned before the CSR
//     refactor (tests/test_csr_equivalence.cpp). The Window-scenario
//     golden constant 0x75302e0b3de2a7f4 is computed by this function;
//     the memoized and unmemoized drivers must both reproduce it.
#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

#include "net/csr.h"

namespace skelex::core {

struct SkeletonResult;
class SkeletonGraph;
struct IndexData;
struct VoronoiResult;

// FNV-1a over raw bytes, with typed helpers matching the historical
// golden-field encoding (ints and vector lengths as 4 bytes, doubles as
// their IEEE bit pattern).
struct Fnv {
  std::uint64_t h = 1469598103934665603ull;

  void bytes(const void* p, std::size_t n) {
    const unsigned char* c = static_cast<const unsigned char*>(p);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= c[i];
      h *= 1099511628211ull;
    }
  }
  void i32(int x) { bytes(&x, sizeof x); }
  void u64(std::uint64_t x) { bytes(&x, sizeof x); }
  void f64(double x) {
    std::uint64_t b;
    std::memcpy(&b, &x, sizeof b);
    bytes(&b, sizeof b);
  }
  void vec(const std::vector<int>& v) {
    i32(static_cast<int>(v.size()));
    for (int x : v) i32(x);
  }
  void vecc(const std::vector<char>& v) {
    i32(static_cast<int>(v.size()));
    for (char x : v) i32(x);
  }
  void vecd(const std::vector<double>& v) {
    i32(static_cast<int>(v.size()));
    for (double x : v) f64(x);
  }
};

// Hash of the live adjacency content of `g` (node count, per-row degree
// and neighbor order). Two CSRs describing the same graph — one built
// fresh, one maintained through apply_delta — fingerprint equal.
std::uint64_t graph_fingerprint(const net::CsrGraph& g);

// Canonical node+edge hash of a skeleton graph (nodes ascending, edges
// u<w in node order) — the per-graph piece of result_fingerprint.
void hash_skeleton_graph(Fnv& f, const SkeletonGraph& sk);

// FNV-1a over every field of the extraction output: stage 1 (index,
// critical nodes), stage 2 (all Voronoi arrays), stages 3-4 (coarse and
// final skeleton node/edge lists, clean-up counters), and by-products.
std::uint64_t result_fingerprint(const SkeletonResult& r);

// Content hash of a stage-1 index (khop sizes, centrality, index values).
std::uint64_t index_fingerprint(const IndexData& d);

// Content hash of a stage-2 Voronoi decomposition: sites, per-node
// assignment/distance/parent arrays, secondary-site arrays, segment and
// voronoi-node flags, and every nearby-site record.
std::uint64_t voronoi_fingerprint(const VoronoiResult& v);

// Combined content key for everything the tail stages (assess, coarse,
// cleanup, prune, byproducts) consume: live graph + index + critical
// nodes + voronoi. The maintainer uses this as the upstream key when it
// drives the tail of the stage-command DAG, so repairs that leave the
// stage-1/2 content untouched replay the tail from cache while any
// regional re-flood changes the key (and thus every downstream key).
std::uint64_t stage12_fingerprint(const net::CsrGraph& csr,
                                  const IndexData& idx,
                                  const std::vector<int>& critical,
                                  const VoronoiResult& vor);

}  // namespace skelex::core
