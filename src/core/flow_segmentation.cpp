#include "core/flow_segmentation.h"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace skelex::core {

FlowSegmentation flow_segmentation(const net::Graph& g,
                                   const SkeletonGraph& skeleton,
                                   const std::vector<int>& boundary_dist) {
  if (skeleton.capacity() != g.n()) {
    throw std::invalid_argument("skeleton capacity does not match graph");
  }
  if (boundary_dist.size() != static_cast<std::size_t>(g.n())) {
    throw std::invalid_argument("boundary_dist does not match graph");
  }
  const std::size_t n = static_cast<std::size_t>(g.n());
  FlowSegmentation out;
  out.sink_of.assign(n, -1);
  out.segment_of.assign(n, -1);

  // --- Sinks: one per skeleton limb (maximal chain of degree <= 2
  // skeleton nodes). Junction nodes join their largest adjacent chain.
  int sink_count = 0;
  for (int s : skeleton.nodes()) {
    if (skeleton.degree(s) > 2 || out.sink_of[static_cast<std::size_t>(s)] != -1) {
      continue;
    }
    const int id = sink_count++;
    std::queue<int> q;
    out.sink_of[static_cast<std::size_t>(s)] = id;
    q.push(s);
    while (!q.empty()) {
      const int v = q.front();
      q.pop();
      for (int w : skeleton.neighbors(v)) {
        if (skeleton.degree(w) <= 2 &&
            out.sink_of[static_cast<std::size_t>(w)] == -1) {
          out.sink_of[static_cast<std::size_t>(w)] = id;
          q.push(w);
        }
      }
    }
  }
  // Junctions (and a skeleton that is ALL junctions) join a neighbor
  // chain; iterate to a fixpoint so junction clusters resolve too.
  for (bool changed = true; changed;) {
    changed = false;
    for (int s : skeleton.nodes()) {
      if (out.sink_of[static_cast<std::size_t>(s)] != -1) continue;
      int best = -1;
      for (int w : skeleton.neighbors(s)) {
        const int sw = out.sink_of[static_cast<std::size_t>(w)];
        if (sw != -1 && (best == -1 || sw < best)) best = sw;
      }
      if (best != -1) {
        out.sink_of[static_cast<std::size_t>(s)] = best;
        changed = true;
      }
    }
  }
  // Isolated skeleton nodes with no chain at all: own sink.
  for (int s : skeleton.nodes()) {
    if (out.sink_of[static_cast<std::size_t>(s)] == -1) {
      out.sink_of[static_cast<std::size_t>(s)] = sink_count++;
    }
  }
  out.segment_count = sink_count;

  // --- Flow: watershed on the boundary distance transform. Nodes are
  // claimed in descending distance order by an already-claimed neighbor
  // at greater-or-equal height (ties by smaller id); plateau islands
  // that stay unclaimed fall to a final BFS sweep.
  for (int v = 0; v < g.n(); ++v) {
    if (skeleton.has_node(v)) {
      out.segment_of[static_cast<std::size_t>(v)] =
          out.sink_of[static_cast<std::size_t>(v)];
    }
  }
  std::vector<int> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = static_cast<int>(i);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    if (boundary_dist[static_cast<std::size_t>(a)] !=
        boundary_dist[static_cast<std::size_t>(b)]) {
      return boundary_dist[static_cast<std::size_t>(a)] >
             boundary_dist[static_cast<std::size_t>(b)];
    }
    return a < b;
  });
  for (int v : order) {
    const std::size_t vi = static_cast<std::size_t>(v);
    if (out.segment_of[vi] != -1) continue;
    int best_w = -1;
    for (int w : g.neighbors(v)) {
      const std::size_t wi = static_cast<std::size_t>(w);
      if (out.segment_of[wi] == -1) continue;
      if (boundary_dist[wi] < boundary_dist[vi]) continue;  // only ascend
      if (best_w == -1 ||
          boundary_dist[wi] > boundary_dist[static_cast<std::size_t>(best_w)] ||
          (boundary_dist[wi] ==
               boundary_dist[static_cast<std::size_t>(best_w)] &&
           w < best_w)) {
        best_w = w;
      }
    }
    if (best_w != -1) {
      out.segment_of[vi] = out.segment_of[static_cast<std::size_t>(best_w)];
    }
  }
  // Plateau mop-up: any leftover joins the nearest claimed node.
  std::queue<int> q;
  for (int v = 0; v < g.n(); ++v) {
    if (out.segment_of[static_cast<std::size_t>(v)] != -1) q.push(v);
  }
  while (!q.empty()) {
    const int v = q.front();
    q.pop();
    for (int w : g.neighbors(v)) {
      if (out.segment_of[static_cast<std::size_t>(w)] == -1) {
        out.segment_of[static_cast<std::size_t>(w)] =
            out.segment_of[static_cast<std::size_t>(v)];
        q.push(w);
      }
    }
  }

  out.segment_size.assign(static_cast<std::size_t>(out.segment_count), 0);
  for (int v = 0; v < g.n(); ++v) {
    const int s = out.segment_of[static_cast<std::size_t>(v)];
    if (s >= 0) ++out.segment_size[static_cast<std::size_t>(s)];
  }
  return out;
}

}  // namespace skelex::core
