// skelex/core/flow_segmentation.h
//
// The shape-segmentation application the paper describes in §I (after
// [18] and CONSEL [12]): "with extracted skeleton graph, nearby skeleton
// nodes are merged into a sink. Other nodes compute their parents with
// higher hop-count to the boundaries, 'flowing' to the sinks. Those
// nodes flowing to the same sink are grouped to the same segment."
//
// Implementation, connectivity-only:
//   1. sinks — maximal degree-2 chains of the skeleton between junctions
//      or leaves are each one sink; junction nodes merge into the
//      adjacent chain with the better (higher) index. This groups
//      "nearby skeleton nodes" per skeleton limb, so a cross-shaped
//      network yields one segment per arm.
//   2. flow — every ordinary node hands itself to the neighbor farther
//      from the boundary (higher distance-to-skeleton-complement, i.e.
//      the boundary distance transform), until it reaches a skeleton
//      node; it inherits that node's sink.
//
// Compared to the Voronoi-cell by-product (one segment per site), this
// yields one segment per skeleton LIMB — the segmentation shape papers
// actually want (one piece per arm of a cross, per petal of a flower).
#pragma once

#include <vector>

#include "core/skeleton_graph.h"
#include "net/graph.h"

namespace skelex::core {

struct FlowSegmentation {
  // Per node: segment id (= sink id), -1 when unreachable.
  std::vector<int> segment_of;
  int segment_count = 0;
  std::vector<int> segment_size;
  // Per skeleton node: its sink id.
  std::vector<int> sink_of;
};

// `boundary_dist` is the hop distance of every node to the network
// boundary (e.g. from baseline::boundary_distance_transform, or any
// distance transform); flow ascends it. Nodes flow toward ascending
// boundary distance and reach the skeleton, whose limbs are the sinks.
FlowSegmentation flow_segmentation(const net::Graph& g,
                                   const SkeletonGraph& skeleton,
                                   const std::vector<int>& boundary_dist);

}  // namespace skelex::core
