#include "core/identify.h"

#include <stdexcept>

#include "net/khop.h"

namespace skelex::core {

bool is_local_max(const net::Graph& g, const std::vector<double>& index, int v,
                  int radius) {
  const double iv = index[static_cast<std::size_t>(v)];
  for (int w : net::khop_neighbors(g, v, radius)) {
    const double iw = index[static_cast<std::size_t>(w)];
    if (iw > iv || (iw == iv && w < v)) return false;
  }
  return true;
}

std::vector<int> identify_critical_nodes(const net::CsrGraph& g,
                                         net::Workspace& ws,
                                         const IndexData& idx,
                                         const IdentifyParams& params) {
  if (idx.index.size() != static_cast<std::size_t>(g.n())) {
    throw std::invalid_argument("IndexData does not match graph");
  }
  const int r = params.local_max_radius;
  std::vector<int> critical;
  net::KhopScanner scanner(g, ws);
  const double* const index = idx.index.data();
  for (int v = 0; v < g.n(); ++v) {
    const double iv = index[v];
    // Branch-light accumulate: the scan always runs the full radius (the
    // message count is the same whether or not v stays a candidate), so
    // fold the comparison into a flag instead of branching per visit.
    bool is_max = true;
    scanner.scan(v, r, [&](int w) {
      const double iw = index[w];
      is_max = is_max & !(iw > iv || (iw == iv && w < v));
    });
    if (is_max) critical.push_back(v);
  }
  return critical;
}

std::vector<int> identify_critical_nodes(const net::CsrGraph& g,
                                         net::Workspace& ws,
                                         const IndexData& idx,
                                         const Params& params) {
  params.validate();
  return identify_critical_nodes(g, ws, idx, params.identify_params());
}

std::vector<int> identify_critical_nodes(const net::Graph& g,
                                         const IndexData& idx,
                                         const Params& params) {
  net::Workspace ws;
  return identify_critical_nodes(g.csr(), ws, idx, params);
}

}  // namespace skelex::core
