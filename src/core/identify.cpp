#include "core/identify.h"

#include <stdexcept>

#include "net/khop.h"

namespace skelex::core {

bool is_local_max(const net::Graph& g, const std::vector<double>& index, int v,
                  int radius) {
  const double iv = index[static_cast<std::size_t>(v)];
  for (int w : net::khop_neighbors(g, v, radius)) {
    const double iw = index[static_cast<std::size_t>(w)];
    if (iw > iv || (iw == iv && w < v)) return false;
  }
  return true;
}

std::vector<int> identify_critical_nodes(const net::CsrGraph& g,
                                         net::Workspace& ws,
                                         const IndexData& idx,
                                         const IdentifyParams& params) {
  if (idx.index.size() != static_cast<std::size_t>(g.n())) {
    throw std::invalid_argument("IndexData does not match graph");
  }
  const int r = params.local_max_radius;
  std::vector<int> critical;
  net::KhopScanner scanner(g, ws);
  for (int v = 0; v < g.n(); ++v) {
    const double iv = idx.index[static_cast<std::size_t>(v)];
    bool is_max = true;
    scanner.scan(v, r, [&](int w) {
      const double iw = idx.index[static_cast<std::size_t>(w)];
      if (iw > iv || (iw == iv && w < v)) is_max = false;
    });
    if (is_max) critical.push_back(v);
  }
  return critical;
}

std::vector<int> identify_critical_nodes(const net::CsrGraph& g,
                                         net::Workspace& ws,
                                         const IndexData& idx,
                                         const Params& params) {
  params.validate();
  return identify_critical_nodes(g, ws, idx, params.identify_params());
}

std::vector<int> identify_critical_nodes(const net::Graph& g,
                                         const IndexData& idx,
                                         const Params& params) {
  net::Workspace ws;
  return identify_critical_nodes(g.csr(), ws, idx, params);
}

}  // namespace skelex::core
