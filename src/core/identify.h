// skelex/core/identify.h
//
// Stage 1b: critical skeleton node identification (Def. 5). A node whose
// index is maximal over its r-hop neighborhood (r =
// Params::effective_local_max_radius()) declares itself a critical
// skeleton node. Exact ties are broken toward the smaller node id so the
// result is deterministic and one node per tie-group survives.
#pragma once

#include <vector>

#include "core/config.h"
#include "core/index.h"
#include "net/csr.h"
#include "net/graph.h"

namespace skelex::core {

// Primary implementation: returns the critical skeleton node ids in
// ascending order, running one allocation-free r-hop scan per node on
// the caller's workspace. Reads only the IdentifyParams slice (with the
// radius already resolved), so the stage command can key on it.
std::vector<int> identify_critical_nodes(const net::CsrGraph& g,
                                         net::Workspace& ws,
                                         const IndexData& idx,
                                         const IdentifyParams& params);

// Full-Params wrapper (validates, then takes the resolved slice).
std::vector<int> identify_critical_nodes(const net::CsrGraph& g,
                                         net::Workspace& ws,
                                         const IndexData& idx,
                                         const Params& params);

// Compatibility wrapper over g.csr() with a private workspace.
std::vector<int> identify_critical_nodes(const net::Graph& g,
                                         const IndexData& idx,
                                         const Params& params);

// True iff `v`'s index beats every node in its r-hop neighborhood (ties
// lose against smaller ids). Exposed for tests.
bool is_local_max(const net::Graph& g, const std::vector<double>& index, int v,
                  int radius);

}  // namespace skelex::core
