#include "core/index.h"

#include "net/khop.h"

namespace skelex::core {

IndexData compute_index(const net::Graph& g, const Params& params) {
  params.validate();
  IndexData d;
  d.khop_size = net::khop_sizes(g, params.k);
  d.centrality = net::l_centrality(g, d.khop_size, params.l,
                                   params.centrality_includes_self);
  d.index.resize(static_cast<std::size_t>(g.n()));
  for (std::size_t v = 0; v < d.index.size(); ++v) {
    d.index[v] = 0.5 * (static_cast<double>(d.khop_size[v]) + d.centrality[v]);
  }
  return d;
}

}  // namespace skelex::core
