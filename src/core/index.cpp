#include "core/index.h"

namespace skelex::core {

IndexData compute_index(const net::CsrGraph& g, net::Workspace& ws,
                        const IndexParams& params) {
  IndexData d;
  net::khop_sizes(g, params.k, ws, d.khop_size);
  net::l_centrality(g, d.khop_size, params.l, params.centrality_includes_self,
                    ws, d.centrality);
  d.index.resize(static_cast<std::size_t>(g.n()));
  for (std::size_t v = 0; v < d.index.size(); ++v) {
    d.index[v] = 0.5 * (static_cast<double>(d.khop_size[v]) + d.centrality[v]);
  }
  return d;
}

IndexData compute_index(const net::CsrGraph& g, net::Workspace& ws,
                        const Params& params) {
  params.validate();
  return compute_index(g, ws, params.index_params());
}

IndexData compute_index(const net::Graph& g, const Params& params) {
  net::Workspace ws;
  return compute_index(g.csr(), ws, params);
}

}  // namespace skelex::core
