// skelex/core/index.h
//
// Stage 1a: per-node index computation (§II-C). For every node p,
//   |N_k(p)|   — k-hop neighborhood size (discrete intersection area),
//   c_l(p)     — l-centrality: mean of |N_k| over p's l-hop neighbors,
//   i(p)       — the index (Def. 4): ( |N_k(p)| + c_l(p) ) / 2.
#pragma once

#include <vector>

#include "core/config.h"
#include "net/csr.h"
#include "net/graph.h"

namespace skelex::core {

struct IndexData {
  std::vector<int> khop_size;       // |N_k(p)|
  std::vector<double> centrality;   // c_l(p)
  std::vector<double> index;        // i(p)
};

// Primary implementation: runs the two k-hop scans on the CSR view,
// reusing the caller's workspace across all sources. Reads only the
// IndexParams slice — the input half of the stage command's key.
IndexData compute_index(const net::CsrGraph& g, net::Workspace& ws,
                        const IndexParams& params);

// Full-Params wrapper (validates, then takes the slice).
IndexData compute_index(const net::CsrGraph& g, net::Workspace& ws,
                        const Params& params);

// Compatibility wrapper over g.csr() with a private workspace.
IndexData compute_index(const net::Graph& g, const Params& params);

}  // namespace skelex::core
