#include "core/maintain.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "core/fingerprint.h"
#include "obs/metrics.h"
#include "obs/trace.h"

// Exactness of the incremental repair (why tier 1 is bit-identical to a
// from-scratch extraction):
//
// Stage 1 locality. A topology change at seed set S can alter |N_k(v)|
// only for v in ball(S, k): the scan of any other node sees an unchanged
// subgraph. Hence c_l and the index change only inside ball(S, k + l),
// and criticality — which reads the index over an r-hop scan — only
// inside ball(S, k + l + r). The patch recomputes exactly those balls
// with the same kernels (KhopScanner order, long long centrality
// accumulator, 0.5 * (khop + c_l)), reading cached values outside,
// which are canonical by the same argument. The balls are grown on the
// POST-change CSR; this suffices because for any node whose pre-change
// ball would differ, the minimal changed endpoint still lies within the
// same hop radius on the new graph.
//
// Stage 2 locality is NOT bounded a priori (a removed bridge moves
// distances arbitrarily far), so the regional re-flood proves itself
// a posteriori: unit-weight multi-source distances are the unique
// fixed point of d(v) = min(0 at sites, min_w d(w) + 1), so if after
// re-flooding region2 with the cached rim held fixed every rim node's
// cached distance and adoption still satisfy the fixed-point equations
// against its (new) neighborhood, the combined labeling is THE global
// fixed point — identical to build_voronoi from scratch. Any rim
// mismatch means changes escaped the region and the repair escalates to
// a full recompute. Adoption and second-record rules replicate
// build_voronoi's comparisons verbatim, and records are rebuilt for
// region2 plus its rim (a record reads only a node's own and direct
// neighbors' adopted state, so nothing further can change).
namespace skelex::core {

namespace {

std::uint64_t fnv_mix(std::uint64_t h, std::uint64_t x) {
  for (int i = 0; i < 8; ++i) {
    h ^= (x >> (8 * i)) & 0xffull;
    h *= 1099511628211ull;
  }
  return h;
}

double millis_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

const char* repair_tier_name(RepairTier t) {
  switch (t) {
    case RepairTier::kNone: return "none";
    case RepairTier::kLocalPatch: return "local_patch";
    case RepairTier::kRegionalReflood: return "regional_reflood";
    case RepairTier::kFullRecompute: return "full_recompute";
  }
  return "unknown";
}

std::uint64_t skeleton_fingerprint(const SkeletonGraph& s) {
  std::uint64_t h = 1469598103934665603ull;
  const std::vector<int> nodes = s.nodes();  // ascending
  h = fnv_mix(h, static_cast<std::uint64_t>(nodes.size()));
  std::vector<std::pair<int, int>> edges;
  for (int v : nodes) {
    h = fnv_mix(h, static_cast<std::uint64_t>(v));
    for (int w : s.neighbors(v)) {
      if (w > v) edges.emplace_back(v, w);
    }
  }
  std::sort(edges.begin(), edges.end());
  h = fnv_mix(h, static_cast<std::uint64_t>(edges.size()));
  for (const auto& [u, v] : edges) {
    h = fnv_mix(h, static_cast<std::uint64_t>(u));
    h = fnv_mix(h, static_cast<std::uint64_t>(v));
  }
  return h;
}

InvariantReport check_skeleton_invariants(const net::CsrGraph& csr,
                                          std::span<const char> active,
                                          const SkeletonResult& r) {
  const int n = csr.n();
  if (static_cast<int>(active.size()) != n) {
    throw std::invalid_argument("active mask size does not match the graph");
  }
  InvariantReport rep;

  int active_count = 0;
  for (int v = 0; v < n; ++v) {
    if (active[static_cast<std::size_t>(v)]) ++active_count;
  }

  const SkeletonGraph& sk = r.skeleton;
  const std::vector<int> sk_nodes = sk.nodes();
  std::vector<char> on_skeleton(static_cast<std::size_t>(n), 0);
  for (int v : sk_nodes) {
    if (v >= n || !active[static_cast<std::size_t>(v)]) {
      ++rep.inactive_skeleton_nodes;
      continue;
    }
    on_skeleton[static_cast<std::size_t>(v)] = 1;
    for (int w : sk.neighbors(v)) {
      if (w <= v) continue;  // count each undirected edge once
      bool live = w < n && active[static_cast<std::size_t>(w)];
      if (live) {
        live = false;
        for (int x : csr.neighbors(v)) {
          if (x == w) {
            live = true;
            break;
          }
        }
      }
      if (!live) ++rep.phantom_skeleton_edges;
    }
  }

  // Every active component must contain at least one skeleton node.
  {
    std::vector<char> seen(static_cast<std::size_t>(n), 0);
    std::vector<int> queue;
    for (int s = 0; s < n; ++s) {
      if (!active[static_cast<std::size_t>(s)] ||
          seen[static_cast<std::size_t>(s)]) {
        continue;
      }
      queue.clear();
      queue.push_back(s);
      seen[static_cast<std::size_t>(s)] = 1;
      bool covered = false;
      for (std::size_t head = 0; head < queue.size(); ++head) {
        const int v = queue[head];
        if (on_skeleton[static_cast<std::size_t>(v)]) covered = true;
        for (int w : csr.neighbors(v)) {
          if (active[static_cast<std::size_t>(w)] &&
              !seen[static_cast<std::size_t>(w)]) {
            seen[static_cast<std::size_t>(w)] = 1;
            queue.push_back(w);
          }
        }
      }
      if (!covered) ++rep.uncovered_components;
    }
  }

  for (int s : r.voronoi().sites) {
    if (s < 0 || s >= n || !active[static_cast<std::size_t>(s)]) {
      ++rep.inactive_sites;
    }
  }
  if (static_cast<int>(r.voronoi().site_of.size()) == n) {
    for (int v = 0; v < n; ++v) {
      if (active[static_cast<std::size_t>(v)] &&
          r.voronoi().site_of[static_cast<std::size_t>(v)] == -1) {
        ++rep.unassigned_active_nodes;
      }
    }
  } else if (active_count > 0) {
    rep.violations.push_back("voronoi site_of covers " +
                             std::to_string(r.voronoi().site_of.size()) +
                             " nodes, topology has " + std::to_string(n));
  }

  rep.empty_skeleton = active_count > 0 && sk.node_count() == 0;

  if (rep.inactive_skeleton_nodes > 0) {
    rep.violations.push_back(std::to_string(rep.inactive_skeleton_nodes) +
                             " skeleton node(s) are inactive");
  }
  if (rep.phantom_skeleton_edges > 0) {
    rep.violations.push_back(std::to_string(rep.phantom_skeleton_edges) +
                             " skeleton edge(s) are not live links");
  }
  if (rep.uncovered_components > 0) {
    rep.violations.push_back(std::to_string(rep.uncovered_components) +
                             " active component(s) have no skeleton node");
  }
  if (rep.inactive_sites > 0) {
    rep.violations.push_back(std::to_string(rep.inactive_sites) +
                             " Voronoi site(s) are inactive");
  }
  if (rep.unassigned_active_nodes > 0) {
    rep.violations.push_back(std::to_string(rep.unassigned_active_nodes) +
                             " active node(s) belong to no Voronoi cell");
  }
  if (rep.empty_skeleton) {
    rep.violations.push_back("skeleton is empty but active nodes exist");
  }
  return rep;
}

SkeletonMaintainer::SkeletonMaintainer(sim::DynamicTopology& topo,
                                       MaintainOptions opt)
    : topo_(topo), opt_(std::move(opt)) {
  opt_.params.validate();
  if (opt_.repair_interval < 1) {
    throw std::invalid_argument("repair_interval must be >= 1");
  }
  if (opt_.staleness_bound < 1) {
    throw std::invalid_argument("staleness_bound must be >= 1");
  }
  if (opt_.full_rebuild_fraction <= 0.0 || opt_.full_rebuild_fraction > 1.0) {
    throw std::invalid_argument("full_rebuild_fraction must be in (0, 1]");
  }
  if (opt_.dirty_radius < 0) {
    throw std::invalid_argument("dirty_radius must be >= 0");
  }
  ws_.reserve(topo_.n());
}

int SkeletonMaintainer::effective_dirty_radius() const {
  if (opt_.dirty_radius > 0) return opt_.dirty_radius;
  return opt_.params.k + opt_.params.l +
         opt_.params.effective_local_max_radius();
}

SkeletonResult SkeletonMaintainer::canonical() const {
  const net::CsrGraph& csr = topo_.csr();
  if (topo_.active_count() == 0) {
    // No network: the canonical skeleton is empty. The stage-1/2 arrays
    // still span the stable id space (all-zero index, no cells) so
    // future patches can read them.
    SkeletonResult r;
    r.params = opt_.params;
    const std::size_t n = static_cast<std::size_t>(csr.n());
    IndexData idx;
    idx.khop_size.assign(n, 0);
    idx.centrality.assign(n, 0.0);
    idx.index.assign(n, 0.0);
    r.set_index(std::move(idx));
    VoronoiResult vor;
    vor.site_of.assign(n, -1);
    vor.dist.assign(n, net::kUnreached);
    vor.parent.assign(n, -1);
    vor.site2_of.assign(n, -1);
    vor.dist2.assign(n, net::kUnreached);
    vor.via2.assign(n, -1);
    vor.is_segment.assign(n, 0);
    vor.is_voronoi_node.assign(n, 0);
    vor.nearby.assign(n, {});
    r.set_voronoi(std::move(vor));
    return r;
  }
  IndexData idx = compute_index(csr, ws_, opt_.params);
  std::vector<int> crit = identify_critical_nodes(csr, ws_, idx, opt_.params);
  // Departed nodes are isolated, which makes them trivial local maxima;
  // they must not become sites.
  std::erase_if(crit, [&](int v) { return !topo_.is_active(v); });
  VoronoiResult vor = build_voronoi(csr, ws_, crit, opt_.params);
  const std::uint64_t tail_key = stage12_key(idx, crit, vor);
  return complete_extraction(topo_.graph(), csr, opt_.params, std::move(idx),
                             std::move(crit), std::move(vor), opt_.cache,
                             tail_key);
}

std::uint64_t SkeletonMaintainer::stage12_key(
    const IndexData& idx, const std::vector<int>& critical,
    const VoronoiResult& vor) const {
  if (opt_.cache == nullptr) return 0;
  return stage12_fingerprint(topo_.csr(), idx, critical, vor);
}

void SkeletonMaintainer::adopt_full(SkeletonResult r) {
  index_ = r.index();
  critical_ = r.critical_nodes;
  voronoi_ = r.voronoi();
  is_critical_.assign(static_cast<std::size_t>(topo_.n()), 0);
  for (int v : critical_) is_critical_[static_cast<std::size_t>(v)] = 1;
  served_ = std::move(r);
}

void SkeletonMaintainer::initialize() {
  SkeletonResult full = canonical();
  const InvariantReport rep =
      check_skeleton_invariants(topo_.csr(), topo_.active(), full);
  adopt_full(std::move(full));
  healthy_ = rep.ok();
  if (!healthy_) ++stats_.invariant_failures;
  initialized_ = true;
  staleness_ = 0;
  clear_pending();
}

void SkeletonMaintainer::note_changes(
    const sim::DynamicTopology::RoundChanges& changes) {
  if (changes.events == 0) return;
  pending_events_ += changes.events;
  stats_.events += changes.events;
  pending_dirty_.insert(pending_dirty_.end(), changes.dirty.begin(),
                        changes.dirty.end());
  pending_removed_edges_.insert(pending_removed_edges_.end(),
                                changes.removed_edges.begin(),
                                changes.removed_edges.end());
  pending_departed_.insert(pending_departed_.end(), changes.departed.begin(),
                           changes.departed.end());
}

RepairOutcome SkeletonMaintainer::advance(const sim::ChurnScript& script,
                                          int round) {
  if (!initialized_) initialize();
  note_changes(topo_.apply_round(script, round));
  ++stats_.rounds;

  RepairOutcome out;
  if (pending_events_ > 0) {
    ++staleness_;
    stats_.max_staleness = std::max(stats_.max_staleness, staleness_);
    // Round-count fact, not a wall time: safe under the registry's
    // determinism contract, and scrapeable while a daemon churns.
    static const obs::Gauge stale_peak =
        obs::Registry::global().gauge("maintain_staleness_peak");
    stale_peak.set(static_cast<double>(staleness_));
    const bool watchdog = staleness_ >= opt_.staleness_bound;
    if (watchdog || staleness_ >= opt_.repair_interval) {
      if (watchdog) ++stats_.watchdog_forced;
      out = run_repair(watchdog);
    } else {
      out.deferred = true;
    }
  }
  out.staleness = staleness_;
  out.invariants_ok = healthy_;
  return out;
}

RepairOutcome SkeletonMaintainer::repair_now() {
  if (!initialized_) initialize();
  RepairOutcome out;
  if (pending_events_ > 0) out = run_repair(false);
  out.staleness = staleness_;
  out.invariants_ok = healthy_;
  return out;
}

InvariantReport SkeletonMaintainer::check() const {
  return check_skeleton_invariants(topo_.csr(), topo_.active(), served_);
}

std::uint64_t SkeletonMaintainer::served_fingerprint() const {
  return skeleton_fingerprint(served_.skeleton);
}

void SkeletonMaintainer::clear_pending() {
  pending_dirty_.clear();
  pending_removed_edges_.clear();
  pending_departed_.clear();
  pending_events_ = 0;
}

void SkeletonMaintainer::grow_region(std::span<const int> seeds, int radius) {
  const net::CsrGraph& csr = topo_.csr();
  const std::size_t n = static_cast<std::size_t>(csr.n());
  if (mark_.size() < n) mark_.resize(n, 0);
  ++mark_epoch_;
  region_.clear();
  region_depth_.clear();
  for (int s : seeds) {
    if (s < 0 || s >= static_cast<int>(n)) continue;
    const std::size_t si = static_cast<std::size_t>(s);
    if (mark_[si] == mark_epoch_) continue;
    mark_[si] = mark_epoch_;
    region_.push_back(s);
    region_depth_.push_back(0);
  }
  for (std::size_t head = 0; head < region_.size(); ++head) {
    const int v = region_[head];
    const int d = region_depth_[head];
    if (d >= radius) continue;
    for (int w : csr.neighbors(v)) {
      const std::size_t wi = static_cast<std::size_t>(w);
      if (mark_[wi] == mark_epoch_) continue;
      mark_[wi] = mark_epoch_;
      region_.push_back(w);
      region_depth_.push_back(d + 1);
    }
  }
}

bool SkeletonMaintainer::patch_stage1(std::span<const int> seeds) {
  const net::CsrGraph& csr = topo_.csr();
  const Params& P = opt_.params;
  const std::size_t n = static_cast<std::size_t>(csr.n());
  index_.khop_size.resize(n, 0);
  index_.centrality.resize(n, 0.0);
  index_.index.resize(n, 0.0);
  is_critical_.resize(n, 0);
  ws_.reserve(csr.n());

  const int r = P.effective_local_max_radius();
  const int radius = effective_dirty_radius();
  const int khop_depth = std::min(P.k, radius);
  const int index_depth = std::min(P.k + P.l, radius);
  grow_region(seeds, radius);

  net::KhopScanner scanner(csr, ws_);
  // |N_k| can change only within ball(seeds, k).
  for (std::size_t i = 0; i < region_.size(); ++i) {
    if (region_depth_[i] > khop_depth) continue;
    const int v = region_[i];
    int count = 0;
    scanner.scan(v, P.k, [&](int) { ++count; });
    index_.khop_size[static_cast<std::size_t>(v)] = count;
  }
  // c_l and the index can change only within ball(seeds, k + l); the
  // scan reads a mix of fresh and cached |N_k|, both canonical. Same
  // accumulator types as net::l_centrality so the doubles agree bitwise.
  for (std::size_t i = 0; i < region_.size(); ++i) {
    if (region_depth_[i] > index_depth) continue;
    const int v = region_[i];
    const std::size_t vi = static_cast<std::size_t>(v);
    long long sum =
        P.centrality_includes_self ? index_.khop_size[vi] : 0;
    int count = P.centrality_includes_self ? 1 : 0;
    scanner.scan(v, P.l, [&](int w) {
      sum += index_.khop_size[static_cast<std::size_t>(w)];
      ++count;
    });
    index_.centrality[vi] =
        count > 0 ? static_cast<double>(sum) / count
                  : static_cast<double>(index_.khop_size[vi]);
    index_.index[vi] = 0.5 * (static_cast<double>(index_.khop_size[vi]) +
                              index_.centrality[vi]);
  }
  // Criticality can change only within ball(seeds, k + l + r); the
  // r-hop scan may read indices outside ball(seeds, k + l), which are
  // unchanged hence canonical. Inactive nodes are isolated trivial
  // local maxima and are forced non-critical (canonical()'s filter).
  bool changed = false;
  for (std::size_t i = 0; i < region_.size(); ++i) {
    const int v = region_[i];
    const std::size_t vi = static_cast<std::size_t>(v);
    char now = 0;
    if (topo_.is_active(v)) {
      const double iv = index_.index[vi];
      bool is_max = true;
      scanner.scan(v, r, [&](int w) {
        const double iw = index_.index[static_cast<std::size_t>(w)];
        if (iw > iv || (iw == iv && w < v)) is_max = false;
      });
      now = is_max ? 1 : 0;
    }
    if (now != is_critical_[vi]) changed = true;
    is_critical_[vi] = now;
  }
  if (changed) {
    critical_.clear();
    for (int v = 0; v < static_cast<int>(n); ++v) {
      if (is_critical_[static_cast<std::size_t>(v)]) critical_.push_back(v);
    }
  }
  return changed;
}

bool SkeletonMaintainer::patch_voronoi(bool sites_changed,
                                       bool* records_changed) {
  const net::CsrGraph& csr = topo_.csr();
  const Params& P = opt_.params;
  const int n = csr.n();
  const std::size_t un = static_cast<std::size_t>(n);
  VoronoiResult& V = voronoi_;
  // A renumbered site table is an observable change on its own.
  *records_changed = sites_changed;

  const std::size_t n_old = V.site_of.size();
  V.site_of.resize(un, -1);
  V.dist.resize(un, net::kUnreached);
  V.parent.resize(un, -1);
  V.site2_of.resize(un, -1);
  V.dist2.resize(un, net::kUnreached);
  V.via2.resize(un, -1);
  V.is_segment.resize(un, 0);
  V.is_voronoi_node.resize(un, 0);
  V.nearby.resize(un);

  site_index_of_.assign(un, -1);
  for (std::size_t i = 0; i < critical_.size(); ++i) {
    site_index_of_[static_cast<std::size_t>(critical_[i])] =
        static_cast<int>(i);
  }

  // Old site index -> new site index (-1: site removed). Both tables
  // list ascending node ids, so the map is monotone on survivors and
  // remapped `nearby` lists stay sorted.
  std::vector<int> remap(V.sites.size());
  bool any_removed = false;
  bool identity = V.sites.size() == critical_.size();
  for (std::size_t i = 0; i < V.sites.size(); ++i) {
    const int s = V.sites[i];
    remap[i] = (s < n && is_critical_[static_cast<std::size_t>(s)])
                   ? site_index_of_[static_cast<std::size_t>(s)]
                   : -1;
    if (remap[i] == -1) any_removed = true;
    if (remap[i] != static_cast<int>(i)) identity = false;
  }

  // region2 = the stage-1 ball plus the whole cell of every removed
  // site (those nodes must re-adopt no matter how far they are).
  if (mark2_.size() < un) mark2_.resize(un, 0);
  ++mark2_epoch_;
  region2_.clear();
  auto add2 = [&](int v) {
    const std::size_t vi = static_cast<std::size_t>(v);
    if (mark2_[vi] != mark2_epoch_) {
      mark2_[vi] = mark2_epoch_;
      region2_.push_back(v);
    }
  };
  for (int v : region_) add2(v);
  if (any_removed) {
    for (std::size_t v = 0; v < n_old; ++v) {
      const int s = V.site_of[v];
      if (s != -1 && remap[static_cast<std::size_t>(s)] == -1) {
        add2(static_cast<int>(v));
      }
    }
  }
  auto in2 = [&](int v) {
    return mark2_[static_cast<std::size_t>(v)] == mark2_epoch_;
  };

  // The rim: every outside neighbor of region2. mark_ is free again
  // once stage 1 is done; a fresh epoch marks rim membership.
  if (mark_.size() < un) mark_.resize(un, 0);
  ++mark_epoch_;
  std::vector<int> rim;
  for (int v : region2_) {
    for (int w : csr.neighbors(v)) {
      const std::size_t wi = static_cast<std::size_t>(w);
      if (!in2(w) && mark_[wi] != mark_epoch_) {
        mark_[wi] = mark_epoch_;
        rim.push_back(w);
      }
    }
  }
  auto on_rim = [&](int v) {
    return mark_[static_cast<std::size_t>(v)] == mark_epoch_;
  };

  // Remap cached site indices outside region2. Rim records are rebuilt
  // below, so only their adopted site needs the remap; any reference to
  // a removed site from outside the region means the locality argument
  // failed — escalate.
  if (!identity) {
    for (int v = 0; v < n; ++v) {
      if (in2(v)) continue;
      const std::size_t vi = static_cast<std::size_t>(v);
      if (V.site_of[vi] != -1) {
        V.site_of[vi] = remap[static_cast<std::size_t>(V.site_of[vi])];
        if (V.site_of[vi] == -1) return false;
      }
      if (on_rim(v)) continue;
      if (V.site2_of[vi] != -1) {
        V.site2_of[vi] = remap[static_cast<std::size_t>(V.site2_of[vi])];
        if (V.site2_of[vi] == -1) return false;
      }
      for (auto& rec : V.nearby[vi]) {
        rec.site = remap[static_cast<std::size_t>(rec.site)];
        if (rec.site == -1) return false;
      }
    }
  }

  // Snapshot the records that may be rebuilt, for change detection.
  struct SavedRec {
    int site_of, dist, parent, site2_of, dist2, via2;
    char seg, vnode;
    std::vector<VoronoiResult::NearbySite> nearby;
  };
  std::vector<int> rec_nodes;
  rec_nodes.reserve(region2_.size() + rim.size());
  rec_nodes.insert(rec_nodes.end(), region2_.begin(), region2_.end());
  rec_nodes.insert(rec_nodes.end(), rim.begin(), rim.end());
  std::vector<SavedRec> saved;
  if (!*records_changed) {
    saved.reserve(rec_nodes.size());
    for (int v : rec_nodes) {
      const std::size_t vi = static_cast<std::size_t>(v);
      saved.push_back({V.site_of[vi], V.dist[vi], V.parent[vi], V.site2_of[vi],
                       V.dist2[vi], V.via2[vi], V.is_segment[vi],
                       V.is_voronoi_node[vi], V.nearby[vi]});
    }
  }

  // Re-flood region2 with the cached rim held fixed: sites inside seed
  // at 0, reachable rim nodes offer dist + 1 inward. Unit weights make
  // a Dial queue exact, and settling in increasing distance order is
  // the same adoption order as build_voronoi's BFS queue.
  for (int v : region2_) {
    const std::size_t vi = static_cast<std::size_t>(v);
    V.site_of[vi] = -1;
    V.dist[vi] = net::kUnreached;
    V.parent[vi] = -1;
  }
  std::vector<std::vector<int>> buckets;
  auto offer = [&](int v, int d) {
    if (static_cast<int>(buckets.size()) <= d) {
      buckets.resize(static_cast<std::size_t>(d) + 1);
    }
    buckets[static_cast<std::size_t>(d)].push_back(v);
  };
  for (int v : region2_) {
    if (site_index_of_[static_cast<std::size_t>(v)] != -1) offer(v, 0);
  }
  for (int b : rim) {
    const int db = V.dist[static_cast<std::size_t>(b)];
    if (db == net::kUnreached) continue;
    for (int w : csr.neighbors(b)) {
      if (in2(w)) offer(w, db + 1);
    }
  }
  std::vector<int> order;  // settled region2 nodes, nondecreasing dist
  order.reserve(region2_.size());
  for (int d = 0; d < static_cast<int>(buckets.size()); ++d) {
    for (std::size_t i = 0; i < buckets[static_cast<std::size_t>(d)].size();
         ++i) {
      const int v = buckets[static_cast<std::size_t>(d)][i];
      const std::size_t vi = static_cast<std::size_t>(v);
      if (V.dist[vi] != net::kUnreached) continue;
      V.dist[vi] = d;
      order.push_back(v);
      ws_.edge_scans += csr.degree(v);
      for (int w : csr.neighbors(v)) {
        if (in2(w) && V.dist[static_cast<std::size_t>(w)] == net::kUnreached) {
          offer(w, d + 1);
        }
      }
    }
  }

  // Adoption, replicating build_voronoi's comparison exactly. Neighbors
  // at d - 1 are final: inside ones settled earlier in `order`, outside
  // ones are cached (and verified below).
  for (int v : order) {
    const std::size_t vi = static_cast<std::size_t>(v);
    if (V.dist[vi] == 0) {
      V.site_of[vi] = site_index_of_[vi];
      V.parent[vi] = -1;
      continue;
    }
    ws_.edge_scans += csr.degree(v);
    for (int w : csr.neighbors(v)) {
      const std::size_t wi = static_cast<std::size_t>(w);
      if (V.dist[wi] != V.dist[vi] - 1) continue;
      if (V.site_of[vi] == -1 || V.site_of[wi] < V.site_of[vi] ||
          (V.site_of[wi] == V.site_of[vi] && w < V.parent[vi])) {
        V.site_of[vi] = V.site_of[wi];
        V.parent[vi] = w;
      }
    }
  }

  // Rim check: with the interior now settled, every rim node's cached
  // distance and adoption must still satisfy the Bellman fixed-point
  // equations; uniqueness then makes the combined labeling canonical.
  for (int b : rim) {
    const std::size_t bi = static_cast<std::size_t>(b);
    if (site_index_of_[bi] != -1) {
      if (V.dist[bi] != 0) return false;
      continue;
    }
    int best = net::kUnreached;
    for (int w : csr.neighbors(b)) {
      const int dw = V.dist[static_cast<std::size_t>(w)];
      if (dw == net::kUnreached) continue;
      if (best == net::kUnreached || dw + 1 < best) best = dw + 1;
    }
    if (best != V.dist[bi]) return false;
    if (V.dist[bi] == net::kUnreached) continue;
    int s = -1, p = -1;
    for (int w : csr.neighbors(b)) {
      if (V.dist[static_cast<std::size_t>(w)] != V.dist[bi] - 1) continue;
      const int sw = V.site_of[static_cast<std::size_t>(w)];
      if (s == -1 || sw < s || (sw == s && w < p)) {
        s = sw;
        p = w;
      }
    }
    if (s != V.site_of[bi] || p != V.parent[bi]) return false;
  }

  // Second records for region2 + rim (a record reads only a node's own
  // and its direct neighbors' adopted state). Verbatim build_voronoi.
  std::vector<VoronoiResult::NearbySite> others;
  for (int v : rec_nodes) {
    const std::size_t vi = static_cast<std::size_t>(v);
    V.site2_of[vi] = -1;
    V.dist2[vi] = net::kUnreached;
    V.via2[vi] = -1;
    V.is_segment[vi] = 0;
    V.is_voronoi_node[vi] = 0;
    V.nearby[vi].clear();
    if (V.site_of[vi] == -1) continue;
    others.clear();
    ws_.edge_scans += csr.degree(v);
    for (int w : csr.neighbors(v)) {
      const std::size_t wi = static_cast<std::size_t>(w);
      if (V.site_of[wi] == -1 || V.site_of[wi] == V.site_of[vi]) continue;
      const int d2 = V.dist[wi] + 1;
      if (std::abs(d2 - V.dist[vi]) > P.alpha) continue;
      VoronoiResult::NearbySite* rec = nullptr;
      for (auto& o : others) {
        if (o.site == V.site_of[wi]) {
          rec = &o;
          break;
        }
      }
      if (rec == nullptr) {
        others.push_back({V.site_of[wi], d2, w});
      } else if (d2 < rec->dist || (d2 == rec->dist && w < rec->via)) {
        *rec = {V.site_of[wi], d2, w};
      }
      const bool better =
          V.site2_of[vi] == -1 || d2 < V.dist2[vi] ||
          (d2 == V.dist2[vi] && V.site_of[wi] < V.site2_of[vi]) ||
          (d2 == V.dist2[vi] && V.site_of[wi] == V.site2_of[vi] &&
           w < V.via2[vi]);
      if (better) {
        V.site2_of[vi] = V.site_of[wi];
        V.dist2[vi] = d2;
        V.via2[vi] = w;
      }
    }
    if (V.site2_of[vi] != -1) V.is_segment[vi] = 1;
    if (others.size() >= 2) V.is_voronoi_node[vi] = 1;
    V.nearby[vi].reserve(others.size() + 1);
    V.nearby[vi].push_back({V.site_of[vi], V.dist[vi], V.parent[vi]});
    for (const auto& rec : others) V.nearby[vi].push_back(rec);
    std::sort(V.nearby[vi].begin(), V.nearby[vi].end(),
              [](const auto& a, const auto& b) { return a.site < b.site; });
  }

  V.sites = critical_;

  if (!*records_changed) {
    for (std::size_t i = 0; i < rec_nodes.size(); ++i) {
      const std::size_t vi = static_cast<std::size_t>(rec_nodes[i]);
      const SavedRec& s = saved[i];
      if (s.site_of != V.site_of[vi] || s.dist != V.dist[vi] ||
          s.parent != V.parent[vi] || s.site2_of != V.site2_of[vi] ||
          s.dist2 != V.dist2[vi] || s.via2 != V.via2[vi] ||
          s.seg != V.is_segment[vi] || s.vnode != V.is_voronoi_node[vi] ||
          s.nearby != V.nearby[vi]) {
        *records_changed = true;
        break;
      }
    }
  }
  return true;
}

RepairOutcome SkeletonMaintainer::run_repair(bool watchdog) {
  const auto t0 = std::chrono::steady_clock::now();
  obs::ScopedSpan span("skeleton_repair", "maintain");
  RepairOutcome out;
  out.events = pending_events_;
  out.dirty_seeds = static_cast<int>(pending_dirty_.size());
  const int staleness_at_entry = staleness_;

  const net::CsrGraph& csr = topo_.csr();
  RepairTier tier = (opt_.force_full || watchdog)
                        ? RepairTier::kFullRecompute
                        : RepairTier::kLocalPatch;  // provisional

  if (tier != RepairTier::kFullRecompute) {
    const bool sites_changed = patch_stage1(pending_dirty_);
    out.region_nodes = static_cast<int>(region_.size());
    int active_region = 0;
    for (int v : region_) {
      if (topo_.is_active(v)) ++active_region;
    }
    if (static_cast<double>(active_region) >
        opt_.full_rebuild_fraction *
            static_cast<double>(std::max(1, topo_.active_count()))) {
      tier = RepairTier::kFullRecompute;
      ++out.escalations;
    } else {
      bool records_changed = false;
      if (!patch_voronoi(sites_changed, &records_changed)) {
        // Distance changes escaped the region (e.g. a removed bridge);
        // the full recompute below overwrites the partially patched
        // cache, so no restore is needed.
        tier = RepairTier::kFullRecompute;
        ++out.escalations;
      } else {
        // Tier 0 applies when nothing observable moved: same critical
        // set, same Voronoi records, and no served skeleton node or
        // edge disappeared. The served stages 3+ remain valid; only
        // the (canonical) stage-1/2 views are refreshed.
        bool skeleton_touched = false;
        const int cap = served_.skeleton.capacity();
        for (const auto& [u, v] : pending_removed_edges_) {
          if (u < cap && v < cap && served_.skeleton.has_edge(u, v)) {
            skeleton_touched = true;
            break;
          }
        }
        if (!skeleton_touched) {
          for (int d : pending_departed_) {
            if (d < cap && served_.skeleton.has_node(d)) {
              skeleton_touched = true;
              break;
            }
          }
        }
        tier = (!sites_changed && !records_changed && !skeleton_touched)
                   ? RepairTier::kLocalPatch
                   : RepairTier::kRegionalReflood;
      }
    }
  }

  if (tier == RepairTier::kLocalPatch) {
    served_.set_index(index_);
    served_.critical_nodes = critical_;
    served_.set_voronoi(voronoi_);
    const InvariantReport rep =
        check_skeleton_invariants(csr, topo_.active(), served_);
    if (rep.ok()) {
      healthy_ = true;
    } else {
      tier = RepairTier::kFullRecompute;
      ++out.escalations;
    }
  } else if (tier == RepairTier::kRegionalReflood) {
    // The tail stages run as cache-keyed commands off the patched
    // stage-1/2 content: a re-flood that converged back to previously
    // seen content replays them, new content recomputes them.
    SkeletonResult cand = complete_extraction(
        topo_.graph(), csr, opt_.params, index_, critical_, voronoi_,
        opt_.cache, stage12_key(index_, critical_, voronoi_));
    const InvariantReport rep =
        check_skeleton_invariants(csr, topo_.active(), cand);
    if (rep.ok()) {
      served_ = std::move(cand);
      healthy_ = true;
    } else {
      tier = RepairTier::kFullRecompute;
      ++out.escalations;
    }
  }

  if (tier == RepairTier::kFullRecompute) {
    SkeletonResult full = canonical();
    const InvariantReport rep =
        check_skeleton_invariants(csr, topo_.active(), full);
    if (rep.ok()) {
      adopt_full(std::move(full));
      healthy_ = true;
    } else {
      // Keep serving the last good skeleton, but adopt the canonical
      // stage-1/2 state so the cache still tracks the topology.
      index_ = full.index();
      critical_ = full.critical_nodes;
      voronoi_ = full.voronoi();
      is_critical_.assign(static_cast<std::size_t>(topo_.n()), 0);
      for (int v : critical_) is_critical_[static_cast<std::size_t>(v)] = 1;
      ++stats_.invariant_failures;
      healthy_ = false;
    }
  }

  out.tier = tier;
  out.repaired = true;
  out.invariants_ok = healthy_;
  if (healthy_) staleness_ = 0;
  clear_pending();
  out.staleness = staleness_;

  switch (tier) {
    case RepairTier::kLocalPatch: ++stats_.repairs_local; break;
    case RepairTier::kRegionalReflood: ++stats_.repairs_regional; break;
    case RepairTier::kFullRecompute: ++stats_.repairs_full; break;
    case RepairTier::kNone: break;
  }
  stats_.escalations += out.escalations;
  stats_.region_nodes_total += out.region_nodes;
  out.millis = millis_since(t0);
  stats_.repair_millis_total += out.millis;

  // Deterministic facts only in the registry (see obs/metrics.h);
  // wall time stays in the outcome / trace spans.
  auto& reg = obs::Registry::global();
  static const obs::Counter c_local = reg.counter("maintain_repairs_local");
  static const obs::Counter c_regional =
      reg.counter("maintain_repairs_regional");
  static const obs::Counter c_full = reg.counter("maintain_repairs_full");
  static const obs::Counter c_esc = reg.counter("maintain_escalations");
  static const obs::Counter c_events = reg.counter("maintain_events_repaired");
  static const obs::Counter c_watchdog =
      reg.counter("maintain_watchdog_forced");
  static const obs::Counter c_fail =
      reg.counter("maintain_invariant_failures");
  static const obs::Histogram h_region = reg.histogram(
      "maintain_region_nodes", {8, 16, 32, 64, 128, 256, 512, 1024});
  static const obs::Histogram h_stale =
      reg.histogram("maintain_repair_staleness", {1, 2, 4, 8, 16, 32});
  switch (tier) {
    case RepairTier::kLocalPatch: c_local.inc(); break;
    case RepairTier::kRegionalReflood: c_regional.inc(); break;
    case RepairTier::kFullRecompute: c_full.inc(); break;
    case RepairTier::kNone: break;
  }
  c_esc.inc(out.escalations);
  c_events.inc(out.events);
  if (watchdog) c_watchdog.inc();
  if (!healthy_) c_fail.inc();
  h_region.observe(static_cast<double>(out.region_nodes));
  h_stale.observe(static_cast<double>(staleness_at_entry));
  span.arg("tier", static_cast<std::int64_t>(tier));
  span.arg("events", out.events);
  span.arg("region_nodes", out.region_nodes);
  span.arg("escalations", out.escalations);

  return out;
}

}  // namespace skelex::core
