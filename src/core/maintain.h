// skelex/core/maintain.h
//
// Self-healing skeletons: incremental repair of a SkeletonResult while
// the network churns (sim/dynamics.h), instead of a full re-extraction
// per topology change.
//
// Repair is organized as a three-tier escalation policy:
//
//   tier 0, LOCAL PATCH — stage-1 state (k-hop sizes, centralities,
//     critical flags) is recomputed exactly inside the dirty region and
//     the Voronoi labeling re-flooded regionally; when nothing observable
//     changed (critical set, Voronoi records, no served skeleton node or
//     edge lost), the served skeleton is kept as is.
//   tier 1, REGIONAL RE-FLOOD — same regional stage-1/2 patch, then
//     stages 3+ (coarse/cleanup/prune/by-products) rerun from the
//     patched state. Because the patch is exact (see the locality
//     argument in maintain.cpp), a tier-1 result is bit-identical to a
//     from-scratch extraction on the current topology.
//   tier 2, FULL RECOMPUTE — the canonical extraction in the stable id
//     space. Reached when the dirty region grows past
//     full_rebuild_fraction of the active nodes, when the regional
//     re-flood's rim check detects that distance changes escaped the
//     region (e.g. a removed bridge), when the invariant checker rejects
//     a lower-tier result, or when the staleness watchdog fires.
//
// Every repair ends with check_skeleton_invariants on the candidate
// result; a failing candidate escalates, and if even the full recompute
// fails the check the maintainer keeps serving the last good skeleton
// and reports itself unhealthy — a corrupt skeleton is never served.
//
// Staleness: the number of consecutive advance() rounds whose topology
// changes the served skeleton does not yet reflect. repair_interval > 1
// batches dirt (lazy repair); the staleness bound is enforced by a
// watchdog that forces a full recompute when reached.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/config.h"
#include "core/pipeline.h"
#include "net/csr.h"
#include "sim/dynamics.h"

namespace skelex::core {

struct MaintainOptions {
  Params params;
  // Repair cadence: dirt is batched and repaired once it is
  // `repair_interval` rounds old (1 = repair the round it appears).
  int repair_interval = 1;
  // Watchdog bound: when the served skeleton lags the topology by this
  // many rounds, a full recompute is forced immediately.
  int staleness_bound = 8;
  // Escalate straight to the full-recompute tier when the dirty region
  // exceeds this fraction of the active nodes.
  double full_rebuild_fraction = 0.30;
  // Dirty-region radius in hops around each change; 0 selects the exact
  // locality bound k + l + effective_local_max_radius() (the farthest a
  // single topology change can move any stage-1 quantity).
  int dirty_radius = 0;
  // Run every repair at the full-recompute tier (the bench baseline).
  bool force_full = false;
  // Optional stage memo cache shared with the batch extraction path.
  // When set, tier-1/2 repairs drive the tail of the stage-command DAG
  // (assess/coarse/cleanup/prune/byproducts) through this cache, keyed
  // by the stage-1/2 CONTENT fingerprint: repairs that leave the
  // index/critical/voronoi state untouched replay the whole tail from
  // cache, while a regional re-flood changes the fingerprint and
  // recomputes exactly the downstream stages. Not owned; must outlive
  // the maintainer.
  memo::StageCache* cache = nullptr;
};

enum class RepairTier {
  kNone = 0,           // nothing to repair
  kLocalPatch = 1,     // tier 0
  kRegionalReflood = 2,  // tier 1
  kFullRecompute = 3,  // tier 2
};
const char* repair_tier_name(RepairTier t);

// Result of check_skeleton_invariants: structural health of a served
// skeleton against the CURRENT topology.
struct InvariantReport {
  int inactive_skeleton_nodes = 0;   // skeleton nodes that left the network
  int phantom_skeleton_edges = 0;    // skeleton edges that are no longer links
  int uncovered_components = 0;      // active components with no skeleton node
  int inactive_sites = 0;            // Voronoi sites that are inactive nodes
  int unassigned_active_nodes = 0;   // active nodes in no Voronoi cell
  bool empty_skeleton = false;       // active nodes exist but skeleton is empty
  std::vector<std::string> violations;

  bool ok() const { return violations.empty(); }
};

// Checks `r` against the topology described by (csr, active): every
// skeleton node active, every skeleton edge a live link, every active
// component covered by at least one skeleton node, every Voronoi site
// active, every active node assigned to a cell. O(V + E).
InvariantReport check_skeleton_invariants(const net::CsrGraph& csr,
                                          std::span<const char> active,
                                          const SkeletonResult& r);

// Order-independent FNV-1a content hash of a skeleton graph (sorted
// nodes + sorted edge list) — the identity used by the bench/CI
// determinism gates and the bitwise-identity acceptance check.
std::uint64_t skeleton_fingerprint(const SkeletonGraph& s);

struct RepairOutcome {
  RepairTier tier = RepairTier::kNone;
  bool repaired = false;       // a repair ran this call
  bool deferred = false;       // dirt pending but not yet due
  bool invariants_ok = true;   // the served skeleton passes the checker
  int events = 0;              // churn events covered by this repair
  int dirty_seeds = 0;
  int region_nodes = 0;        // dirty-region size (0 for tier 2)
  int escalations = 0;         // tier promotions while repairing
  int staleness = 0;           // served-skeleton lag after this call
  double millis = 0.0;         // wall time of the repair (0 when none ran)
};

struct MaintainStats {
  long long rounds = 0;
  long long events = 0;
  long long repairs_local = 0;
  long long repairs_regional = 0;
  long long repairs_full = 0;
  long long escalations = 0;
  long long watchdog_forced = 0;
  // Post-repair checker failures at the full tier (the maintainer kept
  // the previous skeleton and went unhealthy). Zero in a correct build.
  long long invariant_failures = 0;
  int max_staleness = 0;
  long long region_nodes_total = 0;
  double repair_millis_total = 0.0;

  long long repairs_total() const {
    return repairs_local + repairs_regional + repairs_full;
  }
};

// Keeps a SkeletonResult continuously valid over a DynamicTopology.
// Typical driver loop:
//
//   sim::DynamicTopology topo(scenario.graph);
//   core::SkeletonMaintainer maint(topo, options);
//   maint.initialize();
//   for (int round = 0; round < script.horizon(); ++round) {
//     auto outcome = maint.advance(script, round);  // apply + repair
//     use(maint.served());
//   }
//
// The maintainer also caches the exact stage-1/2 state (index, critical
// set, Voronoi) for the current topology in the stable id space; that
// cache is what makes the next repair regional instead of global.
class SkeletonMaintainer {
 public:
  explicit SkeletonMaintainer(sim::DynamicTopology& topo,
                              MaintainOptions opt = {});

  // Full extraction of the current topology; serves it.
  void initialize();

  // Applies `script`'s events for `round` to the topology, then repairs
  // (or defers, per repair_interval / staleness_bound).
  RepairOutcome advance(const sim::ChurnScript& script, int round);

  // For drivers that mutate the DynamicTopology themselves: account the
  // given changes as pending dirt (does not repair).
  void note_changes(const sim::DynamicTopology::RoundChanges& changes);

  // Flushes pending dirt immediately, regardless of cadence.
  RepairOutcome repair_now();

  const SkeletonResult& served() const { return served_; }
  int staleness() const { return staleness_; }
  // False only after a full-tier repair failed the invariant checker
  // (the served skeleton is the last good one).
  bool healthy() const { return healthy_; }
  bool initialized() const { return initialized_; }
  const MaintainStats& stats() const { return stats_; }
  int effective_dirty_radius() const;

  // Checks the currently served skeleton against the current topology.
  InvariantReport check() const;
  std::uint64_t served_fingerprint() const;

  // The canonical from-scratch extraction of the current topology in
  // the stable id space (exactly what the full-recompute tier runs):
  // global stage 1 with inactive nodes excluded from the critical set,
  // global Voronoi, full completion. Exposed so tests and benches can
  // cross-check incremental repairs against ground truth.
  SkeletonResult canonical() const;

 private:
  RepairOutcome run_repair(bool watchdog);
  // Exact regional stage-1 patch; returns true when the critical set
  // changed. Fills region_ with the dirty ball (depths included).
  bool patch_stage1(std::span<const int> seeds);
  // Regional Voronoi re-flood over region2_; returns false when the rim
  // check detects escaped changes (caller escalates to full recompute).
  // Sets *records_changed when any node's Voronoi record differs.
  bool patch_voronoi(bool sites_changed, bool* records_changed);
  void adopt_full(SkeletonResult r);
  void clear_pending();
  // Content key for the memoized tail stages (0 when no cache is
  // configured — the plain completion path ignores it).
  std::uint64_t stage12_key(const IndexData& idx,
                            const std::vector<int>& critical,
                            const VoronoiResult& vor) const;

  // Multi-source depth-bounded BFS from `seeds`; appends (node, depth)
  // to region_/region_depth_ and marks membership in mark_ at epoch_.
  void grow_region(std::span<const int> seeds, int radius);
  bool in_region(int v) const {
    return mark_[static_cast<std::size_t>(v)] == mark_epoch_;
  }

  sim::DynamicTopology& topo_;
  MaintainOptions opt_;

  // Authoritative stage-1/2 cache for the CURRENT topology (stable ids).
  IndexData index_;
  std::vector<char> is_critical_;
  std::vector<int> critical_;
  VoronoiResult voronoi_;

  SkeletonResult served_;
  bool initialized_ = false;
  bool healthy_ = true;
  int staleness_ = 0;

  // Pending dirt, batched between repairs.
  std::vector<int> pending_dirty_;
  std::vector<std::pair<int, int>> pending_removed_edges_;
  std::vector<int> pending_departed_;
  int pending_events_ = 0;

  MaintainStats stats_;

  // Scratch (reused across repairs; mutable for the const cross-check
  // entry points).
  mutable net::Workspace ws_;
  std::vector<std::uint32_t> mark_;
  std::uint32_t mark_epoch_ = 0;
  std::vector<int> region_;
  std::vector<int> region_depth_;
  std::vector<std::uint32_t> mark2_;  // region-2 membership for the re-flood
  std::uint32_t mark2_epoch_ = 0;
  std::vector<int> region2_;
  std::vector<int> site_index_of_;  // node -> index into critical_, else -1
};

}  // namespace skelex::core
