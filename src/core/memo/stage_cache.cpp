#include "core/memo/stage_cache.h"

#include "obs/metrics.h"
#include "obs/request_trace.h"
#include "obs/trace.h"

namespace skelex::core::memo {

namespace {

// Inside a served request, record a cache operation as a child span of
// the request's tree ("memo.hit:index", "memo.miss:scenario",
// "memo.insert:voronoi"). Outside a request this is a no-op.
void request_span(obs::RequestContext* ctx, const char* what,
                  const char* stage, double start_us) {
  if (ctx == nullptr || !ctx->recording()) return;
  std::string name = "memo.";
  name += what;
  name += ':';
  name += stage;
  ctx->add_complete_span(name, "memo", start_us, obs::Tracer::now_us());
}

}  // namespace

StageCache::StageCache() : StageCache(Options{}) {}

StageCache::StageCache(Options opt) : opt_(opt) {
  if (opt_.max_entries == 0) opt_.max_entries = 1;
}

std::shared_ptr<const void> StageCache::find_erased(std::uint64_t key,
                                                    const char* stage,
                                                    TraceFacts* facts) {
  obs::RequestContext* ctx = obs::RequestContext::current();
  const double t0 = ctx != nullptr ? obs::Tracer::now_us() : 0.0;
  std::shared_ptr<const void> value;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(key);
    if (it == index_.end()) {
      ++stats_.misses;
    } else {
      lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
      value = it->second->value;
      if (facts != nullptr) *facts = it->second->facts;
      ++stats_.hits;
    }
  }
  count(stage, value ? "memo_hits" : "memo_misses");
  if (ctx != nullptr) {
    // Finds (hits AND misses) feed the request's cache-tier accounting
    // that labels the per-request latency histograms; inserts do not.
    ctx->note_cache(stage, value != nullptr);
    request_span(ctx, value ? "hit" : "miss", stage, t0);
  }
  return value;
}

std::shared_ptr<const void> StageCache::insert_erased(
    std::uint64_t key, const char* stage, std::shared_ptr<const void> value,
    std::size_t bytes, TraceFacts facts) {
  if (value == nullptr) return value;
  obs::RequestContext* ctx = obs::RequestContext::current();
  const double t0 = ctx != nullptr ? obs::Tracer::now_us() : 0.0;
  bool inserted = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(key);
    if (it != index_.end()) {
      // First writer wins: hand back the established shared copy so a
      // concurrent duplicate computation converges on one allocation.
      lru_.splice(lru_.begin(), lru_, it->second);
      value = it->second->value;
    } else if (bytes <= opt_.max_bytes) {
      lru_.push_front(Entry{key, value, bytes, facts});
      index_.emplace(key, lru_.begin());
      bytes_ += bytes;
      ++stats_.insertions;
      inserted = true;
      evict_to_budget_locked();
      record_watermarks_locked();
    }
    stats_.bytes = bytes_;
    stats_.entries = lru_.size();
  }
  if (inserted) count(stage, "memo_insertions");
  request_span(ctx, "insert", stage, t0);
  return value;
}

void StageCache::evict_to_budget_locked() {
  while (!lru_.empty() &&
         (bytes_ > opt_.max_bytes || lru_.size() > opt_.max_entries)) {
    const Entry& victim = lru_.back();
    bytes_ -= victim.bytes;
    index_.erase(victim.key);
    lru_.pop_back();
    ++stats_.evictions;
    obs::Registry::global().counter("memo_evictions").inc();
  }
}

void StageCache::count(const char* stage, const char* what) {
  auto& reg = obs::Registry::global();
  reg.counter(what, {{"stage", stage}}).inc();
}

void StageCache::record_watermarks_locked() {
  auto& reg = obs::Registry::global();
  static const obs::Gauge bytes = reg.gauge("memo_bytes_watermark");
  static const obs::Gauge entries = reg.gauge("memo_entries_watermark");
  bytes.set(static_cast<double>(bytes_));
  entries.set(static_cast<double>(lru_.size()));
}

CacheStats StageCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  CacheStats s = stats_;
  s.bytes = bytes_;
  s.entries = lru_.size();
  return s;
}

void StageCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
  bytes_ = 0;
  stats_.bytes = 0;
  stats_.entries = 0;
}

}  // namespace skelex::core::memo
