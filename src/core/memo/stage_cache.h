// skelex/core/memo/stage_cache.h
//
// Bounded, thread-safe memo cache for pipeline stage outputs.
//
// Keys are 64-bit content hashes produced by the stage commands
// (core/stage_cmd.h): FNV-1a chains over (stage tag, graph fingerprint,
// the stage's parameter slice, upstream stage keys). Because every
// stage is a deterministic function of those inputs, a key equality IS
// a value equality — the cache never has to compare payloads, and a
// warm request's output is bit-identical to a cold one's.
//
// Values are type-erased shared_ptr<const void>: a hit hands out the
// SAME shared value the producing request inserted (and possibly other
// in-flight requests are reading) — stage outputs are immutable by
// construction, so sharing needs no further synchronization. Each entry
// also carries the producing run's StageTrace facts (nodes, messages),
// so a warm request replays the exact trace numbers of the cold one.
//
// Eviction: least-recently-used, driven by BOTH a byte budget (entries
// report their approximate payload size on insert) and an entry-count
// cap. Hits refresh recency; inserts evict from the cold end until both
// budgets hold. An oversized single value (> max_bytes) is returned to
// the caller but not retained.
//
// Observability: hits / misses / insertions / evictions are mirrored
// into the global obs metrics registry as counters labelled by stage
// ("memo_hits{stage=index}", ...), plus high-watermark gauges for bytes
// and entries. Local stats() reads the same numbers without the
// registry (per-cache, not process-global).
//
// Concurrency: one mutex around the map + LRU list. Stage payload
// computation happens OUTSIDE the lock (the cache only sees finished
// values), so the critical sections are hash-map operations only. Two
// concurrent requests that miss the same key both compute; the second
// insert is dropped in favor of the first (values are equal by
// determinism), so sharing still converges to one copy.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

namespace skelex::core::memo {

struct CacheStats {
  std::int64_t hits = 0;
  std::int64_t misses = 0;
  std::int64_t insertions = 0;
  std::int64_t evictions = 0;
  std::size_t bytes = 0;    // current payload bytes
  std::size_t entries = 0;  // current entry count
};

class StageCache {
 public:
  struct Options {
    std::size_t max_bytes = std::size_t{256} << 20;  // 256 MiB
    std::size_t max_entries = 4096;
  };

  // Trace facts replayed on a hit (what the producing run recorded).
  struct TraceFacts {
    int nodes = 0;
    long long messages = 0;
    long long bytes = 0;  // kernel bytes-moved model (see Workspace)
  };

  StageCache();
  explicit StageCache(Options opt);

  StageCache(const StageCache&) = delete;
  StageCache& operator=(const StageCache&) = delete;

  // Typed find: returns the shared value for `key`, or null on miss.
  // `stage` labels the hit/miss counters; `facts` (optional) receives
  // the producing run's trace numbers.
  template <typename T>
  std::shared_ptr<const T> find(std::uint64_t key, const char* stage,
                                TraceFacts* facts = nullptr) {
    return std::static_pointer_cast<const T>(find_erased(key, stage, facts));
  }

  // Inserts `value` (approximate payload size `bytes`) under `key`,
  // evicting LRU entries as needed. If the key is already present the
  // existing value WINS (first writer) and is returned, so concurrent
  // duplicate computations converge on one shared copy.
  template <typename T>
  std::shared_ptr<const T> insert(std::uint64_t key, const char* stage,
                                  std::shared_ptr<const T> value,
                                  std::size_t bytes, TraceFacts facts = {}) {
    return std::static_pointer_cast<const T>(
        insert_erased(key, stage, std::move(value), bytes, facts));
  }

  CacheStats stats() const;
  void clear();

  std::size_t max_bytes() const { return opt_.max_bytes; }
  std::size_t max_entries() const { return opt_.max_entries; }

 private:
  struct Entry {
    std::uint64_t key = 0;
    std::shared_ptr<const void> value;
    std::size_t bytes = 0;
    TraceFacts facts;
  };
  using Lru = std::list<Entry>;  // front = most recent

  std::shared_ptr<const void> find_erased(std::uint64_t key, const char* stage,
                                          TraceFacts* facts);
  std::shared_ptr<const void> insert_erased(std::uint64_t key,
                                            const char* stage,
                                            std::shared_ptr<const void> value,
                                            std::size_t bytes,
                                            TraceFacts facts);
  void evict_to_budget_locked();
  void count(const char* stage, const char* what);
  void record_watermarks_locked();

  Options opt_;
  mutable std::mutex mu_;
  Lru lru_;
  std::unordered_map<std::uint64_t, Lru::iterator> index_;
  std::size_t bytes_ = 0;
  CacheStats stats_;
};

}  // namespace skelex::core::memo
