#include "core/naming.h"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace skelex::core {

SkeletonNaming::SkeletonNaming(const net::Graph& g, const SkeletonResult& r)
    : g_(g) {
  const std::size_t n = static_cast<std::size_t>(g.n());
  if (r.boundary.dist_to_skeleton.size() != n) {
    throw std::invalid_argument("SkeletonResult does not match graph");
  }
  names_.assign(n, {});
  to_skeleton_.assign(n, -1);
  on_skeleton_.assign(n, 0);
  for (int v : r.skeleton.nodes()) {
    on_skeleton_[static_cast<std::size_t>(v)] = 1;
  }
  anchor_count_ = r.skeleton.node_count();

  // Multi-source BFS from the skeleton assigns each node its anchor and
  // its downhill next hop in one sweep (the recorded parent).
  std::queue<int> q;
  for (int v = 0; v < g.n(); ++v) {
    if (on_skeleton_[static_cast<std::size_t>(v)]) {
      names_[static_cast<std::size_t>(v)] = {v, 0};
      q.push(v);
    } else {
      names_[static_cast<std::size_t>(v)] = {-1, 0};
    }
  }
  while (!q.empty()) {
    const int v = q.front();
    q.pop();
    for (int w : g.neighbors(v)) {
      const std::size_t wi = static_cast<std::size_t>(w);
      if (names_[wi].anchor == -1 && !on_skeleton_[wi]) {
        names_[wi] = {names_[static_cast<std::size_t>(v)].anchor,
                      names_[static_cast<std::size_t>(v)].dist + 1};
        to_skeleton_[wi] = v;
        q.push(w);
      }
    }
  }
}

std::vector<int> SkeletonNaming::route(int s, int t) const {
  if (s < 0 || s >= g_.n() || t < 0 || t >= g_.n()) {
    throw std::out_of_range("route endpoint");
  }
  if (names_[static_cast<std::size_t>(s)].anchor == -1 ||
      names_[static_cast<std::size_t>(t)].anchor == -1) {
    return {};
  }
  // Climb from s to its anchor.
  std::vector<int> route{s};
  int v = s;
  while (!on_skeleton_[static_cast<std::size_t>(v)]) {
    v = to_skeleton_[static_cast<std::size_t>(v)];
    route.push_back(v);
  }
  // Descent chain for t (collected uphill, then reversed onto the route).
  std::vector<int> down{t};
  int u = t;
  while (!on_skeleton_[static_cast<std::size_t>(u)]) {
    u = to_skeleton_[static_cast<std::size_t>(u)];
    down.push_back(u);
  }
  // Skeleton leg: BFS restricted to skeleton nodes.
  if (u != v) {
    std::vector<int> parent(static_cast<std::size_t>(g_.n()), -1);
    std::vector<char> seen(static_cast<std::size_t>(g_.n()), 0);
    std::queue<int> q;
    seen[static_cast<std::size_t>(v)] = 1;
    q.push(v);
    while (!q.empty() && !seen[static_cast<std::size_t>(u)]) {
      const int x = q.front();
      q.pop();
      for (int w : g_.neighbors(x)) {
        if (on_skeleton_[static_cast<std::size_t>(w)] &&
            !seen[static_cast<std::size_t>(w)]) {
          seen[static_cast<std::size_t>(w)] = 1;
          parent[static_cast<std::size_t>(w)] = x;
          q.push(w);
        }
      }
    }
    if (!seen[static_cast<std::size_t>(u)]) return {};  // split skeleton
    std::vector<int> leg;
    for (int x = u; x != v; x = parent[static_cast<std::size_t>(x)]) {
      leg.push_back(x);
    }
    std::reverse(leg.begin(), leg.end());
    route.insert(route.end(), leg.begin(), leg.end());
  }
  route.insert(route.end(), down.rbegin() + 1, down.rend());
  return route;
}

RouteLoad route_load(const SkeletonNaming& naming,
                     const std::vector<std::pair<int, int>>& pairs) {
  RouteLoad out;
  for (const auto& [s, t] : pairs) {
    const std::vector<int> route = naming.route(s, t);
    if (route.empty()) continue;
    ++out.routed_pairs;
    out.total_hops += static_cast<long long>(route.size()) - 1;
    for (int v : route) {
      if (out.load.size() <= static_cast<std::size_t>(v)) {
        out.load.resize(static_cast<std::size_t>(v) + 1, 0);
      }
      ++out.load[static_cast<std::size_t>(v)];
    }
  }
  return out;
}

}  // namespace skelex::core
