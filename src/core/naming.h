// skelex/core/naming.h
//
// Skeleton-aided naming and routing (§I): "for naming scheme, we name
// each sensor node based on its relative position to the skeleton ...
// For routing scheme, the routing message is forced to follow a
// direction almost parallel to the skeleton while maintaining an
// approximately shortest path".
//
// Names are virtual coordinates (anchor = nearest skeleton node, plus
// the hop distance to it). A route climbs the distance gradient from the
// source to its anchor, walks the skeleton between the anchors, and
// descends to the destination — all derivable from the pipeline's
// outputs with no extra flooding: the distance transform away from the
// skeleton doubles as the descent gradient.
#pragma once

#include <vector>

#include "core/pipeline.h"
#include "net/graph.h"

namespace skelex::core {

struct NodeName {
  int anchor = -1;  // nearest skeleton node
  int dist = 0;     // hop distance to it
};

class SkeletonNaming {
 public:
  // Builds names from an extraction result (uses result.skeleton and
  // result.boundary.dist_to_skeleton).
  SkeletonNaming(const net::Graph& g, const SkeletonResult& result);

  const NodeName& name_of(int v) const {
    return names_[static_cast<std::size_t>(v)];
  }

  // Full route from s to t: s .. anchor(s) .. (skeleton walk) ..
  // anchor(t) .. t. Empty when s and t are in different components.
  std::vector<int> route(int s, int t) const;

  // Total skeleton nodes reachable as anchors.
  int anchor_count() const { return anchor_count_; }

 private:
  const net::Graph& g_;
  std::vector<NodeName> names_;
  std::vector<int> to_skeleton_;  // next hop descending the distance field
  std::vector<char> on_skeleton_;
  int anchor_count_ = 0;
};

// Load statistics over a batch of routes: per-node message counts.
struct RouteLoad {
  std::vector<long long> load;
  long long total_hops = 0;
  int routed_pairs = 0;
};

// Routes `pairs` (s, t) node pairs and accumulates per-node load.
RouteLoad route_load(const SkeletonNaming& naming,
                     const std::vector<std::pair<int, int>>& pairs);

}  // namespace skelex::core
