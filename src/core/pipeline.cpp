#include "core/pipeline.h"

#include <utility>

namespace skelex::core {

SkeletonResult complete_extraction(const net::Graph& g, const Params& params,
                                   IndexData index,
                                   std::vector<int> critical_nodes,
                                   VoronoiResult voronoi) {
  params.validate();
  SkeletonResult r;
  r.params = params;
  r.index = std::move(index);
  r.critical_nodes = std::move(critical_nodes);
  r.voronoi = std::move(voronoi);

  // Stage 3: coarse skeleton (§III-C).
  CoarseSkeleton coarse = build_coarse_skeleton(g, r.index, r.voronoi, params);
  r.coarse = coarse.graph;

  // Stage 4: loop clean-up + pruning (§III-D).
  CleanupResult cleaned =
      cleanup_loops(g, r.index, std::move(coarse.graph), params, &r.voronoi);
  r.fake_loops_removed = cleaned.fake_loops_removed;
  r.merge_rounds = cleaned.merge_rounds;
  r.thin_loops_collapsed = cleaned.thin_loops_collapsed;
  r.pockets = std::move(cleaned.pockets);
  r.skeleton = std::move(cleaned.graph);
  r.pruned_nodes = prune_short_branches(r.skeleton, params.prune_len);

  // Post-prune tidy-up with knowledge of the network: drop isolated
  // skeleton nodes whose network component already has skeleton
  // structure, but keep a lone site that is its component's only
  // skeleton (the skeleton of a small blob IS a single node).
  {
    const net::Components comps = net::connected_components(g);
    std::vector<int> skeleton_per_comp(static_cast<std::size_t>(comps.count), 0);
    for (int v : r.skeleton.nodes()) {
      ++skeleton_per_comp[static_cast<std::size_t>(
          comps.label[static_cast<std::size_t>(v)])];
    }
    for (int v : r.skeleton.nodes()) {
      const int c = comps.label[static_cast<std::size_t>(v)];
      if (r.skeleton.degree(v) == 0 &&
          skeleton_per_comp[static_cast<std::size_t>(c)] > 1) {
        r.skeleton.remove_node(v);
        --skeleton_per_comp[static_cast<std::size_t>(c)];
        ++r.pruned_nodes;
      }
    }
  }

  // By-products (§III-E).
  r.segmentation = segmentation_from_voronoi(r.voronoi);
  r.boundary = extract_boundaries(g, r.skeleton, 1, &r.index.khop_size);
  return r;
}

SkeletonResult extract_skeleton(const net::Graph& g, const Params& params) {
  params.validate();

  // Stage 1: index + critical skeleton nodes (§III-A).
  IndexData index = compute_index(g, params);
  std::vector<int> critical = identify_critical_nodes(g, index, params);

  // Stage 2: Voronoi cells + segment nodes (§III-B).
  VoronoiResult voronoi = build_voronoi(g, critical, params);

  return complete_extraction(g, params, std::move(index), std::move(critical),
                             std::move(voronoi));
}

}  // namespace skelex::core
