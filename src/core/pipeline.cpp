#include "core/pipeline.h"

#include <memory>
#include <string>
#include <utility>

#include "core/fingerprint.h"
#include "core/memo/stage_cache.h"
#include "core/stage_cmd.h"
#include "obs/metrics.h"

namespace skelex::core {

namespace {

// Centralized-stage span: a core::ScopedStage (one measurement feeding
// the trace sink, the metrics registry, and the StageTrace) whose
// message count is the workspace's edge-scan delta — the message proxy
// for centralized stages (one scanned adjacency entry == one reception
// of the corresponding flood); stages that traverse nothing through the
// shared workspace report 0.
class PipelineStage {
 public:
  PipelineStage(PipelineContext& ctx, std::string name, int nodes)
      : ctx_(ctx),
        scans0_(ctx.ws.edge_scans),
        bytes0_(ctx.ws.bytes_touched),
        stage_(ctx.trace, std::move(name), "pipeline") {
    stage_.set_nodes(nodes);
  }

  PipelineStage(const PipelineStage&) = delete;
  PipelineStage& operator=(const PipelineStage&) = delete;

  // Body runs before member destructors, so the edge-scan delta is in
  // place when stage_ records.
  ~PipelineStage() {
    stage_.set_messages(ctx_.ws.edge_scans - scans0_);
    stage_.set_bytes(ctx_.ws.bytes_touched - bytes0_);
  }

 private:
  PipelineContext& ctx_;
  long long scans0_;
  long long bytes0_;
  ScopedStage stage_;
};

// Runs one memoizable stage command: consult the cache (when given),
// else compute under a PipelineStage span and publish. A hit replays the
// producing run's trace facts (nodes, messages) through the same
// ScopedStage path, so a warm run's StageTrace — and the stage_* metric
// counters — are byte-identical to the cold run's, modulo wall time.
template <typename T, typename Compute>
std::shared_ptr<const T> run_stage(PipelineContext& ctx,
                                   memo::StageCache* cache, const char* name,
                                   int nodes, std::uint64_t key,
                                   std::size_t (*approx_bytes)(const T&),
                                   Compute compute) {
  if (cache != nullptr) {
    memo::StageCache::TraceFacts facts;
    if (auto hit = cache->find<T>(key, name, &facts)) {
      ScopedStage stage(ctx.trace, name, "pipeline");
      stage.set_nodes(facts.nodes);
      stage.set_messages(facts.messages);
      stage.set_bytes(facts.bytes);
      return hit;
    }
  }
  const long long scans0 = ctx.ws.edge_scans;
  const long long bytes0 = ctx.ws.bytes_touched;
  std::shared_ptr<const T> value;
  {
    PipelineStage t(ctx, name, nodes);
    value = std::make_shared<const T>(compute());
  }
  if (cache != nullptr) {
    const memo::StageCache::TraceFacts facts{nodes,
                                             ctx.ws.edge_scans - scans0,
                                             ctx.ws.bytes_touched - bytes0};
    const std::size_t bytes = approx_bytes(*value);
    value = cache->insert<T>(key, name, std::move(value), bytes, facts);
  }
  return value;
}

// Tail of the stage-command DAG (assess onward), shared by the
// centralized front (extract_skeleton) and the external-stage-1/2 front
// (complete_extraction): the context's trace keeps accumulating, so the
// full run reads as one ordered stage list. Every tail stage is a keyed
// command dispatched through run_stage — assess chains the upstream
// voronoi key (and returns the EFFECTIVE key when its fallback patch
// replaced the stage-1/2 content), coarse/cleanup/prune/byproducts chain
// off each other — so with a cache, two requests differing only in
// prune_len replay everything through cleanup and recompute exactly
// prune + byproducts. The shared cache entries are standalone values;
// the driver copies what the SkeletonResult owns out of them.
void complete_with_context(PipelineContext& ctx, SkeletonResult& r,
                           memo::StageCache* cache,
                           std::uint64_t voronoi_key) {
  // Assessment + graceful degradation: inspects what stages 1-2
  // delivered (they may have run on fault-depleted data), patches a
  // missing stage-1 result, and records diagnostics. A patch REPLACES
  // the result's shared Voronoi output (never mutates it — the original
  // may be a cache entry other requests are reading).
  AssessCmd assess_cmd;
  assess_cmd.voronoi_key = voronoi_key;
  assess_cmd.params = ctx.params.voronoi_params();
  assess_cmd.index = &r.index();
  assess_cmd.critical = &r.critical_nodes;
  assess_cmd.voronoi = &r.voronoi();
  const std::shared_ptr<const AssessOutput> assess = run_stage<AssessOutput>(
      ctx, cache, AssessCmd::kName, ctx.g.n(), assess_cmd.key(),
      &AssessCmd::approx_bytes, [&] { return assess_cmd.run(ctx.csr, ctx.ws); });
  r.diagnostics.input_components = assess->input_components;
  r.diagnostics.disconnected_input = assess->disconnected_input;
  r.diagnostics.empty_critical_fallback = assess->empty_critical_fallback;
  r.diagnostics.voronoi_unassigned = assess->voronoi_unassigned;
  r.diagnostics.degenerate_cells = assess->degenerate_cells;
  for (const std::string& w : assess->warnings) r.diagnostics.warn(w);
  if (assess->patched) {
    r.critical_nodes = assess->critical;
    r.voronoi_out = assess->voronoi;
  }
  voronoi_key = assess->voronoi_key;  // effective (post-patch) key

  // Stage 3 (§III-C): coarse skeleton.
  CoarseCmd coarse_cmd;
  coarse_cmd.voronoi_key = voronoi_key;
  coarse_cmd.params = ctx.params.coarse_params();
  coarse_cmd.g = &ctx.g;
  coarse_cmd.index = &r.index();
  coarse_cmd.voronoi = &r.voronoi();
  r.coarse_out = run_stage<SkeletonGraph>(
      ctx, cache, CoarseCmd::kName, r.voronoi().cell_count(), coarse_cmd.key(),
      &CoarseCmd::approx_bytes, [&] { return coarse_cmd.run(); });

  // Stage 4a (§III-D): loop clean-up.
  CleanupCmd cleanup_cmd;
  cleanup_cmd.coarse_key = coarse_cmd.key();
  cleanup_cmd.params = ctx.params.cleanup_params();
  cleanup_cmd.g = &ctx.g;
  cleanup_cmd.index = &r.index();
  cleanup_cmd.voronoi = &r.voronoi();
  cleanup_cmd.coarse = &r.coarse();
  const std::shared_ptr<const CleanupResult> cleaned = run_stage<CleanupResult>(
      ctx, cache, CleanupCmd::kName, r.coarse().node_count(),
      cleanup_cmd.key(), &CleanupCmd::approx_bytes,
      [&] { return cleanup_cmd.run(); });
  r.fake_loops_removed = cleaned->fake_loops_removed;
  r.merge_rounds = cleaned->merge_rounds;
  r.thin_loops_collapsed = cleaned->thin_loops_collapsed;
  r.pockets = cleaned->pockets;

  // Stage 4b (§III-D): pruning + component tidy-up.
  PruneCmd prune_cmd;
  prune_cmd.cleanup_key = cleanup_cmd.key();
  prune_cmd.params = ctx.params.prune_params();
  prune_cmd.skeleton = &cleaned->graph;
  prune_cmd.comps = &assess->comps;
  const std::shared_ptr<const PruneOutput> pruned = run_stage<PruneOutput>(
      ctx, cache, PruneCmd::kName, cleaned->graph.node_count(),
      prune_cmd.key(), &PruneCmd::approx_bytes, [&] { return prune_cmd.run(); });
  r.skeleton = pruned->skeleton;
  r.pruned_nodes = pruned->pruned_nodes;

  // By-products (§III-E).
  ByproductsCmd byp_cmd;
  byp_cmd.prune_key = prune_cmd.key();
  byp_cmd.g = &ctx.g;
  byp_cmd.index = &r.index();
  byp_cmd.voronoi = &r.voronoi();
  byp_cmd.skeleton = &pruned->skeleton;
  const std::shared_ptr<const ByproductsOutput> byp =
      run_stage<ByproductsOutput>(ctx, cache, ByproductsCmd::kName, ctx.g.n(),
                                  byp_cmd.key(), &ByproductsCmd::approx_bytes,
                                  [&] { return byp_cmd.run(); });
  r.segmentation = byp->segmentation;
  r.boundary = byp->boundary;
}

// Whole-run accounting into the global registry: deterministic result
// facts only (see obs/metrics.h's determinism contract).
void record_pipeline_metrics(const net::Graph& g, const SkeletonResult& r) {
  auto& reg = obs::Registry::global();
  static const obs::Counter runs = reg.counter("pipeline_runs");
  static const obs::Counter nodes = reg.counter("pipeline_input_nodes");
  static const obs::Counter critical = reg.counter("pipeline_critical_nodes");
  static const obs::Counter skeleton = reg.counter("pipeline_skeleton_nodes");
  static const obs::Counter warnings = reg.counter("pipeline_warnings");
  static const obs::Histogram sites = reg.histogram(
      "pipeline_sites_per_run", {4, 8, 16, 32, 64, 128, 256, 512});
  runs.inc();
  nodes.inc(g.n());
  critical.inc(static_cast<std::int64_t>(r.critical_nodes.size()));
  skeleton.inc(r.skeleton.node_count());
  warnings.inc(static_cast<std::int64_t>(r.diagnostics.warnings.size()));
  sites.observe(static_cast<double>(r.critical_nodes.size()));
}

// Stages 1-2 as memoizable commands, then the shared completion. The
// whole driver is stage-command dispatch: each command declares its key
// (graph fingerprint chained with its parameter slice and upstream
// keys), run_stage consults the cache, and the result assembles the
// shared outputs.
void run_extraction(PipelineContext& ctx, SkeletonResult& r,
                    memo::StageCache* cache) {
  const std::uint64_t graph_fp =
      cache != nullptr ? graph_fingerprint(ctx.csr) : 0;

  IndexCmd index_cmd;
  index_cmd.graph_fp = graph_fp;
  index_cmd.params = ctx.params.index_params();
  r.index_out = run_stage<IndexData>(
      ctx, cache, IndexCmd::kName, ctx.g.n(), index_cmd.key(),
      &IndexCmd::approx_bytes, [&] { return index_cmd.run(ctx.csr, ctx.ws); });

  IdentifyCmd identify_cmd;
  identify_cmd.index_key = index_cmd.key();
  identify_cmd.params = ctx.params.identify_params();
  identify_cmd.index = r.index_out.get();
  const std::shared_ptr<const std::vector<int>> critical =
      run_stage<std::vector<int>>(
          ctx, cache, IdentifyCmd::kName, ctx.g.n(), identify_cmd.key(),
          &IdentifyCmd::approx_bytes,
          [&] { return identify_cmd.run(ctx.csr, ctx.ws); });
  r.critical_nodes = *critical;  // owned: assess may patch it per request

  VoronoiCmd voronoi_cmd;
  voronoi_cmd.sites_key = identify_cmd.key();
  voronoi_cmd.params = ctx.params.voronoi_params();
  voronoi_cmd.sites = critical.get();
  r.voronoi_out = run_stage<VoronoiResult>(
      ctx, cache, VoronoiCmd::kName, ctx.g.n(), voronoi_cmd.key(),
      &VoronoiCmd::approx_bytes,
      [&] { return voronoi_cmd.run(ctx.csr, ctx.ws); });

  complete_with_context(ctx, r, cache, voronoi_cmd.key());
}

}  // namespace

const IndexData& SkeletonResult::index() const {
  static const IndexData kEmpty;
  return index_out ? *index_out : kEmpty;
}

const VoronoiResult& SkeletonResult::voronoi() const {
  static const VoronoiResult kEmpty;
  return voronoi_out ? *voronoi_out : kEmpty;
}

const SkeletonGraph& SkeletonResult::coarse() const {
  static const SkeletonGraph kEmpty;
  return coarse_out ? *coarse_out : kEmpty;
}

void SkeletonResult::set_index(IndexData v) {
  index_out = std::make_shared<const IndexData>(std::move(v));
}

void SkeletonResult::set_voronoi(VoronoiResult v) {
  voronoi_out = std::make_shared<const VoronoiResult>(std::move(v));
}

void SkeletonResult::set_coarse(SkeletonGraph v) {
  coarse_out = std::make_shared<const SkeletonGraph>(std::move(v));
}

SkeletonResult complete_extraction(const net::Graph& g, const Params& params,
                                   IndexData index,
                                   std::vector<int> critical_nodes,
                                   VoronoiResult voronoi) {
  params.validate();
  SkeletonResult r;
  r.params = params;
  r.set_index(std::move(index));
  r.critical_nodes = std::move(critical_nodes);
  r.set_voronoi(std::move(voronoi));
  PipelineContext ctx(g, params, r);
  complete_with_context(ctx, r, nullptr, 0);
  record_pipeline_metrics(g, r);
  return r;
}

SkeletonResult complete_extraction(const net::Graph& g,
                                   const net::CsrGraph& csr,
                                   const Params& params, IndexData index,
                                   std::vector<int> critical_nodes,
                                   VoronoiResult voronoi) {
  return complete_extraction(g, csr, params, std::move(index),
                             std::move(critical_nodes), std::move(voronoi),
                             nullptr, 0);
}

SkeletonResult complete_extraction(const net::Graph& g,
                                   const net::CsrGraph& csr,
                                   const Params& params, IndexData index,
                                   std::vector<int> critical_nodes,
                                   VoronoiResult voronoi,
                                   memo::StageCache* cache,
                                   std::uint64_t stage12_key) {
  params.validate();
  SkeletonResult r;
  r.params = params;
  r.set_index(std::move(index));
  r.critical_nodes = std::move(critical_nodes);
  r.set_voronoi(std::move(voronoi));
  PipelineContext ctx(g, csr, params, r);
  complete_with_context(ctx, r, cache, stage12_key);
  record_pipeline_metrics(g, r);
  return r;
}

SkeletonResult extract_skeleton(const net::Graph& g, const Params& params) {
  return extract_skeleton(g, params, nullptr);
}

SkeletonResult extract_skeleton(const net::Graph& g, const Params& params,
                                memo::StageCache* cache) {
  params.validate();
  SkeletonResult r;
  r.params = params;
  obs::ScopedSpan span("extract_skeleton", "pipeline");
  PipelineContext ctx(g, params, r);
  run_extraction(ctx, r, cache);
  record_pipeline_metrics(g, r);
  span.arg("nodes", g.n());
  span.arg("skeleton_nodes", r.skeleton.node_count());
  return r;
}

SkeletonResult extract_skeleton(const net::Graph& g, const net::CsrGraph& csr,
                                const Params& params,
                                memo::StageCache* cache) {
  params.validate();
  SkeletonResult r;
  r.params = params;
  obs::ScopedSpan span("extract_skeleton", "pipeline");
  PipelineContext ctx(g, csr, params, r);
  run_extraction(ctx, r, cache);
  record_pipeline_metrics(g, r);
  span.arg("nodes", g.n());
  span.arg("skeleton_nodes", r.skeleton.node_count());
  return r;
}

}  // namespace skelex::core
