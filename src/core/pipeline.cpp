#include "core/pipeline.h"

#include <memory>
#include <string>
#include <utility>

#include "core/fingerprint.h"
#include "core/memo/stage_cache.h"
#include "core/stage_cmd.h"
#include "obs/metrics.h"

namespace skelex::core {

namespace {

// Centralized-stage span: a core::ScopedStage (one measurement feeding
// the trace sink, the metrics registry, and the StageTrace) whose
// message count is the workspace's edge-scan delta — the message proxy
// for centralized stages (one scanned adjacency entry == one reception
// of the corresponding flood); stages that traverse nothing through the
// shared workspace report 0.
class PipelineStage {
 public:
  PipelineStage(PipelineContext& ctx, std::string name, int nodes)
      : ctx_(ctx),
        scans0_(ctx.ws.edge_scans),
        stage_(ctx.trace, std::move(name), "pipeline") {
    stage_.set_nodes(nodes);
  }

  PipelineStage(const PipelineStage&) = delete;
  PipelineStage& operator=(const PipelineStage&) = delete;

  // Body runs before member destructors, so the edge-scan delta is in
  // place when stage_ records.
  ~PipelineStage() { stage_.set_messages(ctx_.ws.edge_scans - scans0_); }

 private:
  PipelineContext& ctx_;
  long long scans0_;
  ScopedStage stage_;
};

// Runs one memoizable stage command: consult the cache (when given),
// else compute under a PipelineStage span and publish. A hit replays the
// producing run's trace facts (nodes, messages) through the same
// ScopedStage path, so a warm run's StageTrace — and the stage_* metric
// counters — are byte-identical to the cold run's, modulo wall time.
template <typename T, typename Compute>
std::shared_ptr<const T> run_stage(PipelineContext& ctx,
                                   memo::StageCache* cache, const char* name,
                                   int nodes, std::uint64_t key,
                                   std::size_t (*approx_bytes)(const T&),
                                   Compute compute) {
  if (cache != nullptr) {
    memo::StageCache::TraceFacts facts;
    if (auto hit = cache->find<T>(key, name, &facts)) {
      ScopedStage stage(ctx.trace, name, "pipeline");
      stage.set_nodes(facts.nodes);
      stage.set_messages(facts.messages);
      return hit;
    }
  }
  const long long scans0 = ctx.ws.edge_scans;
  std::shared_ptr<const T> value;
  {
    PipelineStage t(ctx, name, nodes);
    value = std::make_shared<const T>(compute());
  }
  if (cache != nullptr) {
    const memo::StageCache::TraceFacts facts{nodes,
                                             ctx.ws.edge_scans - scans0};
    const std::size_t bytes = approx_bytes(*value);
    value = cache->insert<T>(key, name, std::move(value), bytes, facts);
  }
  return value;
}

// --- Input assessment + graceful degradation ---------------------------------
// Inspects what stages 1-2 delivered (they may have run on fault-depleted
// data), patches a missing stage-1 result, and records diagnostics.
// Returns the input components for reuse by the prune tidy-up. A patch
// REPLACES the result's shared Voronoi output (never mutates it — the
// original may be a cache entry other requests are reading) and folds a
// marker into `voronoi_key` so downstream commands chain off the patched
// content. The patch itself is deterministic but always recomputed: its
// flood cost must land in the assess span on warm runs too, or cold and
// warm traces would diverge.

net::Components stage_assess(PipelineContext& ctx, SkeletonResult& r,
                             std::uint64_t* voronoi_key) {
  PipelineStage t(ctx, "assess", ctx.g.n());
  net::Components comps = net::connected_components(ctx.csr, ctx.ws);
  r.diagnostics.input_components = comps.count;
  if (comps.count > 1) {
    r.diagnostics.disconnected_input = true;
    r.diagnostics.warn("input graph has " + std::to_string(comps.count) +
                       " connected components; each is skeletonized "
                       "independently");
  }

  if (r.critical_nodes.empty() && ctx.g.n() > 0) {
    // Stage 1 produced no sites (possible when the identification ran on
    // fault-depleted data). A skeleton needs at least one node: fall back
    // to the max-index node — or node 0 if even the index is missing.
    const IndexData& idx = r.index();
    int best = 0;
    if (static_cast<int>(idx.index.size()) == ctx.g.n()) {
      for (int v = 1; v < ctx.g.n(); ++v) {
        if (idx.index[static_cast<std::size_t>(v)] >
            idx.index[static_cast<std::size_t>(best)]) {
          best = v;
        }
      }
    }
    r.critical_nodes.push_back(best);
    r.set_voronoi(build_voronoi(ctx.csr, ctx.ws, r.critical_nodes,
                                ctx.params.voronoi_params()));
    if (voronoi_key != nullptr) {
      Fnv f;
      f.u64(*voronoi_key);
      f.bytes("assess-fallback", 15);
      f.i32(best);
      *voronoi_key = f.h;
    }
    r.diagnostics.empty_critical_fallback = true;
    r.diagnostics.warn("no critical nodes from stage 1; fell back to node " +
                       std::to_string(best) + " as the single site");
  }

  const VoronoiResult& vor = r.voronoi();
  if (static_cast<int>(vor.site_of.size()) == ctx.g.n()) {
    std::vector<int> cell_size(vor.sites.size(), 0);
    for (int v = 0; v < ctx.g.n(); ++v) {
      const int s = vor.site_of[static_cast<std::size_t>(v)];
      if (s == -1) {
        ++r.diagnostics.voronoi_unassigned;
      } else if (s >= 0 && s < static_cast<int>(cell_size.size())) {
        ++cell_size[static_cast<std::size_t>(s)];
      }
    }
    if (r.diagnostics.voronoi_unassigned > 0) {
      r.diagnostics.warn(std::to_string(r.diagnostics.voronoi_unassigned) +
                         " node(s) were reached by no site flood and belong "
                         "to no Voronoi cell");
    }
    for (int size : cell_size) {
      if (size <= 1) ++r.diagnostics.degenerate_cells;
    }
    if (r.diagnostics.degenerate_cells > 0 &&
        2 * r.diagnostics.degenerate_cells >
            static_cast<int>(cell_size.size())) {
      r.diagnostics.warn("over half of the Voronoi cells (" +
                         std::to_string(r.diagnostics.degenerate_cells) +
                         " of " + std::to_string(cell_size.size()) +
                         ") are degenerate (<= 1 node)");
    }
  }
  return comps;
}

// --- Stage 3 (§III-C): coarse skeleton ---------------------------------------

void stage_coarse(PipelineContext& ctx, SkeletonResult& r,
                  memo::StageCache* cache, std::uint64_t voronoi_key) {
  CoarseCmd cmd;
  cmd.voronoi_key = voronoi_key;
  cmd.params = ctx.params.coarse_params();
  cmd.g = &ctx.g;
  cmd.index = &r.index();
  cmd.voronoi = &r.voronoi();
  r.coarse_out = run_stage<SkeletonGraph>(
      ctx, cache, CoarseCmd::kName, r.voronoi().cell_count(), cmd.key(),
      &CoarseCmd::approx_bytes, [&] { return cmd.run(); });
}

// --- Stage 4 (§III-D): loop clean-up + pruning -------------------------------

void stage_cleanup(PipelineContext& ctx, SkeletonResult& r) {
  PipelineStage t(ctx, "cleanup", r.coarse().node_count());
  CleanupCmd cmd;
  cmd.params = ctx.params.cleanup_params();
  cmd.g = &ctx.g;
  cmd.index = &r.index();
  cmd.voronoi = &r.voronoi();
  CleanupResult cleaned = cmd.run(r.coarse());  // consumes a copy
  r.fake_loops_removed = cleaned.fake_loops_removed;
  r.merge_rounds = cleaned.merge_rounds;
  r.thin_loops_collapsed = cleaned.thin_loops_collapsed;
  r.pockets = std::move(cleaned.pockets);
  r.skeleton = std::move(cleaned.graph);
}

void stage_prune(PipelineContext& ctx, SkeletonResult& r,
                 const net::Components& comps) {
  PipelineStage t(ctx, "prune", r.skeleton.node_count());
  PruneCmd cmd;
  cmd.params = ctx.params.prune_params();
  r.pruned_nodes = cmd.run(r.skeleton);

  // Post-prune tidy-up with knowledge of the network: drop isolated
  // skeleton nodes whose network component already has skeleton
  // structure, but keep a lone site that is its component's only
  // skeleton (the skeleton of a small blob IS a single node).
  std::vector<int> skeleton_per_comp(static_cast<std::size_t>(comps.count), 0);
  for (int v : r.skeleton.nodes()) {
    ++skeleton_per_comp[static_cast<std::size_t>(
        comps.label[static_cast<std::size_t>(v)])];
  }
  for (int v : r.skeleton.nodes()) {
    const int c = comps.label[static_cast<std::size_t>(v)];
    if (r.skeleton.degree(v) == 0 &&
        skeleton_per_comp[static_cast<std::size_t>(c)] > 1) {
      r.skeleton.remove_node(v);
      --skeleton_per_comp[static_cast<std::size_t>(c)];
      ++r.pruned_nodes;
    }
  }
}

// --- By-products (§III-E) ----------------------------------------------------

void stage_byproducts(PipelineContext& ctx, SkeletonResult& r) {
  PipelineStage t(ctx, "byproducts", ctx.g.n());
  r.segmentation = segmentation_from_voronoi(r.voronoi());
  r.boundary = extract_boundaries(ctx.g, r.skeleton, 1, &r.index().khop_size);
}

// Stage 3 onward, shared by the centralized front (extract_skeleton) and
// the external-stage-1/2 front (complete_extraction): the context's trace
// keeps accumulating, so the full run reads as one ordered stage list.
// `voronoi_key` is the chained content key of the Voronoi output (0 when
// memoization is off); only the coarse stage is memoizable past this
// point — cleanup onward produce the request's owned result half.
void complete_with_context(PipelineContext& ctx, SkeletonResult& r,
                           memo::StageCache* cache,
                           std::uint64_t voronoi_key) {
  const net::Components comps = stage_assess(ctx, r, &voronoi_key);
  stage_coarse(ctx, r, cache, voronoi_key);
  stage_cleanup(ctx, r);
  stage_prune(ctx, r, comps);
  stage_byproducts(ctx, r);
}

// Whole-run accounting into the global registry: deterministic result
// facts only (see obs/metrics.h's determinism contract).
void record_pipeline_metrics(const net::Graph& g, const SkeletonResult& r) {
  auto& reg = obs::Registry::global();
  static const obs::Counter runs = reg.counter("pipeline_runs");
  static const obs::Counter nodes = reg.counter("pipeline_input_nodes");
  static const obs::Counter critical = reg.counter("pipeline_critical_nodes");
  static const obs::Counter skeleton = reg.counter("pipeline_skeleton_nodes");
  static const obs::Counter warnings = reg.counter("pipeline_warnings");
  static const obs::Histogram sites = reg.histogram(
      "pipeline_sites_per_run", {4, 8, 16, 32, 64, 128, 256, 512});
  runs.inc();
  nodes.inc(g.n());
  critical.inc(static_cast<std::int64_t>(r.critical_nodes.size()));
  skeleton.inc(r.skeleton.node_count());
  warnings.inc(static_cast<std::int64_t>(r.diagnostics.warnings.size()));
  sites.observe(static_cast<double>(r.critical_nodes.size()));
}

// Stages 1-2 as memoizable commands, then the shared completion. The
// whole driver is stage-command dispatch: each command declares its key
// (graph fingerprint chained with its parameter slice and upstream
// keys), run_stage consults the cache, and the result assembles the
// shared outputs.
void run_extraction(PipelineContext& ctx, SkeletonResult& r,
                    memo::StageCache* cache) {
  const std::uint64_t graph_fp =
      cache != nullptr ? graph_fingerprint(ctx.csr) : 0;

  IndexCmd index_cmd;
  index_cmd.graph_fp = graph_fp;
  index_cmd.params = ctx.params.index_params();
  r.index_out = run_stage<IndexData>(
      ctx, cache, IndexCmd::kName, ctx.g.n(), index_cmd.key(),
      &IndexCmd::approx_bytes, [&] { return index_cmd.run(ctx.csr, ctx.ws); });

  IdentifyCmd identify_cmd;
  identify_cmd.index_key = index_cmd.key();
  identify_cmd.params = ctx.params.identify_params();
  identify_cmd.index = r.index_out.get();
  const std::shared_ptr<const std::vector<int>> critical =
      run_stage<std::vector<int>>(
          ctx, cache, IdentifyCmd::kName, ctx.g.n(), identify_cmd.key(),
          &IdentifyCmd::approx_bytes,
          [&] { return identify_cmd.run(ctx.csr, ctx.ws); });
  r.critical_nodes = *critical;  // owned: assess may patch it per request

  VoronoiCmd voronoi_cmd;
  voronoi_cmd.sites_key = identify_cmd.key();
  voronoi_cmd.params = ctx.params.voronoi_params();
  voronoi_cmd.sites = critical.get();
  r.voronoi_out = run_stage<VoronoiResult>(
      ctx, cache, VoronoiCmd::kName, ctx.g.n(), voronoi_cmd.key(),
      &VoronoiCmd::approx_bytes,
      [&] { return voronoi_cmd.run(ctx.csr, ctx.ws); });

  complete_with_context(ctx, r, cache, voronoi_cmd.key());
}

}  // namespace

const IndexData& SkeletonResult::index() const {
  static const IndexData kEmpty;
  return index_out ? *index_out : kEmpty;
}

const VoronoiResult& SkeletonResult::voronoi() const {
  static const VoronoiResult kEmpty;
  return voronoi_out ? *voronoi_out : kEmpty;
}

const SkeletonGraph& SkeletonResult::coarse() const {
  static const SkeletonGraph kEmpty;
  return coarse_out ? *coarse_out : kEmpty;
}

void SkeletonResult::set_index(IndexData v) {
  index_out = std::make_shared<const IndexData>(std::move(v));
}

void SkeletonResult::set_voronoi(VoronoiResult v) {
  voronoi_out = std::make_shared<const VoronoiResult>(std::move(v));
}

void SkeletonResult::set_coarse(SkeletonGraph v) {
  coarse_out = std::make_shared<const SkeletonGraph>(std::move(v));
}

SkeletonResult complete_extraction(const net::Graph& g, const Params& params,
                                   IndexData index,
                                   std::vector<int> critical_nodes,
                                   VoronoiResult voronoi) {
  params.validate();
  SkeletonResult r;
  r.params = params;
  r.set_index(std::move(index));
  r.critical_nodes = std::move(critical_nodes);
  r.set_voronoi(std::move(voronoi));
  PipelineContext ctx(g, params, r);
  complete_with_context(ctx, r, nullptr, 0);
  record_pipeline_metrics(g, r);
  return r;
}

SkeletonResult complete_extraction(const net::Graph& g,
                                   const net::CsrGraph& csr,
                                   const Params& params, IndexData index,
                                   std::vector<int> critical_nodes,
                                   VoronoiResult voronoi) {
  params.validate();
  SkeletonResult r;
  r.params = params;
  r.set_index(std::move(index));
  r.critical_nodes = std::move(critical_nodes);
  r.set_voronoi(std::move(voronoi));
  PipelineContext ctx(g, csr, params, r);
  complete_with_context(ctx, r, nullptr, 0);
  record_pipeline_metrics(g, r);
  return r;
}

SkeletonResult extract_skeleton(const net::Graph& g, const Params& params) {
  return extract_skeleton(g, params, nullptr);
}

SkeletonResult extract_skeleton(const net::Graph& g, const Params& params,
                                memo::StageCache* cache) {
  params.validate();
  SkeletonResult r;
  r.params = params;
  obs::ScopedSpan span("extract_skeleton", "pipeline");
  PipelineContext ctx(g, params, r);
  run_extraction(ctx, r, cache);
  record_pipeline_metrics(g, r);
  span.arg("nodes", g.n());
  span.arg("skeleton_nodes", r.skeleton.node_count());
  return r;
}

SkeletonResult extract_skeleton(const net::Graph& g, const net::CsrGraph& csr,
                                const Params& params,
                                memo::StageCache* cache) {
  params.validate();
  SkeletonResult r;
  r.params = params;
  obs::ScopedSpan span("extract_skeleton", "pipeline");
  PipelineContext ctx(g, csr, params, r);
  run_extraction(ctx, r, cache);
  record_pipeline_metrics(g, r);
  span.arg("nodes", g.n());
  span.arg("skeleton_nodes", r.skeleton.node_count());
  return r;
}

}  // namespace skelex::core
