#include "core/pipeline.h"

#include <string>
#include <utility>

namespace skelex::core {

SkeletonResult complete_extraction(const net::Graph& g, const Params& params,
                                   IndexData index,
                                   std::vector<int> critical_nodes,
                                   VoronoiResult voronoi) {
  params.validate();
  SkeletonResult r;
  r.params = params;
  r.index = std::move(index);
  r.critical_nodes = std::move(critical_nodes);
  r.voronoi = std::move(voronoi);

  const net::Components comps = net::connected_components(g);
  r.diagnostics.input_components = comps.count;
  if (comps.count > 1) {
    r.diagnostics.disconnected_input = true;
    r.diagnostics.warn("input graph has " + std::to_string(comps.count) +
                       " connected components; each is skeletonized "
                       "independently");
  }

  if (r.critical_nodes.empty() && g.n() > 0) {
    // Stage 1 produced no sites (possible when the identification ran on
    // fault-depleted data). A skeleton needs at least one node: fall back
    // to the max-index node — or node 0 if even the index is missing.
    int best = 0;
    if (static_cast<int>(r.index.index.size()) == g.n()) {
      for (int v = 1; v < g.n(); ++v) {
        if (r.index.index[static_cast<std::size_t>(v)] >
            r.index.index[static_cast<std::size_t>(best)]) {
          best = v;
        }
      }
    }
    r.critical_nodes.push_back(best);
    r.voronoi = build_voronoi(g, r.critical_nodes, params);
    r.diagnostics.empty_critical_fallback = true;
    r.diagnostics.warn("no critical nodes from stage 1; fell back to node " +
                       std::to_string(best) + " as the single site");
  }

  if (static_cast<int>(r.voronoi.site_of.size()) == g.n()) {
    std::vector<int> cell_size(r.voronoi.sites.size(), 0);
    for (int v = 0; v < g.n(); ++v) {
      const int s = r.voronoi.site_of[static_cast<std::size_t>(v)];
      if (s == -1) {
        ++r.diagnostics.voronoi_unassigned;
      } else if (s >= 0 && s < static_cast<int>(cell_size.size())) {
        ++cell_size[static_cast<std::size_t>(s)];
      }
    }
    if (r.diagnostics.voronoi_unassigned > 0) {
      r.diagnostics.warn(std::to_string(r.diagnostics.voronoi_unassigned) +
                         " node(s) were reached by no site flood and belong "
                         "to no Voronoi cell");
    }
    for (int size : cell_size) {
      if (size <= 1) ++r.diagnostics.degenerate_cells;
    }
    if (r.diagnostics.degenerate_cells > 0 &&
        2 * r.diagnostics.degenerate_cells >
            static_cast<int>(cell_size.size())) {
      r.diagnostics.warn("over half of the Voronoi cells (" +
                         std::to_string(r.diagnostics.degenerate_cells) +
                         " of " + std::to_string(cell_size.size()) +
                         ") are degenerate (<= 1 node)");
    }
  }

  // Stage 3: coarse skeleton (§III-C).
  CoarseSkeleton coarse = build_coarse_skeleton(g, r.index, r.voronoi, params);
  r.coarse = coarse.graph;

  // Stage 4: loop clean-up + pruning (§III-D).
  CleanupResult cleaned =
      cleanup_loops(g, r.index, std::move(coarse.graph), params, &r.voronoi);
  r.fake_loops_removed = cleaned.fake_loops_removed;
  r.merge_rounds = cleaned.merge_rounds;
  r.thin_loops_collapsed = cleaned.thin_loops_collapsed;
  r.pockets = std::move(cleaned.pockets);
  r.skeleton = std::move(cleaned.graph);
  r.pruned_nodes = prune_short_branches(r.skeleton, params.prune_len);

  // Post-prune tidy-up with knowledge of the network: drop isolated
  // skeleton nodes whose network component already has skeleton
  // structure, but keep a lone site that is its component's only
  // skeleton (the skeleton of a small blob IS a single node).
  {
    const net::Components comps = net::connected_components(g);
    std::vector<int> skeleton_per_comp(static_cast<std::size_t>(comps.count), 0);
    for (int v : r.skeleton.nodes()) {
      ++skeleton_per_comp[static_cast<std::size_t>(
          comps.label[static_cast<std::size_t>(v)])];
    }
    for (int v : r.skeleton.nodes()) {
      const int c = comps.label[static_cast<std::size_t>(v)];
      if (r.skeleton.degree(v) == 0 &&
          skeleton_per_comp[static_cast<std::size_t>(c)] > 1) {
        r.skeleton.remove_node(v);
        --skeleton_per_comp[static_cast<std::size_t>(c)];
        ++r.pruned_nodes;
      }
    }
  }

  // By-products (§III-E).
  r.segmentation = segmentation_from_voronoi(r.voronoi);
  r.boundary = extract_boundaries(g, r.skeleton, 1, &r.index.khop_size);
  return r;
}

SkeletonResult extract_skeleton(const net::Graph& g, const Params& params) {
  params.validate();

  // Stage 1: index + critical skeleton nodes (§III-A).
  IndexData index = compute_index(g, params);
  std::vector<int> critical = identify_critical_nodes(g, index, params);

  // Stage 2: Voronoi cells + segment nodes (§III-B).
  VoronoiResult voronoi = build_voronoi(g, critical, params);

  return complete_extraction(g, params, std::move(index), std::move(critical),
                             std::move(voronoi));
}

}  // namespace skelex::core
