#include "core/pipeline.h"

#include <string>
#include <utility>

#include "obs/metrics.h"

namespace skelex::core {

namespace {

// Centralized-stage span: a core::ScopedStage (one measurement feeding
// the trace sink, the metrics registry, and the StageTrace) whose
// message count is the workspace's edge-scan delta — the message proxy
// for centralized stages (one scanned adjacency entry == one reception
// of the corresponding flood); stages that traverse nothing through the
// shared workspace report 0.
class PipelineStage {
 public:
  PipelineStage(PipelineContext& ctx, std::string name, int nodes)
      : ctx_(ctx),
        scans0_(ctx.ws.edge_scans),
        stage_(ctx.trace, std::move(name), "pipeline") {
    stage_.set_nodes(nodes);
  }

  PipelineStage(const PipelineStage&) = delete;
  PipelineStage& operator=(const PipelineStage&) = delete;

  // Body runs before member destructors, so the edge-scan delta is in
  // place when stage_ records.
  ~PipelineStage() { stage_.set_messages(ctx_.ws.edge_scans - scans0_); }

 private:
  PipelineContext& ctx_;
  long long scans0_;
  ScopedStage stage_;
};

// --- Stage 1 (§III-A): per-node index + critical skeleton nodes --------------

void stage_index(PipelineContext& ctx, SkeletonResult& r) {
  PipelineStage t(ctx, "index", ctx.g.n());
  r.index = compute_index(ctx.csr, ctx.ws, ctx.params);
}

void stage_identify(PipelineContext& ctx, SkeletonResult& r) {
  PipelineStage t(ctx, "identify", ctx.g.n());
  r.critical_nodes =
      identify_critical_nodes(ctx.csr, ctx.ws, r.index, ctx.params);
}

// --- Stage 2 (§III-B): Voronoi cells + segment nodes -------------------------

void stage_voronoi(PipelineContext& ctx, SkeletonResult& r) {
  PipelineStage t(ctx, "voronoi", ctx.g.n());
  r.voronoi = build_voronoi(ctx.csr, ctx.ws, r.critical_nodes, ctx.params);
}

// --- Input assessment + graceful degradation ---------------------------------
// Inspects what stages 1-2 delivered (they may have run on fault-depleted
// data), patches a missing stage-1 result, and records diagnostics.
// Returns the input components for reuse by the prune tidy-up.

net::Components stage_assess(PipelineContext& ctx, SkeletonResult& r) {
  PipelineStage t(ctx, "assess", ctx.g.n());
  net::Components comps = net::connected_components(ctx.csr, ctx.ws);
  r.diagnostics.input_components = comps.count;
  if (comps.count > 1) {
    r.diagnostics.disconnected_input = true;
    r.diagnostics.warn("input graph has " + std::to_string(comps.count) +
                       " connected components; each is skeletonized "
                       "independently");
  }

  if (r.critical_nodes.empty() && ctx.g.n() > 0) {
    // Stage 1 produced no sites (possible when the identification ran on
    // fault-depleted data). A skeleton needs at least one node: fall back
    // to the max-index node — or node 0 if even the index is missing.
    int best = 0;
    if (static_cast<int>(r.index.index.size()) == ctx.g.n()) {
      for (int v = 1; v < ctx.g.n(); ++v) {
        if (r.index.index[static_cast<std::size_t>(v)] >
            r.index.index[static_cast<std::size_t>(best)]) {
          best = v;
        }
      }
    }
    r.critical_nodes.push_back(best);
    r.voronoi = build_voronoi(ctx.csr, ctx.ws, r.critical_nodes, ctx.params);
    r.diagnostics.empty_critical_fallback = true;
    r.diagnostics.warn("no critical nodes from stage 1; fell back to node " +
                       std::to_string(best) + " as the single site");
  }

  if (static_cast<int>(r.voronoi.site_of.size()) == ctx.g.n()) {
    std::vector<int> cell_size(r.voronoi.sites.size(), 0);
    for (int v = 0; v < ctx.g.n(); ++v) {
      const int s = r.voronoi.site_of[static_cast<std::size_t>(v)];
      if (s == -1) {
        ++r.diagnostics.voronoi_unassigned;
      } else if (s >= 0 && s < static_cast<int>(cell_size.size())) {
        ++cell_size[static_cast<std::size_t>(s)];
      }
    }
    if (r.diagnostics.voronoi_unassigned > 0) {
      r.diagnostics.warn(std::to_string(r.diagnostics.voronoi_unassigned) +
                         " node(s) were reached by no site flood and belong "
                         "to no Voronoi cell");
    }
    for (int size : cell_size) {
      if (size <= 1) ++r.diagnostics.degenerate_cells;
    }
    if (r.diagnostics.degenerate_cells > 0 &&
        2 * r.diagnostics.degenerate_cells >
            static_cast<int>(cell_size.size())) {
      r.diagnostics.warn("over half of the Voronoi cells (" +
                         std::to_string(r.diagnostics.degenerate_cells) +
                         " of " + std::to_string(cell_size.size()) +
                         ") are degenerate (<= 1 node)");
    }
  }
  return comps;
}

// --- Stage 3 (§III-C): coarse skeleton ---------------------------------------
// Returns the coarse graph for the clean-up stage to consume.

SkeletonGraph stage_coarse(PipelineContext& ctx, SkeletonResult& r) {
  PipelineStage t(ctx, "coarse", r.voronoi.cell_count());
  CoarseSkeleton coarse =
      build_coarse_skeleton(ctx.g, r.index, r.voronoi, ctx.params);
  r.coarse = coarse.graph;
  return std::move(coarse.graph);
}

// --- Stage 4 (§III-D): loop clean-up + pruning -------------------------------

void stage_cleanup(PipelineContext& ctx, SkeletonResult& r,
                   SkeletonGraph coarse) {
  PipelineStage t(ctx, "cleanup", coarse.node_count());
  CleanupResult cleaned =
      cleanup_loops(ctx.g, r.index, std::move(coarse), ctx.params, &r.voronoi);
  r.fake_loops_removed = cleaned.fake_loops_removed;
  r.merge_rounds = cleaned.merge_rounds;
  r.thin_loops_collapsed = cleaned.thin_loops_collapsed;
  r.pockets = std::move(cleaned.pockets);
  r.skeleton = std::move(cleaned.graph);
}

void stage_prune(PipelineContext& ctx, SkeletonResult& r,
                 const net::Components& comps) {
  PipelineStage t(ctx, "prune", r.skeleton.node_count());
  r.pruned_nodes = prune_short_branches(r.skeleton, ctx.params.prune_len);

  // Post-prune tidy-up with knowledge of the network: drop isolated
  // skeleton nodes whose network component already has skeleton
  // structure, but keep a lone site that is its component's only
  // skeleton (the skeleton of a small blob IS a single node).
  std::vector<int> skeleton_per_comp(static_cast<std::size_t>(comps.count), 0);
  for (int v : r.skeleton.nodes()) {
    ++skeleton_per_comp[static_cast<std::size_t>(
        comps.label[static_cast<std::size_t>(v)])];
  }
  for (int v : r.skeleton.nodes()) {
    const int c = comps.label[static_cast<std::size_t>(v)];
    if (r.skeleton.degree(v) == 0 &&
        skeleton_per_comp[static_cast<std::size_t>(c)] > 1) {
      r.skeleton.remove_node(v);
      --skeleton_per_comp[static_cast<std::size_t>(c)];
      ++r.pruned_nodes;
    }
  }
}

// --- By-products (§III-E) ----------------------------------------------------

void stage_byproducts(PipelineContext& ctx, SkeletonResult& r) {
  PipelineStage t(ctx, "byproducts", ctx.g.n());
  r.segmentation = segmentation_from_voronoi(r.voronoi);
  r.boundary = extract_boundaries(ctx.g, r.skeleton, 1, &r.index.khop_size);
}

// Stage 3 onward, shared by the centralized front (extract_skeleton) and
// the external-stage-1/2 front (complete_extraction): the context's trace
// keeps accumulating, so the full run reads as one ordered stage list.
void complete_with_context(PipelineContext& ctx, SkeletonResult& r) {
  const net::Components comps = stage_assess(ctx, r);
  stage_cleanup(ctx, r, stage_coarse(ctx, r));
  stage_prune(ctx, r, comps);
  stage_byproducts(ctx, r);
}

// Whole-run accounting into the global registry: deterministic result
// facts only (see obs/metrics.h's determinism contract).
void record_pipeline_metrics(const net::Graph& g, const SkeletonResult& r) {
  auto& reg = obs::Registry::global();
  static const obs::Counter runs = reg.counter("pipeline_runs");
  static const obs::Counter nodes = reg.counter("pipeline_input_nodes");
  static const obs::Counter critical = reg.counter("pipeline_critical_nodes");
  static const obs::Counter skeleton = reg.counter("pipeline_skeleton_nodes");
  static const obs::Counter warnings = reg.counter("pipeline_warnings");
  static const obs::Histogram sites = reg.histogram(
      "pipeline_sites_per_run", {4, 8, 16, 32, 64, 128, 256, 512});
  runs.inc();
  nodes.inc(g.n());
  critical.inc(static_cast<std::int64_t>(r.critical_nodes.size()));
  skeleton.inc(r.skeleton.node_count());
  warnings.inc(static_cast<std::int64_t>(r.diagnostics.warnings.size()));
  sites.observe(static_cast<double>(r.critical_nodes.size()));
}

}  // namespace

SkeletonResult complete_extraction(const net::Graph& g, const Params& params,
                                   IndexData index,
                                   std::vector<int> critical_nodes,
                                   VoronoiResult voronoi) {
  params.validate();
  SkeletonResult r;
  r.params = params;
  r.index = std::move(index);
  r.critical_nodes = std::move(critical_nodes);
  r.voronoi = std::move(voronoi);
  PipelineContext ctx(g, params, r);
  complete_with_context(ctx, r);
  record_pipeline_metrics(g, r);
  return r;
}

SkeletonResult complete_extraction(const net::Graph& g,
                                   const net::CsrGraph& csr,
                                   const Params& params, IndexData index,
                                   std::vector<int> critical_nodes,
                                   VoronoiResult voronoi) {
  params.validate();
  SkeletonResult r;
  r.params = params;
  r.index = std::move(index);
  r.critical_nodes = std::move(critical_nodes);
  r.voronoi = std::move(voronoi);
  PipelineContext ctx(g, csr, params, r);
  complete_with_context(ctx, r);
  record_pipeline_metrics(g, r);
  return r;
}

SkeletonResult extract_skeleton(const net::Graph& g, const Params& params) {
  params.validate();
  SkeletonResult r;
  r.params = params;
  obs::ScopedSpan span("extract_skeleton", "pipeline");
  PipelineContext ctx(g, params, r);
  stage_index(ctx, r);
  stage_identify(ctx, r);
  stage_voronoi(ctx, r);
  complete_with_context(ctx, r);
  record_pipeline_metrics(g, r);
  span.arg("nodes", g.n());
  span.arg("skeleton_nodes", r.skeleton.node_count());
  return r;
}

}  // namespace skelex::core
