// skelex/core/pipeline.h
//
// Public entry point: run the full boundary-free skeleton extraction of
// the paper on a connectivity graph.
//
//   net::Graph g = ...;                 // connectivity only
//   core::SkeletonResult r = core::extract_skeleton(g, core::Params{});
//   r.skeleton;                         // the refined skeleton graph
//   r.segmentation, r.boundary;         // the two by-products
//
// Every intermediate stage (Fig. 1 b-h) is kept in the result so callers
// can inspect / visualize the pipeline.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/byproducts.h"
#include "core/cleanup.h"
#include "core/coarse.h"
#include "core/config.h"
#include "core/identify.h"
#include "core/index.h"
#include "core/prune.h"
#include "core/skeleton_graph.h"
#include "core/stage_trace.h"
#include "core/voronoi.h"
#include "net/csr.h"
#include "net/graph.h"

namespace skelex::core::memo {
class StageCache;
}

namespace skelex::core {

// Degradation report: the pipeline keeps going on imperfect input
// (disconnected graphs, fault-depleted stage-1/2 results, ...) and
// records what it had to tolerate or patch instead of throwing.
struct Diagnostics {
  std::vector<std::string> warnings;
  int input_components = 0;       // connected components of the input graph
  bool disconnected_input = false;
  // No critical nodes arrived (e.g. every candidate crashed); the
  // pipeline fell back to the max-index node as the single site.
  bool empty_critical_fallback = false;
  int voronoi_unassigned = 0;  // nodes no site record ever reached
  int degenerate_cells = 0;    // Voronoi cells with <= 1 member

  bool ok() const { return warnings.empty(); }
  void warn(std::string message) { warnings.push_back(std::move(message)); }
};

// The extraction output: an ASSEMBLY of shared stage outputs. The
// heavyweight intermediates (index data, Voronoi arrays, the coarse
// skeleton) are produced by the stage commands (core/stage_cmd.h) as
// immutable shared values — when a memo cache is in play they are
// LITERALLY the cache's entries, shared with every other request that
// hit the same key — while the per-request pieces (critical-node list
// after the assess patch, the final pruned skeleton, diagnostics,
// trace) stay owned values. Read the shared stages through the
// reference accessors: r.index(), r.voronoi(), r.coarse().
struct SkeletonResult {
  Params params;

  // Stage 1 (Fig. 1b): per-node index and the critical skeleton nodes.
  std::shared_ptr<const IndexData> index_out;
  std::vector<int> critical_nodes;

  // Stage 2 (Fig. 1c): Voronoi cells and segment nodes.
  std::shared_ptr<const VoronoiResult> voronoi_out;

  // Stage 3 (Fig. 1d): coarse skeleton.
  std::shared_ptr<const SkeletonGraph> coarse_out;

  // Stage 4 (Fig. 1e-h): clean-up diagnostics + final skeleton.
  int fake_loops_removed = 0;
  int merge_rounds = 0;
  int thin_loops_collapsed = 0;
  int pruned_nodes = 0;
  std::vector<Pocket> pockets;  // final pocket classification
  SkeletonGraph skeleton;       // the refined skeleton

  // By-products (Fig. 3).
  Segmentation segmentation;
  BoundaryResult boundary;

  // Graceful-degradation report (filled by complete_extraction; the
  // distributed/reliable runners append stage-completeness warnings).
  Diagnostics diagnostics;

  // Per-stage wall time / node / message accounting, in execution order.
  // extract_skeleton records index/identify/voronoi plus the completion
  // stages; the distributed front prepends its per-protocol entries.
  StageTrace trace;

  // Reference accessors over the shared stage outputs. Safe on a
  // default-constructed result (they fall back to empty statics), so
  // partially-filled results from degraded runs still read cleanly.
  const IndexData& index() const;
  const VoronoiResult& voronoi() const;
  const SkeletonGraph& coarse() const;

  // Setters that wrap a freshly computed value (the common way legacy
  // fronts — protocols, tests — fill a result).
  void set_index(IndexData v);
  void set_voronoi(VoronoiResult v);
  void set_coarse(SkeletonGraph v);

  // Convenience queries.
  int skeleton_cycle_rank() const { return skeleton.cycle_rank(); }
  int skeleton_components() const { return skeleton.component_count(); }
  bool is_skeleton_node(int v) const { return skeleton.has_node(v); }
};

// Shared state of one pipeline run, threaded through the stage
// functions: the graph plus its CSR view (built once), a single reusable
// traversal workspace, and the result's diagnostics/trace sinks. The
// stage functions themselves are internal to pipeline.cpp; the context
// is public so alternative fronts (distributed, benches) can drive the
// completion stages with their own workspace.
struct PipelineContext {
  const net::Graph& g;
  const net::CsrGraph& csr;
  const Params& params;
  net::Workspace ws;
  Diagnostics& diag;
  StageTrace& trace;

  PipelineContext(const net::Graph& graph, const Params& p, SkeletonResult& r)
      : g(graph), csr(graph.csr()), params(p), diag(r.diagnostics),
        trace(r.trace) {
    ws.reserve(graph.n());
  }

  // External-CSR variant for dynamic callers (core/maintain.h): the
  // caller already maintains a CsrGraph of `graph` via deltas, so the
  // pipeline must not trigger Graph::csr()'s full rebuild. `csr_view`
  // must describe `graph` exactly and outlive the context.
  PipelineContext(const net::Graph& graph, const net::CsrGraph& csr_view,
                  const Params& p, SkeletonResult& r)
      : g(graph), csr(csr_view), params(p), diag(r.diagnostics),
        trace(r.trace) {
    ws.reserve(graph.n());
  }
};

// Runs stages 1-4 plus by-products. Throws std::invalid_argument on bad
// params; works on any graph (disconnected graphs are processed
// per-component implicitly by the floods).
SkeletonResult extract_skeleton(const net::Graph& g, const Params& params = {});

// Memoized driver: identical output, but EVERY stage command (index,
// identify, voronoi, assess, coarse, cleanup, prune, byproducts) first
// consults `cache`, keyed by the graph fingerprint chained with the
// stage's parameter slice and its upstream keys. Two requests differing
// only in prune_len share every stage through cleanup for free; two
// requests differing in cleanup params share stages 1-3 + assess.
// `cache == nullptr` degrades to the plain driver. The memoized and
// unmemoized results are bit-identical (same fingerprint).
SkeletonResult extract_skeleton(const net::Graph& g, const Params& params,
                                memo::StageCache* cache);

// External-CSR front: traverses `csr` (an externally maintained
// snapshot of `g`, e.g. one kept current by CsrGraph::apply_delta)
// instead of Graph::csr()'s cached rebuild. Equivalent to
// extract_skeleton(g, params) whenever csr describes g exactly.
SkeletonResult extract_skeleton(const net::Graph& g, const net::CsrGraph& csr,
                                const Params& params,
                                memo::StageCache* cache = nullptr);

// Completes the pipeline (stage 3 onward + by-products) from externally
// computed stage-1/2 results — e.g. the message-passing protocols in
// core/protocols.h, possibly run under timing jitter. extract_skeleton
// is exactly compute+identify+build_voronoi followed by this.
SkeletonResult complete_extraction(const net::Graph& g, const Params& params,
                                   IndexData index,
                                   std::vector<int> critical_nodes,
                                   VoronoiResult voronoi);

// Same, but traversing `csr` (an externally maintained snapshot of `g`,
// e.g. one kept current by CsrGraph::apply_delta) instead of rebuilding
// Graph::csr's cache — the hot path of incremental skeleton repair.
SkeletonResult complete_extraction(const net::Graph& g,
                                   const net::CsrGraph& csr,
                                   const Params& params, IndexData index,
                                   std::vector<int> critical_nodes,
                                   VoronoiResult voronoi);

// Memoized completion: same, but the tail stage commands (assess,
// coarse, cleanup, prune, byproducts) consult `cache`, chained off
// `stage12_key` — a CONTENT key covering everything the tail consumes
// (graph + index + critical + voronoi; see stage12_fingerprint in
// core/fingerprint.h). This is the maintainer's path onto the shared
// stage DAG: repairs that leave the stage-1/2 content untouched replay
// the whole tail from cache, while any regional re-flood changes the
// key and recomputes exactly the downstream stages. `cache == nullptr`
// (with any key) degrades to the unmemoized completion.
SkeletonResult complete_extraction(const net::Graph& g,
                                   const net::CsrGraph& csr,
                                   const Params& params, IndexData index,
                                   std::vector<int> critical_nodes,
                                   VoronoiResult voronoi,
                                   memo::StageCache* cache,
                                   std::uint64_t stage12_key);

}  // namespace skelex::core
