#include "core/protocols.h"

#include <algorithm>
#include <bit>
#include <stdexcept>


namespace skelex::core {

namespace {
// Message kinds.
constexpr int kKhop = 0;
constexpr int kCentrality = 1;
constexpr int kLocalMax = 2;
constexpr int kVoronoi = 3;

std::int64_t pack_double(double d) { return std::bit_cast<std::int64_t>(d); }
double unpack_double(std::int64_t i) { return std::bit_cast<double>(i); }
}  // namespace

// --- KhopSizeProtocol -------------------------------------------------------

KhopSizeProtocol::KhopSizeProtocol(int n, int ttl)
    : ttl_(ttl), seen_(static_cast<std::size_t>(n)) {
  if (ttl < 0) throw std::invalid_argument("ttl must be >= 0");
}

void KhopSizeProtocol::on_start(sim::NodeContext& ctx) {
  if (ttl_ == 0) return;
  ctx.broadcast({kKhop, ctx.node(), 1, 0, -1});
}

void KhopSizeProtocol::on_message(sim::NodeContext& ctx,
                                  const sim::Message& m) {
  const int v = ctx.node();
  if (m.origin == v) return;
  if (!seen_.insert(v, m.origin)) return;
  if (m.hops < ttl_) ctx.broadcast({kKhop, m.origin, m.hops + 1, 0, -1});
}

std::vector<int> KhopSizeProtocol::sizes() const {
  std::vector<int> out(seen_.nodes());
  for (std::size_t v = 0; v < seen_.nodes(); ++v) {
    out[v] = seen_.count(static_cast<int>(v));
  }
  return out;
}

// --- CentralityProtocol -----------------------------------------------------

CentralityProtocol::CentralityProtocol(std::vector<int> khop_sizes, int ttl,
                                       bool include_self)
    : khop_sizes_(std::move(khop_sizes)),
      ttl_(ttl),
      include_self_(include_self),
      seen_(khop_sizes_.size()),
      sum_(khop_sizes_.size(), 0),
      count_(khop_sizes_.size(), 0) {
  if (ttl < 0) throw std::invalid_argument("ttl must be >= 0");
}

void CentralityProtocol::on_start(sim::NodeContext& ctx) {
  if (ttl_ == 0) return;
  const int v = ctx.node();
  ctx.broadcast({kCentrality, v, 1, khop_sizes_[static_cast<std::size_t>(v)],
                 -1});
}

void CentralityProtocol::on_message(sim::NodeContext& ctx,
                                    const sim::Message& m) {
  const int v = ctx.node();
  if (m.origin == v) return;
  if (!seen_.insert(v, m.origin)) return;
  sum_[static_cast<std::size_t>(v)] += m.payload;
  ++count_[static_cast<std::size_t>(v)];
  if (m.hops < ttl_) {
    ctx.broadcast({kCentrality, m.origin, m.hops + 1, m.payload, -1});
  }
}

std::vector<double> CentralityProtocol::centrality() const {
  std::vector<double> out(khop_sizes_.size());
  for (std::size_t v = 0; v < khop_sizes_.size(); ++v) {
    std::int64_t sum = sum_[v];
    int count = count_[v];
    if (include_self_) {
      sum += khop_sizes_[v];
      ++count;
    }
    out[v] = count > 0 ? static_cast<double>(sum) / count
                       : static_cast<double>(khop_sizes_[v]);
  }
  return out;
}

// --- LocalMaxProtocol --------------------------------------------------------

LocalMaxProtocol::LocalMaxProtocol(std::vector<double> index, int ttl)
    : index_(std::move(index)),
      ttl_(ttl),
      seen_(index_.size()),
      critical_(index_.size(), 1) {
  if (ttl < 1) throw std::invalid_argument("ttl must be >= 1");
}

void LocalMaxProtocol::on_start(sim::NodeContext& ctx) {
  const int v = ctx.node();
  ctx.broadcast({kLocalMax, v, 1,
                 pack_double(index_[static_cast<std::size_t>(v)]), -1});
}

void LocalMaxProtocol::on_message(sim::NodeContext& ctx,
                                  const sim::Message& m) {
  const int v = ctx.node();
  if (m.origin == v) return;
  if (!seen_.insert(v, m.origin)) return;
  const double their = unpack_double(m.payload);
  const double mine = index_[static_cast<std::size_t>(v)];
  if (their > mine || (their == mine && m.origin < v)) {
    critical_[static_cast<std::size_t>(v)] = 0;
  }
  if (m.hops < ttl_) ctx.broadcast({kLocalMax, m.origin, m.hops + 1, m.payload, -1});
}

// --- VoronoiProtocol ----------------------------------------------------------

VoronoiProtocol::VoronoiProtocol(int n, std::vector<int> sites, int alpha)
    : sites_(std::move(sites)),
      site_index_of_node_(static_cast<std::size_t>(n), -1),
      alpha_(alpha),
      site_of_(static_cast<std::size_t>(n), -1),
      dist_(static_cast<std::size_t>(n), -1),
      parent_(static_cast<std::size_t>(n), -1),
      site2_of_(static_cast<std::size_t>(n), -1),
      dist2_(static_cast<std::size_t>(n), -1),
      via2_(static_cast<std::size_t>(n), -1),
      others_(static_cast<std::size_t>(n)) {
  if (alpha < 0) throw std::invalid_argument("alpha must be >= 0");
  std::sort(sites_.begin(), sites_.end());
  sites_.erase(std::unique(sites_.begin(), sites_.end()), sites_.end());
  for (std::size_t i = 0; i < sites_.size(); ++i) {
    if (sites_[i] < 0 || sites_[i] >= n) {
      throw std::out_of_range("site id out of range");
    }
    site_index_of_node_[static_cast<std::size_t>(sites_[i])] =
        static_cast<int>(i);
  }
}

void VoronoiProtocol::on_start(sim::NodeContext& ctx) {
  const int v = ctx.node();
  const int idx = site_index_of_node_[static_cast<std::size_t>(v)];
  if (idx == -1) return;
  site_of_[static_cast<std::size_t>(v)] = idx;
  dist_[static_cast<std::size_t>(v)] = 0;
  ctx.broadcast({kVoronoi, idx, 1, 0, -1});
}

void VoronoiProtocol::on_message(sim::NodeContext& ctx,
                                 const sim::Message& m) {
  const int v = ctx.node();
  const std::size_t vi = static_cast<std::size_t>(v);
  const int s = m.origin;
  const int d = m.hops;

  if (site_of_[vi] == -1) {
    // First record ever: adopt and forward. Within the adoption round the
    // engine's sorted delivery guarantees this is the smallest site id
    // (and smallest sender for it) among simultaneous arrivals.
    site_of_[vi] = s;
    dist_[vi] = d;
    parent_[vi] = m.sender;
    ctx.broadcast({kVoronoi, s, d + 1, 0, -1});
    return;
  }
  if (s == site_of_[vi]) return;  // duplicate from own cell: drop
  if (std::abs(d - dist_[vi]) > alpha_) return;  // too unbalanced: drop

  // Keep record (do not forward): the node is nearly equidistant to a
  // second site.
  auto [it, inserted] =
      others_[vi].try_emplace(s, VoronoiResult::NearbySite{s, d, m.sender});
  if (!inserted && (d < it->second.dist ||
                    (d == it->second.dist && m.sender < it->second.via))) {
    it->second = {s, d, m.sender};
  }
  const bool better = site2_of_[vi] == -1 || d < dist2_[vi] ||
                      (d == dist2_[vi] && s < site2_of_[vi]) ||
                      (d == dist2_[vi] && s == site2_of_[vi] &&
                       m.sender < via2_[vi]);
  if (better) {
    site2_of_[vi] = s;
    dist2_[vi] = d;
    via2_[vi] = m.sender;
  }
}

VoronoiResult VoronoiProtocol::result() const {
  VoronoiResult r;
  r.sites = sites_;
  r.site_of = site_of_;
  r.dist = dist_;
  r.parent = parent_;
  r.site2_of = site2_of_;
  r.dist2 = dist2_;
  r.via2 = via2_;
  const std::size_t n = site_of_.size();
  r.is_segment.assign(n, 0);
  r.is_voronoi_node.assign(n, 0);
  r.nearby.assign(n, {});
  for (std::size_t v = 0; v < n; ++v) {
    if (r.site2_of[v] != -1) r.is_segment[v] = 1;
    if (others_[v].size() >= 2) r.is_voronoi_node[v] = 1;
    if (r.site_of[v] != -1) {
      r.nearby[v].push_back({r.site_of[v], r.dist[v], r.parent[v]});
      for (const auto& [site, rec] : others_[v]) r.nearby[v].push_back(rec);
      std::sort(r.nearby[v].begin(), r.nearby[v].end(),
                [](const auto& a, const auto& b) { return a.site < b.site; });
    }
  }
  return r;
}

// --- completeness -------------------------------------------------------------

StageCompleteness compute_stage_completeness(const net::Graph& g,
                                             const Params& params,
                                             const DistributedRun& run) {
  StageCompleteness c;
  if (params.k > 0 &&
      static_cast<int>(run.index.khop_size.size()) == g.n()) {
    for (int v = 0; v < g.n(); ++v) {
      if (g.degree(v) > 0 && run.index.khop_size[static_cast<std::size_t>(v)] == 0) {
        ++c.khop_empty;
      }
    }
  }
  c.critical_count = static_cast<int>(run.critical_nodes.size());
  if (static_cast<int>(run.voronoi.site_of.size()) == g.n() && g.n() > 0) {
    for (int v = 0; v < g.n(); ++v) {
      if (run.voronoi.site_of[static_cast<std::size_t>(v)] == -1) {
        ++c.voronoi_unassigned;
      }
    }
    c.voronoi_coverage =
        1.0 - static_cast<double>(c.voronoi_unassigned) / g.n();
  }
  return c;
}

void apply_completeness_warnings(const StageCompleteness& c, Diagnostics& d) {
  if (c.khop_empty > 0) {
    d.warn("stage 1: " + std::to_string(c.khop_empty) +
           " connected node(s) learned an empty k-hop neighborhood "
           "(crashed, asleep, or cut off during the flood)");
  }
  if (c.critical_count == 0) {
    d.warn("stage 1: the local-max flood produced no critical nodes");
  }
  if (c.voronoi_unassigned > 0) {
    d.warn("stage 2: " + std::to_string(c.voronoi_unassigned) +
           " node(s) unreached by every site flood (coverage " +
           std::to_string(c.voronoi_coverage) + ")");
  }
}

// --- run_distributed_stages ---------------------------------------------------

DistributedRun run_distributed_stages(const net::Graph& g,
                                      const Params& params) {
  sim::Engine engine(g);
  return run_distributed_stages(g, params, engine);
}

DistributedRun run_distributed_stages(const net::Graph& g, const Params& params,
                                      sim::Engine& engine) {
  params.validate();
  DistributedRun run;

  // One span per protocol: the measurement lands in the trace sink (when
  // installed), the metrics registry, and the run's StageTrace.
  const auto timed = [&](const char* name, sim::RunStats& stats,
                         sim::Protocol& protocol) {
    ScopedStage stage(run.trace, name, "proto");
    stage.set_nodes(g.n());
    stats = engine.run(protocol);
    stage.set_messages(stats.transmissions);
  };

  KhopSizeProtocol khop(g.n(), params.k);
  timed("proto:khop", run.khop_stats, khop);
  run.index.khop_size = khop.sizes();

  CentralityProtocol cent(run.index.khop_size, params.l,
                          params.centrality_includes_self);
  timed("proto:centrality", run.centrality_stats, cent);
  run.index.centrality = cent.centrality();

  run.index.index.resize(static_cast<std::size_t>(g.n()));
  for (std::size_t v = 0; v < run.index.index.size(); ++v) {
    run.index.index[v] = 0.5 * (static_cast<double>(run.index.khop_size[v]) +
                                run.index.centrality[v]);
  }

  LocalMaxProtocol lmax(run.index.index, params.effective_local_max_radius());
  timed("proto:localmax", run.localmax_stats, lmax);
  const std::vector<char> crit = lmax.critical();
  for (int v = 0; v < g.n(); ++v) {
    if (crit[static_cast<std::size_t>(v)]) run.critical_nodes.push_back(v);
  }

  VoronoiProtocol vor(g.n(), run.critical_nodes, params.alpha);
  timed("proto:voronoi", run.voronoi_stats, vor);
  run.voronoi = vor.result();
  run.completeness = compute_stage_completeness(g, params, run);
  return run;
}

DistributedExtraction extract_skeleton_distributed(const net::Graph& g,
                                                   const Params& params,
                                                   int jitter,
                                                   std::uint64_t jitter_seed,
                                                   double loss,
                                                   int engine_threads) {
  sim::Engine engine(g);
  engine.set_jitter(jitter, jitter_seed);
  engine.set_loss(loss, jitter_seed ^ 0x10557);
  engine.set_threads(engine_threads);
  DistributedRun run = run_distributed_stages(g, params, engine);
  DistributedExtraction out;
  out.stats = run.total();
  const StageCompleteness completeness = run.completeness;
  out.result =
      complete_extraction(g, params, std::move(run.index),
                          std::move(run.critical_nodes), std::move(run.voronoi));
  apply_completeness_warnings(completeness, out.result.diagnostics);
  // Prepend the per-protocol entries so the trace reads as one ordered
  // stage list: protocols first, completion stages after.
  out.result.trace.stages.insert(out.result.trace.stages.begin(),
                                 run.trace.stages.begin(),
                                 run.trace.stages.end());
  return out;
}

}  // namespace skelex::core
