// skelex/core/protocols.h
//
// Distributed implementations of the algorithm's communication stages
// (§III-A, §III-B), expressed as message-passing protocols on
// sim::Engine. Each protocol is the literal flooding scheme of the
// paper; tests assert the per-node results are identical to the
// centralized implementations in core/index.h and core/voronoi.h, and
// bench_thm5_complexity uses the engine's message/round accounting to
// reproduce Theorem 5.
//
// All four protocols satisfy the engine's handler-isolation contract
// (sim::Protocol::parallel_safe) and may run under intra-round parallel
// delivery: a handler invoked for node v writes only v's own slots —
// its SeenTable row, its cell of the per-node result vectors, its map
// of nearby-site offers — and reads nothing belonging to other nodes
// (cross-node data arrives exclusively in messages; note e.g. that
// CentralityProtocol carries |N_k| in the message payload rather than
// reading khop_sizes_[origin]). Adjacent elements of a per-node vector
// are distinct memory locations, so concurrent writes to different
// slots are race-free even for vector<char>. tests/test_engine_parallel
// asserts the resulting bit-identity at 1/2/8 threads.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <vector>

#include "core/config.h"
#include "core/pipeline.h"
#include "core/index.h"
#include "core/stage_trace.h"
#include "core/voronoi.h"
#include "sim/engine.h"

namespace skelex::core {

// Per-node "origin already seen" table for the flood protocols: one
// sorted flat vector per node. A node's table holds at most its k-hop
// neighborhood (tens of entries at the paper's TTLs), where a sorted
// vector beats a hash set — no per-insert allocation and the lookup
// touches one cache line.
class SeenTable {
 public:
  explicit SeenTable(std::size_t n) : rows_(n) {}

  // Records (node, origin); returns true when it was not yet present.
  bool insert(int node, int origin) {
    auto& row = rows_[static_cast<std::size_t>(node)];
    const auto it = std::lower_bound(row.begin(), row.end(), origin);
    if (it != row.end() && *it == origin) return false;
    row.insert(it, origin);
    return true;
  }

  int count(int node) const {
    return static_cast<int>(rows_[static_cast<std::size_t>(node)].size());
  }

  std::size_t nodes() const { return rows_.size(); }

 private:
  std::vector<std::vector<int>> rows_;
};

// --- Stage 1, round 1: controlled k-hop flood ------------------------------
// Every node floods its id with a hop counter; receivers record unseen
// origins and forward while the counter is below the TTL. Afterwards
// sizes()[v] == |N_k(v)|.
class KhopSizeProtocol final : public sim::Protocol {
 public:
  KhopSizeProtocol(int n, int ttl);
  void on_start(sim::NodeContext& ctx) override;
  void on_message(sim::NodeContext& ctx, const sim::Message& m) override;
  std::vector<int> sizes() const;

 private:
  int ttl_;
  SeenTable seen_;
};

// --- Stage 1, round 2: l-hop broadcast of the k-hop sizes ------------------
// Every node floods (id, |N_k|) with TTL l; receivers average the values.
// centrality()[v] == c_l(v).
class CentralityProtocol final : public sim::Protocol {
 public:
  CentralityProtocol(std::vector<int> khop_sizes, int ttl, bool include_self);
  void on_start(sim::NodeContext& ctx) override;
  void on_message(sim::NodeContext& ctx, const sim::Message& m) override;
  std::vector<double> centrality() const;

 private:
  std::vector<int> khop_sizes_;
  int ttl_;
  bool include_self_;
  SeenTable seen_;
  std::vector<std::int64_t> sum_;
  std::vector<int> count_;
};

// --- Stage 1, decision: local-max test over r hops --------------------------
// Every node floods (id, index) with TTL r; a node whose index is beaten
// (ties: smaller id wins) withdraws. critical()[v] == node v declares
// itself a critical skeleton node.
class LocalMaxProtocol final : public sim::Protocol {
 public:
  LocalMaxProtocol(std::vector<double> index, int ttl);
  void on_start(sim::NodeContext& ctx) override;
  void on_message(sim::NodeContext& ctx, const sim::Message& m) override;
  std::vector<char> critical() const { return critical_; }

 private:
  std::vector<double> index_;
  int ttl_;
  SeenTable seen_;
  std::vector<char> critical_;
};

// --- Stage 2: Voronoi flood --------------------------------------------------
// Sites flood; every node adopts + forwards the first record (within a
// round, ties resolve to the smallest site id / smallest sender: the
// engine's deterministic delivery order) and records — without
// forwarding — a later record from a different site within alpha hops of
// the adopted distance.
class VoronoiProtocol final : public sim::Protocol {
 public:
  VoronoiProtocol(int n, std::vector<int> sites, int alpha);
  void on_start(sim::NodeContext& ctx) override;
  void on_message(sim::NodeContext& ctx, const sim::Message& m) override;
  // Assembles the same structure the centralized build_voronoi returns.
  VoronoiResult result() const;

 private:
  std::vector<int> sites_;
  std::vector<int> site_index_of_node_;  // -1 for non-sites
  int alpha_;
  std::vector<int> site_of_, dist_, parent_;
  std::vector<int> site2_of_, dist2_, via2_;
  // Per node: best offer per other site (site -> {site, dist, via}).
  std::vector<std::map<int, VoronoiResult::NearbySite>> others_;
};

// --- Whole communication phase ----------------------------------------------

// Per-stage completeness of a distributed run: how much of the network
// actually produced stage results. On a fault-free run every field is
// trivial (no empty k-hop sets, full Voronoi coverage); under crashes,
// sleep windows, or link churn these quantify the degradation.
struct StageCompleteness {
  int khop_empty = 0;          // non-isolated nodes with |N_k| == 0
  int critical_count = 0;      // stage-1 output size
  int voronoi_unassigned = 0;  // nodes no site flood reached
  double voronoi_coverage = 1.0;  // assigned fraction of nodes
};

// Runs the three stage-1 floods and the stage-2 flood back to back on one
// engine and returns results + per-stage statistics.
struct DistributedRun {
  IndexData index;
  std::vector<int> critical_nodes;
  VoronoiResult voronoi;
  sim::RunStats khop_stats;
  sim::RunStats centrality_stats;
  sim::RunStats localmax_stats;
  sim::RunStats voronoi_stats;
  StageCompleteness completeness;
  // One entry per protocol, in execution order; messages are the
  // engine's real transmission counts (not the centralized scan proxy).
  StageTrace trace;
  sim::RunStats total() const {
    return khop_stats + centrality_stats + localmax_stats + voronoi_stats;
  }
};

StageCompleteness compute_stage_completeness(const net::Graph& g,
                                             const Params& params,
                                             const DistributedRun& run);

// Appends human-readable warnings for any non-trivial completeness
// deficit (used by the distributed and reliable extraction fronts).
void apply_completeness_warnings(const StageCompleteness& c, Diagnostics& d);

DistributedRun run_distributed_stages(const net::Graph& g, const Params& params);

// Same, on a caller-provided engine — e.g. one with timing jitter
// enabled (Engine::set_jitter) to stress the paper's §III-B assumption
// that floods start simultaneously and travel at the same speed.
DistributedRun run_distributed_stages(const net::Graph& g, const Params& params,
                                      sim::Engine& engine);

// Full extraction with stages 1-2 executed as messages (on an engine
// with `jitter` extra delay rounds per transmission and reception loss
// probability `loss`) and stages 3+ completed from those per-node
// results. With jitter = 0 and loss = 0 the output is identical to
// extract_skeleton. `engine_threads` sets the engine's intra-round
// parallelism (0 = sim::default_engine_threads(), i.e. the
// SKELEX_ENGINE_THREADS knob); results are bit-identical at any value.
struct DistributedExtraction {
  SkeletonResult result;
  sim::RunStats stats;  // total radio cost of stages 1-2
};
DistributedExtraction extract_skeleton_distributed(
    const net::Graph& g, const Params& params = {}, int jitter = 0,
    std::uint64_t jitter_seed = 1, double loss = 0.0, int engine_threads = 0);

}  // namespace skelex::core
