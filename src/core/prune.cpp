#include "core/prune.h"

#include <stdexcept>
#include <vector>

namespace skelex::core {

namespace {
// Walks from leaf along the degree-2 chain. Returns the chain (leaf
// first) and sets `terminal` to the node after the chain (a junction with
// degree >= 3), or -1 when the whole component is a bare path.
std::vector<int> walk_branch(const SkeletonGraph& sk, int leaf, int& terminal) {
  std::vector<int> chain{leaf};
  int prev = -1;
  int cur = leaf;
  while (true) {
    int next = -1;
    for (int w : sk.neighbors(cur)) {
      if (w != prev) {
        next = w;
        break;
      }
    }
    if (next == -1) {  // isolated path ended at another leaf
      terminal = -1;
      return chain;
    }
    if (sk.degree(next) >= 3) {
      terminal = next;
      return chain;
    }
    chain.push_back(next);
    prev = cur;
    cur = next;
  }
}
}  // namespace

int prune_short_branches(SkeletonGraph& sk, int prune_len) {
  if (prune_len < 0) throw std::invalid_argument("prune_len must be >= 0");
  int removed = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    // Batch semantics: decide every branch against the SAME structure,
    // then delete. Otherwise deleting one branch can turn a junction
    // into a path mid-pass and spare sibling branches arbitrarily,
    // making the result depend on leaf iteration order.
    std::vector<std::vector<int>> doomed;
    for (int leaf : sk.leaves()) {
      int terminal = -1;
      const std::vector<int> chain = walk_branch(sk, leaf, terminal);
      if (terminal == -1) continue;  // bare path component: keep it
      if (static_cast<int>(chain.size()) < prune_len) {
        doomed.push_back(chain);
      }
    }
    for (const std::vector<int>& chain : doomed) {
      for (int v : chain) {
        if (sk.has_node(v)) {
          sk.remove_node(v);
          ++removed;
          changed = true;
        }
      }
    }
  }
  return removed;
}

}  // namespace skelex::core
