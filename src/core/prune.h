// skelex/core/prune.h
//
// Stage 4b: pruning (§III-D). Leaf branches of the skeleton shorter than
// `prune_len` hops are trimmed (they are artifacts of boundary noise or
// of over-identified critical nodes), in the manner of CASE. Branches
// between two junctions and loop edges are never removed, and a skeleton
// component that is a bare path keeps at least its longest path (the
// skeleton of a corridor IS a short path; deleting it would erase the
// component).
#pragma once

#include "core/skeleton_graph.h"

namespace skelex::core {

// Removes short leaf branches in place; returns the number of nodes
// removed. Runs to a fixpoint.
int prune_short_branches(SkeletonGraph& sk, int prune_len);

}  // namespace skelex::core
