#include "core/reliable.h"

#include <algorithm>
#include <stdexcept>
#include <tuple>
#include <utility>

#include "net/bfs.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace skelex::core {

namespace {
// Wrapper packet kinds, far above any inner protocol's discriminators
// (the inner kind rides in Message::aux).
constexpr int kData = 1 << 20;        // sequenced; carries an inner message
constexpr int kFrame = kData + 1;     // sequenced; end-of-round barrier marker
constexpr int kPing = kData + 2;      // sequenced; liveness probe
constexpr int kAck = kData + 3;       // unsequenced; cumulative ack (unicast)
constexpr int kRetryTimer = kData + 4;   // self-timer; payload = seq
constexpr int kWatchdogTimer = kData + 5;  // self-timer; stall detection

// Delivery order of the lossless engine for one receiver (the engine
// additionally keys on the receiver id first).
bool canonical_less(const sim::Message& a, const sim::Message& b) {
  return std::tie(a.kind, a.hops, a.origin, a.sender, a.payload, a.seq,
                  a.aux) < std::tie(b.kind, b.hops, b.origin, b.sender,
                                    b.payload, b.seq, b.aux);
}
}  // namespace

ReliableStats& ReliableStats::operator+=(const ReliableStats& o) {
  data_sent += o.data_sent;
  frames_sent += o.frames_sent;
  acks_sent += o.acks_sent;
  pings_sent += o.pings_sent;
  retransmissions += o.retransmissions;
  duplicates += o.duplicates;
  implicit_acks += o.implicit_acks;
  gave_up_links += o.gave_up_links;
  overflow_data += o.overflow_data;
  stalled_nodes += o.stalled_nodes;
  return *this;
}

// Context handed to the inner protocol: logical round, collected sends.
class ReliableFloodWrapper::InnerCtx final : public sim::NodeContext {
 public:
  InnerCtx(sim::NodeContext& outer, int logical_round,
           std::vector<sim::Message>& out)
      : outer_(outer), round_(logical_round), out_(out) {}

  int node() const override { return outer_.node(); }
  int round() const override { return round_; }
  std::span<const int> neighbors() const override {
    return outer_.neighbors();
  }
  void broadcast(sim::Message m) override { out_.push_back(m); }
  void send(int, sim::Message) override {
    throw std::logic_error(
        "ReliableFloodWrapper wraps broadcast-only flood protocols");
  }
  void schedule(int, sim::Message) override {
    throw std::logic_error(
        "ReliableFloodWrapper: inner protocols may not use timers");
  }

 private:
  sim::NodeContext& outer_;
  int round_;
  std::vector<sim::Message>& out_;
};

ReliableFloodWrapper::ReliableFloodWrapper(sim::Protocol& inner,
                                           const net::Graph& g,
                                           ReliableOptions opts)
    : inner_(inner), g_(g), opts_(opts), st_(static_cast<std::size_t>(g.n())) {
  if (opts_.max_logical_rounds < 0) {
    throw std::invalid_argument("max_logical_rounds must be >= 0");
  }
  if (opts_.max_retries < 0) {
    throw std::invalid_argument("max_retries must be >= 0");
  }
  if (opts_.initial_backoff < 1 || opts_.max_backoff < opts_.initial_backoff) {
    throw std::invalid_argument("need 1 <= initial_backoff <= max_backoff");
  }
  if (opts_.watchdog_rounds < 0) {
    throw std::invalid_argument("watchdog_rounds must be >= 0 (0 disables)");
  }
}

void ReliableFloodWrapper::on_start(sim::NodeContext& ctx) {
  NodeState& st = state(ctx.node());
  st.data_by_round.resize(static_cast<std::size_t>(opts_.max_logical_rounds) +
                          2);
  st.frame_seq.assign(static_cast<std::size_t>(opts_.max_logical_rounds) + 2,
                      0);
  std::vector<sim::Message> sends;
  InnerCtx ictx(ctx, 0, sends);
  inner_.on_start(ictx);
  st.step_done = 0;
  flush_inner_sends(ctx, st, 0, sends);
  try_progress(ctx);
}

void ReliableFloodWrapper::transmit(sim::NodeContext& ctx, NodeState& st,
                                    sim::Message pkt) {
  pkt.seq = st.next_seq++;
  if (pkt.kind == kFrame &&
      pkt.hops < static_cast<int>(st.frame_seq.size())) {
    st.frame_seq[static_cast<std::size_t>(pkt.hops)] = pkt.seq;
  }
  const std::span<const int> nbrs = ctx.neighbors();
  if (nbrs.empty()) return;  // no listeners, no radio
  ctx.broadcast(pkt);
  Outgoing o;
  o.pkt = pkt;
  for (int w : nbrs) {
    if (!st.dead.contains(w)) o.unacked.insert(w);
  }
  if (o.unacked.empty()) return;  // everyone already given up on
  o.backoff = opts_.initial_backoff;
  const int seq = pkt.seq;
  st.outgoing.emplace(seq, std::move(o));
  ctx.schedule(opts_.initial_backoff, {kRetryTimer, 0, 0, seq, -1, 0, 0});
}

void ReliableFloodWrapper::flush_inner_sends(sim::NodeContext& ctx,
                                             NodeState& st, int h,
                                             std::vector<sim::Message>& sends) {
  for (const sim::Message& m : sends) {
    if (m.hops != h + 1) {
      throw std::logic_error(
          "ReliableFloodWrapper: inner protocol is not a unit-speed flood "
          "(a message's hops field must equal its logical round)");
    }
    if (m.hops > opts_.max_logical_rounds) {
      ++st.counters.overflow_data;  // beyond the configured flood horizon
      continue;
    }
    transmit(ctx, st, {kData, m.origin, m.hops, m.payload, -1, 0, m.kind});
    ++st.counters.data_sent;
  }
  const int next = h + 1;
  if (next <= opts_.max_logical_rounds) {
    transmit(ctx, st,
             {kFrame, 0, next, static_cast<std::int64_t>(sends.size()), -1, 0,
              0});
    ++st.counters.frames_sent;
  }
}

void ReliableFloodWrapper::try_progress(sim::NodeContext& ctx) {
  const int v = ctx.node();
  NodeState& st = state(v);
  while (st.step_done < opts_.max_logical_rounds) {
    const int h = st.step_done + 1;
    bool ready = true;
    for (int w : g_.neighbors(v)) {
      if (st.dead.contains(w)) continue;
      const auto it = st.frame_from.find(w);
      if (it == st.frame_from.end() || it->second < h) {
        ready = false;
        break;
      }
    }
    if (!ready) {
      arm_watchdog(ctx, st);
      return;
    }
    execute_step(ctx, st, h);
  }
}

void ReliableFloodWrapper::execute_step(sim::NodeContext& ctx, NodeState& st,
                                        int h) {
  std::vector<sim::Message> inbox =
      std::move(st.data_by_round[static_cast<std::size_t>(h)]);
  std::sort(inbox.begin(), inbox.end(), canonical_less);
  std::vector<sim::Message> sends;
  InnerCtx ictx(ctx, h, sends);
  for (const sim::Message& m : inbox) inner_.on_message(ictx, m);
  st.step_done = h;
  flush_inner_sends(ctx, st, h, sends);
}

void ReliableFloodWrapper::on_message(sim::NodeContext& ctx,
                                      const sim::Message& m) {
  switch (m.kind) {
    case kRetryTimer:
      handle_timer(ctx, m);
      return;
    case kWatchdogTimer:
      handle_watchdog(ctx);
      return;
    case kAck: {
      NodeState& st = state(ctx.node());
      ack_from(st, m.sender, static_cast<int>(m.payload), false);
      try_progress(ctx);
      return;
    }
    default:
      break;
  }
  // Sequenced packet (DATA / FRAME / PING) from a neighbor.
  NodeState& st = state(ctx.node());
  const int w = m.sender;
  const int exp = st.next_expected.try_emplace(w, 1).first->second;
  if (m.seq < exp) {
    // Duplicate — usually a retransmission we already have; re-ack so the
    // sender stops.
    ++st.counters.duplicates;
    send_ack(ctx, st, w);
    return;
  }
  if (m.seq > exp) {
    st.ooo[w][m.seq] = m;  // hole: buffer until the retransmission fills it
    return;
  }
  st.next_expected[w] = m.seq + 1;
  process_in_order(ctx, st, m);
  // Drain any buffered successors that are now in order.
  for (auto it = st.ooo.find(w); it != st.ooo.end() && !it->second.empty();) {
    const auto first = it->second.begin();
    if (first->first != st.next_expected[w]) break;
    const sim::Message next = first->second;
    it->second.erase(first);
    st.next_expected[w] = next.seq + 1;
    process_in_order(ctx, st, next);
  }
  try_progress(ctx);
}

void ReliableFloodWrapper::process_in_order(sim::NodeContext& ctx,
                                            NodeState& st,
                                            const sim::Message& m) {
  const int w = m.sender;
  switch (m.kind) {
    case kData: {
      const int h = m.hops;
      if (h < 1 || h > opts_.max_logical_rounds || h <= st.step_done) {
        ++st.counters.overflow_data;  // late or beyond-horizon data
        return;
      }
      // Reconstruct the inner message exactly as the lossless engine
      // would deliver it (kind from aux, seq/aux zeroed).
      st.data_by_round[static_cast<std::size_t>(h)].push_back(
          {m.aux, m.origin, m.hops, m.payload, w, 0, 0});
      return;
    }
    case kFrame: {
      const int h = m.hops;
      auto [it, inserted] = st.frame_from.try_emplace(w, h);
      if (!inserted && it->second < h) it->second = h;
      // Implicit cumulative ack: w's FRAME(h) proves it processed my
      // FRAME(h-1) — and, in order, everything I sent before that.
      if (h >= 2 && h - 1 < static_cast<int>(st.frame_seq.size()) &&
          st.frame_seq[static_cast<std::size_t>(h - 1)] > 0) {
        ack_from(st, w, st.frame_seq[static_cast<std::size_t>(h - 1)], true);
      }
      // Nothing follows the final round's FRAME, so ack it explicitly.
      if (h == opts_.max_logical_rounds) send_ack(ctx, st, w);
      return;
    }
    case kPing:
      send_ack(ctx, st, w);
      return;
    default:
      return;  // unknown sequenced packet: consume silently
  }
}

void ReliableFloodWrapper::ack_from(NodeState& st, int neighbor, int upto,
                                    bool implicit) {
  bool any = false;
  for (auto it = st.outgoing.begin();
       it != st.outgoing.end() && it->first <= upto;) {
    if (it->second.unacked.erase(neighbor) > 0) any = true;
    if (it->second.unacked.empty()) {
      it = st.outgoing.erase(it);
    } else {
      ++it;
    }
  }
  if (any && implicit) ++st.counters.implicit_acks;
}

void ReliableFloodWrapper::send_ack(sim::NodeContext& ctx, NodeState& st,
                                    int to) {
  const int cumulative = st.next_expected.try_emplace(to, 1).first->second - 1;
  ctx.send(to, {kAck, 0, 0, cumulative, -1, 0, 0});
  ++st.counters.acks_sent;
}

void ReliableFloodWrapper::handle_timer(sim::NodeContext& ctx,
                                        const sim::Message& m) {
  NodeState& st = state(ctx.node());
  const auto it = st.outgoing.find(static_cast<int>(m.payload));
  if (it == st.outgoing.end()) return;  // fully acked meanwhile
  Outgoing& o = it->second;
  if (o.retries >= opts_.max_retries) {
    // Exhausted: the remaining listeners are unreachable (crashed, or a
    // permanently dead link). Exclude them from the barrier so the rest
    // of the network keeps going.
    const std::vector<int> lost(o.unacked.begin(), o.unacked.end());
    st.outgoing.erase(it);
    for (int w : lost) {
      ++st.counters.gave_up_links;
      mark_dead(st, w);
    }
    try_progress(ctx);
    return;
  }
  ++o.retries;
  ++st.counters.retransmissions;
  ctx.note_retransmission();
  obs::Tracer::instant("retransmit", "reliable",
                       {{"node", ctx.node()},
                        {"seq", o.pkt.seq},
                        {"retry", o.retries}});
  ctx.broadcast(o.pkt);
  o.backoff = std::min(o.backoff * 2, opts_.max_backoff);
  ctx.schedule(o.backoff, m);
}

void ReliableFloodWrapper::mark_dead(NodeState& st, int neighbor) {
  if (!st.dead.insert(neighbor).second) return;
  for (auto it = st.outgoing.begin(); it != st.outgoing.end();) {
    it->second.unacked.erase(neighbor);
    if (it->second.unacked.empty()) {
      it = st.outgoing.erase(it);
    } else {
      ++it;
    }
  }
}

void ReliableFloodWrapper::arm_watchdog(sim::NodeContext& ctx, NodeState& st) {
  if (st.watchdog_armed || opts_.watchdog_rounds == 0) return;
  st.watchdog_armed = true;
  st.watchdog_step = st.step_done;
  ctx.schedule(opts_.watchdog_rounds, {kWatchdogTimer, 0, 0, 0, -1, 0, 0});
}

void ReliableFloodWrapper::handle_watchdog(sim::NodeContext& ctx) {
  NodeState& st = state(ctx.node());
  st.watchdog_armed = false;
  if (st.step_done >= opts_.max_logical_rounds) return;  // finished
  if (st.step_done == st.watchdog_step && st.outgoing.empty()) {
    // Stalled a full watchdog period with nothing in flight: probe the
    // neighborhood. Live neighbors ACK the sequenced ping; a crashed one
    // lets it exhaust its retries, which marks it dead and unblocks us.
    transmit(ctx, st, {kPing, 0, 0, 0, -1, 0, 0});
    ++st.counters.pings_sent;
  }
  arm_watchdog(ctx, st);
}

bool ReliableFloodWrapper::complete() const { return stats().stalled_nodes == 0; }

ReliableStats ReliableFloodWrapper::stats() const {
  // Per-node counters are summed in node-id order: the total is the
  // same at any engine thread count (and addition of the int64 fields
  // is order-independent anyway).
  ReliableStats s;
  for (const NodeState& st : st_) {
    s += st.counters;
    // Counts crashed nodes too: they never ran on_start (step_done -1).
    if (st.step_done < opts_.max_logical_rounds) ++s.stalled_nodes;
  }
  return s;
}

// --- Reliable stage runner ----------------------------------------------------

ReliableStats ReliableRun::total_rel() const {
  ReliableStats s = khop_rel;
  s += centrality_rel;
  s += localmax_rel;
  s += voronoi_rel;
  return s;
}

namespace {
// Whole-phase wrapper accounting into the global registry (simulation
// facts, deterministic at any thread count — see obs/metrics.h).
void record_reliable_metrics(const ReliableStats& s) {
  auto& reg = obs::Registry::global();
  static const obs::Counter runs = reg.counter("reliable_runs");
  static const obs::Counter data = reg.counter("reliable_data_sent");
  static const obs::Counter frames = reg.counter("reliable_frames_sent");
  static const obs::Counter acks = reg.counter("reliable_acks_sent");
  static const obs::Counter retx = reg.counter("reliable_retransmissions");
  static const obs::Counter dups = reg.counter("reliable_duplicates");
  static const obs::Counter gave = reg.counter("reliable_gave_up_links");
  static const obs::Counter stalled = reg.counter("reliable_stalled_nodes");
  runs.inc();
  data.inc(s.data_sent);
  frames.inc(s.frames_sent);
  acks.inc(s.acks_sent);
  retx.inc(s.retransmissions);
  dups.inc(s.duplicates);
  gave.inc(s.gave_up_links);
  stalled.inc(s.stalled_nodes);
}
}  // namespace

ReliableRun run_distributed_stages_reliable(const net::Graph& g,
                                            const Params& params,
                                            sim::Engine& engine,
                                            const ReliableOptions& base) {
  params.validate();
  ReliableRun out;
  DistributedRun& run = out.run;
  ReliableOptions opts = base;

  // One span per wrapped protocol — same stage names as the lossless
  // runner (so traces line up side by side) under the "reliable" cat;
  // messages are the engine's transmissions including wrapper overhead.
  {
    ScopedStage stage(run.trace, "proto:khop", "reliable");
    stage.set_nodes(g.n());
    KhopSizeProtocol khop(g.n(), params.k);
    opts.max_logical_rounds = params.k;
    ReliableFloodWrapper w(khop, g, opts);
    run.khop_stats = engine.run(w);
    out.khop_rel = w.stats();
    run.index.khop_size = khop.sizes();
    stage.set_messages(run.khop_stats.transmissions);
  }
  {
    ScopedStage stage(run.trace, "proto:centrality", "reliable");
    stage.set_nodes(g.n());
    CentralityProtocol cent(run.index.khop_size, params.l,
                            params.centrality_includes_self);
    opts.max_logical_rounds = params.l;
    ReliableFloodWrapper w(cent, g, opts);
    run.centrality_stats = engine.run(w);
    out.centrality_rel = w.stats();
    run.index.centrality = cent.centrality();
    stage.set_messages(run.centrality_stats.transmissions);
  }
  run.index.index.resize(static_cast<std::size_t>(g.n()));
  for (std::size_t v = 0; v < run.index.index.size(); ++v) {
    run.index.index[v] = 0.5 * (static_cast<double>(run.index.khop_size[v]) +
                                run.index.centrality[v]);
  }
  {
    ScopedStage stage(run.trace, "proto:localmax", "reliable");
    stage.set_nodes(g.n());
    LocalMaxProtocol lmax(run.index.index,
                          params.effective_local_max_radius());
    opts.max_logical_rounds = params.effective_local_max_radius();
    ReliableFloodWrapper w(lmax, g, opts);
    run.localmax_stats = engine.run(w);
    out.localmax_rel = w.stats();
    const std::vector<char> crit = lmax.critical();
    for (int v = 0; v < g.n(); ++v) {
      if (crit[static_cast<std::size_t>(v)]) run.critical_nodes.push_back(v);
    }
    stage.set_messages(run.localmax_stats.transmissions);
  }
  {
    ScopedStage stage(run.trace, "proto:voronoi", "reliable");
    stage.set_nodes(g.n());
    // Flood horizon: the farthest node adopts at its site distance; the
    // last within-alpha offers travel one hop further, and alpha extra
    // slack absorbs adoption along slightly longer paths under churn.
    // (A deployment would provision this as a network-diameter bound.)
    int horizon = 0;
    if (!run.critical_nodes.empty()) {
      const net::MultiSourceBfs bfs =
          net::multi_source_bfs(g, run.critical_nodes);
      for (int d : bfs.dist) {
        if (d != net::kUnreached) horizon = std::max(horizon, d);
      }
      horizon += 1 + params.alpha;
    }
    VoronoiProtocol vor(g.n(), run.critical_nodes, params.alpha);
    opts.max_logical_rounds = horizon;
    ReliableFloodWrapper w(vor, g, opts);
    run.voronoi_stats = engine.run(w);
    out.voronoi_rel = w.stats();
    run.voronoi = vor.result();
    stage.set_messages(run.voronoi_stats.transmissions);
  }
  run.completeness = compute_stage_completeness(g, params, run);
  record_reliable_metrics(out.total_rel());
  return out;
}

ReliableExtraction extract_skeleton_reliable(const net::Graph& g,
                                             const Params& params,
                                             sim::Engine& engine,
                                             const ReliableOptions& base) {
  obs::ScopedSpan span("extract_skeleton_reliable", "pipeline");
  ReliableRun rr = run_distributed_stages_reliable(g, params, engine, base);
  ReliableExtraction out;
  out.stats = rr.run.total();
  out.reliability = rr.total_rel();
  const StageCompleteness completeness = rr.run.completeness;
  out.result = complete_extraction(g, params, std::move(rr.run.index),
                                   std::move(rr.run.critical_nodes),
                                   std::move(rr.run.voronoi));
  apply_completeness_warnings(completeness, out.result.diagnostics);
  // Prepend the per-protocol entries so the trace reads as one ordered
  // stage list: protocols first, completion stages after.
  out.result.trace.stages.insert(out.result.trace.stages.begin(),
                                 rr.run.trace.stages.begin(),
                                 rr.run.trace.stages.end());
  span.arg("nodes", g.n());
  span.arg("retransmissions", out.reliability.retransmissions);
  if (out.reliability.stalled_nodes > 0) {
    out.result.diagnostics.warn(
        "reliable flood: " + std::to_string(out.reliability.stalled_nodes) +
        " node(s) never completed every logical round");
  }
  if (out.reliability.gave_up_links > 0) {
    out.result.diagnostics.warn(
        "reliable flood: gave up on " +
        std::to_string(out.reliability.gave_up_links) +
        " unreachable (packet, neighbor) pair(s)");
  }
  if (out.stats.hit_round_cap) {
    out.result.diagnostics.warn(
        "simulation hit the round cap before quiescence; results are "
        "incomplete");
  }
  return out;
}

}  // namespace skelex::core
