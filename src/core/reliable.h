// skelex/core/reliable.h
//
// Reliable flooding over lossy links: a wrapper protocol that layers
// per-neighbor acknowledgement and bounded retransmission underneath any
// unit-speed flood protocol (KhopSizeProtocol, CentralityProtocol,
// LocalMaxProtocol, VoronoiProtocol), so that the inner protocol's
// per-node results under reception loss are BITWISE IDENTICAL to its
// lossless run.
//
// Why identical and not merely "close": the paper's flood protocols are
// order-sensitive (the Voronoi stage adopts the FIRST record to arrive;
// ties resolve through the engine's canonical delivery order). Simply
// retransmitting lost frames changes arrival rounds and therefore
// results. The wrapper therefore restores full logical synchrony — it
// is a flooding synchronizer:
//
//   * Every wrapper packet a node broadcasts carries a per-sender
//     sequence number; receivers process each neighbor's packets in
//     order (out-of-order arrivals are buffered).
//   * Inner messages ride in DATA packets. Their `hops` field IS their
//     logical round: a unit-speed flood delivers a message with hops = h
//     in round h of the lossless run (on_start sends hops = 1;
//     forwarding sends hops = received.hops + 1 — all four stage
//     protocols have this shape by construction).
//   * After executing logical round h, a node broadcasts a FRAME(h+1)
//     marker: "all my hops = h+1 DATA is out". A node executes round
//     h+1 only when every (live) neighbor's FRAME(h+1) has arrived, then
//     delivers the buffered DATA in the engine's canonical order — so
//     the inner protocol observes exactly the lossless schedule.
//   * Acknowledgement is mostly IMPLICIT: receiving FRAME(h) from a
//     neighbor proves (in-order processing) that it has received every
//     packet of mine up to and including my FRAME(h-1). Explicit
//     cumulative ACKs are sent only for duplicates, for the final
//     round's FRAME, and for liveness probes.
//   * Unacknowledged packets are rebroadcast with bounded exponential
//     backoff (self-timers via NodeContext::schedule). A neighbor that
//     exhausts max_retries is declared dead and excluded from the FRAME
//     barrier — crash-stop failures degrade the result instead of
//     wedging the network.
//
// Message-complexity overhead vs the paper's O((k+l+1)n) bound: FRAME
// markers add one broadcast per node per logical round — O(L·n) with
// L = k, l, r, or the Voronoi eccentricity — and retransmissions add an
// expected factor 1/(1-p) per packet, so the total stays
// O((k+l+1)·n/(1-p)) + O(L·n): the same shape, a constant factor up.
// docs/robustness.md derives this and bench_robustness measures it.
//
// Parallel safety (sim::Protocol::parallel_safe): the wrapper conforms
// to the engine's handler-isolation contract. Every handler touches
// only state(ctx.node()) — including the reliability counters, which
// live per node precisely so concurrent delivery chunks never share a
// cell — and the inner protocol's handlers run under an InnerCtx bound
// to the same node. Retransmission telemetry goes through
// NodeContext::note_retransmission (chunk-local), never through shared
// engine state.
#pragma once

#include <cstdint>
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/config.h"
#include "core/protocols.h"
#include "net/graph.h"
#include "sim/engine.h"

namespace skelex::core {

struct ReliableOptions {
  // Highest logical round DATA can occur in (TTL of the wrapped flood:
  // k-hop flood -> k; Voronoi flood -> max site distance + 1). Inner
  // messages beyond it are dropped and counted, never delivered.
  int max_logical_rounds = 0;
  // Retransmissions per packet before the unreachable neighbors are
  // declared dead. With loss p the residual per-link failure probability
  // is p^(max_retries+1) (~4e-9 at p = 0.3, 16 retries).
  int max_retries = 16;
  // Rounds before the first retransmission; doubled per retry up to
  // max_backoff (truncated exponential backoff).
  int initial_backoff = 2;
  int max_backoff = 16;
  // A node blocked on the FRAME barrier this many rounds with nothing
  // left in flight sends a sequenced PING probe; live neighbors ACK it,
  // dead ones let it exhaust retries (crash detection without traffic).
  int watchdog_rounds = 48;
};

struct ReliableStats {
  std::int64_t data_sent = 0;        // first transmissions of DATA packets
  std::int64_t frames_sent = 0;      // FRAME barrier markers
  std::int64_t acks_sent = 0;        // explicit cumulative ACK unicasts
  std::int64_t pings_sent = 0;       // watchdog probes
  std::int64_t retransmissions = 0;  // rebroadcasts of unacked packets
  std::int64_t duplicates = 0;       // redundant receptions discarded
  std::int64_t implicit_acks = 0;    // packets confirmed via FRAME inference
  std::int64_t gave_up_links = 0;    // (packet, neighbor) pairs abandoned
  std::int64_t overflow_data = 0;    // inner msgs beyond max_logical_rounds
  int stalled_nodes = 0;  // nodes that never completed every logical round

  ReliableStats& operator+=(const ReliableStats& o);
};

class ReliableFloodWrapper final : public sim::Protocol {
 public:
  // Borrows `inner` and `g`; both must outlive the wrapper. Results are
  // read from `inner` after Engine::run returns, exactly as without the
  // wrapper.
  ReliableFloodWrapper(sim::Protocol& inner, const net::Graph& g,
                       ReliableOptions opts);

  void on_start(sim::NodeContext& ctx) override;
  void on_message(sim::NodeContext& ctx, const sim::Message& m) override;

  // True when every node executed every logical round (no stalls).
  bool complete() const;
  // Counters summed over nodes in id order (deterministic at any engine
  // thread count), with stalled_nodes computed at call time.
  ReliableStats stats() const;

 private:
  struct Outgoing {
    sim::Message pkt;
    std::unordered_set<int> unacked;
    int retries = 0;
    int backoff = 0;
  };
  struct NodeState {
    int step_done = -1;  // highest logical round executed (-1: none)
    int next_seq = 1;
    // Reliable receive (per neighbor): next in-order seq, out-of-order
    // buffer, highest FRAME round processed.
    std::unordered_map<int, int> next_expected;
    std::unordered_map<int, std::map<int, sim::Message>> ooo;
    std::unordered_map<int, int> frame_from;
    // Inner messages buffered by logical round.
    std::vector<std::vector<sim::Message>> data_by_round;
    // Reliable send: in-flight packets by seq, own FRAME seqs by round.
    std::map<int, Outgoing> outgoing;
    std::vector<int> frame_seq;
    std::unordered_set<int> dead;
    bool watchdog_armed = false;
    int watchdog_step = -2;
    // Reliability counters for THIS node; kept per node (not on the
    // wrapper) so handlers running in parallel delivery chunks never
    // write a shared cell. stats() sums them in node order.
    ReliableStats counters;
  };
  class InnerCtx;

  NodeState& state(int v) { return st_[static_cast<std::size_t>(v)]; }
  void handle_timer(sim::NodeContext& ctx, const sim::Message& m);
  void handle_watchdog(sim::NodeContext& ctx);
  void process_in_order(sim::NodeContext& ctx, NodeState& st,
                        const sim::Message& m);
  void ack_from(NodeState& st, int neighbor, int upto, bool implicit);
  void try_progress(sim::NodeContext& ctx);
  void execute_step(sim::NodeContext& ctx, NodeState& st, int h);
  void flush_inner_sends(sim::NodeContext& ctx, NodeState& st, int h,
                         std::vector<sim::Message>& sends);
  void transmit(sim::NodeContext& ctx, NodeState& st, sim::Message pkt);
  void send_ack(sim::NodeContext& ctx, NodeState& st, int to);
  void mark_dead(NodeState& st, int neighbor);
  void arm_watchdog(sim::NodeContext& ctx, NodeState& st);

  sim::Protocol& inner_;
  const net::Graph& g_;
  ReliableOptions opts_;
  std::vector<NodeState> st_;
};

// --- Whole communication phase, reliably -------------------------------------

// run_distributed_stages with every stage wrapped in a
// ReliableFloodWrapper: under reception loss (Engine::set_loss) the
// IndexData, critical set, and Voronoi structures are identical to the
// lossless run. `base` supplies retry/backoff tuning; the per-stage
// max_logical_rounds is derived from the stage TTLs (and, for the
// Voronoi stage, from the site eccentricity — information a deployment
// would provision as a network-diameter bound).
struct ReliableRun {
  DistributedRun run;
  ReliableStats khop_rel;
  ReliableStats centrality_rel;
  ReliableStats localmax_rel;
  ReliableStats voronoi_rel;
  ReliableStats total_rel() const;
};
ReliableRun run_distributed_stages_reliable(const net::Graph& g,
                                            const Params& params,
                                            sim::Engine& engine,
                                            const ReliableOptions& base = {});

// Full extraction over a caller-configured engine (loss and/or faults
// installed), with stages 1-2 run reliably and stages 3+ completed from
// the per-node results. Degradation (crashed regions, stalled nodes,
// unassigned Voronoi cells) lands in SkeletonResult::diagnostics rather
// than throwing.
struct ReliableExtraction {
  SkeletonResult result;
  sim::RunStats stats;        // total radio cost of stages 1-2
  ReliableStats reliability;  // summed wrapper counters
};
ReliableExtraction extract_skeleton_reliable(const net::Graph& g,
                                             const Params& params,
                                             sim::Engine& engine,
                                             const ReliableOptions& base = {});

}  // namespace skelex::core
