#include "core/skeleton_graph.h"

#include <algorithm>
#include <set>
#include <utility>
#include <queue>
#include <stdexcept>

namespace skelex::core {

SkeletonGraph::SkeletonGraph(int n) {
  if (n < 0) throw std::invalid_argument("negative capacity");
  present_.assign(static_cast<std::size_t>(n), 0);
  adj_.resize(static_cast<std::size_t>(n));
}

void SkeletonGraph::check(int v) const {
  if (v < 0 || v >= capacity()) throw std::out_of_range("skeleton node id");
}

void SkeletonGraph::add_node(int v) {
  check(v);
  if (!present_[static_cast<std::size_t>(v)]) {
    present_[static_cast<std::size_t>(v)] = 1;
    ++node_count_;
  }
}

void SkeletonGraph::remove_node(int v) {
  check(v);
  if (!present_[static_cast<std::size_t>(v)]) return;
  // Detach from neighbors.
  for (int w : adj_[static_cast<std::size_t>(v)]) {
    auto& wa = adj_[static_cast<std::size_t>(w)];
    wa.erase(std::remove(wa.begin(), wa.end(), v), wa.end());
    --edge_count_;
  }
  adj_[static_cast<std::size_t>(v)].clear();
  present_[static_cast<std::size_t>(v)] = 0;
  --node_count_;
}

bool SkeletonGraph::has_edge(int u, int v) const {
  check(u);
  check(v);
  const auto& a = adj_[static_cast<std::size_t>(u)];
  return std::find(a.begin(), a.end(), v) != a.end();
}

void SkeletonGraph::add_edge(int u, int v) {
  check(u);
  check(v);
  if (u == v) return;
  add_node(u);
  add_node(v);
  if (has_edge(u, v)) return;
  adj_[static_cast<std::size_t>(u)].push_back(v);
  adj_[static_cast<std::size_t>(v)].push_back(u);
  ++edge_count_;
}

void SkeletonGraph::remove_edge(int u, int v) {
  check(u);
  check(v);
  auto& a = adj_[static_cast<std::size_t>(u)];
  const auto it = std::find(a.begin(), a.end(), v);
  if (it == a.end()) return;
  a.erase(it);
  auto& b = adj_[static_cast<std::size_t>(v)];
  b.erase(std::remove(b.begin(), b.end(), u), b.end());
  --edge_count_;
}

std::vector<int> SkeletonGraph::nodes() const {
  std::vector<int> out;
  out.reserve(static_cast<std::size_t>(node_count_));
  for (int v = 0; v < capacity(); ++v) {
    if (present_[static_cast<std::size_t>(v)]) out.push_back(v);
  }
  return out;
}

std::vector<int> SkeletonGraph::component_labels(int& count) const {
  std::vector<int> label(present_.size(), -1);
  count = 0;
  std::queue<int> q;
  for (int s = 0; s < capacity(); ++s) {
    if (!present_[static_cast<std::size_t>(s)] ||
        label[static_cast<std::size_t>(s)] != -1) {
      continue;
    }
    label[static_cast<std::size_t>(s)] = count;
    q.push(s);
    while (!q.empty()) {
      const int v = q.front();
      q.pop();
      for (int w : adj_[static_cast<std::size_t>(v)]) {
        if (label[static_cast<std::size_t>(w)] == -1) {
          label[static_cast<std::size_t>(w)] = count;
          q.push(w);
        }
      }
    }
    ++count;
  }
  return label;
}

int SkeletonGraph::component_count() const {
  int count = 0;
  (void)component_labels(count);
  return count;
}

int SkeletonGraph::cycle_rank() const {
  return edge_count_ - node_count_ + component_count();
}

std::vector<std::vector<int>> SkeletonGraph::cycle_basis() const {
  std::vector<std::vector<int>> cycles;
  std::vector<int> parent(present_.size(), -2);  // -2 unvisited, -1 root
  std::vector<int> depth(present_.size(), 0);
  std::queue<int> q;
  for (int s = 0; s < capacity(); ++s) {
    if (!present_[static_cast<std::size_t>(s)] ||
        parent[static_cast<std::size_t>(s)] != -2) {
      continue;
    }
    parent[static_cast<std::size_t>(s)] = -1;
    q.push(s);
    while (!q.empty()) {
      const int v = q.front();
      q.pop();
      for (int w : adj_[static_cast<std::size_t>(v)]) {
        if (parent[static_cast<std::size_t>(w)] == -2) {
          parent[static_cast<std::size_t>(w)] = v;
          depth[static_cast<std::size_t>(w)] =
              depth[static_cast<std::size_t>(v)] + 1;
          q.push(w);
        } else if (w != parent[static_cast<std::size_t>(v)] &&
                   parent[static_cast<std::size_t>(w)] != v && v < w) {
          // Non-tree edge {v, w}: cycle = tree paths to the LCA.
          std::vector<int> up_v{v}, up_w{w};
          int a = v, b = w;
          while (a != b) {
            if (depth[static_cast<std::size_t>(a)] >=
                depth[static_cast<std::size_t>(b)]) {
              a = parent[static_cast<std::size_t>(a)];
              up_v.push_back(a);
            } else {
              b = parent[static_cast<std::size_t>(b)];
              up_w.push_back(b);
            }
          }
          // up_v ends at the LCA; append up_w reversed, skipping the LCA.
          std::vector<int> cycle = std::move(up_v);
          for (std::size_t i = up_w.size() - 1; i-- > 0;) {
            cycle.push_back(up_w[i]);
          }
          cycles.push_back(std::move(cycle));
        }
      }
    }
  }
  return cycles;
}

std::vector<std::vector<int>> SkeletonGraph::tight_cycles() const {
  // Non-tree edges of a BFS spanning forest.
  std::vector<std::pair<int, int>> non_tree;
  {
    std::vector<int> parent(present_.size(), -2);
    std::queue<int> q;
    for (int s = 0; s < capacity(); ++s) {
      if (!present_[static_cast<std::size_t>(s)] ||
          parent[static_cast<std::size_t>(s)] != -2) {
        continue;
      }
      parent[static_cast<std::size_t>(s)] = -1;
      q.push(s);
      while (!q.empty()) {
        const int v = q.front();
        q.pop();
        for (int w : adj_[static_cast<std::size_t>(v)]) {
          if (parent[static_cast<std::size_t>(w)] == -2) {
            parent[static_cast<std::size_t>(w)] = v;
            q.push(w);
          } else if (w != parent[static_cast<std::size_t>(v)] &&
                     parent[static_cast<std::size_t>(w)] != v && v < w) {
            non_tree.push_back({v, w});
          }
        }
      }
    }
  }

  std::vector<std::vector<int>> cycles;
  std::set<std::vector<int>> seen;
  for (const auto& [u, v] : non_tree) {
    // Shortest u..v path avoiding the direct edge.
    std::vector<int> dist(present_.size(), -1);
    std::vector<int> par(present_.size(), -1);
    std::queue<int> q;
    dist[static_cast<std::size_t>(u)] = 0;
    q.push(u);
    while (!q.empty() && dist[static_cast<std::size_t>(v)] == -1) {
      const int x = q.front();
      q.pop();
      for (int w : adj_[static_cast<std::size_t>(x)]) {
        if (x == u && w == v) continue;  // skip the non-tree edge itself
        if (dist[static_cast<std::size_t>(w)] == -1) {
          dist[static_cast<std::size_t>(w)] = dist[static_cast<std::size_t>(x)] + 1;
          par[static_cast<std::size_t>(w)] = x;
          q.push(w);
        }
      }
    }
    if (dist[static_cast<std::size_t>(v)] == -1) continue;  // bridge-like
    std::vector<int> cycle;
    for (int x = v; x != -1; x = par[static_cast<std::size_t>(x)]) {
      cycle.push_back(x);
    }
    // Canonical form for dedup: rotate so the smallest node is first,
    // then pick the lexicographically smaller direction.
    std::vector<int> canon = cycle;
    const auto mn = std::min_element(canon.begin(), canon.end());
    std::rotate(canon.begin(), mn, canon.end());
    std::vector<int> rev{canon.front()};
    rev.insert(rev.end(), canon.rbegin(), canon.rend() - 1);
    if (rev < canon) canon = rev;
    if (seen.insert(canon).second) cycles.push_back(std::move(cycle));
  }
  return cycles;
}

std::vector<int> SkeletonGraph::leaves() const {
  std::vector<int> out;
  for (int v = 0; v < capacity(); ++v) {
    if (present_[static_cast<std::size_t>(v)] && degree(v) == 1) {
      out.push_back(v);
    }
  }
  return out;
}

}  // namespace skelex::core
