// skelex/core/skeleton_graph.h
//
// A mutable subgraph over the sensor network's node ids: the coarse and
// refined skeletons are SkeletonGraphs whose edges are (a subset of)
// network links. Supports the operations the clean-up stage needs:
// node/edge removal, degree queries, connected components, and a cycle
// basis (one cycle per independent loop — the skeleton's homotopy type).
#pragma once

#include <vector>

#include "net/graph.h"

namespace skelex::core {

class SkeletonGraph {
 public:
  SkeletonGraph() = default;
  // Capacity for node ids [0, n); starts empty.
  explicit SkeletonGraph(int n);

  int capacity() const { return static_cast<int>(present_.size()); }
  int node_count() const { return node_count_; }
  int edge_count() const { return edge_count_; }

  bool has_node(int v) const { return present_[static_cast<std::size_t>(v)]; }
  void add_node(int v);
  // Removes v and all incident edges. No-op when absent.
  void remove_node(int v);

  bool has_edge(int u, int v) const;
  // Adds nodes implicitly. Duplicate/self edges ignored.
  void add_edge(int u, int v);
  void remove_edge(int u, int v);

  const std::vector<int>& neighbors(int v) const {
    return adj_[static_cast<std::size_t>(v)];
  }
  int degree(int v) const {
    return static_cast<int>(adj_[static_cast<std::size_t>(v)].size());
  }

  // Present node ids, ascending.
  std::vector<int> nodes() const;

  // Component label per present node (absent nodes get -1) + count.
  std::vector<int> component_labels(int& count) const;
  int component_count() const;

  // Independent cycles (cycle-space dimension) = E - V + C.
  int cycle_rank() const;

  // One representative cycle per independent loop, as closed node
  // sequences (first node not repeated at the end). Built from a BFS
  // spanning forest: each non-tree edge contributes the cycle through the
  // tree paths of its endpoints.
  std::vector<std::vector<int>> cycle_basis() const;

  // Geometrically tight cycles: for each non-tree edge of a BFS spanning
  // forest, the SHORTEST cycle through that edge (shortest alternative
  // path between its endpoints plus the edge), deduplicated. Unlike the
  // fundamental cycles of cycle_basis() — which can be arbitrary sums of
  // face loops — these hug individual loops, which is what the clean-up
  // stage must judge: a fundamental cycle combining a genuine hole loop
  // with a fake junction loop must never be collapsed as a unit.
  std::vector<std::vector<int>> tight_cycles() const;

  // Degree-1 nodes.
  std::vector<int> leaves() const;

 private:
  std::vector<char> present_;
  std::vector<std::vector<int>> adj_;
  int node_count_ = 0;
  int edge_count_ = 0;

  void check(int v) const;
};

}  // namespace skelex::core
