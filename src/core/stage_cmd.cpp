#include "core/stage_cmd.h"

#include <utility>

#include "core/fingerprint.h"
#include "core/prune.h"

namespace skelex::core {

namespace {

// Every key chain starts from the stage's tag so two stages with
// coincidentally equal inputs can never collide.
Fnv chain(const char* tag, std::uint64_t upstream) {
  Fnv f;
  for (const char* c = tag; *c != '\0'; ++c) f.bytes(c, 1);
  f.u64(upstream);
  return f;
}

}  // namespace

// --- IndexCmd ----------------------------------------------------------------

std::uint64_t IndexCmd::key() const {
  Fnv f = chain(kName, graph_fp);
  f.i32(params.k);
  f.i32(params.l);
  f.i32(params.centrality_includes_self ? 1 : 0);
  return f.h;
}

IndexData IndexCmd::run(const net::CsrGraph& g, net::Workspace& ws) const {
  return compute_index(g, ws, params);
}

std::size_t IndexCmd::approx_bytes(const IndexData& d) {
  return d.khop_size.size() * sizeof(int) +
         d.centrality.size() * sizeof(double) +
         d.index.size() * sizeof(double);
}

// --- IdentifyCmd -------------------------------------------------------------

std::uint64_t IdentifyCmd::key() const {
  Fnv f = chain(kName, index_key);
  f.i32(params.local_max_radius);
  return f.h;
}

std::vector<int> IdentifyCmd::run(const net::CsrGraph& g,
                                  net::Workspace& ws) const {
  return identify_critical_nodes(g, ws, *index, params);
}

std::size_t IdentifyCmd::approx_bytes(const std::vector<int>& critical) {
  return critical.size() * sizeof(int);
}

// --- VoronoiCmd --------------------------------------------------------------

std::uint64_t VoronoiCmd::key() const {
  Fnv f = chain(kName, sites_key);
  f.i32(params.alpha);
  return f.h;
}

VoronoiResult VoronoiCmd::run(const net::CsrGraph& g,
                              net::Workspace& ws) const {
  return build_voronoi(g, ws, *sites, params);
}

std::size_t VoronoiCmd::approx_bytes(const VoronoiResult& vor) {
  std::size_t b = vor.sites.size() * sizeof(int);
  b += (vor.site_of.size() + vor.dist.size() + vor.parent.size() +
        vor.site2_of.size() + vor.dist2.size() + vor.via2.size()) *
       sizeof(int);
  b += vor.is_segment.size() + vor.is_voronoi_node.size();
  b += vor.nearby.size() * sizeof(std::vector<VoronoiResult::NearbySite>);
  for (const auto& records : vor.nearby) {
    b += records.size() * sizeof(VoronoiResult::NearbySite);
  }
  return b;
}

// --- AssessCmd ---------------------------------------------------------------

std::uint64_t AssessCmd::key() const {
  // The upstream voronoi key transitively chains the graph fingerprint
  // and every stage-1/2 parameter (including the patch's alpha), so the
  // tag + upstream chain IS the complete input declaration.
  return chain(kName, voronoi_key).h;
}

AssessOutput AssessCmd::run(const net::CsrGraph& g, net::Workspace& ws) const {
  AssessOutput out;
  out.voronoi_key = voronoi_key;
  out.comps = net::connected_components(g, ws);
  out.input_components = out.comps.count;
  if (out.comps.count > 1) {
    out.disconnected_input = true;
    out.warnings.push_back("input graph has " +
                           std::to_string(out.comps.count) +
                           " connected components; each is skeletonized "
                           "independently");
  }

  if (critical->empty() && g.n() > 0) {
    // Stage 1 produced no sites (possible when the identification ran on
    // fault-depleted data). A skeleton needs at least one node: fall back
    // to the max-index node — or node 0 if even the index is missing.
    int best = 0;
    if (static_cast<int>(index->index.size()) == g.n()) {
      for (int v = 1; v < g.n(); ++v) {
        if (index->index[static_cast<std::size_t>(v)] >
            index->index[static_cast<std::size_t>(best)]) {
          best = v;
        }
      }
    }
    out.patched = true;
    out.critical.push_back(best);
    out.voronoi = std::make_shared<const VoronoiResult>(
        build_voronoi(g, ws, out.critical, params));
    Fnv f;
    f.u64(voronoi_key);
    f.bytes("assess-fallback", 15);
    f.i32(best);
    out.voronoi_key = f.h;
    out.empty_critical_fallback = true;
    out.warnings.push_back(
        "no critical nodes from stage 1; fell back to node " +
        std::to_string(best) + " as the single site");
  }

  const VoronoiResult& vor = out.patched ? *out.voronoi : *voronoi;
  if (static_cast<int>(vor.site_of.size()) == g.n()) {
    std::vector<int> cell_size(vor.sites.size(), 0);
    for (int v = 0; v < g.n(); ++v) {
      const int s = vor.site_of[static_cast<std::size_t>(v)];
      if (s == -1) {
        ++out.voronoi_unassigned;
      } else if (s >= 0 && s < static_cast<int>(cell_size.size())) {
        ++cell_size[static_cast<std::size_t>(s)];
      }
    }
    if (out.voronoi_unassigned > 0) {
      out.warnings.push_back(std::to_string(out.voronoi_unassigned) +
                             " node(s) were reached by no site flood and "
                             "belong to no Voronoi cell");
    }
    for (int size : cell_size) {
      if (size <= 1) ++out.degenerate_cells;
    }
    if (out.degenerate_cells > 0 &&
        2 * out.degenerate_cells > static_cast<int>(cell_size.size())) {
      out.warnings.push_back("over half of the Voronoi cells (" +
                             std::to_string(out.degenerate_cells) + " of " +
                             std::to_string(cell_size.size()) +
                             ") are degenerate (<= 1 node)");
    }
  }
  return out;
}

std::size_t AssessCmd::approx_bytes(const AssessOutput& out) {
  std::size_t b =
      (out.comps.label.size() + out.comps.size.size()) * sizeof(int);
  for (const std::string& w : out.warnings) b += w.size();
  b += out.critical.size() * sizeof(int);
  if (out.voronoi) b += VoronoiCmd::approx_bytes(*out.voronoi);
  return b;
}

// --- CoarseCmd ---------------------------------------------------------------

std::uint64_t CoarseCmd::key() const {
  Fnv f = chain(kName, voronoi_key);
  f.i32(params.alpha);
  return f.h;
}

SkeletonGraph CoarseCmd::run() const {
  CoarseSkeleton coarse = build_coarse_skeleton(*g, *index, *voronoi, params);
  return std::move(coarse.graph);
}

std::size_t CoarseCmd::approx_bytes(const SkeletonGraph& sk) {
  // capacity-sized present flags + adjacency headers, plus two directed
  // entries per edge.
  return static_cast<std::size_t>(sk.capacity()) *
             (sizeof(char) + sizeof(std::vector<int>)) +
         static_cast<std::size_t>(sk.edge_count()) * 2 * sizeof(int);
}

// --- CleanupCmd --------------------------------------------------------------

std::uint64_t CleanupCmd::key() const {
  Fnv f = chain(kName, coarse_key);
  f.i32(params.fake_pocket_min_size);
  f.f64(params.hole_khop_ratio);
  f.i32(params.thin_cycle_hops);
  f.f64(params.thin_cycle_ratio);
  return f.h;
}

CleanupResult CleanupCmd::run() const { return run(*coarse); }

std::size_t CleanupCmd::approx_bytes(const CleanupResult& cleaned) {
  std::size_t b = CoarseCmd::approx_bytes(cleaned.graph);
  for (const Pocket& p : cleaned.pockets) {
    b += (p.interior.size() + p.boundary.size()) * sizeof(int);
  }
  return b;
}

CleanupResult CleanupCmd::run(SkeletonGraph coarse_copy) const {
  return cleanup_loops(*g, *index, std::move(coarse_copy), params, voronoi);
}

// --- PruneCmd ----------------------------------------------------------------

std::uint64_t PruneCmd::key() const {
  Fnv f = chain(kName, cleanup_key);
  f.i32(params.prune_len);
  return f.h;
}

PruneOutput PruneCmd::run() const {
  PruneOutput out;
  out.skeleton = *skeleton;  // cleaned skeleton stays shareable
  out.pruned_nodes = prune_short_branches(out.skeleton, params.prune_len);

  // Post-prune tidy-up with knowledge of the network: drop isolated
  // skeleton nodes whose network component already has skeleton
  // structure, but keep a lone site that is its component's only
  // skeleton (the skeleton of a small blob IS a single node).
  std::vector<int> skeleton_per_comp(
      static_cast<std::size_t>(comps->count), 0);
  for (int v : out.skeleton.nodes()) {
    ++skeleton_per_comp[static_cast<std::size_t>(
        comps->label[static_cast<std::size_t>(v)])];
  }
  for (int v : out.skeleton.nodes()) {
    const int c = comps->label[static_cast<std::size_t>(v)];
    if (out.skeleton.degree(v) == 0 &&
        skeleton_per_comp[static_cast<std::size_t>(c)] > 1) {
      out.skeleton.remove_node(v);
      --skeleton_per_comp[static_cast<std::size_t>(c)];
      ++out.pruned_nodes;
    }
  }
  return out;
}

std::size_t PruneCmd::approx_bytes(const PruneOutput& out) {
  return CoarseCmd::approx_bytes(out.skeleton) + sizeof(int);
}

int PruneCmd::run(SkeletonGraph& skeleton_in_place) const {
  return prune_short_branches(skeleton_in_place, params.prune_len);
}

// --- ByproductsCmd -----------------------------------------------------------

std::uint64_t ByproductsCmd::key() const {
  // prune_key transitively chains every upstream stage and parameter the
  // by-products read (segmentation: the effective voronoi; boundaries:
  // graph + skeleton + index khop sizes).
  return chain(kName, prune_key).h;
}

ByproductsOutput ByproductsCmd::run() const {
  ByproductsOutput out;
  out.segmentation = segmentation_from_voronoi(*voronoi);
  out.boundary = extract_boundaries(*g, *skeleton, 1, &index->khop_size);
  return out;
}

std::size_t ByproductsCmd::approx_bytes(const ByproductsOutput& out) {
  return (out.segmentation.segment_of.size() +
          out.segmentation.segment_size.size() +
          out.boundary.boundary_nodes.size() +
          out.boundary.dist_to_skeleton.size()) *
             sizeof(int) +
         out.boundary.is_boundary.size();
}

}  // namespace skelex::core
