#include "core/stage_cmd.h"

#include <utility>

#include "core/fingerprint.h"
#include "core/prune.h"

namespace skelex::core {

namespace {

// Every key chain starts from the stage's tag so two stages with
// coincidentally equal inputs can never collide.
Fnv chain(const char* tag, std::uint64_t upstream) {
  Fnv f;
  for (const char* c = tag; *c != '\0'; ++c) f.bytes(c, 1);
  f.u64(upstream);
  return f;
}

}  // namespace

// --- IndexCmd ----------------------------------------------------------------

std::uint64_t IndexCmd::key() const {
  Fnv f = chain(kName, graph_fp);
  f.i32(params.k);
  f.i32(params.l);
  f.i32(params.centrality_includes_self ? 1 : 0);
  return f.h;
}

IndexData IndexCmd::run(const net::CsrGraph& g, net::Workspace& ws) const {
  return compute_index(g, ws, params);
}

std::size_t IndexCmd::approx_bytes(const IndexData& d) {
  return d.khop_size.size() * sizeof(int) +
         d.centrality.size() * sizeof(double) +
         d.index.size() * sizeof(double);
}

// --- IdentifyCmd -------------------------------------------------------------

std::uint64_t IdentifyCmd::key() const {
  Fnv f = chain(kName, index_key);
  f.i32(params.local_max_radius);
  return f.h;
}

std::vector<int> IdentifyCmd::run(const net::CsrGraph& g,
                                  net::Workspace& ws) const {
  return identify_critical_nodes(g, ws, *index, params);
}

std::size_t IdentifyCmd::approx_bytes(const std::vector<int>& critical) {
  return critical.size() * sizeof(int);
}

// --- VoronoiCmd --------------------------------------------------------------

std::uint64_t VoronoiCmd::key() const {
  Fnv f = chain(kName, sites_key);
  f.i32(params.alpha);
  return f.h;
}

VoronoiResult VoronoiCmd::run(const net::CsrGraph& g,
                              net::Workspace& ws) const {
  return build_voronoi(g, ws, *sites, params);
}

std::size_t VoronoiCmd::approx_bytes(const VoronoiResult& vor) {
  std::size_t b = vor.sites.size() * sizeof(int);
  b += (vor.site_of.size() + vor.dist.size() + vor.parent.size() +
        vor.site2_of.size() + vor.dist2.size() + vor.via2.size()) *
       sizeof(int);
  b += vor.is_segment.size() + vor.is_voronoi_node.size();
  b += vor.nearby.size() * sizeof(std::vector<VoronoiResult::NearbySite>);
  for (const auto& records : vor.nearby) {
    b += records.size() * sizeof(VoronoiResult::NearbySite);
  }
  return b;
}

// --- CoarseCmd ---------------------------------------------------------------

std::uint64_t CoarseCmd::key() const {
  Fnv f = chain(kName, voronoi_key);
  f.i32(params.alpha);
  return f.h;
}

SkeletonGraph CoarseCmd::run() const {
  CoarseSkeleton coarse = build_coarse_skeleton(*g, *index, *voronoi, params);
  return std::move(coarse.graph);
}

std::size_t CoarseCmd::approx_bytes(const SkeletonGraph& sk) {
  // capacity-sized present flags + adjacency headers, plus two directed
  // entries per edge.
  return static_cast<std::size_t>(sk.capacity()) *
             (sizeof(char) + sizeof(std::vector<int>)) +
         static_cast<std::size_t>(sk.edge_count()) * 2 * sizeof(int);
}

// --- CleanupCmd --------------------------------------------------------------

CleanupResult CleanupCmd::run(SkeletonGraph coarse) const {
  return cleanup_loops(*g, *index, std::move(coarse), params, voronoi);
}

// --- PruneCmd ----------------------------------------------------------------

int PruneCmd::run(SkeletonGraph& skeleton) const {
  return prune_short_branches(skeleton, params.prune_len);
}

}  // namespace skelex::core
