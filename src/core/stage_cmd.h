// skelex/core/stage_cmd.h
//
// First-class stage commands: each pipeline stage (Fig. 1 b-h) as an
// object that DECLARES its hashable inputs and produces one owned,
// immutable output.
//
//   * inputs — a 64-bit content key: FNV-1a over the stage's tag, the
//     graph fingerprint (core/fingerprint.h), the parameter SLICE the
//     stage actually reads (core/config.h's IndexParams & co. — not the
//     whole Params), and the keys of the upstream stages it consumes.
//     Determinism of the stage functions makes key equality a value
//     equality, which is what lets core/memo's StageCache hand the same
//     shared output to every request that chains the same inputs.
//   * borrowed operands — pointers/refs to upstream outputs. Commands
//     never own their inputs and never mutate them; upstream outputs
//     stay shareable after the command runs.
//   * output — the stage's result, returned by value from run(). The
//     driver (core/pipeline.cpp) wraps it in shared_ptr<const T> and,
//     when memoizing, publishes it in the cache under key().
//
// EVERY stage is memoizable: index / identify / voronoi / assess /
// coarse / cleanup / prune / byproducts form one end-to-end key-chained
// DAG. The assess command keys on the upstream voronoi key and returns
// the *effective* downstream key (folding in its fallback patch when
// stage 1 delivered no sites), so cleanup/prune chain off the patched
// voronoi content; two requests differing only in prune_len share every
// stage through cleanup. The driver (core/pipeline.cpp) copies the
// shared tail outputs into the per-request owned half of the
// SkeletonResult — cache entries are standalone immutable values, so
// LRU eviction order can never corrupt a downstream entry.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/byproducts.h"
#include "core/cleanup.h"
#include "core/coarse.h"
#include "core/config.h"
#include "core/identify.h"
#include "core/index.h"
#include "core/skeleton_graph.h"
#include "core/voronoi.h"
#include "net/csr.h"
#include "net/graph.h"

namespace skelex::core {

// --- Stage 1a: per-node index -----------------------------------------------

struct IndexCmd {
  static constexpr const char* kName = "index";

  std::uint64_t graph_fp = 0;  // graph_fingerprint(csr)
  IndexParams params;

  std::uint64_t key() const;
  IndexData run(const net::CsrGraph& g, net::Workspace& ws) const;
  static std::size_t approx_bytes(const IndexData& d);
};

// --- Stage 1b: critical skeleton nodes --------------------------------------

struct IdentifyCmd {
  static constexpr const char* kName = "identify";

  std::uint64_t index_key = 0;  // upstream IndexCmd::key()
  IdentifyParams params;
  const IndexData* index = nullptr;  // borrowed

  std::uint64_t key() const;
  std::vector<int> run(const net::CsrGraph& g, net::Workspace& ws) const;
  static std::size_t approx_bytes(const std::vector<int>& critical);
};

// --- Stage 2: Voronoi cells + segment nodes ---------------------------------

struct VoronoiCmd {
  static constexpr const char* kName = "voronoi";

  std::uint64_t sites_key = 0;  // IdentifyCmd::key(), or the assess patch key
  VoronoiParams params;
  const std::vector<int>* sites = nullptr;  // borrowed

  std::uint64_t key() const;
  VoronoiResult run(const net::CsrGraph& g, net::Workspace& ws) const;
  static std::size_t approx_bytes(const VoronoiResult& vor);
};

// --- Stage 2b: input assessment + graceful degradation -----------------------

// What the assess stage computes once per distinct upstream content:
// input components (reused by the prune tidy-up), the degradation
// diagnostics, and — when stage 1 delivered no sites — the fallback
// single-site Voronoi patch plus the folded key the tail stages chain
// from. `voronoi_key` is always set: untouched upstream key when no
// patch happened, patched key otherwise.
struct AssessOutput {
  net::Components comps;
  std::vector<std::string> warnings;
  int input_components = 0;
  bool disconnected_input = false;
  bool empty_critical_fallback = false;
  int voronoi_unassigned = 0;
  int degenerate_cells = 0;

  bool patched = false;
  std::vector<int> critical;  // the patched site list (when patched)
  std::shared_ptr<const VoronoiResult> voronoi;  // patched cells (when patched)
  std::uint64_t voronoi_key = 0;  // effective key for downstream stages
};

struct AssessCmd {
  static constexpr const char* kName = "assess";

  std::uint64_t voronoi_key = 0;  // upstream VoronoiCmd::key()
  VoronoiParams params;           // read only by the fallback patch
  const IndexData* index = nullptr;            // borrowed
  const std::vector<int>* critical = nullptr;  // borrowed
  const VoronoiResult* voronoi = nullptr;      // borrowed

  std::uint64_t key() const;
  AssessOutput run(const net::CsrGraph& g, net::Workspace& ws) const;
  static std::size_t approx_bytes(const AssessOutput& out);
};

// --- Stage 3: coarse skeleton -----------------------------------------------

struct CoarseCmd {
  static constexpr const char* kName = "coarse";

  std::uint64_t voronoi_key = 0;  // effective (post-assess) Voronoi key
  CoarseParams params;
  const net::Graph* g = nullptr;         // borrowed
  const IndexData* index = nullptr;      // borrowed
  const VoronoiResult* voronoi = nullptr;  // borrowed

  std::uint64_t key() const;
  // The kept output is the coarse graph; bands/triangles are build
  // internals (build_coarse_skeleton's CoarseSkeleton) not retained by
  // the pipeline today.
  SkeletonGraph run() const;
  static std::size_t approx_bytes(const SkeletonGraph& sk);
};

// --- Stage 4a: loop clean-up -------------------------------------------------

struct CleanupCmd {
  static constexpr const char* kName = "cleanup";

  std::uint64_t coarse_key = 0;  // upstream CoarseCmd::key()
  CleanupParams params;
  const net::Graph* g = nullptr;
  const IndexData* index = nullptr;
  const VoronoiResult* voronoi = nullptr;  // may be null (tests)
  const SkeletonGraph* coarse = nullptr;   // borrowed shared stage-3 output

  std::uint64_t key() const;
  // Clean-up mutates a COPY of the shared coarse graph into the refined
  // skeleton (the CleanupResult owns it).
  CleanupResult run() const;
  static std::size_t approx_bytes(const CleanupResult& cleaned);

  // Legacy front (tests, protocols): consume an explicit coarse copy.
  CleanupResult run(SkeletonGraph coarse_copy) const;
};

// --- Stage 4b: pruning -------------------------------------------------------

struct PruneOutput {
  SkeletonGraph skeleton;  // the final refined skeleton
  int pruned_nodes = 0;
};

struct PruneCmd {
  static constexpr const char* kName = "prune";

  std::uint64_t cleanup_key = 0;  // upstream CleanupCmd::key()
  PruneParams params;
  const SkeletonGraph* skeleton = nullptr;  // borrowed cleaned skeleton
  const net::Components* comps = nullptr;   // borrowed from AssessOutput

  std::uint64_t key() const;
  // Prunes a copy of the cleaned skeleton, then drops isolated skeleton
  // nodes whose network component retains other skeleton structure.
  PruneOutput run() const;
  static std::size_t approx_bytes(const PruneOutput& out);

  // Legacy front: in-place short-branch prune only (no component
  // tidy-up); returns nodes removed.
  int run(SkeletonGraph& skeleton_in_place) const;
};

// --- By-products (§III-E) ----------------------------------------------------

struct ByproductsOutput {
  Segmentation segmentation;
  BoundaryResult boundary;
};

struct ByproductsCmd {
  static constexpr const char* kName = "byproducts";

  std::uint64_t prune_key = 0;  // upstream PruneCmd::key()
  const net::Graph* g = nullptr;
  const IndexData* index = nullptr;
  const VoronoiResult* voronoi = nullptr;
  const SkeletonGraph* skeleton = nullptr;  // the final skeleton

  std::uint64_t key() const;
  ByproductsOutput run() const;
  static std::size_t approx_bytes(const ByproductsOutput& out);
};

}  // namespace skelex::core
