// skelex/core/stage_cmd.h
//
// First-class stage commands: each pipeline stage (Fig. 1 b-h) as an
// object that DECLARES its hashable inputs and produces one owned,
// immutable output.
//
//   * inputs — a 64-bit content key: FNV-1a over the stage's tag, the
//     graph fingerprint (core/fingerprint.h), the parameter SLICE the
//     stage actually reads (core/config.h's IndexParams & co. — not the
//     whole Params), and the keys of the upstream stages it consumes.
//     Determinism of the stage functions makes key equality a value
//     equality, which is what lets core/memo's StageCache hand the same
//     shared output to every request that chains the same inputs.
//   * borrowed operands — pointers/refs to upstream outputs. Commands
//     never own their inputs and never mutate them; upstream outputs
//     stay shareable after the command runs.
//   * output — the stage's result, returned by value from run(). The
//     driver (core/pipeline.cpp) wraps it in shared_ptr<const T> and,
//     when memoizing, publishes it in the cache under key().
//
// The driver decides which commands are memoized: index / identify /
// voronoi / coarse (their inputs are fully captured by the key chain).
// Assess, cleanup, prune and byproducts run per request — assess because
// it writes diagnostics and may patch a degraded stage-1 result, the
// rest because they produce the per-request owned half of the
// SkeletonResult — but they are commands all the same, so every stage
// has one place declaring what it reads.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/cleanup.h"
#include "core/coarse.h"
#include "core/config.h"
#include "core/identify.h"
#include "core/index.h"
#include "core/skeleton_graph.h"
#include "core/voronoi.h"
#include "net/csr.h"
#include "net/graph.h"

namespace skelex::core {

// --- Stage 1a: per-node index -----------------------------------------------

struct IndexCmd {
  static constexpr const char* kName = "index";

  std::uint64_t graph_fp = 0;  // graph_fingerprint(csr)
  IndexParams params;

  std::uint64_t key() const;
  IndexData run(const net::CsrGraph& g, net::Workspace& ws) const;
  static std::size_t approx_bytes(const IndexData& d);
};

// --- Stage 1b: critical skeleton nodes --------------------------------------

struct IdentifyCmd {
  static constexpr const char* kName = "identify";

  std::uint64_t index_key = 0;  // upstream IndexCmd::key()
  IdentifyParams params;
  const IndexData* index = nullptr;  // borrowed

  std::uint64_t key() const;
  std::vector<int> run(const net::CsrGraph& g, net::Workspace& ws) const;
  static std::size_t approx_bytes(const std::vector<int>& critical);
};

// --- Stage 2: Voronoi cells + segment nodes ---------------------------------

struct VoronoiCmd {
  static constexpr const char* kName = "voronoi";

  std::uint64_t sites_key = 0;  // IdentifyCmd::key(), or the assess patch key
  VoronoiParams params;
  const std::vector<int>* sites = nullptr;  // borrowed

  std::uint64_t key() const;
  VoronoiResult run(const net::CsrGraph& g, net::Workspace& ws) const;
  static std::size_t approx_bytes(const VoronoiResult& vor);
};

// --- Stage 3: coarse skeleton -----------------------------------------------

struct CoarseCmd {
  static constexpr const char* kName = "coarse";

  std::uint64_t voronoi_key = 0;  // effective (post-assess) Voronoi key
  CoarseParams params;
  const net::Graph* g = nullptr;         // borrowed
  const IndexData* index = nullptr;      // borrowed
  const VoronoiResult* voronoi = nullptr;  // borrowed

  std::uint64_t key() const;
  // The kept output is the coarse graph; bands/triangles are build
  // internals (build_coarse_skeleton's CoarseSkeleton) not retained by
  // the pipeline today.
  SkeletonGraph run() const;
  static std::size_t approx_bytes(const SkeletonGraph& sk);
};

// --- Stage 4a: loop clean-up (per request) ----------------------------------

struct CleanupCmd {
  static constexpr const char* kName = "cleanup";

  CleanupParams params;
  const net::Graph* g = nullptr;
  const IndexData* index = nullptr;
  const VoronoiResult* voronoi = nullptr;  // may be null (tests)

  // Consumes a COPY of the shared coarse graph (clean-up mutates it into
  // the refined skeleton).
  CleanupResult run(SkeletonGraph coarse) const;
};

// --- Stage 4b: pruning (per request) ----------------------------------------

struct PruneCmd {
  static constexpr const char* kName = "prune";

  PruneParams params;

  // In-place on the request's owned skeleton; returns nodes removed.
  int run(SkeletonGraph& skeleton) const;
};

}  // namespace skelex::core
