// skelex/core/stage_trace.h
//
// Per-stage accounting for a pipeline run: where the wall-clock time
// went, how many nodes each stage touched, and how many messages it
// cost. Centralized stages report the workspace's adjacency-entry scan
// count as the message proxy (one scanned adjacency entry == one
// reception of the corresponding flood); distributed stages report the
// engine's real transmission counts. Every bench JSON carries the trace
// so regressions show up per stage, not just in the total.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace skelex::core {

struct StageTrace {
  struct Stage {
    std::string name;
    double millis = 0.0;        // wall time spent in the stage
    int nodes = 0;              // nodes the stage operated on
    long long messages = 0;     // radio messages (distributed) or
                                // adjacency scans (centralized proxy)
  };

  std::vector<Stage> stages;

  double total_millis() const {
    double t = 0.0;
    for (const Stage& s : stages) t += s.millis;
    return t;
  }

  long long total_messages() const {
    long long m = 0;
    for (const Stage& s : stages) m += s.messages;
    return m;
  }

  const Stage* find(std::string_view name) const {
    for (const Stage& s : stages) {
      if (s.name == name) return &s;
    }
    return nullptr;
  }

  void add(std::string name, double millis, int nodes, long long messages) {
    stages.push_back({std::move(name), millis, nodes, messages});
  }
};

}  // namespace skelex::core
