// skelex/core/stage_trace.h
//
// Per-stage accounting for a pipeline run: where the wall-clock time
// went, how many nodes each stage touched, and how many messages it
// cost. Centralized stages report the workspace's adjacency-entry scan
// count as the message proxy (one scanned adjacency entry == one
// reception of the corresponding flood); distributed stages report the
// engine's real transmission counts. Every bench JSON carries the trace
// so regressions show up per stage, not just in the total.
//
// StageTrace is a view over emitted spans, not a parallel bookkeeping
// path: ScopedStage takes ONE wall-time measurement per stage, emits it
// as a span to the ambient obs::Tracer (rendered in Perfetto when a
// sink is installed), feeds the per-stage metrics counters, and appends
// the same numbers as a StageTrace entry.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/request_trace.h"
#include "obs/trace.h"

namespace skelex::core {

struct StageTrace {
  struct Stage {
    std::string name;
    double millis = 0.0;        // wall time spent in the stage
    int nodes = 0;              // nodes the stage operated on
    long long messages = 0;     // radio messages (distributed) or
                                // adjacency scans (centralized proxy)
    long long bytes = 0;        // deterministic bytes-moved model of the
                                // stage's flood kernels (memory-bandwidth
                                // attribution; 0 for stages that run no
                                // workspace traversal)
  };

  std::vector<Stage> stages;

  double total_millis() const {
    double t = 0.0;
    for (const Stage& s : stages) t += s.millis;
    return t;
  }

  long long total_messages() const {
    long long m = 0;
    for (const Stage& s : stages) m += s.messages;
    return m;
  }

  const Stage* find(std::string_view name) const {
    for (const Stage& s : stages) {
      if (s.name == name) return &s;
    }
    return nullptr;
  }

  void add(std::string name, double millis, int nodes, long long messages,
           long long bytes = 0) {
    stages.push_back({std::move(name), millis, nodes, messages, bytes});
  }
};

// RAII stage span: measures wall time from construction to destruction
// (always — StageTrace is part of every result), then fans the single
// measurement out to the three consumers: the ambient trace sink (when
// one is installed), the global metrics registry (stage-labelled
// deterministic counters — no wall time), and the StageTrace.
class ScopedStage {
 public:
  ScopedStage(StageTrace& trace, std::string name, const char* cat = "pipeline")
      : trace_(trace),
        name_(std::move(name)),
        cat_(cat),
        start_us_(obs::Tracer::now_us()) {
    // Inside a served request (obs/request_trace.h) the stage also
    // becomes a child span of the request's tree; outside one this is a
    // single thread-local read.
    if (obs::RequestContext* ctx = obs::RequestContext::current()) {
      ctx_ = ctx;
      ctx_span_ = ctx->begin_span(name_, cat_);
    }
  }

  ScopedStage(const ScopedStage&) = delete;
  ScopedStage& operator=(const ScopedStage&) = delete;

  void set_nodes(int n) { nodes_ = n; }
  void set_messages(long long m) { messages_ = m; }
  // Bytes ride the span args and the StageTrace (memory-bandwidth
  // attribution for Perfetto), NOT the metrics registry: the stage_*
  // counter set is a stable exposition surface that byte-compare gates
  // pin down.
  void set_bytes(long long b) { bytes_ = b; }

  ~ScopedStage() {
    const double dur_us = obs::Tracer::now_us() - start_us_;
    if (ctx_ != nullptr) {
      ctx_->span_arg(ctx_span_, "nodes", nodes_);
      ctx_->span_arg(ctx_span_, "messages", messages_);
      ctx_->span_arg(ctx_span_, "bytes", bytes_);
      ctx_->end_span(ctx_span_);
    }
    if (obs::TraceSink* sink = obs::Tracer::current()) {
      obs::TraceEvent e;
      e.name = name_;
      e.cat = cat_;
      e.ts_us = start_us_;
      e.dur_us = dur_us;
      e.tid = obs::Tracer::tid();
      e.args.emplace_back("nodes", nodes_);
      e.args.emplace_back("messages", messages_);
      e.args.emplace_back("bytes", bytes_);
      sink->record(std::move(e));
    }
    auto& reg = obs::Registry::global();
    const obs::Labels labels{{"stage", name_}};
    reg.counter("stage_runs", labels).inc();
    reg.counter("stage_nodes", labels).inc(nodes_);
    reg.counter("stage_messages", labels).inc(messages_);
    trace_.add(std::move(name_), dur_us / 1000.0, nodes_, messages_, bytes_);
  }

 private:
  StageTrace& trace_;
  std::string name_;
  const char* cat_;
  double start_us_;
  obs::RequestContext* ctx_ = nullptr;
  int ctx_span_ = -1;
  int nodes_ = 0;
  long long messages_ = 0;
  long long bytes_ = 0;
};

}  // namespace skelex::core
