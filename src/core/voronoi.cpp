#include "core/voronoi.h"

#include <algorithm>
#include <map>
#include <set>
#include <stdexcept>

#include "net/bfs.h"

namespace skelex::core {

std::vector<int> VoronoiResult::path_to_site(int v) const {
  std::vector<int> path;
  if (site_of[static_cast<std::size_t>(v)] == -1) return path;
  for (int u = v; u != -1; u = parent[static_cast<std::size_t>(u)]) {
    path.push_back(u);
  }
  return path;
}

std::vector<int> VoronoiResult::path_to_second_site(int v) const {
  std::vector<int> path;
  if (!is_segment[static_cast<std::size_t>(v)]) return path;
  path.push_back(v);
  for (int u = via2[static_cast<std::size_t>(v)]; u != -1;
       u = parent[static_cast<std::size_t>(u)]) {
    path.push_back(u);
  }
  return path;
}

VoronoiResult build_voronoi(const net::CsrGraph& g, net::Workspace& ws,
                            std::vector<int> sites,
                            const VoronoiParams& params) {
  std::sort(sites.begin(), sites.end());
  sites.erase(std::unique(sites.begin(), sites.end()), sites.end());
  if (!sites.empty() && (sites.front() < 0 || sites.back() >= g.n())) {
    throw std::out_of_range("site id out of range");
  }

  VoronoiResult r;
  r.sites = std::move(sites);
  const std::size_t n = static_cast<std::size_t>(g.n());

  // Hop distance to the nearest site (well-defined regardless of ties).
  // Afterwards ws.queue holds the reachable nodes in BFS order, i.e.
  // nondecreasing distance — exactly the adoption order below.
  net::multi_source_bfs(g, r.sites, ws);
  r.dist = ws.dist;

  // Site adoption in synchronous-flood order: a node at distance d hears,
  // in the same round, the forwarded records of all its neighbors at
  // distance d-1 and adopts the smallest site id among them (parent = the
  // smallest-id neighbor carrying that site). Processing nodes by
  // increasing distance reproduces this exactly (within one distance
  // class the order is irrelevant: adoption reads only the already-final
  // d-1 class); core/protocols runs the same rule as real messages.
  r.site_of.assign(n, -1);
  r.parent.assign(n, -1);
  for (std::size_t i = 0; i < r.sites.size(); ++i) {
    r.site_of[static_cast<std::size_t>(r.sites[i])] = static_cast<int>(i);
  }
  {
    // SoA inner loop: the candidate scan reads only the flat dist /
    // site_of arrays through raw pointers and keeps the running best in
    // registers; the adoption rule and its tie-breaks are unchanged.
    const int* const off = g.offsets_data();
    const int* const degp = g.degrees_data();
    const int* const tgt = g.targets_data();
    const int* const dist = r.dist.data();
    int* const site_of = r.site_of.data();
    int* const parent = r.parent.data();
    long long scans = 0, processed = 0;
    for (int v : ws.queue) {
      if (dist[v] <= 0) continue;  // site
      ++processed;
      const int want = dist[v] - 1;
      const int dv = degp[v];
      const int* const row = tgt + off[v];
      scans += dv;
      int best_site = site_of[v];  // -1 until first adopter
      int best_par = parent[v];
      for (int i = 0; i < dv; ++i) {
        const int w = row[i];
        if (dist[w] != want) continue;
        const int sw = site_of[w];
        if (best_site == -1 || sw < best_site ||
            (sw == best_site && w < best_par)) {
          best_site = sw;
          best_par = w;
        }
      }
      site_of[v] = best_site;
      parent[v] = best_par;
    }
    ws.edge_scans += scans;
    ws.bytes_touched += 8 * (scans + processed);
  }

  r.site2_of.assign(n, -1);
  r.dist2.assign(n, net::kUnreached);
  r.via2.assign(n, -1);
  r.is_segment.assign(n, 0);
  r.is_voronoi_node.assign(n, 0);
  r.nearby.assign(n, {});

  // A node v would have received, from each neighbor w in another cell,
  // the message (site_of[w], dist[w] + 1): w forwards only its adopted
  // record. v keeps, per other site, the best within-alpha record. The
  // per-site best is tracked in a flat scratch vector (a handful of
  // entries per node at most; sorted by site before publishing).
  std::vector<VoronoiResult::NearbySite> others;  // site -> best record
  const int* const off = g.offsets_data();
  const int* const degp = g.degrees_data();
  const int* const tgt = g.targets_data();
  const int* const dist = r.dist.data();
  const int* const site_of = r.site_of.data();
  int* const site2_of = r.site2_of.data();
  int* const dist2 = r.dist2.data();
  int* const via2 = r.via2.data();
  long long scans = 0, processed = 0;
  for (int v = 0; v < g.n(); ++v) {
    const std::size_t vi = static_cast<std::size_t>(v);
    const int sv = site_of[v];
    if (sv == -1) continue;  // disconnected from all sites
    ++processed;
    others.clear();
    const int dv = degp[v];
    const int* const row = tgt + off[v];
    scans += dv;
    // Running second-site best, kept in registers across the scan.
    int b_site = -1, b_dist = net::kUnreached, b_via = -1;
    for (int i = 0; i < dv; ++i) {
      const int w = row[i];
      const int sw = site_of[w];
      if (sw == -1 || sw == sv) continue;
      const int d2 = dist[w] + 1;
      if (std::abs(d2 - dist[v]) > params.alpha) continue;
      VoronoiResult::NearbySite* rec = nullptr;
      for (auto& o : others) {
        if (o.site == sw) { rec = &o; break; }
      }
      if (rec == nullptr) {
        others.push_back({sw, d2, w});
      } else if (d2 < rec->dist || (d2 == rec->dist && w < rec->via)) {
        *rec = {sw, d2, w};
      }
      const bool better = b_site == -1 || d2 < b_dist ||
                          (d2 == b_dist && sw < b_site) ||
                          (d2 == b_dist && sw == b_site && w < b_via);
      if (better) {
        b_site = sw;
        b_dist = d2;
        b_via = w;
      }
    }
    site2_of[v] = b_site;
    dist2[v] = b_dist;
    via2[v] = b_via;
    if (b_site != -1) r.is_segment[vi] = 1;
    if (others.size() >= 2) r.is_voronoi_node[vi] = 1;
    r.nearby[vi].reserve(others.size() + 1);
    r.nearby[vi].push_back({sv, dist[v], r.parent[vi]});
    for (const auto& rec : others) r.nearby[vi].push_back(rec);
    std::sort(r.nearby[vi].begin(), r.nearby[vi].end(),
              [](const auto& a, const auto& b) { return a.site < b.site; });
  }
  ws.edge_scans += scans;
  ws.bytes_touched += 8 * (scans + processed);
  return r;
}

VoronoiResult build_voronoi(const net::CsrGraph& g, net::Workspace& ws,
                            std::vector<int> sites, const Params& params) {
  params.validate();
  return build_voronoi(g, ws, std::move(sites), params.voronoi_params());
}

VoronoiResult build_voronoi(const net::Graph& g, std::vector<int> sites,
                            const Params& params) {
  net::Workspace ws;
  return build_voronoi(g.csr(), ws, std::move(sites), params);
}

std::vector<int> VoronoiResult::path_to_nearby(
    int v, const NearbySite& record) const {
  std::vector<int> path{v};
  int u = record.via;
  while (u != -1) {
    path.push_back(u);
    u = parent[static_cast<std::size_t>(u)];
  }
  return path;
}

std::vector<AdjacentPair> adjacent_pairs(const VoronoiResult& vor) {
  std::map<std::pair<int, int>, std::vector<int>> pairs;
  for (std::size_t v = 0; v < vor.is_segment.size(); ++v) {
    if (!vor.is_segment[v]) continue;
    const int a = std::min(vor.site_of[v], vor.site2_of[v]);
    const int b = std::max(vor.site_of[v], vor.site2_of[v]);
    pairs[{a, b}].push_back(static_cast<int>(v));
  }
  std::vector<AdjacentPair> out;
  out.reserve(pairs.size());
  for (auto& [key, nodes] : pairs) {
    out.push_back({key.first, key.second, std::move(nodes)});
  }
  return out;
}

}  // namespace skelex::core
