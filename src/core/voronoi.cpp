#include "core/voronoi.h"

#include <algorithm>
#include <map>
#include <set>
#include <stdexcept>

#include "net/bfs.h"

namespace skelex::core {

std::vector<int> VoronoiResult::path_to_site(int v) const {
  std::vector<int> path;
  if (site_of[static_cast<std::size_t>(v)] == -1) return path;
  for (int u = v; u != -1; u = parent[static_cast<std::size_t>(u)]) {
    path.push_back(u);
  }
  return path;
}

std::vector<int> VoronoiResult::path_to_second_site(int v) const {
  std::vector<int> path;
  if (!is_segment[static_cast<std::size_t>(v)]) return path;
  path.push_back(v);
  for (int u = via2[static_cast<std::size_t>(v)]; u != -1;
       u = parent[static_cast<std::size_t>(u)]) {
    path.push_back(u);
  }
  return path;
}

VoronoiResult build_voronoi(const net::CsrGraph& g, net::Workspace& ws,
                            std::vector<int> sites,
                            const VoronoiParams& params) {
  std::sort(sites.begin(), sites.end());
  sites.erase(std::unique(sites.begin(), sites.end()), sites.end());
  if (!sites.empty() && (sites.front() < 0 || sites.back() >= g.n())) {
    throw std::out_of_range("site id out of range");
  }

  VoronoiResult r;
  r.sites = std::move(sites);
  const std::size_t n = static_cast<std::size_t>(g.n());

  // Hop distance to the nearest site (well-defined regardless of ties).
  // Afterwards ws.queue holds the reachable nodes in BFS order, i.e.
  // nondecreasing distance — exactly the adoption order below.
  net::multi_source_bfs(g, r.sites, ws);
  r.dist = ws.dist;

  // Site adoption in synchronous-flood order: a node at distance d hears,
  // in the same round, the forwarded records of all its neighbors at
  // distance d-1 and adopts the smallest site id among them (parent = the
  // smallest-id neighbor carrying that site). Processing nodes by
  // increasing distance reproduces this exactly (within one distance
  // class the order is irrelevant: adoption reads only the already-final
  // d-1 class); core/protocols runs the same rule as real messages.
  r.site_of.assign(n, -1);
  r.parent.assign(n, -1);
  for (std::size_t i = 0; i < r.sites.size(); ++i) {
    r.site_of[static_cast<std::size_t>(r.sites[i])] = static_cast<int>(i);
  }
  for (int v : ws.queue) {
    const std::size_t vi = static_cast<std::size_t>(v);
    if (r.dist[vi] <= 0) continue;  // site
    ws.edge_scans += g.degree(v);
    for (int w : g.neighbors(v)) {
      const std::size_t wi = static_cast<std::size_t>(w);
      if (r.dist[wi] != r.dist[vi] - 1) continue;
      if (r.site_of[vi] == -1 || r.site_of[wi] < r.site_of[vi] ||
          (r.site_of[wi] == r.site_of[vi] && w < r.parent[vi])) {
        r.site_of[vi] = r.site_of[wi];
        r.parent[vi] = w;
      }
    }
  }

  r.site2_of.assign(n, -1);
  r.dist2.assign(n, net::kUnreached);
  r.via2.assign(n, -1);
  r.is_segment.assign(n, 0);
  r.is_voronoi_node.assign(n, 0);
  r.nearby.assign(n, {});

  // A node v would have received, from each neighbor w in another cell,
  // the message (site_of[w], dist[w] + 1): w forwards only its adopted
  // record. v keeps, per other site, the best within-alpha record. The
  // per-site best is tracked in a flat scratch vector (a handful of
  // entries per node at most; sorted by site before publishing).
  std::vector<VoronoiResult::NearbySite> others;  // site -> best record
  for (int v = 0; v < g.n(); ++v) {
    const std::size_t vi = static_cast<std::size_t>(v);
    if (r.site_of[vi] == -1) continue;  // disconnected from all sites
    others.clear();
    ws.edge_scans += g.degree(v);
    for (int w : g.neighbors(v)) {
      const std::size_t wi = static_cast<std::size_t>(w);
      if (r.site_of[wi] == -1 || r.site_of[wi] == r.site_of[vi]) continue;
      const int d2 = r.dist[wi] + 1;
      if (std::abs(d2 - r.dist[vi]) > params.alpha) continue;
      VoronoiResult::NearbySite* rec = nullptr;
      for (auto& o : others) {
        if (o.site == r.site_of[wi]) { rec = &o; break; }
      }
      if (rec == nullptr) {
        others.push_back({r.site_of[wi], d2, w});
      } else if (d2 < rec->dist || (d2 == rec->dist && w < rec->via)) {
        *rec = {r.site_of[wi], d2, w};
      }
      const bool better =
          r.site2_of[vi] == -1 || d2 < r.dist2[vi] ||
          (d2 == r.dist2[vi] && r.site_of[wi] < r.site2_of[vi]) ||
          (d2 == r.dist2[vi] && r.site_of[wi] == r.site2_of[vi] &&
           w < r.via2[vi]);
      if (better) {
        r.site2_of[vi] = r.site_of[wi];
        r.dist2[vi] = d2;
        r.via2[vi] = w;
      }
    }
    if (r.site2_of[vi] != -1) r.is_segment[vi] = 1;
    if (others.size() >= 2) r.is_voronoi_node[vi] = 1;
    r.nearby[vi].reserve(others.size() + 1);
    r.nearby[vi].push_back({r.site_of[vi], r.dist[vi], r.parent[vi]});
    for (const auto& rec : others) r.nearby[vi].push_back(rec);
    std::sort(r.nearby[vi].begin(), r.nearby[vi].end(),
              [](const auto& a, const auto& b) { return a.site < b.site; });
  }
  return r;
}

VoronoiResult build_voronoi(const net::CsrGraph& g, net::Workspace& ws,
                            std::vector<int> sites, const Params& params) {
  params.validate();
  return build_voronoi(g, ws, std::move(sites), params.voronoi_params());
}

VoronoiResult build_voronoi(const net::Graph& g, std::vector<int> sites,
                            const Params& params) {
  net::Workspace ws;
  return build_voronoi(g.csr(), ws, std::move(sites), params);
}

std::vector<int> VoronoiResult::path_to_nearby(
    int v, const NearbySite& record) const {
  std::vector<int> path{v};
  int u = record.via;
  while (u != -1) {
    path.push_back(u);
    u = parent[static_cast<std::size_t>(u)];
  }
  return path;
}

std::vector<AdjacentPair> adjacent_pairs(const VoronoiResult& vor) {
  std::map<std::pair<int, int>, std::vector<int>> pairs;
  for (std::size_t v = 0; v < vor.is_segment.size(); ++v) {
    if (!vor.is_segment[v]) continue;
    const int a = std::min(vor.site_of[v], vor.site2_of[v]);
    const int b = std::max(vor.site_of[v], vor.site2_of[v]);
    pairs[{a, b}].push_back(static_cast<int>(v));
  }
  std::vector<AdjacentPair> out;
  out.reserve(pairs.size());
  for (auto& [key, nodes] : pairs) {
    out.push_back({key.first, key.second, std::move(nodes)});
  }
  return out;
}

}  // namespace skelex::core
