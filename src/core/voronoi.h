// skelex/core/voronoi.h
//
// Stage 2: Voronoi cell construction (§III-B). Every critical skeleton
// node ("site") floods the network; each node adopts and forwards only
// the FIRST message it receives (its nearest site + reverse path), and
// additionally *records* — without forwarding — a later message from a
// different site whose hop count is within alpha of the adopted one.
// Nodes holding two records are segment nodes; nodes within alpha of
// three or more sites are Voronoi nodes (discrete Voronoi vertices).
//
// This file is the centralized equivalent of that flood: a multi-source
// BFS gives every node its adopted (first-arrival) record, and the
// messages a node would additionally have received are exactly the
// adopted records of its direct neighbors, at one extra hop.
// core/protocols.cpp runs the same rules as real messages; tests assert
// the two agree node-for-node.
#pragma once

#include <utility>
#include <vector>

#include "core/config.h"
#include "net/csr.h"
#include "net/graph.h"

namespace skelex::core {

struct VoronoiResult {
  // Site index -> node id (ascending node id order).
  std::vector<int> sites;

  // Per node: index into `sites` of the adopted (nearest) site, hop
  // distance to it, and the BFS parent on the reverse path toward it
  // (-1 at the sites themselves and at unreachable nodes).
  std::vector<int> site_of;
  std::vector<int> dist;
  std::vector<int> parent;

  // Per node: the best second record, or -1 when the node saw no
  // within-alpha message from another site. `via2` is the neighbor whose
  // forwarded message carried the record (the second reverse path starts
  // through it).
  std::vector<int> site2_of;
  std::vector<int> dist2;
  std::vector<int> via2;

  std::vector<char> is_segment;       // has a second record
  std::vector<char> is_voronoi_node;  // within alpha of >= 3 distinct sites

  // One record per site a node is within alpha of: the node's own cell
  // (via == the BFS parent, -1 at the site itself) plus every other site
  // it heard a within-alpha offer from (via == the neighbor whose
  // forwarded record carried it; the reverse path continues along that
  // neighbor's parent chain). Sorted by site index, one record per site
  // (the best offer: min dist, then min via). Voronoi nodes are exactly
  // the nodes with >= 3 records; the coarse-skeleton stage routes
  // junction-covered site pairs through them so that three mutually
  // adjacent cells produce a star, not a fake loop.
  struct NearbySite {
    int site = -1;  // index into `sites`
    int dist = -1;  // hop distance along the recorded reverse path
    int via = -1;   // next hop toward the site (-1: this node is the site)
    bool operator==(const NearbySite&) const = default;
  };
  std::vector<std::vector<NearbySite>> nearby;

  // Reverse path from v to the site of the given record (v first, site
  // last).
  std::vector<int> path_to_nearby(int v, const NearbySite& record) const;

  // The reverse path from v to its adopted site (v first, site last).
  std::vector<int> path_to_site(int v) const;
  // The reverse path from v through via2[v] to the second site. Empty if
  // v is not a segment node.
  std::vector<int> path_to_second_site(int v) const;

  int cell_count() const { return static_cast<int>(sites.size()); }
};

// Primary implementation: runs the Voronoi construction from the given
// sites (critical skeleton node ids; they will be sorted and
// deduplicated) on the CSR view, reusing the caller's workspace. Reads
// only the VoronoiParams slice — the stage command's keyed input.
VoronoiResult build_voronoi(const net::CsrGraph& g, net::Workspace& ws,
                            std::vector<int> sites,
                            const VoronoiParams& params);

// Full-Params wrapper (validates, then takes the slice).
VoronoiResult build_voronoi(const net::CsrGraph& g, net::Workspace& ws,
                            std::vector<int> sites, const Params& params);

// Compatibility wrapper over g.csr() with a private workspace.
VoronoiResult build_voronoi(const net::Graph& g, std::vector<int> sites,
                            const Params& params);

// All unordered adjacent site pairs (site indices, first < second) with
// their segment nodes. Two cells are adjacent iff at least one segment
// node records both sites.
struct AdjacentPair {
  int site_a = 0;  // index into VoronoiResult::sites
  int site_b = 0;
  std::vector<int> segment_nodes;  // node ids
};
std::vector<AdjacentPair> adjacent_pairs(const VoronoiResult& vor);

}  // namespace skelex::core
