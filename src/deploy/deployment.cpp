#include "deploy/deployment.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "exec/thread_pool.h"

namespace skelex::deploy {

using geom::Region;
using geom::Vec2;

namespace {
// Bounded rejection sampling: draws candidates in the bounding box until
// `accept` admits one. Throws if the acceptance rate is pathologically low
// (mis-specified region or density).
Vec2 sample_until(const Region& region, Rng& rng,
                  const std::function<bool(Vec2)>& accept) {
  Vec2 lo, hi;
  region.bounding_box(lo, hi);
  for (int attempt = 0; attempt < 1'000'000; ++attempt) {
    const Vec2 p{rng.uniform(lo.x, hi.x), rng.uniform(lo.y, hi.y)};
    if (accept(p)) return p;
  }
  throw std::runtime_error("deployment rejection sampling failed to accept");
}
}  // namespace

std::vector<Vec2> uniform_in_region(const Region& region, int count, Rng& rng) {
  if (count < 0) throw std::invalid_argument("negative node count");
  std::vector<Vec2> pts;
  pts.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    pts.push_back(
        sample_until(region, rng, [&](Vec2 p) { return region.contains(p); }));
  }
  return pts;
}

std::vector<Vec2> skewed_in_region(const Region& region, int count,
                                   const DensityFn& density, Rng& rng) {
  if (count < 0) throw std::invalid_argument("negative node count");
  std::vector<Vec2> pts;
  pts.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    pts.push_back(sample_until(region, rng, [&](Vec2 p) {
      return region.contains(p) && rng.next_double() < density(p);
    }));
  }
  return pts;
}

DensityFn vertical_split_density(double y_split, double below_keep,
                                 double above_keep) {
  return [=](Vec2 p) { return p.y < y_split ? below_keep : above_keep; };
}

DensityFn horizontal_split_density(double x_split, double left_keep,
                                   double right_keep) {
  return [=](Vec2 p) { return p.x < x_split ? left_keep : right_keep; };
}

std::vector<Vec2> jittered_grid_in_region(const Region& region, double pitch,
                                          double jitter, Rng& rng) {
  if (pitch <= 0) throw std::invalid_argument("pitch must be > 0");
  Vec2 lo, hi;
  region.bounding_box(lo, hi);
  std::vector<Vec2> pts;
  for (double y = lo.y + pitch / 2; y <= hi.y; y += pitch) {
    for (double x = lo.x + pitch / 2; x <= hi.x; x += pitch) {
      const Vec2 p{x + rng.uniform(-jitter, jitter) * pitch,
                   y + rng.uniform(-jitter, jitter) * pitch};
      if (region.contains(p)) pts.push_back(p);
    }
  }
  return pts;
}

std::vector<Vec2> counter_jittered_grid_in_region(const Region& region,
                                                  double pitch, double jitter,
                                                  std::uint64_t seed,
                                                  exec::ThreadPool* pool) {
  if (pitch <= 0) throw std::invalid_argument("pitch must be > 0");
  Vec2 lo, hi;
  region.bounding_box(lo, hi);
  // Index-based cell centers (lo + pitch/2 + i*pitch) rather than an
  // accumulating loop: every cell's center — and so every point — is a
  // pure function of its (row, column), independent of which chunk
  // computes it.
  const auto axis_count = [&](double a, double b) {
    int count = 0;
    while (a + pitch / 2 + count * pitch <= b) ++count;
    return count;
  };
  const int ny = axis_count(lo.y, hi.y);
  const int nx = axis_count(lo.x, hi.x);
  if (ny == 0 || nx == 0) return {};

  const auto fill_rows = [&](int iy0, int iy1, std::vector<Vec2>& out) {
    for (int iy = iy0; iy < iy1; ++iy) {
      const double y = lo.y + pitch / 2 + iy * pitch;
      const std::uint64_t prefix =
          counter_prefix(seed, static_cast<std::uint64_t>(iy));
      for (int ix = 0; ix < nx; ++ix) {
        const double x = lo.x + pitch / 2 + ix * pitch;
        // Two keyed draws per cell, mirroring the stateful sampler's
        // uniform(-jitter, jitter) mapping.
        const double ux =
            counter_uniform_tail(prefix, 2 * static_cast<std::uint64_t>(ix));
        const double uy = counter_uniform_tail(
            prefix, 2 * static_cast<std::uint64_t>(ix) + 1);
        const Vec2 p{x + (-jitter + 2 * jitter * ux) * pitch,
                     y + (-jitter + 2 * jitter * uy) * pitch};
        if (region.contains(p)) out.push_back(p);
      }
    }
  };

  exec::ThreadPool* p = pool;
  if (p == nullptr && static_cast<long long>(nx) * ny >= 32768) {
    p = &exec::shared_pool();
  }
  if (p == nullptr || p->thread_count() < 2 || ny < 2) {
    std::vector<Vec2> pts;
    fill_rows(0, ny, pts);
    return pts;
  }
  const int chunks = std::min(p->thread_count(), ny);
  std::vector<std::vector<Vec2>> per(static_cast<std::size_t>(chunks));
  p->parallel_chunks(ny, chunks, [&](int c, int b, int e) {
    fill_rows(b, e, per[static_cast<std::size_t>(c)]);
  });
  std::size_t total = 0;
  for (const auto& v : per) total += v.size();
  std::vector<Vec2> pts;
  pts.reserve(total);
  // Chunk-major merge of contiguous ascending row ranges == the serial
  // row-major order, at any chunk count.
  for (const auto& v : per) pts.insert(pts.end(), v.begin(), v.end());
  return pts;
}

double range_for_target_degree(const Region& region, int count,
                               double target_deg) {
  if (count < 2) throw std::invalid_argument("need >= 2 nodes");
  if (target_deg <= 0) throw std::invalid_argument("target degree must be > 0");
  return std::sqrt(target_deg * region.area() /
                   (std::numbers::pi * (count - 1)));
}

int count_for_target_degree(const Region& region, double range,
                            double target_deg) {
  if (range <= 0) throw std::invalid_argument("range must be > 0");
  if (target_deg <= 0) throw std::invalid_argument("target degree must be > 0");
  const double n =
      target_deg * region.area() / (std::numbers::pi * range * range) + 1.0;
  return static_cast<int>(std::lround(n));
}

}  // namespace skelex::deploy
