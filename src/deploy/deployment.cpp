#include "deploy/deployment.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace skelex::deploy {

using geom::Region;
using geom::Vec2;

namespace {
// Bounded rejection sampling: draws candidates in the bounding box until
// `accept` admits one. Throws if the acceptance rate is pathologically low
// (mis-specified region or density).
Vec2 sample_until(const Region& region, Rng& rng,
                  const std::function<bool(Vec2)>& accept) {
  Vec2 lo, hi;
  region.bounding_box(lo, hi);
  for (int attempt = 0; attempt < 1'000'000; ++attempt) {
    const Vec2 p{rng.uniform(lo.x, hi.x), rng.uniform(lo.y, hi.y)};
    if (accept(p)) return p;
  }
  throw std::runtime_error("deployment rejection sampling failed to accept");
}
}  // namespace

std::vector<Vec2> uniform_in_region(const Region& region, int count, Rng& rng) {
  if (count < 0) throw std::invalid_argument("negative node count");
  std::vector<Vec2> pts;
  pts.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    pts.push_back(
        sample_until(region, rng, [&](Vec2 p) { return region.contains(p); }));
  }
  return pts;
}

std::vector<Vec2> skewed_in_region(const Region& region, int count,
                                   const DensityFn& density, Rng& rng) {
  if (count < 0) throw std::invalid_argument("negative node count");
  std::vector<Vec2> pts;
  pts.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    pts.push_back(sample_until(region, rng, [&](Vec2 p) {
      return region.contains(p) && rng.next_double() < density(p);
    }));
  }
  return pts;
}

DensityFn vertical_split_density(double y_split, double below_keep,
                                 double above_keep) {
  return [=](Vec2 p) { return p.y < y_split ? below_keep : above_keep; };
}

DensityFn horizontal_split_density(double x_split, double left_keep,
                                   double right_keep) {
  return [=](Vec2 p) { return p.x < x_split ? left_keep : right_keep; };
}

std::vector<Vec2> jittered_grid_in_region(const Region& region, double pitch,
                                          double jitter, Rng& rng) {
  if (pitch <= 0) throw std::invalid_argument("pitch must be > 0");
  Vec2 lo, hi;
  region.bounding_box(lo, hi);
  std::vector<Vec2> pts;
  for (double y = lo.y + pitch / 2; y <= hi.y; y += pitch) {
    for (double x = lo.x + pitch / 2; x <= hi.x; x += pitch) {
      const Vec2 p{x + rng.uniform(-jitter, jitter) * pitch,
                   y + rng.uniform(-jitter, jitter) * pitch};
      if (region.contains(p)) pts.push_back(p);
    }
  }
  return pts;
}

double range_for_target_degree(const Region& region, int count,
                               double target_deg) {
  if (count < 2) throw std::invalid_argument("need >= 2 nodes");
  if (target_deg <= 0) throw std::invalid_argument("target degree must be > 0");
  return std::sqrt(target_deg * region.area() /
                   (std::numbers::pi * (count - 1)));
}

int count_for_target_degree(const Region& region, double range,
                            double target_deg) {
  if (range <= 0) throw std::invalid_argument("range must be > 0");
  if (target_deg <= 0) throw std::invalid_argument("target degree must be > 0");
  const double n =
      target_deg * region.area() / (std::numbers::pi * range * range) + 1.0;
  return static_cast<int>(std::lround(n));
}

}  // namespace skelex::deploy
