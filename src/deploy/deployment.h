// skelex/deploy/deployment.h
//
// Node deployment generators. The paper's default (§IV): "nodes are
// deployed uniformly in the field". Fig. 8 additionally evaluates skewed
// distributions; we support a density function that biases acceptance.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "deploy/rng.h"
#include "geometry/polygon.h"
#include "geometry/vec2.h"

namespace skelex::exec {
class ThreadPool;
}

namespace skelex::deploy {

// Relative density at a point; values are compared to a uniform draw in
// [0, 1], so return values should lie in (0, 1]. 1 everywhere == uniform.
using DensityFn = std::function<double(geom::Vec2)>;

// `count` points uniformly at random inside `region` (rejection sampling
// against the bounding box).
std::vector<geom::Vec2> uniform_in_region(const geom::Region& region,
                                          int count, Rng& rng);

// Skewed deployment: a uniform candidate at p is kept with probability
// density(p). Exactly `count` accepted points are returned.
std::vector<geom::Vec2> skewed_in_region(const geom::Region& region, int count,
                                         const DensityFn& density, Rng& rng);

// Fig. 8(a): upper half denser than lower half.
DensityFn vertical_split_density(double y_split, double below_keep,
                                 double above_keep);

// Fig. 8(b): left part kept with probability `left_keep`, right with
// `right_keep` (paper: 0.65 / 1.00).
DensityFn horizontal_split_density(double x_split, double left_keep,
                                   double right_keep);

// Jittered grid: near-uniform coverage with controlled irregularity
// (jitter as a fraction of the grid pitch). Used by tests that need a
// connected low-variance deployment.
std::vector<geom::Vec2> jittered_grid_in_region(const geom::Region& region,
                                                double pitch, double jitter,
                                                Rng& rng);

// Counter-based jittered grid for large deployments: same geometry as
// jittered_grid_in_region, but each grid cell's two jitter draws are
// pure functions of (seed, row, column) via counter_uniform, and cell
// centers are computed by index (not accumulation). With no RNG state
// to thread, rows generate in parallel chunks with a chunk-major merge
// — the point sequence is identical at any thread or chunk count (it is
// NOT the same sequence as the stateful-Rng variant; pick one per
// scenario and keep it). `pool` may be null: rows are chunked on the
// shared pool above a size threshold, serially below it.
std::vector<geom::Vec2> counter_jittered_grid_in_region(
    const geom::Region& region, double pitch, double jitter,
    std::uint64_t seed, exec::ThreadPool* pool = nullptr);

// The UDG radio range that yields an expected average degree `target_deg`
// for `count` nodes uniform in `region` (ignoring boundary effects):
// E[deg] ~= (count - 1) * pi R^2 / area.
double range_for_target_degree(const geom::Region& region, int count,
                               double target_deg);

// The node count that yields expected degree `target_deg` at fixed radio
// range `range`.
int count_for_target_degree(const geom::Region& region, double range,
                            double target_deg);

}  // namespace skelex::deploy
