#include "deploy/rng.h"

#include <cmath>
#include <numbers>

namespace skelex::deploy {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * next_double();
}

std::uint64_t Rng::next_below(std::uint64_t n) {
  if (n == 0) return 0;
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % n);
  std::uint64_t v;
  do {
    v = next_u64();
  } while (v >= limit);
  return v % n;
}

double Rng::next_gaussian() {
  // Box-Muller; u1 in (0,1] so log() is finite.
  const double u1 = 1.0 - next_double();
  const double u2 = next_double();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

Rng Rng::split() { return Rng(next_u64() ^ 0xa0761d6478bd642fULL); }

namespace {
// splitmix64 finalizer: full-avalanche mixing of one 64-bit word.
std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
}  // namespace

std::uint64_t counter_hash(std::uint64_t seed, std::uint64_t k0,
                           std::uint64_t k1) {
  std::uint64_t z = mix64(seed + 0x9e3779b97f4a7c15ULL);
  z = mix64(z ^ (k0 + 0x9e3779b97f4a7c15ULL));
  return mix64(z ^ (k1 + 0x9e3779b97f4a7c15ULL));
}

double counter_uniform(std::uint64_t seed, std::uint64_t k0, std::uint64_t k1) {
  return static_cast<double>(counter_hash(seed, k0, k1) >> 11) * 0x1.0p-53;
}

std::uint64_t counter_prefix(std::uint64_t seed, std::uint64_t k0) {
  return mix64(mix64(seed + 0x9e3779b97f4a7c15ULL) ^
               (k0 + 0x9e3779b97f4a7c15ULL));
}

std::uint64_t counter_hash_tail(std::uint64_t prefix, std::uint64_t k1) {
  return mix64(prefix ^ (k1 + 0x9e3779b97f4a7c15ULL));
}

double counter_uniform_tail(std::uint64_t prefix, std::uint64_t k1) {
  return static_cast<double>(counter_hash_tail(prefix, k1) >> 11) * 0x1.0p-53;
}

void counter_uniform_batch(std::uint64_t prefix, std::uint64_t base_k1,
                           const int* ids, int count, double* out) {
  // One mix64 per element, no branches: the loop body is pure integer
  // arithmetic on independent lanes, so the compiler is free to unroll
  // and vectorize it.
  for (int i = 0; i < count; ++i) {
    const std::uint64_t k1 =
        base_k1 | static_cast<std::uint32_t>(ids[i] + 1);
    out[i] =
        static_cast<double>(counter_hash_tail(prefix, k1) >> 11) * 0x1.0p-53;
  }
}

}  // namespace skelex::deploy
