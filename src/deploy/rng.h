// skelex/deploy/rng.h
//
// Deterministic, seedable random number generation. Every stochastic
// component of the library (deployments, QUDG/log-normal link decisions)
// draws from an explicitly threaded Rng so that experiments are exactly
// reproducible from a seed; nothing reads global state.
#pragma once

#include <cstdint>

namespace skelex::deploy {

// xoshiro256** — fast, high-quality, and trivially seedable via splitmix64.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  std::uint64_t next_u64();

  // Uniform in [0, 1).
  double next_double();

  // Uniform in [lo, hi).
  double uniform(double lo, double hi);

  // Uniform integer in [0, n).
  std::uint64_t next_below(std::uint64_t n);

  // Standard normal via Box-Muller (no cached spare: keeps state minimal).
  double next_gaussian();

  // Derive an independent stream (for per-component seeding).
  Rng split();

 private:
  std::uint64_t s_[4];
};

}  // namespace skelex::deploy
