// skelex/deploy/rng.h
//
// Deterministic, seedable random number generation. Every stochastic
// component of the library (deployments, QUDG/log-normal link decisions)
// draws from an explicitly threaded Rng so that experiments are exactly
// reproducible from a seed; nothing reads global state.
#pragma once

#include <cstdint>

namespace skelex::deploy {

// xoshiro256** — fast, high-quality, and trivially seedable via splitmix64.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  std::uint64_t next_u64();

  // Uniform in [0, 1).
  double next_double();

  // Uniform in [lo, hi).
  double uniform(double lo, double hi);

  // Uniform integer in [0, n).
  std::uint64_t next_below(std::uint64_t n);

  // Standard normal via Box-Muller (no cached spare: keeps state minimal).
  double next_gaussian();

  // Derive an independent stream (for per-component seeding).
  Rng split();

 private:
  std::uint64_t s_[4];
};

// --- Counter-based (stateless) draws -----------------------------------------
//
// A counter-based draw is a pure function of (seed, k0, k1): unlike a
// sequential generator there is no state to thread, so the value of a
// draw does not depend on how many draws happened before it or on which
// thread performs it. sim::Engine uses these for per-delivery loss and
// jitter decisions keyed by (lifetime round, sender, receiver, emission
// index), which is what makes its chunk-parallel round execution
// bit-identical to the serial schedule at any thread count. The mixing
// function is the splitmix64 finalizer (same family as
// exec::derive_seed), applied once per key word.
std::uint64_t counter_hash(std::uint64_t seed, std::uint64_t k0,
                           std::uint64_t k1);

// counter_hash mapped to a uniform double in [0, 1).
double counter_uniform(std::uint64_t seed, std::uint64_t k0, std::uint64_t k1);

// --- Batched counter draws ---------------------------------------------------
//
// counter_hash(seed, k0, k1) mixes three words in sequence; when many
// draws share (seed, k0) — e.g. every receiver of one broadcast shares
// the (round, sender) half of the key — the first two mixes can be
// hoisted and only the k1 mix paid per draw. The split is exact:
//
//   counter_hash(seed, k0, k1)
//     == counter_hash_tail(counter_prefix(seed, k0), k1)
//
// bit for bit, so batched and scalar draws are interchangeable. The
// tail is a single data-independent mix per element — a tight loop over
// a receiver array that the compiler can unroll and vectorize.

// The (seed, k0)-dependent half of counter_hash, hoisted.
std::uint64_t counter_prefix(std::uint64_t seed, std::uint64_t k0);

// Finishes a draw from a hoisted prefix. Identity above holds exactly.
std::uint64_t counter_hash_tail(std::uint64_t prefix, std::uint64_t k1);

// counter_hash_tail mapped to a uniform double in [0, 1) — bit-equal to
// counter_uniform(seed, k0, k1) for the matching prefix.
double counter_uniform_tail(std::uint64_t prefix, std::uint64_t k1);

// Strided batch: out[i] = counter_uniform(seed, k0, base_k1 | (ids[i] + 1))
// for i in [0, count), evaluated via one hoisted prefix and one mix per
// element. This is the engine's per-delivery loss key shape (k1 packs
// the emission index in the high word and receiver + 1 in the low word);
// `out` must hold `count` doubles.
void counter_uniform_batch(std::uint64_t prefix, std::uint64_t base_k1,
                           const int* ids, int count, double* out);

}  // namespace skelex::deploy
