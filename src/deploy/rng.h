// skelex/deploy/rng.h
//
// Deterministic, seedable random number generation. Every stochastic
// component of the library (deployments, QUDG/log-normal link decisions)
// draws from an explicitly threaded Rng so that experiments are exactly
// reproducible from a seed; nothing reads global state.
#pragma once

#include <cstdint>

namespace skelex::deploy {

// xoshiro256** — fast, high-quality, and trivially seedable via splitmix64.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  std::uint64_t next_u64();

  // Uniform in [0, 1).
  double next_double();

  // Uniform in [lo, hi).
  double uniform(double lo, double hi);

  // Uniform integer in [0, n).
  std::uint64_t next_below(std::uint64_t n);

  // Standard normal via Box-Muller (no cached spare: keeps state minimal).
  double next_gaussian();

  // Derive an independent stream (for per-component seeding).
  Rng split();

 private:
  std::uint64_t s_[4];
};

// --- Counter-based (stateless) draws -----------------------------------------
//
// A counter-based draw is a pure function of (seed, k0, k1): unlike a
// sequential generator there is no state to thread, so the value of a
// draw does not depend on how many draws happened before it or on which
// thread performs it. sim::Engine uses these for per-delivery loss and
// jitter decisions keyed by (lifetime round, sender, receiver, emission
// index), which is what makes its chunk-parallel round execution
// bit-identical to the serial schedule at any thread count. The mixing
// function is the splitmix64 finalizer (same family as
// exec::derive_seed), applied once per key word.
std::uint64_t counter_hash(std::uint64_t seed, std::uint64_t k0,
                           std::uint64_t k1);

// counter_hash mapped to a uniform double in [0, 1).
double counter_uniform(std::uint64_t seed, std::uint64_t k0, std::uint64_t k1);

}  // namespace skelex::deploy
