#include "deploy/scenario.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "net/spatial_hash.h"

namespace skelex::deploy {

std::vector<geom::Vec2> scenario_positions(const geom::Region& region,
                                           const ScenarioSpec& spec, Rng& rng) {
  if (spec.target_nodes < 2) throw std::invalid_argument("need >= 2 nodes");
  if (spec.style == Style::kUniform) {
    return uniform_in_region(region, spec.target_nodes, rng);
  }
  const double pitch = std::sqrt(region.area() / spec.target_nodes);
  if (spec.counter_sampling) {
    return counter_jittered_grid_in_region(region, pitch, spec.jitter,
                                           spec.seed);
  }
  return jittered_grid_in_region(region, pitch, spec.jitter, rng);
}

double calibrate_range(const std::vector<geom::Vec2>& positions,
                       double target_avg_deg) {
  if (positions.size() < 2) throw std::invalid_argument("need >= 2 positions");
  if (target_avg_deg <= 0) throw std::invalid_argument("bad target degree");
  const double n = static_cast<double>(positions.size());
  const auto avg_deg_at = [&](double r) {
    // count_pairs sweeps cell rows in parallel at large n; the count is
    // exact either way, so the bracketing probes are unchanged.
    const net::SpatialHash hash(positions, r);
    return 2.0 * static_cast<double>(hash.count_pairs(r)) / n;
  };
  // Bracket the target, starting from the mean nearest-grid spacing.
  geom::Vec2 lo_pt = positions.front(), hi_pt = positions.front();
  for (const geom::Vec2& p : positions) {
    lo_pt.x = std::min(lo_pt.x, p.x);
    lo_pt.y = std::min(lo_pt.y, p.y);
    hi_pt.x = std::max(hi_pt.x, p.x);
    hi_pt.y = std::max(hi_pt.y, p.y);
  }
  const double extent = std::max(hi_pt.x - lo_pt.x, hi_pt.y - lo_pt.y);
  const double pitch = std::sqrt(std::max(1e-12, (hi_pt.x - lo_pt.x) *
                                                     (hi_pt.y - lo_pt.y) / n));
  double lo = pitch * 0.25, hi = pitch;
  while (avg_deg_at(hi) < target_avg_deg) {
    lo = hi;
    hi *= 2.0;
    if (hi > 4.0 * extent) throw std::runtime_error("range calibration diverged");
  }
  // With the bracket fixed, every further probe radius is <= hi: collect
  // the squared pair distances within hi once and bisect on the sorted
  // array. Identical counts to re-running the spatial hash per probe
  // (for_each_pair keeps exactly the pairs with dist2 <= r^2).
  std::vector<double> dist2s;
  {
    const net::SpatialHash hash(positions, hi);
    const std::vector<std::pair<int, int>> pairs = hash.collect_pairs(hi);
    dist2s.reserve(pairs.size());
    for (const auto& [i, j] : pairs) {
      dist2s.push_back(geom::dist2(positions[static_cast<std::size_t>(i)],
                                   positions[static_cast<std::size_t>(j)]));
    }
    std::sort(dist2s.begin(), dist2s.end());
  }
  const auto avg_deg_from_sorted = [&](double r) {
    const auto it =
        std::upper_bound(dist2s.begin(), dist2s.end(), r * r);
    return 2.0 * static_cast<double>(it - dist2s.begin()) / n;
  };
  for (int it = 0; it < 40; ++it) {
    const double mid = 0.5 * (lo + hi);
    (avg_deg_from_sorted(mid) < target_avg_deg ? lo : hi) = mid;
  }
  // `hi` is the side whose degree is >= the target; returning it keeps
  // the calibrated graph at-or-above the requested density.
  return hi;
}

Scenario make_udg_scenario(const geom::Region& region,
                           const ScenarioSpec& spec) {
  Rng rng(spec.seed);
  std::vector<geom::Vec2> pts = scenario_positions(region, spec, rng);
  const double range = calibrate_range(pts, spec.target_avg_deg);
  const radio::UnitDiskModel model(range);

  Scenario s;
  s.deployed = static_cast<int>(pts.size());
  s.range = range;
  net::Graph full = net::build_graph(std::move(pts), model, rng);
  std::vector<int> orig;
  s.graph = net::largest_component_subgraph(full, orig);
  return s;
}

Scenario make_scenario(const geom::Region& region, const ScenarioSpec& spec,
                       const radio::RadioModel& model) {
  Rng rng(spec.seed);
  std::vector<geom::Vec2> pts = scenario_positions(region, spec, rng);
  Scenario s;
  s.deployed = static_cast<int>(pts.size());
  s.range = model.max_range();
  net::Graph full = net::build_graph(std::move(pts), model, rng);
  std::vector<int> orig;
  s.graph = net::largest_component_subgraph(full, orig);
  return s;
}

}  // namespace skelex::deploy
