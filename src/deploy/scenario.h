// skelex/deploy/scenario.h
//
// One-call construction of the paper's experimental networks: deploy
// nodes in a region, build the connectivity graph under a radio model,
// and keep the largest connected component (the unit every experiment
// operates on).
//
// Deployment styles:
//   * kJitterGrid (default) — nodes on a jittered grid. At the paper's
//     very low average degrees (5.75-6.8) a purely uniform Poisson
//     deployment fragments into many components; the perturbed grid is
//     the standard way simulation studies keep such sparse networks
//     connected while remaining irregular.
//   * kUniform — uniform at random (use with degree >~ 8, or accept the
//     largest component being a subset).
#pragma once

#include <cstdint>
#include <memory>

#include "deploy/deployment.h"
#include "deploy/rng.h"
#include "geometry/polygon.h"
#include "net/graph.h"
#include "radio/radio_model.h"

namespace skelex::deploy {

enum class Style { kJitterGrid, kUniform };

struct ScenarioSpec {
  int target_nodes = 2000;
  double target_avg_deg = 6.0;
  std::uint64_t seed = 1;
  Style style = Style::kJitterGrid;
  double jitter = 0.35;  // jitter fraction for kJitterGrid
  // kJitterGrid only: draw the jitter with the counter-based sampler
  // (deploy::counter_jittered_grid_in_region) so point generation runs
  // in parallel chunks. Produces a DIFFERENT (equally valid) point set
  // than the stateful sampler for the same seed — large-n sweeps opt in;
  // the existing golden-fingerprint scenarios must keep it off.
  bool counter_sampling = false;
};

struct Scenario {
  net::Graph graph;  // largest connected component, positions included
  double range = 0;  // the nominal radio range R used
  int deployed = 0;  // nodes deployed before taking the component
};

// Node positions only (before any radio model).
std::vector<geom::Vec2> scenario_positions(const geom::Region& region,
                                           const ScenarioSpec& spec, Rng& rng);

// The UDG range that gives these positions an average degree of
// `target_avg_deg`, found by binary search over the actual pair counts
// (exact for the deployment at hand, unlike the analytic estimate, which
// ignores boundary effects and grid discretization).
double calibrate_range(const std::vector<geom::Vec2>& positions,
                       double target_avg_deg);

// Deploy + UDG + largest component.
Scenario make_udg_scenario(const geom::Region& region, const ScenarioSpec& spec);

// Deploy + arbitrary radio model + largest component. `range` is the
// nominal range used when sizing the deployment for target_avg_deg; the
// model's own max_range governs links.
Scenario make_scenario(const geom::Region& region, const ScenarioSpec& spec,
                       const radio::RadioModel& model);

}  // namespace skelex::deploy
