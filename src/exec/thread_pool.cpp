#include "exec/thread_pool.h"

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace skelex::exec {

int default_thread_count() {
  if (const char* env = std::getenv("SKELEX_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v >= 1 && v <= 1024) {
      return static_cast<int>(v);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

ThreadPool::ThreadPool(int threads)
    : threads_(threads > 0 ? threads : default_thread_count()) {
  // A 1-thread pool runs everything inline in parallel_for.
  for (int t = 1; t < threads_; ++t) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      task = std::move(queue_.back());
      queue_.pop_back();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--in_flight_ == 0) done_cv_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(int n, const std::function<void(int)>& fn) {
  if (n <= 0) return;
  {
    // Deterministic facts only: the chunk count depends on the thread
    // count, so it goes into trace args, never into metrics.
    auto& reg = obs::Registry::global();
    static const obs::Counter calls = reg.counter("exec_parallel_for_calls");
    static const obs::Counter items = reg.counter("exec_items");
    calls.inc();
    items.inc(n);
  }
  const int chunks = std::min(threads_, n);
  obs::ScopedSpan span("exec.parallel_for", "exec");
  span.arg("items", n);
  span.arg("chunks", chunks);
  parallel_chunks(n, chunks, [&fn](int, int b, int e) {
    for (int i = b; i < e; ++i) fn(i);
  });
}

void ThreadPool::parallel_chunks(int n, int chunks,
                                 const std::function<void(int, int, int)>& fn) {
  if (n <= 0) return;
  chunks = std::clamp(chunks, 1, n);
  // The sink is resolved ONCE here, on the submitting thread, so chunks
  // running on pool workers emit into the submitter's sink (a worker has
  // no thread-local override of its own). With no sink the hot path
  // reads no clock.
  obs::TraceSink* const sink = obs::Tracer::current();
  // Chunk boundaries depend only on (n, chunks): chunk c covers
  // [c*n/chunks, (c+1)*n/chunks).
  const auto chunk_begin = [&](int c) {
    return static_cast<int>(static_cast<long long>(c) * n / chunks);
  };
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(chunks));
  const double submit_us = sink != nullptr ? obs::Tracer::now_us() : 0.0;
  const auto run_chunk = [&](int c) {
    const double start_us = sink != nullptr ? obs::Tracer::now_us() : 0.0;
    try {
      fn(c, chunk_begin(c), chunk_begin(c + 1));
    } catch (...) {
      errors[static_cast<std::size_t>(c)] = std::current_exception();
    }
    if (sink != nullptr) {
      obs::TraceEvent ev;
      ev.name = "exec.chunk";
      ev.cat = "exec";
      ev.ts_us = start_us;
      ev.dur_us = obs::Tracer::now_us() - start_us;
      ev.tid = obs::Tracer::tid();
      ev.args = {{"chunk", c},
                 {"items", chunk_begin(c + 1) - chunk_begin(c)},
                 {"queue_wait_us",
                  static_cast<std::int64_t>(start_us - submit_us)}};
      sink->record(std::move(ev));
    }
  };
  if (chunks == 1 || workers_.empty()) {
    for (int c = 0; c < chunks; ++c) run_chunk(c);
  } else {
    // Workers take chunks 1..; the calling thread runs chunk 0 and then
    // helps drain the queue instead of blocking idle.
    {
      std::lock_guard<std::mutex> lock(mu_);
      in_flight_ += chunks - 1;
      for (int c = 1; c < chunks; ++c) {
        queue_.push_back([&run_chunk, c] { run_chunk(c); });
      }
    }
    work_cv_.notify_all();
    run_chunk(0);
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mu_);
        if (queue_.empty()) break;
        task = std::move(queue_.back());
        queue_.pop_back();
      }
      task();
      std::lock_guard<std::mutex> lock(mu_);
      if (--in_flight_ == 0) done_cv_.notify_all();
    }
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [this] { return in_flight_ == 0; });
  }
  for (const std::exception_ptr& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

ThreadPool& shared_pool() {
  static ThreadPool pool;
  return pool;
}

std::uint64_t derive_seed(std::uint64_t base, std::uint64_t index) {
  std::uint64_t z = base + (index + 1) * 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace skelex::exec
