#include "exec/thread_pool.h"

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <utility>

#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace skelex::exec {

int default_thread_count() {
  if (const char* env = std::getenv("SKELEX_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v >= 1 && v <= 1024) {
      return static_cast<int>(v);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

ThreadPool::ThreadPool(int threads)
    : threads_(threads > 0 ? threads : default_thread_count()) {
  // A 1-thread pool runs everything inline in parallel_for / submit.
  for (int t = 1; t < threads_; ++t) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

namespace {

// Request-count-invariant pool instruments: submit()/completion of
// fire-and-forget tasks only. parallel_* chunks never touch these — a
// chunk count depends on the thread count, a request count does not.
const obs::Counter& pool_submitted() {
  static const obs::Counter c =
      obs::Registry::global().counter("exec_pool_submitted_total");
  return c;
}

const obs::Counter& pool_completed() {
  static const obs::Counter c =
      obs::Registry::global().counter("exec_pool_completed_total");
  return c;
}

}  // namespace

void ThreadPool::run_task(Task task, std::unique_lock<std::mutex>& lock) {
  lock.unlock();
  task.fn();
  if (task.group == nullptr) pool_completed().inc();
  lock.lock();
  if (task.group != nullptr && --task.group->remaining == 0) {
    task.group->cv.notify_all();
  }
}

void ThreadPool::worker_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    // Idle workers BLOCK here — no polling, no yield loop — so an idle
    // pool costs (near) zero CPU however long it lives.
    work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
    if (queue_.empty()) return;  // stop_ and drained
    Task task = std::move(queue_.front());
    queue_.pop_front();
    run_task(std::move(task), lock);
  }
}

void ThreadPool::submit(std::function<void()> task) {
  pool_submitted().inc();
  if (workers_.empty()) {
    // No workers to hand off to: run inline (documented 1-thread
    // semantics; the service on a 1-core host serializes requests).
    task();
    pool_completed().inc();
    return;
  }
  std::size_t depth = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(Task{std::move(task), nullptr});
    depth = queue_.size();
  }
  {
    auto& reg = obs::Registry::global();
    static const obs::Gauge peak = reg.gauge("exec_pool_queue_depth_peak");
    peak.set(static_cast<double>(depth));
  }
  const int warn = queue_warn_depth_.load(std::memory_order_relaxed);
  if (warn > 0 && depth >= static_cast<std::size_t>(warn)) {
    // The logger rate-limits per event name, so a sustained backlog
    // costs a token-bucket check, not a log line per submit.
    obs::log_warn("pool_queue_deep",
                  {{"depth", static_cast<std::int64_t>(depth)},
                   {"limit", static_cast<std::int64_t>(warn)}});
  }
  work_cv_.notify_one();
}

void ThreadPool::set_queue_warn_depth(int depth) {
  queue_warn_depth_.store(depth, std::memory_order_relaxed);
}

std::size_t ThreadPool::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void ThreadPool::parallel_for(int n, const std::function<void(int)>& fn) {
  if (n <= 0) return;
  {
    // Deterministic facts only: the chunk count depends on the thread
    // count, so it goes into trace args, never into metrics.
    auto& reg = obs::Registry::global();
    static const obs::Counter calls = reg.counter("exec_parallel_for_calls");
    static const obs::Counter items = reg.counter("exec_items");
    calls.inc();
    items.inc(n);
  }
  const int chunks = std::min(threads_, n);
  obs::ScopedSpan span("exec.parallel_for", "exec");
  span.arg("items", n);
  span.arg("chunks", chunks);
  parallel_chunks(n, chunks, [&fn](int, int b, int e) {
    for (int i = b; i < e; ++i) fn(i);
  });
}

void ThreadPool::parallel_chunks(int n, int chunks,
                                 const std::function<void(int, int, int)>& fn) {
  if (n <= 0) return;
  chunks = std::clamp(chunks, 1, n);
  // The sink is resolved ONCE here, on the submitting thread, so chunks
  // running on pool workers emit into the submitter's sink (a worker has
  // no thread-local override of its own). With no sink the hot path
  // reads no clock.
  obs::TraceSink* const sink = obs::Tracer::current();
  // Chunk boundaries depend only on (n, chunks): chunk c covers
  // [c*n/chunks, (c+1)*n/chunks).
  const auto chunk_begin = [&](int c) {
    return static_cast<int>(static_cast<long long>(c) * n / chunks);
  };
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(chunks));
  const double submit_us = sink != nullptr ? obs::Tracer::now_us() : 0.0;
  const auto run_chunk = [&](int c) {
    const double start_us = sink != nullptr ? obs::Tracer::now_us() : 0.0;
    try {
      fn(c, chunk_begin(c), chunk_begin(c + 1));
    } catch (...) {
      errors[static_cast<std::size_t>(c)] = std::current_exception();
    }
    if (sink != nullptr) {
      obs::TraceEvent ev;
      ev.name = "exec.chunk";
      ev.cat = "exec";
      ev.ts_us = start_us;
      ev.dur_us = obs::Tracer::now_us() - start_us;
      ev.tid = obs::Tracer::tid();
      ev.args = {{"chunk", c},
                 {"items", chunk_begin(c + 1) - chunk_begin(c)},
                 {"queue_wait_us",
                  static_cast<std::int64_t>(start_us - submit_us)}};
      sink->record(std::move(ev));
    }
  };
  if (chunks == 1 || workers_.empty()) {
    for (int c = 0; c < chunks; ++c) run_chunk(c);
  } else {
    // Workers take chunks 1..; the calling thread runs chunk 0 first.
    // Completion is tracked by THIS invocation's stack-local group, so
    // concurrent parallel_chunks calls on the same pool never wait on
    // each other's chunks.
    Group group;
    group.remaining = chunks - 1;
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (int c = 1; c < chunks; ++c) {
        queue_.push_back(Task{[&run_chunk, c] { run_chunk(c); }, &group});
      }
    }
    work_cv_.notify_all();
    run_chunk(0);
    // Help drain whatever is at the head of the shared queue until this
    // group settles — running other invocations' tasks here is what
    // keeps nested/overlapping calls deadlock-free. When the queue is
    // empty but the group isn't settled, its last tasks are executing on
    // workers: block until they land.
    std::unique_lock<std::mutex> lock(mu_);
    while (group.remaining != 0) {
      if (!queue_.empty()) {
        Task task = std::move(queue_.front());
        queue_.pop_front();
        run_task(std::move(task), lock);
      } else {
        group.cv.wait(lock, [&group, this] {
          return group.remaining == 0 || !queue_.empty();
        });
      }
    }
  }
  for (const std::exception_ptr& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

ThreadPool& shared_pool() {
  static ThreadPool pool;
  return pool;
}

std::uint64_t derive_seed(std::uint64_t base, std::uint64_t index) {
  std::uint64_t z = base + (index + 1) * 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace skelex::exec
