// skelex/exec/thread_pool.h
//
// Minimal fixed-size thread pool with a deterministic parallel_for and a
// fire-and-forget submit() for daemon-style callers (svc/).
//
// Determinism contract: parallel_for(n, fn) calls fn(i) exactly once
// for every i in [0, n), partitioned into contiguous chunks. Which
// thread runs a chunk (and in what interleaving) is unspecified, so a
// deterministic caller writes fn's result into a slot indexed by i and
// does any ordered output (printing, JSON, SVG) after the call returns.
// Under that discipline the results are identical at 1 and N threads —
// the property bench/bench_util.h's SweepRunner and the parallel sweep
// benches rely on, and tests/test_exec.cpp asserts.
//
// Concurrency contract: the pool is fully shareable. Any number of
// threads may call parallel_for / parallel_chunks / submit on the SAME
// pool concurrently; each blocking call tracks completion through its
// own per-invocation group (not pool-wide counters), so one call never
// waits on another call's work. While a call's own chunks are pending
// it helps drain the shared queue — whichever invocation's tasks are at
// the head — which keeps nested parallelism deadlock-free. Idle workers
// BLOCK on a condition variable (zero CPU between bursts — measured by
// tests), which is what lets a long-lived extraction server keep a warm
// pool without burning a core.
//
// Thread count: explicit argument > SKELEX_THREADS environment variable
// > std::thread::hardware_concurrency(). A pool of 1 runs everything
// inline on the calling thread (no workers are spawned).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include <condition_variable>

namespace skelex::exec {

// SKELEX_THREADS if set to a positive integer, else hardware
// concurrency (at least 1).
int default_thread_count();

class ThreadPool {
 public:
  // threads <= 0 means default_thread_count().
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int thread_count() const { return threads_; }

  // Runs fn(i) for every i in [0, n), split into up to thread_count()
  // contiguous chunks, and blocks until all of them finish. If any fn
  // throws, the first exception (in chunk order) is rethrown here after
  // the remaining chunks complete.
  void parallel_for(int n, const std::function<void(int)>& fn);

  // Lower-level form: runs fn(c, begin, end) once per chunk c, where
  // chunk c covers [c*n/chunks, (c+1)*n/chunks) — boundaries depend only
  // on (n, chunks), never on scheduling. `chunks` is clamped to [1, n]
  // and further to thread_count() is NOT applied: callers that need a
  // fixed chunk count for deterministic per-chunk state (sim::Engine's
  // staging buckets) get exactly the count they asked for. Exception
  // policy matches parallel_for. Unlike parallel_for this records no
  // exec_* metrics: callers invoke it with thread-dependent shapes, and
  // metric snapshots must stay byte-identical at any thread count.
  void parallel_chunks(int n, int chunks,
                       const std::function<void(int, int, int)>& fn);

  // Fire-and-forget: enqueues `task` for a worker and returns
  // immediately. The task owns its error handling — an exception
  // escaping it terminates (there is nowhere to rethrow). On a 1-thread
  // pool (no workers) the task runs inline before returning. The
  // destructor drains all submitted tasks before joining.
  //
  // Each submit records exec_pool_submitted_total / (on completion)
  // exec_pool_completed_total and the exec_pool_queue_depth_peak
  // watermark. These count REQUESTS, not chunks, so they stay
  // thread-count-invariant; parallel_for/parallel_chunks work is
  // deliberately excluded from completion counting.
  void submit(std::function<void()> task);

  // Queue depth (fire-and-forget + pending chunks) at which submit()
  // emits a rate-limited "pool_queue_deep" warning log. <= 0 disables.
  void set_queue_warn_depth(int depth);

  // Tasks currently waiting in the shared queue (diagnostic; racy by
  // nature — by the time the caller looks, workers may have drained it).
  std::size_t queue_depth() const;

 private:
  // Completion tracker for one blocking invocation. Lives on the
  // caller's stack; `remaining` and the wait both run under mu_.
  struct Group {
    int remaining = 0;
    std::condition_variable cv;
  };
  struct Task {
    std::function<void()> fn;
    Group* group = nullptr;  // null: fire-and-forget
  };

  void worker_loop();
  // Runs `task` outside the lock, then reacquires and settles its group.
  void run_task(Task task, std::unique_lock<std::mutex>& lock);

  int threads_ = 1;
  std::vector<std::thread> workers_;
  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::deque<Task> queue_;
  bool stop_ = false;
  std::atomic<int> queue_warn_depth_{64};
};

// Global pool used by the bench sweep runner and the extraction service;
// constructed on first use with default_thread_count() threads.
ThreadPool& shared_pool();

// splitmix64 step: derives a statistically independent seed for cell
// `index` of a sweep from a base seed. Pure function — the per-cell RNG
// streams are identical however the cells are scheduled.
std::uint64_t derive_seed(std::uint64_t base, std::uint64_t index);

}  // namespace skelex::exec
