#include "geometry/medial_axis_ref.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace skelex::geom {

namespace {

// All boundary segments of a region, flattened, tagged with their ring
// (0 = outer, 1.. = holes) so one segment pass can also run the
// per-ring crossing-parity containment test.
struct Segment {
  Vec2 a, b;  // a is the earlier vertex along the ring
  int ring;
};

std::vector<Segment> boundary_segments(const Region& region) {
  std::vector<Segment> segs;
  int ring = 0;
  auto add_ring = [&segs, &ring](const Ring& r) {
    const auto& pts = r.points();
    for (std::size_t i = 0; i < pts.size(); ++i) {
      segs.push_back({pts[i], pts[(i + 1) % pts.size()], ring});
    }
    ++ring;
  };
  add_ring(region.outer());
  for (const Ring& h : region.holes()) add_ring(h);
  return segs;
}

}  // namespace

ReferenceMedialAxis::ReferenceMedialAxis(const Region& region,
                                         MedialAxisParams params) {
  const std::vector<Segment> segs = boundary_segments(region);
  Vec2 lo, hi;
  region.bounding_box(lo, hi);

  const int nrings = 1 + static_cast<int>(region.holes().size());
  std::vector<unsigned char> parity(static_cast<std::size_t>(nrings));
  std::vector<Vec2> touch;  // nearest-boundary candidates, reused per point
  for (double y = lo.y; y <= hi.y; y += params.grid_step) {
    for (double x = lo.x; x <= hi.x; x += params.grid_step) {
      const Vec2 p{x, y};

      // Cheap scan pass: squared nearest-boundary distance plus the
      // per-ring crossing parity of Ring::contains — no sqrt, no stores.
      // sqrt is monotone, so min over dist == sqrt of min over dist2
      // bitwise; and the on-edge short circuits of Region::contains only
      // differ from plain parity when p is within 1e-12 of the boundary,
      // points min_clearance discards anyway — so the clearance +
      // parity tests admit the identical sample set.
      std::fill(parity.begin(), parity.end(), static_cast<unsigned char>(0));
      double d2_min = std::numeric_limits<double>::infinity();
      for (const Segment& s : segs) {
        const Vec2 c = closest_point_on_segment(p, s.a, s.b);
        d2_min = std::min(d2_min, dist2(p, c));
        if ((s.b.y > p.y) != (s.a.y > p.y)) {
          const double x_cross =
              s.b.x + (p.y - s.b.y) * (s.a.x - s.b.x) / (s.a.y - s.b.y);
          if (p.x < x_cross) parity[static_cast<std::size_t>(s.ring)] ^= 1;
        }
      }
      const double d = std::sqrt(d2_min);
      if (d < params.min_clearance) continue;
      if (!parity[0]) continue;  // outside the outer ring
      bool in_hole = false;
      for (int h = 1; h < nrings; ++h) {
        if (parity[static_cast<std::size_t>(h)]) {
          in_hole = true;
          break;
        }
      }
      if (in_hole) continue;

      // Gather the boundary points that realize (approximately) that
      // distance, one candidate per segment close enough — only points
      // that survived clearance and containment pay this second pass.
      touch.clear();
      const double limit = d * (1.0 + params.tol);
      for (const Segment& s : segs) {
        const Vec2 c = closest_point_on_segment(p, s.a, s.b);
        if (dist(p, c) <= limit) touch.push_back(c);
      }

      // Medial when two touch points are far apart (lambda criterion).
      double max_sep = 0.0;
      for (std::size_t i = 0; i < touch.size() && max_sep < params.min_separation;
           ++i) {
        for (std::size_t j = i + 1; j < touch.size(); ++j) {
          max_sep = std::max(max_sep, dist(touch[i], touch[j]));
          if (max_sep >= params.min_separation) break;
        }
      }
      if (max_sep >= params.min_separation) {
        samples_.push_back({p, d});
      }
    }
  }
  build_buckets();
}

void ReferenceMedialAxis::build_buckets() {
  if (samples_.empty()) return;
  lo_ = {std::numeric_limits<double>::infinity(),
         std::numeric_limits<double>::infinity()};
  hi_ = {-std::numeric_limits<double>::infinity(),
         -std::numeric_limits<double>::infinity()};
  for (const MedialSample& s : samples_) {
    lo_.x = std::min(lo_.x, s.pos.x);
    lo_.y = std::min(lo_.y, s.pos.y);
    hi_.x = std::max(hi_.x, s.pos.x);
    hi_.y = std::max(hi_.y, s.pos.y);
  }
  cell_ = 5.0;
  nx_ = std::max(1, static_cast<int>((hi_.x - lo_.x) / cell_) + 1);
  ny_ = std::max(1, static_cast<int>((hi_.y - lo_.y) / cell_) + 1);
  buckets_.assign(static_cast<std::size_t>(nx_) * ny_, {});
  for (std::size_t i = 0; i < samples_.size(); ++i) {
    const int cx = static_cast<int>((samples_[i].pos.x - lo_.x) / cell_);
    const int cy = static_cast<int>((samples_[i].pos.y - lo_.y) / cell_);
    buckets_[bucket_index(cx, cy)].push_back(static_cast<int>(i));
  }
}

double ReferenceMedialAxis::distance_to_axis(Vec2 p) const {
  if (samples_.empty()) return std::numeric_limits<double>::infinity();
  // Expand rings of buckets around p until a candidate is found, then one
  // extra ring to make the result exact.
  const int cx = std::clamp(static_cast<int>((p.x - lo_.x) / cell_), 0, nx_ - 1);
  const int cy = std::clamp(static_cast<int>((p.y - lo_.y) / cell_), 0, ny_ - 1);
  double best = std::numeric_limits<double>::infinity();
  const int max_ring = std::max(nx_, ny_);
  for (int ring = 0; ring <= max_ring; ++ring) {
    bool any_cell = false;
    for (int dy = -ring; dy <= ring; ++dy) {
      for (int dx = -ring; dx <= ring; ++dx) {
        if (std::max(std::abs(dx), std::abs(dy)) != ring) continue;
        const int x = cx + dx, y = cy + dy;
        if (x < 0 || x >= nx_ || y < 0 || y >= ny_) continue;
        any_cell = true;
        for (int idx : buckets_[bucket_index(x, y)]) {
          best = std::min(best, dist(p, samples_[static_cast<std::size_t>(idx)].pos));
        }
      }
    }
    // Once we have a hit, cells further than (ring-1)*cell_ cannot beat it.
    if (best < (ring - 1) * cell_) break;
    if (!any_cell && ring > std::max(nx_, ny_)) break;
  }
  return best;
}

double ReferenceMedialAxis::coverage(const std::vector<Vec2>& points,
                                     double radius) const {
  if (samples_.empty()) return 1.0;
  if (points.empty()) return 0.0;
  std::size_t covered = 0;
  for (const MedialSample& s : samples_) {
    for (const Vec2& p : points) {
      if (dist2(s.pos, p) <= radius * radius) {
        ++covered;
        break;
      }
    }
  }
  return static_cast<double>(covered) / static_cast<double>(samples_.size());
}

}  // namespace skelex::geom
