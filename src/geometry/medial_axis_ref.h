// skelex/geometry/medial_axis_ref.h
//
// Continuous-domain reference medial axis, approximated on a grid.
//
// The paper argues skeleton quality visually ("the skeleton lies
// medially"). To quantify that we compute Blum's medial axis of the
// deployment region directly from the geometry: a grid point p is on the
// (lambda-)medial axis when its nearest boundary points are at least
// `min_separation` apart — equivalently, when the maximal inscribed disk
// at p touches the boundary at two well-separated points. This is the
// standard lambda-medial-axis filtration, which suppresses the unstable
// branches spawned by polygon vertices.
//
// The result supports two queries used by skelex::metrics:
//   * distance from an arbitrary point to the reference axis (medialness
//     of extracted skeleton nodes), and
//   * coverage: the fraction of reference-axis samples within a radius of
//     a set of points (does the extracted skeleton span the whole axis?).
#pragma once

#include <vector>

#include "geometry/polygon.h"
#include "geometry/vec2.h"

namespace skelex::geom {

struct MedialAxisParams {
  // Grid spacing in field units. ~1 gives a few thousand samples for the
  // 100x100 shapes.
  double grid_step = 1.0;
  // Relative tolerance when collecting "equally nearest" boundary points:
  // a boundary point counts as nearest if its distance is within
  // (1 + tol) * d(p).
  double tol = 0.08;
  // Minimum separation (in field units) between two nearest boundary
  // points for p to qualify as medial. Filters vertex-induced noise.
  double min_separation = 6.0;
  // Ignore points closer than this to the boundary (their maximal disks
  // are degenerate and any sensor-network skeleton is >= R away anyway).
  double min_clearance = 2.0;
};

struct MedialSample {
  Vec2 pos;
  double clearance = 0.0;  // distance to boundary = maximal disk radius
};

class ReferenceMedialAxis {
 public:
  ReferenceMedialAxis(const Region& region, MedialAxisParams params = {});

  const std::vector<MedialSample>& samples() const { return samples_; }
  bool empty() const { return samples_.empty(); }

  // Euclidean distance from p to the nearest reference-axis sample.
  // Returns +inf when the axis is empty.
  double distance_to_axis(Vec2 p) const;

  // Fraction of axis samples that lie within `radius` of at least one of
  // the given points. Returns 1.0 for an empty axis (vacuous coverage).
  double coverage(const std::vector<Vec2>& points, double radius) const;

 private:
  std::vector<MedialSample> samples_;
  // Uniform-grid buckets over samples_ for nearest queries.
  Vec2 lo_{}, hi_{};
  double cell_ = 1.0;
  int nx_ = 0, ny_ = 0;
  std::vector<std::vector<int>> buckets_;

  void build_buckets();
  int bucket_index(int cx, int cy) const { return cy * nx_ + cx; }
};

}  // namespace skelex::geom
