#include "geometry/polygon.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>
#include <stdexcept>

namespace skelex::geom {

Ring::Ring(std::vector<Vec2> pts) : pts_(std::move(pts)) {
  if (pts_.size() < 3) {
    throw std::invalid_argument("Ring needs at least 3 vertices");
  }
}

double Ring::signed_area() const {
  double a = 0.0;
  for (std::size_t i = 0; i < pts_.size(); ++i) {
    const Vec2& p = pts_[i];
    const Vec2& q = pts_[(i + 1) % pts_.size()];
    a += p.cross(q);
  }
  return 0.5 * a;
}

double Ring::perimeter() const {
  double len = 0.0;
  for (std::size_t i = 0; i < pts_.size(); ++i) {
    len += dist(pts_[i], pts_[(i + 1) % pts_.size()]);
  }
  return len;
}

bool Ring::contains(Vec2 p) const {
  // Crossing-number test with an on-edge short circuit so boundary points
  // are classified deterministically as inside.
  bool inside = false;
  const std::size_t n = pts_.size();
  for (std::size_t i = 0, j = n - 1; i < n; j = i++) {
    const Vec2& a = pts_[j];
    const Vec2& b = pts_[i];
    if (point_segment_distance(p, a, b) < 1e-12) return true;
    if ((b.y > p.y) != (a.y > p.y)) {
      const double x_cross = b.x + (p.y - b.y) * (a.x - b.x) / (a.y - b.y);
      if (p.x < x_cross) inside = !inside;
    }
  }
  return inside;
}

double Ring::distance_to(Vec2 p) const {
  double best = std::numeric_limits<double>::infinity();
  const std::size_t n = pts_.size();
  for (std::size_t i = 0; i < n; ++i) {
    best = std::min(best, point_segment_distance(p, pts_[i], pts_[(i + 1) % n]));
  }
  return best;
}

Vec2 Ring::closest_boundary_point(Vec2 p) const {
  double best = std::numeric_limits<double>::infinity();
  Vec2 best_pt = pts_.front();
  const std::size_t n = pts_.size();
  for (std::size_t i = 0; i < n; ++i) {
    const Vec2 c = closest_point_on_segment(p, pts_[i], pts_[(i + 1) % n]);
    const double d = dist2(p, c);
    if (d < best) {
      best = d;
      best_pt = c;
    }
  }
  return best_pt;
}

Ring Ring::reversed() const {
  std::vector<Vec2> r(pts_.rbegin(), pts_.rend());
  return Ring(std::move(r));
}

void Ring::bounding_box(Vec2& lo, Vec2& hi) const {
  lo = {std::numeric_limits<double>::infinity(),
        std::numeric_limits<double>::infinity()};
  hi = {-std::numeric_limits<double>::infinity(),
        -std::numeric_limits<double>::infinity()};
  for (const Vec2& p : pts_) {
    lo.x = std::min(lo.x, p.x);
    lo.y = std::min(lo.y, p.y);
    hi.x = std::max(hi.x, p.x);
    hi.y = std::max(hi.y, p.y);
  }
}

Region::Region(Ring outer, std::vector<Ring> holes, std::string name)
    : outer_(std::move(outer)), holes_(std::move(holes)), name_(std::move(name)) {
  for (const Ring& h : holes_) {
    for (const Vec2& p : h.points()) {
      if (!outer_.contains(p)) {
        throw std::invalid_argument("Region hole vertex outside outer ring");
      }
    }
  }
}

bool Region::contains(Vec2 p) const {
  if (!outer_.contains(p)) return false;
  for (const Ring& h : holes_) {
    // Being exactly on a hole edge counts as inside the region (closed
    // complement), so only strictly-interior hole points are excluded.
    if (h.distance_to(p) < 1e-12) return true;
    if (h.contains(p)) return false;
  }
  return true;
}

double Region::distance_to_boundary(Vec2 p) const {
  double best = outer_.distance_to(p);
  for (const Ring& h : holes_) best = std::min(best, h.distance_to(p));
  return best;
}

Vec2 Region::closest_boundary_point(Vec2 p) const {
  Vec2 best_pt = outer_.closest_boundary_point(p);
  double best = dist2(p, best_pt);
  for (const Ring& h : holes_) {
    const Vec2 c = h.closest_boundary_point(p);
    const double d = dist2(p, c);
    if (d < best) {
      best = d;
      best_pt = c;
    }
  }
  return best_pt;
}

double Region::area() const {
  double a = outer_.area();
  for (const Ring& h : holes_) a -= h.area();
  return a;
}

double Region::perimeter() const {
  double len = outer_.perimeter();
  for (const Ring& h : holes_) len += h.perimeter();
  return len;
}

void Region::bounding_box(Vec2& lo, Vec2& hi) const {
  outer_.bounding_box(lo, hi);
}

Ring make_rect(Vec2 lo, Vec2 hi) {
  return Ring({{lo.x, lo.y}, {hi.x, lo.y}, {hi.x, hi.y}, {lo.x, hi.y}});
}

Ring make_regular_polygon(Vec2 center, double radius, int sides, double phase) {
  if (sides < 3) throw std::invalid_argument("need >= 3 sides");
  std::vector<Vec2> pts;
  pts.reserve(static_cast<std::size_t>(sides));
  for (int i = 0; i < sides; ++i) {
    const double t = phase + 2.0 * std::numbers::pi * i / sides;
    pts.push_back(center + Vec2{radius * std::cos(t), radius * std::sin(t)});
  }
  return Ring(std::move(pts));
}

Ring make_flower(Vec2 center, double base, double amp, int petals, int samples) {
  if (samples < 12) throw std::invalid_argument("need >= 12 samples");
  std::vector<Vec2> pts;
  pts.reserve(static_cast<std::size_t>(samples));
  for (int i = 0; i < samples; ++i) {
    const double t = 2.0 * std::numbers::pi * i / samples;
    const double r = base + amp * std::cos(petals * t);
    pts.push_back(center + Vec2{r * std::cos(t), r * std::sin(t)});
  }
  return Ring(std::move(pts));
}

Ring make_star(Vec2 center, double outer_r, double inner_r, int points,
               double phase) {
  if (points < 3) throw std::invalid_argument("need >= 3 star points");
  std::vector<Vec2> pts;
  pts.reserve(static_cast<std::size_t>(2 * points));
  for (int i = 0; i < 2 * points; ++i) {
    const double r = (i % 2 == 0) ? outer_r : inner_r;
    const double t = phase + std::numbers::pi * i / points;
    pts.push_back(center + Vec2{r * std::cos(t), r * std::sin(t)});
  }
  return Ring(std::move(pts));
}

Ring make_thick_polyline(const std::vector<Vec2>& path, double half_width) {
  if (path.size() < 2) throw std::invalid_argument("path needs >= 2 points");
  if (half_width <= 0) throw std::invalid_argument("half_width must be > 0");
  // Offset each vertex by the averaged normal of its incident edges; walk
  // the left side forward and the right side backward to close the loop.
  const std::size_t n = path.size();
  std::vector<Vec2> normals(n);
  for (std::size_t i = 0; i < n; ++i) {
    Vec2 d{};
    if (i > 0) d += (path[i] - path[i - 1]).normalized();
    if (i + 1 < n) d += (path[i + 1] - path[i]).normalized();
    normals[i] = d.normalized().perp();
  }
  std::vector<Vec2> pts;
  pts.reserve(2 * n);
  for (std::size_t i = 0; i < n; ++i) pts.push_back(path[i] + normals[i] * half_width);
  for (std::size_t i = n; i-- > 0;) pts.push_back(path[i] - normals[i] * half_width);
  return Ring(std::move(pts));
}

}  // namespace skelex::geom
