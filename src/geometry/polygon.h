// skelex/geometry/polygon.h
//
// Polygonal regions with holes. A `Ring` is a simple closed polyline; a
// `Region` is one outer ring plus zero or more hole rings. Regions are the
// deployment fields for every experiment in the paper: sensors are
// scattered uniformly (or skewed) inside a Region, and the reference
// medial axis is computed against the Region's boundary.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "geometry/vec2.h"

namespace skelex::geom {

// A simple closed polygon given by its vertices in order (the closing
// edge last->first is implicit). Orientation is not prescribed; use
// signed_area() to query it.
class Ring {
 public:
  Ring() = default;
  explicit Ring(std::vector<Vec2> pts);

  const std::vector<Vec2>& points() const { return pts_; }
  std::size_t size() const { return pts_.size(); }
  bool empty() const { return pts_.empty(); }
  const Vec2& operator[](std::size_t i) const { return pts_[i]; }

  // Positive for counter-clockwise vertex order.
  double signed_area() const;
  double area() const { return std::abs(signed_area()); }
  double perimeter() const;

  // Even-odd (crossing number) test; points exactly on an edge count as
  // inside (the deployment generator treats the boundary as closed).
  bool contains(Vec2 p) const;

  // Distance from p to the nearest edge of the ring.
  double distance_to(Vec2 p) const;

  // The point on the ring's boundary closest to p.
  Vec2 closest_boundary_point(Vec2 p) const;

  // A ring with the vertex order reversed.
  Ring reversed() const;

  // Axis-aligned bounding box.
  void bounding_box(Vec2& lo, Vec2& hi) const;

 private:
  std::vector<Vec2> pts_;
};

// An outer boundary with zero or more holes. Invariant (checked on
// construction): every hole vertex lies inside the outer ring.
class Region {
 public:
  Region() = default;
  explicit Region(Ring outer, std::vector<Ring> holes = {},
                  std::string name = "region");

  const Ring& outer() const { return outer_; }
  const std::vector<Ring>& holes() const { return holes_; }
  const std::string& name() const { return name_; }

  // Inside the outer ring and outside every hole.
  bool contains(Vec2 p) const;

  // Euclidean distance to the nearest boundary (outer or any hole).
  double distance_to_boundary(Vec2 p) const;

  // The boundary point realizing distance_to_boundary(p).
  Vec2 closest_boundary_point(Vec2 p) const;

  // Area of the outer ring minus the hole areas.
  double area() const;

  double perimeter() const;

  void bounding_box(Vec2& lo, Vec2& hi) const;

  std::size_t hole_count() const { return holes_.size(); }

 private:
  Ring outer_;
  std::vector<Ring> holes_;
  std::string name_;
};

// Convenience constructors for rings used by shapes and tests.
Ring make_rect(Vec2 lo, Vec2 hi);
Ring make_regular_polygon(Vec2 center, double radius, int sides,
                          double phase = 0.0);
// r(theta) = base + amp * cos(petals * theta): flower/blob outlines.
Ring make_flower(Vec2 center, double base, double amp, int petals,
                 int samples = 180);
// n-pointed star alternating outer/inner radius.
Ring make_star(Vec2 center, double outer_r, double inner_r, int points,
               double phase = 0.0);
// A constant-width band around an open polyline (used for spiral/cactus
// arms): returns the closed outline.
Ring make_thick_polyline(const std::vector<Vec2>& path, double half_width);

}  // namespace skelex::geom
