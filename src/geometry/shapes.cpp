#include "geometry/shapes.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace skelex::geom::shapes {

namespace {
constexpr double kPi = std::numbers::pi;

Ring circle(Vec2 c, double r, int sides = 48) {
  return make_regular_polygon(c, r, sides);
}
}  // namespace

Region window() {
  // 100x100 frame, 2x2 panes. Frame width 14, inner cross bars width 12.
  Ring outer = make_rect({0, 0}, {100, 100});
  std::vector<Ring> panes;
  panes.push_back(make_rect({14, 14}, {44, 44}));
  panes.push_back(make_rect({56, 14}, {86, 44}));
  panes.push_back(make_rect({14, 56}, {44, 86}));
  panes.push_back(make_rect({56, 56}, {86, 86}));
  return Region(std::move(outer), std::move(panes), "window");
}

Region one_hole() {
  Ring outer = make_rect({0, 0}, {100, 90});
  // Concave, plus-shaped hole centered at (50, 45).
  Ring hole({{42, 20}, {58, 20}, {58, 37}, {75, 37}, {75, 53}, {58, 53},
             {58, 70}, {42, 70}, {42, 53}, {25, 53}, {25, 37}, {42, 37}});
  return Region(std::move(outer), {std::move(hole)}, "one_hole");
}

Region flower() {
  return Region(make_flower({50, 50}, 34, 12, 6, 144), {}, "flower");
}

Region smile() {
  Ring face = circle({50, 50}, 46, 72);
  std::vector<Ring> holes;
  holes.push_back(circle({34, 64}, 8, 24));
  holes.push_back(circle({66, 64}, 8, 24));
  // Mouth: a thick smile arc below the eyes.
  std::vector<Vec2> arc;
  for (int i = 0; i <= 28; ++i) {
    const double t = (200.0 + 140.0 * i / 28.0) * kPi / 180.0;
    arc.push_back(Vec2{50, 58} + Vec2{28 * std::cos(t), 28 * std::sin(t)});
  }
  holes.push_back(make_thick_polyline(arc, 5.0));
  return Region(std::move(face), std::move(holes), "smile");
}

Region music() {
  // Eighth note: head (disk at bottom-left), stem, and a flag hook.
  const Vec2 head_c{32, 20};
  const double head_r = 15;
  std::vector<Vec2> pts;
  // Stem top-right and flag.
  pts.push_back({47, 82});
  pts.push_back({58, 74});
  pts.push_back({64, 62});
  pts.push_back({58, 64});
  pts.push_back({49, 60});
  pts.push_back({47, 56});
  // Down the right side of the stem to the head's rightmost point (47, 20).
  pts.push_back({47, 26});
  // Around the head: from angle 0 down through the bottom and left, up to
  // the point where the head's rim meets the stem's left edge (x = 41).
  for (int deg = 0; deg >= -180; deg -= 12) {
    const double t = deg * kPi / 180.0;
    pts.push_back(head_c + Vec2{head_r * std::cos(t), head_r * std::sin(t)});
  }
  for (int deg = 168; deg >= 60; deg -= 12) {
    const double t = deg * kPi / 180.0;
    pts.push_back(head_c + Vec2{head_r * std::cos(t), head_r * std::sin(t)});
  }
  // Up the left side of the stem.
  pts.push_back({41, 34});
  pts.push_back({41, 82});
  return Region(Ring(std::move(pts)), {}, "music");
}

Region airplane() {
  // Symmetric silhouette about x = 50: nose up, swept wings, tail fins.
  std::vector<Vec2> left = {
      {50, 97}, {44, 88}, {44, 64}, {8, 48},  {8, 40},  {44, 49},
      {44, 26}, {27, 15}, {27, 8},  {44, 12}, {44, 4},  {50, 2},
  };
  std::vector<Vec2> pts = left;
  for (std::size_t i = left.size() - 1; i-- > 1;) {
    pts.push_back({100 - left[i].x, left[i].y});
  }
  return Region(Ring(std::move(pts)), {}, "airplane");
}

Region cactus() {
  // Trunk with a right arm (lower) and a left arm (upper), both L-shaped.
  Ring outline({{44, 6},  {58, 6},  {58, 30}, {86, 30}, {86, 66}, {74, 66},
                {74, 42}, {58, 42}, {58, 92}, {44, 92}, {44, 62}, {28, 62},
                {28, 82}, {16, 82}, {16, 50}, {44, 50}});
  return Region(std::move(outline), {}, "cactus");
}

Region star_hole() {
  Ring outer = make_rect({0, 0}, {100, 100});
  Ring hole = make_star({50, 50}, 32, 14, 5, kPi / 2);
  return Region(std::move(outer), {std::move(hole)}, "star_hole");
}

Region spiral() {
  // Archimedean spiral band r = 10 + 4 * theta, theta in [0, 3pi].
  std::vector<Vec2> path;
  for (double t = 0.0; t <= 3.0 * kPi + 1e-9; t += 0.08) {
    const double r = 10.0 + 4.0 * t;
    path.push_back(Vec2{50, 50} + Vec2{r * std::cos(t), r * std::sin(t)});
  }
  return Region(make_thick_polyline(path, 7.0), {}, "spiral");
}

Region two_holes() {
  Ring outer = make_rect({0, 0}, {100, 70});
  std::vector<Ring> holes;
  holes.push_back(circle({30, 35}, 13, 32));
  holes.push_back(circle({70, 35}, 13, 32));
  return Region(std::move(outer), std::move(holes), "two_holes");
}

Region star() {
  return Region(make_star({50, 50}, 46, 19, 5, kPi / 2), {}, "star");
}

Region disk(double radius) {
  return Region(circle({50, 50}, radius, 64), {}, "disk");
}

Region rect(double w, double h) {
  return Region(make_rect({0, 0}, {w, h}), {}, "rect");
}

Region annulus(double outer_r, double inner_r) {
  if (inner_r >= outer_r) throw std::invalid_argument("annulus radii");
  return Region(circle({50, 50}, outer_r, 64), {circle({50, 50}, inner_r, 48)},
                "annulus");
}

Region lshape() {
  return Region(
      Ring({{0, 0}, {100, 0}, {100, 30}, {30, 30}, {30, 100}, {0, 100}}), {},
      "lshape");
}

Region tshape() {
  return Region(Ring({{40, 0},
                      {60, 0},
                      {60, 70},
                      {100, 70},
                      {100, 100},
                      {0, 100},
                      {0, 70},
                      {40, 70}}),
                {}, "tshape");
}

Region hshape() {
  return Region(Ring({{0, 0},
                      {24, 0},
                      {24, 40},
                      {76, 40},
                      {76, 0},
                      {100, 0},
                      {100, 100},
                      {76, 100},
                      {76, 60},
                      {24, 60},
                      {24, 100},
                      {0, 100}}),
                {}, "hshape");
}

Region ushape() {
  return Region(Ring({{0, 0},
                      {100, 0},
                      {100, 100},
                      {70, 100},
                      {70, 30},
                      {30, 30},
                      {30, 100},
                      {0, 100}}),
                {}, "ushape");
}

Region cross() {
  return Region(Ring({{40, 0},
                      {60, 0},
                      {60, 40},
                      {100, 40},
                      {100, 60},
                      {60, 60},
                      {60, 100},
                      {40, 100},
                      {40, 60},
                      {0, 60},
                      {0, 40},
                      {40, 40}}),
                {}, "cross");
}

Region corridor(double length, double width) {
  return Region(make_rect({0, 0}, {length, width}), {}, "corridor");
}

Region bumpy_rect(double bump_height, double bump_width) {
  const double x0 = 50 - bump_width / 2;
  const double x1 = 50 + bump_width / 2;
  return Region(Ring({{0, 0},
                      {100, 0},
                      {100, 40},
                      {x1, 40},
                      {x1, 40 + bump_height},
                      {x0, 40 + bump_height},
                      {x0, 40},
                      {0, 40}}),
                {}, "bumpy_rect");
}

std::vector<NamedShape> paper_scenarios() {
  return {
      {"one_hole", one_hole(), 2734, 6.54},
      {"flower", flower(), 2422, 5.75},
      {"smile", smile(), 2924, 6.35},
      {"music", music(), 1301, 6.5},
      {"airplane", airplane(), 2157, 7.86},
      {"cactus", cactus(), 2172, 6.70},
      {"star_hole", star_hole(), 2893, 8.99},
      {"spiral", spiral(), 2812, 9.60},
      {"two_holes", two_holes(), 3346, 6.79},
      {"star", star(), 1394, 6.59},
  };
}

std::vector<NamedShape> all_shapes() {
  std::vector<NamedShape> v = paper_scenarios();
  v.insert(v.begin(), {"window", window(), 2592, 5.96});
  for (Region r : {disk(), rect(), annulus(), lshape(), tshape(), hshape(),
                   ushape(), cross(), corridor(), bumpy_rect()}) {
    std::string name = r.name();
    v.push_back({std::move(name), std::move(r), 0, 0.0});
  }
  return v;
}

Region by_name(const std::string& name) {
  for (NamedShape& s : all_shapes()) {
    if (s.name == name) return std::move(s.region);
  }
  throw std::out_of_range("unknown shape: " + name);
}

}  // namespace skelex::geom::shapes
