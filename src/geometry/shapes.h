// skelex/geometry/shapes.h
//
// The deployment fields used by the paper's evaluation (Fig. 1, Fig. 4)
// plus simple geometric regions used by tests. All shapes live in a
// roughly [0, 100] x [0, 100] coordinate box; the radio range is chosen
// per-experiment to hit the paper's average node degrees.
#pragma once

#include <string>
#include <vector>

#include "geometry/polygon.h"

namespace skelex::geom::shapes {

// --- Shapes from the paper -------------------------------------------------

// Fig. 1: square frame with a 2x2 grid of square panes (4 holes). The
// skeleton is the window lattice: frame ring + cross bars.
Region window();

// Fig. 4(a): rectangle with one large concave (plus-shaped) hole.
Region one_hole();

// Fig. 4(b): flower with six petals.
Region flower();

// Fig. 4(c): smiley face — disk with two eye holes and a mouth hole.
Region smile();

// Fig. 4(d): eighth-note silhouette (head + stem + flag).
Region music();

// Fig. 4(e): airplane silhouette (fuselage, wings, tail).
Region airplane();

// Fig. 4(f): saguaro cactus (trunk with two arms).
Region cactus();

// Fig. 4(g): square with a five-pointed-star hole.
Region star_hole();

// Fig. 4(h): thick Archimedean spiral band.
Region spiral();

// Fig. 4(i): rectangle with two round holes.
Region two_holes();

// Fig. 4(j): five-pointed star.
Region star();

// --- Simple shapes for unit/property tests ---------------------------------

Region disk(double radius = 40.0);
Region rect(double w = 100.0, double h = 60.0);
Region annulus(double outer_r = 45.0, double inner_r = 20.0);
Region lshape();   // L-shaped corridor
Region tshape();   // T junction
Region hshape();   // H: two bars and a crossbar
Region ushape();   // U corridor
Region cross();    // plus sign
Region corridor(double length = 100.0, double width = 14.0);

// A rectangle whose top edge has a small bump: MAP's boundary-noise
// pathology trigger (a small bump spawns a long spurious branch).
Region bumpy_rect(double bump_height = 8.0, double bump_width = 6.0);

// --- Registry ---------------------------------------------------------------

struct NamedShape {
  std::string name;
  Region region;
  // Node count the paper reports for this scenario (0 when the paper does
  // not state one).
  int paper_nodes = 0;
  // Average degree the paper reports.
  double paper_avg_deg = 0.0;
};

// The ten Fig. 4 scenarios in paper order, with the paper's n / avg-degree
// annotations.
std::vector<NamedShape> paper_scenarios();

// Every named shape (paper + test shapes); lookup helper throws
// std::out_of_range on unknown names.
std::vector<NamedShape> all_shapes();
Region by_name(const std::string& name);

}  // namespace skelex::geom::shapes
