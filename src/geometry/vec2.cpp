#include "geometry/vec2.h"

#include <algorithm>
#include <ostream>

namespace skelex::geom {

std::ostream& operator<<(std::ostream& os, Vec2 v) {
  return os << '(' << v.x << ", " << v.y << ')';
}

}  // namespace skelex::geom
