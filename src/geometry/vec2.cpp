#include "geometry/vec2.h"

#include <algorithm>
#include <ostream>

namespace skelex::geom {

Vec2 closest_point_on_segment(Vec2 p, Vec2 a, Vec2 b) {
  const Vec2 ab = b - a;
  const double len2 = ab.norm2();
  if (len2 == 0.0) return a;
  const double t = std::clamp((p - a).dot(ab) / len2, 0.0, 1.0);
  return a + ab * t;
}

double point_segment_distance(Vec2 p, Vec2 a, Vec2 b) {
  return dist(p, closest_point_on_segment(p, a, b));
}

std::ostream& operator<<(std::ostream& os, Vec2 v) {
  return os << '(' << v.x << ", " << v.y << ')';
}

}  // namespace skelex::geom
