// skelex/geometry/vec2.h
//
// Minimal 2-D vector/point type used throughout the library. Kept as a
// plain aggregate with value semantics: shapes, deployments and the
// reference medial axis all operate on doubles in "field" coordinates
// (the same units as the communication radio range R).
#pragma once

#include <algorithm>
#include <cmath>
#include <iosfwd>

namespace skelex::geom {

struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  constexpr Vec2() = default;
  constexpr Vec2(double x_, double y_) : x(x_), y(y_) {}

  constexpr Vec2 operator+(Vec2 o) const { return {x + o.x, y + o.y}; }
  constexpr Vec2 operator-(Vec2 o) const { return {x - o.x, y - o.y}; }
  constexpr Vec2 operator*(double s) const { return {x * s, y * s}; }
  constexpr Vec2 operator/(double s) const { return {x / s, y / s}; }
  constexpr Vec2 operator-() const { return {-x, -y}; }

  Vec2& operator+=(Vec2 o) {
    x += o.x;
    y += o.y;
    return *this;
  }
  Vec2& operator-=(Vec2 o) {
    x -= o.x;
    y -= o.y;
    return *this;
  }
  Vec2& operator*=(double s) {
    x *= s;
    y *= s;
    return *this;
  }

  constexpr bool operator==(const Vec2&) const = default;

  constexpr double dot(Vec2 o) const { return x * o.x + y * o.y; }
  // z-component of the 3-D cross product; >0 means o is CCW from *this.
  constexpr double cross(Vec2 o) const { return x * o.y - y * o.x; }
  constexpr double norm2() const { return x * x + y * y; }
  double norm() const { return std::sqrt(norm2()); }

  // Unit vector in the same direction; returns {0,0} for the zero vector.
  Vec2 normalized() const {
    const double n = norm();
    return n > 0.0 ? Vec2{x / n, y / n} : Vec2{};
  }
  // CCW perpendicular.
  constexpr Vec2 perp() const { return {-y, x}; }
  // Rotate by `rad` radians CCW about the origin.
  Vec2 rotated(double rad) const {
    const double c = std::cos(rad), s = std::sin(rad);
    return {c * x - s * y, s * x + c * y};
  }
};

constexpr Vec2 operator*(double s, Vec2 v) { return v * s; }

inline double dist(Vec2 a, Vec2 b) { return (a - b).norm(); }
inline constexpr double dist2(Vec2 a, Vec2 b) { return (a - b).norm2(); }

// The point on segment [a, b] closest to p. Inline: this is the inner
// loop of every boundary-distance scan (polygon containment, the
// reference medial axis, skeleton metrics).
inline Vec2 closest_point_on_segment(Vec2 p, Vec2 a, Vec2 b) {
  const Vec2 ab = b - a;
  const double len2 = ab.norm2();
  if (len2 == 0.0) return a;
  const double t = std::clamp((p - a).dot(ab) / len2, 0.0, 1.0);
  return a + ab * t;
}

// Distance from point p to the closed segment [a, b].
inline double point_segment_distance(Vec2 p, Vec2 a, Vec2 b) {
  return dist(p, closest_point_on_segment(p, a, b));
}

std::ostream& operator<<(std::ostream& os, Vec2 v);

}  // namespace skelex::geom
