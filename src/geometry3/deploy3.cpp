#include "geometry3/deploy3.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace skelex::geom3 {

std::vector<Vec3> jittered_grid_in_volume(const Volume& vol, int target_nodes,
                                          double jitter, deploy::Rng& rng) {
  if (target_nodes < 2) throw std::invalid_argument("need >= 2 nodes");
  // Estimate the fill fraction with a coarse Monte Carlo pass so the
  // pitch lands near the requested count.
  const Vec3 span = vol.hi - vol.lo;
  int inside = 0;
  const int kProbe = 4000;
  deploy::Rng probe = rng.split();
  for (int i = 0; i < kProbe; ++i) {
    const Vec3 p{vol.lo.x + probe.next_double() * span.x,
                 vol.lo.y + probe.next_double() * span.y,
                 vol.lo.z + probe.next_double() * span.z};
    if (vol.contains(p)) ++inside;
  }
  const double fill = std::max(0.01, static_cast<double>(inside) / kProbe);
  const double volume = span.x * span.y * span.z * fill;
  const double pitch = std::cbrt(volume / target_nodes);

  std::vector<Vec3> pts;
  for (double z = vol.lo.z + pitch / 2; z <= vol.hi.z; z += pitch) {
    for (double y = vol.lo.y + pitch / 2; y <= vol.hi.y; y += pitch) {
      for (double x = vol.lo.x + pitch / 2; x <= vol.hi.x; x += pitch) {
        const Vec3 p{x + rng.uniform(-jitter, jitter) * pitch,
                     y + rng.uniform(-jitter, jitter) * pitch,
                     z + rng.uniform(-jitter, jitter) * pitch};
        if (vol.contains(p)) pts.push_back(p);
      }
    }
  }
  return pts;
}

double calibrate_range3(const std::vector<Vec3>& pts, double target_avg_deg) {
  if (pts.size() < 2) throw std::invalid_argument("need >= 2 positions");
  const double n = static_cast<double>(pts.size());
  const auto avg_deg_at = [&](double r) {
    const double r2 = r * r;
    long long pairs = 0;
    for (std::size_t i = 0; i < pts.size(); ++i) {
      for (std::size_t j = i + 1; j < pts.size(); ++j) {
        if (dist2(pts[i], pts[j]) <= r2) ++pairs;
      }
    }
    return 2.0 * static_cast<double>(pairs) / n;
  };
  double lo = 0.0, hi = 1.0;
  while (avg_deg_at(hi) < target_avg_deg) {
    lo = hi;
    hi *= 2.0;
    if (hi > 1e6) throw std::runtime_error("range calibration diverged");
  }
  for (int it = 0; it < 30; ++it) {
    const double mid = 0.5 * (lo + hi);
    (avg_deg_at(mid) < target_avg_deg ? lo : hi) = mid;
  }
  return hi;
}

Scenario3 make_udg_scenario3(const Volume& vol, int target_nodes,
                             double target_avg_deg, std::uint64_t seed) {
  deploy::Rng rng(seed);
  std::vector<Vec3> pts =
      jittered_grid_in_volume(vol, target_nodes, 0.35, rng);
  const double range = calibrate_range3(pts, target_avg_deg);

  net::Graph full(static_cast<int>(pts.size()));
  const double r2 = range * range;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    for (std::size_t j = i + 1; j < pts.size(); ++j) {
      if (dist2(pts[i], pts[j]) <= r2) {
        full.add_edge(static_cast<int>(i), static_cast<int>(j));
      }
    }
  }
  std::vector<int> orig;
  Scenario3 out;
  out.graph = net::largest_component_subgraph(full, orig);
  out.positions.reserve(orig.size());
  for (int v : orig) out.positions.push_back(pts[static_cast<std::size_t>(v)]);
  out.range = range;
  return out;
}

}  // namespace skelex::geom3
