// skelex/geometry3/deploy3.h
//
// 3-D deployment + UDG construction. Produces a net::Graph (without 2-D
// positions — the pipeline never needs them) plus the Vec3 positions for
// inspection. Mirrors deploy::make_udg_scenario: jittered-grid sampling
// for connectivity at low density, degree calibration by binary search,
// largest connected component.
#pragma once

#include <cstdint>
#include <vector>

#include "deploy/rng.h"
#include "geometry3/volume.h"
#include "net/graph.h"

namespace skelex::geom3 {

struct Scenario3 {
  net::Graph graph;             // largest component, no 2-D positions
  std::vector<Vec3> positions;  // aligned with graph node ids
  double range = 0.0;
};

// Jittered 3-D grid points inside the volume (pitch derived from the
// target count and the volume's sampled fill fraction).
std::vector<Vec3> jittered_grid_in_volume(const Volume& vol, int target_nodes,
                                          double jitter, deploy::Rng& rng);

// The UDG range giving `target_avg_deg` on these positions (binary
// search over exact pair counts, brute force).
double calibrate_range3(const std::vector<Vec3>& pts, double target_avg_deg);

// Full scenario: deploy, calibrate, build the UDG, keep the largest
// component.
Scenario3 make_udg_scenario3(const Volume& vol, int target_nodes,
                             double target_avg_deg, std::uint64_t seed);

}  // namespace skelex::geom3
