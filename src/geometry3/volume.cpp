#include "geometry3/volume.h"

namespace skelex::geom3 {

namespace {
bool in_box(Vec3 p, Vec3 lo, Vec3 hi) {
  return p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y &&
         p.z >= lo.z && p.z <= hi.z;
}
}  // namespace

Volume box(double sx, double sy, double sz) {
  Volume v;
  v.name = "box3";
  v.lo = {0, 0, 0};
  v.hi = {sx, sy, sz};
  v.tunnels = 0;
  v.contains = [lo = v.lo, hi = v.hi](Vec3 p) { return in_box(p, lo, hi); };
  return v;
}

Volume box_with_tunnel() {
  Volume v;
  v.name = "box3_tunnel";
  v.lo = {0, 0, 0};
  v.hi = {60, 40, 40};
  v.tunnels = 1;
  v.contains = [lo = v.lo, hi = v.hi](Vec3 p) {
    if (!in_box(p, lo, hi)) return false;
    // Tunnel through the middle, along y: removed material.
    return !(p.x > 22 && p.x < 38 && p.z > 12 && p.z < 28);
  };
  return v;
}

Volume box_with_two_tunnels() {
  Volume v;
  v.name = "box3_two_tunnels";
  v.lo = {0, 0, 0};
  v.hi = {90, 40, 40};
  v.tunnels = 2;
  v.contains = [lo = v.lo, hi = v.hi](Vec3 p) {
    if (!in_box(p, lo, hi)) return false;
    const bool t1 = p.x > 18 && p.x < 34 && p.z > 12 && p.z < 28;
    const bool t2 = p.x > 56 && p.x < 72 && p.z > 12 && p.z < 28;
    return !(t1 || t2);
  };
  return v;
}

Volume torus(double major, double minor) {
  Volume v;
  v.name = "torus3";
  const double c = major + minor + 2;
  v.lo = {0, 0, c - minor - 1};
  v.hi = {2 * c, 2 * c, c + minor + 1};
  v.tunnels = 1;
  v.contains = [c, major, minor](Vec3 p) {
    const double dx = p.x - c, dy = p.y - c, dz = p.z - c;
    const double ring = std::sqrt(dx * dx + dy * dy) - major;
    return ring * ring + dz * dz <= minor * minor;
  };
  return v;
}

Volume u_duct() {
  Volume v;
  v.name = "u_duct3";
  v.lo = {0, 0, 0};
  v.hi = {60, 16, 60};
  v.tunnels = 0;
  v.contains = [](Vec3 p) {
    if (p.y < 0 || p.y > 16) return false;
    const bool left = p.x >= 0 && p.x <= 16 && p.z >= 0 && p.z <= 60;
    const bool right = p.x >= 44 && p.x <= 60 && p.z >= 0 && p.z <= 60;
    const bool bottom = p.x >= 0 && p.x <= 60 && p.z >= 0 && p.z <= 16;
    return left || right || bottom;
  };
  return v;
}

}  // namespace skelex::geom3
