// skelex/geometry3/volume.h
//
// 3-D deployment volumes. The skeleton-extraction pipeline never reads
// positions — it is purely connectivity-based — so it runs unchanged on
// 3-D networks; only the deployment substrate is dimensional. The paper
// leaves 3-D to the CABET/CONSEL line of work; this module provides the
// volumes on which the algorithm's topological guarantees can be
// demonstrated in 3-D: tubular and genus-g solids whose curve skeletons
// are well-defined (a duct network, a torus, a box pierced by tunnels).
#pragma once

#include <cmath>
#include <functional>
#include <string>
#include <vector>

namespace skelex::geom3 {

struct Vec3 {
  double x = 0.0, y = 0.0, z = 0.0;

  constexpr Vec3 operator+(Vec3 o) const { return {x + o.x, y + o.y, z + o.z}; }
  constexpr Vec3 operator-(Vec3 o) const { return {x - o.x, y - o.y, z - o.z}; }
  constexpr Vec3 operator*(double s) const { return {x * s, y * s, z * s}; }
  constexpr double dot(Vec3 o) const { return x * o.x + y * o.y + z * o.z; }
  constexpr double norm2() const { return dot(*this); }
  double norm() const { return std::sqrt(norm2()); }
  constexpr bool operator==(const Vec3&) const = default;
};

inline double dist(Vec3 a, Vec3 b) { return (a - b).norm(); }
inline constexpr double dist2(Vec3 a, Vec3 b) { return (a - b).norm2(); }

// A volume is a membership predicate plus a bounding box and a known
// first Betti number (number of independent tunnels) for ground truth.
struct Volume {
  std::string name;
  Vec3 lo, hi;                        // bounding box
  int tunnels = 0;                    // expected skeleton cycle rank
  std::function<bool(Vec3)> contains;
};

// Solid axis-aligned box [0,sx] x [0,sy] x [0,sz]; contractible.
Volume box(double sx = 60, double sy = 40, double sz = 40);

// Box pierced by a square tunnel along the y axis; one tunnel.
Volume box_with_tunnel();

// Box pierced by two parallel tunnels; two tunnels.
Volume box_with_two_tunnels();

// Solid torus (major radius R in the xy plane, minor radius r); one
// tunnel (its curve skeleton is the core circle).
Volume torus(double major = 24, double minor = 8);

// A U-shaped duct (three orthogonal square tubes joined); contractible,
// curve skeleton is a U-shaped path.
Volume u_duct();

}  // namespace skelex::geom3
