#include "io/graph_io.h"

#include <fstream>
#include <limits>
#include <map>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace skelex::io {

namespace {
[[noreturn]] void fail(int line, const std::string& what) {
  throw std::runtime_error("graph input line " + std::to_string(line) + ": " +
                           what);
}
}  // namespace

net::Graph read_graph(std::istream& in) {
  int n = -1;
  std::vector<std::pair<int, geom::Vec2>> positions;
  std::vector<std::pair<int, int>> edges;
  std::string raw;
  int line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    const auto hash = raw.find('#');
    if (hash != std::string::npos) raw.erase(hash);
    std::istringstream line(raw);
    std::string tag;
    if (!(line >> tag)) continue;  // blank / comment-only line
    if (tag == "n") {
      if (n != -1) fail(line_no, "duplicate n directive");
      if (!(line >> n) || n < 0) fail(line_no, "bad node count");
    } else if (tag == "p") {
      int id;
      double x, y;
      if (!(line >> id >> x >> y)) fail(line_no, "bad p directive");
      positions.push_back({id, {x, y}});
    } else if (tag == "e") {
      int u, v;
      if (!(line >> u >> v)) fail(line_no, "bad e directive");
      edges.push_back({u, v});
    } else {
      fail(line_no, "unknown directive '" + tag + "'");
    }
  }
  if (n < 0) fail(line_no, "missing n directive");

  const auto check = [&](int id) {
    if (id < 0 || id >= n) {
      throw std::runtime_error("node id " + std::to_string(id) +
                               " out of range [0, " + std::to_string(n) + ")");
    }
  };
  net::Graph g(n);
  if (!positions.empty()) {
    std::vector<geom::Vec2> pos(static_cast<std::size_t>(n));
    for (const auto& [id, p] : positions) {
      check(id);
      pos[static_cast<std::size_t>(id)] = p;
    }
    g = net::Graph(std::move(pos));
  }
  for (const auto& [u, v] : edges) {
    check(u);
    check(v);
    g.add_edge(u, v);
  }
  return g;
}

net::Graph read_graph_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  return read_graph(in);
}

void write_graph(std::ostream& out, const net::Graph& g) {
  out << "# skelex network: " << g.n() << " nodes, " << g.edge_count()
      << " edges\n";
  // Positions must survive a round trip bit-exactly.
  out.precision(std::numeric_limits<double>::max_digits10);
  out << "n " << g.n() << '\n';
  if (g.has_positions()) {
    for (int v = 0; v < g.n(); ++v) {
      const geom::Vec2 p = g.position(v);
      out << "p " << v << ' ' << p.x << ' ' << p.y << '\n';
    }
  }
  for (int v = 0; v < g.n(); ++v) {
    for (int w : g.neighbors(v)) {
      if (w > v) out << "e " << v << ' ' << w << '\n';
    }
  }
}

void write_graph_file(const std::string& path, const net::Graph& g) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open " + path);
  write_graph(out, g);
  if (!out) throw std::runtime_error("failed writing " + path);
}

void write_skeleton(std::ostream& out, const core::SkeletonGraph& sk) {
  out << "# skelex skeleton: " << sk.node_count() << " nodes, "
      << sk.edge_count() << " edges\n";
  for (int v : sk.nodes()) {
    if (sk.degree(v) == 0) out << "v " << v << '\n';
    for (int w : sk.neighbors(v)) {
      if (w > v) out << "e " << v << ' ' << w << '\n';
    }
  }
}

void write_skeleton_dot(std::ostream& out, const net::Graph& g,
                        const core::SkeletonGraph& sk) {
  out << "graph skeleton {\n  node [shape=point];\n";
  for (int v : sk.nodes()) {
    out << "  n" << v;
    if (g.has_positions()) {
      const geom::Vec2 p = g.position(v);
      out << " [pos=\"" << p.x << ',' << p.y << "!\"]";
    }
    out << ";\n";
  }
  for (int v : sk.nodes()) {
    for (int w : sk.neighbors(v)) {
      if (w > v) out << "  n" << v << " -- n" << w << ";\n";
    }
  }
  out << "}\n";
}

}  // namespace skelex::io
