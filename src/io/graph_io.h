// skelex/io/graph_io.h
//
// Plain-text interchange for networks and skeletons so skelex runs on
// user-supplied graphs (skelex_cli --input) and its results feed other
// tools.
//
// Network format (whitespace-separated, '#' comments):
//   n <node-count>
//   p <id> <x> <y>        optional node positions (any subset)
//   e <u> <v>             undirected edge
//
// Skeleton export: either the same 'e'-line format restricted to
// skeleton members, or Graphviz DOT for quick visual inspection.
#pragma once

#include <iosfwd>
#include <string>

#include "core/skeleton_graph.h"
#include "net/graph.h"

namespace skelex::io {

// Parses the network format. Throws std::runtime_error with a line
// number on malformed input (unknown directive, edge before n, id out
// of range).
net::Graph read_graph(std::istream& in);
net::Graph read_graph_file(const std::string& path);

// Writes the same format (positions included when the graph has them).
void write_graph(std::ostream& out, const net::Graph& g);
void write_graph_file(const std::string& path, const net::Graph& g);

// Skeleton as edge lines ('e u v', plus 'v u' lines for isolated
// skeleton nodes).
void write_skeleton(std::ostream& out, const core::SkeletonGraph& sk);

// Graphviz DOT; positions (when available) become pos="x,y!" pins.
void write_skeleton_dot(std::ostream& out, const net::Graph& g,
                        const core::SkeletonGraph& sk);

}  // namespace skelex::io
