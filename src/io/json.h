// skelex/io/json.h
//
// Append-only JSON writer: keys emit in exactly the order the caller
// writes them and numbers go through std::to_chars, so output is
// byte-stable across runs, locales, and thread counts (callers emit
// per-cell output sequentially in cell order after a parallel sweep).
//
// Formerly bench/bench_util.h's private helper; promoted here so the
// telemetry layer (obs/) and the benches serialize through one
// implementation. Strings are fully escaped (quotes, backslashes, all
// C0 control characters) and non-finite doubles emit `null` — JSON has
// no NaN/Inf tokens, and a validator-breaking "nan" in a report is
// worse than a missing value.
#pragma once

#include <charconv>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <string_view>

namespace skelex::io {

class JsonWriter {
 public:
  JsonWriter& begin_object() { return open('{'); }
  JsonWriter& end_object() { return close('}'); }
  JsonWriter& begin_array() { return open('['); }
  JsonWriter& end_array() { return close(']'); }

  JsonWriter& key(std::string_view k) {
    comma();
    string(k);
    out_ += ": ";
    need_comma_ = false;
    return *this;
  }

  JsonWriter& value(double v) {
    comma();
    if (std::isfinite(v)) {
      append_number(v);
    } else {
      out_ += "null";  // NaN / Inf have no JSON representation
    }
    need_comma_ = true;
    return *this;
  }
  JsonWriter& value(long long v) {
    comma();
    append_number(v);
    need_comma_ = true;
    return *this;
  }
  JsonWriter& value(int v) { return value(static_cast<long long>(v)); }
  JsonWriter& value(bool v) {
    comma();
    out_ += v ? "true" : "false";
    need_comma_ = true;
    return *this;
  }
  JsonWriter& value(std::string_view v) {
    comma();
    string(v);
    need_comma_ = true;
    return *this;
  }
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& null_value() {
    comma();
    out_ += "null";
    need_comma_ = true;
    return *this;
  }

  const std::string& str() const { return out_; }

  void save(const std::string& path) const {
    const std::filesystem::path p(path);
    if (p.has_parent_path()) std::filesystem::create_directories(p.parent_path());
    std::ofstream f(path);
    if (!f) throw std::runtime_error("cannot open " + path);
    f << out_ << '\n';
    if (!f) throw std::runtime_error("failed writing " + path);
  }

 private:
  JsonWriter& open(char c) {
    comma();
    out_ += c;
    need_comma_ = false;
    return *this;
  }
  JsonWriter& close(char c) {
    out_ += c;
    need_comma_ = true;
    return *this;
  }
  void comma() {
    if (need_comma_) out_ += ", ";
  }
  template <typename T>
  void append_number(T v) {
    char buf[32];
    const auto res = std::to_chars(buf, buf + sizeof buf, v);
    out_.append(buf, res.ptr);
  }
  void string(std::string_view s) {
    out_ += '"';
    for (char c : s) {
      switch (c) {
        case '"': out_ += "\\\""; break;
        case '\\': out_ += "\\\\"; break;
        case '\b': out_ += "\\b"; break;
        case '\f': out_ += "\\f"; break;
        case '\n': out_ += "\\n"; break;
        case '\r': out_ += "\\r"; break;
        case '\t': out_ += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x",
                          static_cast<unsigned>(static_cast<unsigned char>(c)));
            out_ += buf;
          } else {
            out_ += c;
          }
      }
    }
    out_ += '"';
  }

  std::string out_;
  bool need_comma_ = false;
};

}  // namespace skelex::io
