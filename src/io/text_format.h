// skelex/io/text_format.h
//
// Locale-independent number-to-text helpers on std::to_chars. Output
// streams format through the global locale (a comma decimal separator
// would corrupt SVG coordinates and JSON numbers) and allocate per
// insertion; these append straight into a caller-owned string.
#pragma once

#include <charconv>
#include <cstdint>
#include <string>

namespace skelex::io {

// Shortest decimal form that round-trips to the same double (use where
// the reader must recover the exact value, e.g. JSON metrics).
inline void append_double(std::string& out, double v) {
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  out.append(buf, res.ptr);
}

// Fixed-point with `precision` fractional digits (use for coordinates,
// where sub-pixel noise is meaningless and compactness matters).
inline void append_fixed(std::string& out, double v, int precision) {
  char buf[64];
  const auto res =
      std::to_chars(buf, buf + sizeof buf, v, std::chars_format::fixed,
                    precision);
  out.append(buf, res.ptr);
}

inline void append_int(std::string& out, long long v) {
  char buf[24];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  out.append(buf, res.ptr);
}

}  // namespace skelex::io
