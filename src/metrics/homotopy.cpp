#include "metrics/homotopy.h"

namespace skelex::metrics {

HomotopyCheck check_homotopy(const net::Graph& g,
                             const core::SkeletonGraph& sk,
                             const geom::Region& region) {
  HomotopyCheck c;
  c.skeleton_components = sk.component_count();
  c.network_components = net::connected_components(g).count;
  c.skeleton_cycles = sk.cycle_rank();
  c.region_holes = static_cast<int>(region.hole_count());
  c.components_match = c.skeleton_components == c.network_components;
  c.cycles_match = c.skeleton_cycles == c.region_holes;
  c.ok = c.components_match && c.cycles_match;
  return c;
}

}  // namespace skelex::metrics
