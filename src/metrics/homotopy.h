// skelex/metrics/homotopy.h
//
// Topological correctness: the skeleton of a region must be homotopy
// equivalent to the region (§III-D, [6], [15]). For a connected planar
// region with h holes that means: one skeleton component per network
// component and exactly h independent skeleton cycles.
#pragma once

#include "core/skeleton_graph.h"
#include "geometry/polygon.h"
#include "net/graph.h"

namespace skelex::metrics {

struct HomotopyCheck {
  int skeleton_components = 0;
  int network_components = 0;
  int skeleton_cycles = 0;  // cycle-space rank of the skeleton graph
  int region_holes = 0;
  bool components_match = false;
  bool cycles_match = false;
  bool ok = false;
};

HomotopyCheck check_homotopy(const net::Graph& g,
                             const core::SkeletonGraph& sk,
                             const geom::Region& region);

}  // namespace skelex::metrics
