#include "metrics/quality.h"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <stdexcept>

namespace skelex::metrics {

std::vector<geom::Vec2> skeleton_positions(const net::Graph& g,
                                           const core::SkeletonGraph& sk) {
  if (!g.has_positions()) {
    throw std::invalid_argument("graph has no positions");
  }
  std::vector<geom::Vec2> pos;
  for (int v : sk.nodes()) pos.push_back(g.position(v));
  return pos;
}

Medialness medialness(const net::Graph& g, const core::SkeletonGraph& sk,
                      const geom::ReferenceMedialAxis& axis) {
  Medialness m;
  double sum = 0.0, sum2 = 0.0;
  for (const geom::Vec2& p : skeleton_positions(g, sk)) {
    const double d = axis.distance_to_axis(p);
    sum += d;
    sum2 += d * d;
    m.max = std::max(m.max, d);
    ++m.node_count;
  }
  if (m.node_count > 0) {
    m.mean = sum / m.node_count;
    m.rms = std::sqrt(sum2 / m.node_count);
  }
  return m;
}

double axis_coverage(const net::Graph& g, const core::SkeletonGraph& sk,
                     const geom::ReferenceMedialAxis& axis, double radius) {
  return axis.coverage(skeleton_positions(g, sk), radius);
}

std::ostream& operator<<(std::ostream& os, const Medialness& m) {
  return os << "{mean=" << m.mean << ", max=" << m.max << ", rms=" << m.rms
            << ", nodes=" << m.node_count << '}';
}

}  // namespace skelex::metrics
