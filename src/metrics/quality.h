// skelex/metrics/quality.h
//
// Quantitative skeleton-quality metrics against the continuous-domain
// reference medial axis. The paper argues quality visually ("the skeleton
// lies medially", "captures the geometric features"); these metrics make
// the same claims measurable:
//   * medialness — how far extracted skeleton nodes sit from the true
//     medial axis (mean / max / rms, in field units; divide by R for
//     hop-comparable numbers);
//   * coverage — fraction of the reference axis within a radius of the
//     extracted skeleton (does the skeleton span every limb?).
#pragma once

#include <iosfwd>
#include <vector>

#include "core/skeleton_graph.h"
#include "geometry/medial_axis_ref.h"
#include "net/graph.h"

namespace skelex::metrics {

struct Medialness {
  double mean = 0.0;
  double max = 0.0;
  double rms = 0.0;
  int node_count = 0;
};

// Positions of the skeleton nodes (graph must carry positions).
std::vector<geom::Vec2> skeleton_positions(const net::Graph& g,
                                           const core::SkeletonGraph& sk);

Medialness medialness(const net::Graph& g, const core::SkeletonGraph& sk,
                      const geom::ReferenceMedialAxis& axis);

// Fraction of reference-axis samples within `radius` of a skeleton node.
double axis_coverage(const net::Graph& g, const core::SkeletonGraph& sk,
                     const geom::ReferenceMedialAxis& axis, double radius);

std::ostream& operator<<(std::ostream& os, const Medialness& m);

}  // namespace skelex::metrics
