#include "metrics/skeleton_stats.h"

#include <algorithm>
#include <ostream>
#include <set>

namespace skelex::metrics {

SkeletonStats skeleton_stats(const core::SkeletonGraph& sk) {
  SkeletonStats s;
  s.nodes = sk.node_count();
  s.edges = sk.edge_count();
  s.components = sk.component_count();
  s.cycles = sk.cycle_rank();
  for (int v : sk.nodes()) {
    const int d = sk.degree(v);
    if (d >= 3) ++s.junctions;
    if (d == 1) ++s.leaves;
  }

  // Branch decomposition: walk every unvisited edge from a non-degree-2
  // endpoint (junction or leaf) through the degree-2 chain. Pure cycles
  // (components with only degree-2 nodes) count as one branch each.
  std::set<std::pair<int, int>> visited;
  const auto visit = [&](int a, int b) {
    return visited.insert({std::min(a, b), std::max(a, b)}).second;
  };
  long long total_len = 0;
  const auto record = [&](int len) {
    ++s.branches;
    total_len += len;
    s.longest_branch = std::max(s.longest_branch, len);
  };
  for (int v : sk.nodes()) {
    if (sk.degree(v) == 2) continue;  // chains start at non-chain nodes
    for (int w : sk.neighbors(v)) {
      if (!visit(v, w)) continue;
      int len = 1;
      int prev = v, cur = w;
      while (sk.degree(cur) == 2) {
        int next = -1;
        for (int x : sk.neighbors(cur)) {
          if (x != prev) next = x;
        }
        if (next == -1) break;  // chain ended at a leaf of degree 1? no:
                                // degree-2 always has another neighbor
        visit(cur, next);
        prev = cur;
        cur = next;
        ++len;
      }
      record(len);
    }
  }
  // Pure cycles: all-degree-2 components never got walked above.
  for (int v : sk.nodes()) {
    if (sk.degree(v) != 2) continue;
    for (int w : sk.neighbors(v)) {
      if (!visit(v, w)) continue;
      int len = 1;
      int prev = v, cur = w;
      while (cur != v) {
        int next = -1;
        for (int x : sk.neighbors(cur)) {
          if (x != prev) next = x;
        }
        visit(cur, next);
        prev = cur;
        cur = next;
        ++len;
      }
      record(len);
    }
  }
  if (s.branches > 0) {
    s.mean_branch_len = static_cast<double>(total_len) / s.branches;
  }
  return s;
}

std::ostream& operator<<(std::ostream& os, const SkeletonStats& s) {
  return os << "{nodes=" << s.nodes << ", edges=" << s.edges
            << ", comps=" << s.components << ", cycles=" << s.cycles
            << ", junctions=" << s.junctions << ", leaves=" << s.leaves
            << ", branches=" << s.branches << ", longest=" << s.longest_branch
            << ", mean_len=" << s.mean_branch_len << '}';
}

}  // namespace skelex::metrics
