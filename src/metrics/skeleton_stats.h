// skelex/metrics/skeleton_stats.h
//
// Structural statistics of a skeleton graph: junctions, leaves, branch
// decomposition (maximal degree-2 chains), lengths. Used by benches to
// report skeleton structure and by tests to assert shape expectations
// ("a cross has 4 branches and 1 junction") without geometry.
#pragma once

#include <iosfwd>
#include <vector>

#include "core/skeleton_graph.h"

namespace skelex::metrics {

struct SkeletonStats {
  int nodes = 0;
  int edges = 0;
  int components = 0;
  int cycles = 0;       // cycle-space rank
  int junctions = 0;    // degree >= 3
  int leaves = 0;       // degree == 1
  int branches = 0;     // maximal chains between junction/leaf endpoints
  int longest_branch = 0;   // edges on the longest chain
  double mean_branch_len = 0.0;
};

SkeletonStats skeleton_stats(const core::SkeletonGraph& sk);

std::ostream& operator<<(std::ostream& os, const SkeletonStats& s);

}  // namespace skelex::metrics
