#include "metrics/stability.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

#include "metrics/quality.h"

namespace skelex::metrics {

namespace {
// One direction: for every point of `from`, the distance to the nearest
// point of `to`; returns (max, mean).
std::pair<double, double> directed(const std::vector<geom::Vec2>& from,
                                   const std::vector<geom::Vec2>& to) {
  double max_d = 0.0, sum = 0.0;
  for (const geom::Vec2& p : from) {
    double best = std::numeric_limits<double>::infinity();
    for (const geom::Vec2& q : to) best = std::min(best, geom::dist2(p, q));
    best = std::sqrt(best);
    max_d = std::max(max_d, best);
    sum += best;
  }
  return {max_d, from.empty() ? 0.0 : sum / static_cast<double>(from.size())};
}
}  // namespace

PositionSetDistance position_set_distance(const std::vector<geom::Vec2>& a,
                                          const std::vector<geom::Vec2>& b) {
  if (a.empty() || b.empty()) {
    throw std::invalid_argument("position sets must be non-empty");
  }
  const auto [max_ab, mean_ab] = directed(a, b);
  const auto [max_ba, mean_ba] = directed(b, a);
  return {std::max(max_ab, max_ba), 0.5 * (mean_ab + mean_ba)};
}

PositionSetDistance skeleton_distance(const net::Graph& ga,
                                      const core::SkeletonGraph& ska,
                                      const net::Graph& gb,
                                      const core::SkeletonGraph& skb) {
  return position_set_distance(skeleton_positions(ga, ska),
                               skeleton_positions(gb, skb));
}

}  // namespace skelex::metrics
