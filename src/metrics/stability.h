// skelex/metrics/stability.h
//
// Stability metrics for Fig. 5/6/7: the paper claims "very stable
// skeletons" as node density or the radio model changes. Two skeletons
// extracted from *different* deployments of the same region cannot be
// compared by node ids, so stability is measured geometrically: the
// (symmetric) Hausdorff distance and the mean nearest-neighbor distance
// between the two skeletons' node position sets.
#pragma once

#include <vector>

#include "core/skeleton_graph.h"
#include "geometry/vec2.h"
#include "net/graph.h"

namespace skelex::metrics {

struct PositionSetDistance {
  double hausdorff = 0.0;       // max over both directions
  double mean_nearest = 0.0;    // symmetric mean nearest-neighbor distance
};

PositionSetDistance position_set_distance(const std::vector<geom::Vec2>& a,
                                          const std::vector<geom::Vec2>& b);

// Convenience: compares two skeletons living on (possibly different)
// graphs with positions.
PositionSetDistance skeleton_distance(const net::Graph& ga,
                                      const core::SkeletonGraph& ska,
                                      const net::Graph& gb,
                                      const core::SkeletonGraph& skb);

}  // namespace skelex::metrics
