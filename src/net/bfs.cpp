#include "net/bfs.h"

#include <algorithm>
#include <stdexcept>

namespace skelex::net {

std::vector<int> bfs_distances(const Graph& g, int source, int max_depth) {
  Workspace ws;
  bfs_distances(g.csr(), source, ws, max_depth);
  return std::move(ws.dist);
}

MultiSourceBfs multi_source_bfs(const Graph& g,
                                const std::vector<int>& sources) {
  Workspace ws;
  multi_source_bfs(g.csr(), sources, ws);
  return {std::move(ws.nearest), std::move(ws.dist), std::move(ws.parent)};
}

std::vector<int> shortest_path(const Graph& g, int s, int t) {
  if (t < 0 || t >= g.n()) throw std::out_of_range("path target");
  if (s < 0 || s >= g.n()) throw std::out_of_range("bfs source");
  const CsrGraph& csr = g.csr();
  std::vector<int> dist(static_cast<std::size_t>(g.n()), kUnreached);
  std::vector<int> parent(static_cast<std::size_t>(g.n()), kUnreached);
  std::vector<int> queue;
  dist[static_cast<std::size_t>(s)] = 0;
  queue.push_back(s);
  for (std::size_t head = 0;
       head < queue.size() && dist[static_cast<std::size_t>(t)] == kUnreached;
       ++head) {
    const int v = queue[head];
    for (int w : csr.neighbors(v)) {
      if (dist[static_cast<std::size_t>(w)] == kUnreached) {
        dist[static_cast<std::size_t>(w)] = dist[static_cast<std::size_t>(v)] + 1;
        parent[static_cast<std::size_t>(w)] = v;
        queue.push_back(w);
      }
    }
  }
  if (dist[static_cast<std::size_t>(t)] == kUnreached) return {};
  std::vector<int> path;
  for (int v = t; v != kUnreached; v = parent[static_cast<std::size_t>(v)]) {
    path.push_back(v);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

std::vector<int> bfs_distances_masked(const Graph& g, int source,
                                      const std::vector<char>& allowed,
                                      int max_depth) {
  Workspace ws;
  bfs_distances_masked(g.csr(), source, allowed, ws, max_depth);
  return std::move(ws.dist);
}

int eccentricity(const Graph& g, int source) {
  const std::vector<int> d = bfs_distances(g, source);
  int ecc = 0;
  for (int x : d) ecc = std::max(ecc, x);
  return ecc;
}

int approx_diameter(const Graph& g) {
  if (g.n() == 0) return 0;
  std::vector<int> d = bfs_distances(g, 0);
  int far = 0;
  for (int v = 0; v < g.n(); ++v) {
    if (d[static_cast<std::size_t>(v)] > d[static_cast<std::size_t>(far)]) far = v;
  }
  return eccentricity(g, far);
}

}  // namespace skelex::net
