#include "net/bfs.h"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace skelex::net {

std::vector<int> bfs_distances(const Graph& g, int source, int max_depth) {
  if (source < 0 || source >= g.n()) throw std::out_of_range("bfs source");
  std::vector<int> dist(static_cast<std::size_t>(g.n()), kUnreached);
  std::queue<int> q;
  dist[static_cast<std::size_t>(source)] = 0;
  q.push(source);
  while (!q.empty()) {
    const int v = q.front();
    q.pop();
    const int d = dist[static_cast<std::size_t>(v)];
    if (max_depth >= 0 && d >= max_depth) continue;
    for (int w : g.neighbors(v)) {
      if (dist[static_cast<std::size_t>(w)] == kUnreached) {
        dist[static_cast<std::size_t>(w)] = d + 1;
        q.push(w);
      }
    }
  }
  return dist;
}

MultiSourceBfs multi_source_bfs(const Graph& g,
                                const std::vector<int>& sources) {
  MultiSourceBfs r;
  r.nearest.assign(static_cast<std::size_t>(g.n()), kUnreached);
  r.dist.assign(static_cast<std::size_t>(g.n()), kUnreached);
  r.parent.assign(static_cast<std::size_t>(g.n()), kUnreached);
  std::queue<int> q;
  for (std::size_t i = 0; i < sources.size(); ++i) {
    const int s = sources[i];
    if (s < 0 || s >= g.n()) throw std::out_of_range("bfs source");
    if (r.dist[static_cast<std::size_t>(s)] == 0) continue;  // duplicate
    r.dist[static_cast<std::size_t>(s)] = 0;
    r.nearest[static_cast<std::size_t>(s)] = static_cast<int>(i);
    q.push(s);
  }
  while (!q.empty()) {
    const int v = q.front();
    q.pop();
    for (int w : g.neighbors(v)) {
      if (r.dist[static_cast<std::size_t>(w)] == kUnreached) {
        r.dist[static_cast<std::size_t>(w)] =
            r.dist[static_cast<std::size_t>(v)] + 1;
        r.nearest[static_cast<std::size_t>(w)] =
            r.nearest[static_cast<std::size_t>(v)];
        r.parent[static_cast<std::size_t>(w)] = v;
        q.push(w);
      }
    }
  }
  return r;
}

std::vector<int> shortest_path(const Graph& g, int s, int t) {
  if (t < 0 || t >= g.n()) throw std::out_of_range("path target");
  std::vector<int> dist(static_cast<std::size_t>(g.n()), kUnreached);
  std::vector<int> parent(static_cast<std::size_t>(g.n()), kUnreached);
  std::queue<int> q;
  dist[static_cast<std::size_t>(s)] = 0;
  q.push(s);
  while (!q.empty() && dist[static_cast<std::size_t>(t)] == kUnreached) {
    const int v = q.front();
    q.pop();
    for (int w : g.neighbors(v)) {
      if (dist[static_cast<std::size_t>(w)] == kUnreached) {
        dist[static_cast<std::size_t>(w)] = dist[static_cast<std::size_t>(v)] + 1;
        parent[static_cast<std::size_t>(w)] = v;
        q.push(w);
      }
    }
  }
  if (dist[static_cast<std::size_t>(t)] == kUnreached) return {};
  std::vector<int> path;
  for (int v = t; v != kUnreached; v = parent[static_cast<std::size_t>(v)]) {
    path.push_back(v);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

std::vector<int> bfs_distances_masked(const Graph& g, int source,
                                      const std::vector<char>& allowed,
                                      int max_depth) {
  if (source < 0 || source >= g.n()) throw std::out_of_range("bfs source");
  if (!allowed[static_cast<std::size_t>(source)]) {
    throw std::invalid_argument("masked BFS source is not allowed");
  }
  std::vector<int> dist(static_cast<std::size_t>(g.n()), kUnreached);
  std::queue<int> q;
  dist[static_cast<std::size_t>(source)] = 0;
  q.push(source);
  while (!q.empty()) {
    const int v = q.front();
    q.pop();
    const int d = dist[static_cast<std::size_t>(v)];
    if (max_depth >= 0 && d >= max_depth) continue;
    for (int w : g.neighbors(v)) {
      if (allowed[static_cast<std::size_t>(w)] &&
          dist[static_cast<std::size_t>(w)] == kUnreached) {
        dist[static_cast<std::size_t>(w)] = d + 1;
        q.push(w);
      }
    }
  }
  return dist;
}

int eccentricity(const Graph& g, int source) {
  const std::vector<int> d = bfs_distances(g, source);
  int ecc = 0;
  for (int x : d) ecc = std::max(ecc, x);
  return ecc;
}

int approx_diameter(const Graph& g) {
  if (g.n() == 0) return 0;
  std::vector<int> d = bfs_distances(g, 0);
  int far = 0;
  for (int v = 0; v < g.n(); ++v) {
    if (d[static_cast<std::size_t>(v)] > d[static_cast<std::size_t>(far)]) far = v;
  }
  return eccentricity(g, far);
}

}  // namespace skelex::net
