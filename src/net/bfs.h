// skelex/net/bfs.h
//
// Hop-distance primitives: single/multi-source BFS, truncated BFS, and
// shortest-path extraction. These are the centralized equivalents of the
// paper's flooding operations; the distributed protocol versions live in
// core/protocols and are tested to agree with these.
//
// Since the CSR refactor these adjacency-list entry points are thin
// compatibility wrappers over the CSR + workspace kernels in net/csr.h
// (they run on Graph::csr() with a local Workspace). Hot paths that call
// them repeatedly should use the CSR kernels directly with a reused
// Workspace.
#pragma once

#include <limits>
#include <vector>

#include "net/csr.h"
#include "net/graph.h"

namespace skelex::net {

// Hop distance from `source` to every node; kUnreached when disconnected.
// `max_depth < 0` means unbounded.
std::vector<int> bfs_distances(const Graph& g, int source, int max_depth = -1);

// Multi-source BFS result: per node, the nearest source (first to reach it,
// ties broken by source order in `sources`), hop distance, and BFS parent
// (kUnreached for sources/unreached nodes).
struct MultiSourceBfs {
  std::vector<int> nearest;  // index INTO `sources`, not node id
  std::vector<int> dist;
  std::vector<int> parent;
};
MultiSourceBfs multi_source_bfs(const Graph& g, const std::vector<int>& sources);

// Shortest path (sequence of node ids, inclusive of both endpoints).
// Empty when unreachable; {s} when s == t.
std::vector<int> shortest_path(const Graph& g, int s, int t);

// BFS restricted to nodes where allowed[v] is true; source must be
// allowed. Distances to non-allowed nodes are kUnreached.
std::vector<int> bfs_distances_masked(const Graph& g, int source,
                                      const std::vector<char>& allowed,
                                      int max_depth = -1);

// Hop eccentricity of `source` (max finite BFS distance).
int eccentricity(const Graph& g, int source);

// Graph diameter approximation by double-sweep BFS (exact on trees, a
// good lower bound generally). Returns 0 for empty graphs.
int approx_diameter(const Graph& g);

}  // namespace skelex::net
