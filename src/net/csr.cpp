#include "net/csr.h"

#include <stdexcept>

#include "net/graph.h"

namespace skelex::net {

CsrGraph::CsrGraph(const Graph& g) {
  const int n = g.n();
  offsets_.assign(static_cast<std::size_t>(n) + 1, 0);
  for (int v = 0; v < n; ++v) {
    offsets_[static_cast<std::size_t>(v) + 1] =
        offsets_[static_cast<std::size_t>(v)] + g.degree(v);
  }
  targets_.resize(static_cast<std::size_t>(offsets_[static_cast<std::size_t>(n)]));
  for (int v = 0; v < n; ++v) {
    int at = offsets_[static_cast<std::size_t>(v)];
    for (int w : g.neighbors(v)) targets_[static_cast<std::size_t>(at++)] = w;
  }
}

void Workspace::reserve(int n) {
  const std::size_t sn = static_cast<std::size_t>(n);
  if (queue.capacity() < sn) queue.reserve(sn);
  if (stamp.size() < sn) {
    // Growing invalidates old stamps: clear them all and restart the
    // epoch so no stale stamp can alias a future epoch value.
    stamp.assign(sn, 0);
    epoch = 0;
  }
}

namespace {
void check_source(const CsrGraph& g, int source) {
  if (source < 0 || source >= g.n()) throw std::out_of_range("bfs source");
}
}  // namespace

void bfs_distances(const CsrGraph& g, int source, Workspace& ws,
                   int max_depth) {
  check_source(g, source);
  const std::size_t n = static_cast<std::size_t>(g.n());
  ws.dist.assign(n, kUnreached);
  ws.queue.clear();
  ws.dist[static_cast<std::size_t>(source)] = 0;
  ws.queue.push_back(source);
  for (std::size_t head = 0; head < ws.queue.size(); ++head) {
    const int v = ws.queue[head];
    const int d = ws.dist[static_cast<std::size_t>(v)];
    if (max_depth >= 0 && d >= max_depth) continue;
    ws.edge_scans += g.degree(v);
    for (int w : g.neighbors(v)) {
      if (ws.dist[static_cast<std::size_t>(w)] == kUnreached) {
        ws.dist[static_cast<std::size_t>(w)] = d + 1;
        ws.queue.push_back(w);
      }
    }
  }
}

void multi_source_bfs(const CsrGraph& g, std::span<const int> sources,
                      Workspace& ws) {
  const std::size_t n = static_cast<std::size_t>(g.n());
  ws.dist.assign(n, kUnreached);
  ws.nearest.assign(n, kUnreached);
  ws.parent.assign(n, kUnreached);
  ws.queue.clear();
  for (std::size_t i = 0; i < sources.size(); ++i) {
    const int s = sources[i];
    check_source(g, s);
    if (ws.dist[static_cast<std::size_t>(s)] == 0) continue;  // duplicate
    ws.dist[static_cast<std::size_t>(s)] = 0;
    ws.nearest[static_cast<std::size_t>(s)] = static_cast<int>(i);
    ws.queue.push_back(s);
  }
  for (std::size_t head = 0; head < ws.queue.size(); ++head) {
    const int v = ws.queue[head];
    ws.edge_scans += g.degree(v);
    for (int w : g.neighbors(v)) {
      if (ws.dist[static_cast<std::size_t>(w)] == kUnreached) {
        ws.dist[static_cast<std::size_t>(w)] =
            ws.dist[static_cast<std::size_t>(v)] + 1;
        ws.nearest[static_cast<std::size_t>(w)] =
            ws.nearest[static_cast<std::size_t>(v)];
        ws.parent[static_cast<std::size_t>(w)] = v;
        ws.queue.push_back(w);
      }
    }
  }
}

void bfs_distances_masked(const CsrGraph& g, int source,
                          std::span<const char> allowed, Workspace& ws,
                          int max_depth) {
  check_source(g, source);
  if (!allowed[static_cast<std::size_t>(source)]) {
    throw std::invalid_argument("masked BFS source is not allowed");
  }
  const std::size_t n = static_cast<std::size_t>(g.n());
  ws.dist.assign(n, kUnreached);
  ws.queue.clear();
  ws.dist[static_cast<std::size_t>(source)] = 0;
  ws.queue.push_back(source);
  for (std::size_t head = 0; head < ws.queue.size(); ++head) {
    const int v = ws.queue[head];
    const int d = ws.dist[static_cast<std::size_t>(v)];
    if (max_depth >= 0 && d >= max_depth) continue;
    ws.edge_scans += g.degree(v);
    for (int w : g.neighbors(v)) {
      if (allowed[static_cast<std::size_t>(w)] &&
          ws.dist[static_cast<std::size_t>(w)] == kUnreached) {
        ws.dist[static_cast<std::size_t>(w)] = d + 1;
        ws.queue.push_back(w);
      }
    }
  }
}

void khop_sizes(const CsrGraph& g, int k, Workspace& ws,
                std::vector<int>& out) {
  if (k < 0) throw std::invalid_argument("k must be >= 0");
  out.assign(static_cast<std::size_t>(g.n()), 0);
  KhopScanner scanner(g, ws);
  for (int v = 0; v < g.n(); ++v) {
    int count = 0;
    scanner.scan(v, k, [&](int) { ++count; });
    out[static_cast<std::size_t>(v)] = count;
  }
}

void l_centrality(const CsrGraph& g, std::span<const int> khop_sizes, int l,
                  bool include_self, Workspace& ws, std::vector<double>& out) {
  if (l < 0) throw std::invalid_argument("l must be >= 0");
  if (khop_sizes.size() != static_cast<std::size_t>(g.n())) {
    throw std::invalid_argument("khop_sizes size mismatch");
  }
  out.assign(static_cast<std::size_t>(g.n()), 0.0);
  KhopScanner scanner(g, ws);
  for (int v = 0; v < g.n(); ++v) {
    long long sum = include_self ? khop_sizes[static_cast<std::size_t>(v)] : 0;
    int count = include_self ? 1 : 0;
    scanner.scan(v, l, [&](int w) {
      sum += khop_sizes[static_cast<std::size_t>(w)];
      ++count;
    });
    out[static_cast<std::size_t>(v)] =
        count > 0 ? static_cast<double>(sum) / count
                  : static_cast<double>(khop_sizes[static_cast<std::size_t>(v)]);
  }
}

KhopScanner::KhopScanner(const CsrGraph& g, Workspace& ws) : g_(g), ws_(ws) {
  ws_.reserve(g.n());
}

Components connected_components(const CsrGraph& g, Workspace& ws) {
  Components c;
  c.label.assign(static_cast<std::size_t>(g.n()), -1);
  for (int s = 0; s < g.n(); ++s) {
    if (c.label[static_cast<std::size_t>(s)] != -1) continue;
    const int id = c.count++;
    c.size.push_back(0);
    c.label[static_cast<std::size_t>(s)] = id;
    ws.queue.clear();
    ws.queue.push_back(s);
    for (std::size_t head = 0; head < ws.queue.size(); ++head) {
      const int v = ws.queue[head];
      ++c.size[static_cast<std::size_t>(id)];
      for (int w : g.neighbors(v)) {
        if (c.label[static_cast<std::size_t>(w)] == -1) {
          c.label[static_cast<std::size_t>(w)] = id;
          ws.queue.push_back(w);
        }
      }
    }
  }
  for (int i = 0; i < c.count; ++i) {
    if (c.largest == -1 ||
        c.size[static_cast<std::size_t>(i)] >
            c.size[static_cast<std::size_t>(c.largest)]) {
      c.largest = i;
    }
  }
  return c;
}

}  // namespace skelex::net
