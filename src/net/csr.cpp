#include "net/csr.h"

#include <stdexcept>
#include <string>

#include "net/graph.h"

namespace skelex::net {

CsrGraph::CsrGraph(const Graph& g) {
  const int n = g.n();
  offsets_.assign(static_cast<std::size_t>(n) + 1, 0);
  deg_.assign(static_cast<std::size_t>(n), 0);
  for (int v = 0; v < n; ++v) {
    deg_[static_cast<std::size_t>(v)] = g.degree(v);
    offsets_[static_cast<std::size_t>(v) + 1] =
        offsets_[static_cast<std::size_t>(v)] + g.degree(v);
  }
  targets_.resize(static_cast<std::size_t>(offsets_[static_cast<std::size_t>(n)]));
  for (int v = 0; v < n; ++v) {
    int at = offsets_[static_cast<std::size_t>(v)];
    for (int w : g.neighbors(v)) targets_[static_cast<std::size_t>(at++)] = w;
  }
  edges_ = g.edge_count();
}

namespace {
void check_delta_node(int v, int n, const char* what) {
  if (v < 0 || v >= n) {
    throw std::out_of_range(std::string("GraphDelta ") + what +
                            " references node out of range");
  }
}
}  // namespace

void CsrGraph::remove_arc(int u, int v) {
  const std::size_t b = static_cast<std::size_t>(offsets_[static_cast<std::size_t>(u)]);
  const std::size_t d = static_cast<std::size_t>(deg_[static_cast<std::size_t>(u)]);
  for (std::size_t i = 0; i < d; ++i) {
    if (targets_[b + i] == v) {
      // Compact the row, preserving the survivors' relative order.
      for (std::size_t j = i + 1; j < d; ++j) targets_[b + j - 1] = targets_[b + j];
      --deg_[static_cast<std::size_t>(u)];
      return;
    }
  }
  throw std::invalid_argument("GraphDelta removes an absent edge");
}

void CsrGraph::repack_with_headroom(std::span<const int> extra_need) {
  // Deterministic repack: rows that fit keep their current capacity,
  // rows that would overflow get their new size plus proportional
  // headroom, so a long churn run amortizes repacks instead of paying
  // one per added edge.
  const int n = this->n();
  std::vector<int> new_offsets(static_cast<std::size_t>(n) + 1, 0);
  for (int v = 0; v < n; ++v) {
    const int cap = offsets_[static_cast<std::size_t>(v) + 1] -
                    offsets_[static_cast<std::size_t>(v)];
    const int want = deg_[static_cast<std::size_t>(v)] +
                     extra_need[static_cast<std::size_t>(v)];
    int new_cap = cap;
    if (want > cap) new_cap = want + (want < 8 ? 4 : want / 2);
    new_offsets[static_cast<std::size_t>(v) + 1] =
        new_offsets[static_cast<std::size_t>(v)] + new_cap;
  }
  std::vector<int> new_targets(
      static_cast<std::size_t>(new_offsets[static_cast<std::size_t>(n)]));
  for (int v = 0; v < n; ++v) {
    const std::size_t src = static_cast<std::size_t>(offsets_[static_cast<std::size_t>(v)]);
    const std::size_t dst =
        static_cast<std::size_t>(new_offsets[static_cast<std::size_t>(v)]);
    const std::size_t d = static_cast<std::size_t>(deg_[static_cast<std::size_t>(v)]);
    for (std::size_t i = 0; i < d; ++i) new_targets[dst + i] = targets_[src + i];
  }
  offsets_.swap(new_offsets);
  targets_.swap(new_targets);
}

void CsrGraph::apply_delta(const GraphDelta& delta) {
  const int old_n = n();
  for (const auto& [u, v] : delta.remove_edges) {
    check_delta_node(u, old_n, "remove_edges");
    check_delta_node(v, old_n, "remove_edges");
    if (u == v) throw std::invalid_argument("GraphDelta removes a self loop");
    remove_arc(u, v);
    remove_arc(v, u);
    --edges_;
  }

  if (delta.add_node_count < 0) {
    throw std::invalid_argument("GraphDelta add_node_count is negative");
  }
  const int new_n = old_n + delta.add_node_count;
  for (int i = 0; i < delta.add_node_count; ++i) {
    offsets_.push_back(offsets_.back());  // zero-capacity row
    deg_.push_back(0);
  }

  // Validate additions and tally per-row need before touching the rows,
  // so a throwing delta leaves the additions unapplied as a unit.
  std::vector<int> need;
  if (!delta.add_edges.empty()) {
    need.assign(static_cast<std::size_t>(new_n), 0);
    for (std::size_t i = 0; i < delta.add_edges.size(); ++i) {
      const auto& [u, v] = delta.add_edges[i];
      check_delta_node(u, new_n, "add_edges");
      check_delta_node(v, new_n, "add_edges");
      if (u == v) throw std::invalid_argument("GraphDelta adds a self loop");
      for (int w : neighbors(u)) {
        if (w == v) throw std::invalid_argument("GraphDelta adds a duplicate edge");
      }
      for (std::size_t j = 0; j < i; ++j) {
        const auto& [pu, pv] = delta.add_edges[j];
        if ((pu == u && pv == v) || (pu == v && pv == u)) {
          throw std::invalid_argument("GraphDelta adds a duplicate edge");
        }
      }
      ++need[static_cast<std::size_t>(u)];
      ++need[static_cast<std::size_t>(v)];
    }
    bool fits = true;
    for (int v = 0; v < new_n && fits; ++v) {
      const int cap = offsets_[static_cast<std::size_t>(v) + 1] -
                      offsets_[static_cast<std::size_t>(v)];
      if (deg_[static_cast<std::size_t>(v)] + need[static_cast<std::size_t>(v)] >
          cap) {
        fits = false;
      }
    }
    if (!fits) repack_with_headroom(need);
    for (const auto& [u, v] : delta.add_edges) {
      const auto append = [&](int a, int b) {
        const std::size_t at =
            static_cast<std::size_t>(offsets_[static_cast<std::size_t>(a)]) +
            static_cast<std::size_t>(deg_[static_cast<std::size_t>(a)]);
        targets_[at] = b;
        ++deg_[static_cast<std::size_t>(a)];
      };
      append(u, v);
      append(v, u);
      ++edges_;
    }
  }
}

void Workspace::reserve(int n) {
  const std::size_t sn = static_cast<std::size_t>(n);
  if (queue.capacity() < sn) queue.reserve(sn);
  if (stamp.size() < sn) {
    // Growing invalidates old stamps: clear them all and restart the
    // epoch so no stale stamp can alias a future epoch value.
    stamp.assign(sn, 0);
    epoch = 0;
  }
}

namespace {
void check_source(const CsrGraph& g, int source) {
  if (source < 0 || source >= g.n()) throw std::out_of_range("bfs source");
}
}  // namespace

// The flood kernels below all follow the same data-oriented shape: the
// queue is a flat array sized to n up front (every node enqueues at
// most once, so no growth checks in the loop), and the inner loop walks
// the graph's raw offsets/targets/degree arrays through local pointers.
// Visitation order, outputs, and the edge-scan totals are identical to
// the span-based loops they replaced — only the per-edge bookkeeping is
// gone. Each kernel leaves ws.queue holding exactly the visited nodes
// in BFS order (callers rely on that, e.g. Voronoi adoption).

void bfs_distances(const CsrGraph& g, int source, Workspace& ws,
                   int max_depth) {
  check_source(g, source);
  const std::size_t n = static_cast<std::size_t>(g.n());
  ws.dist.assign(n, kUnreached);
  ws.queue.resize(n);
  int* const dist = ws.dist.data();
  int* const q = ws.queue.data();
  const int* const off = g.offsets_data();
  const int* const deg = g.degrees_data();
  const int* const tgt = g.targets_data();
  int tail = 0;
  dist[source] = 0;
  q[tail++] = source;
  long long scans = 0;
  for (int head = 0; head < tail; ++head) {
    const int v = q[head];
    const int d = dist[v];
    if (max_depth >= 0 && d >= max_depth) continue;
    const int dv = deg[v];
    const int* const row = tgt + off[v];
    scans += dv;
    for (int i = 0; i < dv; ++i) {
      const int w = row[i];
      if (dist[w] == kUnreached) {
        dist[w] = d + 1;
        q[tail++] = w;
      }
    }
  }
  ws.queue.resize(static_cast<std::size_t>(tail));
  ws.edge_scans += scans;
  ws.bytes_touched += 8 * (scans + 2 * static_cast<long long>(tail));
}

void multi_source_bfs(const CsrGraph& g, std::span<const int> sources,
                      Workspace& ws) {
  const std::size_t n = static_cast<std::size_t>(g.n());
  ws.dist.assign(n, kUnreached);
  ws.nearest.assign(n, kUnreached);
  ws.parent.assign(n, kUnreached);
  ws.queue.clear();
  ws.queue.resize(n);
  int* const dist = ws.dist.data();
  int* const nearest = ws.nearest.data();
  int* const parent = ws.parent.data();
  int* const q = ws.queue.data();
  const int* const off = g.offsets_data();
  const int* const deg = g.degrees_data();
  const int* const tgt = g.targets_data();
  int tail = 0;
  for (std::size_t i = 0; i < sources.size(); ++i) {
    const int s = sources[i];
    check_source(g, s);
    if (dist[s] == 0) continue;  // duplicate
    dist[s] = 0;
    nearest[s] = static_cast<int>(i);
    q[tail++] = s;
  }
  long long scans = 0;
  for (int head = 0; head < tail; ++head) {
    const int v = q[head];
    const int dv1 = dist[v] + 1;
    const int nv = nearest[v];
    const int dv = deg[v];
    const int* const row = tgt + off[v];
    scans += dv;
    for (int i = 0; i < dv; ++i) {
      const int w = row[i];
      if (dist[w] == kUnreached) {
        dist[w] = dv1;
        nearest[w] = nv;
        parent[w] = v;
        q[tail++] = w;
      }
    }
  }
  ws.queue.resize(static_cast<std::size_t>(tail));
  ws.edge_scans += scans;
  ws.bytes_touched += 8 * (scans + 2 * static_cast<long long>(tail));
}

void bfs_distances_masked(const CsrGraph& g, int source,
                          std::span<const char> allowed, Workspace& ws,
                          int max_depth) {
  check_source(g, source);
  if (!allowed[static_cast<std::size_t>(source)]) {
    throw std::invalid_argument("masked BFS source is not allowed");
  }
  const std::size_t n = static_cast<std::size_t>(g.n());
  ws.dist.assign(n, kUnreached);
  ws.queue.resize(n);
  int* const dist = ws.dist.data();
  int* const q = ws.queue.data();
  const int* const off = g.offsets_data();
  const int* const deg = g.degrees_data();
  const int* const tgt = g.targets_data();
  const char* const ok = allowed.data();
  int tail = 0;
  dist[source] = 0;
  q[tail++] = source;
  long long scans = 0;
  for (int head = 0; head < tail; ++head) {
    const int v = q[head];
    const int d = dist[v];
    if (max_depth >= 0 && d >= max_depth) continue;
    const int dv = deg[v];
    const int* const row = tgt + off[v];
    scans += dv;
    for (int i = 0; i < dv; ++i) {
      const int w = row[i];
      if (ok[w] && dist[w] == kUnreached) {
        dist[w] = d + 1;
        q[tail++] = w;
      }
    }
  }
  ws.queue.resize(static_cast<std::size_t>(tail));
  ws.edge_scans += scans;
  ws.bytes_touched += 8 * (scans + 2 * static_cast<long long>(tail));
}

void khop_sizes(const CsrGraph& g, int k, Workspace& ws,
                std::vector<int>& out) {
  if (k < 0) throw std::invalid_argument("k must be >= 0");
  out.assign(static_cast<std::size_t>(g.n()), 0);
  KhopScanner scanner(g, ws);
  for (int v = 0; v < g.n(); ++v) {
    int count = 0;
    scanner.scan(v, k, [&](int) { ++count; });
    out[static_cast<std::size_t>(v)] = count;
  }
}

void l_centrality(const CsrGraph& g, std::span<const int> khop_sizes, int l,
                  bool include_self, Workspace& ws, std::vector<double>& out) {
  if (l < 0) throw std::invalid_argument("l must be >= 0");
  if (khop_sizes.size() != static_cast<std::size_t>(g.n())) {
    throw std::invalid_argument("khop_sizes size mismatch");
  }
  out.assign(static_cast<std::size_t>(g.n()), 0.0);
  KhopScanner scanner(g, ws);
  for (int v = 0; v < g.n(); ++v) {
    long long sum = include_self ? khop_sizes[static_cast<std::size_t>(v)] : 0;
    int count = include_self ? 1 : 0;
    scanner.scan(v, l, [&](int w) {
      sum += khop_sizes[static_cast<std::size_t>(w)];
      ++count;
    });
    out[static_cast<std::size_t>(v)] =
        count > 0 ? static_cast<double>(sum) / count
                  : static_cast<double>(khop_sizes[static_cast<std::size_t>(v)]);
  }
}

KhopScanner::KhopScanner(const CsrGraph& g, Workspace& ws) : g_(g), ws_(ws) {
  ws_.reserve(g.n());
}

Components connected_components(const CsrGraph& g, Workspace& ws) {
  Components c;
  const int n = g.n();
  c.label.assign(static_cast<std::size_t>(n), -1);
  ws.queue.resize(static_cast<std::size_t>(n));
  int* const label = c.label.data();
  int* const q = ws.queue.data();
  const int* const off = g.offsets_data();
  const int* const deg = g.degrees_data();
  const int* const tgt = g.targets_data();
  // One flat queue serves every component: each node enqueues exactly
  // once across the whole pass, so the cursors just keep advancing.
  int head = 0, tail = 0;
  for (int s = 0; s < n; ++s) {
    if (label[s] != -1) continue;
    const int id = c.count++;
    c.size.push_back(0);
    label[s] = id;
    q[tail++] = s;
    for (; head < tail; ++head) {
      const int v = q[head];
      ++c.size[static_cast<std::size_t>(id)];
      const int dv = deg[v];
      const int* const row = tgt + off[v];
      for (int i = 0; i < dv; ++i) {
        const int w = row[i];
        if (label[w] == -1) {
          label[w] = id;
          q[tail++] = w;
        }
      }
    }
  }
  ws.queue.resize(static_cast<std::size_t>(tail));
  for (int i = 0; i < c.count; ++i) {
    if (c.largest == -1 ||
        c.size[static_cast<std::size_t>(i)] >
            c.size[static_cast<std::size_t>(c.largest)]) {
      c.largest = i;
    }
  }
  return c;
}

}  // namespace skelex::net
