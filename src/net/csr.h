// skelex/net/csr.h
//
// Flat compressed-sparse-row view of the connectivity graph plus a
// reusable scratch-buffer workspace — the execution substrate every
// graph traversal in the pipeline runs on.
//
//   * CsrGraph: two arrays (offsets, targets). Neighbor order is exactly
//     the adjacency-list insertion order, so every traversal visits
//     nodes in the same order as the pointer-chasing representation it
//     replaced — results are bit-identical, only faster.
//   * Workspace: owns the dist/parent/queue/stamp buffers the BFS and
//     k-hop kernels need, so repeated calls (one per node, one per
//     stage, one per sweep cell) reallocate nothing.
//
// Ownership rules: a CsrGraph is an immutable snapshot — safe to share
// across threads once built. A Workspace is mutable per-call scratch —
// one per thread, never shared concurrently. net::Graph caches a CSR of
// itself (Graph::csr()); building that cache is NOT thread-safe, so
// call csr() (or finalize()) once before handing a graph to parallel
// code.
#pragma once

#include <span>
#include <vector>

namespace skelex::net {

class Graph;

inline constexpr int kUnreached = -1;

class CsrGraph {
 public:
  CsrGraph() = default;
  // Snapshot of `g` (finalizes it first). Neighbor order is preserved.
  explicit CsrGraph(const Graph& g);

  int n() const { return static_cast<int>(offsets_.size()) - 1; }
  long long edge_count() const {
    return static_cast<long long>(targets_.size()) / 2;
  }
  std::span<const int> neighbors(int v) const {
    const auto b = static_cast<std::size_t>(offsets_[static_cast<std::size_t>(v)]);
    const auto e =
        static_cast<std::size_t>(offsets_[static_cast<std::size_t>(v) + 1]);
    return {targets_.data() + b, e - b};
  }
  int degree(int v) const {
    return offsets_[static_cast<std::size_t>(v) + 1] -
           offsets_[static_cast<std::size_t>(v)];
  }

 private:
  // offsets_[v]..offsets_[v+1] indexes targets_; offsets_ has n+1 entries
  // (empty graph: the single entry 0).
  std::vector<int> offsets_{0};
  std::vector<int> targets_;
};

// Reusable traversal scratch. All kernels size the buffers they use on
// entry; a workspace can serve graphs of different sizes in sequence.
struct Workspace {
  // Outputs of the most recent kernel call.
  std::vector<int> dist;
  std::vector<int> parent;
  std::vector<int> nearest;

  // FIFO queue as a flat array with a head cursor (no deque chunks).
  std::vector<int> queue;

  // Epoch-stamped visitation for the k-hop kernels: stamp[v] == epoch
  // means "visited in the current scan" — no O(n) clear per source.
  std::vector<long long> stamp;
  long long epoch = 0;
  std::vector<int> frontier;
  std::vector<int> next;

  // Running count of adjacency entries examined by the kernels — the
  // centralized proxy for radio messages. Never reset by the kernels;
  // callers (e.g. the pipeline's StageTrace) read deltas around a stage.
  long long edge_scans = 0;

  // Grows the persistent buffers for an n-node graph (outputs are
  // (re)initialized by each kernel; this only reserves capacity).
  void reserve(int n);
};

// --- CSR traversal kernels ---------------------------------------------------
// These are the single source of truth; the adjacency-list functions in
// bfs.h / khop.h / graph.h are thin compatibility wrappers over them.

// Hop distances from `source` into ws.dist (kUnreached when not reached;
// max_depth < 0 means unbounded).
void bfs_distances(const CsrGraph& g, int source, Workspace& ws,
                   int max_depth = -1);

// Multi-source BFS into ws.dist / ws.nearest (index into `sources`) /
// ws.parent. Ties broken by source order, as in the flooding protocol.
void multi_source_bfs(const CsrGraph& g, std::span<const int> sources,
                      Workspace& ws);

// BFS restricted to nodes with allowed[v] != 0; the source must be
// allowed. Distances of excluded nodes stay kUnreached.
void bfs_distances_masked(const CsrGraph& g, int source,
                          std::span<const char> allowed, Workspace& ws,
                          int max_depth = -1);

// Connected components (same Components struct as the adjacency API).
struct Components;
Components connected_components(const CsrGraph& g, Workspace& ws);

// |N_k(v)| for every node into `out`.
void khop_sizes(const CsrGraph& g, int k, Workspace& ws, std::vector<int>& out);

// l-centrality (paper Def. 3) into `out`.
void l_centrality(const CsrGraph& g, std::span<const int> khop_sizes, int l,
                  bool include_self, Workspace& ws, std::vector<double>& out);

// Truncated BFS with epoch-stamped visitation, reusing the workspace's
// stamp/frontier buffers across all sources.
class KhopScanner {
 public:
  KhopScanner(const CsrGraph& g, Workspace& ws);

  // Calls fn(w) for every node w within k hops of v (w != v), in BFS
  // wave order (neighbors in adjacency order within a wave).
  template <typename Fn>
  void scan(int v, int k, Fn&& fn) {
    ++ws_.epoch;
    ws_.frontier.clear();
    ws_.frontier.push_back(v);
    ws_.stamp[static_cast<std::size_t>(v)] = ws_.epoch;
    for (int depth = 0; depth < k && !ws_.frontier.empty(); ++depth) {
      ws_.next.clear();
      for (int u : ws_.frontier) {
        ws_.edge_scans += g_.degree(u);
        for (int w : g_.neighbors(u)) {
          if (ws_.stamp[static_cast<std::size_t>(w)] != ws_.epoch) {
            ws_.stamp[static_cast<std::size_t>(w)] = ws_.epoch;
            ws_.next.push_back(w);
            fn(w);
          }
        }
      }
      ws_.frontier.swap(ws_.next);
    }
  }

 private:
  const CsrGraph& g_;
  Workspace& ws_;
};

}  // namespace skelex::net
