// skelex/net/csr.h
//
// Flat compressed-sparse-row view of the connectivity graph plus a
// reusable scratch-buffer workspace — the execution substrate every
// graph traversal in the pipeline runs on.
//
//   * CsrGraph: two arrays (offsets, targets) plus per-row lengths.
//     Neighbor order is exactly the adjacency-list insertion order, so
//     every traversal visits nodes in the same order as the
//     pointer-chasing representation it replaced — results are
//     bit-identical, only faster.
//   * GraphDelta / apply_delta: in-place topology updates for dynamic
//     networks. Each row keeps its slack (offsets delimit row capacity,
//     deg_ the live prefix), so removals compact within the row and
//     additions append at the row's end — rows that a delta does not
//     touch keep their neighbor order byte-for-byte, which is what keeps
//     traversals over unaffected regions bit-identical across updates.
//   * Workspace: owns the dist/parent/queue/stamp buffers the BFS and
//     k-hop kernels need, so repeated calls (one per node, one per
//     stage, one per sweep cell) reallocate nothing.
//
// Ownership rules: a CsrGraph is an immutable snapshot — safe to share
// across threads once built. A Workspace is mutable per-call scratch —
// one per thread, never shared concurrently. net::Graph caches a CSR of
// itself (Graph::csr()); building that cache is NOT thread-safe, so
// call csr() (or finalize()) once before handing a graph to parallel
// code.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace skelex::net {

class Graph;

inline constexpr int kUnreached = -1;

// A batch of topology changes for CsrGraph::apply_delta. Applied in a
// fixed order — edge removals, node additions, edge additions — so one
// delta can express a whole churn event (e.g. a departure removes its
// incident edges; a join adds a node plus its links). Edges are
// undirected; each pair must reference valid nodes (counting the nodes
// the same delta adds), `add_edges` must not duplicate an existing or
// in-delta edge, and `remove_edges` must name present edges.
struct GraphDelta {
  int add_node_count = 0;
  std::vector<std::pair<int, int>> add_edges;
  std::vector<std::pair<int, int>> remove_edges;

  bool empty() const {
    return add_node_count == 0 && add_edges.empty() && remove_edges.empty();
  }
};

class CsrGraph {
 public:
  CsrGraph() = default;
  // Snapshot of `g` (finalizes it first). Neighbor order is preserved.
  explicit CsrGraph(const Graph& g);

  int n() const { return static_cast<int>(deg_.size()); }
  long long edge_count() const { return edges_; }
  std::span<const int> neighbors(int v) const {
    const auto b = static_cast<std::size_t>(offsets_[static_cast<std::size_t>(v)]);
    return {targets_.data() + b,
            static_cast<std::size_t>(deg_[static_cast<std::size_t>(v)])};
  }
  int degree(int v) const { return deg_[static_cast<std::size_t>(v)]; }

  // Raw SoA views for kernel inner loops: row v's neighbors are
  // targets_data()[offsets_data()[v] .. +degrees_data()[v]). The
  // span/degree accessors above are the same data; these skip the span
  // construction and bounds bookkeeping in tight per-edge loops.
  const int* offsets_data() const { return offsets_.data(); }
  const int* targets_data() const { return targets_.data(); }
  const int* degrees_data() const { return deg_.data(); }

  // Applies `delta` in place: removals compact each touched row (keeping
  // the survivors' relative order), new nodes start with empty rows, and
  // additions append at the end of each endpoint's row — exactly where a
  // fresh CsrGraph(Graph) build would place them after the same mutation
  // history, so an incrementally maintained CSR stays elementwise equal
  // to a from-scratch rebuild. Rows grow into per-row slack when they
  // have it; when any row overflows, one deterministic repack pass
  // rebuilds the layout with headroom for the rows that grew. Invalid
  // deltas (self loops, duplicate additions, absent removals, ids out of
  // range) throw without applying the offending change.
  void apply_delta(const GraphDelta& delta);

 private:
  void remove_arc(int u, int v);
  void repack_with_headroom(std::span<const int> extra_need);

  // offsets_[v] is row v's start; its capacity runs to offsets_[v + 1]
  // (offsets_ has n+1 entries; empty graph: the single entry 0). The
  // live neighbors are the first deg_[v] slots; slack beyond them is
  // garbage left by removals or reserved by a repack.
  std::vector<int> offsets_{0};
  std::vector<int> targets_;
  std::vector<int> deg_;
  long long edges_ = 0;
};

// Reusable traversal scratch. All kernels size the buffers they use on
// entry; a workspace can serve graphs of different sizes in sequence.
struct Workspace {
  // Outputs of the most recent kernel call.
  std::vector<int> dist;
  std::vector<int> parent;
  std::vector<int> nearest;

  // FIFO queue as a flat array with a head cursor (no deque chunks).
  std::vector<int> queue;

  // Epoch-stamped visitation for the k-hop kernels: stamp[v] == epoch
  // means "visited in the current scan" — no O(n) clear per source.
  // u32 stamps halve the footprint of the hottest random-access array
  // (one cache line covers 16 nodes); next_epoch() handles wraparound.
  std::vector<std::uint32_t> stamp;
  std::uint32_t epoch = 0;
  std::vector<int> frontier;
  std::vector<int> next;

  // Running count of adjacency entries examined by the kernels — the
  // centralized proxy for radio messages. Never reset by the kernels;
  // callers (e.g. the pipeline's StageTrace) read deltas around a stage.
  long long edge_scans = 0;

  // Deterministic bytes-moved model for the flood kernels, for
  // memory-bandwidth attribution in stage traces: 8 bytes per adjacency
  // entry examined (target read + state probe), 8 per node expanded
  // (queue/frontier slot + its state), 8 per node newly labelled (state
  // write + queue write). A fixed lower-bound proxy — independent of
  // thread count, cache behaviour, and allocator noise — maintained as
  // a running total like edge_scans (callers read deltas).
  long long bytes_touched = 0;

  // Advances and returns the visitation epoch; on u32 wraparound all
  // stamps are cleared so no stale stamp can alias the restarted epoch.
  std::uint32_t next_epoch() {
    if (++epoch == 0) {
      stamp.assign(stamp.size(), 0u);
      epoch = 1;
    }
    return epoch;
  }

  // Grows the persistent buffers for an n-node graph (outputs are
  // (re)initialized by each kernel; this only reserves capacity).
  void reserve(int n);
};

// --- CSR traversal kernels ---------------------------------------------------
// These are the single source of truth; the adjacency-list functions in
// bfs.h / khop.h / graph.h are thin compatibility wrappers over them.

// Hop distances from `source` into ws.dist (kUnreached when not reached;
// max_depth < 0 means unbounded).
void bfs_distances(const CsrGraph& g, int source, Workspace& ws,
                   int max_depth = -1);

// Multi-source BFS into ws.dist / ws.nearest (index into `sources`) /
// ws.parent. Ties broken by source order, as in the flooding protocol.
void multi_source_bfs(const CsrGraph& g, std::span<const int> sources,
                      Workspace& ws);

// BFS restricted to nodes with allowed[v] != 0; the source must be
// allowed. Distances of excluded nodes stay kUnreached.
void bfs_distances_masked(const CsrGraph& g, int source,
                          std::span<const char> allowed, Workspace& ws,
                          int max_depth = -1);

// Connected components (same Components struct as the adjacency API).
struct Components;
Components connected_components(const CsrGraph& g, Workspace& ws);

// |N_k(v)| for every node into `out`.
void khop_sizes(const CsrGraph& g, int k, Workspace& ws, std::vector<int>& out);

// l-centrality (paper Def. 3) into `out`.
void l_centrality(const CsrGraph& g, std::span<const int> khop_sizes, int l,
                  bool include_self, Workspace& ws, std::vector<double>& out);

// Truncated BFS with epoch-stamped visitation, reusing the workspace's
// stamp/frontier buffers across all sources.
class KhopScanner {
 public:
  KhopScanner(const CsrGraph& g, Workspace& ws);

  // Calls fn(w) for every node w within k hops of v (w != v), in BFS
  // wave order (neighbors in adjacency order within a wave). The inner
  // loop runs on the graph's raw SoA arrays and the workspace's u32
  // stamp array; visitation order, callback order, and the edge-scan
  // total are identical to the span-based loop it replaced.
  template <typename Fn>
  void scan(int v, int k, Fn&& fn) {
    const std::uint32_t epoch = ws_.next_epoch();
    std::uint32_t* const stamp = ws_.stamp.data();
    const int* const off = g_.offsets_data();
    const int* const deg = g_.degrees_data();
    const int* const tgt = g_.targets_data();
    ws_.frontier.clear();
    ws_.frontier.push_back(v);
    stamp[static_cast<std::size_t>(v)] = epoch;
    long long scans = 0, expanded = 0, labelled = 0;
    for (int depth = 0; depth < k && !ws_.frontier.empty(); ++depth) {
      ws_.next.clear();
      for (int u : ws_.frontier) {
        const int du = deg[static_cast<std::size_t>(u)];
        const int* const row = tgt + off[static_cast<std::size_t>(u)];
        scans += du;
        for (int i = 0; i < du; ++i) {
          const int w = row[i];
          if (stamp[static_cast<std::size_t>(w)] != epoch) {
            stamp[static_cast<std::size_t>(w)] = epoch;
            ws_.next.push_back(w);
            fn(w);
          }
        }
      }
      expanded += static_cast<long long>(ws_.frontier.size());
      labelled += static_cast<long long>(ws_.next.size());
      ws_.frontier.swap(ws_.next);
    }
    ws_.edge_scans += scans;
    ws_.bytes_touched += 8 * (scans + expanded + labelled);
  }

 private:
  const CsrGraph& g_;
  Workspace& ws_;
};

}  // namespace skelex::net
