#include "net/graph.h"

#include <algorithm>
#include <stdexcept>

#include "net/csr.h"
#include "net/spatial_hash.h"

namespace skelex::net {

Graph::Graph(int n) {
  if (n < 0) throw std::invalid_argument("negative node count");
  adj_.resize(static_cast<std::size_t>(n));
}

Graph::Graph(std::vector<geom::Vec2> positions)
    : adj_(positions.size()), pos_(std::move(positions)) {}

void Graph::add_edge(int u, int v) {
  if (u < 0 || v < 0 || u >= n() || v >= n()) {
    throw std::out_of_range("edge endpoint out of range");
  }
  if (u == v) return;
  adj_[static_cast<std::size_t>(u)].push_back(v);
  adj_[static_cast<std::size_t>(v)].push_back(u);
  dirty_ = true;
  csr_.reset();
}

void Graph::add_edge_unique(int u, int v) {
  if (u < 0 || v < 0 || u >= n() || v >= n()) {
    throw std::out_of_range("edge endpoint out of range");
  }
  if (u == v) throw std::invalid_argument("add_edge_unique: self loop");
  ensure_finalized();
  if (has_edge(u, v)) throw std::invalid_argument("add_edge_unique: duplicate edge");
  adj_[static_cast<std::size_t>(u)].push_back(v);
  adj_[static_cast<std::size_t>(v)].push_back(u);
  ++edges_;
  csr_.reset();
}

void Graph::remove_edge(int u, int v) {
  if (u < 0 || v < 0 || u >= n() || v >= n()) {
    throw std::out_of_range("edge endpoint out of range");
  }
  ensure_finalized();
  const auto erase_arc = [this](int a, int b) {
    auto& nbrs = adj_[static_cast<std::size_t>(a)];
    const auto it = std::find(nbrs.begin(), nbrs.end(), b);
    if (it == nbrs.end()) {
      throw std::invalid_argument("remove_edge: edge not present");
    }
    nbrs.erase(it);
  };
  erase_arc(u, v);
  erase_arc(v, u);
  --edges_;
  csr_.reset();
}

int Graph::add_node() {
  if (has_positions()) {
    throw std::invalid_argument("add_node(): graph carries positions");
  }
  ensure_finalized();
  adj_.emplace_back();
  csr_.reset();
  return n() - 1;
}

int Graph::add_node(geom::Vec2 pos) {
  if (!has_positions() && n() > 0) {
    throw std::invalid_argument("add_node(pos): graph has no positions");
  }
  ensure_finalized();
  adj_.emplace_back();
  pos_.push_back(pos);
  csr_.reset();
  return n() - 1;
}

void Graph::finalize() const {
  if (!dirty_) return;
  // Stable dedupe: keep each neighbor's FIRST occurrence so the
  // adjacency order is exactly what repeated has_edge-checked insertion
  // used to produce — traversal results stay bit-identical.
  std::vector<int> last_seen(static_cast<std::size_t>(n()), -1);
  edges_ = 0;
  for (int v = 0; v < n(); ++v) {
    auto& nbrs = adj_[static_cast<std::size_t>(v)];
    std::size_t out = 0;
    for (int w : nbrs) {
      if (last_seen[static_cast<std::size_t>(w)] != v) {
        last_seen[static_cast<std::size_t>(w)] = v;
        nbrs[out++] = w;
      }
    }
    nbrs.resize(out);
    edges_ += static_cast<long long>(out);
  }
  edges_ /= 2;
  dirty_ = false;
}

bool Graph::has_edge(int u, int v) const {
  ensure_finalized();
  const auto& a = adj_[static_cast<std::size_t>(u)];
  const auto& b = adj_[static_cast<std::size_t>(v)];
  const auto& smaller = a.size() <= b.size() ? a : b;
  const int target = a.size() <= b.size() ? v : u;
  return std::find(smaller.begin(), smaller.end(), target) != smaller.end();
}

double Graph::avg_degree() const {
  if (n() == 0) return 0.0;
  return 2.0 * static_cast<double>(edge_count()) / n();
}

const CsrGraph& Graph::csr() const {
  if (!csr_) {
    ensure_finalized();
    csr_ = std::make_shared<const CsrGraph>(*this);
  }
  return *csr_;
}

Graph build_graph(std::vector<geom::Vec2> positions,
                  const radio::RadioModel& model, deploy::Rng& rng) {
  const double range = model.max_range();
  SpatialHash hash(positions, range);
  Graph g(std::move(positions));
  if (model.deterministic()) {
    // Stateless link decisions: sweep the candidate pairs in parallel
    // (collect_pairs reproduces the serial emission order at any chunk
    // count), then apply the link filter and insert serially in that
    // order — adjacency lists come out byte-identical to the serial
    // sweep's.
    const std::vector<std::pair<int, int>> pairs = hash.collect_pairs(range);
    for (const auto& [i, j] : pairs) {
      if (model.link(g.position(i), g.position(j), rng)) g.add_edge(i, j);
    }
  } else {
    // Stateful RNG threads through every link decision in emission
    // order; the sweep must stay serial to preserve the draw sequence.
    hash.for_each_pair(range, [&](int i, int j) {
      if (model.link(g.position(i), g.position(j), rng)) g.add_edge(i, j);
    });
  }
  g.finalize();
  return g;
}

Graph build_udg(std::vector<geom::Vec2> positions, double range) {
  deploy::Rng rng(0);  // UDG is deterministic; rng is unused.
  radio::UnitDiskModel model(range);
  return build_graph(std::move(positions), model, rng);
}

Components connected_components(const Graph& g) {
  Workspace ws;
  return connected_components(g.csr(), ws);
}

Graph largest_component_subgraph(const Graph& g,
                                 std::vector<int>& orig_of_new) {
  const Components comps = connected_components(g);
  orig_of_new.clear();
  std::vector<int> new_of_orig(static_cast<std::size_t>(g.n()), -1);
  for (int v = 0; v < g.n(); ++v) {
    if (comps.label[static_cast<std::size_t>(v)] == comps.largest) {
      new_of_orig[static_cast<std::size_t>(v)] =
          static_cast<int>(orig_of_new.size());
      orig_of_new.push_back(v);
    }
  }
  std::vector<geom::Vec2> pos;
  if (g.has_positions()) {
    pos.reserve(orig_of_new.size());
    for (int v : orig_of_new) pos.push_back(g.position(v));
  }
  Graph sub = g.has_positions() ? Graph(std::move(pos))
                                : Graph(static_cast<int>(orig_of_new.size()));
  for (std::size_t i = 0; i < orig_of_new.size(); ++i) {
    for (int w : g.neighbors(orig_of_new[i])) {
      const int nw = new_of_orig[static_cast<std::size_t>(w)];
      if (nw > static_cast<int>(i)) sub.add_edge(static_cast<int>(i), nw);
    }
  }
  sub.finalize();
  return sub;
}

Graph remove_nodes(const Graph& g, std::span<const char> dead,
                   std::vector<int>* orig_of_new) {
  if (static_cast<int>(dead.size()) != g.n()) {
    throw std::invalid_argument("dead mask size must equal node count");
  }
  std::vector<int> keep;
  std::vector<int> new_of_orig(static_cast<std::size_t>(g.n()), -1);
  for (int v = 0; v < g.n(); ++v) {
    if (!dead[static_cast<std::size_t>(v)]) {
      new_of_orig[static_cast<std::size_t>(v)] = static_cast<int>(keep.size());
      keep.push_back(v);
    }
  }
  Graph sub;
  if (g.has_positions()) {
    std::vector<geom::Vec2> pos;
    pos.reserve(keep.size());
    for (int v : keep) pos.push_back(g.position(v));
    sub = Graph(std::move(pos));
  } else {
    sub = Graph(static_cast<int>(keep.size()));
  }
  for (std::size_t i = 0; i < keep.size(); ++i) {
    for (int w : g.neighbors(keep[i])) {
      const int nw = new_of_orig[static_cast<std::size_t>(w)];
      if (nw > static_cast<int>(i)) sub.add_edge(static_cast<int>(i), nw);
    }
  }
  sub.finalize();
  if (orig_of_new != nullptr) *orig_of_new = std::move(keep);
  return sub;
}

Graph add_nodes(const Graph& g, int count) {
  if (count < 0) throw std::invalid_argument("add_nodes: negative count");
  if (g.has_positions()) {
    throw std::invalid_argument("add_nodes(count): graph carries positions");
  }
  Graph grown = g;
  for (int i = 0; i < count; ++i) grown.add_node();
  return grown;
}

Graph add_nodes(const Graph& g, std::span<const geom::Vec2> positions) {
  if (!g.has_positions() && g.n() > 0) {
    throw std::invalid_argument("add_nodes(positions): graph has no positions");
  }
  Graph grown = g;
  for (const geom::Vec2& p : positions) grown.add_node(p);
  return grown;
}

Graph add_edges(const Graph& g,
                std::span<const std::pair<int, int>> edges) {
  Graph grown = g;
  for (const auto& [u, v] : edges) grown.add_edge_unique(u, v);
  return grown;
}

}  // namespace skelex::net
