// skelex/net/graph.h
//
// The sensor-network connectivity graph. Nodes are dense integer ids
// [0, n); each node optionally carries its deployment position (the
// *algorithms* never read positions — the paper's method is
// connectivity-only — but metrics and visualization do).
//
// Edge insertion is O(1): add_edge appends without checking for
// duplicates, and duplicate/self edges are removed once, in insertion
// order, the first time the graph is read (finalize()). This keeps
// graph construction linear in the number of inserted edges instead of
// O(n * deg^2). Reads trigger finalization lazily, so the build-then-
// query pattern needs no explicit call — but the lazy step mutates
// internal state, so finalize the graph (any read does) before sharing
// it across threads.
#pragma once

#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "deploy/rng.h"
#include "geometry/vec2.h"
#include "radio/radio_model.h"

namespace skelex::net {

class CsrGraph;

class Graph {
 public:
  Graph() = default;
  // Graph with `n` isolated nodes and no positions.
  explicit Graph(int n);
  // Graph with given node positions and no edges yet.
  explicit Graph(std::vector<geom::Vec2> positions);

  int n() const { return static_cast<int>(adj_.size()); }
  long long edge_count() const {
    ensure_finalized();
    return edges_;
  }

  // Appends the undirected edge {u, v}. Duplicate and self edges are
  // tolerated (dropped at finalize time), so probabilistic builders need
  // not dedupe.
  void add_edge(int u, int v);

  // --- In-place mutators for dynamic topologies -----------------------------
  // Unlike add_edge these keep the graph finalized: no lazy dedupe pass
  // is queued, so a long churn run pays O(deg) per event instead of a
  // periodic O(E) re-finalize. They do invalidate the cached CSR — the
  // dynamics layer maintains its own CSR via GraphDelta instead.

  // Appends {u, v}, which must not already be present (throws
  // invalid_argument on duplicates and self loops).
  void add_edge_unique(int u, int v);

  // Removes the undirected edge {u, v}; throws invalid_argument when the
  // edge is absent. Neighbor order of the survivors is preserved.
  void remove_edge(int u, int v);

  // Appends one isolated node and returns its id. The positionless
  // overload requires a graph without positions; the positioned overload
  // requires positions (or an empty graph).
  int add_node();
  int add_node(geom::Vec2 pos);

  // Drops duplicate edges (keeping first-insertion neighbor order) and
  // refreshes the edge count. Idempotent; called implicitly by every
  // read accessor.
  void finalize() const;

  bool has_edge(int u, int v) const;

  std::span<const int> neighbors(int v) const {
    ensure_finalized();
    return {adj_[static_cast<std::size_t>(v)].data(),
            adj_[static_cast<std::size_t>(v)].size()};
  }
  int degree(int v) const {
    ensure_finalized();
    return static_cast<int>(adj_[static_cast<std::size_t>(v)].size());
  }
  double avg_degree() const;

  // Cached flat CSR snapshot of this graph (see net/csr.h). Built on
  // first use, invalidated by add_edge. Like finalize(), the first call
  // must not race with other accesses.
  const CsrGraph& csr() const;

  bool has_positions() const { return !pos_.empty(); }
  geom::Vec2 position(int v) const { return pos_[static_cast<std::size_t>(v)]; }
  const std::vector<geom::Vec2>& positions() const { return pos_; }

 private:
  void ensure_finalized() const {
    if (dirty_) finalize();
  }

  // Lazily deduplicated on read; mutable so accessors stay const.
  mutable std::vector<std::vector<int>> adj_;
  mutable long long edges_ = 0;
  mutable bool dirty_ = false;
  mutable std::shared_ptr<const CsrGraph> csr_;
  std::vector<geom::Vec2> pos_;
};

// Builds the connectivity graph of `positions` under `model`, using a
// spatial hash so only candidate pairs within max_range are tested.
// `rng` feeds probabilistic models (QUDG / log-normal).
Graph build_graph(std::vector<geom::Vec2> positions,
                  const radio::RadioModel& model, deploy::Rng& rng);

// Convenience: UDG graph (deterministic).
Graph build_udg(std::vector<geom::Vec2> positions, double range);

// Component labels (0-based) for every node plus the component count.
struct Components {
  std::vector<int> label;
  int count = 0;
  // Size of each component.
  std::vector<int> size;
  // Index of the largest component.
  int largest = -1;
};
Components connected_components(const Graph& g);

// The subgraph induced by the largest connected component; positions are
// carried over. `orig_of_new[i]` maps new ids back to the input graph.
Graph largest_component_subgraph(const Graph& g, std::vector<int>& orig_of_new);

// The subgraph induced by the nodes with dead[v] == 0 (graph surgery for
// failure studies: crash-stop survivors, jammed regions, ...). Positions
// are carried over; surviving ids are remapped densely in ascending
// order. `dead` must have size g.n(). When `orig_of_new` is non-null it
// receives the map from new ids back to the input graph's ids.
Graph remove_nodes(const Graph& g, std::span<const char> dead,
                   std::vector<int>* orig_of_new = nullptr);

// Mirrors of remove_nodes for growth: a copy of `g` with extra isolated
// nodes appended at the end of the id space (existing ids, neighbor
// order, and positions are untouched). The count overload requires a
// positionless graph; the positions overload requires a positioned (or
// empty) graph. New ids are g.n() .. g.n() + count - 1.
Graph add_nodes(const Graph& g, int count);
Graph add_nodes(const Graph& g, std::span<const geom::Vec2> positions);

// A copy of `g` with `edges` appended, in order, at the tail of each
// endpoint's neighbor list — the same layout CsrGraph::apply_delta
// produces, so the two stay oracle-equivalent. Duplicate or self edges
// throw invalid_argument.
Graph add_edges(const Graph& g,
                std::span<const std::pair<int, int>> edges);

}  // namespace skelex::net
