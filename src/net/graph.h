// skelex/net/graph.h
//
// The sensor-network connectivity graph. Nodes are dense integer ids
// [0, n); each node optionally carries its deployment position (the
// *algorithms* never read positions — the paper's method is
// connectivity-only — but metrics and visualization do).
#pragma once

#include <span>
#include <vector>

#include "deploy/rng.h"
#include "geometry/vec2.h"
#include "radio/radio_model.h"

namespace skelex::net {

class Graph {
 public:
  Graph() = default;
  // Graph with `n` isolated nodes and no positions.
  explicit Graph(int n);
  // Graph with given node positions and no edges yet.
  explicit Graph(std::vector<geom::Vec2> positions);

  int n() const { return static_cast<int>(adj_.size()); }
  long long edge_count() const { return edges_; }

  // Adds the undirected edge {u, v}. Duplicate and self edges are ignored
  // (idempotent), so probabilistic builders need not dedupe.
  void add_edge(int u, int v);

  bool has_edge(int u, int v) const;

  std::span<const int> neighbors(int v) const {
    return {adj_[static_cast<std::size_t>(v)].data(),
            adj_[static_cast<std::size_t>(v)].size()};
  }
  int degree(int v) const {
    return static_cast<int>(adj_[static_cast<std::size_t>(v)].size());
  }
  double avg_degree() const;

  bool has_positions() const { return !pos_.empty(); }
  geom::Vec2 position(int v) const { return pos_[static_cast<std::size_t>(v)]; }
  const std::vector<geom::Vec2>& positions() const { return pos_; }

 private:
  std::vector<std::vector<int>> adj_;
  std::vector<geom::Vec2> pos_;
  long long edges_ = 0;
};

// Builds the connectivity graph of `positions` under `model`, using a
// spatial hash so only candidate pairs within max_range are tested.
// `rng` feeds probabilistic models (QUDG / log-normal).
Graph build_graph(std::vector<geom::Vec2> positions,
                  const radio::RadioModel& model, deploy::Rng& rng);

// Convenience: UDG graph (deterministic).
Graph build_udg(std::vector<geom::Vec2> positions, double range);

// Component labels (0-based) for every node plus the component count.
struct Components {
  std::vector<int> label;
  int count = 0;
  // Size of each component.
  std::vector<int> size;
  // Index of the largest component.
  int largest = -1;
};
Components connected_components(const Graph& g);

// The subgraph induced by the largest connected component; positions are
// carried over. `orig_of_new[i]` maps new ids back to the input graph.
Graph largest_component_subgraph(const Graph& g, std::vector<int>& orig_of_new);

// The subgraph induced by the nodes with dead[v] == 0 (graph surgery for
// failure studies: crash-stop survivors, jammed regions, ...). Positions
// are carried over; surviving ids are remapped densely in ascending
// order. `dead` must have size g.n(). When `orig_of_new` is non-null it
// receives the map from new ids back to the input graph's ids.
Graph remove_nodes(const Graph& g, std::span<const char> dead,
                   std::vector<int>* orig_of_new = nullptr);

}  // namespace skelex::net
