#include "net/khop.h"

#include <stdexcept>

namespace skelex::net {

namespace {
// Truncated BFS using epoch-stamped visitation so the scratch buffers are
// reused across all n source nodes (no per-source O(n) clearing).
class KhopScanner {
 public:
  explicit KhopScanner(const Graph& g)
      : g_(g), stamp_(static_cast<std::size_t>(g.n()), -1) {}

  // Calls fn(w) for every node w within k hops of v (w != v).
  template <typename Fn>
  void scan(int v, int k, Fn&& fn) {
    ++epoch_;
    frontier_.clear();
    frontier_.push_back(v);
    stamp_[static_cast<std::size_t>(v)] = epoch_;
    for (int depth = 0; depth < k && !frontier_.empty(); ++depth) {
      next_.clear();
      for (int u : frontier_) {
        for (int w : g_.neighbors(u)) {
          if (stamp_[static_cast<std::size_t>(w)] != epoch_) {
            stamp_[static_cast<std::size_t>(w)] = epoch_;
            next_.push_back(w);
            fn(w);
          }
        }
      }
      frontier_.swap(next_);
    }
  }

 private:
  const Graph& g_;
  std::vector<long long> stamp_;
  long long epoch_ = 0;
  std::vector<int> frontier_;
  std::vector<int> next_;
};
}  // namespace

std::vector<int> khop_neighbors(const Graph& g, int v, int k) {
  if (v < 0 || v >= g.n()) throw std::out_of_range("khop node");
  if (k < 0) throw std::invalid_argument("k must be >= 0");
  std::vector<int> out;
  KhopScanner scanner(g);
  scanner.scan(v, k, [&](int w) { out.push_back(w); });
  return out;
}

std::vector<int> khop_sizes(const Graph& g, int k) {
  if (k < 0) throw std::invalid_argument("k must be >= 0");
  std::vector<int> sizes(static_cast<std::size_t>(g.n()), 0);
  KhopScanner scanner(g);
  for (int v = 0; v < g.n(); ++v) {
    int count = 0;
    scanner.scan(v, k, [&](int) { ++count; });
    sizes[static_cast<std::size_t>(v)] = count;
  }
  return sizes;
}

std::vector<double> l_centrality(const Graph& g,
                                 const std::vector<int>& khop_sizes, int l,
                                 bool include_self) {
  if (l < 0) throw std::invalid_argument("l must be >= 0");
  if (khop_sizes.size() != static_cast<std::size_t>(g.n())) {
    throw std::invalid_argument("khop_sizes size mismatch");
  }
  std::vector<double> c(static_cast<std::size_t>(g.n()), 0.0);
  KhopScanner scanner(g);
  for (int v = 0; v < g.n(); ++v) {
    long long sum = include_self ? khop_sizes[static_cast<std::size_t>(v)] : 0;
    int count = include_self ? 1 : 0;
    scanner.scan(v, l, [&](int w) {
      sum += khop_sizes[static_cast<std::size_t>(w)];
      ++count;
    });
    c[static_cast<std::size_t>(v)] =
        count > 0 ? static_cast<double>(sum) / count
                  : static_cast<double>(khop_sizes[static_cast<std::size_t>(v)]);
  }
  return c;
}

}  // namespace skelex::net
