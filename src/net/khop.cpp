#include "net/khop.h"

#include <stdexcept>

#include "net/csr.h"

namespace skelex::net {

std::vector<int> khop_neighbors(const Graph& g, int v, int k) {
  if (v < 0 || v >= g.n()) throw std::out_of_range("khop node");
  if (k < 0) throw std::invalid_argument("k must be >= 0");
  std::vector<int> out;
  Workspace ws;
  KhopScanner scanner(g.csr(), ws);
  scanner.scan(v, k, [&](int w) { out.push_back(w); });
  return out;
}

std::vector<int> khop_sizes(const Graph& g, int k) {
  Workspace ws;
  std::vector<int> out;
  khop_sizes(g.csr(), k, ws, out);
  return out;
}

std::vector<double> l_centrality(const Graph& g,
                                 const std::vector<int>& khop_sizes, int l,
                                 bool include_self) {
  Workspace ws;
  std::vector<double> out;
  l_centrality(g.csr(), khop_sizes, l, include_self, ws, out);
  return out;
}

}  // namespace skelex::net
