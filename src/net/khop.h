// skelex/net/khop.h
//
// k-hop neighborhood computations — the quantity at the heart of the
// paper's index (§II-C): |N_k(p)| is the discrete analogue of the
// intersection area lambda(D_i(p, kR)).
#pragma once

#include <vector>

#include "net/graph.h"

namespace skelex::net {

// Nodes at hop distance <= k from v, excluding v itself.
std::vector<int> khop_neighbors(const Graph& g, int v, int k);

// |N_k(v)| for every node v (k-hop neighborhood size, excluding self).
// This is what the paper's first controlled flood computes.
std::vector<int> khop_sizes(const Graph& g, int k);

// Average over w in N_l(v) of sizes[w] — the paper's l-centrality
// (Def. 3). `include_self` adds v's own k-hop size into the average;
// the paper averages over the l-hop *neighbors*, so the default is false.
// Nodes with an empty l-hop neighborhood get their own size.
std::vector<double> l_centrality(const Graph& g,
                                 const std::vector<int>& khop_sizes, int l,
                                 bool include_self = false);

}  // namespace skelex::net
