#include "net/spatial_hash.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace skelex::net {

using geom::Vec2;

SpatialHash::SpatialHash(const std::vector<Vec2>& points, double cell)
    : points_(points), cell_(cell) {
  if (cell <= 0) throw std::invalid_argument("cell size must be > 0");
  Vec2 hi{-std::numeric_limits<double>::infinity(),
          -std::numeric_limits<double>::infinity()};
  lo_ = {std::numeric_limits<double>::infinity(),
         std::numeric_limits<double>::infinity()};
  for (const Vec2& p : points_) {
    lo_.x = std::min(lo_.x, p.x);
    lo_.y = std::min(lo_.y, p.y);
    hi.x = std::max(hi.x, p.x);
    hi.y = std::max(hi.y, p.y);
  }
  if (points_.empty()) {
    lo_ = {0, 0};
    hi = {0, 0};
  }
  // Keep the grid bounded: enlarging cells beyond the query radius is
  // always safe (queries only get more candidates, never fewer).
  constexpr int kMaxCellsPerAxis = 4096;
  cell_ = std::max({cell_, (hi.x - lo_.x) / kMaxCellsPerAxis,
                    (hi.y - lo_.y) / kMaxCellsPerAxis});
  nx_ = std::max(1, static_cast<int>((hi.x - lo_.x) / cell_) + 1);
  ny_ = std::max(1, static_cast<int>((hi.y - lo_.y) / cell_) + 1);
  cells_.assign(static_cast<std::size_t>(nx_) * ny_, {});
  for (std::size_t i = 0; i < points_.size(); ++i) {
    cells_[static_cast<std::size_t>(cell_of(points_[i]))].push_back(
        static_cast<int>(i));
  }
}

int SpatialHash::clamp_cx(double x) const {
  return std::clamp(static_cast<int>((x - lo_.x) / cell_), 0, nx_ - 1);
}
int SpatialHash::clamp_cy(double y) const {
  return std::clamp(static_cast<int>((y - lo_.y) / cell_), 0, ny_ - 1);
}

int SpatialHash::cell_of(Vec2 p) const {
  return clamp_cy(p.y) * nx_ + clamp_cx(p.x);
}

std::vector<int> SpatialHash::query(Vec2 p, double radius) const {
  std::vector<int> out;
  const int cx0 = clamp_cx(p.x - radius), cx1 = clamp_cx(p.x + radius);
  const int cy0 = clamp_cy(p.y - radius), cy1 = clamp_cy(p.y + radius);
  const double r2 = radius * radius;
  for (int cy = cy0; cy <= cy1; ++cy) {
    for (int cx = cx0; cx <= cx1; ++cx) {
      for (int idx : cells_[static_cast<std::size_t>(cy) * nx_ + cx]) {
        if (geom::dist2(points_[static_cast<std::size_t>(idx)], p) <= r2) {
          out.push_back(idx);
        }
      }
    }
  }
  return out;
}

void SpatialHash::for_each_pair(double radius,
                                const std::function<void(int, int)>& fn) const {
  const double r2 = radius * radius;
  for (int cy = 0; cy < ny_; ++cy) {
    for (int cx = 0; cx < nx_; ++cx) {
      const auto& cell = cells_[static_cast<std::size_t>(cy) * nx_ + cx];
      // Pairs within the cell.
      for (std::size_t a = 0; a < cell.size(); ++a) {
        for (std::size_t b = a + 1; b < cell.size(); ++b) {
          if (geom::dist2(points_[static_cast<std::size_t>(cell[a])],
                          points_[static_cast<std::size_t>(cell[b])]) <= r2) {
            fn(std::min(cell[a], cell[b]), std::max(cell[a], cell[b]));
          }
        }
      }
      // Pairs against the 4 forward-neighbor cells (E, SW, S, SE pattern
      // covers each unordered cell pair exactly once).
      static constexpr int kDx[4] = {1, -1, 0, 1};
      static constexpr int kDy[4] = {0, 1, 1, 1};
      for (int d = 0; d < 4; ++d) {
        const int ox = cx + kDx[d], oy = cy + kDy[d];
        if (ox < 0 || ox >= nx_ || oy < 0 || oy >= ny_) continue;
        const auto& other = cells_[static_cast<std::size_t>(oy) * nx_ + ox];
        for (int i : cell) {
          for (int j : other) {
            if (geom::dist2(points_[static_cast<std::size_t>(i)],
                            points_[static_cast<std::size_t>(j)]) <= r2) {
              fn(std::min(i, j), std::max(i, j));
            }
          }
        }
      }
    }
  }
}

}  // namespace skelex::net
