#include "net/spatial_hash.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "exec/thread_pool.h"

namespace skelex::net {

using geom::Vec2;

namespace {

// Below this many points the build/sweep passes run serially even with
// no explicit pool: chunk bookkeeping costs more than it saves.
constexpr std::size_t kParallelThreshold = 32768;

// Per-chunk cell-count matrices are bounded to this many ints; grids
// sparse enough to exceed it fall back to a serial scatter (the count
// and index passes stay parallel).
constexpr std::size_t kMaxCountMatrix = std::size_t{1} << 23;

exec::ThreadPool* resolve_pool(exec::ThreadPool* pool, std::size_t n) {
  if (pool != nullptr) return pool->thread_count() > 1 ? pool : nullptr;
  if (n < kParallelThreshold) return nullptr;
  exec::ThreadPool& shared = exec::shared_pool();
  return shared.thread_count() > 1 ? &shared : nullptr;
}

}  // namespace

SpatialHash::SpatialHash(const std::vector<Vec2>& points, double cell,
                         exec::ThreadPool* pool)
    : points_(points), cell_(cell) {
  if (cell <= 0) throw std::invalid_argument("cell size must be > 0");
  const std::size_t n = points_.size();
  const int in = static_cast<int>(n);
  exec::ThreadPool* p = resolve_pool(pool, n);
  const int chunks =
      p != nullptr ? std::min(p->thread_count(), std::max(1, in)) : 1;

  constexpr double kInf = std::numeric_limits<double>::infinity();
  Vec2 hi{-kInf, -kInf};
  lo_ = {kInf, kInf};
  if (chunks > 1) {
    // Chunk-local boxes merged chunk-major; min/max over doubles is
    // exact, so the merged box equals the serial scan's bit for bit.
    std::vector<Vec2> clo(static_cast<std::size_t>(chunks), {kInf, kInf});
    std::vector<Vec2> chi(static_cast<std::size_t>(chunks), {-kInf, -kInf});
    p->parallel_chunks(in, chunks, [&](int c, int b, int e) {
      Vec2 l{kInf, kInf}, h{-kInf, -kInf};
      for (int i = b; i < e; ++i) {
        const Vec2& q = points_[static_cast<std::size_t>(i)];
        l.x = std::min(l.x, q.x);
        l.y = std::min(l.y, q.y);
        h.x = std::max(h.x, q.x);
        h.y = std::max(h.y, q.y);
      }
      clo[static_cast<std::size_t>(c)] = l;
      chi[static_cast<std::size_t>(c)] = h;
    });
    for (int c = 0; c < chunks; ++c) {
      lo_.x = std::min(lo_.x, clo[static_cast<std::size_t>(c)].x);
      lo_.y = std::min(lo_.y, clo[static_cast<std::size_t>(c)].y);
      hi.x = std::max(hi.x, chi[static_cast<std::size_t>(c)].x);
      hi.y = std::max(hi.y, chi[static_cast<std::size_t>(c)].y);
    }
  } else {
    for (const Vec2& q : points_) {
      lo_.x = std::min(lo_.x, q.x);
      lo_.y = std::min(lo_.y, q.y);
      hi.x = std::max(hi.x, q.x);
      hi.y = std::max(hi.y, q.y);
    }
  }
  if (points_.empty()) {
    lo_ = {0, 0};
    hi = {0, 0};
  }
  // Keep the grid bounded: enlarging cells beyond the query radius is
  // always safe (queries only get more candidates, never fewer).
  constexpr int kMaxCellsPerAxis = 4096;
  cell_ = std::max({cell_, (hi.x - lo_.x) / kMaxCellsPerAxis,
                    (hi.y - lo_.y) / kMaxCellsPerAxis});
  nx_ = std::max(1, static_cast<int>((hi.x - lo_.x) / cell_) + 1);
  ny_ = std::max(1, static_cast<int>((hi.y - lo_.y) / cell_) + 1);
  const std::size_t ncells = static_cast<std::size_t>(nx_) * ny_;

  // Counting sort into the CSR cell layout. Each point's cell index is
  // a pure function of its position, so the index pass chunks freely;
  // the scatter preserves ascending point order within every cell
  // (chunk sub-ranges are laid out chunk-major, and chunks are
  // contiguous ascending point ranges).
  std::vector<int> cidx(n);
  if (chunks > 1) {
    p->parallel_chunks(in, chunks, [&](int, int b, int e) {
      for (int i = b; i < e; ++i) {
        cidx[static_cast<std::size_t>(i)] =
            cell_of(points_[static_cast<std::size_t>(i)]);
      }
    });
  } else {
    for (std::size_t i = 0; i < n; ++i) cidx[i] = cell_of(points_[i]);
  }

  cell_start_.assign(ncells + 1, 0);
  cell_points_.resize(n);
  if (chunks > 1 &&
      ncells * static_cast<std::size_t>(chunks) <= kMaxCountMatrix) {
    std::vector<int> counts(ncells * static_cast<std::size_t>(chunks), 0);
    p->parallel_chunks(in, chunks, [&](int c, int b, int e) {
      int* const mine = counts.data() + static_cast<std::size_t>(c) * ncells;
      for (int i = b; i < e; ++i) {
        ++mine[static_cast<std::size_t>(cidx[static_cast<std::size_t>(i)])];
      }
    });
    // Serial prefix over (cell-major, chunk-minor): counts becomes each
    // chunk's write cursor into its reserved sub-range of the cell.
    int run = 0;
    for (std::size_t cell = 0; cell < ncells; ++cell) {
      cell_start_[cell] = run;
      for (int c = 0; c < chunks; ++c) {
        int& slot = counts[static_cast<std::size_t>(c) * ncells + cell];
        const int cnt = slot;
        slot = run;
        run += cnt;
      }
    }
    cell_start_[ncells] = run;
    p->parallel_chunks(in, chunks, [&](int c, int b, int e) {
      int* const at = counts.data() + static_cast<std::size_t>(c) * ncells;
      for (int i = b; i < e; ++i) {
        const std::size_t cell =
            static_cast<std::size_t>(cidx[static_cast<std::size_t>(i)]);
        cell_points_[static_cast<std::size_t>(at[cell]++)] = i;
      }
    });
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      ++cell_start_[static_cast<std::size_t>(cidx[i]) + 1];
    }
    for (std::size_t cell = 0; cell < ncells; ++cell) {
      cell_start_[cell + 1] += cell_start_[cell];
    }
    std::vector<int> at(cell_start_.begin(), cell_start_.end() - 1);
    for (std::size_t i = 0; i < n; ++i) {
      cell_points_[static_cast<std::size_t>(
          at[static_cast<std::size_t>(cidx[i])]++)] = static_cast<int>(i);
    }
  }
}

int SpatialHash::clamp_cx(double x) const {
  return std::clamp(static_cast<int>((x - lo_.x) / cell_), 0, nx_ - 1);
}
int SpatialHash::clamp_cy(double y) const {
  return std::clamp(static_cast<int>((y - lo_.y) / cell_), 0, ny_ - 1);
}

int SpatialHash::cell_of(Vec2 p) const {
  return clamp_cy(p.y) * nx_ + clamp_cx(p.x);
}

std::vector<int> SpatialHash::query(Vec2 p, double radius) const {
  std::vector<int> out;
  const int cx0 = clamp_cx(p.x - radius), cx1 = clamp_cx(p.x + radius);
  const int cy0 = clamp_cy(p.y - radius), cy1 = clamp_cy(p.y + radius);
  const double r2 = radius * radius;
  for (int cy = cy0; cy <= cy1; ++cy) {
    for (int cx = cx0; cx <= cx1; ++cx) {
      const std::size_t cell = static_cast<std::size_t>(cy) * nx_ + cx;
      for (int a = cell_start_[cell]; a < cell_start_[cell + 1]; ++a) {
        const int idx = cell_points_[static_cast<std::size_t>(a)];
        if (geom::dist2(points_[static_cast<std::size_t>(idx)], p) <= r2) {
          out.push_back(idx);
        }
      }
    }
  }
  return out;
}

template <typename Fn>
void SpatialHash::pairs_in_rows(int cy0, int cy1, double r2, Fn&& fn) const {
  const Vec2* const pts = points_.data();
  const int* const cs = cell_start_.data();
  const int* const cp = cell_points_.data();
  for (int cy = cy0; cy < cy1; ++cy) {
    for (int cx = 0; cx < nx_; ++cx) {
      const std::size_t cell = static_cast<std::size_t>(cy) * nx_ + cx;
      const int b0 = cs[cell], e0 = cs[cell + 1];
      // Pairs within the cell (ascending point order, so i < j).
      for (int a = b0; a < e0; ++a) {
        const int i = cp[a];
        for (int b = a + 1; b < e0; ++b) {
          const int j = cp[b];
          if (geom::dist2(pts[i], pts[j]) <= r2) {
            fn(std::min(i, j), std::max(i, j));
          }
        }
      }
      // Pairs against the 4 forward-neighbor cells (E, SW, S, SE pattern
      // covers each unordered cell pair exactly once). Every neighbor is
      // in this row or the next, so partitioning the sweep by rows keeps
      // each pair owned by exactly one row range.
      static constexpr int kDx[4] = {1, -1, 0, 1};
      static constexpr int kDy[4] = {0, 1, 1, 1};
      for (int d = 0; d < 4; ++d) {
        const int ox = cx + kDx[d], oy = cy + kDy[d];
        if (ox < 0 || ox >= nx_ || oy < 0 || oy >= ny_) continue;
        const std::size_t other = static_cast<std::size_t>(oy) * nx_ + ox;
        const int b1 = cs[other], e1 = cs[other + 1];
        for (int a = b0; a < e0; ++a) {
          const int i = cp[a];
          for (int b = b1; b < e1; ++b) {
            const int j = cp[b];
            if (geom::dist2(pts[i], pts[j]) <= r2) {
              fn(std::min(i, j), std::max(i, j));
            }
          }
        }
      }
    }
  }
}

void SpatialHash::for_each_pair(double radius,
                                const std::function<void(int, int)>& fn) const {
  pairs_in_rows(0, ny_, radius * radius, fn);
}

long long SpatialHash::count_pairs(double radius,
                                   exec::ThreadPool* pool) const {
  const double r2 = radius * radius;
  exec::ThreadPool* p = resolve_pool(pool, points_.size());
  if (p == nullptr || ny_ < 2) {
    long long count = 0;
    pairs_in_rows(0, ny_, r2, [&](int, int) { ++count; });
    return count;
  }
  const int chunks = std::min(p->thread_count(), ny_);
  std::vector<long long> per(static_cast<std::size_t>(chunks), 0);
  p->parallel_chunks(ny_, chunks, [&](int c, int b, int e) {
    long long count = 0;
    pairs_in_rows(b, e, r2, [&](int, int) { ++count; });
    per[static_cast<std::size_t>(c)] = count;
  });
  long long total = 0;
  for (long long c : per) total += c;
  return total;
}

std::vector<std::pair<int, int>> SpatialHash::collect_pairs(
    double radius, exec::ThreadPool* pool) const {
  const double r2 = radius * radius;
  std::vector<std::pair<int, int>> out;
  exec::ThreadPool* p = resolve_pool(pool, points_.size());
  if (p == nullptr || ny_ < 2) {
    pairs_in_rows(0, ny_, r2,
                  [&](int i, int j) { out.emplace_back(i, j); });
    return out;
  }
  const int chunks = std::min(p->thread_count(), ny_);
  std::vector<std::vector<std::pair<int, int>>> per(
      static_cast<std::size_t>(chunks));
  p->parallel_chunks(ny_, chunks, [&](int c, int b, int e) {
    auto& mine = per[static_cast<std::size_t>(c)];
    pairs_in_rows(b, e, r2, [&](int i, int j) { mine.emplace_back(i, j); });
  });
  std::size_t total = 0;
  for (const auto& v : per) total += v.size();
  out.reserve(total);
  // Chunk-major concatenation of contiguous ascending row ranges ==
  // the serial row-major emission order, at any chunk count.
  for (const auto& v : per) out.insert(out.end(), v.begin(), v.end());
  return out;
}

}  // namespace skelex::net
