// skelex/net/spatial_hash.h
//
// Uniform-grid spatial index over node positions. Turns the O(n^2)
// all-pairs link test into O(n * expected-neighbors) by only testing
// pairs within one cell ring of each other (cell size = query radius).
//
// Layout: the cells are a CSR pair (cell_start_, cell_points_) rather
// than a vector-of-vectors — one contiguous payload array, no per-cell
// allocations. Construction is a counting sort; at large n the count,
// bounding-box, and scatter passes run as deterministic parallel chunks
// (chunk-major merge over contiguous ascending point ranges), so the
// built index is byte-identical at any thread or chunk count.
#pragma once

#include <functional>
#include <utility>
#include <vector>

#include "geometry/vec2.h"

namespace skelex::exec {
class ThreadPool;
}

namespace skelex::net {

class SpatialHash {
 public:
  // Index `points` with grid cells of size `cell` (normally the radio
  // model's max range). `pool` runs the build passes in parallel; pass
  // nullptr to let the hash decide (the shared pool above a size
  // threshold, serial below it). The built index is identical either
  // way.
  SpatialHash(const std::vector<geom::Vec2>& points, double cell,
              exec::ThreadPool* pool = nullptr);

  // All indices j with dist(points[j], p) <= radius. `radius` must be
  // <= the construction cell size for completeness.
  std::vector<int> query(geom::Vec2 p, double radius) const;

  // Visit every unordered pair (i, j), i < j, with separation <= radius.
  void for_each_pair(double radius,
                     const std::function<void(int, int)>& fn) const;

  // Number of pairs for_each_pair would visit. Sweeps cell rows in
  // parallel chunks when a pool applies (same nullptr heuristic as the
  // constructor); the count is exact and thread-count-invariant.
  long long count_pairs(double radius, exec::ThreadPool* pool = nullptr) const;

  // The pairs for_each_pair would visit, in exactly its emission order
  // (pairs are owned by the cell of their row-major-first endpoint, so
  // chunking by cell rows and concatenating chunk-major reproduces the
  // serial order at any chunk count).
  std::vector<std::pair<int, int>> collect_pairs(
      double radius, exec::ThreadPool* pool = nullptr) const;

 private:
  std::vector<geom::Vec2> points_;
  geom::Vec2 lo_{};
  double cell_ = 1.0;
  int nx_ = 0, ny_ = 0;
  // CSR cells: cell c's points are cell_points_[cell_start_[c] ..
  // cell_start_[c+1]), in ascending point index.
  std::vector<int> cell_start_;
  std::vector<int> cell_points_;

  int cell_of(geom::Vec2 p) const;
  int clamp_cx(double x) const;
  int clamp_cy(double y) const;

  // Emits every qualifying pair owned by cell rows [cy0, cy1), in
  // row-major cell order — the shared core of for_each_pair /
  // count_pairs / collect_pairs.
  template <typename Fn>
  void pairs_in_rows(int cy0, int cy1, double r2, Fn&& fn) const;
};

}  // namespace skelex::net
