// skelex/net/spatial_hash.h
//
// Uniform-grid spatial index over node positions. Turns the O(n^2)
// all-pairs link test into O(n * expected-neighbors) by only testing
// pairs within one cell ring of each other (cell size = query radius).
#pragma once

#include <functional>
#include <vector>

#include "geometry/vec2.h"

namespace skelex::net {

class SpatialHash {
 public:
  // Index `points` with grid cells of size `cell` (normally the radio
  // model's max range).
  SpatialHash(const std::vector<geom::Vec2>& points, double cell);

  // All indices j with dist(points[j], p) <= radius. `radius` must be
  // <= the construction cell size for completeness.
  std::vector<int> query(geom::Vec2 p, double radius) const;

  // Visit every unordered pair (i, j), i < j, with separation <= radius.
  void for_each_pair(double radius,
                     const std::function<void(int, int)>& fn) const;

 private:
  std::vector<geom::Vec2> points_;
  geom::Vec2 lo_{};
  double cell_ = 1.0;
  int nx_ = 0, ny_ = 0;
  std::vector<std::vector<int>> cells_;

  int cell_of(geom::Vec2 p) const;
  int clamp_cx(double x) const;
  int clamp_cy(double y) const;
};

}  // namespace skelex::net
