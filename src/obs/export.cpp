#include "obs/export.h"

#include <charconv>
#include <cmath>
#include <cstdint>

namespace skelex::obs {

namespace {

void append_double(std::string& out, double v) {
  if (std::isnan(v)) {
    out += "NaN";
    return;
  }
  if (std::isinf(v)) {
    out += v > 0 ? "+Inf" : "-Inf";
    return;
  }
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  out.append(buf, res.ptr);
}

void append_int(std::string& out, std::int64_t v) {
  char buf[24];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  out.append(buf, res.ptr);
}

// "{k1="v1",k2="v2"}" with exposition escaping; "" when no labels. An
// extra label ("le") is appended when `le` is non-null.
std::string label_block(const Labels& labels, const std::string* le) {
  if (labels.empty() && le == nullptr) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += k;
    out += "=\"";
    out += prometheus_escape(v);
    out += '"';
  }
  if (le != nullptr) {
    if (!first) out += ',';
    out += "le=\"";
    out += *le;  // bound strings are numeric / "+Inf": nothing to escape
    out += '"';
  }
  out += '}';
  return out;
}

const char* kind_name(char kind) {
  switch (kind) {
    case 'c': return "counter";
    case 'g': return "gauge";
    case 'h': return "histogram";
    default: return "untyped";
  }
}

}  // namespace

Labels parse_canonical_labels(std::string_view canon) {
  Labels out;
  std::string key, value;
  std::string* cur = &key;
  for (std::size_t i = 0; i < canon.size(); ++i) {
    const char c = canon[i];
    if (c == '\\' && i + 1 < canon.size()) {
      cur->push_back(canon[++i]);
    } else if (c == '=' && cur == &key) {
      cur = &value;
    } else if (c == ',' && cur == &value) {
      out.emplace_back(std::move(key), std::move(value));
      key.clear();
      value.clear();
      cur = &key;
    } else {
      cur->push_back(c);
    }
  }
  if (!key.empty() || cur == &value) {
    out.emplace_back(std::move(key), std::move(value));
  }
  return out;
}

std::string prometheus_escape(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string render_prometheus(const MetricSnapshot& snap) {
  std::string out;
  out.reserve(snap.entries.size() * 64);
  const std::string* prev_name = nullptr;
  for (const MetricSnapshot::Entry& e : snap.entries) {
    // An unset high-watermark gauge has no observation to report; a
    // family whose every label set is unset emits nothing (the TYPE
    // header is only written when a sample follows in family order).
    if (e.kind == 'g' && !e.gauge_set) continue;
    if (prev_name == nullptr || *prev_name != e.name) {
      out += "# TYPE ";
      out += e.name;
      out += ' ';
      out += kind_name(e.kind);
      out += '\n';
      prev_name = &e.name;
    }
    const Labels labels = parse_canonical_labels(e.labels);
    switch (e.kind) {
      case 'c': {
        out += e.name;
        out += label_block(labels, nullptr);
        out += ' ';
        append_int(out, e.value);
        out += '\n';
        break;
      }
      case 'g': {
        out += e.name;
        out += label_block(labels, nullptr);
        out += ' ';
        append_double(out, e.gauge);
        out += '\n';
        break;
      }
      case 'h': {
        std::int64_t cum = 0;
        for (std::size_t b = 0; b < e.buckets.size(); ++b) {
          cum += e.buckets[b];
          std::string le;
          if (b < e.bounds.size()) {
            append_double(le, e.bounds[b]);
          } else {
            le = "+Inf";
          }
          out += e.name;
          out += "_bucket";
          out += label_block(labels, &le);
          out += ' ';
          append_int(out, cum);
          out += '\n';
        }
        out += e.name;
        out += "_count";
        out += label_block(labels, nullptr);
        out += ' ';
        append_int(out, e.count);
        out += '\n';
        break;
      }
      default:
        break;
    }
  }
  return out;
}

}  // namespace skelex::obs
