// skelex/obs/export.h
//
// Metrics exposition: render a merged MetricSnapshot as Prometheus /
// OpenMetrics text, the format every scraping stack (Prometheus,
// VictoriaMetrics, Grafana Agent, promtool) ingests natively.
//
//   # TYPE svc_request_ms histogram
//   svc_request_ms_bucket{cmd="extract",tier="cold",le="1"} 0
//   ...
//   svc_request_ms_bucket{cmd="extract",tier="cold",le="+Inf"} 12
//   svc_request_ms_count{cmd="extract",tier="cold"} 12
//
// Mapping from the registry's model (obs/metrics.h):
//   * counters  → one sample per label set;
//   * gauges    → high-watermark value; label sets never set() are
//     skipped (a watermark with no observations has no meaningful 0);
//   * histograms → CUMULATIVE `_bucket` samples ("le" upper bounds, the
//     registry's per-bucket counts summed left to right), a terminal
//     le="+Inf" bucket, and a `_count` sample equal to it. No `_sum` is
//     emitted — the registry deliberately does not accumulate values
//     (obs/metrics.h's determinism contract), and a fabricated sum would
//     be worse than an absent one.
//
// Label values are escaped per the text-format spec (backslash, quote,
// newline); the canonical "k=v,k2=v2" label strings coming out of the
// snapshot are parsed with parse_canonical_labels, which understands
// canonical_labels' backslash escapes for ','/'='/'\' inside values.
//
// tools/check_exposition.py lints a live daemon's cmd=metrics output
// against this grammar in CI.
#pragma once

#include <string>
#include <string_view>

#include "obs/metrics.h"

namespace skelex::obs {

// Inverse of canonical_labels: splits a canonical label string back
// into (key, value) pairs, honoring backslash escapes.
Labels parse_canonical_labels(std::string_view canon);

// Escapes a label VALUE for the exposition format: \ → \\, " → \",
// newline → \n.
std::string prometheus_escape(std::string_view value);

// Renders the full snapshot. Deterministic byte-for-byte given equal
// snapshots (entries are already sorted by name, then labels).
std::string render_prometheus(const MetricSnapshot& snap);

}  // namespace skelex::obs
