#include "obs/log.h"

#include <chrono>
#include <cstdio>

#include "io/json.h"
#include "obs/request_trace.h"
#include "obs/trace.h"

namespace skelex::obs {

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
  }
  return "info";
}

bool parse_log_level(std::string_view name, LogLevel* out) {
  if (name == "debug") *out = LogLevel::kDebug;
  else if (name == "info") *out = LogLevel::kInfo;
  else if (name == "warn") *out = LogLevel::kWarn;
  else if (name == "error") *out = LogLevel::kError;
  else return false;
  return true;
}

Logger::Logger() = default;

Logger& Logger::global() {
  static Logger* logger = new Logger();  // mirrors Registry::global():
  return *logger;                        // never destroyed, usable at exit
}

void Logger::set_min_level(LogLevel level) {
  std::lock_guard<std::mutex> lock(mu_);
  min_level_ = level;
}

LogLevel Logger::min_level() const {
  std::lock_guard<std::mutex> lock(mu_);
  return min_level_;
}

void Logger::set_sink(std::function<void(std::string_view)> sink) {
  std::lock_guard<std::mutex> lock(mu_);
  sink_ = std::move(sink);
}

void Logger::set_rate_limit(double per_sec, int burst) {
  std::lock_guard<std::mutex> lock(mu_);
  per_sec_ = per_sec;
  burst_ = burst > 0 ? burst : 1;
  buckets_.clear();
}

void Logger::set_clock_for_test(std::function<double()> now_us) {
  std::lock_guard<std::mutex> lock(mu_);
  now_us_ = std::move(now_us);
  buckets_.clear();
}

bool Logger::log(LogLevel level, std::string_view event, LogFields fields) {
  // The ambient request id is read outside the lock (thread-local).
  const RequestContext* ctx = RequestContext::current();
  const std::int64_t wall_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count();

  std::lock_guard<std::mutex> lock(mu_);
  if (level < min_level_) return false;

  std::int64_t suppressed_before = 0;
  if (per_sec_ > 0) {
    const double now = now_us_ ? now_us_() : Tracer::now_us();
    auto it = buckets_.find(event);
    if (it == buckets_.end()) {
      it = buckets_.emplace(std::string(event), Bucket{}).first;
    }
    Bucket& b = it->second;
    if (!b.primed) {
      b.tokens = static_cast<double>(burst_);
      b.last_us = now;
      b.primed = true;
    } else {
      b.tokens += (now - b.last_us) * 1e-6 * per_sec_;
      if (b.tokens > static_cast<double>(burst_)) {
        b.tokens = static_cast<double>(burst_);
      }
      b.last_us = now;
    }
    if (b.tokens < 1.0) {
      ++b.suppressed;
      ++counters_.suppressed;
      return false;
    }
    b.tokens -= 1.0;
    suppressed_before = b.suppressed;
    b.suppressed = 0;
  }

  io::JsonWriter j;
  j.begin_object();
  j.key("ts_ms").value(static_cast<long long>(wall_ms));
  j.key("level").value(log_level_name(level));
  j.key("event").value(event);
  if (ctx != nullptr) {
    j.key("req").value(static_cast<long long>(ctx->id()));
  }
  if (suppressed_before > 0) {
    j.key("suppressed").value(static_cast<long long>(suppressed_before));
  }
  for (const auto& [key, value] : fields) {
    j.key(key);
    switch (value.kind_) {
      case LogValue::Kind::kInt:
        j.value(static_cast<long long>(value.i_));
        break;
      case LogValue::Kind::kDouble:
        j.value(value.d_);
        break;
      case LogValue::Kind::kBool:
        j.value(value.b_);
        break;
      case LogValue::Kind::kString:
        j.value(value.s_);
        break;
    }
  }
  j.end_object();

  ++counters_.emitted;
  if (sink_) {
    sink_(j.str());
  } else {
    std::fprintf(stderr, "%s\n", j.str().c_str());
  }
  return true;
}

Logger::Counters Logger::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

}  // namespace skelex::obs
