// skelex/obs/log.h
//
// Leveled, structured, rate-limited logging for the serving path: one
// JSON object per line, machine-parsable, stable key order
// (ts_ms, level, event, req, then caller fields in call order).
//
//   obs::log_warn("pool_queue_deep", {{"depth", depth}, {"limit", limit}});
//   → {"ts_ms": 1754650000123, "level": "warn", "event": "pool_queue_deep",
//      "req": 42, "depth": 129, "limit": 128}
//
// The "req" field is stamped automatically from the ambient
// obs::RequestContext (request_trace.h) whenever the log call happens
// inside a request — correlating daemon logs with cmd=trace span trees
// and response ids without any plumbing at the call sites.
//
// Rate limiting is per EVENT name (not global): each event gets a token
// bucket (default 10/s, burst 20). A suppressed burst is not silent —
// the next emitted line of that event carries a "suppressed": N field.
// This is what makes it safe to log from per-request and per-frame
// paths: a misbehaving client degrades the log to a sampled stream, not
// a disk-filling firehose.
//
// Thread safety: one mutex per Logger around formatting + sink. Logging
// is deliberately off the hot path (the service logs errors, slow
// requests, and lifecycle events — not per-request chatter), so a mutex
// is the right simplicity/perf trade.
//
// The default sink writes to stderr. Tests install a capturing sink and
// an injected rate-limit clock (set_clock_for_test) to make suppression
// deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <initializer_list>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>

namespace skelex::obs {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

const char* log_level_name(LogLevel level);
// "debug" | "info" | "warn" | "error" → level; false on anything else.
bool parse_log_level(std::string_view name, LogLevel* out);

// Small value variant for structured fields.
class LogValue {
 public:
  // Enumerate the fundamental integer types (int64_t/uint64_t are
  // aliases of two of these, platform-dependently — listing typedefs
  // alongside fundamentals double-declares an overload).
  LogValue(long long v) : kind_(Kind::kInt), i_(static_cast<std::int64_t>(v)) {}
  LogValue(long v) : LogValue(static_cast<long long>(v)) {}
  LogValue(int v) : LogValue(static_cast<long long>(v)) {}
  LogValue(unsigned long long v) : LogValue(static_cast<long long>(v)) {}
  LogValue(unsigned long v) : LogValue(static_cast<long long>(v)) {}
  LogValue(unsigned v) : LogValue(static_cast<long long>(v)) {}
  LogValue(double v) : kind_(Kind::kDouble), d_(v) {}
  LogValue(bool v) : kind_(Kind::kBool), b_(v) {}
  LogValue(std::string_view v) : kind_(Kind::kString), s_(v) {}
  LogValue(const char* v) : LogValue(std::string_view(v)) {}
  LogValue(const std::string& v) : LogValue(std::string_view(v)) {}

 private:
  friend class Logger;
  enum class Kind { kInt, kDouble, kBool, kString };
  Kind kind_;
  std::int64_t i_ = 0;
  double d_ = 0;
  bool b_ = false;
  std::string s_;
};

using LogFields = std::initializer_list<std::pair<const char*, LogValue>>;

class Logger {
 public:
  Logger();

  Logger(const Logger&) = delete;
  Logger& operator=(const Logger&) = delete;

  // Process-wide logger the built-in instrumentation writes to.
  static Logger& global();

  void set_min_level(LogLevel level);
  LogLevel min_level() const;

  // nullptr restores the default stderr sink. The sink receives one
  // complete JSON line (no trailing newline) per emitted record.
  void set_sink(std::function<void(std::string_view)> sink);

  // Per-event token bucket: sustained `per_sec` lines/s, bursts up to
  // `burst`. per_sec <= 0 disables rate limiting.
  void set_rate_limit(double per_sec, int burst);

  // Test hook: microsecond clock driving the rate limiter (nullptr
  // restores the real clock). Timestamps stay on the wall clock.
  void set_clock_for_test(std::function<double()> now_us);

  // Emits one record; returns false when filtered (level) or suppressed
  // (rate limit).
  bool log(LogLevel level, std::string_view event, LogFields fields = {});

  struct Counters {
    std::int64_t emitted = 0;
    std::int64_t suppressed = 0;
  };
  Counters counters() const;

 private:
  struct Bucket {
    double tokens = 0;
    double last_us = 0;
    std::int64_t suppressed = 0;
    bool primed = false;
  };

  mutable std::mutex mu_;
  LogLevel min_level_ = LogLevel::kInfo;
  std::function<void(std::string_view)> sink_;
  std::function<double()> now_us_;
  double per_sec_ = 10.0;
  int burst_ = 20;
  std::map<std::string, Bucket, std::less<>> buckets_;
  Counters counters_;
};

// Convenience wrappers over Logger::global().
inline bool log_debug(std::string_view event, LogFields fields = {}) {
  return Logger::global().log(LogLevel::kDebug, event, fields);
}
inline bool log_info(std::string_view event, LogFields fields = {}) {
  return Logger::global().log(LogLevel::kInfo, event, fields);
}
inline bool log_warn(std::string_view event, LogFields fields = {}) {
  return Logger::global().log(LogLevel::kWarn, event, fields);
}
inline bool log_error(std::string_view event, LogFields fields = {}) {
  return Logger::global().log(LogLevel::kError, event, fields);
}

}  // namespace skelex::obs
