#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "io/json.h"

namespace skelex::obs {

std::string canonical_labels(Labels labels) {
  std::sort(labels.begin(), labels.end());
  std::string out;
  // Structural characters inside keys/values are backslash-escaped so
  // the canonical string parses back unambiguously
  // (obs/export.h's parse_canonical_labels) — a label value carrying
  // ','/'=' must survive the round trip into the exposition format.
  const auto append_escaped = [&out](const std::string& s) {
    for (char c : s) {
      if (c == '\\' || c == ',' || c == '=') out += '\\';
      out += c;
    }
  };
  for (const auto& [k, v] : labels) {
    if (!out.empty()) out += ',';
    append_escaped(k);
    out += '=';
    append_escaped(v);
  }
  return out;
}

// --- Shard cells -------------------------------------------------------------

std::atomic<std::int64_t>& Registry::Shard::cell(int i) {
  const std::size_t c = static_cast<std::size_t>(i) / kChunk;
  if (c >= chunks.size()) {
    // Only the owning thread grows its shard; the lock fences against a
    // concurrent snapshot/reset traversal.
    std::lock_guard<std::mutex> lock(mu);
    while (chunks.size() <= c) {
      auto chunk = std::make_unique<Chunk>();
      for (auto& a : *chunk) a.store(0, std::memory_order_relaxed);
      chunks.push_back(std::move(chunk));
    }
  }
  return (*chunks[c])[static_cast<std::size_t>(i) % kChunk];
}

std::int64_t Registry::Shard::read(int i) const {
  const std::size_t c = static_cast<std::size_t>(i) / kChunk;
  if (c >= chunks.size()) return 0;
  return (*chunks[c])[static_cast<std::size_t>(i) % kChunk].load(
      std::memory_order_relaxed);
}

// --- Per-thread shard lookup -------------------------------------------------

std::uint64_t Registry::next_id() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

Registry::Shard& Registry::shard() {
  // Keyed by registry id, not pointer: a destroyed registry's stale
  // entry can never alias a new registry at the same address.
  thread_local std::vector<std::pair<std::uint64_t, Shard*>> tls;
  for (const auto& [id, s] : tls) {
    if (id == id_) return *s;
  }
  std::lock_guard<std::mutex> lock(mu_);
  shards_.push_back(std::make_unique<Shard>());
  Shard* s = shards_.back().get();
  tls.emplace_back(id_, s);
  return *s;
}

void Registry::add(int cell, std::int64_t n) {
  shard().cell(cell).fetch_add(n, std::memory_order_relaxed);
}

void Registry::set_max(int cell, double v) {
  Shard& s = shard();
  std::atomic<std::int64_t>& flag = s.cell(cell);
  std::atomic<std::int64_t>& bits = s.cell(cell + 1);
  // Owning thread only: plain read-compare-store on its own cells.
  if (flag.load(std::memory_order_relaxed) == 0 ||
      v > std::bit_cast<double>(bits.load(std::memory_order_relaxed))) {
    bits.store(std::bit_cast<std::int64_t>(v), std::memory_order_relaxed);
  }
  flag.store(1, std::memory_order_relaxed);
}

// --- Instrument handles ------------------------------------------------------

void Counter::inc(std::int64_t n) const {
  if (reg_ != nullptr) reg_->add(cell_, n);
}

void Gauge::set(double v) const {
  if (reg_ != nullptr) reg_->set_max(cell_, v);
}

void Histogram::observe(double v) const {
  if (reg_ == nullptr) return;
  const auto it = std::lower_bound(bounds_->begin(), bounds_->end(), v);
  const int bucket = static_cast<int>(it - bounds_->begin());
  reg_->add(cell_ + bucket, 1);  // +inf bucket at index bounds_->size()
  reg_->add(cell_ + static_cast<int>(bounds_->size()) + 1, 1);  // count
}

// --- Registry ----------------------------------------------------------------

Registry& Registry::global() {
  static Registry* reg = new Registry();  // never destroyed: handles in
  return *reg;                            // static instrumentation outlive exit
}

Counter Registry::counter(std::string name, Labels labels) {
  std::string canon = canonical_labels(std::move(labels));
  std::lock_guard<std::mutex> lock(mu_);
  const auto key = std::make_pair(name, canon);
  if (const auto it = index_.find(key); it != index_.end()) {
    const Def& d = *defs_[it->second];
    if (d.kind != 'c') throw std::logic_error(name + ": kind mismatch");
    return Counter(this, d.first_cell);
  }
  auto def = std::make_unique<Def>(
      Def{std::move(name), std::move(canon), 'c', next_cell_, {}});
  next_cell_ += 1;
  index_.emplace(key, defs_.size());
  Counter c(this, def->first_cell);
  defs_.push_back(std::move(def));
  return c;
}

Gauge Registry::gauge(std::string name, Labels labels) {
  std::string canon = canonical_labels(std::move(labels));
  std::lock_guard<std::mutex> lock(mu_);
  const auto key = std::make_pair(name, canon);
  if (const auto it = index_.find(key); it != index_.end()) {
    const Def& d = *defs_[it->second];
    if (d.kind != 'g') throw std::logic_error(name + ": kind mismatch");
    return Gauge(this, d.first_cell);
  }
  auto def = std::make_unique<Def>(
      Def{std::move(name), std::move(canon), 'g', next_cell_, {}});
  next_cell_ += 2;  // set-flag + value bits
  index_.emplace(key, defs_.size());
  Gauge g(this, def->first_cell);
  defs_.push_back(std::move(def));
  return g;
}

Histogram Registry::histogram(std::string name, std::vector<double> bounds,
                              Labels labels) {
  if (!std::is_sorted(bounds.begin(), bounds.end())) {
    throw std::invalid_argument(name + ": histogram bounds must be sorted");
  }
  std::string canon = canonical_labels(std::move(labels));
  std::lock_guard<std::mutex> lock(mu_);
  const auto key = std::make_pair(name, canon);
  if (const auto it = index_.find(key); it != index_.end()) {
    const Def& d = *defs_[it->second];
    if (d.kind != 'h' || d.bounds != bounds) {
      throw std::logic_error(name + ": kind or bounds mismatch");
    }
    return Histogram(this, d.first_cell, &d.bounds);
  }
  auto def = std::make_unique<Def>(
      Def{std::move(name), std::move(canon), 'h', next_cell_, std::move(bounds)});
  next_cell_ += static_cast<int>(def->bounds.size()) + 2;  // buckets+inf+count
  index_.emplace(key, defs_.size());
  Histogram h(this, def->first_cell, &def->bounds);
  defs_.push_back(std::move(def));
  return h;
}

MetricSnapshot Registry::snapshot() const {
  MetricSnapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  const auto sum = [&](int cell) {
    std::int64_t total = 0;
    for (const auto& s : shards_) {
      std::lock_guard<std::mutex> grow_lock(s->mu);
      total += s->read(cell);
    }
    return total;
  };
  for (const auto& def : defs_) {
    MetricSnapshot::Entry e;
    e.name = def->name;
    e.labels = def->labels;
    e.kind = def->kind;
    switch (def->kind) {
      case 'c':
        e.value = sum(def->first_cell);
        break;
      case 'g': {
        for (const auto& s : shards_) {
          std::lock_guard<std::mutex> grow_lock(s->mu);
          if (s->read(def->first_cell) != 0) {
            const double v = std::bit_cast<double>(s->read(def->first_cell + 1));
            if (!e.gauge_set || v > e.gauge) e.gauge = v;
            e.gauge_set = true;
          }
        }
        break;
      }
      case 'h': {
        e.bounds = def->bounds;
        const int buckets = static_cast<int>(def->bounds.size()) + 1;
        e.buckets.resize(static_cast<std::size_t>(buckets));
        for (int b = 0; b < buckets; ++b) {
          e.buckets[static_cast<std::size_t>(b)] = sum(def->first_cell + b);
        }
        e.count = sum(def->first_cell + buckets);
        break;
      }
      default:
        break;
    }
    snap.entries.push_back(std::move(e));
  }
  std::sort(snap.entries.begin(), snap.entries.end(),
            [](const MetricSnapshot::Entry& a, const MetricSnapshot::Entry& b) {
              if (a.name != b.name) return a.name < b.name;
              return a.labels < b.labels;
            });
  return snap;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& s : shards_) {
    std::lock_guard<std::mutex> grow_lock(s->mu);
    for (const auto& chunk : s->chunks) {
      for (auto& cell : *chunk) cell.store(0, std::memory_order_relaxed);
    }
  }
}

// --- Snapshot ----------------------------------------------------------------

const MetricSnapshot::Entry* MetricSnapshot::find(
    std::string_view name, std::string_view labels) const& {
  for (const Entry& e : entries) {
    if (e.name == name && e.labels == labels) return &e;
  }
  return nullptr;
}

void MetricSnapshot::write_json(io::JsonWriter& j) const {
  j.begin_array();
  for (const Entry& e : entries) {
    j.begin_object();
    j.key("name").value(e.name);
    if (!e.labels.empty()) j.key("labels").value(e.labels);
    switch (e.kind) {
      case 'c':
        j.key("kind").value("counter");
        j.key("value").value(static_cast<long long>(e.value));
        break;
      case 'g':
        j.key("kind").value("gauge");
        if (e.gauge_set) {
          j.key("value").value(e.gauge);
        } else {
          j.key("value").null_value();
        }
        break;
      case 'h': {
        j.key("kind").value("histogram");
        j.key("count").value(static_cast<long long>(e.count));
        j.key("buckets").begin_array();
        for (std::size_t b = 0; b < e.buckets.size(); ++b) {
          j.begin_object();
          if (b < e.bounds.size()) {
            j.key("le").value(e.bounds[b]);
          } else {
            j.key("le").value("inf");
          }
          j.key("count").value(static_cast<long long>(e.buckets[b]));
          j.end_object();
        }
        j.end_array();
        break;
      }
      default:
        break;
    }
    j.end_object();
  }
  j.end_array();
}

}  // namespace skelex::obs
