// skelex/obs/metrics.h
//
// Labelled metrics registry: counters, high-watermark gauges, and
// fixed-bucket histograms, sharded per thread.
//
// Contention model: every recording thread owns a private shard;
// Counter::inc / Gauge::set / Histogram::observe touch only the calling
// thread's cells (relaxed atomics — no locks, no cache-line ping-pong
// between exec::ThreadPool workers). snapshot() merges the shards.
//
// Determinism contract: a snapshot taken after a quiesced deterministic
// computation is byte-identical at any --threads setting, because every
// merge is order-independent — counters and histogram buckets sum
// integers, gauges take the max. The caller's side of the contract is
// to record only thread-count-invariant facts (transmissions, rounds,
// nodes — not wall times, not chunk counts); timings belong in spans
// (obs/trace.h), not here.
//
// Instruments are cheap value handles (registry pointer + cell index);
// registering is mutex-guarded and should happen once per call site
// (e.g. a function-local static), recording is lock-free.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace skelex::io {
class JsonWriter;
}

namespace skelex::obs {

// Label sets render canonically as "k1=v1,k2=v2" sorted by key.
// Structural characters (',' '=' '\') inside keys or values are
// backslash-escaped, so any value round-trips through the canonical
// string and back out via obs/export.h's parse_canonical_labels.
using Labels = std::vector<std::pair<std::string, std::string>>;
std::string canonical_labels(Labels labels);

class Registry;

class Counter {
 public:
  Counter() = default;
  void inc(std::int64_t n = 1) const;

 private:
  friend class Registry;
  Counter(Registry* reg, int cell) : reg_(reg), cell_(cell) {}
  Registry* reg_ = nullptr;
  int cell_ = -1;
};

// High-watermark gauge: set() records the value on the calling thread's
// shard if it exceeds the shard's previous value; the snapshot is the
// max across shards. (A last-write-wins gauge cannot merge
// deterministically across thread counts; a watermark can.)
class Gauge {
 public:
  Gauge() = default;
  void set(double v) const;

 private:
  friend class Registry;
  Gauge(Registry* reg, int cell) : reg_(reg), cell_(cell) {}
  Registry* reg_ = nullptr;
  int cell_ = -1;  // cell_: set-flag, cell_+1: double bits of the max
};

// Fixed upper-bound buckets (Prometheus "le" semantics: value v lands
// in the first bucket with v <= bound; beyond the last bound, the
// implicit +inf bucket).
class Histogram {
 public:
  Histogram() = default;
  void observe(double v) const;

 private:
  friend class Registry;
  Histogram(Registry* reg, int cell, const std::vector<double>* bounds)
      : reg_(reg), cell_(cell), bounds_(bounds) {}
  Registry* reg_ = nullptr;
  int cell_ = -1;  // cells [cell_, cell_+B]: buckets incl +inf; cell_+B+1: count
  const std::vector<double>* bounds_ = nullptr;  // owned by the registry
};

struct MetricSnapshot {
  struct Entry {
    std::string name;
    std::string labels;  // canonical form, "" when unlabelled
    char kind = 'c';     // 'c' counter, 'g' gauge, 'h' histogram
    std::int64_t value = 0;              // counter
    double gauge = 0.0;                  // gauge max (0 when never set)
    bool gauge_set = false;
    std::vector<double> bounds;          // histogram upper bounds
    std::vector<std::int64_t> buckets;   // bounds.size()+1 (last = +inf)
    std::int64_t count = 0;              // histogram observations
  };
  std::vector<Entry> entries;  // sorted by (name, labels)

  // Lvalue-only: the pointer aims into this snapshot, so calling it on a
  // temporary (`reg.snapshot().find(...)`) would dangle — bind the
  // snapshot to a named variable first.
  const Entry* find(std::string_view name,
                    std::string_view labels = "") const&;
  const Entry* find(std::string_view, std::string_view = "") const&& = delete;
  // Serializes under the currently open JSON value position as an array
  // of {name, labels, kind, ...} objects — deterministic byte-for-byte
  // given equal entries.
  void write_json(io::JsonWriter& j) const;
};

class Registry {
 public:
  Registry() = default;
  ~Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  // Process-wide registry the built-in instrumentation records into.
  static Registry& global();

  // Find-or-create; repeated calls with the same (name, labels) return
  // handles over the same cells. Throws std::logic_error if the name
  // was already registered as a different kind or with different
  // histogram bounds.
  Counter counter(std::string name, Labels labels = {});
  Gauge gauge(std::string name, Labels labels = {});
  Histogram histogram(std::string name, std::vector<double> bounds,
                      Labels labels = {});

  // Merged view across all shards; safe to call concurrently with
  // recording (the snapshot of a quiesced computation is exact and
  // deterministic; a mid-flight one is merely consistent per cell).
  MetricSnapshot snapshot() const;

  // Zeroes every cell on every shard; definitions and handles stay
  // valid. For tests and multi-phase benches.
  void reset();

 private:
  friend class Counter;
  friend class Gauge;
  friend class Histogram;

  static constexpr int kChunk = 256;
  using Chunk = std::array<std::atomic<std::int64_t>, kChunk>;
  struct Shard {
    // Growth (new chunks) locks mu; reads/writes of existing cells are
    // lock-free. Only the owning thread appends, snapshot/reset lock.
    std::mutex mu;
    std::vector<std::unique_ptr<Chunk>> chunks;
    std::atomic<std::int64_t>& cell(int i);
    std::int64_t read(int i) const;  // 0 when the chunk was never grown
  };
  struct Def {
    std::string name;
    std::string labels;
    char kind;
    int first_cell;
    std::vector<double> bounds;  // histogram only
  };

  Shard& shard();
  void add(int cell, std::int64_t n);
  void set_max(int cell, double v);

  const std::uint64_t id_ = next_id();
  static std::uint64_t next_id();

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Def>> defs_;
  std::map<std::pair<std::string, std::string>, std::size_t> index_;
  int next_cell_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace skelex::obs
