#include "obs/request_trace.h"

#include <atomic>
#include <cstring>

#include "io/json.h"

namespace skelex::obs {

namespace {
thread_local RequestContext* g_current = nullptr;
}  // namespace

RequestContext::RequestContext(std::uint64_t id, bool record_spans)
    : id_(id), record_spans_(record_spans), t0_us_(Tracer::now_us()) {
  if (record_spans_) {
    spans.reserve(16);
    stack_.reserve(8);
  }
}

RequestContext* RequestContext::current() { return g_current; }

std::uint64_t RequestContext::next_id() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

int RequestContext::begin_span(std::string_view name, const char* cat) {
  if (!record_spans_) return -1;
  if (spans.size() >= kMaxSpans) {
    ++dropped_spans;
    return -1;
  }
  RequestSpanRecord rec;
  rec.name = name;
  rec.cat = cat;
  rec.parent = stack_.empty() ? -1 : stack_.back();
  rec.start_us = Tracer::now_us() - t0_us_;
  const int idx = static_cast<int>(spans.size());
  spans.push_back(std::move(rec));
  stack_.push_back(idx);
  return idx;
}

void RequestContext::span_arg(int idx, const char* key, std::int64_t v) {
  if (idx < 0) return;
  spans[static_cast<std::size_t>(idx)].args.emplace_back(key, v);
}

void RequestContext::end_span(int idx) {
  if (idx < 0) return;
  RequestSpanRecord& rec = spans[static_cast<std::size_t>(idx)];
  rec.dur_us = Tracer::now_us() - t0_us_ - rec.start_us;
  // RAII callers nest strictly; pop through idx defensively in case an
  // inner span leaked past the cap.
  while (!stack_.empty()) {
    const int top = stack_.back();
    stack_.pop_back();
    if (top == idx) break;
  }
}

int RequestContext::add_complete_span(std::string_view name, const char* cat,
                                      double start_abs_us,
                                      double end_abs_us) {
  if (!record_spans_) return -1;
  if (spans.size() >= kMaxSpans) {
    ++dropped_spans;
    return -1;
  }
  RequestSpanRecord rec;
  rec.name = name;
  rec.cat = cat;
  rec.parent = stack_.empty() ? -1 : stack_.back();
  rec.start_us = start_abs_us - t0_us_;
  rec.dur_us = end_abs_us - start_abs_us;
  const int idx = static_cast<int>(spans.size());
  spans.push_back(std::move(rec));
  return idx;
}

void RequestContext::note_cache(const char* stage, bool hit) {
  if (std::strcmp(stage, "scenario") == 0) {
    ++(hit ? scenario_hits : scenario_misses);
  } else {
    ++(hit ? stage_hits : stage_misses);
  }
}

const char* RequestContext::tier() const {
  if (scenario_misses > 0) return "cold";
  if (stage_misses > 0) return "warm_scenario";
  if (stage_hits > 0 || scenario_hits > 0) return "warm_stage";
  return "none";
}

ScopedRequestContext::ScopedRequestContext(RequestContext* ctx)
    : prev_(g_current) {
  g_current = ctx;
}

ScopedRequestContext::~ScopedRequestContext() { g_current = prev_; }

RequestSpan::RequestSpan(std::string_view name, const char* cat)
    : ctx_(RequestContext::current()), sink_(Tracer::current()) {
  if (ctx_ != nullptr) idx_ = ctx_->begin_span(name, cat);
  if (sink_ != nullptr) {
    ev_.name = name;
    ev_.cat = cat;
    ev_.ts_us = Tracer::now_us();
  }
}

RequestSpan::~RequestSpan() {
  if (ctx_ != nullptr) ctx_->end_span(idx_);
  if (sink_ != nullptr) {
    ev_.dur_us = Tracer::now_us() - ev_.ts_us;
    ev_.tid = Tracer::tid();
    if (ctx_ != nullptr) {
      ev_.args.emplace_back("req", static_cast<std::int64_t>(ctx_->id()));
    }
    sink_->record(std::move(ev_));
  }
}

void RequestSpan::arg(const char* key, std::int64_t v) {
  if (ctx_ != nullptr) ctx_->span_arg(idx_, key, v);
  if (sink_ != nullptr) ev_.args.emplace_back(key, v);
}

RequestTraceStore::RequestTraceStore(std::size_t capacity)
    : cap_(capacity > 0 ? capacity : 1) {}

void RequestTraceStore::add(Finished f) {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.push_back(std::move(f));
  while (ring_.size() > cap_) ring_.pop_front();
}

std::size_t RequestTraceStore::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

void RequestTraceStore::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
}

void RequestTraceStore::write_json(io::JsonWriter& j, std::size_t n) const {
  std::lock_guard<std::mutex> lock(mu_);
  const std::size_t count = n < ring_.size() ? n : ring_.size();
  j.begin_array();
  for (std::size_t i = ring_.size() - count; i < ring_.size(); ++i) {
    const Finished& f = ring_[i];
    j.begin_object();
    j.key("request_id").value(static_cast<long long>(f.request_id));
    j.key("cmd").value(f.cmd);
    j.key("tier").value(f.tier);
    j.key("total_us").value(f.total_us);
    if (f.dropped_spans > 0) {
      j.key("dropped_spans").value(f.dropped_spans);
    }
    j.key("spans").begin_array();
    for (const RequestSpanRecord& s : f.spans) {
      j.begin_object();
      j.key("name").value(s.name);
      j.key("cat").value(s.cat);
      j.key("parent").value(s.parent);
      j.key("start_us").value(s.start_us);
      j.key("dur_us").value(s.dur_us);
      if (!s.args.empty()) {
        j.key("args").begin_object();
        for (const auto& [k, v] : s.args) {
          j.key(k).value(static_cast<long long>(v));
        }
        j.end_object();
      }
      j.end_object();
    }
    j.end_array();
    j.end_object();
  }
  j.end_array();
}

}  // namespace skelex::obs
