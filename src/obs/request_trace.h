// skelex/obs/request_trace.h
//
// Request-scoped tracing for the serving path: one RequestContext per
// service request, carrying the request id from the svc::Server
// connection reader through ExtractionService::handle, the stage-command
// pipeline, the memo cache, and the thread-pool queue wait — so a single
// request yields a single parented span tree.
//
// The context is AMBIENT (a thread-local pointer installed by
// ScopedRequestContext), because a request is handled start to finish on
// one pool thread: the server installs the context before calling the
// service, and every layer below — core::ScopedStage, the StageCache,
// svc-internal RequestSpans — registers its span against whatever
// context is current, with no plumbing through the intermediate APIs.
//
// Two independent costs, gated separately:
//   * cache-tier accounting (note_cache → tier()) is a handful of int
//     increments and ALWAYS on — the per-cmd latency histograms need the
//     tier label even when span recording is off;
//   * span recording (begin/end_span) allocates and is gated by the
//     `record_spans` flag (ExtractionService::Options::trace_requests).
//     With it off, begin_span returns -1 and the request costs one
//     thread-local read per instrumentation site — the ≤2% hot-path
//     budget guarded by bench_micro's BM_ServiceWarmHandle pair.
//
// Spans are stored pre-order with a parent index (-1 = root), capped at
// kMaxSpans per request (overflow counts into dropped_spans instead of
// growing without bound under a pathological request). Finished trees go
// into a bounded RequestTraceStore ring that `cmd=trace` serves back.
//
// Span emission also mirrors to the ambient obs::Tracer sink (when one
// is installed) with a "req" arg, so daemon traces land in the same
// Chrome-JSON files as the computation spans.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/trace.h"

namespace skelex::io {
class JsonWriter;
}

namespace skelex::obs {

struct RequestSpanRecord {
  std::string name;
  const char* cat = "";
  int parent = -1;      // index into the request's span list, -1 = root
  double start_us = 0;  // relative to the request's first span
  double dur_us = 0;
  std::vector<std::pair<const char*, std::int64_t>> args;
};

class RequestContext {
 public:
  static constexpr int kMaxSpans = 512;

  RequestContext(std::uint64_t id, bool record_spans);

  RequestContext(const RequestContext&) = delete;
  RequestContext& operator=(const RequestContext&) = delete;

  // The thread's ambient context (installed by ScopedRequestContext),
  // or nullptr outside a request.
  static RequestContext* current();
  // Process-unique monotone request id.
  static std::uint64_t next_id();

  std::uint64_t id() const { return id_; }
  bool recording() const { return record_spans_; }
  double start_us() const { return t0_us_; }

  // --- span tree (no-ops returning -1 when !recording()) --------------------
  // Opens a span parented to the innermost open span; returns its index.
  int begin_span(std::string_view name, const char* cat);
  void span_arg(int idx, const char* key, std::int64_t v);
  // Closes span `idx`, stamping its duration. Must nest (RAII callers).
  void end_span(int idx);
  // Records an already-elapsed span with explicit absolute timestamps on
  // the Tracer clock (e.g. the pool queue wait, measured by the reader
  // thread before this context existed).
  int add_complete_span(std::string_view name, const char* cat,
                        double start_abs_us, double end_abs_us);

  // --- cache-tier accounting (always on) -------------------------------------
  // The memo cache calls this on every lookup; `stage` is the cache's
  // stage tag ("scenario", "index", ...).
  void note_cache(const char* stage, bool hit);
  // cold          — the scenario itself was computed this request;
  // warm_scenario — scenario cached, but some stage output was computed;
  // warm_stage    — every memoized lookup hit (the fully warm path);
  // none          — the request touched no cache (stats/ping/...).
  const char* tier() const;

  int scenario_hits = 0;
  int scenario_misses = 0;
  int stage_hits = 0;
  int stage_misses = 0;
  int dropped_spans = 0;
  std::vector<RequestSpanRecord> spans;  // pre-order

 private:
  std::uint64_t id_;
  bool record_spans_;
  double t0_us_;            // Tracer::now_us() at construction
  std::vector<int> stack_;  // indices of open spans
};

// RAII installer of the ambient context (restores the previous one, so
// nested service calls on one thread keep their own trees).
class ScopedRequestContext {
 public:
  explicit ScopedRequestContext(RequestContext* ctx);
  ~ScopedRequestContext();
  ScopedRequestContext(const ScopedRequestContext&) = delete;
  ScopedRequestContext& operator=(const ScopedRequestContext&) = delete;

 private:
  RequestContext* prev_;
};

// RAII span that registers with the ambient RequestContext AND emits to
// the ambient TraceSink (with a "req" arg) — the svc-layer counterpart
// of core::ScopedStage. Free when neither is active.
class RequestSpan {
 public:
  RequestSpan(std::string_view name, const char* cat);
  ~RequestSpan();
  RequestSpan(const RequestSpan&) = delete;
  RequestSpan& operator=(const RequestSpan&) = delete;

  void arg(const char* key, std::int64_t v);

 private:
  RequestContext* ctx_;
  TraceSink* sink_;
  int idx_ = -1;
  TraceEvent ev_;  // only filled when sink_ != nullptr
};

// Bounded ring of finished request span trees; `cmd=trace` renders the
// last N. Thread-safe (requests finish on pool workers concurrently).
class RequestTraceStore {
 public:
  struct Finished {
    std::uint64_t request_id = 0;
    std::string cmd;
    std::string tier;
    double total_us = 0;
    int dropped_spans = 0;
    std::vector<RequestSpanRecord> spans;
  };

  explicit RequestTraceStore(std::size_t capacity = 32);

  void add(Finished f);
  std::size_t size() const;
  void clear();

  // Appends the last min(n, size) finished requests, oldest first, as a
  // JSON array at the writer's current value position.
  void write_json(io::JsonWriter& j, std::size_t n) const;

 private:
  mutable std::mutex mu_;
  std::deque<Finished> ring_;
  std::size_t cap_;
};

}  // namespace skelex::obs
