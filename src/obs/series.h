// skelex/obs/series.h
//
// Per-round time series of a simulated run: one sample per simulator
// round with the round's traffic deltas, the in-flight queue depth at
// the round boundary, fault drops, and reliability-layer
// retransmissions. sim::Engine fills the radio columns when
// Engine::enable_round_series(true) is set; core::ReliableFloodWrapper
// bumps the retransmission column through the engine's active series.
//
// This turns the paper's Theorem 5 *totals* (transmissions, rounds to
// quiescence) into convergence *curves*: where the flood waves peak, how
// the in-flight backlog drains, and when retransmission bursts happen
// under loss. Samples are plain integers derived from deterministic
// protocol executions, so a series is byte-stable across runs and
// thread counts.
#pragma once

#include <cstdint>
#include <vector>

namespace skelex::obs {

struct RoundSample {
  int round = 0;                      // engine round (0 = on_start)
  std::int64_t transmissions = 0;     // radio sends during this round
  std::int64_t receptions = 0;        // listener deliveries heard
  std::int64_t queue_depth = 0;       // frames in flight at round end
  std::int64_t fault_drops = 0;       // tx/rx swallowed by the FaultPlan
  std::int64_t retransmissions = 0;   // reliability-layer rebroadcasts
};

class RoundSeries {
 public:
  bool empty() const { return samples_.empty(); }
  std::size_t size() const { return samples_.size(); }
  const std::vector<RoundSample>& samples() const { return samples_; }
  void clear() { samples_.clear(); }

  // Row for `round`, growing the series with zero rows as needed.
  // Within one engine run rows are indexed by round (round i at
  // position i); concatenated series (append_shifted) keep the `round`
  // field authoritative instead.
  RoundSample& ensure(int round) {
    while (static_cast<int>(samples_.size()) <= round) {
      samples_.push_back({static_cast<int>(samples_.size()), 0, 0, 0, 0, 0});
    }
    return samples_[static_cast<std::size_t>(round)];
  }

  // Appends o's rows with their round numbers shifted by `round_offset`
  // — used by sim::RunStats::operator+= so a multi-protocol pipeline's
  // summed stats carry one continuous curve on the engine lifetime
  // clock.
  void append_shifted(const RoundSeries& o, int round_offset) {
    samples_.reserve(samples_.size() + o.samples_.size());
    for (RoundSample s : o.samples_) {
      s.round += round_offset;
      samples_.push_back(s);
    }
  }

  std::int64_t total_transmissions() const {
    std::int64_t t = 0;
    for (const RoundSample& s : samples_) t += s.transmissions;
    return t;
  }
  std::int64_t total_retransmissions() const {
    std::int64_t t = 0;
    for (const RoundSample& s : samples_) t += s.retransmissions;
    return t;
  }
  std::int64_t peak_queue_depth() const {
    std::int64_t q = 0;
    for (const RoundSample& s : samples_) {
      if (s.queue_depth > q) q = s.queue_depth;
    }
    return q;
  }

 private:
  std::vector<RoundSample> samples_;
};

}  // namespace skelex::obs
