#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <chrono>

#include "io/json.h"

namespace skelex::obs {

namespace {

std::atomic<TraceSink*> g_sink{nullptr};
thread_local TraceSink* t_sink = nullptr;

std::chrono::steady_clock::time_point anchor() {
  static const std::chrono::steady_clock::time_point t0 =
      std::chrono::steady_clock::now();
  return t0;
}

}  // namespace

void Tracer::set_global(TraceSink* sink) {
  g_sink.store(sink, std::memory_order_release);
}

TraceSink* Tracer::global() { return g_sink.load(std::memory_order_acquire); }

TraceSink* Tracer::current() {
  if (t_sink != nullptr) return t_sink;
  return g_sink.load(std::memory_order_acquire);
}

double Tracer::now_us() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - anchor())
      .count();
}

int Tracer::tid() {
  static std::atomic<int> next{0};
  thread_local int id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

void Tracer::emit(TraceEvent e) {
  if (TraceSink* sink = current()) sink->record(std::move(e));
}

void Tracer::instant(
    std::string name, const char* cat,
    std::initializer_list<std::pair<const char*, std::int64_t>> args) {
  TraceSink* sink = current();
  if (sink == nullptr) return;
  TraceEvent e;
  e.name = std::move(name);
  e.cat = cat;
  e.phase = 'i';
  e.ts_us = now_us();
  e.tid = tid();
  e.args.assign(args.begin(), args.end());
  sink->record(std::move(e));
}

ScopedThreadSink::ScopedThreadSink(TraceSink* sink) : prev_(t_sink) {
  t_sink = sink;
}

ScopedThreadSink::~ScopedThreadSink() { t_sink = prev_; }

void MemoryTraceSink::record(TraceEvent e) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(e));
}

std::size_t MemoryTraceSink::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::vector<TraceEvent> MemoryTraceSink::events() const {
  std::vector<TraceEvent> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out = events_;
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
              if (a.tid != b.tid) return a.tid < b.tid;
              return a.name < b.name;
            });
  return out;
}

std::string MemoryTraceSink::chrome_json() const {
  io::JsonWriter j;
  j.begin_object();
  j.key("displayTimeUnit").value("ms");
  j.key("traceEvents").begin_array();
  for (const TraceEvent& e : events()) {
    const char ph[2] = {e.phase, '\0'};
    j.begin_object();
    j.key("name").value(e.name);
    j.key("cat").value(e.cat);
    j.key("ph").value(static_cast<const char*>(ph));
    j.key("ts").value(e.ts_us);
    if (e.phase == 'X') j.key("dur").value(e.dur_us);
    j.key("pid").value(1);
    j.key("tid").value(e.tid);
    if (e.phase == 'i') j.key("s").value("t");  // thread-scoped instant
    if (!e.args.empty()) {
      j.key("args").begin_object();
      for (const auto& [k, v] : e.args) j.key(k).value(static_cast<long long>(v));
      j.end_object();
    }
    j.end_object();
  }
  j.end_array();
  j.end_object();
  return j.str();
}

void MemoryTraceSink::save(const std::string& path) const {
  const std::string json = chrome_json();
  const std::filesystem::path p(path);
  if (p.has_parent_path()) std::filesystem::create_directories(p.parent_path());
  std::ofstream f(path);
  if (!f) throw std::runtime_error("cannot open " + path);
  f << json << '\n';
  if (!f) throw std::runtime_error("failed writing " + path);
}

}  // namespace skelex::obs
