// skelex/obs/trace.h
//
// Span tracing with Chrome/Perfetto trace_event output.
//
// Any layer can emit spans (complete 'X' events) or instants ('i'
// events) to the ambient TraceSink; a bench or example installs a sink,
// runs, and saves a JSON file that ui.perfetto.dev opens directly.
// Emitters: pipeline stages (core/stage_trace.h ScopedStage), engine
// runs (sim::Engine::run), thread-pool chunks with queue-wait time
// (exec::ThreadPool::parallel_for), and reliable-flood retransmission
// bursts (core::ReliableFloodWrapper).
//
// Zero-cost when disabled: with no sink installed, ScopedSpan reads no
// clock and allocates nothing — construction is a single thread-local
// + relaxed-atomic pointer check. "Disabled" is the absence of a sink;
// NullTraceSink exists for overhead measurements that want the full
// emission path without retention.
//
// Sink resolution is two-level: a thread-local sink (ScopedThreadSink)
// overrides the process-global one. Parallel sweeps use this to give
// every cell its own isolated trace file while cells share worker
// threads.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace skelex::obs {

struct TraceEvent {
  std::string name;
  const char* cat = "";  // "pipeline", "proto", "engine", "exec", "reliable"
  char phase = 'X';      // 'X' complete span, 'i' instant
  double ts_us = 0.0;    // start, microseconds on the process-wide clock
  double dur_us = 0.0;   // 'X' only
  int tid = 0;           // dense per-thread id (registration order)
  // Integer args rendered into the event's "args" object. Keys must be
  // string literals (the event stores the pointer, not a copy).
  std::vector<std::pair<const char*, std::int64_t>> args;
};

class TraceSink {
 public:
  virtual ~TraceSink() = default;
  // May be called concurrently from any thread.
  virtual void record(TraceEvent e) = 0;
};

// Accepts and discards every event: the full emission cost (clock
// reads, event construction) without retention. For overhead guards.
class NullTraceSink final : public TraceSink {
 public:
  void record(TraceEvent) override {}
};

// Collects events in memory and serializes Chrome trace_event JSON
// ({"traceEvents": [...]}) — the format ui.perfetto.dev and
// chrome://tracing load natively.
class MemoryTraceSink final : public TraceSink {
 public:
  void record(TraceEvent e) override;
  std::size_t size() const;
  // Copy of the events, sorted by (ts, tid, name) for stable output.
  std::vector<TraceEvent> events() const;
  std::string chrome_json() const;
  // Writes chrome_json() to `path`, creating parent directories.
  void save(const std::string& path) const;

 private:
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
};

class Tracer {
 public:
  // Installs the process-global sink (nullptr disables). The sink must
  // outlive tracing; emitters hold the raw pointer only within a call.
  static void set_global(TraceSink* sink);
  static TraceSink* global();
  // Thread-local override if set, else the global sink, else nullptr.
  static TraceSink* current();
  static bool enabled() { return current() != nullptr; }

  // Microseconds on the process-wide steady clock (comparable across
  // threads; anchored at first use).
  static double now_us();
  // Dense id of the calling thread, assigned on first use.
  static int tid();

  // Routes to current(); no-op when no sink is installed.
  static void emit(TraceEvent e);
  // Stamps ts/tid and emits an instant event; no-op when disabled.
  static void instant(
      std::string name, const char* cat,
      std::initializer_list<std::pair<const char*, std::int64_t>> args = {});
};

// RAII thread-local sink override (restores the previous override).
class ScopedThreadSink {
 public:
  explicit ScopedThreadSink(TraceSink* sink);
  ~ScopedThreadSink();
  ScopedThreadSink(const ScopedThreadSink&) = delete;
  ScopedThreadSink& operator=(const ScopedThreadSink&) = delete;

 private:
  TraceSink* prev_;
};

// RAII span: snapshots the sink once at construction; when a sink is
// installed, measures wall time and emits a complete event at scope
// exit. When none is, every member call is a no-op with no clock reads.
class ScopedSpan {
 public:
  ScopedSpan(std::string_view name, const char* cat) : sink_(Tracer::current()) {
    if (sink_ != nullptr) {
      ev_.name = name;
      ev_.cat = cat;
      ev_.ts_us = Tracer::now_us();
    }
  }
  ~ScopedSpan() {
    if (sink_ != nullptr) {
      ev_.dur_us = Tracer::now_us() - ev_.ts_us;
      ev_.tid = Tracer::tid();
      sink_->record(std::move(ev_));
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  void arg(const char* key, std::int64_t v) {
    if (sink_ != nullptr) ev_.args.emplace_back(key, v);
  }
  bool active() const { return sink_ != nullptr; }

 private:
  TraceSink* sink_;
  TraceEvent ev_;
};

}  // namespace skelex::obs
