#include "radio/radio_model.h"

#include <cmath>
#include <stdexcept>

namespace skelex::radio {

using geom::Vec2;

UnitDiskModel::UnitDiskModel(double range) : range_(range) {
  if (range <= 0) throw std::invalid_argument("UDG range must be > 0");
}

bool UnitDiskModel::link(Vec2 a, Vec2 b, deploy::Rng&) const {
  return geom::dist2(a, b) <= range_ * range_;
}

QuasiUnitDiskModel::QuasiUnitDiskModel(double range, double alpha, double p)
    : range_(range), alpha_(alpha), p_(p) {
  if (range <= 0) throw std::invalid_argument("QUDG range must be > 0");
  if (alpha < 0 || alpha >= 1) throw std::invalid_argument("QUDG alpha in [0,1)");
  if (p <= 0 || p >= 1) throw std::invalid_argument("QUDG p in (0,1)");
}

bool QuasiUnitDiskModel::link(Vec2 a, Vec2 b, deploy::Rng& rng) const {
  const double d = geom::dist(a, b);
  if (d < (1.0 - alpha_) * range_) return true;
  if (d > (1.0 + alpha_) * range_) return false;
  return rng.next_double() < p_;
}

LogNormalModel::LogNormalModel(double range, double xi, double cutoff_factor)
    : range_(range), xi_(xi), cutoff_(cutoff_factor) {
  if (range <= 0) throw std::invalid_argument("range must be > 0");
  if (xi < 0) throw std::invalid_argument("xi must be >= 0");
  if (cutoff_factor < 1) throw std::invalid_argument("cutoff factor >= 1");
}

double LogNormalModel::link_probability(double r_hat) const {
  if (r_hat <= 0) return 1.0;
  if (xi_ == 0.0) {
    // Degenerates to UDG: erf(+-inf) = +-1.
    return r_hat < 1.0 ? 1.0 : (r_hat == 1.0 ? 0.5 : 0.0);
  }
  // Eq. (2) of the paper; alpha = 10 / (sqrt(2) * log(10)).
  static const double kAlpha = 10.0 / (std::sqrt(2.0) * std::log(10.0));
  return 0.5 * (1.0 - std::erf(kAlpha * std::log10(r_hat) / xi_));
}

bool LogNormalModel::link(Vec2 a, Vec2 b, deploy::Rng& rng) const {
  const double d = geom::dist(a, b);
  if (d > range_ * cutoff_) return false;
  return rng.next_double() < link_probability(d / range_);
}

std::unique_ptr<RadioModel> make_udg(double range) {
  return std::make_unique<UnitDiskModel>(range);
}

std::unique_ptr<RadioModel> make_qudg(double range, double alpha, double p) {
  return std::make_unique<QuasiUnitDiskModel>(range, alpha, p);
}

std::unique_ptr<RadioModel> make_lognormal(double range, double xi) {
  return std::make_unique<LogNormalModel>(range, xi);
}

}  // namespace skelex::radio
