// skelex/radio/radio_model.h
//
// Communication radio models (§IV): which pairs of deployed nodes share a
// link. Three models from the paper:
//   * UDG      — link iff separation <= R (the default model);
//   * QUDG     — quasi unit-disk graph with uncertainty band
//                [(1-alpha)R, (1+alpha)R], link probability p in the band
//                (Fig. 6: alpha = 0.4, p = 0.3);
//   * LogNormal— log-normal shadowing (Hekmat & Van Mieghem), Eq. (2):
//                P(link at normalized distance r^) =
//                  (1/2) [1 - erf(a * log10(r^) / xi)],
//                xi = sigma/eta in [0, 6] (Fig. 7: xi = 0, 1, 2, 3).
//
// Models are symmetric: the decision for an unordered pair {i, j} is made
// once, so the produced graph is undirected even for probabilistic models.
#pragma once

#include <memory>
#include <string>

#include "deploy/rng.h"
#include "geometry/vec2.h"

namespace skelex::radio {

class RadioModel {
 public:
  virtual ~RadioModel() = default;

  // Decide whether an (undirected) link exists between positions a and b.
  // `rng` supplies randomness for probabilistic models; deterministic
  // models ignore it.
  virtual bool link(geom::Vec2 a, geom::Vec2 b, deploy::Rng& rng) const = 0;

  // Maximum distance at which link() can possibly return true; the graph
  // builder uses it to bound neighbor queries.
  virtual double max_range() const = 0;

  // True when link() never reads `rng` (the decision is a pure function
  // of the two positions). The graph builder uses this to batch the
  // candidate-pair sweep across threads: with no RNG state to thread,
  // link decisions can be made in any order with identical results.
  virtual bool deterministic() const { return false; }

  virtual std::string name() const = 0;
};

class UnitDiskModel final : public RadioModel {
 public:
  explicit UnitDiskModel(double range);
  bool link(geom::Vec2 a, geom::Vec2 b, deploy::Rng& rng) const override;
  double max_range() const override { return range_; }
  bool deterministic() const override { return true; }
  std::string name() const override { return "UDG"; }
  double range() const { return range_; }

 private:
  double range_;
};

class QuasiUnitDiskModel final : public RadioModel {
 public:
  // alpha in [0, 1): width of the uncertainty band; p in (0, 1): link
  // probability inside the band.
  QuasiUnitDiskModel(double range, double alpha, double p);
  bool link(geom::Vec2 a, geom::Vec2 b, deploy::Rng& rng) const override;
  double max_range() const override { return range_ * (1.0 + alpha_); }
  std::string name() const override { return "QUDG"; }

 private:
  double range_;
  double alpha_;
  double p_;
};

class LogNormalModel final : public RadioModel {
 public:
  // xi = sigma/eta (paper's ξ); r is normalized by `range`. Links beyond
  // cutoff_factor * range are truncated (their probability is negligible).
  LogNormalModel(double range, double xi, double cutoff_factor = 3.0);
  bool link(geom::Vec2 a, geom::Vec2 b, deploy::Rng& rng) const override;
  double max_range() const override { return range_ * cutoff_; }
  std::string name() const override { return "LogNormal"; }

  // Link probability at normalized distance r_hat (exposed for tests).
  double link_probability(double r_hat) const;

 private:
  double range_;
  double xi_;
  double cutoff_;
};

std::unique_ptr<RadioModel> make_udg(double range);
std::unique_ptr<RadioModel> make_qudg(double range, double alpha, double p);
std::unique_ptr<RadioModel> make_lognormal(double range, double xi);

}  // namespace skelex::radio
