#include "sim/dynamics.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <map>
#include <set>
#include <stdexcept>

namespace skelex::sim {

namespace {

std::uint64_t link_key(int u, int v) {
  const std::uint64_t a = static_cast<std::uint64_t>(std::min(u, v));
  const std::uint64_t b = static_cast<std::uint64_t>(std::max(u, v));
  return (a << 32) | b;
}

std::pair<int, int> normalized(int u, int v) {
  return {std::min(u, v), std::max(u, v)};
}

}  // namespace

const char* churn_kind_name(ChurnKind k) {
  switch (k) {
    case ChurnKind::kNodeJoin:
      return "join";
    case ChurnKind::kNodeLeave:
      return "leave";
    case ChurnKind::kLinkAdd:
      return "link_add";
    case ChurnKind::kLinkRemove:
      return "link_remove";
  }
  return "?";
}

void ChurnScript::add(ChurnEvent e) {
  if (e.round < 0) throw std::invalid_argument("churn event round must be >= 0");
  if (!events_.empty() && e.round < events_.back().round) {
    throw std::invalid_argument("churn events must be added in round order");
  }
  switch (e.kind) {
    case ChurnKind::kNodeJoin:
    case ChurnKind::kNodeLeave:
      if (e.node < 0) throw std::invalid_argument("churn event needs a node id");
      break;
    case ChurnKind::kLinkAdd:
    case ChurnKind::kLinkRemove:
      if (e.u < 0 || e.v < 0 || e.u == e.v) {
        throw std::invalid_argument("churn link event needs distinct endpoints");
      }
      break;
  }
  events_.push_back(std::move(e));
}

std::span<const ChurnEvent> ChurnScript::at(int round) const {
  const auto lo = std::lower_bound(
      events_.begin(), events_.end(), round,
      [](const ChurnEvent& e, int r) { return e.round < r; });
  const auto hi = std::upper_bound(
      events_.begin(), events_.end(), round,
      [](int r, const ChurnEvent& e) { return r < e.round; });
  return {events_.data() + (lo - events_.begin()),
          static_cast<std::size_t>(hi - lo)};
}

int ChurnScript::horizon() const {
  return events_.empty() ? 0 : events_.back().round + 1;
}

std::uint64_t ChurnScript::digest() const {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a
  const auto mix = [&h](std::uint64_t x) {
    for (int i = 0; i < 8; ++i) {
      h ^= (x >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  mix(events_.size());
  for (const ChurnEvent& e : events_) {
    mix(static_cast<std::uint64_t>(e.round));
    mix(static_cast<std::uint64_t>(e.kind));
    mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(e.node)));
    mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(e.u)));
    mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(e.v)));
    mix(std::bit_cast<std::uint64_t>(e.pos.x));
    mix(std::bit_cast<std::uint64_t>(e.pos.y));
    mix(e.links.size());
    for (int w : e.links) mix(static_cast<std::uint64_t>(w));
  }
  return h;
}

FaultPlan ChurnScript::to_fault_plan() const {
  FaultPlan plan;
  // Per-link presence toggles in event (= round) order; std::map keys
  // give a deterministic link iteration order.
  std::map<std::uint64_t, std::vector<std::pair<int, bool>>> toggles;
  for (const ChurnEvent& e : events_) {
    switch (e.kind) {
      case ChurnKind::kNodeJoin:
        if (e.round > 0) plan.sleep(e.node, 0, e.round);
        for (int w : e.links) {
          toggles[link_key(e.node, w)].push_back({e.round, true});
        }
        break;
      case ChurnKind::kNodeLeave:
        plan.crash_at(e.node, e.round);
        break;
      case ChurnKind::kLinkAdd:
        toggles[link_key(e.u, e.v)].push_back({e.round, true});
        break;
      case ChurnKind::kLinkRemove:
        toggles[link_key(e.u, e.v)].push_back({e.round, false});
        break;
    }
  }
  for (const auto& [key, tog] : toggles) {
    const int u = static_cast<int>(key >> 32);
    const int v = static_cast<int>(key & 0xffffffffu);
    // A link whose first toggle is an add did not exist before it; one
    // whose first toggle is a remove must have existed all along.
    int down_from = tog.front().second ? 0 : -1;
    for (const auto& [round, up] : tog) {
      if (up) {
        if (down_from != -1 && round > down_from) {
          plan.link_down(u, v, down_from, round);
        }
        down_from = -1;
      } else if (down_from == -1) {
        down_from = round;
      }
    }
    if (down_from != -1) plan.link_down(u, v, down_from, kChurnForever);
  }
  return plan;
}

net::Graph ChurnScript::union_graph(const net::Graph& base) const {
  net::Graph g = base;
  for (const ChurnEvent& e : events_) {
    switch (e.kind) {
      case ChurnKind::kNodeJoin:
        if (e.node >= g.n()) {
          if (e.node != g.n()) {
            throw std::invalid_argument("join event skips node ids");
          }
          if (g.has_positions()) {
            (void)g.add_node(e.pos);
          } else {
            (void)g.add_node();
          }
        }
        for (int w : e.links) g.add_edge(e.node, w);
        break;
      case ChurnKind::kLinkAdd:
        g.add_edge(e.u, e.v);
        break;
      case ChurnKind::kNodeLeave:
      case ChurnKind::kLinkRemove:
        break;  // the fault plan handles absence; the carrier keeps the link
    }
  }
  g.finalize();
  return g;
}

ChurnScript ChurnScript::random(const net::Graph& base, const RandomSpec& spec,
                                std::uint64_t seed) {
  if (spec.rounds < 0) throw std::invalid_argument("rounds must be >= 0");
  if (spec.join_rate < 0 || spec.leave_rate < 0 || spec.link_add_rate < 0 ||
      spec.link_remove_rate < 0) {
    throw std::invalid_argument("churn rates must be >= 0");
  }
  const bool needs_geometry = spec.join_rate > 0 || spec.link_add_rate > 0;
  if (needs_geometry && (!base.has_positions() || spec.range <= 0)) {
    throw std::invalid_argument(
        "joins/link adds need a positioned base graph and a positive range");
  }

  deploy::Rng rng(seed);
  std::vector<geom::Vec2> pos = base.positions();
  std::vector<char> active(static_cast<std::size_t>(base.n()), 1);
  int active_count = base.n();
  // Normalized (u < v) live edge list + membership mirror. The list
  // keeps insertion order so random picks are reproducible.
  std::vector<std::pair<int, int>> edge_list;
  std::set<std::pair<int, int>> edge_set;
  for (int v = 0; v < base.n(); ++v) {
    for (int w : base.neighbors(v)) {
      if (v < w) {
        edge_list.push_back({v, w});
        edge_set.insert({v, w});
      }
    }
  }

  const auto draw_count = [&rng](double rate) {
    int c = static_cast<int>(rate);
    const double frac = rate - c;
    if (frac > 0 && rng.next_double() < frac) ++c;
    return c;
  };
  const auto pick_active = [&]() -> int {
    if (active_count == 0) return -1;
    for (int tries = 0; tries < 64; ++tries) {
      const int v = static_cast<int>(rng.next_below(active.size()));
      if (active[static_cast<std::size_t>(v)]) return v;
    }
    const int start = static_cast<int>(rng.next_below(active.size()));
    const int n = static_cast<int>(active.size());
    for (int i = 0; i < n; ++i) {
      const int v = (start + i) % n;
      if (active[static_cast<std::size_t>(v)]) return v;
    }
    return -1;
  };
  const auto drop_edge = [&](int idx) {
    edge_set.erase(edge_list[static_cast<std::size_t>(idx)]);
    edge_list.erase(edge_list.begin() + idx);
  };

  ChurnScript script;
  for (int round = 0; round < spec.rounds; ++round) {
    for (int i = draw_count(spec.join_rate); i > 0; --i) {
      const int anchor = pick_active();
      if (anchor < 0) break;
      const double ang = rng.uniform(0.0, 2.0 * 3.14159265358979323846);
      const double rad = rng.uniform(0.35, 0.95) * spec.range;
      const geom::Vec2 p =
          pos[static_cast<std::size_t>(anchor)] +
          geom::Vec2{rad * std::cos(ang), rad * std::sin(ang)};
      ChurnEvent e;
      e.round = round;
      e.kind = ChurnKind::kNodeJoin;
      e.node = static_cast<int>(active.size());
      e.pos = p;
      for (int w = 0; w < static_cast<int>(active.size()); ++w) {
        if (active[static_cast<std::size_t>(w)] &&
            geom::dist(p, pos[static_cast<std::size_t>(w)]) <= spec.range) {
          e.links.push_back(w);
        }
      }
      for (int w : e.links) {
        edge_list.push_back(normalized(e.node, w));
        edge_set.insert(normalized(e.node, w));
      }
      pos.push_back(p);
      active.push_back(1);
      ++active_count;
      script.add(std::move(e));
    }
    for (int i = draw_count(spec.leave_rate); i > 0; --i) {
      if (active_count <= std::max(spec.min_active, 3)) break;
      const int victim = pick_active();
      if (victim < 0) break;
      ChurnEvent e;
      e.round = round;
      e.kind = ChurnKind::kNodeLeave;
      e.node = victim;
      script.add(std::move(e));
      active[static_cast<std::size_t>(victim)] = 0;
      --active_count;
      for (int idx = static_cast<int>(edge_list.size()) - 1; idx >= 0; --idx) {
        const auto& [a, b] = edge_list[static_cast<std::size_t>(idx)];
        if (a == victim || b == victim) drop_edge(idx);
      }
    }
    for (int i = draw_count(spec.link_add_rate); i > 0; --i) {
      for (int attempt = 0; attempt < 8; ++attempt) {
        const int u = pick_active();
        if (u < 0) break;
        std::vector<int> candidates;
        for (int w = 0; w < static_cast<int>(active.size()); ++w) {
          if (w == u || !active[static_cast<std::size_t>(w)]) continue;
          if (geom::dist(pos[static_cast<std::size_t>(u)],
                         pos[static_cast<std::size_t>(w)]) >
              spec.link_slack * spec.range) {
            continue;
          }
          if (edge_set.count(normalized(u, w))) continue;
          candidates.push_back(w);
        }
        if (candidates.empty()) continue;
        const int w = candidates[rng.next_below(candidates.size())];
        ChurnEvent e;
        e.round = round;
        e.kind = ChurnKind::kLinkAdd;
        e.u = u;
        e.v = w;
        script.add(std::move(e));
        edge_list.push_back(normalized(u, w));
        edge_set.insert(normalized(u, w));
        break;
      }
    }
    for (int i = draw_count(spec.link_remove_rate); i > 0; --i) {
      if (edge_list.empty()) break;
      const int idx = static_cast<int>(rng.next_below(edge_list.size()));
      const auto [u, v] = edge_list[static_cast<std::size_t>(idx)];
      ChurnEvent e;
      e.round = round;
      e.kind = ChurnKind::kLinkRemove;
      e.u = u;
      e.v = v;
      script.add(std::move(e));
      drop_edge(idx);
    }
  }
  return script;
}

DynamicTopology::DynamicTopology(net::Graph base)
    : g_(std::move(base)), csr_(g_), active_(static_cast<std::size_t>(g_.n()), 1),
      active_count_(g_.n()) {}

DynamicTopology::RoundChanges DynamicTopology::apply_round(
    const ChurnScript& script, int round) {
  RoundChanges out;
  for (const ChurnEvent& e : script.at(round)) apply(e, &out);
  std::sort(out.dirty.begin(), out.dirty.end());
  out.dirty.erase(std::unique(out.dirty.begin(), out.dirty.end()),
                  out.dirty.end());
  return out;
}

void DynamicTopology::apply(const ChurnEvent& e, RoundChanges* out) {
  switch (e.kind) {
    case ChurnKind::kNodeJoin: {
      // Validate everything BEFORE mutating: a rejected join must leave
      // the topology untouched (the maintainer's dirty accounting
      // assumes apply() is all-or-nothing).
      if (e.node > g_.n()) throw std::invalid_argument("join skips node ids");
      if (e.node < g_.n() && is_active(e.node)) {
        throw std::invalid_argument("join of an already-active node");
      }
      for (std::size_t i = 0; i < e.links.size(); ++i) {
        const int w = e.links[i];
        if (w < 0 || w >= g_.n() || w == e.node || !is_active(w)) {
          throw std::invalid_argument("join links to an inactive node");
        }
        for (std::size_t j = 0; j < i; ++j) {
          if (e.links[j] == w) {
            throw std::invalid_argument("join lists a link twice");
          }
        }
      }
      if (e.node == g_.n()) {
        if (g_.has_positions()) {
          (void)g_.add_node(e.pos);
        } else {
          (void)g_.add_node();
        }
        net::GraphDelta grow;
        grow.add_node_count = 1;
        csr_.apply_delta(grow);
        active_.push_back(1);
      } else {
        active_[static_cast<std::size_t>(e.node)] = 1;
      }
      ++active_count_;
      net::GraphDelta links;
      for (int w : e.links) {
        g_.add_edge_unique(e.node, w);
        links.add_edges.push_back({e.node, w});
      }
      csr_.apply_delta(links);
      if (out != nullptr) {
        out->dirty.push_back(e.node);
        out->dirty.insert(out->dirty.end(), e.links.begin(), e.links.end());
      }
      break;
    }
    case ChurnKind::kNodeLeave: {
      if (e.node >= g_.n() || !is_active(e.node)) {
        throw std::invalid_argument("leave of an inactive node");
      }
      const auto row = csr_.neighbors(e.node);
      const std::vector<int> nbrs(row.begin(), row.end());
      net::GraphDelta cut;
      for (int w : nbrs) {
        g_.remove_edge(e.node, w);
        cut.remove_edges.push_back({e.node, w});
      }
      csr_.apply_delta(cut);
      active_[static_cast<std::size_t>(e.node)] = 0;
      --active_count_;
      if (out != nullptr) {
        out->dirty.push_back(e.node);
        out->dirty.insert(out->dirty.end(), nbrs.begin(), nbrs.end());
        out->departed.push_back(e.node);
        for (int w : nbrs) out->removed_edges.push_back({e.node, w});
      }
      break;
    }
    case ChurnKind::kLinkAdd: {
      if (e.u >= g_.n() || e.v >= g_.n() || !is_active(e.u) ||
          !is_active(e.v)) {
        throw std::invalid_argument("link add with an inactive endpoint");
      }
      g_.add_edge_unique(e.u, e.v);
      net::GraphDelta d;
      d.add_edges.push_back({e.u, e.v});
      csr_.apply_delta(d);
      if (out != nullptr) {
        out->dirty.push_back(e.u);
        out->dirty.push_back(e.v);
      }
      break;
    }
    case ChurnKind::kLinkRemove: {
      g_.remove_edge(e.u, e.v);
      net::GraphDelta d;
      d.remove_edges.push_back({e.u, e.v});
      csr_.apply_delta(d);
      if (out != nullptr) {
        out->dirty.push_back(e.u);
        out->dirty.push_back(e.v);
        out->removed_edges.push_back({e.u, e.v});
      }
      break;
    }
  }
  ++version_;
  if (out != nullptr) ++out->events;
}

net::Graph DynamicTopology::active_subgraph(
    std::vector<int>* orig_of_new) const {
  std::vector<char> dead(active_.size());
  for (std::size_t i = 0; i < active_.size(); ++i) dead[i] = active_[i] ? 0 : 1;
  return net::remove_nodes(g_, dead, orig_of_new);
}

}  // namespace skelex::sim
