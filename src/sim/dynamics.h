// skelex/sim/dynamics.h
//
// Event-driven network dynamics: continuous node join/leave and link
// add/remove churn, the regime the paper's one-shot extraction assumes
// away. Two complementary consumers:
//
//   * sim::Engine — ChurnScript::to_fault_plan() compiles a churn
//     timeline onto the existing FaultPlan machinery (join = asleep
//     until the join round, leave = crash-stop, link add/remove = down
//     windows) over the union graph (every node and link that ever
//     exists), so distributed protocols experience churn mid-flood with
//     zero new engine code — and inherit the engine's bit-identical
//     parallel execution.
//   * core::SkeletonMaintainer — DynamicTopology applies the same
//     events to a live Graph + incrementally-maintained CsrGraph
//     (GraphDelta) and reports the dirty seeds each round, which is
//     what the maintainer's dirty-region repair consumes.
//
// Id space is STABLE under churn: a departed node keeps its id and
// becomes an isolated inactive node; joins append fresh ids. Nothing is
// remapped, so incremental repair touches only the neighborhoods that
// actually changed.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "geometry/vec2.h"
#include "net/csr.h"
#include "net/graph.h"
#include "sim/faults.h"

namespace skelex::sim {

// Sentinel "end of time" round for permanent link removals compiled
// into FaultPlan down-windows (intervals are half-open and finite).
inline constexpr int kChurnForever = 1 << 29;

enum class ChurnKind { kNodeJoin, kNodeLeave, kLinkAdd, kLinkRemove };

const char* churn_kind_name(ChurnKind k);

struct ChurnEvent {
  int round = 0;
  ChurnKind kind = ChurnKind::kLinkRemove;
  // kNodeJoin / kNodeLeave: the node. Joins carry the deployment
  // position and the links established on arrival (targets must be
  // active at the join round).
  int node = -1;
  geom::Vec2 pos{};
  std::vector<int> links;
  // kLinkAdd / kLinkRemove: the endpoints.
  int u = -1;
  int v = -1;
};

// An immutable, round-ordered churn timeline. Build one by hand (tests)
// or with random() (soaks, benches); then feed it to a DynamicTopology
// round by round, or compile it for the engine with to_fault_plan() +
// union_graph().
class ChurnScript {
 public:
  // Appends an event; rounds must be non-decreasing (a script is a
  // timeline, not a bag).
  void add(ChurnEvent e);

  const std::vector<ChurnEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }
  // The events scheduled for `round` (possibly empty).
  std::span<const ChurnEvent> at(int round) const;
  // One past the last round with an event (0 for an empty script).
  int horizon() const;

  // Content digest (FNV-1a over all event fields). Recorded in bench
  // JSON so a run is reproducible from the output file alone.
  std::uint64_t digest() const;

  // Compiles the timeline onto FaultPlan semantics for the union graph:
  // joins sleep until their round, leaves crash, and each link's
  // presence timeline becomes down-windows (a link that is absent until
  // round r is down on [0, r); one removed at r is down on
  // [r, kChurnForever) or until its next add).
  FaultPlan to_fault_plan() const;

  // `base` grown by every node this script ever joins and every link it
  // ever adds — the static carrier graph the engine simulates on while
  // the fault plan switches parts of it off and on.
  net::Graph union_graph(const net::Graph& base) const;

  // Parameters for random(). Rates are expected events per round
  // (fractional rates fire probabilistically). Joins and link adds need
  // a positioned base graph and a positive radio range.
  struct RandomSpec {
    int rounds = 100;
    double join_rate = 0.0;
    double leave_rate = 0.0;
    double link_add_rate = 0.0;
    double link_remove_rate = 0.0;
    double range = 0.0;
    // Link adds may connect nodes up to link_slack * range apart
    // (slightly beyond UDG range — in a calibrated UDG every in-range
    // pair is already linked, so strictly-in-range adds could only
    // restore previously removed links).
    double link_slack = 1.25;
    // Leaves stop when the active population would drop below this.
    int min_active = 8;
  };

  // A random but valid timeline over `base`: every event references
  // nodes/links that exist and are active when it fires (the generator
  // simulates the evolving topology as it draws). Deterministic in
  // (base, spec, seed).
  static ChurnScript random(const net::Graph& base, const RandomSpec& spec,
                            std::uint64_t seed);

 private:
  std::vector<ChurnEvent> events_;
};

// A live topology under churn: a Graph and its CsrGraph kept in
// lockstep via in-place mutators + GraphDelta (no rebuilds), plus the
// active mask over the stable id space. apply_round() returns the dirty
// seeds the SkeletonMaintainer's region repair grows from.
class DynamicTopology {
 public:
  explicit DynamicTopology(net::Graph base);

  const net::Graph& graph() const { return g_; }
  const net::CsrGraph& csr() const { return csr_; }
  int n() const { return g_.n(); }
  std::span<const char> active() const { return {active_.data(), active_.size()}; }
  bool is_active(int v) const {
    return active_[static_cast<std::size_t>(v)] != 0;
  }
  int active_count() const { return active_count_; }
  // Bumped once per applied event; lets a consumer detect staleness.
  std::uint64_t version() const { return version_; }

  struct RoundChanges {
    int events = 0;
    // Deduped, sorted seed nodes touched by this round's events (event
    // nodes plus their former/new link partners).
    std::vector<int> dirty;
    // Every link removed this round (explicitly or by a departure) —
    // the maintainer checks these against the served skeleton's edges.
    std::vector<std::pair<int, int>> removed_edges;
    // Nodes that left this round.
    std::vector<int> departed;
  };

  // Applies all of `script`'s events for `round`.
  RoundChanges apply_round(const ChurnScript& script, int round);
  // Applies one event (exposed for tests / custom drivers).
  void apply(const ChurnEvent& e, RoundChanges* out = nullptr);

  // The compacted active-only subgraph (net::remove_nodes of the
  // inactive mask) — the canonical static view for cross-checking
  // maintained results against a from-scratch extraction.
  net::Graph active_subgraph(std::vector<int>* orig_of_new = nullptr) const;

 private:
  net::Graph g_;
  net::CsrGraph csr_;
  std::vector<char> active_;
  int active_count_ = 0;
  std::uint64_t version_ = 0;
};

}  // namespace skelex::sim
