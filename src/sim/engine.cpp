#include "sim/engine.h"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>
#include <tuple>
#include <utility>

#include "deploy/rng.h"
#include "exec/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace skelex::sim {

namespace {
// Signed fields are biased so unsigned key comparisons match signed
// field order.
constexpr std::uint32_t bias(int x) {
  return static_cast<std::uint32_t>(x) ^ 0x80000000u;
}
// The index half-word tags which inbox list a DeliveryKey points into.
constexpr std::uint32_t kSingleTag = 0x80000000u;
// Compact the pending ring once this many drained buckets accumulate at
// its front; std::rotate recycles them (and their arena capacities) to
// the tail. Small enough to bound the ring, large enough that the
// O(size) pointer-move compaction is paid once per ~32 rounds.
constexpr std::size_t kCompactEvery = 32;
}  // namespace

int default_engine_threads() {
  static const int cached = [] {
    if (const char* env = std::getenv("SKELEX_ENGINE_THREADS")) {
      char* end = nullptr;
      const long v = std::strtol(env, &end, 10);
      if (end != env && *end == '\0' && v >= 1 && v <= 1024) {
        return static_cast<int>(v);
      }
    }
    return 1;
  }();
  return cached;
}

// Concrete context bound to the engine's radio. One Ctx serves a whole
// delivery chunk: set_node() rebinds it per node and resets the per-node
// emission counter that keys the counter-based RNG draws.
class Engine::Ctx final : public NodeContext {
 public:
  Ctx(Engine& e, EmitSink& s) : engine_(e), sink_(s) {}

  void set_node(int v) {
    node_ = v;
    sink_.node = v;
    sink_.emit_seq = 0;
  }

  int node() const override { return node_; }
  int round() const override { return engine_.now_; }
  std::span<const int> neighbors() const override {
    return engine_.graph_.neighbors(node_);
  }
  void broadcast(Message m) override { engine_.do_broadcast(sink_, node_, m); }
  void send(int to, Message m) override {
    engine_.do_send(sink_, node_, to, m);
  }
  void schedule(int delay_rounds, Message m) override {
    engine_.do_schedule(sink_, node_, delay_rounds, m);
  }
  void note_retransmission() override { ++sink_.retransmissions; }

 private:
  Engine& engine_;
  EmitSink& sink_;
  int node_ = -1;
};

Engine::Engine(const net::Graph& graph)
    : graph_(graph), threads_(default_engine_threads()) {}

Engine::~Engine() = default;

void Engine::set_jitter(int max_extra_rounds, std::uint64_t seed) {
  if (max_extra_rounds < 0) {
    throw std::invalid_argument("jitter must be >= 0");
  }
  max_jitter_ = max_extra_rounds;
  jitter_seed_ = seed;
}

void Engine::set_loss(double p, std::uint64_t seed) {
  if (p < 0.0 || p >= 1.0) {
    throw std::invalid_argument("loss probability must be in [0, 1)");
  }
  loss_ = p;
  loss_seed_ = seed;
}

void Engine::set_faults(FaultPlan plan) {
  faults_ = std::move(plan);
  have_faults_ = !faults_.empty();
}

void Engine::set_threads(int threads) {
  if (threads < 0) throw std::invalid_argument("threads must be >= 0");
  const int t =
      threads == 0 ? default_engine_threads() : std::min(threads, 1024);
  if (t != threads_) pool_.reset();  // re-created lazily at the new size
  threads_ = t;
}

// Counter-based draws: the key packs (lifetime round, sender) and
// (emission index, receiver + 1); receiver slot 0 is the per-frame
// draw (jitter is drawn once per transmission — all listeners hear the
// same delayed frame). Being pure functions of the key, the draws are
// identical whatever order — or thread — the emissions happen in, which
// is what licenses parallel delivery chunks. A lossless, jitter-free
// run performs no draws at all.
bool Engine::dropped(int from, int to, std::uint32_t emit) const {
  if (loss_ == 0.0) return false;
  const std::uint64_t k0 =
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(fault_clock()))
       << 32) |
      static_cast<std::uint32_t>(from);
  const std::uint64_t k1 = (static_cast<std::uint64_t>(emit) << 32) |
                           static_cast<std::uint32_t>(to + 1);
  return deploy::counter_uniform(loss_seed_, k0, k1) < loss_;
}

int Engine::delivery_round(int from, std::uint32_t emit) const {
  if (max_jitter_ == 0) return 0;
  const std::uint64_t k0 =
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(fault_clock()))
       << 32) |
      static_cast<std::uint32_t>(from);
  const std::uint64_t k1 = static_cast<std::uint64_t>(emit) << 32;
  return static_cast<int>(deploy::counter_hash(jitter_seed_, k0, k1) %
                          static_cast<std::uint64_t>(max_jitter_ + 1));
}

Engine::Bucket& Engine::bucket(int extra) {
  const std::size_t i = head_ + static_cast<std::size_t>(extra);
  while (pending_.size() <= i) pending_.push_back({});
  return pending_[i];
}

Engine::Bucket& Engine::sink_bucket(EmitSink& s, int extra) {
  if (s.staged == nullptr) return bucket(extra);  // serial: straight to ring
  if (static_cast<int>(s.staged->size()) <= extra) {
    s.staged->resize(static_cast<std::size_t>(extra) + 1);
  }
  if (extra > s.staged_hi) s.staged_hi = extra;
  return (*s.staged)[static_cast<std::size_t>(extra)];
}

void Engine::pop_front(Bucket& inbox) {
  inbox.clear();  // keeps capacity; swapped into the drained bucket below
  if (head_ < pending_.size()) {
    inbox.singles.swap(pending_[head_].singles);
    inbox.broadcasts.swap(pending_[head_].broadcasts);
    ++head_;
    if (head_ >= kCompactEvery) {
      std::rotate(pending_.begin(),
                  pending_.begin() + static_cast<std::ptrdiff_t>(head_),
                  pending_.end());
      head_ = 0;
    }
  }
  inflight_ -= static_cast<std::int64_t>(inbox.entries());
}

void Engine::absorb(EmitSink& s) {
  current_.transmissions += s.transmissions;
  current_.receptions += s.receptions;
  current_.faults_tx_suppressed += s.faults_tx_suppressed;
  current_.faults_rx_crashed += s.faults_rx_crashed;
  current_.faults_rx_sleeping += s.faults_rx_sleeping;
  current_.faults_rx_linkdown += s.faults_rx_linkdown;
  round_retx_ += s.retransmissions;
  inflight_ += s.queued;
  s.queued = 0;
  s.transmissions = 0;
  s.receptions = 0;
  s.faults_tx_suppressed = 0;
  s.faults_rx_crashed = 0;
  s.faults_rx_sleeping = 0;
  s.faults_rx_linkdown = 0;
  s.retransmissions = 0;
  s.staged_hi = -1;
  s.node = -1;
  s.emit_seq = 0;
}

// Canonical merge: chunk-major, bucket-minor. Within one future-round
// bucket the serial engine appends envelopes in ascending node order;
// chunks are contiguous ascending node ranges, so appending chunk 0's
// staging bucket, then chunk 1's, ... reproduces the serial sequence
// exactly — for any chunk count. Counters are absorbed in the same
// fixed order.
void Engine::merge_chunks(int used_chunks) {
  for (int c = 0; c < used_chunks; ++c) {
    Chunk& ch = chunks_[static_cast<std::size_t>(c)];
    for (int extra = 0; extra <= ch.sink.staged_hi; ++extra) {
      Bucket& src = ch.staged[static_cast<std::size_t>(extra)];
      if (src.empty()) continue;
      Bucket& dst = bucket(extra);
      dst.singles.insert(dst.singles.end(), src.singles.begin(),
                         src.singles.end());
      dst.broadcasts.insert(dst.broadcasts.end(), src.broadcasts.begin(),
                            src.broadcasts.end());
      src.clear();
    }
    absorb(ch.sink);
  }
}

void Engine::do_broadcast(EmitSink& s, int from, Message m) {
  const std::uint32_t emit = s.emit_seq++;
  if (have_faults_) {
    const int r = fault_clock();
    if (faults_.is_crashed(from, r) || faults_.is_asleep(from, r)) {
      ++s.faults_tx_suppressed;
      return;
    }
  }
  m.sender = from;
  ++s.transmissions;
  // One transmission: all listeners hear the same (possibly delayed)
  // radio frame, so the delay is drawn once per transmission.
  const int extra = delivery_round(from, emit);
  Bucket& out = sink_bucket(s, extra);
  if (!have_faults_ && loss_ == 0.0) {
    // Reliable radio: queue the frame once; it fans out to the sender's
    // neighbors when its round is processed.
    s.receptions += graph_.degree(from);
    out.broadcasts.push_back(m);
    ++s.queued;
    return;
  }
  const std::span<const int> nbrs = graph_.neighbors(from);
  // Lossy radio: every receiver's drop draw shares the (round, sender)
  // key half, so hoist that prefix once and batch the per-receiver tail
  // mixes over the neighbor array. Values are bit-equal to the scalar
  // dropped() draws; drawing for a receiver later filtered by a link
  // fault is harmless (draws are pure, keyed, and order-independent).
  const double* uni = nullptr;
  if (loss_ > 0.0 && !nbrs.empty()) {
    s.loss_scratch.resize(nbrs.size());
    const std::uint64_t k0 =
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(fault_clock()))
         << 32) |
        static_cast<std::uint32_t>(from);
    deploy::counter_uniform_batch(deploy::counter_prefix(loss_seed_, k0),
                                  static_cast<std::uint64_t>(emit) << 32,
                                  nbrs.data(), static_cast<int>(nbrs.size()),
                                  s.loss_scratch.data());
    uni = s.loss_scratch.data();
  }
  for (std::size_t i = 0; i < nbrs.size(); ++i) {
    const int w = nbrs[i];
    ++s.receptions;
    if (have_faults_ && !faults_.link_up(from, w, fault_clock())) {
      ++s.faults_rx_linkdown;
      continue;
    }
    if (uni != nullptr && uni[i] < loss_) continue;
    out.singles.push_back({w, false, m});
    ++s.queued;
  }
}

void Engine::do_send(EmitSink& s, int from, int to, Message m) {
  if (to < 0 || to >= graph_.n()) throw std::out_of_range("send target");
  const std::uint32_t emit = s.emit_seq++;
  if (have_faults_) {
    const int r = fault_clock();
    if (faults_.is_crashed(from, r) || faults_.is_asleep(from, r)) {
      ++s.faults_tx_suppressed;
      return;
    }
  }
  m.sender = from;
  ++s.transmissions;
  ++s.receptions;
  if (have_faults_ && !faults_.link_up(from, to, fault_clock())) {
    ++s.faults_rx_linkdown;
    return;
  }
  if (dropped(from, to, emit)) return;
  sink_bucket(s, delivery_round(from, emit)).singles.push_back({to, false, m});
  ++s.queued;
}

void Engine::do_schedule(EmitSink& s, int from, int delay_rounds, Message m) {
  if (delay_rounds < 1) {
    throw std::invalid_argument("schedule delay must be >= 1 round");
  }
  m.sender = from;
  // Local timer: no radio cost, no loss/jitter, delivered only to self.
  sink_bucket(s, delay_rounds - 1).singles.push_back({from, true, m});
  ++s.queued;
}

// Delivers the inbox slices of nodes [vbegin, vend): sorts each node's
// slice into canonical order, applies receive-side fault filtering, and
// invokes the protocol. All emissions and accounting go through `sink`,
// so concurrent calls on disjoint node ranges share no mutable state
// (given Protocol::parallel_safe handlers).
void Engine::deliver_range(Protocol& protocol, const Bucket& inbox,
                           std::vector<DeliveryKey>& keys,
                           const std::vector<int>& slice_end, EmitSink& sink,
                           int vbegin, int vend) {
  const auto msg_of = [&](const DeliveryKey& k) -> const Message& {
    return (k.idx & kSingleTag)
               ? inbox.singles[static_cast<std::size_t>(k.idx & ~kSingleTag)]
                     .msg
               : inbox.broadcasts[static_cast<std::size_t>(k.idx)];
  };
  const auto slice_less = [&](const DeliveryKey& a, const DeliveryKey& b) {
    if (a.k1 != b.k1) return a.k1 < b.k1;
    if (a.k2 != b.k2) return a.k2 < b.k2;
    if (a.k3 != b.k3) return a.k3 < b.k3;
    const Message& ma = msg_of(a);
    const Message& mb = msg_of(b);
    return std::tie(ma.payload, ma.seq, ma.aux) <
           std::tie(mb.payload, mb.seq, mb.aux);
  };
  Ctx ctx(*this, sink);
  for (int v = vbegin; v < vend; ++v) {
    const auto b = keys.begin() + slice_end[static_cast<std::size_t>(v)];
    const auto e = keys.begin() + slice_end[static_cast<std::size_t>(v) + 1];
    if (e - b > 1) std::sort(b, e, slice_less);
    ctx.set_node(v);
    for (auto it = b; it != e; ++it) {
      const bool internal = (it->k1 >> 32) != 0;
      if (have_faults_) {
        const int r = fault_clock();
        if (faults_.is_crashed(v, r)) {
          if (!internal) ++sink.faults_rx_crashed;
          continue;
        }
        if (!internal && faults_.is_asleep(v, r)) {
          ++sink.faults_rx_sleeping;
          continue;
        }
      }
      protocol.on_message(ctx, msg_of(*it));
    }
  }
}

RunStats Engine::run(Protocol& protocol, int max_rounds) {
  obs::ScopedSpan span("engine.run", "engine");
  fault_base_ = total_.rounds;  // fault clock continues across runs
  current_ = RunStats{};
  for (Bucket& b : pending_) b.clear();  // arenas persist across runs
  head_ = 0;
  inflight_ = 0;
  round_retx_ = 0;
  running_ = true;
  const int n = graph_.n();

  // Execution shape for this run: a protocol that opts out of the
  // handler-isolation contract runs serially whatever the knob says.
  const bool parallel = threads_ > 1 && n > 1 && protocol.parallel_safe();
  const int chunk_count = parallel ? std::min(threads_, n) : 1;
  if (parallel && pool_ == nullptr) {
    pool_ = std::make_unique<exec::ThreadPool>(threads_);
  }
  if (static_cast<int>(chunks_.size()) < chunk_count) {
    chunks_.resize(static_cast<std::size_t>(chunk_count));
  }
  for (Chunk& ch : chunks_) {
    for (Bucket& b : ch.staged) b.clear();  // defensive: a prior run threw
    ch.sink.reset();  // keeps the loss-draw scratch arena warm
  }
  for (int c = 0; c < chunk_count; ++c) {
    Chunk& ch = chunks_[static_cast<std::size_t>(c)];
    ch.sink.staged = parallel ? &ch.staged : nullptr;
  }
  span.arg("threads", parallel ? threads_ : 1);

  // Round-series cursor: one sample per round, written at the round
  // boundary from the totals' deltas — the per-message paths stay
  // untouched whether telemetry is on or off. Chunk counters are always
  // absorbed before sampling, so the deltas see complete rounds.
  std::int64_t series_tx = 0, series_rx = 0, series_drops = 0;
  const auto sample_round = [&](int round) {
    obs::RoundSample& s = current_.series.ensure(round);
    s.transmissions += current_.transmissions - series_tx;
    s.receptions += current_.receptions - series_rx;
    s.fault_drops += current_.total_fault_drops() - series_drops;
    series_tx = current_.transmissions;
    series_rx = current_.receptions;
    series_drops = current_.total_fault_drops();
    s.retransmissions += round_retx_;
    round_retx_ = 0;
    s.queue_depth = inflight_;
  };

  now_ = 0;
  if (!parallel) {
    Ctx ctx(*this, chunks_[0].sink);
    for (int v = 0; v < n; ++v) {
      if (have_faults_ && faults_.is_crashed(v, fault_clock())) continue;
      ctx.set_node(v);
      protocol.on_start(ctx);
    }
    absorb(chunks_[0].sink);
  } else {
    pool_->parallel_chunks(n, chunk_count, [&](int c, int b, int e) {
      Ctx ctx(*this, chunks_[static_cast<std::size_t>(c)].sink);
      for (int v = b; v < e; ++v) {
        if (have_faults_ && faults_.is_crashed(v, fault_clock())) continue;
        ctx.set_node(v);
        protocol.on_start(ctx);
      }
    });
    merge_chunks(chunk_count);
  }
  if (record_series_) sample_round(0);

  // Deterministic delivery: within a round each node processes its
  // messages in a canonical order, independent of transmission order.
  // This makes protocol results reproducible and lets the distributed
  // stage implementations match their centralized equivalents exactly.
  // Radio frames sort before self-timers so that e.g. an ACK arriving
  // in the same round as a retransmission timer cancels it.
  //
  // Sorting is two-level: a counting pass groups the round's traffic
  // by destination (expanding each queued broadcast to its sender's
  // neighbors), then each destination's slice is sorted on the
  // remaining key fields — the same total order as one big sort of
  // per-reception envelopes on the full 9-field key. Delivery order is
  // decided on compact precomputed keys (biased so the unsigned
  // comparisons match signed field order), not on the fat envelopes
  // themselves: the per-slice sorts then move 24-byte records and
  // almost always decide on the first word.
  Bucket& inbox = inbox_;
  std::vector<DeliveryKey>& keys = keys_;
  std::vector<int>& slice_at = slice_at_;
  std::vector<int>& slice_end = slice_end_;
  while (inflight_ > 0 && current_.rounds < max_rounds) {
    ++current_.rounds;
    now_ = current_.rounds;
    pop_front(inbox);
    slice_end.assign(static_cast<std::size_t>(n) + 1, 0);
    for (const Envelope& e : inbox.singles) {
      ++slice_end[static_cast<std::size_t>(e.to) + 1];
    }
    for (const Message& m : inbox.broadcasts) {
      for (int w : graph_.neighbors(m.sender)) {
        ++slice_end[static_cast<std::size_t>(w) + 1];
      }
    }
    for (int v = 0; v < n; ++v) {
      slice_end[static_cast<std::size_t>(v) + 1] +=
          slice_end[static_cast<std::size_t>(v)];
    }
    slice_at = slice_end;
    keys.resize(
        static_cast<std::size_t>(slice_end[static_cast<std::size_t>(n)]));
    for (std::size_t i = 0; i < inbox.singles.size(); ++i) {
      const Envelope& e = inbox.singles[i];
      DeliveryKey& k = keys[static_cast<std::size_t>(
          slice_at[static_cast<std::size_t>(e.to)]++)];
      k.k1 = (static_cast<std::uint64_t>(e.internal) << 32) | bias(e.msg.kind);
      k.k2 = (static_cast<std::uint64_t>(bias(e.msg.hops)) << 32) |
             bias(e.msg.origin);
      k.k3 = bias(e.msg.sender);
      k.idx = static_cast<std::uint32_t>(i) | kSingleTag;
    }
    for (std::size_t j = 0; j < inbox.broadcasts.size(); ++j) {
      const Message& m = inbox.broadcasts[j];
      DeliveryKey k;
      k.k1 = bias(m.kind);
      k.k2 = (static_cast<std::uint64_t>(bias(m.hops)) << 32) | bias(m.origin);
      k.k3 = bias(m.sender);
      k.idx = static_cast<std::uint32_t>(j);
      for (int w : graph_.neighbors(m.sender)) {
        keys[static_cast<std::size_t>(
            slice_at[static_cast<std::size_t>(w)]++)] = k;
      }
    }
    if (!parallel) {
      deliver_range(protocol, inbox, keys, slice_end, chunks_[0].sink, 0, n);
      absorb(chunks_[0].sink);
    } else {
      // Chunks sort and deliver disjoint node slices; every emission is
      // staged chunk-locally, so the shared ring is untouched until the
      // serial merge below.
      pool_->parallel_chunks(n, chunk_count, [&](int c, int b, int e) {
        deliver_range(protocol, inbox, keys, slice_end,
                      chunks_[static_cast<std::size_t>(c)].sink, b, e);
      });
      merge_chunks(chunk_count);
    }
    if (record_series_) sample_round(current_.rounds);
  }
  if (inflight_ > 0) {
    // Round cap hit: flag it and discard the in-flight messages rather
    // than throwing — under fault injection a non-quiescent run is an
    // expected outcome the caller inspects, not a programming error.
    current_.hit_round_cap = true;
    for (Bucket& b : pending_) b.clear();
    head_ = 0;
    inflight_ = 0;
  }
  running_ = false;
  total_ += current_;

  // Deterministic per-run accounting (no wall times: snapshots must be
  // byte-identical at any thread count). Handles are function-local
  // statics so the registry lock is paid once per process, not per run.
  auto& reg = obs::Registry::global();
  static const obs::Counter runs = reg.counter("sim_engine_runs");
  static const obs::Counter rounds = reg.counter("sim_engine_rounds");
  static const obs::Counter tx = reg.counter("sim_engine_transmissions");
  static const obs::Counter rx = reg.counter("sim_engine_receptions");
  static const obs::Counter drops = reg.counter("sim_engine_fault_drops");
  static const obs::Counter capped = reg.counter("sim_engine_capped_runs");
  static const obs::Histogram rounds_hist = reg.histogram(
      "sim_engine_rounds_per_run", {4, 8, 16, 32, 64, 128, 256, 512});
  runs.inc();
  rounds.inc(current_.rounds);
  tx.inc(current_.transmissions);
  rx.inc(current_.receptions);
  drops.inc(current_.total_fault_drops());
  if (current_.hit_round_cap) capped.inc();
  rounds_hist.observe(static_cast<double>(current_.rounds));

  span.arg("rounds", current_.rounds);
  span.arg("transmissions", current_.transmissions);
  span.arg("receptions", current_.receptions);
  return current_;
}

}  // namespace skelex::sim
