#include "sim/engine.h"

#include <algorithm>
#include <stdexcept>
#include <tuple>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace skelex::sim {

// Concrete context bound to the engine's radio.
class Engine::Ctx final : public NodeContext {
 public:
  Ctx(Engine& e, int node, int round) : engine_(e), node_(node), round_(round) {}

  int node() const override { return node_; }
  int round() const override { return round_; }
  std::span<const int> neighbors() const override {
    return engine_.graph_.neighbors(node_);
  }
  void broadcast(Message m) override { engine_.do_broadcast(node_, m); }
  void send(int to, Message m) override { engine_.do_send(node_, to, m); }
  void schedule(int delay_rounds, Message m) override {
    engine_.do_schedule(node_, delay_rounds, m);
  }

 private:
  Engine& engine_;
  int node_;
  int round_;
};

Engine::Engine(const net::Graph& graph) : graph_(graph) {}

void Engine::set_jitter(int max_extra_rounds, std::uint64_t seed) {
  if (max_extra_rounds < 0) {
    throw std::invalid_argument("jitter must be >= 0");
  }
  max_jitter_ = max_extra_rounds;
  jitter_state_ = seed | 1;  // splitmix needs nonzero progression anyway
}

void Engine::set_loss(double p, std::uint64_t seed) {
  if (p < 0.0 || p >= 1.0) {
    throw std::invalid_argument("loss probability must be in [0, 1)");
  }
  loss_ = p;
  loss_state_ = seed | 1;
}

void Engine::set_faults(FaultPlan plan) {
  faults_ = std::move(plan);
  have_faults_ = !faults_.empty();
}

bool Engine::dropped() {
  if (loss_ == 0.0) return false;
  loss_state_ += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = loss_state_;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return static_cast<double>(z >> 11) * 0x1.0p-53 < loss_;
}

int Engine::delivery_round() {
  // Deliveries land 1..(1 + max_jitter_) rounds ahead; splitmix64 keeps
  // the sequence deterministic for a given seed.
  if (max_jitter_ == 0) return 0;
  jitter_state_ += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = jitter_state_;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return static_cast<int>(z % static_cast<std::uint64_t>(max_jitter_ + 1));
}

Engine::Bucket& Engine::bucket(int extra) {
  while (static_cast<int>(pending_.size()) <= extra) pending_.push_back({});
  return pending_[static_cast<std::size_t>(extra)];
}

void Engine::do_broadcast(int from, Message m) {
  if (have_faults_) {
    const int r = fault_clock();
    if (faults_.is_crashed(from, r) || faults_.is_asleep(from, r)) {
      ++current_.faults_tx_suppressed;
      return;
    }
  }
  m.sender = from;
  ++current_.transmissions;
  // One transmission: all listeners hear the same (possibly delayed)
  // radio frame, so the delay is drawn once per transmission.
  const int extra = delivery_round();
  Bucket& out = bucket(extra);
  if (!have_faults_ && loss_ == 0.0) {
    // Reliable radio: queue the frame once; it fans out to the sender's
    // neighbors when its round is processed.
    current_.receptions += graph_.degree(from);
    out.broadcasts.push_back(m);
    return;
  }
  for (int w : graph_.neighbors(from)) {
    ++current_.receptions;
    if (have_faults_ && !faults_.link_up(from, w, fault_clock())) {
      ++current_.faults_rx_linkdown;
      continue;
    }
    if (dropped()) continue;
    out.singles.push_back({w, false, m});
  }
}

void Engine::do_send(int from, int to, Message m) {
  if (to < 0 || to >= graph_.n()) throw std::out_of_range("send target");
  if (have_faults_) {
    const int r = fault_clock();
    if (faults_.is_crashed(from, r) || faults_.is_asleep(from, r)) {
      ++current_.faults_tx_suppressed;
      return;
    }
  }
  m.sender = from;
  ++current_.transmissions;
  ++current_.receptions;
  if (have_faults_ && !faults_.link_up(from, to, fault_clock())) {
    ++current_.faults_rx_linkdown;
    return;
  }
  if (dropped()) return;
  bucket(delivery_round()).singles.push_back({to, false, m});
}

void Engine::do_schedule(int from, int delay_rounds, Message m) {
  if (delay_rounds < 1) {
    throw std::invalid_argument("schedule delay must be >= 1 round");
  }
  m.sender = from;
  // Local timer: no radio cost, no loss/jitter, delivered only to self.
  bucket(delay_rounds - 1).singles.push_back({from, true, m});
}

RunStats Engine::run(Protocol& protocol, int max_rounds) {
  obs::ScopedSpan span("engine.run", "engine");
  fault_base_ = total_.rounds;  // fault clock continues across runs
  current_ = RunStats{};
  pending_.clear();
  running_ = true;

  // Round-series cursor: one sample per round, written at the round
  // boundary from the totals' deltas — the per-message paths stay
  // untouched whether telemetry is on or off.
  std::int64_t series_tx = 0, series_rx = 0, series_drops = 0;
  const auto sample_round = [&](int round) {
    obs::RoundSample& s = current_.series.ensure(round);
    s.transmissions += current_.transmissions - series_tx;
    s.receptions += current_.receptions - series_rx;
    s.fault_drops += current_.total_fault_drops() - series_drops;
    series_tx = current_.transmissions;
    series_rx = current_.receptions;
    series_drops = current_.total_fault_drops();
    std::int64_t depth = 0;
    for (const Bucket& b : pending_) {
      depth += static_cast<std::int64_t>(b.singles.size()) +
               static_cast<std::int64_t>(b.broadcasts.size());
    }
    s.queue_depth = depth;
  };

  now_ = 0;
  for (int v = 0; v < graph_.n(); ++v) {
    if (have_faults_ && faults_.is_crashed(v, fault_clock())) continue;
    Ctx ctx(*this, v, 0);
    protocol.on_start(ctx);
  }
  if (record_series_) sample_round(0);

  // Delivery order is decided on compact precomputed keys (biased so the
  // unsigned comparisons match signed field order), not on the fat
  // envelopes themselves: the per-slice sorts then move 24-byte records
  // and almost always decide on the first word.
  struct DeliveryKey {
    std::uint64_t k1;   // internal | kind
    std::uint64_t k2;   // hops | origin
    std::uint32_t k3;   // sender
    std::uint32_t idx;  // position in the round's inbox
  };
  const auto bias = [](int x) {
    return static_cast<std::uint32_t>(x) ^ 0x80000000u;
  };
  // The index half-word tags which inbox list a key points into.
  constexpr std::uint32_t kSingleTag = 0x80000000u;
  Bucket inbox;
  std::vector<DeliveryKey> keys;
  std::vector<int> slice_at(static_cast<std::size_t>(graph_.n()) + 1, 0);
  std::vector<int> slice_end(static_cast<std::size_t>(graph_.n()) + 1, 0);
  const auto has_pending = [&] {
    for (const auto& b : pending_) {
      if (!b.empty()) return true;
    }
    return false;
  };
  while (has_pending() && current_.rounds < max_rounds) {
    ++current_.rounds;
    now_ = current_.rounds;
    inbox.singles.clear();
    inbox.broadcasts.clear();
    if (!pending_.empty()) {
      inbox.singles.swap(pending_.front().singles);
      inbox.broadcasts.swap(pending_.front().broadcasts);
      pending_.erase(pending_.begin());
    }
    // Deterministic delivery: within a round each node processes its
    // messages in a canonical order, independent of transmission order.
    // This makes protocol results reproducible and lets the distributed
    // stage implementations match their centralized equivalents exactly.
    // Radio frames sort before self-timers so that e.g. an ACK arriving
    // in the same round as a retransmission timer cancels it.
    //
    // Sorting is two-level: a counting pass groups the round's traffic
    // by destination (expanding each queued broadcast to its sender's
    // neighbors), then each destination's slice is sorted on the
    // remaining key fields — the same total order as one big sort of
    // per-reception envelopes on the full 9-field key.
    slice_end.assign(static_cast<std::size_t>(graph_.n()) + 1, 0);
    for (const Envelope& e : inbox.singles) {
      ++slice_end[static_cast<std::size_t>(e.to) + 1];
    }
    for (const Message& m : inbox.broadcasts) {
      for (int w : graph_.neighbors(m.sender)) {
        ++slice_end[static_cast<std::size_t>(w) + 1];
      }
    }
    for (int v = 0; v < graph_.n(); ++v) {
      slice_end[static_cast<std::size_t>(v) + 1] +=
          slice_end[static_cast<std::size_t>(v)];
    }
    slice_at = slice_end;
    keys.resize(
        static_cast<std::size_t>(slice_end[static_cast<std::size_t>(graph_.n())]));
    for (std::size_t i = 0; i < inbox.singles.size(); ++i) {
      const Envelope& e = inbox.singles[i];
      DeliveryKey& k = keys[static_cast<std::size_t>(
          slice_at[static_cast<std::size_t>(e.to)]++)];
      k.k1 = (static_cast<std::uint64_t>(e.internal) << 32) | bias(e.msg.kind);
      k.k2 = (static_cast<std::uint64_t>(bias(e.msg.hops)) << 32) |
             bias(e.msg.origin);
      k.k3 = bias(e.msg.sender);
      k.idx = static_cast<std::uint32_t>(i) | kSingleTag;
    }
    for (std::size_t j = 0; j < inbox.broadcasts.size(); ++j) {
      const Message& m = inbox.broadcasts[j];
      DeliveryKey k;
      k.k1 = bias(m.kind);
      k.k2 = (static_cast<std::uint64_t>(bias(m.hops)) << 32) | bias(m.origin);
      k.k3 = bias(m.sender);
      k.idx = static_cast<std::uint32_t>(j);
      for (int w : graph_.neighbors(m.sender)) {
        keys[static_cast<std::size_t>(
            slice_at[static_cast<std::size_t>(w)]++)] = k;
      }
    }
    const auto msg_of = [&](const DeliveryKey& k) -> const Message& {
      return (k.idx & kSingleTag)
                 ? inbox.singles[static_cast<std::size_t>(k.idx & ~kSingleTag)]
                       .msg
                 : inbox.broadcasts[static_cast<std::size_t>(k.idx)];
    };
    const auto slice_less = [&](const DeliveryKey& a, const DeliveryKey& b) {
      if (a.k1 != b.k1) return a.k1 < b.k1;
      if (a.k2 != b.k2) return a.k2 < b.k2;
      if (a.k3 != b.k3) return a.k3 < b.k3;
      const Message& ma = msg_of(a);
      const Message& mb = msg_of(b);
      return std::tie(ma.payload, ma.seq, ma.aux) <
             std::tie(mb.payload, mb.seq, mb.aux);
    };
    for (int v = 0; v < graph_.n(); ++v) {
      const auto b = keys.begin() + slice_end[static_cast<std::size_t>(v)];
      const auto e = keys.begin() + slice_end[static_cast<std::size_t>(v) + 1];
      if (e - b > 1) std::sort(b, e, slice_less);
      for (auto it = b; it != e; ++it) {
        const bool internal = (it->k1 >> 32) != 0;
        if (have_faults_) {
          const int r = fault_clock();
          if (faults_.is_crashed(v, r)) {
            if (!internal) ++current_.faults_rx_crashed;
            continue;
          }
          if (!internal && faults_.is_asleep(v, r)) {
            ++current_.faults_rx_sleeping;
            continue;
          }
        }
        Ctx ctx(*this, v, current_.rounds);
        protocol.on_message(ctx, msg_of(*it));
      }
    }
    if (record_series_) sample_round(current_.rounds);
  }
  if (has_pending()) {
    // Round cap hit: flag it and discard the in-flight messages rather
    // than throwing — under fault injection a non-quiescent run is an
    // expected outcome the caller inspects, not a programming error.
    current_.hit_round_cap = true;
    pending_.clear();
  }
  running_ = false;
  total_ += current_;

  // Deterministic per-run accounting (no wall times: snapshots must be
  // byte-identical at any thread count). Handles are function-local
  // statics so the registry lock is paid once per process, not per run.
  auto& reg = obs::Registry::global();
  static const obs::Counter runs = reg.counter("sim_engine_runs");
  static const obs::Counter rounds = reg.counter("sim_engine_rounds");
  static const obs::Counter tx = reg.counter("sim_engine_transmissions");
  static const obs::Counter rx = reg.counter("sim_engine_receptions");
  static const obs::Counter drops = reg.counter("sim_engine_fault_drops");
  static const obs::Counter capped = reg.counter("sim_engine_capped_runs");
  static const obs::Histogram rounds_hist = reg.histogram(
      "sim_engine_rounds_per_run", {4, 8, 16, 32, 64, 128, 256, 512});
  runs.inc();
  rounds.inc(current_.rounds);
  tx.inc(current_.transmissions);
  rx.inc(current_.receptions);
  drops.inc(current_.total_fault_drops());
  if (current_.hit_round_cap) capped.inc();
  rounds_hist.observe(static_cast<double>(current_.rounds));

  span.arg("rounds", current_.rounds);
  span.arg("transmissions", current_.transmissions);
  span.arg("receptions", current_.receptions);
  return current_;
}

}  // namespace skelex::sim
