#include "sim/engine.h"

#include <algorithm>
#include <stdexcept>
#include <tuple>
#include <utility>

namespace skelex::sim {

std::span<const int> NodeContext::neighbors() const {
  return engine_.graph_.neighbors(node_);
}

void NodeContext::broadcast(Message m) { engine_.do_broadcast(node_, m); }

void NodeContext::send(int to, Message m) { engine_.do_send(node_, to, m); }

Engine::Engine(const net::Graph& graph) : graph_(graph) {}

void Engine::set_jitter(int max_extra_rounds, std::uint64_t seed) {
  if (max_extra_rounds < 0) {
    throw std::invalid_argument("jitter must be >= 0");
  }
  max_jitter_ = max_extra_rounds;
  jitter_state_ = seed | 1;  // splitmix needs nonzero progression anyway
}

void Engine::set_loss(double p, std::uint64_t seed) {
  if (p < 0.0 || p >= 1.0) {
    throw std::invalid_argument("loss probability must be in [0, 1)");
  }
  loss_ = p;
  loss_state_ = seed | 1;
}

bool Engine::dropped() {
  if (loss_ == 0.0) return false;
  loss_state_ += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = loss_state_;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return static_cast<double>(z >> 11) * 0x1.0p-53 < loss_;
}

int Engine::delivery_round() {
  // Deliveries land 1..(1 + max_jitter_) rounds ahead; splitmix64 keeps
  // the sequence deterministic for a given seed.
  if (max_jitter_ == 0) return 0;
  jitter_state_ += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = jitter_state_;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return static_cast<int>(z % static_cast<std::uint64_t>(max_jitter_ + 1));
}

std::vector<Engine::Envelope>& Engine::bucket(int extra) {
  while (static_cast<int>(pending_.size()) <= extra) pending_.push_back({});
  return pending_[static_cast<std::size_t>(extra)];
}

void Engine::do_broadcast(int from, Message m) {
  m.sender = from;
  ++current_.transmissions;
  // One transmission: all listeners hear the same (possibly delayed)
  // radio frame, so the delay is drawn once per transmission.
  const int extra = delivery_round();
  auto& out = bucket(extra);
  for (int w : graph_.neighbors(from)) {
    ++current_.receptions;
    if (dropped()) continue;
    out.push_back({w, m});
  }
}

void Engine::do_send(int from, int to, Message m) {
  if (to < 0 || to >= graph_.n()) throw std::out_of_range("send target");
  m.sender = from;
  ++current_.transmissions;
  ++current_.receptions;
  if (dropped()) return;
  bucket(delivery_round()).push_back({to, m});
}

RunStats Engine::run(Protocol& protocol, int max_rounds) {
  current_ = RunStats{};
  pending_.clear();

  for (int v = 0; v < graph_.n(); ++v) {
    NodeContext ctx(*this, v, 0);
    protocol.on_start(ctx);
  }

  std::vector<Envelope> inbox;
  const auto has_pending = [&] {
    for (const auto& b : pending_) {
      if (!b.empty()) return true;
    }
    return false;
  };
  while (has_pending() && current_.rounds < max_rounds) {
    ++current_.rounds;
    inbox.clear();
    if (!pending_.empty()) {
      inbox.swap(pending_.front());
      pending_.erase(pending_.begin());
    }
    // Deterministic delivery: within a round each node processes its
    // messages in a canonical order, independent of transmission order.
    // This makes protocol results reproducible and lets the distributed
    // stage implementations match their centralized equivalents exactly.
    std::sort(inbox.begin(), inbox.end(),
              [](const Envelope& a, const Envelope& b) {
                return std::tie(a.to, a.msg.kind, a.msg.hops, a.msg.origin,
                                a.msg.sender, a.msg.payload) <
                       std::tie(b.to, b.msg.kind, b.msg.hops, b.msg.origin,
                                b.msg.sender, b.msg.payload);
              });
    for (const Envelope& env : inbox) {
      NodeContext ctx(*this, env.to, current_.rounds);
      protocol.on_message(ctx, env.msg);
    }
  }
  if (has_pending()) {
    throw std::runtime_error("sim::Engine hit the round cap before quiescence");
  }
  total_ += current_;
  return current_;
}

}  // namespace skelex::sim
