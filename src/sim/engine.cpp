#include "sim/engine.h"

#include <algorithm>
#include <stdexcept>
#include <tuple>
#include <utility>

namespace skelex::sim {

// Concrete context bound to the engine's radio.
class Engine::Ctx final : public NodeContext {
 public:
  Ctx(Engine& e, int node, int round) : engine_(e), node_(node), round_(round) {}

  int node() const override { return node_; }
  int round() const override { return round_; }
  std::span<const int> neighbors() const override {
    return engine_.graph_.neighbors(node_);
  }
  void broadcast(Message m) override { engine_.do_broadcast(node_, m); }
  void send(int to, Message m) override { engine_.do_send(node_, to, m); }
  void schedule(int delay_rounds, Message m) override {
    engine_.do_schedule(node_, delay_rounds, m);
  }

 private:
  Engine& engine_;
  int node_;
  int round_;
};

Engine::Engine(const net::Graph& graph) : graph_(graph) {}

void Engine::set_jitter(int max_extra_rounds, std::uint64_t seed) {
  if (max_extra_rounds < 0) {
    throw std::invalid_argument("jitter must be >= 0");
  }
  max_jitter_ = max_extra_rounds;
  jitter_state_ = seed | 1;  // splitmix needs nonzero progression anyway
}

void Engine::set_loss(double p, std::uint64_t seed) {
  if (p < 0.0 || p >= 1.0) {
    throw std::invalid_argument("loss probability must be in [0, 1)");
  }
  loss_ = p;
  loss_state_ = seed | 1;
}

void Engine::set_faults(FaultPlan plan) {
  faults_ = std::move(plan);
  have_faults_ = !faults_.empty();
}

bool Engine::dropped() {
  if (loss_ == 0.0) return false;
  loss_state_ += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = loss_state_;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return static_cast<double>(z >> 11) * 0x1.0p-53 < loss_;
}

int Engine::delivery_round() {
  // Deliveries land 1..(1 + max_jitter_) rounds ahead; splitmix64 keeps
  // the sequence deterministic for a given seed.
  if (max_jitter_ == 0) return 0;
  jitter_state_ += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = jitter_state_;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return static_cast<int>(z % static_cast<std::uint64_t>(max_jitter_ + 1));
}

std::vector<Engine::Envelope>& Engine::bucket(int extra) {
  while (static_cast<int>(pending_.size()) <= extra) pending_.push_back({});
  return pending_[static_cast<std::size_t>(extra)];
}

void Engine::do_broadcast(int from, Message m) {
  if (have_faults_) {
    const int r = fault_clock();
    if (faults_.is_crashed(from, r) || faults_.is_asleep(from, r)) {
      ++current_.faults_tx_suppressed;
      return;
    }
  }
  m.sender = from;
  ++current_.transmissions;
  // One transmission: all listeners hear the same (possibly delayed)
  // radio frame, so the delay is drawn once per transmission.
  const int extra = delivery_round();
  auto& out = bucket(extra);
  for (int w : graph_.neighbors(from)) {
    ++current_.receptions;
    if (have_faults_ && !faults_.link_up(from, w, fault_clock())) {
      ++current_.faults_rx_linkdown;
      continue;
    }
    if (dropped()) continue;
    out.push_back({w, false, m});
  }
}

void Engine::do_send(int from, int to, Message m) {
  if (to < 0 || to >= graph_.n()) throw std::out_of_range("send target");
  if (have_faults_) {
    const int r = fault_clock();
    if (faults_.is_crashed(from, r) || faults_.is_asleep(from, r)) {
      ++current_.faults_tx_suppressed;
      return;
    }
  }
  m.sender = from;
  ++current_.transmissions;
  ++current_.receptions;
  if (have_faults_ && !faults_.link_up(from, to, fault_clock())) {
    ++current_.faults_rx_linkdown;
    return;
  }
  if (dropped()) return;
  bucket(delivery_round()).push_back({to, false, m});
}

void Engine::do_schedule(int from, int delay_rounds, Message m) {
  if (delay_rounds < 1) {
    throw std::invalid_argument("schedule delay must be >= 1 round");
  }
  m.sender = from;
  // Local timer: no radio cost, no loss/jitter, delivered only to self.
  bucket(delay_rounds - 1).push_back({from, true, m});
}

RunStats Engine::run(Protocol& protocol, int max_rounds) {
  fault_base_ = total_.rounds;  // fault clock continues across runs
  current_ = RunStats{};
  pending_.clear();

  now_ = 0;
  for (int v = 0; v < graph_.n(); ++v) {
    if (have_faults_ && faults_.is_crashed(v, fault_clock())) continue;
    Ctx ctx(*this, v, 0);
    protocol.on_start(ctx);
  }

  std::vector<Envelope> inbox;
  const auto has_pending = [&] {
    for (const auto& b : pending_) {
      if (!b.empty()) return true;
    }
    return false;
  };
  while (has_pending() && current_.rounds < max_rounds) {
    ++current_.rounds;
    now_ = current_.rounds;
    inbox.clear();
    if (!pending_.empty()) {
      inbox.swap(pending_.front());
      pending_.erase(pending_.begin());
    }
    // Deterministic delivery: within a round each node processes its
    // messages in a canonical order, independent of transmission order.
    // This makes protocol results reproducible and lets the distributed
    // stage implementations match their centralized equivalents exactly.
    // Radio frames sort before self-timers so that e.g. an ACK arriving
    // in the same round as a retransmission timer cancels it.
    std::sort(inbox.begin(), inbox.end(),
              [](const Envelope& a, const Envelope& b) {
                return std::tie(a.to, a.internal, a.msg.kind, a.msg.hops,
                                a.msg.origin, a.msg.sender, a.msg.payload,
                                a.msg.seq, a.msg.aux) <
                       std::tie(b.to, b.internal, b.msg.kind, b.msg.hops,
                                b.msg.origin, b.msg.sender, b.msg.payload,
                                b.msg.seq, b.msg.aux);
              });
    for (const Envelope& env : inbox) {
      if (have_faults_) {
        const int r = fault_clock();
        if (faults_.is_crashed(env.to, r)) {
          if (!env.internal) ++current_.faults_rx_crashed;
          continue;
        }
        if (!env.internal && faults_.is_asleep(env.to, r)) {
          ++current_.faults_rx_sleeping;
          continue;
        }
      }
      Ctx ctx(*this, env.to, current_.rounds);
      protocol.on_message(ctx, env.msg);
    }
  }
  if (has_pending()) {
    // Round cap hit: flag it and discard the in-flight messages rather
    // than throwing — under fault injection a non-quiescent run is an
    // expected outcome the caller inspects, not a programming error.
    current_.hit_round_cap = true;
    pending_.clear();
  }
  total_ += current_;
  return current_;
}

}  // namespace skelex::sim
