// skelex/sim/engine.h
//
// Synchronous round-based message-passing simulator.
//
// This is the execution model the paper's complexity analysis (§V-A)
// assumes: in each round every node processes the messages that reached
// it at the end of the previous round and may transmit new ones. A
// wireless *broadcast* to all neighbors counts as ONE transmission (the
// radio transmits once; all neighbors hear it) — this matches how the
// paper counts "message complexity O((k+l+1)n)": each node forwards each
// flood wave at most once.
//
// Protocols keep their own per-node state (indexed by node id) and react
// to two hooks: on_start (round 0) and on_message. The engine runs until
// quiescence (no messages in flight) or a round cap; a capped run is
// flagged in RunStats::hit_round_cap instead of silently looking
// converged.
//
// NodeContext is an abstract interface so protocol stacks can be
// layered: sim::Engine provides the real radio; wrappers (e.g.
// core::ReliableFloodWrapper) interpose their own context to intercept
// an inner protocol's transmissions and add reliability underneath it.
#pragma once

#include <cstdint>
#include <vector>

#include "net/graph.h"
#include "sim/faults.h"
#include "sim/stats.h"

namespace skelex::sim {

// A compact, protocol-agnostic message. Protocols assign meaning to the
// fields; keeping it POD makes the engine allocation-free per delivery.
struct Message {
  int kind = 0;      // protocol-defined discriminator
  int origin = 0;    // typically: the node that started the flood
  int hops = 0;      // hop counter carried by flood messages
  std::int64_t payload = 0;  // protocol-defined extra data
  int sender = -1;   // filled in by the engine on delivery
  int seq = 0;       // per-sender sequence number (reliability layers)
  int aux = 0;       // protocol-defined extra discriminator
};

// Handed to protocol hooks; scoped to one (node, round). Abstract so a
// wrapper protocol can substitute its own implementation when invoking
// an inner protocol (see core/reliable.h).
class NodeContext {
 public:
  virtual ~NodeContext() = default;

  virtual int node() const = 0;
  virtual int round() const = 0;
  virtual std::span<const int> neighbors() const = 0;

  // Transmit to all neighbors: one transmission, degree receptions.
  virtual void broadcast(Message m) = 0;
  // Transmit to a single neighbor (e.g., reverse-path routing).
  virtual void send(int to, Message m) = 0;
  // Deliver `m` back to this node `delay_rounds` rounds from now
  // (delay_rounds >= 1). A local timer, not a radio event: it costs no
  // transmission/reception and bypasses loss, jitter, and link faults.
  // It still dies with a crashed node (dead CPUs fire no timers) but
  // survives sleep windows (the radio is off, the clock is not).
  virtual void schedule(int delay_rounds, Message m) = 0;

 protected:
  NodeContext() = default;
  NodeContext(const NodeContext&) = default;
  NodeContext& operator=(const NodeContext&) = default;
};

class Protocol {
 public:
  virtual ~Protocol() = default;
  // Called once per node before round 0's deliveries.
  virtual void on_start(NodeContext& ctx) = 0;
  // Called for each message delivered to a node.
  virtual void on_message(NodeContext& ctx, const Message& m) = 0;
};

class Engine {
 public:
  // The engine borrows `graph`; it must outlive the engine.
  explicit Engine(const net::Graph& graph);

  // Asynchrony injection: every transmission is delayed by an extra
  // 0..max_extra_rounds rounds, drawn deterministically from `seed`.
  // The paper's §III-B assumes floods start "at roughly the same time"
  // and travel "at approximately the same speed"; jitter breaks that
  // assumption in a controlled way (messages can overtake each other, a
  // node's first-arrival record may come along a longer path).
  // 0 restores the fully synchronous model.
  void set_jitter(int max_extra_rounds, std::uint64_t seed = 1);

  // Unreliable links: every RECEPTION is independently dropped with
  // probability `p` (the transmission still costs; distinct listeners of
  // one broadcast fail independently, as real radios do). 0 restores
  // reliable delivery. Dropped receptions are counted in
  // RunStats::receptions ("the radio heard noise") but never delivered.
  void set_loss(double p, std::uint64_t seed = 2);

  // Installs a fault schedule (crash-stop, duty-cycle sleep, link
  // churn); the engine consults it before every transmission and
  // delivery. Fault rounds are measured on the engine lifetime clock
  // (cumulative across run() calls), so crashes are permanent across a
  // multi-protocol pipeline run on one engine. Replaces any previously
  // installed plan; an empty plan disables fault injection.
  void set_faults(FaultPlan plan);
  const FaultPlan& faults() const { return faults_; }

  // Per-round telemetry: when enabled, every run() fills
  // RunStats::series with one sample per round (traffic deltas,
  // in-flight queue depth, fault drops). Off by default; the per-message
  // hot path is untouched either way — sampling happens once per round.
  void enable_round_series(bool on) { record_series_ = on; }
  bool round_series_enabled() const { return record_series_; }

  // The series of the run currently executing (nullptr when disabled or
  // between runs). Reliability layers use this to attribute
  // retransmissions to the round they were sent in.
  obs::RoundSeries* active_round_series() {
    return record_series_ && running_ ? &current_.series : nullptr;
  }

  // Runs `protocol` to quiescence (or max_rounds) and returns statistics.
  // Resets stats at entry, so an Engine can run several protocols in
  // sequence over the same graph (cumulative stats available via total()).
  // If the cap is hit, undelivered messages are discarded and
  // RunStats::hit_round_cap is set — the protocol's state is incomplete.
  RunStats run(Protocol& protocol, int max_rounds = 1 << 20);

  // Stats accumulated over every run() since construction.
  const RunStats& total() const { return total_; }

  const net::Graph& graph() const { return graph_; }

 private:
  class Ctx;
  struct Envelope {
    int to;
    bool internal;  // self-timer (schedule()); exempt from radio faults
    Message msg;
  };

  // One future round's traffic. A fault-free, loss-free broadcast is
  // queued ONCE (the radio transmits one frame) and fans out to the
  // sender's neighbors when the round is processed; unicast sends,
  // self-timers, and all traffic under loss or fault filtering (whose
  // per-reception decisions must consume the engine's RNG and fault
  // clock at transmission time) are queued as individual envelopes.
  struct Bucket {
    std::vector<Envelope> singles;
    std::vector<Message> broadcasts;  // sender field identifies the source
    bool empty() const { return singles.empty() && broadcasts.empty(); }
  };

  void do_broadcast(int from, Message m);
  void do_send(int from, int to, Message m);
  void do_schedule(int from, int delay_rounds, Message m);
  int delivery_round();
  bool dropped();
  Bucket& bucket(int round);
  // Round on the fault clock: cumulative rounds across runs.
  int fault_clock() const { return fault_base_ + now_; }

  const net::Graph& graph_;
  // Messages scheduled per future round (index = round - current - 1 in
  // the pending deque).
  std::vector<Bucket> pending_;
  int max_jitter_ = 0;
  std::uint64_t jitter_state_ = 0;
  double loss_ = 0.0;
  std::uint64_t loss_state_ = 0;
  FaultPlan faults_;
  bool have_faults_ = false;
  int now_ = 0;         // round currently being processed
  int fault_base_ = 0;  // lifetime rounds completed before this run
  bool record_series_ = false;
  bool running_ = false;
  RunStats current_;
  RunStats total_;
};

}  // namespace skelex::sim
