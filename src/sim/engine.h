// skelex/sim/engine.h
//
// Synchronous round-based message-passing simulator.
//
// This is the execution model the paper's complexity analysis (§V-A)
// assumes: in each round every node processes the messages that reached
// it at the end of the previous round and may transmit new ones. A
// wireless *broadcast* to all neighbors counts as ONE transmission (the
// radio transmits once; all neighbors hear it) — this matches how the
// paper counts "message complexity O((k+l+1)n)": each node forwards each
// flood wave at most once.
//
// Protocols keep their own per-node state (indexed by node id) and react
// to two hooks: on_start (round 0) and on_message. The engine runs until
// quiescence (no messages in flight) or a round cap.
#pragma once

#include <cstdint>
#include <vector>

#include "net/graph.h"
#include "sim/stats.h"

namespace skelex::sim {

// A compact, protocol-agnostic message. Protocols assign meaning to the
// fields; keeping it POD makes the engine allocation-free per delivery.
struct Message {
  int kind = 0;      // protocol-defined discriminator
  int origin = 0;    // typically: the node that started the flood
  int hops = 0;      // hop counter carried by flood messages
  std::int64_t payload = 0;  // protocol-defined extra data
  int sender = -1;   // filled in by the engine on delivery
};

class Engine;

// Handed to protocol hooks; scoped to one (node, round).
class NodeContext {
 public:
  int node() const { return node_; }
  int round() const { return round_; }
  std::span<const int> neighbors() const;

  // Transmit to all neighbors: one transmission, degree receptions.
  void broadcast(Message m);
  // Transmit to a single neighbor (e.g., reverse-path routing).
  void send(int to, Message m);

 private:
  friend class Engine;
  NodeContext(Engine& e, int node, int round)
      : engine_(e), node_(node), round_(round) {}
  Engine& engine_;
  int node_;
  int round_;
};

class Protocol {
 public:
  virtual ~Protocol() = default;
  // Called once per node before round 0's deliveries.
  virtual void on_start(NodeContext& ctx) = 0;
  // Called for each message delivered to a node.
  virtual void on_message(NodeContext& ctx, const Message& m) = 0;
};

class Engine {
 public:
  // The engine borrows `graph`; it must outlive the engine.
  explicit Engine(const net::Graph& graph);

  // Asynchrony injection: every transmission is delayed by an extra
  // 0..max_extra_rounds rounds, drawn deterministically from `seed`.
  // The paper's §III-B assumes floods start "at roughly the same time"
  // and travel "at approximately the same speed"; jitter breaks that
  // assumption in a controlled way (messages can overtake each other, a
  // node's first-arrival record may come along a longer path).
  // 0 restores the fully synchronous model.
  void set_jitter(int max_extra_rounds, std::uint64_t seed = 1);

  // Unreliable links: every RECEPTION is independently dropped with
  // probability `p` (the transmission still costs; distinct listeners of
  // one broadcast fail independently, as real radios do). 0 restores
  // reliable delivery. Dropped receptions are counted in
  // RunStats::receptions ("the radio heard noise") but never delivered.
  void set_loss(double p, std::uint64_t seed = 2);

  // Runs `protocol` to quiescence (or max_rounds) and returns statistics.
  // Resets stats at entry, so an Engine can run several protocols in
  // sequence over the same graph (cumulative stats available via total()).
  RunStats run(Protocol& protocol, int max_rounds = 1 << 20);

  // Stats accumulated over every run() since construction.
  const RunStats& total() const { return total_; }

  const net::Graph& graph() const { return graph_; }

 private:
  friend class NodeContext;
  struct Envelope {
    int to;
    Message msg;
  };

  void do_broadcast(int from, Message m);
  void do_send(int from, int to, Message m);
  int delivery_round();
  bool dropped();
  std::vector<Envelope>& bucket(int round);

  const net::Graph& graph_;
  // Messages scheduled per future round (index = round - current - 1 in
  // the pending deque).
  std::vector<std::vector<Envelope>> pending_;
  int max_jitter_ = 0;
  std::uint64_t jitter_state_ = 0;
  double loss_ = 0.0;
  std::uint64_t loss_state_ = 0;
  RunStats current_;
  RunStats total_;
};

}  // namespace skelex::sim
