// skelex/sim/engine.h
//
// Synchronous round-based message-passing simulator.
//
// This is the execution model the paper's complexity analysis (§V-A)
// assumes: in each round every node processes the messages that reached
// it at the end of the previous round and may transmit new ones. A
// wireless *broadcast* to all neighbors counts as ONE transmission (the
// radio transmits once; all neighbors hear it) — this matches how the
// paper counts "message complexity O((k+l+1)n)": each node forwards each
// flood wave at most once.
//
// Protocols keep their own per-node state (indexed by node id) and react
// to two hooks: on_start (round 0) and on_message. The engine runs until
// quiescence (no messages in flight) or a round cap; a capped run is
// flagged in RunStats::hit_round_cap instead of silently looking
// converged.
//
// NodeContext is an abstract interface so protocol stacks can be
// layered: sim::Engine provides the real radio; wrappers (e.g.
// core::ReliableFloodWrapper) interpose their own context to intercept
// an inner protocol's transmissions and add reliability underneath it.
//
// --- Intra-round parallel execution ------------------------------------------
//
// With set_threads(T > 1) the engine executes each round's deliveries
// in parallel on an exec::ThreadPool while producing BIT-IDENTICAL
// results to the serial engine (docs/architecture.md has the full
// model). The node range is partitioned into T contiguous chunks; each
// chunk delivers its nodes' inbox slices with a chunk-local staging
// area for outgoing traffic and chunk-local counters. At the round
// boundary the staging areas are merged into the shared pending ring in
// chunk-index order — which, because chunks are contiguous and
// ascending, reproduces exactly the serial emission sequence — and the
// counters are summed in the same fixed order. Per-delivery randomness
// (loss, jitter) is counter-based (deploy::counter_hash keyed by
// lifetime round, sender, receiver, and per-node emission index), so a
// draw's value does not depend on how many draws other nodes performed.
// FaultPlan queries are const lookups and safe for concurrent readers.
//
// The contract this buys protocols: results at any thread count are the
// results of threads=1, byte for byte — RunStats, round series, metrics,
// and every per-node protocol state. The serial path (threads=1, the
// default) does not stage or merge at all; it is the PR-2 engine with an
// arena-reusing pending ring.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "net/graph.h"
#include "sim/faults.h"
#include "sim/stats.h"

namespace skelex::exec {
class ThreadPool;
}  // namespace skelex::exec

namespace skelex::sim {

// A compact, protocol-agnostic message. Protocols assign meaning to the
// fields; keeping it POD makes the engine allocation-free per delivery.
struct Message {
  int kind = 0;      // protocol-defined discriminator
  int origin = 0;    // typically: the node that started the flood
  int hops = 0;      // hop counter carried by flood messages
  std::int64_t payload = 0;  // protocol-defined extra data
  int sender = -1;   // filled in by the engine on delivery
  int seq = 0;       // per-sender sequence number (reliability layers)
  int aux = 0;       // protocol-defined extra discriminator
};

// Handed to protocol hooks; scoped to one (node, round). Abstract so a
// wrapper protocol can substitute its own implementation when invoking
// an inner protocol (see core/reliable.h).
class NodeContext {
 public:
  virtual ~NodeContext() = default;

  virtual int node() const = 0;
  virtual int round() const = 0;
  virtual std::span<const int> neighbors() const = 0;

  // Transmit to all neighbors: one transmission, degree receptions.
  virtual void broadcast(Message m) = 0;
  // Transmit to a single neighbor (e.g., reverse-path routing).
  virtual void send(int to, Message m) = 0;
  // Deliver `m` back to this node `delay_rounds` rounds from now
  // (delay_rounds >= 1). A local timer, not a radio event: it costs no
  // transmission/reception and bypasses loss, jitter, and link faults.
  // It still dies with a crashed node (dead CPUs fire no timers) but
  // survives sleep windows (the radio is off, the clock is not).
  virtual void schedule(int delay_rounds, Message m) = 0;

  // Telemetry hook for reliability layers: counts one retransmission in
  // this node's current round. The engine attributes it to
  // RoundSample::retransmissions when round-series recording is on; the
  // default implementation ignores it. Unlike a direct write into the
  // engine's series, this routes through the per-chunk counters, so it
  // is safe from parallel delivery chunks.
  virtual void note_retransmission() {}

 protected:
  NodeContext() = default;
  NodeContext(const NodeContext&) = default;
  NodeContext& operator=(const NodeContext&) = default;
};

class Protocol {
 public:
  virtual ~Protocol() = default;
  // Called once per node before round 0's deliveries.
  virtual void on_start(NodeContext& ctx) = 0;
  // Called for each message delivered to a node.
  virtual void on_message(NodeContext& ctx, const Message& m) = 0;

  // The handler-isolation contract for parallel delivery: when the
  // engine runs with threads > 1, on_start/on_message for DIFFERENT
  // nodes may execute concurrently. A conforming handler invoked for
  // node v writes only state owned by v (its own row/slot in per-node
  // containers) and the context, and reads other nodes' state not at
  // all — cross-node information must travel in messages. All protocols
  // in core/ conform (see the notes in core/protocols.h and
  // core/reliable.h). A protocol that does not conform must return
  // false here; the engine then executes it serially regardless of its
  // thread setting, which preserves correctness (and, by construction,
  // the exact same results).
  virtual bool parallel_safe() const { return true; }
};

// Engine thread count default: SKELEX_ENGINE_THREADS if set to a
// positive integer, else 1 (serial). Deliberately NOT hardware
// concurrency: intra-round parallelism is opt-in so that sweeps which
// already parallelize across cells (SKELEX_THREADS) don't oversubscribe.
int default_engine_threads();

class Engine {
 public:
  // The engine borrows `graph`; it must outlive the engine.
  explicit Engine(const net::Graph& graph);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // Asynchrony injection: every transmission is delayed by an extra
  // 0..max_extra_rounds rounds, drawn deterministically from `seed`.
  // The paper's §III-B assumes floods start "at roughly the same time"
  // and travel "at approximately the same speed"; jitter breaks that
  // assumption in a controlled way (messages can overtake each other, a
  // node's first-arrival record may come along a longer path).
  // 0 restores the fully synchronous model.
  void set_jitter(int max_extra_rounds, std::uint64_t seed = 1);

  // Unreliable links: every RECEPTION is independently dropped with
  // probability `p` (the transmission still costs; distinct listeners of
  // one broadcast fail independently, as real radios do). 0 restores
  // reliable delivery. Dropped receptions are counted in
  // RunStats::receptions ("the radio heard noise") but never delivered.
  void set_loss(double p, std::uint64_t seed = 2);

  // Installs a fault schedule (crash-stop, duty-cycle sleep, link
  // churn); the engine consults it before every transmission and
  // delivery. Fault rounds are measured on the engine lifetime clock
  // (cumulative across run() calls), so crashes are permanent across a
  // multi-protocol pipeline run on one engine. Replaces any previously
  // installed plan; an empty plan disables fault injection.
  void set_faults(FaultPlan plan);
  const FaultPlan& faults() const { return faults_; }

  // Intra-round parallelism: deliver each round's messages on `threads`
  // threads (chunked by node id). Results are bit-identical at any
  // value; 1 (the default) runs fully serial with no staging overhead.
  // 0 resets to default_engine_threads(). The worker pool is owned by
  // the engine and created lazily on the first parallel run.
  void set_threads(int threads);
  int threads() const { return threads_; }

  // Per-round telemetry: when enabled, every run() fills
  // RunStats::series with one sample per round (traffic deltas,
  // in-flight queue depth, fault drops). Off by default; the per-message
  // hot path is untouched either way — sampling happens once per round.
  void enable_round_series(bool on) { record_series_ = on; }
  bool round_series_enabled() const { return record_series_; }

  // The series of the run currently executing (nullptr when disabled or
  // between runs). Read-only telemetry for code driving the engine;
  // protocol handlers must NOT write to it (use
  // NodeContext::note_retransmission, which is chunk-safe).
  obs::RoundSeries* active_round_series() {
    return record_series_ && running_ ? &current_.series : nullptr;
  }

  // Runs `protocol` to quiescence (or max_rounds) and returns statistics.
  // Resets stats at entry, so an Engine can run several protocols in
  // sequence over the same graph (cumulative stats available via total()).
  // If the cap is hit, undelivered messages are discarded and
  // RunStats::hit_round_cap is set — the protocol's state is incomplete.
  RunStats run(Protocol& protocol, int max_rounds = 1 << 20);

  // Stats accumulated over every run() since construction.
  const RunStats& total() const { return total_; }

  const net::Graph& graph() const { return graph_; }

 private:
  class Ctx;
  struct Envelope {
    int to;
    bool internal;  // self-timer (schedule()); exempt from radio faults
    Message msg;
  };

  // One future round's traffic. A fault-free, loss-free broadcast is
  // queued ONCE (the radio transmits one frame) and fans out to the
  // sender's neighbors when the round is processed; unicast sends,
  // self-timers, and all traffic under loss or fault filtering (whose
  // per-reception decisions are drawn at transmission time) are queued
  // as individual envelopes.
  struct Bucket {
    std::vector<Envelope> singles;
    std::vector<Message> broadcasts;  // sender field identifies the source
    bool empty() const { return singles.empty() && broadcasts.empty(); }
    std::size_t entries() const { return singles.size() + broadcasts.size(); }
    void clear() {
      singles.clear();
      broadcasts.clear();
    }
  };

  // Precomputed per-reception sort key; see run() for the encoding.
  struct DeliveryKey {
    std::uint64_t k1;   // internal | kind
    std::uint64_t k2;   // hops | origin
    std::uint32_t k3;   // sender
    std::uint32_t idx;  // position in the round's inbox
  };

  // Where one delivery chunk's emissions and accounting go. In serial
  // mode (`staged == nullptr`) envelopes land directly in the engine's
  // pending ring; in parallel mode they land in the chunk's staging
  // buckets (indexed by extra delay) and are merged at the round
  // boundary. Counters are absorbed into RunStats in chunk order either
  // way, so totals accumulate in the exact serial sequence.
  struct EmitSink {
    std::vector<Bucket>* staged = nullptr;
    int staged_hi = -1;             // highest staged extra this round
    std::int64_t queued = 0;        // envelopes produced (broadcast = 1)
    std::int64_t transmissions = 0;
    std::int64_t receptions = 0;
    std::int64_t faults_tx_suppressed = 0;
    std::int64_t faults_rx_crashed = 0;
    std::int64_t faults_rx_sleeping = 0;
    std::int64_t faults_rx_linkdown = 0;
    std::int64_t retransmissions = 0;
    int node = -1;                  // node currently emitting
    std::uint32_t emit_seq = 0;     // per-(node, round) emission index
    // Per-frame loss draws for one broadcast's receivers, batched
    // through deploy::counter_uniform_batch (values bit-equal to the
    // scalar per-receiver draws). Chunk-local scratch, reused across
    // rounds and runs.
    std::vector<double> loss_scratch;

    // Reset for a new run, keeping the scratch arena's capacity.
    void reset() {
      staged = nullptr;
      staged_hi = -1;
      queued = 0;
      transmissions = 0;
      receptions = 0;
      faults_tx_suppressed = 0;
      faults_rx_crashed = 0;
      faults_rx_sleeping = 0;
      faults_rx_linkdown = 0;
      retransmissions = 0;
      node = -1;
      emit_seq = 0;
    }
  };
  struct Chunk {
    std::vector<Bucket> staged;
    EmitSink sink;
  };

  void do_broadcast(EmitSink& s, int from, Message m);
  void do_send(EmitSink& s, int from, int to, Message m);
  void do_schedule(EmitSink& s, int from, int delay_rounds, Message m);
  // Counter-based draws: pure functions of (seed, lifetime round,
  // sender, receiver, emission index) — order- and thread-independent.
  int delivery_round(int from, std::uint32_t emit) const;
  bool dropped(int from, int to, std::uint32_t emit) const;
  Bucket& bucket(int extra);
  Bucket& sink_bucket(EmitSink& s, int extra);
  void pop_front(Bucket& inbox);
  void absorb(EmitSink& s);
  void merge_chunks(int used_chunks);
  void deliver_range(Protocol& protocol, const Bucket& inbox,
                     std::vector<DeliveryKey>& keys,
                     const std::vector<int>& slice_end, EmitSink& sink,
                     int vbegin, int vend);
  // Round on the fault clock: cumulative rounds across runs.
  int fault_clock() const { return fault_base_ + now_; }

  const net::Graph& graph_;
  // Pending traffic, bucketed per future round: the bucket for round
  // now_ + 1 + extra lives at pending_[head_ + extra]. Popping a round
  // advances head_ (swapping the drained arenas into the inbox);
  // periodic std::rotate compaction recycles drained buckets — and
  // their vector capacities — to the tail instead of destroying them,
  // so steady-state rounds allocate nothing.
  std::vector<Bucket> pending_;
  std::size_t head_ = 0;
  std::int64_t inflight_ = 0;  // queued envelopes across all buckets
  // Per-round scratch, reused across rounds AND runs: the drained
  // inbox's arenas, the precomputed delivery keys, and the
  // per-destination slice offsets. Together with the pending ring this
  // makes steady-state rounds allocation-free (BM_EngineRound pins it).
  Bucket inbox_;
  std::vector<DeliveryKey> keys_;
  std::vector<int> slice_at_;
  std::vector<int> slice_end_;
  int max_jitter_ = 0;
  std::uint64_t jitter_seed_ = 0;
  double loss_ = 0.0;
  std::uint64_t loss_seed_ = 0;
  FaultPlan faults_;
  bool have_faults_ = false;
  int threads_;
  std::unique_ptr<exec::ThreadPool> pool_;  // created on first parallel run
  std::vector<Chunk> chunks_;
  std::int64_t round_retx_ = 0;  // retransmissions since the last sample
  int now_ = 0;         // round currently being processed
  int fault_base_ = 0;  // lifetime rounds completed before this run
  bool record_series_ = false;
  bool running_ = false;
  RunStats current_;
  RunStats total_;
};

}  // namespace skelex::sim
