#include "sim/faults.h"

#include <algorithm>
#include <climits>
#include <stdexcept>

namespace skelex::sim {

namespace {
void check_node(int node) {
  if (node < 0) throw std::invalid_argument("fault node id must be >= 0");
}
void check_round(int round) {
  if (round < 0) throw std::invalid_argument("fault round must be >= 0");
}
void check_interval(int from, int to) {
  check_round(from);
  if (to <= from) {
    throw std::invalid_argument("fault interval must have to > from");
  }
}
}  // namespace

std::uint64_t FaultPlan::link_key(int u, int v) {
  const std::uint64_t a = static_cast<std::uint64_t>(std::min(u, v));
  const std::uint64_t b = static_cast<std::uint64_t>(std::max(u, v));
  return (a << 32) | b;
}

void FaultPlan::crash_at(int node, int round) {
  check_node(node);
  check_round(round);
  auto [it, inserted] = crash_.try_emplace(node, round);
  if (!inserted) it->second = std::min(it->second, round);
}

void FaultPlan::sleep(int node, int from_round, int to_round) {
  check_node(node);
  check_interval(from_round, to_round);
  sleep_[node].push_back({from_round, to_round});
}

void FaultPlan::link_down(int u, int v, int from_round, int to_round) {
  check_node(u);
  check_node(v);
  if (u == v) throw std::invalid_argument("link endpoints must differ");
  check_interval(from_round, to_round);
  link_down_[link_key(u, v)].push_back({from_round, to_round});
}

void FaultPlan::link_churn(int u, int v, int down_rounds, int up_rounds,
                           int phase) {
  check_node(u);
  check_node(v);
  if (u == v) throw std::invalid_argument("link endpoints must differ");
  if (down_rounds < 1) throw std::invalid_argument("down_rounds must be >= 1");
  if (up_rounds < 0) throw std::invalid_argument("up_rounds must be >= 0");
  check_round(phase);
  churn_[link_key(u, v)].push_back({down_rounds, up_rounds, phase});
}

bool FaultPlan::is_crashed(int node, int round) const {
  const auto it = crash_.find(node);
  return it != crash_.end() && round >= it->second;
}

int FaultPlan::crash_round(int node) const {
  const auto it = crash_.find(node);
  return it == crash_.end() ? INT_MAX : it->second;
}

bool FaultPlan::is_asleep(int node, int round) const {
  const auto it = sleep_.find(node);
  if (it == sleep_.end()) return false;
  for (const Interval& w : it->second) {
    if (round >= w.from && round < w.to) return true;
  }
  return false;
}

bool FaultPlan::link_up(int u, int v, int round) const {
  const std::uint64_t key = link_key(u, v);
  if (const auto it = link_down_.find(key); it != link_down_.end()) {
    for (const Interval& w : it->second) {
      if (round >= w.from && round < w.to) return false;
    }
  }
  if (const auto it = churn_.find(key); it != churn_.end()) {
    for (const Churn& c : it->second) {
      if (round < c.phase) continue;
      if (c.up == 0) return false;  // permanently down from phase on
      const int pos = (round - c.phase) % (c.down + c.up);
      if (pos < c.down) return false;
    }
  }
  return true;
}

std::uint64_t FaultPlan::digest() const {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a
  const auto mix = [&h](std::uint64_t x) {
    for (int i = 0; i < 8; ++i) {
      h ^= (x >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  // Sort each map's keys so the digest reflects schedule content, not
  // unordered_map iteration order.
  std::vector<std::pair<int, int>> crashes(crash_.begin(), crash_.end());
  std::sort(crashes.begin(), crashes.end());
  mix(crashes.size());
  for (const auto& [node, round] : crashes) {
    mix(static_cast<std::uint64_t>(node));
    mix(static_cast<std::uint64_t>(round));
  }
  const auto mix_intervals = [&](const auto& map, std::uint64_t tag) {
    std::vector<typename std::decay_t<decltype(map)>::key_type> keys;
    keys.reserve(map.size());
    for (const auto& [k, v] : map) keys.push_back(k);
    std::sort(keys.begin(), keys.end());
    mix(tag);
    mix(keys.size());
    for (const auto& k : keys) {
      mix(static_cast<std::uint64_t>(k));
      auto windows = map.at(k);
      std::sort(windows.begin(), windows.end(), [](const auto& a, const auto& b) {
        return a.from != b.from ? a.from < b.from : a.to < b.to;
      });
      mix(windows.size());
      for (const auto& w : windows) {
        mix(static_cast<std::uint64_t>(w.from));
        mix(static_cast<std::uint64_t>(w.to));
      }
    }
  };
  mix_intervals(sleep_, 0x51ee9ull);
  mix_intervals(link_down_, 0xd00full);
  std::vector<std::uint64_t> churn_keys;
  churn_keys.reserve(churn_.size());
  for (const auto& [k, v] : churn_) churn_keys.push_back(k);
  std::sort(churn_keys.begin(), churn_keys.end());
  mix(0xc4a7ull);
  mix(churn_keys.size());
  for (const std::uint64_t k : churn_keys) {
    mix(k);
    auto specs = churn_.at(k);
    std::sort(specs.begin(), specs.end(), [](const Churn& a, const Churn& b) {
      if (a.phase != b.phase) return a.phase < b.phase;
      if (a.down != b.down) return a.down < b.down;
      return a.up < b.up;
    });
    mix(specs.size());
    for (const Churn& c : specs) {
      mix(static_cast<std::uint64_t>(c.down));
      mix(static_cast<std::uint64_t>(c.up));
      mix(static_cast<std::uint64_t>(c.phase));
    }
  }
  return h;
}

std::vector<char> FaultPlan::crashed_by(int n, int round) const {
  std::vector<char> dead(static_cast<std::size_t>(n), 0);
  for (const auto& [node, r] : crash_) {
    if (node < n && r <= round) dead[static_cast<std::size_t>(node)] = 1;
  }
  return dead;
}

}  // namespace skelex::sim
