// skelex/sim/faults.h
//
// Fault injection for the message-passing simulator. A FaultPlan is a
// deterministic schedule of the failure modes real deployments exhibit
// and the paper's model assumes away (§III-B assumes floods start
// simultaneously and travel at one hop per round; §III-D notes skeleton
// loops can be caused by "node failure, etc"):
//
//   * crash-stop  — a node dies at a given round and never processes,
//     transmits, or receives again;
//   * duty-cycle  — a node's radio is off during [from, to): it neither
//     transmits nor receives, but its CPU (self-timers) keeps running;
//   * link churn  — a link is down for explicit intervals, or flaps
//     periodically (down d rounds, up u rounds, repeating); a down link
//     drops frames in both directions.
//
// The engine consults the installed plan before every transmission and
// every delivery; swallowed traffic is counted in RunStats' fault
// counters. Rounds are measured on the ENGINE LIFETIME clock — the
// cumulative round count across all run() calls on one engine — so a
// node that crashes during stage 1 of a multi-protocol pipeline stays
// dead through the later stages (crash-stop is permanent).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace skelex::sim {

class FaultPlan {
 public:
  // Node `node` is dead from round `round` on (round 0 = never alive:
  // the node does not even run on_start). The earliest of several
  // schedules for one node wins.
  void crash_at(int node, int round);

  // Node `node`'s radio is off during [from_round, to_round).
  void sleep(int node, int from_round, int to_round);

  // The link {u, v} is down during [from_round, to_round).
  void link_down(int u, int v, int from_round, int to_round);

  // Periodic churn: starting at `phase`, the link {u, v} repeats
  // down for `down_rounds`, up for `up_rounds`. Before `phase` it is up.
  // up_rounds == 0 means permanently down from `phase` on.
  void link_churn(int u, int v, int down_rounds, int up_rounds,
                  int phase = 0);

  bool empty() const {
    return crash_.empty() && sleep_.empty() && link_down_.empty() &&
           churn_.empty();
  }

  // --- Queries (engine hot path) --------------------------------------------
  // Const lookups over containers frozen after plan construction: the
  // engine calls these concurrently from parallel delivery chunks
  // (set_threads > 1), which is safe as long as no mutator runs while a
  // simulation is in flight — install the plan before Engine::run.
  bool is_crashed(int node, int round) const;
  bool is_asleep(int node, int round) const;
  bool link_up(int u, int v, int round) const;

  // Round at which `node` crashes, or INT_MAX when it never does.
  int crash_round(int node) const;

  // Mask (size n) of nodes whose crash round is <= `round` — the
  // complement is the survivor set, e.g. for re-extraction on the
  // survivor graph (net::remove_nodes).
  std::vector<char> crashed_by(int n, int round) const;

  // Content digest of the full schedule (FNV-1a over sorted entries).
  // Stable across insertion order and across runs/platforms, so bench
  // JSON can record which fault schedule produced a cell — two plans
  // with the same digest drive byte-identical simulations.
  std::uint64_t digest() const;

 private:
  struct Interval {
    int from;
    int to;  // exclusive
  };
  struct Churn {
    int down;
    int up;
    int phase;
  };

  static std::uint64_t link_key(int u, int v);

  std::unordered_map<int, int> crash_;  // node -> first dead round
  std::unordered_map<int, std::vector<Interval>> sleep_;
  std::unordered_map<std::uint64_t, std::vector<Interval>> link_down_;
  std::unordered_map<std::uint64_t, std::vector<Churn>> churn_;
};

}  // namespace skelex::sim
