#include "sim/stats.h"

#include <ostream>

namespace skelex::sim {

RunStats& RunStats::operator+=(const RunStats& o) {
  rounds += o.rounds;
  transmissions += o.transmissions;
  receptions += o.receptions;
  return *this;
}

RunStats operator+(RunStats a, const RunStats& b) { return a += b; }

std::ostream& operator<<(std::ostream& os, const RunStats& s) {
  return os << "{rounds=" << s.rounds << ", tx=" << s.transmissions
            << ", rx=" << s.receptions << '}';
}

}  // namespace skelex::sim
