#include "sim/stats.h"

#include <ostream>

namespace skelex::sim {

RunStats& RunStats::operator+=(const RunStats& o) {
  series.append_shifted(o.series, rounds);  // before `rounds` moves on
  rounds += o.rounds;
  transmissions += o.transmissions;
  receptions += o.receptions;
  faults_tx_suppressed += o.faults_tx_suppressed;
  faults_rx_crashed += o.faults_rx_crashed;
  faults_rx_sleeping += o.faults_rx_sleeping;
  faults_rx_linkdown += o.faults_rx_linkdown;
  hit_round_cap = hit_round_cap || o.hit_round_cap;
  return *this;
}

RunStats operator+(RunStats a, const RunStats& b) { return a += b; }

std::ostream& operator<<(std::ostream& os, const RunStats& s) {
  os << "{rounds=" << s.rounds << ", tx=" << s.transmissions
     << ", rx=" << s.receptions;
  if (s.total_fault_drops() > 0) {
    os << ", faults={tx_suppressed=" << s.faults_tx_suppressed
       << ", rx_crashed=" << s.faults_rx_crashed
       << ", rx_sleeping=" << s.faults_rx_sleeping
       << ", rx_linkdown=" << s.faults_rx_linkdown << '}';
  }
  if (s.hit_round_cap) os << ", hit_round_cap";
  return os << '}';
}

}  // namespace skelex::sim
