// skelex/sim/stats.h
//
// Accounting for distributed runs: rounds to quiescence, transmissions
// (radio sends; a broadcast is one), receptions (per-listener deliveries).
// bench_thm5_complexity uses these to reproduce the paper's Theorem 5
// claims: transmissions = O((k + l + 1) n), rounds = O(sqrt(n)).
#pragma once

#include <cstdint>
#include <iosfwd>

namespace skelex::sim {

struct RunStats {
  int rounds = 0;
  std::int64_t transmissions = 0;
  std::int64_t receptions = 0;

  RunStats& operator+=(const RunStats& o);
};

RunStats operator+(RunStats a, const RunStats& b);
std::ostream& operator<<(std::ostream& os, const RunStats& s);

}  // namespace skelex::sim
