// skelex/sim/stats.h
//
// Accounting for distributed runs: rounds to quiescence, transmissions
// (radio sends; a broadcast is one), receptions (per-listener deliveries).
// bench_thm5_complexity uses these to reproduce the paper's Theorem 5
// claims: transmissions = O((k + l + 1) n), rounds = O(sqrt(n)).
//
// Fault accounting (sim/faults.h): the engine counts every delivery or
// transmission a FaultPlan swallowed, and flags runs that were cut off
// by the round cap, so a non-quiescent run is distinguishable from a
// converged one.
//
// Under intra-round parallel execution (Engine::set_threads) every
// counter here is accumulated per delivery chunk and folded into the
// run's RunStats at the round boundary in fixed chunk order, so the
// totals — and the per-round series deltas derived from them — are
// bit-identical to the serial engine at any thread count.
#pragma once

#include <cstdint>
#include <iosfwd>

#include "obs/series.h"

namespace skelex::sim {

struct RunStats {
  int rounds = 0;
  std::int64_t transmissions = 0;
  std::int64_t receptions = 0;

  // Fault counters (all zero when no FaultPlan is installed).
  std::int64_t faults_tx_suppressed = 0;  // transmissions by crashed/sleeping nodes
  std::int64_t faults_rx_crashed = 0;     // deliveries to crashed nodes
  std::int64_t faults_rx_sleeping = 0;    // deliveries to sleeping nodes
  std::int64_t faults_rx_linkdown = 0;    // receptions over a down link

  // True when run() stopped at max_rounds with messages still in flight
  // (the leftover messages are discarded). A capped run's per-node state
  // is incomplete; callers must not treat it as converged.
  bool hit_round_cap = false;

  // Per-round convergence curve; empty unless the engine ran with
  // Engine::enable_round_series(true). Summing stats concatenates the
  // curves with round numbers shifted onto one continuous clock, so a
  // multi-protocol pipeline's total() reads as a single time series.
  obs::RoundSeries series;

  std::int64_t total_fault_drops() const {
    return faults_tx_suppressed + faults_rx_crashed + faults_rx_sleeping +
           faults_rx_linkdown;
  }

  RunStats& operator+=(const RunStats& o);
};

RunStats operator+(RunStats a, const RunStats& b);
std::ostream& operator<<(std::ostream& os, const RunStats& s);

}  // namespace skelex::sim
