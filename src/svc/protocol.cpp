#include "svc/protocol.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>
#include <stdexcept>

namespace skelex::svc {

namespace {

// send() with MSG_NOSIGNAL so a peer that hung up yields an error
// return, not SIGPIPE; plain read() for the receive side.
bool write_all(int fd, const char* data, std::size_t n) {
  while (n > 0) {
    const ssize_t w = ::send(fd, data, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

bool read_all(int fd, char* data, std::size_t n) {
  while (n > 0) {
    const ssize_t r = ::read(fd, data, n);
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (r == 0) return false;  // EOF
    data += r;
    n -= static_cast<std::size_t>(r);
  }
  return true;
}

}  // namespace

bool write_frame(int fd, std::string_view payload) {
  if (payload.size() > kMaxFrame) return false;
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  unsigned char hdr[4] = {static_cast<unsigned char>(len & 0xff),
                          static_cast<unsigned char>((len >> 8) & 0xff),
                          static_cast<unsigned char>((len >> 16) & 0xff),
                          static_cast<unsigned char>((len >> 24) & 0xff)};
  return write_all(fd, reinterpret_cast<const char*>(hdr), sizeof hdr) &&
         write_all(fd, payload.data(), payload.size());
}

bool read_frame(int fd, std::string& payload) {
  unsigned char hdr[4];
  if (!read_all(fd, reinterpret_cast<char*>(hdr), sizeof hdr)) return false;
  const std::uint32_t len = static_cast<std::uint32_t>(hdr[0]) |
                            (static_cast<std::uint32_t>(hdr[1]) << 8) |
                            (static_cast<std::uint32_t>(hdr[2]) << 16) |
                            (static_cast<std::uint32_t>(hdr[3]) << 24);
  if (len > kMaxFrame) return false;
  payload.resize(len);
  return len == 0 || read_all(fd, payload.data(), len);
}

namespace {

long long parse_ll(const std::string& key, const std::string& v) {
  try {
    std::size_t pos = 0;
    const long long x = std::stoll(v, &pos);
    if (pos != v.size()) throw std::invalid_argument(v);
    return x;
  } catch (const std::exception&) {
    throw std::invalid_argument("bad integer for '" + key + "': " + v);
  }
}

double parse_d(const std::string& key, const std::string& v) {
  try {
    std::size_t pos = 0;
    const double x = std::stod(v, &pos);
    if (pos != v.size()) throw std::invalid_argument(v);
    return x;
  } catch (const std::exception&) {
    throw std::invalid_argument("bad number for '" + key + "': " + v);
  }
}

}  // namespace

Request parse_request(const std::string& text) {
  Request r;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument("malformed request line: " + line);
    }
    const std::string key = line.substr(0, eq);
    const std::string val = line.substr(eq + 1);
    if (key == "cmd") {
      if (val != "extract" && val != "stats" && val != "metrics" &&
          val != "trace" && val != "ping" && val != "shutdown" &&
          val != "session" && val != "churn" && val != "close") {
        throw std::invalid_argument("unknown cmd: " + val);
      }
      r.cmd = val;
    } else if (key == "id") {
      r.id = parse_ll(key, val);
    } else if (key == "session") {
      r.session_id = parse_ll(key, val);
    } else if (key == "canonical") {
      r.canonical = parse_ll(key, val) != 0;
    } else if (key == "rounds") {
      r.churn_rounds = static_cast<int>(parse_ll(key, val));
    } else if (key == "join_rate") {
      r.join_rate = parse_d(key, val);
    } else if (key == "leave_rate") {
      r.leave_rate = parse_d(key, val);
    } else if (key == "link_add_rate") {
      r.link_add_rate = parse_d(key, val);
    } else if (key == "link_remove_rate") {
      r.link_remove_rate = parse_d(key, val);
    } else if (key == "churn_seed") {
      r.churn_seed = static_cast<std::uint64_t>(parse_ll(key, val));
    } else if (key == "repair_interval") {
      r.repair_interval = static_cast<int>(parse_ll(key, val));
    } else if (key == "staleness_bound") {
      r.staleness_bound = static_cast<int>(parse_ll(key, val));
    } else if (key == "last") {
      r.trace_last = static_cast<int>(parse_ll(key, val));
    } else if (key == "shape") {
      r.shape = val;
    } else if (key == "nodes") {
      r.nodes = static_cast<int>(parse_ll(key, val));
    } else if (key == "avg_deg") {
      r.avg_deg = parse_d(key, val);
    } else if (key == "seed") {
      r.seed = static_cast<std::uint64_t>(parse_ll(key, val));
    } else if (key == "radio") {
      r.radio = val;
    } else if (key == "trace") {
      r.with_trace = parse_ll(key, val) != 0;
    } else if (key == "k") {
      r.params.k = static_cast<int>(parse_ll(key, val));
    } else if (key == "l") {
      r.params.l = static_cast<int>(parse_ll(key, val));
    } else if (key == "centrality_includes_self") {
      r.params.centrality_includes_self = parse_ll(key, val) != 0;
    } else if (key == "local_max_radius") {
      r.params.local_max_radius = static_cast<int>(parse_ll(key, val));
    } else if (key == "alpha") {
      r.params.alpha = static_cast<int>(parse_ll(key, val));
    } else if (key == "prune_len") {
      r.params.prune_len = static_cast<int>(parse_ll(key, val));
    } else if (key == "fake_pocket_min_size") {
      r.params.fake_pocket_min_size = static_cast<int>(parse_ll(key, val));
    } else if (key == "hole_khop_ratio") {
      r.params.hole_khop_ratio = parse_d(key, val);
    } else if (key == "thin_cycle_hops") {
      r.params.thin_cycle_hops = static_cast<int>(parse_ll(key, val));
    } else if (key == "thin_cycle_ratio") {
      r.params.thin_cycle_ratio = parse_d(key, val);
    } else {
      throw std::invalid_argument("unknown request key: " + key);
    }
  }
  return r;
}

std::string format_request(const Request& r) {
  std::ostringstream out;
  out.precision(17);  // doubles roundtrip exactly
  out << "cmd=" << r.cmd << '\n';
  out << "id=" << r.id << '\n';
  out << "shape=" << r.shape << '\n';
  out << "nodes=" << r.nodes << '\n';
  out << "avg_deg=" << r.avg_deg << '\n';
  out << "seed=" << r.seed << '\n';
  out << "radio=" << r.radio << '\n';
  out << "trace=" << (r.with_trace ? 1 : 0) << '\n';
  out << "last=" << r.trace_last << '\n';
  out << "k=" << r.params.k << '\n';
  out << "l=" << r.params.l << '\n';
  out << "centrality_includes_self=" << (r.params.centrality_includes_self ? 1 : 0)
      << '\n';
  out << "local_max_radius=" << r.params.local_max_radius << '\n';
  out << "alpha=" << r.params.alpha << '\n';
  out << "prune_len=" << r.params.prune_len << '\n';
  out << "fake_pocket_min_size=" << r.params.fake_pocket_min_size << '\n';
  out << "hole_khop_ratio=" << r.params.hole_khop_ratio << '\n';
  out << "thin_cycle_hops=" << r.params.thin_cycle_hops << '\n';
  out << "thin_cycle_ratio=" << r.params.thin_cycle_ratio << '\n';
  out << "session=" << r.session_id << '\n';
  out << "canonical=" << (r.canonical ? 1 : 0) << '\n';
  out << "rounds=" << r.churn_rounds << '\n';
  out << "join_rate=" << r.join_rate << '\n';
  out << "leave_rate=" << r.leave_rate << '\n';
  out << "link_add_rate=" << r.link_add_rate << '\n';
  out << "link_remove_rate=" << r.link_remove_rate << '\n';
  out << "churn_seed=" << r.churn_seed << '\n';
  out << "repair_interval=" << r.repair_interval << '\n';
  out << "staleness_bound=" << r.staleness_bound << '\n';
  return out.str();
}

}  // namespace skelex::svc
