// skelex/svc/protocol.h
//
// Wire protocol of the extraction service: length-prefixed frames over a
// stream socket, text requests, JSON responses.
//
//   frame    := u32-LE payload length, then that many payload bytes
//   request  := newline-separated "key=value" lines (no JSON parser in
//               this repo — requests stay trivially parsable text)
//   response := one JSON object (io::JsonWriter — byte-stable key order,
//               so cold and warm responses are diffable after stripping
//               the wall-time "millis" fields)
//
// Request keys: cmd (extract | stats | metrics | trace | ping |
// shutdown | session | churn | close), id (echoed back verbatim in the
// response), scenario selection (shape, nodes, avg_deg, seed, radio =
// "udg" | "qudg:<alpha>:<p>"), trace (0/1), last (cmd=trace: how many
// recent request span trees to return), and any core::Params field by
// name (k, l, alpha, prune_len, ...). Unknown keys are an error — a
// typo'd parameter must not silently run the default.
//
// Dynamic-scenario sessions (maintainer-backed live topologies):
// cmd=session creates one (scenario keys select the base topology;
// repair_interval / staleness_bound tune the maintainer) and returns
// its session id; cmd=churn with session=<id> applies a deterministic
// random churn batch (rounds, join_rate, leave_rate, link_add_rate,
// link_remove_rate, churn_seed); cmd=extract with session=<id> serves
// the maintained skeleton (canonical=1 adds a from-scratch cross-check
// fingerprint); cmd=close tears the session down.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "core/config.h"

namespace skelex::svc {

// --- framing -----------------------------------------------------------------

// Max accepted payload; a service must bound what it will buffer.
inline constexpr std::uint32_t kMaxFrame = 16u << 20;  // 16 MiB

// Writes one frame; retries short writes. False on any socket error
// (the caller drops the connection).
bool write_frame(int fd, std::string_view payload);

// Reads one frame into `payload`. False on EOF before/inside a frame,
// on a socket error, or on an oversized length prefix.
bool read_frame(int fd, std::string& payload);

// --- requests ----------------------------------------------------------------

struct Request {
  std::string cmd = "extract";  // see the command list above
  long long id = 0;             // echoed back; matches pipelined responses
  // Scenario selection (cmd=extract / cmd=session).
  std::string shape = "window";
  int nodes = 600;
  double avg_deg = 7.5;
  std::uint64_t seed = 1;
  std::string radio = "udg";  // "udg" or "qudg:<alpha>:<p>"
  bool with_trace = true;     // include the per-stage trace in the response
  int trace_last = 16;        // cmd=trace: newest span trees to return
  core::Params params;        // defaults with any per-request overrides

  // Dynamic-scenario sessions. session=0 means "no session": cmd=extract
  // without it is the stateless scenario extraction.
  long long session_id = 0;   // key "session"
  bool canonical = false;     // cmd=extract: cross-check vs from-scratch
  int churn_rounds = 8;       // key "rounds" (cmd=churn)
  double join_rate = 0.5;
  double leave_rate = 0.5;
  double link_add_rate = 1.0;
  double link_remove_rate = 1.0;
  std::uint64_t churn_seed = 1;
  int repair_interval = 1;    // cmd=session: maintainer cadence
  int staleness_bound = 8;    // cmd=session: watchdog bound
};

// Parses the key=value text form. Throws std::invalid_argument on
// malformed lines, unknown keys, or unparsable numbers.
Request parse_request(const std::string& text);

// The client-side inverse: every field, one per line, parse-roundtrips.
std::string format_request(const Request& r);

}  // namespace skelex::svc
