// skelex/svc/protocol.h
//
// Wire protocol of the extraction service: length-prefixed frames over a
// stream socket, text requests, JSON responses.
//
//   frame    := u32-LE payload length, then that many payload bytes
//   request  := newline-separated "key=value" lines (no JSON parser in
//               this repo — requests stay trivially parsable text)
//   response := one JSON object (io::JsonWriter — byte-stable key order,
//               so cold and warm responses are diffable after stripping
//               the wall-time "millis" fields)
//
// Request keys: cmd (extract | stats | metrics | trace | ping |
// shutdown), id (echoed back verbatim in the response), scenario
// selection (shape, nodes, avg_deg, seed, radio = "udg" |
// "qudg:<alpha>:<p>"), trace (0/1), last (cmd=trace: how many recent
// request span trees to return), and any core::Params field by name
// (k, l, alpha, prune_len, ...). Unknown keys are an error — a typo'd
// parameter must not silently run the default.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "core/config.h"

namespace skelex::svc {

// --- framing -----------------------------------------------------------------

// Max accepted payload; a service must bound what it will buffer.
inline constexpr std::uint32_t kMaxFrame = 16u << 20;  // 16 MiB

// Writes one frame; retries short writes. False on any socket error
// (the caller drops the connection).
bool write_frame(int fd, std::string_view payload);

// Reads one frame into `payload`. False on EOF before/inside a frame,
// on a socket error, or on an oversized length prefix.
bool read_frame(int fd, std::string& payload);

// --- requests ----------------------------------------------------------------

struct Request {
  std::string cmd = "extract";  // extract|stats|metrics|trace|ping|shutdown
  long long id = 0;             // echoed back; matches pipelined responses
  // Scenario selection (cmd=extract).
  std::string shape = "window";
  int nodes = 600;
  double avg_deg = 7.5;
  std::uint64_t seed = 1;
  std::string radio = "udg";  // "udg" or "qudg:<alpha>:<p>"
  bool with_trace = true;     // include the per-stage trace in the response
  int trace_last = 16;        // cmd=trace: newest span trees to return
  core::Params params;        // defaults with any per-request overrides
};

// Parses the key=value text form. Throws std::invalid_argument on
// malformed lines, unknown keys, or unparsable numbers.
Request parse_request(const std::string& text);

// The client-side inverse: every field, one per line, parse-roundtrips.
std::string format_request(const Request& r);

}  // namespace skelex::svc
