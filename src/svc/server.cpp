#include "svc/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "exec/thread_pool.h"
#include "io/json.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/request_trace.h"
#include "obs/trace.h"
#include "svc/protocol.h"

namespace skelex::svc {

namespace {

sockaddr_in loopback(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  return addr;
}

// svc_queue_wait_ms buckets: a healthy pool dequeues in microseconds;
// the tail shows saturation.
const std::vector<double>& queue_wait_bounds_ms() {
  static const std::vector<double> b{0.05, 0.1, 0.25, 0.5, 1,
                                     2.5,  5,   10,   25,  100};
  return b;
}

}  // namespace

Server::Connection::~Connection() {
  if (fd >= 0) ::close(fd);
}

Server::Server(ExtractionService& service, exec::ThreadPool& pool,
               std::uint16_t port)
    : Server(service, pool, port, Options()) {}

Server::Server(ExtractionService& service, exec::ThreadPool& pool,
               std::uint16_t port, Options opt)
    : service_(service), pool_(pool), opt_(opt) {
  // Admission control needs real workers behind submit(): a 1-thread
  // pool runs tasks inline on the reader thread, so the reader never
  // gets back to read_frame while a request executes and in_flight can
  // never exceed the worker count — the busy rejection would be dead
  // code that silently never fires. Refuse the misconfiguration at
  // startup instead.
  if (opt_.max_queue > 0 && pool.thread_count() < 2) {
    throw std::invalid_argument(
        "svc::Server: max_queue > 0 requires a pool with >= 2 workers "
        "(a 1-thread pool runs submit() inline on the reader, so the "
        "busy rejection can never fire); use a bigger pool or disable "
        "admission control with max_queue <= 0");
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw std::runtime_error("socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr = loopback(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0 ||
      ::listen(listen_fd_, 128) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("cannot listen on 127.0.0.1:" +
                             std::to_string(port));
  }
  socklen_t len = sizeof addr;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  obs::log_info("server_listening",
                {{"port", static_cast<std::int64_t>(port_)}});
  accept_thread_ = std::thread([this] { accept_loop(); });
}

Server::~Server() { stop(); }

void Server::accept_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed by stop()
    }
    if (stopping_.load()) {
      ::close(fd);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    static std::atomic<std::uint64_t> next_conn_id{1};
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    conn->id = next_conn_id.fetch_add(1, std::memory_order_relaxed);
    obs::Registry::global().counter("svc_connections_opened_total").inc();
    obs::log_info("conn_accepted",
                  {{"conn", static_cast<std::int64_t>(conn->id)}});
    std::lock_guard<std::mutex> lock(mu_);
    conns_.push_back(conn);
    conn_threads_.emplace_back(
        [this, conn = std::move(conn)]() mutable { reader_loop(std::move(conn)); });
  }
}

void Server::reject_busy(Connection& conn, const std::string& payload) {
  rejected_.fetch_add(1, std::memory_order_relaxed);
  obs::Registry::global().counter("svc_rejected_total").inc();
  // Best-effort id echo so a pipelining client can match the rejection
  // to its request; an unparsable frame still gets the busy response
  // (with id 0) — the parse error surfaces on retry.
  long long id = 0;
  try {
    id = parse_request(payload).id;
  } catch (const std::exception&) {
  }
  obs::log_warn("request_rejected_busy",
                {{"conn", static_cast<std::int64_t>(conn.id)},
                 {"in_flight", static_cast<std::int64_t>(in_flight_.load())},
                 {"max_queue", static_cast<std::int64_t>(opt_.max_queue)}});
  io::JsonWriter w;
  w.begin_object();
  w.key("id").value(id);
  w.key("ok").value(false);
  w.key("error").value("busy");
  w.key("retry_ms").value(opt_.busy_retry_ms);
  w.end_object();
  std::lock_guard<std::mutex> write_lock(conn.write_mu);
  write_frame(conn.fd, w.str());
}

void Server::reader_loop(std::shared_ptr<Connection> conn) {
  std::string payload;
  while (!stopping_.load() && read_frame(conn->fd, payload)) {
    // Admission control: beyond max_queue admitted-but-unfinished
    // requests, shed THIS frame right here on the reader — the pool's
    // FIFO must not grow without bound under a pipelining client.
    if (opt_.max_queue > 0 && in_flight_.load() >= opt_.max_queue) {
      reject_busy(*conn, payload);
      continue;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++pending_;
    }
    const int now = in_flight_.fetch_add(1) + 1;
    int peak = max_in_flight_.load();
    while (now > peak && !max_in_flight_.compare_exchange_weak(peak, now)) {
    }
    {
      static const obs::Gauge inflight =
          obs::Registry::global().gauge("svc_inflight_peak");
      inflight.set(static_cast<double>(now));
    }
    // The request id is assigned HERE, on the reader, so the queue wait
    // it is about to incur belongs to the same span tree as the
    // handling; the worker stamps dequeue_us when it picks the task up.
    WireContext wire;
    wire.request_id = obs::RequestContext::next_id();
    wire.connection = conn->id;
    wire.enqueue_us = obs::Tracer::now_us();
    // The reader goes straight back to read_frame after this submit, so
    // a connection can pipeline an unbounded number of requests; the
    // pool bounds how many execute at once.
    pool_.submit([this, conn, payload, wire]() mutable {
      handle_frame(std::move(conn), std::move(payload), wire);
    });
  }
  ::shutdown(conn->fd, SHUT_RD);
  obs::Registry::global().counter("svc_connections_closed_total").inc();
  obs::log_info("conn_closed",
                {{"conn", static_cast<std::int64_t>(conn->id)}});
}

void Server::handle_frame(std::shared_ptr<Connection> conn,
                          std::string payload, WireContext wire) {
  wire.dequeue_us = obs::Tracer::now_us();
  {
    auto& reg = obs::Registry::global();
    static const obs::Histogram wait =
        reg.histogram("svc_queue_wait_ms", queue_wait_bounds_ms());
    wait.observe((wire.dequeue_us - wire.enqueue_us) / 1000.0);
  }
  bool shutdown_after = false;
  std::string response;
  try {
    const Request req = parse_request(payload);
    shutdown_after = req.cmd == "shutdown";
    response = service_.handle(req, &wire);
  } catch (const std::exception& e) {
    // parse errors: the service never saw the request
    obs::Registry::global().counter("svc_errors_total").inc();
    obs::log_warn("bad_request",
                  {{"conn", static_cast<std::int64_t>(conn->id)},
                   {"error", e.what()}});
    io::JsonWriter w;
    w.begin_object();
    w.key("id").value(0);
    w.key("ok").value(false);
    w.key("error").value(e.what());
    w.end_object();
    response = w.str();
  }
  {
    std::lock_guard<std::mutex> write_lock(conn->write_mu);
    write_frame(conn->fd, response);
  }
  {
    auto& reg = obs::Registry::global();
    static const obs::Counter served = reg.counter("svc_requests_served");
    served.inc();
  }
  if (shutdown_after) {
    // Client-driven shutdown: flip the flag and wake the listener BEFORE
    // this request leaves the drain count, so stop() cannot finish its
    // drain wait (and close listen_fd_) while this block still runs.
    // Must not call stop() here — it joins threads, including possibly
    // this task's own reader.
    obs::log_info("shutdown_requested",
                  {{"conn", static_cast<std::int64_t>(conn->id)}});
    stopping_.store(true);
    ::shutdown(listen_fd_, SHUT_RDWR);
  }
  in_flight_.fetch_sub(1);
  {
    std::lock_guard<std::mutex> lock(mu_);
    --pending_;
  }
  drained_cv_.notify_all();
}

void Server::stop() {
  const bool was_stopping = stopping_.exchange(true);
  if (!was_stopping) {
    obs::log_info("server_stopping",
                  {{"port", static_cast<std::int64_t>(port_)}});
  }
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  // Readers blocked inside read_frame need a nudge: shut their sockets
  // down for reading so the blocked read() returns 0 (already-written
  // and still-pending responses are unaffected — writes stay open).
  std::vector<std::thread> readers;
  std::vector<std::weak_ptr<Connection>> conns;
  {
    std::lock_guard<std::mutex> lock(mu_);
    readers.swap(conn_threads_);
    conns.swap(conns_);
  }
  for (const std::weak_ptr<Connection>& weak : conns) {
    if (auto conn = weak.lock()) ::shutdown(conn->fd, SHUT_RD);
  }
  for (std::thread& t : readers) {
    if (t.joinable()) t.join();
  }
  {
    // Every accepted request runs to completion before stop() returns.
    std::unique_lock<std::mutex> lock(mu_);
    drained_cv_.wait(lock, [this] { return pending_ == 0; });
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    obs::log_info("server_drained",
                  {{"port", static_cast<std::int64_t>(port_)}});
  }
}

void Server::serve_forever() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    drained_cv_.wait(lock, [this] { return stopping_.load(); });
  }
  stop();
}

Client::Client(std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw std::runtime_error("socket() failed");
  sockaddr_in addr = loopback(port);
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("cannot connect to 127.0.0.1:" +
                             std::to_string(port));
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

bool Client::send(const Request& req) {
  return write_frame(fd_, format_request(req));
}

bool Client::recv(std::string& response_json) {
  return read_frame(fd_, response_json);
}

std::string Client::request(const Request& req) {
  if (!send(req)) throw std::runtime_error("send failed (server gone?)");
  std::string response;
  if (!recv(response)) throw std::runtime_error("no response (server gone?)");
  return response;
}

}  // namespace skelex::svc
