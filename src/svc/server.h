// skelex/svc/server.h
//
// The batched extraction server: a loopback TCP listener in front of an
// ExtractionService, scheduling request handling onto a shared
// exec::ThreadPool.
//
// Threading model:
//   * one accept thread (blocking accept(2), woken by closing the
//     listen socket on stop);
//   * one reader thread per connection — it only parses frames and
//     submits work, so a slow pipeline never stalls frame intake;
//   * the actual extraction runs on the pool via submit(), so up to
//     thread_count() requests are in flight at once and the rest queue
//     in FIFO order. Any number of requests may be pipelined on one
//     connection; responses carry the request's echoed `id` and may
//     arrive out of order.
//
// Each connection serializes its response frames through a per-
// connection write mutex (frames from concurrent pool tasks must not
// interleave). Connections are shared_ptr-held so a task finishing
// after the peer hung up writes into a dead-but-valid fd, not a freed
// object.
//
// Admission control: requests admitted but not yet responded to are
// bounded by Options::max_queue. Once the bound is reached, further
// frames are rejected immediately on the reader thread with a
// structured busy response ({"ok": false, "error": "busy",
// "retry_ms": ...}) instead of queueing without bound — a pipelining
// client sees backpressure as data, not as latency. Rejections count
// into svc_rejected_total. Admission control requires a pool with at
// least 2 workers: on a 1-thread pool submit() runs inline on the
// reader, so the queue can never grow and rejection would silently be
// dead code — the constructor throws std::invalid_argument for that
// combination (see Options::max_queue).
//
// Shutdown (stop() or a client's cmd=shutdown): the listener closes, the
// per-connection readers stop accepting frames, and stop() drains — it
// waits for every in-flight request to finish writing before returning,
// so no accepted request is ever silently dropped.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "svc/service.h"

namespace skelex::exec {
class ThreadPool;
}

namespace skelex::svc {

class Server {
 public:
  struct Options {
    // Max requests admitted but not yet fully responded to (queued +
    // executing), across all connections. Over-limit frames get an
    // immediate busy rejection. <= 0 disables the bound. The default is
    // generous: it exists to stop unbounded memory growth under a
    // runaway pipelining client, not to shed normal load.
    //
    // Enabling the bound requires pool.thread_count() >= 2 — with one
    // worker submit() executes inline on the reader thread, requests
    // can never pile up behind the pool, and the rejection path would
    // be unreachable. The Server constructor enforces this floor with
    // std::invalid_argument rather than shipping a limit that cannot
    // trigger.
    int max_queue = 1024;
    // The retry hint stamped into busy responses.
    int busy_retry_ms = 50;
  };

  // Binds and listens on 127.0.0.1:port (port 0 picks an ephemeral
  // port — read it back via port()) and starts the accept thread.
  // Requests run on `pool`. Throws std::runtime_error if binding fails.
  Server(ExtractionService& service, exec::ThreadPool& pool,
         std::uint16_t port = 0);
  Server(ExtractionService& service, exec::ThreadPool& pool,
         std::uint16_t port, Options opt);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  std::uint16_t port() const { return port_; }

  // Idempotent: closes the listener, waits for in-flight requests to
  // drain and for all connection threads to exit.
  void stop();

  // Blocks until stop() is triggered (by any thread or by a client's
  // cmd=shutdown), then drains like stop().
  void serve_forever();

  // Observability for tests and the bench: current and peak number of
  // requests accepted but not yet fully responded to, plus how many
  // frames admission control turned away.
  int in_flight() const { return in_flight_.load(); }
  int max_in_flight() const { return max_in_flight_.load(); }
  long long rejected() const { return rejected_.load(); }

 private:
  struct Connection {
    int fd = -1;
    std::uint64_t id = 0;  // accept ordinal, stamped into logs
    std::mutex write_mu;   // response frames must not interleave
    ~Connection();         // last holder (reader or a late task) closes fd
  };

  void accept_loop();
  void reader_loop(std::shared_ptr<Connection> conn);
  // `wire` carries the reader-side request id and pool-hop timestamps
  // into the service's span tree (svc/service.h WireContext).
  void handle_frame(std::shared_ptr<Connection> conn, std::string payload,
                    WireContext wire);
  // Writes the structured busy rejection for an over-limit frame (on
  // the reader thread — the pool is exactly what's saturated).
  void reject_busy(Connection& conn, const std::string& payload);

  ExtractionService& service_;
  exec::ThreadPool& pool_;
  Options opt_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;

  std::thread accept_thread_;
  std::mutex mu_;
  std::condition_variable drained_cv_;
  std::vector<std::thread> conn_threads_;  // joined in stop()
  std::vector<std::weak_ptr<Connection>> conns_;  // for the stop() nudge
  std::atomic<bool> stopping_{false};
  std::atomic<int> in_flight_{0};
  std::atomic<int> max_in_flight_{0};
  std::atomic<long long> rejected_{0};
  int pending_ = 0;  // in-flight requests, under mu_ (for the drain wait)
};

// Minimal blocking client for tests, the bench load generator, and the
// command-line daemon's own smoke mode: connect, send requests, read
// response frames.
class Client {
 public:
  // Connects to 127.0.0.1:port; throws std::runtime_error on failure.
  explicit Client(std::uint16_t port);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  // One frame out / in. send() returns false when the peer hung up.
  bool send(const Request& req);
  bool recv(std::string& response_json);

  // Convenience: send + wait for the matching response (responses may
  // arrive out of order when requests are pipelined, so this must only
  // be used on an otherwise-quiet connection).
  std::string request(const Request& req);

 private:
  int fd_ = -1;
};

}  // namespace skelex::svc
