#include "svc/service.h"

#include <algorithm>
#include <cstdio>
#include <exception>
#include <memory>
#include <utility>
#include <vector>

#include "core/fingerprint.h"
#include "core/pipeline.h"
#include "deploy/scenario.h"
#include "geometry/shapes.h"
#include "io/json.h"
#include "obs/export.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/request_trace.h"
#include "obs/trace.h"
#include "radio/radio_model.h"
#include "svc/protocol.h"

namespace skelex::svc {

namespace {

// Approximate retained size of a scenario entry for the cache's byte
// budget: positions + adjacency (ints both sides of every edge).
std::size_t scenario_bytes(const deploy::Scenario& s) {
  return sizeof(deploy::Scenario) +
         static_cast<std::size_t>(s.graph.n()) * sizeof(geom::Vec2) +
         static_cast<std::size_t>(s.graph.edge_count()) * 4 * sizeof(int);
}

// "qudg:<alpha>:<p>" → (alpha, p). Throws invalid_argument on anything
// that is not "udg" or a well-formed qudg spec.
bool parse_radio(const std::string& radio, double* alpha, double* p) {
  if (radio == "udg") return false;
  if (radio.rfind("qudg:", 0) == 0) {
    const std::size_t colon = radio.find(':', 5);
    if (colon != std::string::npos) {
      try {
        std::size_t pos = 0;
        const std::string a = radio.substr(5, colon - 5);
        const std::string b = radio.substr(colon + 1);
        *alpha = std::stod(a, &pos);
        if (pos != a.size()) throw std::invalid_argument(a);
        *p = std::stod(b, &pos);
        if (pos == b.size()) return true;
      } catch (const std::exception&) {
        // fall through to the throw below
      }
    }
  }
  throw std::invalid_argument("unknown radio model: " + radio);
}

std::string hex_fingerprint(std::uint64_t fp) {
  char buf[19];
  std::snprintf(buf, sizeof buf, "0x%016llx",
                static_cast<unsigned long long>(fp));
  return buf;
}

std::string error_response(long long id, const std::string& what) {
  io::JsonWriter w;
  w.begin_object();
  w.key("id").value(id);
  w.key("ok").value(false);
  w.key("error").value(what);
  w.end_object();
  return w.str();
}

// svc_request_ms bucket bounds: sub-millisecond warm hits through
// second-scale cold extractions of large deployments.
const std::vector<double>& latency_bounds_ms() {
  static const std::vector<double> b{0.1, 0.25, 0.5,  1,   2.5, 5,
                                     10,  25,   50,  100, 250, 1000};
  return b;
}

}  // namespace

ExtractionService::Session::Session(std::uint64_t sid,
                                    std::shared_ptr<const deploy::Scenario> s,
                                    core::MaintainOptions opt)
    : id(sid),
      scenario(std::move(s)),
      topo(scenario->graph),
      maint(topo, std::move(opt)) {}

ExtractionService::ExtractionService() : ExtractionService(Options{}) {}

ExtractionService::ExtractionService(Options opt)
    : opt_(opt),
      cache_(core::memo::StageCache::Options{opt.cache_bytes,
                                             opt.cache_entries}),
      trace_store_(opt.trace_keep) {}

std::string ExtractionService::handle(const std::string& request_text) {
  Request req;
  try {
    req = parse_request(request_text);
  } catch (const std::exception& e) {
    obs::Registry::global().counter("svc_errors_total").inc();
    obs::log_warn("bad_request", {{"error", e.what()}});
    return error_response(0, e.what());
  }
  return handle(req);
}

std::string ExtractionService::handle(const Request& req,
                                      const WireContext* wire) {
  const std::uint64_t rid = (wire != nullptr && wire->request_id != 0)
                                ? wire->request_id
                                : obs::RequestContext::next_id();
  obs::RequestContext ctx(rid, opt_.trace_requests);
  obs::ScopedRequestContext install(&ctx);
  const double t0 = obs::Tracer::now_us();

  const int root = ctx.begin_span("svc.request", "svc");
  if (root >= 0 && wire != nullptr && wire->dequeue_us > wire->enqueue_us) {
    // The pool hop happened before this context existed; graft it into
    // the tree with the reader thread's timestamps (its relative start
    // is negative — the wait preceded handling).
    ctx.add_complete_span("exec.queue_wait", "exec", wire->enqueue_us,
                          wire->dequeue_us);
  }

  bool ok = true;
  std::string response;
  try {
    response = dispatch(req);
  } catch (const std::exception& e) {
    ok = false;
    obs::log_error("request_failed", {{"cmd", req.cmd}, {"error", e.what()}});
    response = error_response(req.id, e.what());
  }
  ctx.end_span(root);

  const double total_us = obs::Tracer::now_us() - t0;
  const double ms = total_us / 1000.0;
  const char* tier = ctx.tier();
  auto& reg = obs::Registry::global();
  reg.counter("svc_requests_total", {{"cmd", req.cmd}}).inc();
  if (!ok) reg.counter("svc_errors_total").inc();
  reg.histogram("svc_request_ms", latency_bounds_ms(),
                {{"cmd", req.cmd}, {"tier", tier}})
      .observe(ms);
  if (ok && opt_.slow_request_ms > 0 && ms >= opt_.slow_request_ms) {
    reg.counter("svc_slow_requests_total").inc();
    obs::log_warn("slow_request", {{"cmd", req.cmd},
                                   {"tier", tier},
                                   {"req_ms", ms},
                                   {"threshold_ms", opt_.slow_request_ms}});
  }

  // Only extract trees are worth keeping: a periodic metrics scrape must
  // not evict the interesting traces from the bounded ring.
  if (ok && ctx.recording() && req.cmd == "extract") {
    obs::RequestTraceStore::Finished f;
    f.request_id = rid;
    f.cmd = req.cmd;
    f.tier = tier;
    f.total_us = total_us;
    f.dropped_spans = ctx.dropped_spans;
    f.spans = std::move(ctx.spans);
    trace_store_.add(std::move(f));
  }
  return response;
}

std::string ExtractionService::dispatch(const Request& req) {
  if (req.cmd == "extract") {
    return req.session_id != 0 ? handle_session_extract(req)
                               : handle_extract(req);
  }
  if (req.cmd == "stats") return handle_stats(req);
  if (req.cmd == "metrics") return handle_metrics(req);
  if (req.cmd == "trace") return handle_trace(req);
  if (req.cmd == "session") return handle_session(req);
  if (req.cmd == "churn") return handle_churn(req);
  if (req.cmd == "close") return handle_close(req);
  // ping and shutdown get a bare acknowledgement (the server layer
  // implements shutdown's side effect; the service just echoes).
  io::JsonWriter w;
  w.begin_object();
  w.key("id").value(req.id);
  w.key("ok").value(true);
  w.key("cmd").value(req.cmd);
  w.end_object();
  return w.str();
}

std::shared_ptr<const deploy::Scenario> ExtractionService::scenario_for(
    const Request& req) {
  obs::RequestSpan span("svc.scenario", "svc");
  span.arg("nodes", req.nodes);
  if (req.nodes < 1 || req.nodes > 2'000'000) {
    throw std::invalid_argument("nodes out of range");
  }
  double qudg_alpha = 0, qudg_p = 0;
  const bool qudg = parse_radio(req.radio, &qudg_alpha, &qudg_p);

  core::Fnv f;
  f.bytes("scenario", 8);
  f.bytes(req.shape.data(), req.shape.size());
  f.i32(req.nodes);
  f.f64(req.avg_deg);
  f.u64(req.seed);
  f.bytes(req.radio.data(), req.radio.size());
  const std::uint64_t key = f.h;

  if (auto hit = cache_.find<deploy::Scenario>(key, "scenario")) return hit;

  const geom::Region region = geom::shapes::by_name(req.shape);
  deploy::ScenarioSpec spec;
  spec.target_nodes = req.nodes;
  spec.target_avg_deg = req.avg_deg;
  spec.seed = req.seed;
  deploy::Scenario s;
  if (qudg) {
    // Calibrate the nominal range on the deployment itself (the same
    // positions make_scenario will regenerate from the same seed).
    deploy::Rng rng(spec.seed);
    const std::vector<geom::Vec2> pts =
        deploy::scenario_positions(region, spec, rng);
    const double range = deploy::calibrate_range(pts, spec.target_avg_deg);
    const radio::QuasiUnitDiskModel model(range, qudg_alpha, qudg_p);
    s = deploy::make_scenario(region, spec, model);
  } else {
    s = deploy::make_udg_scenario(region, spec);
  }
  // Pre-build the CSR (and thereby finalize) BEFORE publishing: cache
  // values are shared across threads, and Graph's lazy finalize/csr
  // mutate internal state on first read.
  s.graph.csr();
  auto value = std::make_shared<const deploy::Scenario>(std::move(s));
  const std::size_t bytes = scenario_bytes(*value);
  return cache_.insert<deploy::Scenario>(key, "scenario", std::move(value),
                                         bytes);
}

std::string ExtractionService::handle_extract(const Request& req) {
  const std::shared_ptr<const deploy::Scenario> scen = scenario_for(req);
  const core::SkeletonResult r =
      core::extract_skeleton(scen->graph, req.params, &cache_);

  io::JsonWriter w;
  w.begin_object();
  w.key("id").value(req.id);
  w.key("ok").value(true);
  w.key("n").value(scen->graph.n());
  w.key("edges").value(scen->graph.edge_count());
  w.key("critical").value(static_cast<int>(r.critical_nodes.size()));
  w.key("skeleton_nodes").value(r.skeleton.node_count());
  w.key("skeleton_edges").value(r.skeleton.edge_count());
  w.key("cycle_rank").value(r.skeleton_cycle_rank());
  w.key("components").value(r.skeleton_components());
  w.key("fake_loops_removed").value(r.fake_loops_removed);
  w.key("pruned_nodes").value(r.pruned_nodes);
  w.key("fingerprint").value(hex_fingerprint(core::result_fingerprint(r)));
  w.key("warnings").begin_array();
  for (const std::string& msg : r.diagnostics.warnings) w.value(msg);
  w.end_array();
  if (req.with_trace) {
    w.key("trace").begin_array();
    for (const core::StageTrace::Stage& s : r.trace.stages) {
      w.begin_object();
      w.key("stage").value(s.name);
      w.key("millis").value(s.millis);
      w.key("nodes").value(s.nodes);
      w.key("messages").value(s.messages);
      w.end_object();
    }
    w.end_array();
  }
  w.end_object();
  return w.str();
}

namespace {

// A deterministic random churn batch for a LIVE topology: the generator
// (ChurnScript::random) assumes an all-active base with ids [0, n), so
// it runs over the compacted active subgraph and the result is remapped
// into the session's stable id space — surviving nodes back to their
// stable ids, generated joins onto fresh ids past the current capacity
// (DynamicTopology requires join ids to extend the stable space
// contiguously, which the sequential remap preserves).
sim::ChurnScript session_churn_script(const sim::DynamicTopology& topo,
                                      double range, const Request& req) {
  std::vector<int> orig_of_new;
  const net::Graph compact = topo.active_subgraph(&orig_of_new);

  sim::ChurnScript::RandomSpec spec;
  spec.rounds = req.churn_rounds;
  spec.join_rate = req.join_rate;
  spec.leave_rate = req.leave_rate;
  spec.link_add_rate = req.link_add_rate;
  spec.link_remove_rate = req.link_remove_rate;
  spec.range = range;
  const sim::ChurnScript compact_script =
      sim::ChurnScript::random(compact, spec, req.churn_seed);

  const int compact_n = compact.n();
  const int stable_n = topo.n();
  const auto remap = [&](int v) {
    return v < compact_n ? orig_of_new[static_cast<std::size_t>(v)]
                         : stable_n + (v - compact_n);
  };
  sim::ChurnScript out;
  for (sim::ChurnEvent e : compact_script.events()) {
    if (e.node >= 0) e.node = remap(e.node);
    for (int& t : e.links) t = remap(t);
    if (e.u >= 0) e.u = remap(e.u);
    if (e.v >= 0) e.v = remap(e.v);
    out.add(std::move(e));
  }
  return out;
}

// The shared session response core: topology + skeleton shape + health.
void write_session_state(io::JsonWriter& w, const sim::DynamicTopology& topo,
                         const core::SkeletonMaintainer& maint) {
  w.key("n").value(topo.n());
  w.key("active").value(topo.active_count());
  w.key("skeleton_nodes").value(maint.served().skeleton.node_count());
  w.key("skeleton_edges").value(maint.served().skeleton.edge_count());
  w.key("staleness").value(maint.staleness());
  w.key("healthy").value(maint.healthy());
  w.key("fingerprint").value(hex_fingerprint(maint.served_fingerprint()));
}

}  // namespace

std::string ExtractionService::handle_session(const Request& req) {
  obs::RequestSpan span("svc.session", "svc");
  const std::shared_ptr<const deploy::Scenario> scen = scenario_for(req);

  core::MaintainOptions mopt;
  mopt.params = req.params;
  mopt.repair_interval = req.repair_interval;
  mopt.staleness_bound = req.staleness_bound;
  mopt.cache = &cache_;

  std::uint64_t sid = 0;
  {
    std::lock_guard<std::mutex> lk(sessions_mu_);
    sid = next_session_id_++;
  }
  auto session = std::make_shared<Session>(sid, scen, std::move(mopt));
  session->maint.initialize();
  span.arg("session", static_cast<std::int64_t>(sid));
  span.arg("nodes", session->topo.n());

  std::size_t open = 0;
  {
    std::lock_guard<std::mutex> lk(sessions_mu_);
    sessions_[sid] = session;
    open = sessions_.size();
  }
  auto& reg = obs::Registry::global();
  reg.counter("svc_sessions_opened_total").inc();
  reg.gauge("svc_sessions_open_peak").set(static_cast<double>(open));

  io::JsonWriter w;
  w.begin_object();
  w.key("id").value(req.id);
  w.key("ok").value(true);
  w.key("session").value(static_cast<long long>(sid));
  write_session_state(w, session->topo, session->maint);
  w.end_object();
  return w.str();
}

std::string ExtractionService::handle_churn(const Request& req) {
  obs::RequestSpan span("svc.churn", "svc");
  const std::shared_ptr<Session> s = find_session(req.session_id);
  if (s == nullptr) {
    throw std::invalid_argument("unknown session: " +
                                std::to_string(req.session_id));
  }
  if (req.churn_rounds < 1 || req.churn_rounds > 100000) {
    throw std::invalid_argument("rounds out of range");
  }
  span.arg("session", req.session_id);
  span.arg("rounds", req.churn_rounds);

  std::lock_guard<std::mutex> lk(s->mu);
  const core::MaintainStats before = s->maint.stats();
  const sim::ChurnScript script =
      session_churn_script(s->topo, s->scenario->range, req);
  for (int r = 0; r < req.churn_rounds; ++r) s->maint.advance(script, r);
  // Flush dirt a lazy cadence (repair_interval > 1) left pending, so
  // every churn response describes a fully repaired skeleton.
  s->maint.repair_now();

  const core::MaintainStats& after = s->maint.stats();
  s->rounds_total += req.churn_rounds;
  s->events_total += after.events - before.events;
  auto& reg = obs::Registry::global();
  reg.counter("svc_session_churn_rounds_total").inc(req.churn_rounds);
  reg.counter("svc_session_churn_events_total")
      .inc(after.events - before.events);

  io::JsonWriter w;
  w.begin_object();
  w.key("id").value(req.id);
  w.key("ok").value(true);
  w.key("session").value(req.session_id);
  w.key("rounds").value(req.churn_rounds);
  w.key("events").value(after.events - before.events);
  w.key("script_digest").value(hex_fingerprint(script.digest()));
  w.key("repairs_local").value(after.repairs_local - before.repairs_local);
  w.key("repairs_regional")
      .value(after.repairs_regional - before.repairs_regional);
  w.key("repairs_full").value(after.repairs_full - before.repairs_full);
  w.key("escalations").value(after.escalations - before.escalations);
  write_session_state(w, s->topo, s->maint);
  w.end_object();
  return w.str();
}

std::string ExtractionService::handle_session_extract(const Request& req) {
  obs::RequestSpan span("svc.session_extract", "svc");
  const std::shared_ptr<Session> s = find_session(req.session_id);
  if (s == nullptr) {
    throw std::invalid_argument("unknown session: " +
                                std::to_string(req.session_id));
  }
  span.arg("session", req.session_id);

  std::lock_guard<std::mutex> lk(s->mu);
  const core::SkeletonResult& r = s->maint.served();
  const core::InvariantReport rep = s->maint.check();

  io::JsonWriter w;
  w.begin_object();
  w.key("id").value(req.id);
  w.key("ok").value(true);
  w.key("session").value(req.session_id);
  w.key("critical").value(static_cast<int>(r.critical_nodes.size()));
  w.key("cycle_rank").value(r.skeleton_cycle_rank());
  w.key("components").value(r.skeleton_components());
  w.key("invariants_ok").value(rep.ok());
  write_session_state(w, s->topo, s->maint);
  if (req.canonical) {
    // From-scratch cross-check on the current topology: the maintained
    // skeleton must match the canonical extraction bit for bit.
    const core::SkeletonResult canon = s->maint.canonical();
    const std::uint64_t canon_fp =
        core::skeleton_fingerprint(canon.skeleton);
    w.key("canonical_fingerprint").value(hex_fingerprint(canon_fp));
    w.key("matches_canonical")
        .value(canon_fp == s->maint.served_fingerprint());
  }
  w.end_object();
  return w.str();
}

std::string ExtractionService::handle_close(const Request& req) {
  const std::shared_ptr<Session> s = find_session(req.session_id);
  if (s == nullptr) {
    throw std::invalid_argument("unknown session: " +
                                std::to_string(req.session_id));
  }
  {
    std::lock_guard<std::mutex> lk(sessions_mu_);
    sessions_.erase(static_cast<std::uint64_t>(req.session_id));
  }
  obs::Registry::global().counter("svc_sessions_closed_total").inc();

  std::lock_guard<std::mutex> lk(s->mu);
  io::JsonWriter w;
  w.begin_object();
  w.key("id").value(req.id);
  w.key("ok").value(true);
  w.key("session").value(req.session_id);
  w.key("closed").value(true);
  w.key("rounds_total").value(s->rounds_total);
  w.key("events_total").value(s->events_total);
  w.end_object();
  return w.str();
}

std::shared_ptr<ExtractionService::Session> ExtractionService::find_session(
    long long id) const {
  std::lock_guard<std::mutex> lk(sessions_mu_);
  const auto it = sessions_.find(static_cast<std::uint64_t>(id));
  return it == sessions_.end() ? nullptr : it->second;
}

std::size_t ExtractionService::session_count() const {
  std::lock_guard<std::mutex> lk(sessions_mu_);
  return sessions_.size();
}

std::string ExtractionService::handle_stats(const Request& req) {
  const core::memo::CacheStats st = cache_.stats();
  io::JsonWriter w;
  w.begin_object();
  w.key("id").value(req.id);
  w.key("ok").value(true);
  w.key("hits").value(static_cast<long long>(st.hits));
  w.key("misses").value(static_cast<long long>(st.misses));
  w.key("insertions").value(static_cast<long long>(st.insertions));
  w.key("evictions").value(static_cast<long long>(st.evictions));
  w.key("bytes").value(static_cast<long long>(st.bytes));
  w.key("entries").value(static_cast<long long>(st.entries));
  w.end_object();
  return w.str();
}

std::string ExtractionService::handle_metrics(const Request& req) {
  const obs::MetricSnapshot snap = obs::Registry::global().snapshot();
  io::JsonWriter w;
  w.begin_object();
  w.key("id").value(req.id);
  w.key("ok").value(true);
  w.key("metrics");
  snap.write_json(w);
  w.key("exposition").value(obs::render_prometheus(snap));
  w.end_object();
  return w.str();
}

std::string ExtractionService::handle_trace(const Request& req) {
  const std::size_t n =
      static_cast<std::size_t>(std::max(0, req.trace_last));
  io::JsonWriter w;
  w.begin_object();
  w.key("id").value(req.id);
  w.key("ok").value(true);
  w.key("tracing").value(opt_.trace_requests);
  w.key("kept").value(static_cast<long long>(trace_store_.size()));
  w.key("requests");
  trace_store_.write_json(w, n);
  w.end_object();
  return w.str();
}

}  // namespace skelex::svc
