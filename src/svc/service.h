// skelex/svc/service.h
//
// The extraction service: request in, JSON response out. This is the
// transport-free core of the daemon — svc/server.h runs it behind a
// socket, tests and bench_service call handle() directly.
//
// Every extract request runs the full stage-command pipeline against a
// process-wide core/memo StageCache, so concurrent requests for the
// same deployment share stage outputs: two clients asking for the same
// (shape, nodes, avg_deg, seed, radio) graph with different cleanup or
// prune parameters share stages 1-3 outright, and repeated requests are
// answered from warm stage outputs entirely. Deployment scenarios
// (deploy + radio + largest component — the most expensive non-stage
// work) are memoized in the same cache under a "scenario" stage tag.
//
// Responses are io::JsonWriter objects with byte-stable key order; the
// only nondeterministic fields are the "millis" wall-time entries, so
// cold and warm responses to one request are byte-identical after
// stripping those — the invariant the CI memo-determinism gate diffs.
//
// Thread safety: handle() is fully reentrant — the scenario/stage
// caches do their own locking and everything else is request-local.
#pragma once

#include <cstddef>
#include <memory>
#include <string>

#include "core/memo/stage_cache.h"
#include "svc/protocol.h"

namespace skelex::deploy {
struct Scenario;
}

namespace skelex::svc {

class ExtractionService {
 public:
  struct Options {
    std::size_t cache_bytes = std::size_t{256} << 20;  // stage memo budget
    std::size_t cache_entries = 4096;
  };

  ExtractionService();
  explicit ExtractionService(Options opt);

  ExtractionService(const ExtractionService&) = delete;
  ExtractionService& operator=(const ExtractionService&) = delete;

  // Parses and dispatches one request; never throws — malformed requests
  // produce an {"ok": false, "error": ...} response.
  std::string handle(const std::string& request_text);
  std::string handle(const Request& req);

  core::memo::CacheStats cache_stats() const { return cache_.stats(); }

 private:
  std::string handle_extract(const Request& req);
  std::string handle_stats(const Request& req);
  std::shared_ptr<const deploy::Scenario> scenario_for(const Request& req);

  core::memo::StageCache cache_;
};

}  // namespace skelex::svc
