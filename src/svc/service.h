// skelex/svc/service.h
//
// The extraction service: request in, JSON response out. This is the
// transport-free core of the daemon — svc/server.h runs it behind a
// socket, tests and bench_service call handle() directly.
//
// Every extract request runs the full stage-command pipeline against a
// process-wide core/memo StageCache, so concurrent requests for the
// same deployment share stage outputs: two clients asking for the same
// (shape, nodes, avg_deg, seed, radio) graph with different cleanup or
// prune parameters share stages 1-3 outright, and repeated requests are
// answered from warm stage outputs entirely. Deployment scenarios
// (deploy + radio + largest component — the most expensive non-stage
// work) are memoized in the same cache under a "scenario" stage tag.
//
// Observability (obs/request_trace.h): handle() wraps every request in
// a RequestContext, so the stage commands, memo cache, and queue wait
// report into one parented span tree per request. Finished extract
// trees land in a bounded store that cmd=trace serves back; cmd=metrics
// renders the global registry as Prometheus text. Per-request latency
// is recorded into svc_request_ms{cmd,tier} where tier classifies how
// warm the caches were (cold | warm_scenario | warm_stage | none) —
// tier accounting stays on even when span recording is disabled.
//
// Responses are io::JsonWriter objects with byte-stable key order; the
// only nondeterministic fields are the "millis" wall-time entries, so
// cold and warm responses to one request are byte-identical after
// stripping those — the invariant the CI memo-determinism gate diffs.
//
// Dynamic-scenario sessions: cmd=session instantiates a
// core::SkeletonMaintainer over a sim::DynamicTopology seeded from the
// requested deployment; cmd=churn applies a deterministic random churn
// batch (generated over the live topology, remapped into its stable id
// space); cmd=extract with session=<id> serves the maintained —
// invariant-checked, bounded-staleness — skeleton, optionally
// cross-checked against the canonical from-scratch extraction. The
// maintainer shares the service's StageCache, so its tail stages
// (assess/coarse/cleanup/prune/byproducts) replay from cache whenever a
// repair converges back to previously seen stage-1/2 content.
//
// Thread safety: handle() is fully reentrant — the scenario/stage
// caches, the session table, and the trace store do their own locking
// and everything else is request-local (the RequestContext is installed
// thread-locally). Requests against ONE session serialize on the
// session's mutex (a maintainer is inherently stateful); different
// sessions proceed in parallel.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "core/maintain.h"
#include "core/memo/stage_cache.h"
#include "obs/request_trace.h"
#include "sim/dynamics.h"
#include "svc/protocol.h"

namespace skelex::deploy {
struct Scenario;
}

namespace skelex::svc {

// Per-request facts measured by the transport before the service runs:
// the reader thread stamps enqueue/dequeue times around the pool hop,
// and assigns the request id that the whole span tree carries.
struct WireContext {
  std::uint64_t request_id = 0;  // 0: service assigns one
  std::uint64_t connection = 0;  // server connection ordinal, 0 = none
  double enqueue_us = 0;         // Tracer clock at submit to the pool
  double dequeue_us = 0;         // Tracer clock when a worker picked it up
};

class ExtractionService {
 public:
  struct Options {
    std::size_t cache_bytes = std::size_t{256} << 20;  // stage memo budget
    std::size_t cache_entries = 4096;
    bool trace_requests = true;     // record span trees (cmd=trace)
    std::size_t trace_keep = 32;    // finished extract trees retained
    double slow_request_ms = 250;   // warn-log threshold; <= 0 disables
  };

  ExtractionService();
  explicit ExtractionService(Options opt);

  ExtractionService(const ExtractionService&) = delete;
  ExtractionService& operator=(const ExtractionService&) = delete;

  // Parses and dispatches one request; never throws — malformed requests
  // produce an {"ok": false, "error": ...} response.
  std::string handle(const std::string& request_text);
  std::string handle(const Request& req, const WireContext* wire = nullptr);

  core::memo::CacheStats cache_stats() const { return cache_.stats(); }
  const obs::RequestTraceStore& trace_store() const { return trace_store_; }
  std::size_t session_count() const;

 private:
  // One maintainer-backed live topology. The mutex serializes churn /
  // extract / close against each other; the maintainer shares the
  // service's stage cache (safe: StageCache does its own locking).
  struct Session {
    std::uint64_t id = 0;
    std::shared_ptr<const deploy::Scenario> scenario;
    sim::DynamicTopology topo;
    core::SkeletonMaintainer maint;
    long long rounds_total = 0;
    long long events_total = 0;
    std::mutex mu;

    // Defined in service.cpp: needs the complete Scenario type.
    Session(std::uint64_t sid, std::shared_ptr<const deploy::Scenario> s,
            core::MaintainOptions opt);
  };

  // The per-cmd dispatch, running inside the request's context.
  std::string dispatch(const Request& req);
  std::string handle_extract(const Request& req);
  std::string handle_stats(const Request& req);
  std::string handle_metrics(const Request& req);
  std::string handle_trace(const Request& req);
  std::string handle_session(const Request& req);
  std::string handle_churn(const Request& req);
  std::string handle_session_extract(const Request& req);
  std::string handle_close(const Request& req);
  std::shared_ptr<const deploy::Scenario> scenario_for(const Request& req);
  std::shared_ptr<Session> find_session(long long id) const;

  Options opt_;
  core::memo::StageCache cache_;
  obs::RequestTraceStore trace_store_;

  mutable std::mutex sessions_mu_;
  std::uint64_t next_session_id_ = 1;  // sequential: responses stay
                                       // deterministic across runs
  std::map<std::uint64_t, std::shared_ptr<Session>> sessions_;
};

}  // namespace skelex::svc
