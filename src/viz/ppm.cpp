#include "viz/ppm.h"

#include <algorithm>
#include <fstream>
#include <stdexcept>

namespace skelex::viz {

PpmImage::PpmImage(int width, int height, Rgb fill)
    : w_(width), h_(height),
      px_(static_cast<std::size_t>(width) * static_cast<std::size_t>(height),
          fill) {
  if (width <= 0 || height <= 0) {
    throw std::invalid_argument("PpmImage dimensions must be positive");
  }
}

void PpmImage::set(int x, int y, Rgb c) {
  if (x < 0 || x >= w_ || y < 0 || y >= h_) return;
  px_[static_cast<std::size_t>(y) * w_ + x] = c;
}

Rgb PpmImage::get(int x, int y) const {
  if (x < 0 || x >= w_ || y < 0 || y >= h_) return {};
  return px_[static_cast<std::size_t>(y) * w_ + x];
}

void PpmImage::dot(int cx, int cy, int radius, Rgb c) {
  for (int dy = -radius; dy <= radius; ++dy) {
    for (int dx = -radius; dx <= radius; ++dx) {
      if (dx * dx + dy * dy <= radius * radius) set(cx + dx, cy + dy, c);
    }
  }
}

void PpmImage::save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open " + path);
  out << "P6\n" << w_ << ' ' << h_ << "\n255\n";
  out.write(reinterpret_cast<const char*>(px_.data()),
            static_cast<std::streamsize>(px_.size() * sizeof(Rgb)));
  if (!out) throw std::runtime_error("failed writing " + path);
}

Rgb heat_color(double t) {
  t = std::clamp(t, 0.0, 1.0);
  // Blue (cold) -> white -> red (hot).
  if (t < 0.5) {
    const double u = t * 2.0;
    return {static_cast<std::uint8_t>(60 + 195 * u),
            static_cast<std::uint8_t>(90 + 165 * u), 255};
  }
  const double u = (t - 0.5) * 2.0;
  return {255, static_cast<std::uint8_t>(255 - 175 * u),
          static_cast<std::uint8_t>(255 - 215 * u)};
}

}  // namespace skelex::viz
