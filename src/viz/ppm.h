// skelex/viz/ppm.h
//
// Tiny raster writer (binary PPM, P6). Used for quick density heatmaps
// (e.g., the index field of stage 1) where SVG would be too heavy.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace skelex::viz {

struct Rgb {
  std::uint8_t r = 0, g = 0, b = 0;
};

class PpmImage {
 public:
  PpmImage(int width, int height, Rgb fill = {255, 255, 255});

  int width() const { return w_; }
  int height() const { return h_; }

  void set(int x, int y, Rgb c);  // out-of-range pixels are ignored
  Rgb get(int x, int y) const;

  // Filled disk.
  void dot(int cx, int cy, int radius, Rgb c);

  // Writes the file; throws std::runtime_error on I/O failure.
  void save(const std::string& path) const;

 private:
  int w_, h_;
  std::vector<Rgb> px_;
};

// Simple blue->red heat color for t in [0, 1].
Rgb heat_color(double t);

}  // namespace skelex::viz
