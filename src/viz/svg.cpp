#include "viz/svg.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace skelex::viz {

namespace {
constexpr double kMargin = 10.0;

const char* kPalette[] = {
    "#1f77b4", "#ff7f0e", "#2ca02c", "#d62728", "#9467bd", "#8c564b",
    "#e377c2", "#7f7f7f", "#bcbd22", "#17becf", "#aec7e8", "#ffbb78",
    "#98df8a", "#ff9896", "#c5b0d5", "#c49c94", "#f7b6d2", "#c7c7c7",
};
constexpr std::size_t kPaletteSize = sizeof(kPalette) / sizeof(kPalette[0]);
}  // namespace

SvgWriter::SvgWriter(geom::Vec2 lo, geom::Vec2 hi, double pixels)
    : lo_(lo), hi_(hi) {
  if (hi.x <= lo.x || hi.y <= lo.y) {
    throw std::invalid_argument("SvgWriter: empty bounding box");
  }
  const double wx = hi.x - lo.x, wy = hi.y - lo.y;
  scale_ = pixels / std::max(wx, wy);
  w_ = wx * scale_ + 2 * kMargin;
  h_ = wy * scale_ + 2 * kMargin;
}

geom::Vec2 SvgWriter::to_canvas(geom::Vec2 p) const {
  // Flip y: SVG grows downward, world grows upward.
  return {kMargin + (p.x - lo_.x) * scale_,
          h_ - kMargin - (p.y - lo_.y) * scale_};
}

void SvgWriter::add_graph_edges(const net::Graph& g, const std::string& color,
                                double width) {
  std::ostringstream os;
  os << "<g stroke=\"" << color << "\" stroke-width=\"" << width << "\">\n";
  for (int v = 0; v < g.n(); ++v) {
    for (int w : g.neighbors(v)) {
      if (w <= v) continue;
      const geom::Vec2 a = to_canvas(g.position(v));
      const geom::Vec2 b = to_canvas(g.position(w));
      os << "<line x1=\"" << a.x << "\" y1=\"" << a.y << "\" x2=\"" << b.x
         << "\" y2=\"" << b.y << "\"/>\n";
    }
  }
  os << "</g>\n";
  body_ += os.str();
}

void SvgWriter::add_graph_nodes(const net::Graph& g, const std::string& color,
                                double radius) {
  std::ostringstream os;
  os << "<g fill=\"" << color << "\">\n";
  for (int v = 0; v < g.n(); ++v) {
    const geom::Vec2 p = to_canvas(g.position(v));
    os << "<circle cx=\"" << p.x << "\" cy=\"" << p.y << "\" r=\"" << radius
       << "\"/>\n";
  }
  os << "</g>\n";
  body_ += os.str();
}

void SvgWriter::add_nodes(const net::Graph& g, const std::vector<int>& nodes,
                          const std::string& color, double radius) {
  std::ostringstream os;
  os << "<g fill=\"" << color << "\">\n";
  for (int v : nodes) {
    const geom::Vec2 p = to_canvas(g.position(v));
    os << "<circle cx=\"" << p.x << "\" cy=\"" << p.y << "\" r=\"" << radius
       << "\"/>\n";
  }
  os << "</g>\n";
  body_ += os.str();
}

void SvgWriter::add_skeleton(const net::Graph& g, const core::SkeletonGraph& sk,
                             const std::string& color, double width) {
  std::ostringstream os;
  os << "<g stroke=\"" << color << "\" stroke-width=\"" << width
     << "\" fill=\"" << color << "\">\n";
  for (int v : sk.nodes()) {
    for (int w : sk.neighbors(v)) {
      if (w <= v) continue;
      const geom::Vec2 a = to_canvas(g.position(v));
      const geom::Vec2 b = to_canvas(g.position(w));
      os << "<line x1=\"" << a.x << "\" y1=\"" << a.y << "\" x2=\"" << b.x
         << "\" y2=\"" << b.y << "\"/>\n";
    }
    const geom::Vec2 p = to_canvas(g.position(v));
    os << "<circle cx=\"" << p.x << "\" cy=\"" << p.y << "\" r=\""
       << width * 0.9 << "\"/>\n";
  }
  os << "</g>\n";
  body_ += os.str();
}

void SvgWriter::add_labeled_nodes(const net::Graph& g,
                                  const std::vector<int>& label,
                                  double radius) {
  std::ostringstream os;
  os << "<g>\n";
  for (int v = 0; v < g.n(); ++v) {
    const int lab = label[static_cast<std::size_t>(v)];
    if (lab < 0) continue;
    const geom::Vec2 p = to_canvas(g.position(v));
    os << "<circle cx=\"" << p.x << "\" cy=\"" << p.y << "\" r=\"" << radius
       << "\" fill=\"" << kPalette[static_cast<std::size_t>(lab) % kPaletteSize]
       << "\"/>\n";
  }
  os << "</g>\n";
  body_ += os.str();
}

void SvgWriter::add_region_outline(const geom::Region& region,
                                   const std::string& color, double width) {
  std::ostringstream os;
  os << "<g stroke=\"" << color << "\" stroke-width=\"" << width
     << "\" fill=\"none\">\n";
  auto draw_ring = [&](const geom::Ring& ring) {
    os << "<polygon points=\"";
    for (const geom::Vec2& p : ring.points()) {
      const geom::Vec2 c = to_canvas(p);
      os << c.x << ',' << c.y << ' ';
    }
    os << "\"/>\n";
  };
  draw_ring(region.outer());
  for (const geom::Ring& h : region.holes()) draw_ring(h);
  os << "</g>\n";
  body_ += os.str();
}

void SvgWriter::add_text(geom::Vec2 world_pos, const std::string& text,
                         const std::string& color, double size) {
  const geom::Vec2 p = to_canvas(world_pos);
  std::ostringstream os;
  os << "<text x=\"" << p.x << "\" y=\"" << p.y << "\" fill=\"" << color
     << "\" font-size=\"" << size << "\" font-family=\"sans-serif\">" << text
     << "</text>\n";
  body_ += os.str();
}

std::string SvgWriter::str() const {
  std::ostringstream os;
  os << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << w_
     << "\" height=\"" << h_ << "\" viewBox=\"0 0 " << w_ << ' ' << h_
     << "\">\n<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n"
     << body_ << "</svg>\n";
  return os.str();
}

void SvgWriter::save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open " + path);
  out << str();
  if (!out) throw std::runtime_error("failed writing " + path);
}

}  // namespace skelex::viz
