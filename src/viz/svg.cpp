#include "viz/svg.h"

#include <fstream>
#include <stdexcept>

#include "io/text_format.h"

namespace skelex::viz {

namespace {
constexpr double kMargin = 10.0;

const char* kPalette[] = {
    "#1f77b4", "#ff7f0e", "#2ca02c", "#d62728", "#9467bd", "#8c564b",
    "#e377c2", "#7f7f7f", "#bcbd22", "#17becf", "#aec7e8", "#ffbb78",
    "#98df8a", "#ff9896", "#c5b0d5", "#c49c94", "#f7b6d2", "#c7c7c7",
};
constexpr std::size_t kPaletteSize = sizeof(kPalette) / sizeof(kPalette[0]);

// Canvas coordinates: two decimals is 1/100 px, below anything visible.
constexpr int kCoordPrec = 2;

void append_coord(std::string& out, double v) {
  io::append_fixed(out, v, kCoordPrec);
}

void append_line(std::string& out, geom::Vec2 a, geom::Vec2 b) {
  out += "<line x1=\"";
  append_coord(out, a.x);
  out += "\" y1=\"";
  append_coord(out, a.y);
  out += "\" x2=\"";
  append_coord(out, b.x);
  out += "\" y2=\"";
  append_coord(out, b.y);
  out += "\"/>\n";
}

void append_circle(std::string& out, geom::Vec2 p, double radius) {
  out += "<circle cx=\"";
  append_coord(out, p.x);
  out += "\" cy=\"";
  append_coord(out, p.y);
  out += "\" r=\"";
  append_coord(out, radius);
  out += "\"/>\n";
}
}  // namespace

SvgWriter::SvgWriter(geom::Vec2 lo, geom::Vec2 hi, double pixels)
    : lo_(lo), hi_(hi) {
  if (hi.x <= lo.x || hi.y <= lo.y) {
    throw std::invalid_argument("SvgWriter: empty bounding box");
  }
  const double wx = hi.x - lo.x, wy = hi.y - lo.y;
  scale_ = pixels / std::max(wx, wy);
  w_ = wx * scale_ + 2 * kMargin;
  h_ = wy * scale_ + 2 * kMargin;
}

geom::Vec2 SvgWriter::to_canvas(geom::Vec2 p) const {
  // Flip y: SVG grows downward, world grows upward.
  return {kMargin + (p.x - lo_.x) * scale_,
          h_ - kMargin - (p.y - lo_.y) * scale_};
}

void SvgWriter::add_graph_edges(const net::Graph& g, const std::string& color,
                                double width) {
  body_ += "<g stroke=\"" + color + "\" stroke-width=\"";
  io::append_double(body_, width);
  body_ += "\">\n";
  for (int v = 0; v < g.n(); ++v) {
    for (int w : g.neighbors(v)) {
      if (w <= v) continue;
      append_line(body_, to_canvas(g.position(v)), to_canvas(g.position(w)));
    }
  }
  body_ += "</g>\n";
}

void SvgWriter::add_graph_nodes(const net::Graph& g, const std::string& color,
                                double radius) {
  body_ += "<g fill=\"" + color + "\">\n";
  for (int v = 0; v < g.n(); ++v) {
    append_circle(body_, to_canvas(g.position(v)), radius);
  }
  body_ += "</g>\n";
}

void SvgWriter::add_nodes(const net::Graph& g, const std::vector<int>& nodes,
                          const std::string& color, double radius) {
  body_ += "<g fill=\"" + color + "\">\n";
  for (int v : nodes) {
    append_circle(body_, to_canvas(g.position(v)), radius);
  }
  body_ += "</g>\n";
}

void SvgWriter::add_skeleton(const net::Graph& g, const core::SkeletonGraph& sk,
                             const std::string& color, double width) {
  body_ += "<g stroke=\"" + color + "\" stroke-width=\"";
  io::append_double(body_, width);
  body_ += "\" fill=\"" + color + "\">\n";
  for (int v : sk.nodes()) {
    for (int w : sk.neighbors(v)) {
      if (w <= v) continue;
      append_line(body_, to_canvas(g.position(v)), to_canvas(g.position(w)));
    }
    append_circle(body_, to_canvas(g.position(v)), width * 0.9);
  }
  body_ += "</g>\n";
}

void SvgWriter::add_labeled_nodes(const net::Graph& g,
                                  const std::vector<int>& label,
                                  double radius) {
  body_ += "<g>\n";
  for (int v = 0; v < g.n(); ++v) {
    const int lab = label[static_cast<std::size_t>(v)];
    if (lab < 0) continue;
    const geom::Vec2 p = to_canvas(g.position(v));
    body_ += "<circle cx=\"";
    append_coord(body_, p.x);
    body_ += "\" cy=\"";
    append_coord(body_, p.y);
    body_ += "\" r=\"";
    append_coord(body_, radius);
    body_ += "\" fill=\"";
    body_ += kPalette[static_cast<std::size_t>(lab) % kPaletteSize];
    body_ += "\"/>\n";
  }
  body_ += "</g>\n";
}

void SvgWriter::add_region_outline(const geom::Region& region,
                                   const std::string& color, double width) {
  body_ += "<g stroke=\"" + color + "\" stroke-width=\"";
  io::append_double(body_, width);
  body_ += "\" fill=\"none\">\n";
  auto draw_ring = [&](const geom::Ring& ring) {
    body_ += "<polygon points=\"";
    for (const geom::Vec2& p : ring.points()) {
      const geom::Vec2 c = to_canvas(p);
      append_coord(body_, c.x);
      body_ += ',';
      append_coord(body_, c.y);
      body_ += ' ';
    }
    body_ += "\"/>\n";
  };
  draw_ring(region.outer());
  for (const geom::Ring& h : region.holes()) draw_ring(h);
  body_ += "</g>\n";
}

void SvgWriter::add_text(geom::Vec2 world_pos, const std::string& text,
                         const std::string& color, double size) {
  const geom::Vec2 p = to_canvas(world_pos);
  body_ += "<text x=\"";
  append_coord(body_, p.x);
  body_ += "\" y=\"";
  append_coord(body_, p.y);
  body_ += "\" fill=\"" + color + "\" font-size=\"";
  io::append_double(body_, size);
  body_ += "\" font-family=\"sans-serif\">" + text + "</text>\n";
}

std::string SvgWriter::str() const {
  std::string out;
  out.reserve(body_.size() + 256);
  out += "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"";
  io::append_double(out, w_);
  out += "\" height=\"";
  io::append_double(out, h_);
  out += "\" viewBox=\"0 0 ";
  io::append_double(out, w_);
  out += ' ';
  io::append_double(out, h_);
  out += "\">\n<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";
  out += body_;
  out += "</svg>\n";
  return out;
}

void SvgWriter::save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open " + path);
  out << str();
  if (!out) throw std::runtime_error("failed writing " + path);
}

}  // namespace skelex::viz
