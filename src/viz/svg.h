// skelex/viz/svg.h
//
// SVG rendering of networks and skeletons. The paper's results ARE
// pictures (Figs. 1, 3-8); every bench writes its figures as SVG next to
// the printed metrics so the shape claims can be inspected directly.
#pragma once

#include <string>
#include <vector>

#include "core/skeleton_graph.h"
#include "geometry/polygon.h"
#include "net/graph.h"

namespace skelex::viz {

class SvgWriter {
 public:
  // Canvas mapped from the world bounding box [lo, hi]; `pixels` is the
  // width of the longer canvas side.
  SvgWriter(geom::Vec2 lo, geom::Vec2 hi, double pixels = 800.0);

  // Light rendering of every network link.
  void add_graph_edges(const net::Graph& g, const std::string& color = "#dddddd",
                       double width = 0.5);
  // All nodes as dots.
  void add_graph_nodes(const net::Graph& g, const std::string& color = "#bbbbbb",
                       double radius = 1.2);
  // A subset of nodes (ids) highlighted.
  void add_nodes(const net::Graph& g, const std::vector<int>& nodes,
                 const std::string& color, double radius = 2.5);
  // Skeleton edges (bold) + nodes.
  void add_skeleton(const net::Graph& g, const core::SkeletonGraph& sk,
                    const std::string& color = "#d62728", double width = 2.0);
  // Nodes colored by an integer label (e.g., segmentation), cycling a
  // categorical palette.
  void add_labeled_nodes(const net::Graph& g, const std::vector<int>& label,
                         double radius = 1.6);
  // Region boundary outline (ground truth, for orientation).
  void add_region_outline(const geom::Region& region,
                          const std::string& color = "#999999",
                          double width = 1.0);
  void add_text(geom::Vec2 world_pos, const std::string& text,
                const std::string& color = "#333333", double size = 12.0);

  std::string str() const;
  // Writes the file; throws std::runtime_error on I/O failure.
  void save(const std::string& path) const;

 private:
  geom::Vec2 lo_, hi_;
  double scale_ = 1.0;
  double w_ = 0.0, h_ = 0.0;
  std::string body_;

  geom::Vec2 to_canvas(geom::Vec2 p) const;
};

}  // namespace skelex::viz
