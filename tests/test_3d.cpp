// The algorithm is connectivity-only, so it is dimension-agnostic: on
// 3-D tubular / genus-g volumes the extracted curve skeleton must carry
// one cycle per tunnel and stay connected. (3-D is the paper's cited
// future-work direction — CABET/CONSEL [12], [13].)
#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "geometry3/deploy3.h"

namespace skelex {
namespace {

struct VolumeCase {
  geom3::Volume volume;
  int nodes;
  double degree;
  std::uint64_t seed;
};

class Volume3Test : public ::testing::TestWithParam<VolumeCase> {};

TEST_P(Volume3Test, SkeletonMatchesTunnelCount) {
  const VolumeCase& tc = GetParam();
  const geom3::Scenario3 sc = geom3::make_udg_scenario3(
      tc.volume, tc.nodes, tc.degree, tc.seed);
  ASSERT_GT(sc.graph.n(), tc.nodes / 2) << tc.volume.name << " fragmented";
  ASSERT_EQ(sc.positions.size(), static_cast<std::size_t>(sc.graph.n()));

  const core::SkeletonResult r =
      core::extract_skeleton(sc.graph, core::Params{});
  EXPECT_EQ(r.skeleton.component_count(), 1) << tc.volume.name;
  EXPECT_EQ(r.skeleton_cycle_rank(), tc.volume.tunnels) << tc.volume.name;
  EXPECT_GT(r.skeleton.node_count(), 0);
}

INSTANTIATE_TEST_SUITE_P(
    Volumes, Volume3Test,
    ::testing::Values(VolumeCase{geom3::box(), 2000, 11.0, 1},
                      VolumeCase{geom3::box_with_tunnel(), 3200, 11.0, 2},
                      VolumeCase{geom3::box_with_two_tunnels(), 3200, 11.0, 3},
                      VolumeCase{geom3::torus(), 2000, 11.0, 4},
                      VolumeCase{geom3::u_duct(), 1800, 11.0, 5}),
    [](const auto& info) { return info.param.volume.name; });

TEST(Volume3, TorusSkeletonHugsTheCoreCircle) {
  const geom3::Volume vol = geom3::torus(24, 8);
  const geom3::Scenario3 sc = geom3::make_udg_scenario3(vol, 2200, 11.0, 7);
  const core::SkeletonResult r =
      core::extract_skeleton(sc.graph, core::Params{});
  ASSERT_GT(r.skeleton.node_count(), 10);
  // Every skeleton node lies near the core circle: ring coordinate close
  // to the major radius, z close to the torus plane.
  const double c = 24 + 8 + 2;
  double max_ring_err = 0, max_z_err = 0;
  for (int v : r.skeleton.nodes()) {
    const geom3::Vec3 p = sc.positions[static_cast<std::size_t>(v)];
    const double ring =
        std::sqrt((p.x - c) * (p.x - c) + (p.y - c) * (p.y - c));
    max_ring_err = std::max(max_ring_err, std::abs(ring - 24.0));
    max_z_err = std::max(max_z_err, std::abs(p.z - c));
  }
  // Inside the tube (radius 8), and in fact well centered.
  EXPECT_LT(max_ring_err, 6.5);
  EXPECT_LT(max_z_err, 6.5);
}

TEST(Volume3, DeploymentStaysInsideTheVolume) {
  const geom3::Volume vol = geom3::box_with_tunnel();
  deploy::Rng rng(3);
  const auto pts = geom3::jittered_grid_in_volume(vol, 1500, 0.35, rng);
  EXPECT_NEAR(static_cast<double>(pts.size()), 1500.0, 400.0);
  for (const geom3::Vec3& p : pts) {
    EXPECT_TRUE(vol.contains(p));
  }
}

TEST(Volume3, CalibrationHitsTargetDegree) {
  const geom3::Volume vol = geom3::box(40, 40, 40);
  const geom3::Scenario3 sc = geom3::make_udg_scenario3(vol, 1200, 10.0, 9);
  EXPECT_NEAR(sc.graph.avg_degree(), 10.0, 1.0);
}

}  // namespace
}  // namespace skelex
