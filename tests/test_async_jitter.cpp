// Asynchrony robustness: the paper's §III-B assumes the site floods
// start "at roughly the same time" and travel "at approximately the same
// speed". Engine::set_jitter breaks that assumption with bounded random
// per-transmission delays; these tests check the degradation is graceful.
#include <gtest/gtest.h>

#include "core/protocols.h"
#include "deploy/scenario.h"
#include "geometry/shapes.h"
#include "metrics/homotopy.h"
#include "sim/engine.h"

namespace skelex {
namespace {

net::Graph path_graph(int n) {
  net::Graph g(n);
  for (int i = 0; i + 1 < n; ++i) g.add_edge(i, i + 1);
  return g;
}

// Re-used from the engine tests: a single flood wave.
class WaveProtocol final : public sim::Protocol {
 public:
  explicit WaveProtocol(int n) : heard_round_(static_cast<std::size_t>(n), -1) {}
  void on_start(sim::NodeContext& ctx) override {
    if (ctx.node() == 0) {
      heard_round_[0] = 0;
      ctx.broadcast({1, 0, 0, 0, -1});
    }
  }
  void on_message(sim::NodeContext& ctx, const sim::Message& m) override {
    auto& h = heard_round_[static_cast<std::size_t>(ctx.node())];
    if (h != -1) return;
    h = ctx.round();
    ctx.broadcast({1, m.origin, m.hops + 1, 0, -1});
  }
  std::vector<int> heard_round_;
};

TEST(Jitter, ZeroJitterIsSynchronous) {
  const net::Graph g = path_graph(5);
  sim::Engine e(g);
  e.set_jitter(0);
  WaveProtocol p(5);
  e.run(p);
  EXPECT_EQ(p.heard_round_, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Jitter, DelaysAreBoundedAndDeterministic) {
  const net::Graph g = path_graph(8);
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    sim::Engine e1(g), e2(g);
    e1.set_jitter(2, seed);
    e2.set_jitter(2, seed);
    WaveProtocol p1(8), p2(8);
    e1.run(p1);
    e2.run(p2);
    EXPECT_EQ(p1.heard_round_, p2.heard_round_) << "seed " << seed;
    for (int v = 1; v < 8; ++v) {
      // Arrival no earlier than the hop distance, no later than
      // distance * (1 + max_jitter).
      EXPECT_GE(p1.heard_round_[static_cast<std::size_t>(v)], v);
      EXPECT_LE(p1.heard_round_[static_cast<std::size_t>(v)], v * 3);
    }
  }
}

TEST(Jitter, NegativeJitterRejected) {
  const net::Graph g = path_graph(3);
  sim::Engine e(g);
  EXPECT_THROW(e.set_jitter(-1), std::invalid_argument);
}

TEST(Jitter, DistributedExtractionMatchesCentralizedAtZero) {
  deploy::ScenarioSpec spec;
  spec.target_nodes = 700;
  spec.target_avg_deg = 7.5;
  spec.seed = 8;
  const deploy::Scenario sc =
      deploy::make_udg_scenario(geom::shapes::lshape(), spec);
  const core::SkeletonResult central =
      core::extract_skeleton(sc.graph, core::Params{});
  const core::DistributedExtraction dist =
      core::extract_skeleton_distributed(sc.graph, core::Params{}, 0);
  EXPECT_EQ(dist.result.skeleton.nodes(), central.skeleton.nodes());
  EXPECT_EQ(dist.result.skeleton.edge_count(), central.skeleton.edge_count());
  EXPECT_GT(dist.stats.transmissions, 0);
}

// Moderate jitter must not destroy the skeleton's topology on the
// flagship scenario.
class JitterRobustnessTest : public ::testing::TestWithParam<int> {};

TEST_P(JitterRobustnessTest, HomotopySurvivesJitter) {
  const int jitter = GetParam();
  deploy::ScenarioSpec spec;
  spec.target_nodes = 2000;
  spec.target_avg_deg = 7.5;
  spec.seed = 9;
  const geom::Region region = geom::shapes::two_holes();
  const deploy::Scenario sc = deploy::make_udg_scenario(region, spec);
  const core::DistributedExtraction dist =
      core::extract_skeleton_distributed(sc.graph, core::Params{}, jitter, 42);
  EXPECT_EQ(dist.result.skeleton.component_count(), 1);
  const metrics::HomotopyCheck hom =
      metrics::check_homotopy(sc.graph, dist.result.skeleton, region);
  EXPECT_TRUE(hom.ok) << "jitter " << jitter << ": cycles "
                      << hom.skeleton_cycles << " vs holes "
                      << hom.region_holes;
}

INSTANTIATE_TEST_SUITE_P(Sweep, JitterRobustnessTest,
                         ::testing::Values(0, 1, 2));

TEST(Loss, ValidationAndDeterminism) {
  net::Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  sim::Engine e(g);
  EXPECT_THROW(e.set_loss(-0.1), std::invalid_argument);
  EXPECT_THROW(e.set_loss(1.0), std::invalid_argument);
  EXPECT_NO_THROW(e.set_loss(0.5, 7));
}

TEST(Loss, LossyFloodReachesFewerNodes) {
  // A 30%-lossy k-hop flood undercounts neighborhoods but never
  // overcounts them.
  deploy::ScenarioSpec spec;
  spec.target_nodes = 600;
  spec.target_avg_deg = 8.0;
  spec.seed = 3;
  const deploy::Scenario sc =
      deploy::make_udg_scenario(geom::shapes::disk(), spec);
  sim::Engine reliable(sc.graph), lossy(sc.graph);
  lossy.set_loss(0.3, 11);
  core::KhopSizeProtocol p1(sc.graph.n(), 4), p2(sc.graph.n(), 4);
  reliable.run(p1);
  lossy.run(p2);
  const auto exact = p1.sizes();
  const auto rough = p2.sizes();
  long long exact_sum = 0, rough_sum = 0;
  for (int v = 0; v < sc.graph.n(); ++v) {
    EXPECT_LE(rough[static_cast<std::size_t>(v)],
              exact[static_cast<std::size_t>(v)]);
    exact_sum += exact[static_cast<std::size_t>(v)];
    rough_sum += rough[static_cast<std::size_t>(v)];
  }
  EXPECT_LT(rough_sum, exact_sum);
  EXPECT_GT(rough_sum, exact_sum / 4);  // flooding has path diversity
}

TEST(Loss, ModerateLossKeepsHomotopy) {
  deploy::ScenarioSpec spec;
  spec.target_nodes = 2000;
  spec.target_avg_deg = 7.5;
  spec.seed = 9;
  const geom::Region region = geom::shapes::two_holes();
  const deploy::Scenario sc = deploy::make_udg_scenario(region, spec);
  const core::DistributedExtraction dist = core::extract_skeleton_distributed(
      sc.graph, core::Params{}, /*jitter=*/0, /*seed=*/42, /*loss=*/0.1);
  EXPECT_EQ(dist.result.skeleton.component_count(), 1);
  const metrics::HomotopyCheck hom =
      metrics::check_homotopy(sc.graph, dist.result.skeleton, region);
  EXPECT_TRUE(hom.ok) << "cycles " << hom.skeleton_cycles << " vs holes "
                      << hom.region_holes;
}

}  // namespace
}  // namespace skelex
