// End-to-end baseline runs on richer shapes: CASE on the Window network
// (boundary rings with corners, four holes) and the degradation path
// when baselines consume DETECTED instead of oracle boundaries — the
// paper's core argument for boundary-free extraction.
#include <gtest/gtest.h>

#include "baseline/case.h"
#include "baseline/map.h"
#include "core/pipeline.h"
#include "deploy/scenario.h"
#include "geometry/medial_axis_ref.h"
#include "geometry/shapes.h"
#include "metrics/quality.h"

namespace skelex::baseline {
namespace {

deploy::Scenario window_scenario(std::uint64_t seed) {
  deploy::ScenarioSpec spec;
  spec.target_nodes = 2592;
  spec.target_avg_deg = 7.5;
  spec.seed = seed;
  return deploy::make_udg_scenario(geom::shapes::window(), spec);
}

TEST(CaseEndToEnd, WindowWithOracleBoundary) {
  const geom::Region region = geom::shapes::window();
  const deploy::Scenario sc = window_scenario(71);
  const BoundaryInfo oracle = geometric_boundary(sc.graph, region, 2.5);
  // Window has 5 boundary rings; the oracle must cover all of them.
  bool ring_seen[5] = {};
  for (const BoundaryNode& b : oracle.nodes) {
    ASSERT_GE(b.ring, 0);
    ASSERT_LT(b.ring, 5);
    ring_seen[b.ring] = true;
  }
  for (bool seen : ring_seen) EXPECT_TRUE(seen);

  const BaselineSkeleton cs =
      case_skeleton(sc.graph, oracle, region, CaseParams{});
  ASSERT_GT(cs.graph.node_count(), 20);
  EXPECT_EQ(cs.graph.component_count(), 1);
  // CASE's skeleton is medial too (it has the luxury of the boundary).
  const geom::ReferenceMedialAxis axis(region);
  const metrics::Medialness med = metrics::medialness(sc.graph, cs.graph, axis);
  EXPECT_LT(med.mean, 2.0 * sc.range);
}

TEST(MapEndToEnd, WindowWithOracleBoundary) {
  const geom::Region region = geom::shapes::window();
  const deploy::Scenario sc = window_scenario(72);
  const BoundaryInfo oracle = geometric_boundary(sc.graph, region, 2.5);
  const BaselineSkeleton map = map_skeleton(sc.graph, oracle, MapParams{});
  ASSERT_GT(map.graph.node_count(), 20);
  EXPECT_EQ(map.graph.component_count(), 1);
  const geom::ReferenceMedialAxis axis(region);
  const metrics::Medialness med =
      metrics::medialness(sc.graph, map.graph, axis);
  EXPECT_LT(med.mean, 2.0 * sc.range);
}

TEST(Baselines, DetectedBoundariesDegradeMap) {
  // With a statistical detector instead of the oracle, MAP bloats: many
  // interior nodes read as "equidistant to far-apart boundary nodes"
  // because the detected boundary is noisy. Ours needs no boundary at
  // all — the paper's thesis, measured.
  const geom::Region region = geom::shapes::window();
  const deploy::Scenario sc = window_scenario(73);
  const BoundaryInfo oracle = geometric_boundary(sc.graph, region, 2.5);
  const BoundaryInfo detected = statistical_boundary(sc.graph, 3, 0.2);
  const BaselineSkeleton map_oracle =
      map_skeleton(sc.graph, oracle, MapParams{});
  const BaselineSkeleton map_detected =
      map_skeleton(sc.graph, detected, MapParams{});
  EXPECT_GT(map_detected.graph.node_count(),
            2 * map_oracle.graph.node_count());

  const core::SkeletonResult ours =
      core::extract_skeleton(sc.graph, core::Params{});
  const geom::ReferenceMedialAxis axis(region);
  const double ours_mean =
      metrics::medialness(sc.graph, ours.skeleton, axis).mean;
  const double detected_mean =
      metrics::medialness(sc.graph, map_detected.graph, axis).mean;
  EXPECT_LT(ours_mean, detected_mean);
}

TEST(CaseEndToEnd, DistanceTransformExposedForInspection) {
  const geom::Region region = geom::shapes::rect(60, 30);
  deploy::ScenarioSpec spec;
  spec.target_nodes = 700;
  spec.target_avg_deg = 8.0;
  spec.seed = 74;
  const deploy::Scenario sc = deploy::make_udg_scenario(region, spec);
  const BoundaryInfo oracle = geometric_boundary(sc.graph, region, 2.0);
  const BaselineSkeleton cs =
      case_skeleton(sc.graph, oracle, region, CaseParams{});
  ASSERT_EQ(cs.dist_to_boundary.size(),
            static_cast<std::size_t>(sc.graph.n()));
  // Boundary nodes have distance 0; skeleton nodes are the farthest.
  for (const BoundaryNode& b : oracle.nodes) {
    EXPECT_EQ(cs.dist_to_boundary[static_cast<std::size_t>(b.node)], 0);
  }
  int max_d = 0;
  for (int d : cs.dist_to_boundary) max_d = std::max(max_d, d);
  int skel_max = 0;
  for (int v : cs.graph.nodes()) {
    skel_max =
        std::max(skel_max, cs.dist_to_boundary[static_cast<std::size_t>(v)]);
  }
  EXPECT_GE(skel_max, max_d - 1);
}

}  // namespace
}  // namespace skelex::baseline
