#include "net/bfs.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace skelex::net {
namespace {

// 0-1-2-3-4 path plus a 5-6-7 triangle hanging off node 2 via 5.
Graph sample_graph() {
  Graph g(8);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 4);
  g.add_edge(2, 5);
  g.add_edge(5, 6);
  g.add_edge(6, 7);
  g.add_edge(5, 7);
  return g;
}

TEST(Bfs, DistancesFromSource) {
  const Graph g = sample_graph();
  const auto d = bfs_distances(g, 0);
  EXPECT_EQ(d, (std::vector<int>{0, 1, 2, 3, 4, 3, 4, 4}));
}

TEST(Bfs, MaxDepthTruncates) {
  const Graph g = sample_graph();
  const auto d = bfs_distances(g, 0, 2);
  EXPECT_EQ(d[2], 2);
  EXPECT_EQ(d[3], kUnreached);
  EXPECT_EQ(d[5], kUnreached);
}

TEST(Bfs, DisconnectedUnreached) {
  Graph g(3);
  g.add_edge(0, 1);
  const auto d = bfs_distances(g, 0);
  EXPECT_EQ(d[2], kUnreached);
  EXPECT_THROW(bfs_distances(g, 5), std::out_of_range);
}

TEST(MultiSourceBfs, NearestAndParent) {
  const Graph g = sample_graph();
  const auto r = multi_source_bfs(g, {0, 4});
  EXPECT_EQ(r.dist[0], 0);
  EXPECT_EQ(r.dist[4], 0);
  EXPECT_EQ(r.dist[2], 2);
  EXPECT_EQ(r.nearest[1], 0);  // index into sources
  EXPECT_EQ(r.nearest[3], 1);
  EXPECT_EQ(r.parent[0], kUnreached);
  // Parent chains terminate at a source with strictly decreasing dist.
  for (int v = 0; v < g.n(); ++v) {
    int u = v;
    int guard = 0;
    while (r.parent[static_cast<std::size_t>(u)] != kUnreached) {
      const int p = r.parent[static_cast<std::size_t>(u)];
      EXPECT_EQ(r.dist[static_cast<std::size_t>(p)],
                r.dist[static_cast<std::size_t>(u)] - 1);
      u = p;
      ASSERT_LT(++guard, g.n());
    }
    EXPECT_EQ(r.dist[static_cast<std::size_t>(u)], 0);
  }
}

TEST(MultiSourceBfs, DuplicateSourcesHandled) {
  const Graph g = sample_graph();
  const auto r = multi_source_bfs(g, {0, 0, 4});
  EXPECT_EQ(r.dist[0], 0);
  EXPECT_EQ(r.nearest[0], 0);
}

TEST(ShortestPath, EndpointsAndAdjacency) {
  const Graph g = sample_graph();
  const auto p = shortest_path(g, 0, 7);
  ASSERT_FALSE(p.empty());
  EXPECT_EQ(p.front(), 0);
  EXPECT_EQ(p.back(), 7);
  EXPECT_EQ(p.size(), 5u);  // 0-1-2-5-7
  for (std::size_t i = 0; i + 1 < p.size(); ++i) {
    EXPECT_TRUE(g.has_edge(p[i], p[i + 1]));
  }
}

TEST(ShortestPath, TrivialAndUnreachable) {
  Graph g(3);
  g.add_edge(0, 1);
  EXPECT_EQ(shortest_path(g, 0, 0), (std::vector<int>{0}));
  EXPECT_TRUE(shortest_path(g, 0, 2).empty());
}

TEST(MaskedBfs, RespectsMask) {
  const Graph g = sample_graph();
  std::vector<char> allowed(8, 1);
  allowed[2] = 0;  // block the cut vertex
  const auto d = bfs_distances_masked(g, 0, allowed);
  EXPECT_EQ(d[1], 1);
  EXPECT_EQ(d[2], kUnreached);
  EXPECT_EQ(d[3], kUnreached);  // only reachable through 2
  EXPECT_EQ(d[5], kUnreached);
  std::vector<char> blocked_src(8, 1);
  blocked_src[0] = 0;
  EXPECT_THROW(bfs_distances_masked(g, 0, blocked_src), std::invalid_argument);
}

TEST(Eccentricity, OfPathEnd) {
  const Graph g = sample_graph();
  EXPECT_EQ(eccentricity(g, 0), 4);
  EXPECT_EQ(eccentricity(g, 2), 2);
}

TEST(ApproxDiameter, ExactOnTrees) {
  Graph g(6);  // star with one long arm: diameter 3
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(0, 3);
  g.add_edge(3, 4);
  g.add_edge(4, 5);
  EXPECT_EQ(approx_diameter(g), 4);  // leaf 1 .. leaf 5 = 1+3
  EXPECT_EQ(approx_diameter(Graph(0)), 0);
}

}  // namespace
}  // namespace skelex::net
