#include "baseline/boundary.h"

#include <gtest/gtest.h>

#include <cmath>

#include "deploy/scenario.h"
#include "geometry/shapes.h"
#include "net/khop.h"

namespace skelex::baseline {
namespace {

deploy::Scenario corridor_scenario(std::uint64_t seed) {
  deploy::ScenarioSpec spec;
  spec.target_nodes = 900;
  spec.target_avg_deg = 8.0;
  spec.seed = seed;
  return deploy::make_udg_scenario(geom::shapes::corridor(100.0, 16.0), spec);
}

TEST(GeometricBoundary, SelectsExactlyTheBandNodes) {
  const geom::Region region = geom::shapes::corridor(100.0, 16.0);
  const deploy::Scenario sc = corridor_scenario(41);
  const BoundaryInfo info = geometric_boundary(sc.graph, region, 2.0);
  ASSERT_FALSE(info.nodes.empty());
  for (int v = 0; v < sc.graph.n(); ++v) {
    const double d = region.distance_to_boundary(sc.graph.position(v));
    EXPECT_EQ(static_cast<bool>(info.is_boundary[static_cast<std::size_t>(v)]),
              d <= 2.0)
        << "node " << v << " at boundary distance " << d;
  }
}

TEST(GeometricBoundary, RingAttributionAndArcpos) {
  const geom::Region region = geom::shapes::annulus(45.0, 20.0);
  deploy::ScenarioSpec spec;
  spec.target_nodes = 1200;
  spec.target_avg_deg = 8.0;
  spec.seed = 42;
  const deploy::Scenario sc = deploy::make_udg_scenario(region, spec);
  const BoundaryInfo info = geometric_boundary(sc.graph, region, 2.5);
  ASSERT_EQ(info.ring_perimeter.size(), 2u);
  int outer = 0, inner = 0;
  for (const BoundaryNode& b : info.nodes) {
    const double r = geom::dist(sc.graph.position(b.node), {50, 50});
    if (b.ring == 0) {
      ++outer;
      EXPECT_GT(r, 40.0);
    } else {
      ASSERT_EQ(b.ring, 1);
      ++inner;
      EXPECT_LT(r, 25.0);
    }
    EXPECT_GE(b.arcpos, 0.0);
    EXPECT_LT(b.arcpos, info.ring_perimeter[static_cast<std::size_t>(b.ring)]);
  }
  EXPECT_GT(outer, 20);
  EXPECT_GT(inner, 10);
}

TEST(GeometricBoundary, Validation) {
  net::Graph no_pos(3);
  EXPECT_THROW(geometric_boundary(no_pos, geom::shapes::rect(), 1.0),
               std::invalid_argument);
  const deploy::Scenario sc = corridor_scenario(43);
  EXPECT_THROW(
      geometric_boundary(sc.graph, geom::shapes::corridor(100.0, 16.0), 0.0),
      std::invalid_argument);
}

TEST(StatisticalBoundary, PicksLowDegreeNodes) {
  const deploy::Scenario sc = corridor_scenario(44);
  const BoundaryInfo info = statistical_boundary(sc.graph, 3, 0.25);
  ASSERT_FALSE(info.nodes.empty());
  // Selected nodes sit geometrically nearer the rim than the average
  // node (the Fekete observation).
  const geom::Region region = geom::shapes::corridor(100.0, 16.0);
  double sel_sum = 0, all_sum = 0;
  for (const BoundaryNode& b : info.nodes) {
    sel_sum += region.distance_to_boundary(sc.graph.position(b.node));
  }
  for (int v = 0; v < sc.graph.n(); ++v) {
    all_sum += region.distance_to_boundary(sc.graph.position(v));
  }
  EXPECT_LT(sel_sum / static_cast<double>(info.nodes.size()),
            0.8 * all_sum / sc.graph.n());
  // Detector output has no geometry annotations.
  EXPECT_EQ(info.nodes.front().ring, -1);
  EXPECT_TRUE(info.ring_perimeter.empty());
}

TEST(StatisticalBoundary, QuantileValidation) {
  const deploy::Scenario sc = corridor_scenario(45);
  EXPECT_THROW(statistical_boundary(sc.graph, 3, 0.0), std::invalid_argument);
  EXPECT_THROW(statistical_boundary(sc.graph, 3, 1.0), std::invalid_argument);
}

TEST(ArcDistance, WrapsAround) {
  EXPECT_DOUBLE_EQ(arc_distance(1.0, 9.0, 10.0), 2.0);
  EXPECT_DOUBLE_EQ(arc_distance(9.0, 1.0, 10.0), 2.0);
  EXPECT_DOUBLE_EQ(arc_distance(2.0, 5.0, 10.0), 3.0);
  EXPECT_DOUBLE_EQ(arc_distance(0.0, 5.0, 10.0), 5.0);
  EXPECT_DOUBLE_EQ(arc_distance(3.0, 3.0, 10.0), 0.0);
  EXPECT_THROW(arc_distance(1.0, 2.0, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace skelex::baseline
