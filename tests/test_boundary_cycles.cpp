#include "core/boundary_cycles.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/pipeline.h"
#include "deploy/scenario.h"
#include "geometry/shapes.h"

namespace skelex::core {
namespace {

TEST(BoundaryCycles, Validation) {
  net::Graph g(4);
  BoundaryResult b;
  b.is_boundary.assign(4, 0);
  EXPECT_THROW(group_boundary_nodes(g, b, 0, 1), std::invalid_argument);
  EXPECT_THROW(group_boundary_nodes(g, b, 2, 0), std::invalid_argument);
  BoundaryResult wrong;
  wrong.is_boundary.assign(3, 0);
  EXPECT_THROW(group_boundary_nodes(g, wrong), std::invalid_argument);
}

TEST(BoundaryCycles, TwoSeparatedFeatures) {
  // Path of 12; boundary nodes at both ends, far apart.
  net::Graph g(12);
  for (int i = 0; i < 11; ++i) g.add_edge(i, i + 1);
  BoundaryResult b;
  b.is_boundary.assign(12, 0);
  for (int v : {0, 1, 10, 11}) {
    b.is_boundary[static_cast<std::size_t>(v)] = 1;
    b.boundary_nodes.push_back(v);
  }
  const BoundaryCycles bc = group_boundary_nodes(g, b, 2, 1);
  ASSERT_EQ(bc.groups.size(), 2u);
  EXPECT_EQ(bc.groups[0], (std::vector<int>{0, 1}));
  EXPECT_EQ(bc.groups[1], (std::vector<int>{10, 11}));
  EXPECT_EQ(bc.group_of[0], bc.group_of[1]);
  EXPECT_NE(bc.group_of[0], bc.group_of[10]);
  EXPECT_EQ(bc.group_of[5], -1);
}

TEST(BoundaryCycles, MergeHopsBridgesGaps) {
  net::Graph g(7);
  for (int i = 0; i < 6; ++i) g.add_edge(i, i + 1);
  BoundaryResult b;
  b.is_boundary.assign(7, 0);
  for (int v : {0, 3, 6}) {  // 3 hops apart
    b.is_boundary[static_cast<std::size_t>(v)] = 1;
    b.boundary_nodes.push_back(v);
  }
  EXPECT_EQ(group_boundary_nodes(g, b, 2, 1).groups.size(), 3u);
  EXPECT_EQ(group_boundary_nodes(g, b, 3, 1).groups.size(), 1u);
}

TEST(BoundaryCycles, MinGroupDropsNoise) {
  net::Graph g(10);
  for (int i = 0; i < 9; ++i) g.add_edge(i, i + 1);
  BoundaryResult b;
  b.is_boundary.assign(10, 0);
  for (int v : {0, 1, 2, 3, 9}) {
    b.is_boundary[static_cast<std::size_t>(v)] = 1;
    b.boundary_nodes.push_back(v);
  }
  const BoundaryCycles bc = group_boundary_nodes(g, b, 1, 3);
  ASSERT_EQ(bc.groups.size(), 1u);  // the lone node 9 is noise
  EXPECT_EQ(bc.groups[0].size(), 4u);
  EXPECT_EQ(bc.group_of[9], -1);
}

TEST(BoundaryCycles, AnnulusYieldsOuterAndInnerFeatures) {
  // On an annulus network the boundary by-product has two features: the
  // outer rim (larger) and the hole rim (smaller), and they must be
  // geometrically separated by radius.
  const geom::Region region = geom::shapes::annulus(45.0, 20.0);
  deploy::ScenarioSpec spec;
  spec.target_nodes = 2000;
  spec.target_avg_deg = 8.0;
  spec.seed = 77;
  const deploy::Scenario sc = deploy::make_udg_scenario(region, spec);
  const SkeletonResult r = extract_skeleton(sc.graph, Params{});
  const BoundaryCycles bc = group_boundary_nodes(sc.graph, r.boundary);
  ASSERT_GE(bc.groups.size(), 2u);
  // Group 0 (largest) is the outer rim: mean radius > 35; one of the
  // following groups hugs the hole: mean radius < 27.
  const auto mean_radius = [&](const std::vector<int>& grp) {
    double sum = 0;
    for (int v : grp) sum += geom::dist(sc.graph.position(v), {50, 50});
    return sum / static_cast<double>(grp.size());
  };
  EXPECT_GT(mean_radius(bc.groups[0]), 35.0);
  bool found_inner = false;
  for (std::size_t i = 1; i < bc.groups.size(); ++i) {
    if (mean_radius(bc.groups[i]) < 27.0) found_inner = true;
  }
  EXPECT_TRUE(found_inner);
}

TEST(BoundaryCycles, WindowHasFivePlusFeatures) {
  // Window: outer rim + 4 pane rims.
  deploy::ScenarioSpec spec;
  spec.target_nodes = 2592;
  spec.target_avg_deg = 7.0;
  spec.seed = 7;
  const geom::Region region = geom::shapes::window();
  const deploy::Scenario sc = deploy::make_udg_scenario(region, spec);
  const SkeletonResult r = extract_skeleton(sc.graph, Params{});
  const BoundaryCycles bc = group_boundary_nodes(sc.graph, r.boundary);
  EXPECT_GE(bc.groups.size(), 4u);
  EXPECT_LE(bc.groups.size(), 8u);
}

}  // namespace
}  // namespace skelex::core
