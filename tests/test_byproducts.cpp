#include "core/byproducts.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "core/pipeline.h"
#include "deploy/scenario.h"
#include "geometry/shapes.h"

namespace skelex::core {
namespace {

TEST(Segmentation, SizesPartitionTheNetwork) {
  net::Graph g(7);
  for (int i = 0; i < 6; ++i) g.add_edge(i, i + 1);
  const VoronoiResult vor = build_voronoi(g, {0, 6}, Params{});
  const Segmentation s = segmentation_from_voronoi(vor);
  EXPECT_EQ(s.segment_count, 2);
  EXPECT_EQ(std::accumulate(s.segment_size.begin(), s.segment_size.end(), 0),
            7);
  for (int v = 0; v < 7; ++v) {
    EXPECT_GE(s.segment_of[static_cast<std::size_t>(v)], 0);
    EXPECT_LT(s.segment_of[static_cast<std::size_t>(v)], 2);
  }
  // Cell of site 0 holds nodes 0..3 (tie at 3 adopts the smaller site).
  EXPECT_EQ(s.segment_size[0], 4);
  EXPECT_EQ(s.segment_size[1], 3);
}

TEST(ExtractBoundaries, DistanceTransformIsCorrect) {
  net::Graph g(7);
  for (int i = 0; i < 6; ++i) g.add_edge(i, i + 1);
  SkeletonGraph sk(7);
  sk.add_node(3);
  const BoundaryResult b = extract_boundaries(g, sk);
  EXPECT_EQ(b.dist_to_skeleton, (std::vector<int>{3, 2, 1, 0, 1, 2, 3}));
  // Local maxima of the transform: the two path ends.
  EXPECT_EQ(b.boundary_nodes, (std::vector<int>{0, 6}));
}

TEST(ExtractBoundaries, MinDistFiltersSkeletonAdjacentNodes) {
  net::Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  SkeletonGraph sk(3);
  sk.add_node(1);
  const BoundaryResult strict = extract_boundaries(g, sk, /*min_dist=*/2);
  EXPECT_TRUE(strict.boundary_nodes.empty());
  const BoundaryResult loose = extract_boundaries(g, sk, /*min_dist=*/1);
  EXPECT_EQ(loose.boundary_nodes, (std::vector<int>{0, 2}));
}

TEST(ExtractBoundaries, MismatchedCapacityThrows) {
  net::Graph g(3);
  SkeletonGraph sk(2);
  EXPECT_THROW(extract_boundaries(g, sk), std::invalid_argument);
}

// On a real corridor network, detected boundary nodes hug the true
// geometric boundary and cover both long walls.
TEST(ExtractBoundaries, BoundaryNodesAreGeometricallyNearTheRim) {
  const geom::Region corridor = geom::shapes::corridor(100.0, 16.0);
  deploy::ScenarioSpec spec;
  spec.target_nodes = 1200;
  spec.target_avg_deg = 8.0;
  spec.seed = 31;
  const deploy::Scenario sc = deploy::make_udg_scenario(corridor, spec);
  const SkeletonResult r = extract_skeleton(sc.graph, Params{});
  ASSERT_FALSE(r.boundary.boundary_nodes.empty());
  int near_rim = 0, on_walls[2] = {0, 0};
  for (int v : r.boundary.boundary_nodes) {
    const geom::Vec2 p = sc.graph.position(v);
    if (p.x < 10 || p.x > 90) continue;  // ignore the corridor's ends
    const double rim_dist = std::min(p.y, 16.0 - p.y);
    if (rim_dist < 4.0) ++near_rim;
    ++on_walls[p.y > 8.0 ? 1 : 0];
  }
  EXPECT_GT(near_rim, 10);
  EXPECT_GT(on_walls[0], 3);
  EXPECT_GT(on_walls[1], 3);
}

TEST(Segmentation, ByProductOnRealNetworkCoversAllNodes) {
  const geom::Region region = geom::shapes::smile();
  deploy::ScenarioSpec spec;
  spec.target_nodes = 1500;
  spec.target_avg_deg = 7.0;
  spec.seed = 32;
  const deploy::Scenario sc = deploy::make_udg_scenario(region, spec);
  const SkeletonResult r = extract_skeleton(sc.graph, Params{});
  EXPECT_EQ(r.segmentation.segment_count,
            static_cast<int>(r.critical_nodes.size()));
  EXPECT_EQ(std::accumulate(r.segmentation.segment_size.begin(),
                            r.segmentation.segment_size.end(), 0),
            sc.graph.n());
  // Every segment is non-empty (it contains at least its site).
  for (int size : r.segmentation.segment_size) EXPECT_GT(size, 0);
}

}  // namespace
}  // namespace skelex::core
